#pragma once
// Umbrella header for the MBSP scheduling library: the public API for
// building instances, running the two-stage baselines, the holistic
// (LNS / portfolio / ILP / divide-and-conquer) schedulers, and evaluating
// schedules. One line per header below: what it provides, and its
// determinism contract (every solver in the repo is deterministic given
// (instance, options) under the budget_ms = 0 iteration-capped
// convention; see docs/ARCHITECTURE.md for the full contract).

// -- Graphs and instance construction --------------------------------------
// ComputeDag: CSR-flattened DAG core; span-based parents()/children().
#include "src/graph/dag.hpp"
// Text/binary DAG serialization + canonical FNV-1a hashing (docs/FORMATS.md);
// text -> binary -> text round-trips bitwise.
#include "src/graph/dag_io.hpp"
// Lower-bound gadget constructions (zipper etc.) with proven cost gaps.
#include "src/graph/gadgets.hpp"
// The paper's generated datasets; bit-identical for a fixed seed on every
// platform (xoshiro256**-based, no std:: distributions).
#include "src/graph/generators.hpp"
// Matrix Market (.mtx) import feeding the mtx-* workload families.
#include "src/graph/mtx_io.hpp"
// Topological orders, acyclicity checks, transitive closures (pure).
#include "src/graph/topology.hpp"

// -- The MBSP model ---------------------------------------------------------
// MbspInstance = ComputeDag + Machine (P processors, r memory, g, L —
// optionally per-processor speeds/memories and NUMA-style comm groups).
#include "src/model/instance.hpp"
// Shared `head:key=value,...` spec grammar (workload + machine specs).
#include "src/model/spec.hpp"
// Name -> machine-kind registry (uniform / hetero / numa specs; canonical
// names key batch cells; see docs/MACHINES.md).
#include "src/model/machine_registry.hpp"
// MbspSchedule: per-processor superstep streams of compute/load/save steps.
#include "src/model/schedule.hpp"
// validate(): full feasibility audit of a schedule; pure function.
#include "src/model/validate.hpp"
// Synchronous/asynchronous cost objectives + per-superstep cost tables;
// pure functions of (instance, schedule).
#include "src/model/cost.hpp"
// Human-readable schedule reports.
#include "src/model/report.hpp"

// -- Stage 1: memory-oblivious BSP schedulers -------------------------------
// All stage-1 schedulers are deterministic given (instance, options).
#include "src/bsp/bsp_schedule.hpp"   // the stage-1 schedule container
#include "src/bsp/cilk_scheduler.hpp" // work-stealing-style list scheduler
#include "src/bsp/dfs_scheduler.hpp"  // P = 1 DFS pebbling order
#include "src/bsp/greedy_scheduler.hpp" // BSPg, the paper's main baseline
#include "src/bsp/refined_scheduler.hpp" // "ILP-BSP" LP-refined stage 1
// Eviction policies (clairvoyant / LRU) + cache simulator; deterministic.
#include "src/cache/cache_sim.hpp"
#include "src/cache/policy.hpp"

// -- Stage 2 and compute plans ----------------------------------------------
// ComputePlan + reversible PlanDelta edits + occurrence indexes (the LNS
// hot-path substrate; apply/undo is exact, asserted in debug builds).
#include "src/twostage/compute_plan.hpp"
// complete_memory(): clairvoyant/LRU memory completion; deterministic.
#include "src/twostage/memory_completion.hpp"
// run_baseline(): stage 1 + completion = the paper's two-stage baselines.
#include "src/twostage/two_stage.hpp"

// -- Holistic improvers -----------------------------------------------------
// Simulated-annealing LNS over plans (improve_plan); bitwise-reproducible
// per (seed, options) when iteration-capped; never worse than warm start.
#include "src/holistic/lns.hpp"
// K-worker parallel portfolio LNS with deterministic incumbent exchange
// at epoch barriers; thread-timing-independent in deterministic mode.
#include "src/holistic/portfolio.hpp"
// Incremental evaluation engine: O(delta) re-costing of LNS moves,
// bitwise-equal to the full evaluator (the oracle; asserted in debug).
#include "src/holistic/incremental_eval.hpp"
// Online schedule repair: typed InstanceDelta (exact apply/undo) +
// repair_plan() — patch the incumbent, then locality-masked polish;
// repaired costs are oracle-equal to a from-scratch evaluate_plan
// (docs/REPAIR.md).
#include "src/holistic/repair.hpp"
// DAG partitioning + divide-and-conquer pipeline for large instances.
#include "src/holistic/divide_conquer.hpp"
#include "src/holistic/partition.hpp"
// Sharded out-of-core pipeline: acyclic k-way partition, parallel
// per-shard LNS with shard-indexed seeds, boundary-masked global polish.
#include "src/holistic/shard.hpp"
// Exact P = 1 red-blue pebbler (optimal on small DAGs; deterministic).
#include "src/holistic/exact_pebbler.hpp"
// The full MBSP ILP formulation (Section 6.1).
#include "src/holistic/formulation.hpp"
// Facade: LNS on small DAGs, divide-and-conquer on large ones.
#include "src/holistic/scheduler.hpp"
// Dense simplex + branch-and-bound MILP solver (budget-aware, but the
// search tree order is deterministic; budget cuts are wall-clock).
#include "src/ilp/model.hpp"
#include "src/ilp/simplex.hpp"
#include "src/ilp/solver.hpp"

// -- Serving: the mbspd daemon ----------------------------------------------
// Length-prefixed binary wire protocol with offset-typed decode errors
// (docs/DAEMON.md); pure encode/decode, unit-testable without sockets.
#include "src/daemon/protocol.hpp"
// LRU schedule cache keyed by (canonical DAG hash, canonical machine
// name, scheduler spec); exact hits replay bitwise-identical plans.
#include "src/daemon/schedule_cache.hpp"
// In-process embeddable Unix-domain-socket server (examples/mbspd.cpp is
// the CLI wrapper); solves on the ThreadPool, drains on stop().
#include "src/daemon/server.hpp"
// Blocking client library (mbsp-client CLI, tests, bench_daemon).
#include "src/daemon/client.hpp"

// -- Harness: registries, batch engine, workloads ---------------------------
// MbspScheduler interface + flat SchedulerOptions/ScheduleResult rows.
#include "src/runner/scheduler.hpp"
// Name -> scheduler registry (pre-populated global; lookup is read-only
// and thread-safe after registration).
#include "src/runner/scheduler_registry.hpp"
// Parallel batch-experiment engine; result tables are bitwise identical
// for any thread count (cells indexed up front).
#include "src/runner/batch_runner.hpp"
// Workload spec grammar family:k=v,... + parameterized DAG families.
#include "src/workload/workload.hpp"
// Name -> workload-family registry (the instance-side registry mirror).
#include "src/workload/workload_registry.hpp"
// Structured corpus families (stencils, LU, FFT, attention, ...).
#include "src/workload/structured.hpp"
// Timed-arrival trace corpus (trace-grow / -drift / -dropout / -churn /
// -mixed): deterministic, hashable, streamable event sequences feeding
// the online-repair replay (docs/REPAIR.md).
#include "src/workload/trace.hpp"
