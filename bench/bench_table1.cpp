// Regenerates Table 1: synchronous MBSP cost of the two-stage baseline
// (BSPg + clairvoyant) vs the holistic ILP/LNS scheduler on the tiny
// dataset, with the paper's default parameters P = 4, r = 3*r0, g = 1,
// L = 10. Paper reference: geomean ratio 0.77x, range 0.99x .. 0.60x.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();

  struct Row {
    std::string name;
    double base = 0, ilp = 0;
  };
  std::vector<Row> rows(count);

  for_each_instance(count, [&](std::size_t i) {
    const MbspInstance inst =
        make_instance(dataset[i], 4, 3.0, 1, 10);
    HolisticOptions options;
    options.budget_ms = config.budget_ms;
    const HolisticOutcome out = holistic_schedule(inst, options);
    validate_or_die(inst, out.schedule);
    rows[i] = {inst.name(), out.baseline_cost, out.cost};
  });

  Table table({"Instance", "Base", "ILP", "ratio"});
  std::vector<double> ratios;
  for (const Row& row : rows) {
    ratios.push_back(row.ilp / row.base);
    table.add_row({row.name, cost_str(row.base), cost_str(row.ilp),
                   fmt(row.ilp / row.base, 2)});
  }
  emit(table, "Table 1: sync MBSP cost, baseline / ILP (P=4, r=3r0, L=10)",
       config, "table1");
  print_geomean(ratios, "Table 1");
  return 0;
}
