// Regenerates Table 1: synchronous MBSP cost of the two-stage baseline
// (BSPg + clairvoyant) vs the holistic ILP/LNS scheduler on the tiny
// dataset, with the paper's default parameters P = 4, r = 3*r0, g = 1,
// L = 10. Paper reference: geomean ratio 0.77x, range 0.99x .. 0.60x.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const std::vector<MbspInstance> instances =
      make_instances(tiny_dataset(config.seed), 4, 3.0, 1, 10);

  const std::vector<BatchCell> cells =
      make_runner(config).run_grid(instances, {"holistic"});

  Table table({"Instance", "Base", "ILP", "ratio"});
  std::vector<double> ratios;
  for (const BatchCell& cell : cells) {
    const ScheduleResult& res = cell_or_die(cell);
    ratios.push_back(res.cost / res.baseline_cost);
    table.add_row({cell.instance, cost_str(res.baseline_cost),
                   cost_str(res.cost), fmt(res.cost / res.baseline_cost, 2)});
  }
  emit(table, "Table 1: sync MBSP cost, baseline / ILP (P=4, r=3r0, L=10)",
       config, "table1");
  print_geomean(ratios, "Table 1");
  return 0;
}
