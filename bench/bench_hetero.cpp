// Heterogeneous-machine sweep: every scheduler point from the registry
// over a grid of machine models — speed skews (hetero:speeds=...) and
// two-level comm topologies (numa:groups=...) — across six corpus
// families. Not a paper table: the paper's experiments are uniform-MBSP
// only; this bench shows the machine axis opened by the machine registry
// and that schedulers *differentiate* once processors stop being equal.
//
// Two structural guarantees are enforced (abort on violation):
//  * uniform identity — the degenerate heterogeneous machine
//    (speeds=1, one group) reproduces the uniform machine's costs
//    bitwise, per (workload, scheduler) cell;
//  * iteration-capped determinism — all cells run with budget_ms = 0, so
//    the CSV artifact (MBSP_BENCH_CSV) is bit-identical everywhere.
//
// Environment knobs (on top of bench_common's):
//   MBSP_BENCH_HETERO_ITERS  LNS iteration cap (default 4000)

#include <cmath>
#include <map>

#include "bench/bench_common.hpp"

int main() {
  using namespace mbsp;
  using namespace mbsp::bench;

  const BenchConfig config = BenchConfig::from_env();
  const long iters = env_long("MBSP_BENCH_HETERO_ITERS", 4000);

  const std::vector<std::string> workloads{
      "stencil2d:nx=6,ny=6,steps=2", "wavefront:nx=8,ny=8", "lu:blocks=4",
      "fft:n=16", "attention:seq=6,heads=2",
      "mapreduce:maps=8,reducers=4,rounds=2",
  };
  // The machine grid: the uniform anchor, its degenerate heterogeneous
  // twin (must match bitwise), three speed skews, three comm topologies.
  const std::string uniform_spec = "uniform:P=8";
  const std::string degenerate_spec = "hetero:P=8,speeds=1";
  const std::vector<std::string> machines{
      uniform_spec,
      degenerate_spec,
      "hetero:P=8,speeds=1x4+2x4",
      "hetero:P=8,speeds=1x6+4x2",
      "hetero:P=8,speeds=1x4+2x4,mems=1x4+2x4",
      "numa:groups=2x4,gin=1,gout=4",
      "numa:groups=4x2,gin=1,gout=4",
      "numa:groups=2x4,gin=1,gout=8,Lg=5",
  };
  const std::vector<std::string> schedulers{"bspg+clairvoyant", "cilk+lru",
                                            "lns"};

  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const MachineRegistry& machine_registry = MachineRegistry::global();
  // Cells carry canonical machine names (defaults dropped), not the raw
  // spellings above; the map joins the two.
  std::map<std::string, std::string> canonical_of;
  std::vector<MbspInstance> instances;
  for (const std::string& spec : workloads) {
    std::string error;
    auto dag = registry.make_dag(spec, config.seed, &error);
    if (!dag) {
      std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    const double r0 = min_memory_r0(*dag);
    for (const std::string& machine_spec : machines) {
      auto machine = machine_registry.make_machine(machine_spec, r0, &error);
      if (!machine) {
        std::fprintf(stderr, "bad machine '%s': %s\n", machine_spec.c_str(),
                     error.c_str());
        return 1;
      }
      canonical_of[machine_spec] = machine->name;
      instances.push_back({*dag, std::move(*machine)});
    }
  }

  BatchOptions batch;
  batch.scheduler = scheduler_options(config);
  batch.scheduler.budget_ms = 0;  // iteration-capped: bit-reproducible
  batch.scheduler.max_iterations = iters;
  const std::vector<BatchCell> cells =
      BatchRunner(batch).run_grid(instances, schedulers);
  emit(batch_table(cells, /*include_wall_time=*/false, /*include_hash=*/true),
       "heterogeneous-machine sweep (iteration-capped)", config, "hetero");

  // Uniform identity: the degenerate heterogeneous machine must reproduce
  // the uniform machine's cost bitwise in every cell.
  std::map<std::pair<std::string, std::string>, double> uniform_cost;
  for (const BatchCell& cell : cells) {
    if (cell.machine == canonical_of.at(uniform_spec)) {
      uniform_cost[{cell.instance, cell.scheduler}] = cell_or_die(cell).cost;
    }
  }
  for (const BatchCell& cell : cells) {
    if (cell.machine != canonical_of.at(degenerate_spec)) continue;
    const double expect = uniform_cost.at({cell.instance, cell.scheduler});
    const double got = cell_or_die(cell).cost;
    if (got != expect) {
      std::fprintf(stderr,
                   "uniform identity violated: %s/%s cost %.17g on '%s' vs "
                   "%.17g on '%s'\n",
                   cell.instance.c_str(), cell.scheduler.c_str(), got,
                   degenerate_spec.c_str(), expect, uniform_spec.c_str());
      std::abort();
    }
  }

  // Differentiation summary: per machine, the geometric-mean cost ratio
  // of each scheduler against bspg+clairvoyant on the same (workload,
  // machine) — heterogeneity moves these ratios apart.
  Table summary({"machine", "scheduler", "geomean cost ratio vs bspg"});
  PerfReport report("hetero");
  std::vector<double> lns_ratios_all;
  std::vector<double> lns_rates_all;
  for (const std::string& machine_spec : machines) {
    for (const std::string& scheduler : schedulers) {
      if (scheduler == schedulers.front()) continue;
      const std::string& machine_name = canonical_of.at(machine_spec);
      std::vector<double> ratios;
      for (const BatchCell& cell : cells) {
        if (cell.machine != machine_name || cell.scheduler != scheduler) {
          continue;
        }
        const BatchCell* reference = nullptr;
        for (const BatchCell& other : cells) {
          if (other.machine == machine_name &&
              other.instance == cell.instance &&
              other.scheduler == schedulers.front()) {
            reference = &other;
            break;
          }
        }
        ratios.push_back(cell_or_die(cell).cost /
                         cell_or_die(*reference).cost);
      }
      summary.add_row({machine_spec, scheduler,
                       fmt(geometric_mean(ratios), 3)});
      if (scheduler == "lns") {
        report.add_family(machine_spec, "geomean_cost_ratio_lns",
                          geometric_mean(ratios));
        lns_ratios_all.insert(lns_ratios_all.end(), ratios.begin(),
                              ratios.end());
      }
    }
    // LNS solve throughput on this machine point (iteration-capped runs,
    // so iterations / wall time is the engine's sustained rate).
    std::vector<double> rates;
    for (const BatchCell& cell : cells) {
      if (cell.machine != canonical_of.at(machine_spec) ||
          cell.scheduler != "lns") {
        continue;
      }
      rates.push_back(static_cast<double>(iters) * 1000.0 /
                      std::max(cell_or_die(cell).wall_ms, 1e-6));
    }
    report.add_family(machine_spec, "lns_iters_per_sec",
                      geometric_mean(rates));
    lns_rates_all.insert(lns_rates_all.end(), rates.begin(), rates.end());
  }
  emit(summary, "scheduler differentiation by machine", config,
       "hetero_summary");
  // The cost ratios come from iteration-capped deterministic solves, so
  // they are reproducible across hosts and gate the trajectory; absolute
  // iteration rates are host-bound and informational.
  report.add_metric("geomean_cost_ratio_lns", geometric_mean(lns_ratios_all),
                    /*higher_is_better=*/false, /*gated=*/true);
  report.add_metric("geomean_lns_iters_per_sec",
                    geometric_mean(lns_rates_all),
                    /*higher_is_better=*/true, /*gated=*/false);
  report.write();

  int failures = 0;
  for (const BatchCell& cell : cells) failures += !cell.ok;
  if (failures > 0) {
    std::printf("%d of %zu cells failed\n", failures, cells.size());
    return 1;
  }
  return 0;
}
