// Regenerates the theory section's constructions as measurements:
//  * Theorem 4.1  — the zipper gadget's two-stage vs holistic cost ratio
//                   grows linearly in d (the proof's Theta(n) separation);
//  * Lemma 5.3    — the async-optimal schedule is ~P/2 worse synchronously;
//  * Lemma 5.4    — the sync-optimal schedule is ~4/3 worse asynchronously;
//  * Lemma 5.1    — memory management is partition-hard: the YES instance
//                   meets the 2*alpha I/O bound, the NO instance cannot;
//  * Lemma 6.1    — the optimum trades one load for a chain recomputation
//                   once g > d, requiring d-1 extra (unmergeable) steps.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

void theorem41(const BenchConfig& config) {
  Table table({"d", "m", "two-stage", "holistic", "ratio", "d/4"});
  for (int d : {2, 4, 6, 8, 12, 16}) {
    const int m = 2 * d;
    const ZipperGadget z = zipper_gadget(d, m);
    ComputeDag dag = z.dag;
    const MbspInstance inst{std::move(dag),
                            Architecture::make(2, z.d + 2, 1, 0)};
    // Stage 1's BSP optimum: one chain per processor (proof, Figure 2 left).
    ComputePlan chain_split;
    chain_split.num_procs = 2;
    chain_split.seq.resize(2);
    for (int i = 0; i < m; ++i) {
      chain_split.seq[0].push_back({z.v[i], 0});
      chain_split.seq[1].push_back({z.u[i], 0});
    }
    const MbspSchedule two_stage =
        complete_memory(inst, chain_split, PolicyKind::kClairvoyant);
    validate_or_die(inst, two_stage);
    // Holistic optimum: children of H1 on p0, of H2 on p1 (Figure 2 right).
    ComputePlan holistic;
    holistic.num_procs = 2;
    holistic.seq.resize(2);
    for (int i = 0; i < m; ++i) {
      if (i % 2 == 0) {
        holistic.seq[0].push_back({z.u[i], i});
        holistic.seq[1].push_back({z.v[i], i});
      } else {
        holistic.seq[0].push_back({z.v[i], i});
        holistic.seq[1].push_back({z.u[i], i});
      }
    }
    const MbspSchedule opt =
        complete_memory(inst, holistic, PolicyKind::kClairvoyant);
    validate_or_die(inst, opt);
    const double c_two = sync_cost(inst, two_stage);
    const double c_opt = sync_cost(inst, opt);
    table.add_row({std::to_string(d), std::to_string(m), cost_str(c_two),
                   cost_str(c_opt), fmt(c_two / c_opt, 2), fmt(d / 4.0, 2)});
  }
  emit(table, "Theorem 4.1: two-stage suboptimality on the zipper gadget",
       config, "theory_thm41");
}

void lemma53(const BenchConfig& config) {
  Table table({"P", "Z", "sync(async-opt)", "sync(sync-opt)", "ratio",
               "P/2"});
  for (int P : {4, 8, 12}) {
    const double Z = 200;
    const PairChainsGadget gadget = lemma53_gadget(P, Z);
    ComputeDag dag = gadget.dag;
    const MbspInstance inst{std::move(dag),
                            Architecture::make(P, 1e9, 1e-9, 0)};
    const int pairs = gadget.pairs;
    // Async-optimal: pair i runs its stages in supersteps 1..pairs.
    ComputePlan async_opt;
    async_opt.num_procs = P;
    async_opt.seq.resize(P);
    for (int i = 0; i < pairs; ++i) {
      for (int j = 0; j < pairs; ++j) {
        async_opt.seq[2 * i].push_back({gadget.u[i][j], j + 1});
        async_opt.seq[2 * i + 1].push_back({gadget.v[i][j], j + 1});
      }
    }
    // Sync-optimal: pair i shifted so every heavy stage (j == i) lands in
    // the same superstep `pairs`.
    ComputePlan sync_opt = async_opt;
    for (int i = 0; i < pairs; ++i) {
      for (int j = 0; j < pairs; ++j) {
        sync_opt.seq[2 * i][j].superstep = pairs + j - i + 1;
        sync_opt.seq[2 * i + 1][j].superstep = pairs + j - i + 1;
      }
    }
    const MbspSchedule sched_a =
        complete_memory(inst, async_opt, PolicyKind::kClairvoyant);
    const MbspSchedule sched_s =
        complete_memory(inst, sync_opt, PolicyKind::kClairvoyant);
    validate_or_die(inst, sched_a);
    validate_or_die(inst, sched_s);
    const double a_sync = sync_cost(inst, sched_a);
    const double s_sync = sync_cost(inst, sched_s);
    table.add_row({std::to_string(P), fmt(Z, 0), cost_str(a_sync),
                   cost_str(s_sync), fmt(a_sync / s_sync, 2),
                   fmt(P / 2.0, 1)});
  }
  emit(table, "Lemma 5.3: async-optimal schedules evaluated synchronously",
       config, "theory_lem53");
}

void lemma54(const BenchConfig& config) {
  Table table({"Z", "async(sync-opt)", "async(async-opt)", "ratio", "4/3"});
  for (double Z : {10.0, 100.0, 1000.0}) {
    const SyncGapGadget g = lemma54_gadget(Z);
    ComputeDag dag = g.dag;
    const MbspInstance inst{std::move(dag),
                            Architecture::make(5, 1e9, 1e-9, 0)};
    // Sync-optimal: w in superstep 1, w1 in superstep 2 on the same
    // processor, w2..w4 in superstep 3 (cost 4Z - 2 in both models for the
    // processor that runs w then w1).
    ComputePlan sync_opt;
    sync_opt.num_procs = 5;
    sync_opt.seq.resize(5);
    sync_opt.seq[0] = {{g.u1, 1}, {g.u3, 2}};
    sync_opt.seq[1] = {{g.u2, 1}, {g.u4, 2}};
    sync_opt.seq[2] = {{g.w, 1}, {g.w1, 2}, {g.w2, 3}};
    sync_opt.seq[3] = {{g.w3, 3}};
    sync_opt.seq[4] = {{g.w4, 3}};
    // Async-optimal: w and w1 in superstep 1 on different processors.
    ComputePlan async_opt;
    async_opt.num_procs = 5;
    async_opt.seq.resize(5);
    async_opt.seq[0] = {{g.u1, 1}, {g.u3, 2}};
    async_opt.seq[1] = {{g.u2, 1}, {g.u4, 2}};
    async_opt.seq[2] = {{g.w1, 1}, {g.w2, 2}};
    async_opt.seq[3] = {{g.w, 1}, {g.w3, 2}};
    async_opt.seq[4] = {{g.w4, 2}};
    const MbspSchedule s_sync =
        complete_memory(inst, sync_opt, PolicyKind::kClairvoyant);
    const MbspSchedule s_async =
        complete_memory(inst, async_opt, PolicyKind::kClairvoyant);
    validate_or_die(inst, s_sync);
    validate_or_die(inst, s_async);
    const double a_of_sync = async_cost(inst, s_sync);
    const double a_of_async = async_cost(inst, s_async);
    table.add_row({fmt(Z, 0), cost_str(a_of_sync), cost_str(a_of_async),
                   fmt(a_of_sync / a_of_async, 3), "1.333"});
  }
  emit(table, "Lemma 5.4: sync-optimal schedules evaluated asynchronously",
       config, "theory_lem54");
}

void lemma51(const BenchConfig& config) {
  Table table({"instance", "alpha", "optimal I/O", "2*alpha",
               "bound attained"});
  // YES: {2,2,2,2} partitions into 4+4; NO: {1,1,1,2} (sum 5, odd): the
  // optimal I/O meets 2*alpha exactly iff a perfect split exists.
  for (const auto& [label, weights] :
       {std::pair<const char*, std::vector<double>>{"YES {2,2,2,2}",
                                                    {2, 2, 2, 2}},
        std::pair<const char*, std::vector<double>>{"NO  {1,1,1,2}",
                                                    {1, 1, 1, 2}}}) {
    const PartitionGadget gadget = lemma51_gadget(weights);
    ComputeDag dag = gadget.dag;
    const MbspInstance inst{
        std::move(dag),
        Architecture::make(1, gadget.alpha + 1e-4, 1, 0)};
    const ExactPebbleResult res = exact_pebble(inst);
    if (!res.solved) {
      table.add_row({label, fmt(gadget.alpha, 0), "unsolved", "-", "-"});
      continue;
    }
    // Subtract the compute cost (3 unit computes) to isolate I/O.
    const double io = res.cost - 3.0;
    const double bound = 2 * gadget.alpha;
    table.add_row({label, fmt(gadget.alpha, 0), fmt(io, 4), fmt(bound, 0),
                   io <= bound + 1e-6 ? "yes" : "no (partition infeasible)"});
  }
  emit(table,
       "Lemma 5.1: memory management encodes number partitioning (P=1)",
       config, "theory_lem51");
}

void lemma61(const BenchConfig& config) {
  Table table({"g", "optimal cost", "ops in schedule", "recomputed nodes"});
  const RecomputeGadget gadget = lemma61_gadget(3, 3);
  for (double g : {1.0, 3.0, 6.0, 12.0}) {
    ComputeDag dag = gadget.dag;
    const MbspInstance inst{std::move(dag), Architecture::make(1, 4, g, 0)};
    const ExactPebbleResult res = exact_pebble(inst);
    if (!res.solved) {
      table.add_row({fmt(g, 0), "unsolved", "-", "-"});
      continue;
    }
    std::size_t recomputed = 0;
    for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
      recomputed += res.schedule.compute_count(v) > 1;
    }
    table.add_row({fmt(g, 0), cost_str(res.cost),
                   std::to_string(res.schedule.num_ops()),
                   std::to_string(recomputed)});
  }
  emit(table,
       "Lemma 6.1: once g > d the optimum recomputes a chain, taking more "
       "steps at lower cost",
       config, "theory_lem61");
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  theorem41(config);
  lemma53(config);
  lemma54(config);
  lemma51(config);
  lemma61(config);
  return 0;
}
