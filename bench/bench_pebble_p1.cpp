// Regenerates the P = 1 experiment of Section 7.2: single-processor
// red-blue pebbling with compute costs. Baseline: DFS order + clairvoyant
// eviction; our ILP/LNS tries to improve it. Paper reference: the DFS
// baseline is strong — at r = 3*r0 the ILP improved only 2 of 15 instances
// (exp family), at r = r0 none.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();

  // Cell layout: i-major, r-factor-minor (r = 3r0 then r = r0).
  SchedulerOptions options = scheduler_options(config);
  options.warm_start = BaselineKind::kDfsClairvoyant;
  std::vector<MbspInstance> instances;
  instances.reserve(count * 2);
  for (std::size_t i = 0; i < count; ++i) {
    instances.push_back(make_instance(dataset[i], 1, 3.0, 1, 0));
    instances.push_back(make_instance(dataset[i], 1, 1.0, 1, 0));
  }
  std::vector<BatchRunner::CellSpec> specs;
  for (const MbspInstance& inst : instances) {
    specs.push_back({&inst, "lns", options});
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"Instance", "DFS+cv (r=3r0)", "ILP (r=3r0)", "DFS+cv (r=r0)",
               "ILP (r=r0)"});
  int improved3 = 0, improved1 = 0;
  std::vector<double> r3, r1;
  for (std::size_t i = 0; i < count; ++i) {
    const ScheduleResult& at3 = cell_or_die(cells[2 * i]);
    const ScheduleResult& at1 = cell_or_die(cells[2 * i + 1]);
    const double base3 = at3.baseline_cost, ilp3 = std::min(at3.cost, base3);
    const double base1 = at1.baseline_cost, ilp1 = std::min(at1.cost, base1);
    table.add_row({dataset[i].name(), cost_str(base3), cost_str(ilp3),
                   cost_str(base1), cost_str(ilp1)});
    improved3 += ilp3 < base3 - 1e-9;
    improved1 += ilp1 < base1 - 1e-9;
    r3.push_back(ilp3 / base3);
    r1.push_back(ilp1 / base1);
  }
  emit(table, "Section 7.2 (P=1): red-blue pebbling with compute costs",
       config, "pebble_p1");
  std::printf("instances improved at r=3r0: %d / %zu (paper: 2 / 15)\n",
              improved3, count);
  std::printf("instances improved at r=r0:  %d / %zu (paper: 0 / 15)\n",
              improved1, count);
  print_geomean(r3, "r=3r0");
  print_geomean(r1, "r=r0");
  return 0;
}
