// Regenerates the P = 1 experiment of Section 7.2: single-processor
// red-blue pebbling with compute costs. Baseline: DFS order + clairvoyant
// eviction; our ILP/LNS tries to improve it. Paper reference: the DFS
// baseline is strong — at r = 3*r0 the ILP improved only 2 of 15 instances
// (exp family), at r = r0 none.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();

  struct Row {
    std::string name;
    double base3 = 0, ilp3 = 0, base1 = 0, ilp1 = 0;
  };
  std::vector<Row> rows(count);

  for_each_instance(count * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const double r_factor = job % 2 == 0 ? 3.0 : 1.0;
    const MbspInstance inst =
        make_instance(dataset[i], 1, r_factor, 1, 0);
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kDfsClairvoyant);
    const double base_cost = sync_cost(inst, base.mbsp);
    HolisticOptions options;
    options.budget_ms = config.budget_ms;
    const HolisticOutcome out = holistic_improve(inst, base.plan, options);
    Row& row = rows[i];
    row.name = inst.name();
    if (job % 2 == 0) {
      row.base3 = base_cost;
      row.ilp3 = std::min(out.cost, base_cost);
    } else {
      row.base1 = base_cost;
      row.ilp1 = std::min(out.cost, base_cost);
    }
  });

  Table table({"Instance", "DFS+cv (r=3r0)", "ILP (r=3r0)", "DFS+cv (r=r0)",
               "ILP (r=r0)"});
  int improved3 = 0, improved1 = 0;
  std::vector<double> r3, r1;
  for (const Row& row : rows) {
    table.add_row({row.name, cost_str(row.base3), cost_str(row.ilp3),
                   cost_str(row.base1), cost_str(row.ilp1)});
    improved3 += row.ilp3 < row.base3 - 1e-9;
    improved1 += row.ilp1 < row.base1 - 1e-9;
    r3.push_back(row.ilp3 / row.base3);
    r1.push_back(row.ilp1 / row.base1);
  }
  emit(table, "Section 7.2 (P=1): red-blue pebbling with compute costs",
       config, "pebble_p1");
  std::printf("instances improved at r=3r0: %d / %zu (paper: 2 / 15)\n",
              improved3, count);
  std::printf("instances improved at r=r0:  %d / %zu (paper: 0 / 15)\n",
              improved1, count);
  print_geomean(r3, "r=3r0");
  print_geomean(r1, "r=r0");
  return 0;
}
