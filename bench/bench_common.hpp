#pragma once
// Shared harness for the experiment benches. Each bench binary regenerates
// one table or figure of the paper: it builds the dataset, runs the named
// schedulers from the SchedulerRegistry through the BatchRunner (in
// parallel across cells; each solve is single-threaded and deterministic),
// and prints the paper's rows plus geometric-mean ratios.
//
// Environment knobs:
//   MBSP_BENCH_BUDGET_MS  per-instance optimization budget (default 1500)
//   MBSP_BENCH_SEED       dataset seed (default 2025)
//   MBSP_BENCH_CSV        if set, tables are also written to <value>_<name>.csv

#include <cstdio>
#include <string>
#include <vector>

#include "include/mbsp/mbsp.hpp"
#include "src/util/env.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp::bench {

struct BenchConfig {
  double budget_ms = 1500;
  std::uint64_t seed = 2025;
  std::string csv_prefix;

  static BenchConfig from_env() {
    BenchConfig config;
    config.budget_ms = env_double("MBSP_BENCH_BUDGET_MS", 1500);
    config.seed = static_cast<std::uint64_t>(env_long("MBSP_BENCH_SEED", 2025));
    config.csv_prefix = env_string("MBSP_BENCH_CSV", "");
    return config;
  }
};

inline MbspInstance make_instance(ComputeDag dag, int P, double r_factor,
                                  double g = 1, double L = 10) {
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, g, L)};
}

/// Instantiates a whole dataset at one architecture point.
inline std::vector<MbspInstance> make_instances(std::vector<ComputeDag> dags,
                                                int P, double r_factor,
                                                double g = 1, double L = 10) {
  std::vector<MbspInstance> instances;
  instances.reserve(dags.size());
  for (ComputeDag& dag : dags) {
    instances.push_back(make_instance(std::move(dag), P, r_factor, g, L));
  }
  return instances;
}

/// Registry-facing options derived from the bench environment knobs.
inline SchedulerOptions scheduler_options(
    const BenchConfig& config, CostModel cost = CostModel::kSynchronous) {
  SchedulerOptions options;
  options.budget_ms = config.budget_ms;
  options.cost = cost;
  return options;
}

/// The bench-wide batch engine (validates every produced schedule).
inline BatchRunner make_runner(const BenchConfig& config,
                               CostModel cost = CostModel::kSynchronous) {
  BatchOptions batch;
  batch.scheduler = scheduler_options(config, cost);
  return BatchRunner(batch);
}

/// Unwraps a cell, aborting with its error on failure (bench analogue of
/// validate_or_die: a bench must not print a table from a broken cell).
inline const ScheduleResult& cell_or_die(const BatchCell& cell) {
  if (!cell.ok) {
    std::fprintf(stderr, "batch cell %s/%s failed: %s\n",
                 cell.instance.c_str(), cell.scheduler.c_str(),
                 cell.error.c_str());
    std::abort();
  }
  return cell.result;
}

/// Paper-style cost formatting (the datasets have integral costs).
inline std::string cost_str(double cost) {
  return fmt(cost, cost == static_cast<long long>(cost) ? 0 : 1);
}

inline void emit(const Table& table, const std::string& title,
                 const BenchConfig& config, const std::string& name) {
  std::fputs(table.to_text(title).c_str(), stdout);
  std::fputs("\n", stdout);
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "_" + name + ".csv");
  }
}

/// Runs `fn(i)` for each instance index in parallel and waits.
inline void for_each_instance(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(std::min<std::size_t>(
      count, std::max(1u, std::thread::hardware_concurrency())));
  parallel_for(pool, count, fn);
}

/// Geometric-mean line in the paper's "0.77x factor" phrasing.
inline void print_geomean(const std::vector<double>& ratios,
                          const char* label) {
  std::printf("%s: %.2fx geometric-mean cost ratio (ILP/baseline)\n", label,
              geometric_mean(ratios));
}

}  // namespace mbsp::bench
