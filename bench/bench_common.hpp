#pragma once
// Shared harness for the experiment benches. Each bench binary regenerates
// one table or figure of the paper: it builds the dataset, runs the named
// schedulers from the SchedulerRegistry through the BatchRunner (in
// parallel across cells; each solve is single-threaded and deterministic),
// and prints the paper's rows plus geometric-mean ratios.
//
// Environment knobs:
//   MBSP_BENCH_BUDGET_MS  per-instance optimization budget (default 1500)
//   MBSP_BENCH_SEED       dataset seed (default 2025)
//   MBSP_BENCH_CSV        if set, tables are also written to <value>_<name>.csv

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "include/mbsp/mbsp.hpp"
#include "src/util/env.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp::bench {

struct BenchConfig {
  double budget_ms = 1500;
  std::uint64_t seed = 2025;
  std::string csv_prefix;

  static BenchConfig from_env() {
    BenchConfig config;
    config.budget_ms = env_double("MBSP_BENCH_BUDGET_MS", 1500);
    config.seed = static_cast<std::uint64_t>(env_long("MBSP_BENCH_SEED", 2025));
    config.csv_prefix = env_string("MBSP_BENCH_CSV", "");
    return config;
  }
};

inline MbspInstance make_instance(ComputeDag dag, int P, double r_factor,
                                  double g = 1, double L = 10) {
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, g, L)};
}

/// Instantiates a whole dataset at one architecture point.
inline std::vector<MbspInstance> make_instances(std::vector<ComputeDag> dags,
                                                int P, double r_factor,
                                                double g = 1, double L = 10) {
  std::vector<MbspInstance> instances;
  instances.reserve(dags.size());
  for (ComputeDag& dag : dags) {
    instances.push_back(make_instance(std::move(dag), P, r_factor, g, L));
  }
  return instances;
}

/// Registry-facing options derived from the bench environment knobs.
inline SchedulerOptions scheduler_options(
    const BenchConfig& config, CostModel cost = CostModel::kSynchronous) {
  SchedulerOptions options;
  options.budget_ms = config.budget_ms;
  options.cost = cost;
  return options;
}

/// The bench-wide batch engine (validates every produced schedule).
inline BatchRunner make_runner(const BenchConfig& config,
                               CostModel cost = CostModel::kSynchronous) {
  BatchOptions batch;
  batch.scheduler = scheduler_options(config, cost);
  return BatchRunner(batch);
}

/// Unwraps a cell, aborting with its error on failure (bench analogue of
/// validate_or_die: a bench must not print a table from a broken cell).
inline const ScheduleResult& cell_or_die(const BatchCell& cell) {
  if (!cell.ok) {
    std::fprintf(stderr, "batch cell %s/%s failed: %s\n",
                 cell.instance.c_str(), cell.scheduler.c_str(),
                 cell.error.c_str());
    std::abort();
  }
  return cell.result;
}

/// Paper-style cost formatting (the datasets have integral costs).
inline std::string cost_str(double cost) {
  return fmt(cost, cost == static_cast<long long>(cost) ? 0 : 1);
}

inline void emit(const Table& table, const std::string& title,
                 const BenchConfig& config, const std::string& name) {
  std::fputs(table.to_text(title).c_str(), stdout);
  std::fputs("\n", stdout);
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "_" + name + ".csv");
  }
}

/// Peak resident set size of this process in MiB (0 where unsupported).
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#endif
#else
  return 0;
#endif
}

/// Machine-readable perf-trajectory report: one BENCH_<name>.json per
/// bench binary, compared against the committed baseline in
/// bench/baselines/ by tools/bench_compare.py (the CI perf gate — see
/// docs/PERFORMANCE.md). Each metric declares its direction and whether a
/// regression beyond the comparator's noise threshold fails the build:
/// machine-relative metrics (speedups, cost ratios) gate; absolute ones
/// (iters/s, RSS) are informational because they track the host, not the
/// code. Peak RSS is sampled at write() time automatically.
class PerfReport {
 public:
  explicit PerfReport(std::string bench) : bench_(std::move(bench)) {}

  /// Top-level summary metric (e.g. a geomean across families).
  void add_metric(const std::string& name, double value,
                  bool higher_is_better, bool gated) {
    metrics_.push_back({name, value, higher_is_better, gated});
  }

  /// Per-family detail row; families and their metrics keep insertion
  /// order so the JSON diffs cleanly run-to-run.
  void add_family(const std::string& family, const std::string& metric,
                  double value) {
    for (auto& [name, values] : families_) {
      if (name == family) {
        values.emplace_back(metric, value);
        return;
      }
    }
    families_.push_back({family, {{metric, value}}});
  }

  /// Writes BENCH_<bench>.json into the working directory (the CI job
  /// uploads it and feeds it to the comparator).
  void write() const { write_to("BENCH_" + bench_ + ".json"); }

  void write_to(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::abort();
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    std::fprintf(f, "  \"peak_rss_mb\": %s,\n", num(peak_rss_mb()).c_str());
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f,
                   "%s\n    \"%s\": {\"value\": %s, \"higher_is_better\": %s, "
                   "\"gated\": %s}",
                   i == 0 ? "" : ",", m.name.c_str(), num(m.value).c_str(),
                   m.higher_is_better ? "true" : "false",
                   m.gated ? "true" : "false");
    }
    std::fprintf(f, "\n  },\n  \"families\": {");
    for (std::size_t i = 0; i < families_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": {", i == 0 ? "" : ",",
                   families_[i].name.c_str());
      const auto& values = families_[i].values;
      for (std::size_t j = 0; j < values.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     values[j].first.c_str(), num(values[j].second).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("perf report written to %s\n", path.c_str());
  }

 private:
  struct Metric {
    std::string name;
    double value;
    bool higher_is_better;
    bool gated;
  };
  struct Family {
    std::string name;
    std::vector<std::pair<std::string, double>> values;
  };

  /// JSON number: shortest round-trip-safe formatting, never NaN/Inf
  /// (both are invalid JSON — clamp to 0 so a degenerate run still
  /// produces a parseable report the comparator can then reject).
  static std::string num(double v) {
    if (!(v == v) || v > 1e308 || v < -1e308) v = 0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string bench_;
  std::vector<Metric> metrics_;
  std::vector<Family> families_;
};

/// Runs `fn(i)` for each instance index in parallel and waits.
inline void for_each_instance(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(std::min<std::size_t>(
      count, std::max(1u, std::thread::hardware_concurrency())));
  parallel_for(pool, count, fn);
}

/// Geometric-mean line in the paper's "0.77x factor" phrasing.
inline void print_geomean(const std::vector<double>& ratios,
                          const char* label) {
  std::printf("%s: %.2fx geometric-mean cost ratio (ILP/baseline)\n", label,
              geometric_mean(ratios));
}

}  // namespace mbsp::bench
