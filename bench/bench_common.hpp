#pragma once
// Shared harness for the experiment benches. Each bench binary regenerates
// one table or figure of the paper: it builds the dataset, runs the
// baseline(s) and the holistic scheduler per instance (in parallel across
// instances; each solve is single-threaded and deterministic), and prints
// the paper's rows plus geometric-mean ratios.
//
// Environment knobs:
//   MBSP_BENCH_BUDGET_MS  per-instance optimization budget (default 1500)
//   MBSP_BENCH_SEED       dataset seed (default 2025)
//   MBSP_BENCH_CSV        if set, tables are also written to <value>_<name>.csv

#include <cstdio>
#include <string>
#include <vector>

#include "include/mbsp/mbsp.hpp"
#include "src/util/env.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp::bench {

struct BenchConfig {
  double budget_ms = 1500;
  std::uint64_t seed = 2025;
  std::string csv_prefix;

  static BenchConfig from_env() {
    BenchConfig config;
    config.budget_ms = env_double("MBSP_BENCH_BUDGET_MS", 1500);
    config.seed = static_cast<std::uint64_t>(env_long("MBSP_BENCH_SEED", 2025));
    config.csv_prefix = env_string("MBSP_BENCH_CSV", "");
    return config;
  }
};

inline MbspInstance make_instance(ComputeDag dag, int P, double r_factor,
                                  double g = 1, double L = 10) {
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, g, L)};
}

/// Paper-style cost formatting (the datasets have integral costs).
inline std::string cost_str(double cost) {
  return fmt(cost, cost == static_cast<long long>(cost) ? 0 : 1);
}

inline void emit(const Table& table, const std::string& title,
                 const BenchConfig& config, const std::string& name) {
  std::fputs(table.to_text(title).c_str(), stdout);
  std::fputs("\n", stdout);
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "_" + name + ".csv");
  }
}

/// Runs `fn(i)` for each instance index in parallel and waits.
inline void for_each_instance(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(std::min<std::size_t>(
      count, std::max(1u, std::thread::hardware_concurrency())));
  parallel_for(pool, count, fn);
}

/// Geometric-mean line in the paper's "0.77x factor" phrasing.
inline void print_geomean(const std::vector<double>& ratios,
                          const char* label) {
  std::printf("%s: %.2fx geometric-mean cost ratio (ILP/baseline)\n", label,
              geometric_mean(ratios));
}

}  // namespace mbsp::bench
