// Workload-corpus scaling bench: every structured family at three size
// points, run through the registry baselines over the parallel
// BatchRunner. Not a paper table — this bench tracks how schedule cost
// and I/O scale with instance size across the corpus families, and its
// CSV (MBSP_BENCH_CSV) is the artifact CI uploads.

#include "bench/bench_common.hpp"

int main() {
  using namespace mbsp;
  using namespace mbsp::bench;

  const BenchConfig config = BenchConfig::from_env();
  // Two-stage baselines only: cheap enough that the full grid stays fast,
  // and (budget-free) bit-reproducible across machines.
  const std::vector<std::string> schedulers{"bspg+clairvoyant", "cilk+lru",
                                            "dfs+clairvoyant"};
  const std::vector<std::string> specs{
      // family            small / medium / large
      "stencil2d:nx=4,ny=4,steps=2",
      "stencil2d:nx=8,ny=8,steps=3",
      "stencil2d:nx=12,ny=12,steps=4",
      "stencil3d:nx=3,ny=3,nz=3,steps=2",
      "stencil3d:nx=4,ny=4,nz=4,steps=3",
      "wavefront:nx=6,ny=6",
      "wavefront:nx=12,ny=12",
      "lu:blocks=3",
      "lu:blocks=5",
      "cholesky:blocks=4",
      "cholesky:blocks=6",
      "fft:n=8",
      "fft:n=32",
      "attention:seq=4,heads=2",
      "attention:seq=8,heads=2",
      "mapreduce:maps=6,reducers=4,rounds=2",
      "mapreduce:maps=12,reducers=8,rounds=3",
  };

  const WorkloadRegistry& registry = WorkloadRegistry::global();
  std::vector<MbspInstance> instances;
  Table sizes({"workload", "nodes", "edges", "dag_hash"});
  for (const std::string& spec : specs) {
    std::string error;
    auto inst = registry.make_instance(spec, config.seed, /*P=*/4,
                                       /*r_factor=*/3, /*g=*/1, /*L=*/10,
                                       &error);
    if (!inst) {
      std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    sizes.add_row({inst->name(), std::to_string(inst->dag.num_nodes()),
                   std::to_string(inst->dag.num_edges()),
                   dag_hash_hex(dag_canonical_hash(inst->dag))});
    instances.push_back(std::move(*inst));
  }
  emit(sizes, "workload corpus sizes", config, "workload_sizes");

  BatchOptions batch;
  batch.scheduler = scheduler_options(config);
  batch.scheduler.budget_ms = 0;  // baselines need no anytime budget
  const std::vector<BatchCell> cells =
      BatchRunner(batch).run_grid(instances, schedulers);
  emit(batch_table(cells, /*include_wall_time=*/false, /*include_hash=*/true),
       "workload corpus scaling (P=4, r=3*r0)", config, "workloads");

  int failures = 0;
  for (const BatchCell& cell : cells) failures += !cell.ok;
  if (failures > 0) {
    std::printf("%d of %zu cells failed\n", failures, cells.size());
    return 1;
  }
  return 0;
}
