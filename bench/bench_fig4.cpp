// Regenerates Figure 4: the distribution of per-instance cost-reduction
// ratios (ILP / baseline) for the base case and the four parameter
// variants. The paper shows box plots; we print the five-number summary
// per case (an ASCII rendition of the same figure).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

struct Variant {
  const char* label;
  int P;
  double r_factor, L;
  CostModel cost;
};

constexpr Variant kVariants[] = {
    {"base", 4, 3.0, 10, CostModel::kSynchronous},
    {"r=5r0", 4, 5.0, 10, CostModel::kSynchronous},
    {"P=8", 8, 3.0, 10, CostModel::kSynchronous},
    {"L=0", 4, 3.0, 0, CostModel::kSynchronous},
    {"async", 4, 3.0, 0, CostModel::kAsynchronous},
};

std::string ascii_box(double lo, double q1, double med, double q3, double hi) {
  // Render the [0.5, 1.05] ratio range into a 44-char strip.
  const auto pos = [](double x) {
    const int p = static_cast<int>((x - 0.5) / (1.05 - 0.5) * 43.0);
    return std::min(43, std::max(0, p));
  };
  std::string strip(44, ' ');
  for (int c = pos(lo); c <= pos(hi); ++c) strip[c] = '-';
  for (int c = pos(q1); c <= pos(q3); ++c) strip[c] = '=';
  strip[pos(med)] = '#';
  return strip;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();
  constexpr std::size_t kNumVariants = std::size(kVariants);

  std::vector<MbspInstance> instances;
  std::vector<BatchRunner::CellSpec> specs;
  instances.reserve(count * kNumVariants);
  for (std::size_t i = 0; i < count; ++i) {
    for (const Variant& variant : kVariants) {
      instances.push_back(make_instance(dataset[i], variant.P,
                                        variant.r_factor, 1, variant.L));
    }
  }
  for (std::size_t i = 0; i < count * kNumVariants; ++i) {
    specs.push_back({&instances[i], "holistic",
                     scheduler_options(config, kVariants[i % kNumVariants].cost)});
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"case", "min", "q25", "median", "q75", "max", "geomean",
               "0.5 ........ ratio scale ........ 1.05"});
  for (std::size_t k = 0; k < kNumVariants; ++k) {
    std::vector<double> rs;
    for (std::size_t i = 0; i < count; ++i) {
      const ScheduleResult& res = cell_or_die(cells[i * kNumVariants + k]);
      rs.push_back(res.cost / res.baseline_cost);
    }
    const double lo = quantile(rs, 0), q1 = quantile(rs, 0.25),
                 med = quantile(rs, 0.5), q3 = quantile(rs, 0.75),
                 hi = quantile(rs, 1);
    table.add_row({kVariants[k].label, fmt(lo, 2), fmt(q1, 2), fmt(med, 2),
                   fmt(q3, 2), fmt(hi, 2), fmt(geometric_mean(rs), 2),
                   ascii_box(lo, q1, med, q3, hi)});
  }
  emit(table,
       "Figure 4: distribution of cost-reduction ratios (ILP / baseline)",
       config, "fig4");
  return 0;
}
