// Component micro-benchmarks (google-benchmark): throughput of the
// validator, the two cost functions, the memory-completion engine, the
// stage-1 schedulers, the simplex, and the exact pebbler. These are the
// inner loops of the LNS, so their speed bounds the search's iteration
// count per time budget.
#include <benchmark/benchmark.h>

#include "include/mbsp/mbsp.hpp"

namespace mbsp {
namespace {

MbspInstance bench_instance(int index, int P, double r_factor) {
  auto dataset = tiny_dataset(2025);
  ComputeDag dag = std::move(dataset[index]);
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, 1, 10)};
}

/// Main two-stage baseline via the registry (schedule + plan fixtures).
ScheduleResult baseline_result(const MbspInstance& inst) {
  return SchedulerRegistry::global().at("bspg+clairvoyant").run(inst, {});
}

void BM_Validate(benchmark::State& state) {
  const MbspInstance inst = bench_instance(static_cast<int>(state.range(0)), 4, 3);
  const ScheduleResult base = baseline_result(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(inst, base.schedule).ok);
  }
}
BENCHMARK(BM_Validate)->Arg(0)->Arg(3)->Arg(9);

void BM_SyncCost(benchmark::State& state) {
  const MbspInstance inst = bench_instance(3, 4, 3);
  const ScheduleResult base = baseline_result(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sync_cost(inst, base.schedule));
  }
}
BENCHMARK(BM_SyncCost);

void BM_AsyncCost(benchmark::State& state) {
  const MbspInstance inst = bench_instance(3, 4, 3);
  const ScheduleResult base = baseline_result(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(async_cost(inst, base.schedule));
  }
}
BENCHMARK(BM_AsyncCost);

void BM_CompleteMemory(benchmark::State& state) {
  const MbspInstance inst = bench_instance(static_cast<int>(state.range(0)), 4, 3);
  const ComputePlan plan = baseline_result(inst).plan;
  const PolicyKind policy = state.range(1) == 0 ? PolicyKind::kClairvoyant
                                                : PolicyKind::kLru;
  for (auto _ : state) {
    benchmark::DoNotOptimize(complete_memory(inst, plan, policy).num_ops());
  }
}
BENCHMARK(BM_CompleteMemory)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({9, 0})
    ->Args({13, 0});

void BM_GreedyBsp(benchmark::State& state) {
  const MbspInstance inst = bench_instance(static_cast<int>(state.range(0)), 4, 3);
  GreedyBspScheduler stage1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stage1.schedule(inst.dag, inst.arch).order.size());
  }
}
BENCHMARK(BM_GreedyBsp)->Arg(0)->Arg(9);

void BM_CilkSim(benchmark::State& state) {
  const MbspInstance inst = bench_instance(9, 4, 3);
  CilkScheduler cilk;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cilk.schedule(inst.dag, inst.arch).order.size());
  }
}
BENCHMARK(BM_CilkSim);

void BM_SimplexBipartitionLp(benchmark::State& state) {
  Rng rng(4);
  const ComputeDag dag = random_layered_dag(static_cast<int>(state.range(0)), 5, rng);
  const int lo = dag.num_nodes() / 3;
  const ilp::Model model =
      build_bipartition_ilp(dag, lo, dag.num_nodes() - lo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(model).objective);
  }
}
BENCHMARK(BM_SimplexBipartitionLp)->Arg(30)->Arg(60);

void BM_ExactPebblerChain(benchmark::State& state) {
  ComputeDag dag("chain");
  NodeId prev = dag.add_node(0, 1);
  for (int i = 0; i < state.range(0); ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(prev, v);
    prev = v;
  }
  const MbspInstance inst{std::move(dag), Architecture::make(1, 3, 2, 0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_pebble(inst).cost);
  }
}
BENCHMARK(BM_ExactPebblerChain)->Arg(8)->Arg(12);

void BM_LnsIterations(benchmark::State& state) {
  // Reports how many LNS iterations fit into a fixed 50 ms budget on a
  // representative instance (iterations/sec is the quantity that matters).
  const MbspInstance inst = bench_instance(3, 4, 3);
  const ScheduleResult base = baseline_result(inst);
  for (auto _ : state) {
    LnsOptions options;
    options.budget_ms = 50;
    const LnsResult res = improve_plan(inst, base.plan, options);
    state.counters["iters_per_s"] = benchmark::Counter(
        static_cast<double>(res.iterations) * 20.0,
        benchmark::Counter::kAvgIterations);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_LnsIterations)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mbsp

BENCHMARK_MAIN();
