// Portfolio LNS bench: cost-at-budget of the K-worker portfolio versus the
// single-worker LNS at the SAME per-worker iteration budget (workers run
// concurrently, so this is the wall-clock-fair comparison) across corpus
// workload families. Runs are iteration-capped (budget_ms = 0), so every
// number is deterministic and CI-stable.
//
// Two portfolio configurations per family:
//  * epochs = 1: every worker is an independent solo run; worker 0 runs
//    the base seed, so the portfolio can never be worse than the single-
//    worker LNS — the bench aborts if it is (structural guarantee).
//  * epochs = 4: incumbent exchange at three barriers in between.
//
//   MBSP_BENCH_PORTFOLIO_ITERS   per-worker iterations (default 4000)
//   MBSP_BENCH_PORTFOLIO_WORKERS portfolio size (default 4)
//   MBSP_BENCH_CSV               CSV export prefix (CI uploads the artifact)
#include "bench/bench_common.hpp"

#include "src/holistic/portfolio.hpp"
#include "src/twostage/two_stage.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

const char* kFamilies[] = {
    "stencil2d:nx=12,ny=12,steps=2",          // n = 432
    "fft:n=64",                               // n = 448
    "wavefront:nx=16,ny=16",                  // n = 289
    "mapreduce:maps=20,reducers=15,rounds=6", // n = 230
    "lu:blocks=6",                            // n = 127
    "cholesky:blocks=6",                      // n = 77
};

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const long iters = env_long("MBSP_BENCH_PORTFOLIO_ITERS", 4000);
  const int workers =
      static_cast<int>(env_long("MBSP_BENCH_PORTFOLIO_WORKERS", 4));

  Table table({"workload", "n", "warm start", "solo lns", "portfolio e1",
               "portfolio e4", "best ratio", "solo ms", "portfolio ms"});
  std::vector<double> ratios;
  int strictly_better = 0;
  bool guarantee_held = true;
  for (const char* spec : kFamilies) {
    std::string error;
    auto dag = WorkloadRegistry::global().make_dag(spec, config.seed, &error);
    if (!dag) {
      std::fprintf(stderr, "cannot generate '%s': %s\n", spec, error.c_str());
      return 1;
    }
    const MbspInstance inst = make_instance(std::move(*dag), 4, 3.0, 1, 10);
    const ComputePlan initial =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;

    PortfolioOptions options;
    options.lns.budget_ms = 0;  // iteration-capped: deterministic numbers
    options.lns.max_iterations = iters;
    options.lns.seed = config.seed;
    options.workers = workers;

    Timer solo_timer;
    const LnsResult solo =
        improve_plan(inst, initial, portfolio_worker_options(options, 0, 0));
    const double solo_ms = solo_timer.elapsed_ms();

    options.epochs = 1;
    Timer port_timer;
    const PortfolioResult e1 = PortfolioLns(options).improve(inst, initial);
    const double port_ms = port_timer.elapsed_ms();
    options.epochs = 4;
    const PortfolioResult e4 = PortfolioLns(options).improve(inst, initial);

    // Worker 0 of the 1-epoch portfolio reruns `solo` verbatim, so the
    // exchanged incumbent can only match or beat it.
    guarantee_held = guarantee_held && e1.cost <= solo.cost;
    const double best = std::min(e1.cost, e4.cost);
    strictly_better += best < solo.cost;
    ratios.push_back(best / solo.cost);
    table.add_row({spec, std::to_string(inst.dag.num_nodes()),
                   cost_str(e1.initial_cost), cost_str(solo.cost),
                   cost_str(e1.cost), cost_str(e4.cost),
                   fmt(best / solo.cost, 3), fmt(solo_ms, 0),
                   fmt(port_ms, 0)});
  }
  emit(table,
       "Portfolio LNS: cost at the same per-worker iteration budget (" +
           std::to_string(workers) + " workers x " + std::to_string(iters) +
           " iterations, deterministic)",
       config, "portfolio");
  std::printf(
      "geomean cost ratio (portfolio/solo): %.3f; strictly better on %d of "
      "%zu families\n",
      geometric_mean(ratios), strictly_better, std::size(kFamilies));
  if (!guarantee_held) {
    std::fprintf(stderr,
                 "FATAL: 1-epoch portfolio worse than its own worker 0\n");
    return 1;
  }
  return 0;
}
