// Regenerates Table 2: baseline vs the divide-and-conquer ILP on the
// larger ('small') dataset, with r = 5*r0, P = 4, L = 10. Paper reference:
// wins on the coarse-grained and SpMV instances (0.60x-0.77x), losses on
// the exp / kNN instances (~1.24x geomean increase).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const std::vector<MbspInstance> instances =
      make_instances(small_dataset(config.seed), 4, 5.0, 1, 10);

  const std::vector<BatchCell> cells = make_runner(config).run_grid(
      instances, {"bspg+clairvoyant", "divide-conquer"});

  Table table({"Instance", "Base", "D&C ILP", "ratio", "parts"});
  std::vector<double> ratios, win_ratios, loss_ratios;
  for (const MbspInstance& inst : instances) {
    const ScheduleResult& base =
        cell_or_die(*find_cell(cells, inst.name(), "bspg+clairvoyant"));
    const ScheduleResult& dnc =
        cell_or_die(*find_cell(cells, inst.name(), "divide-conquer"));
    const double ratio = dnc.cost / base.cost;
    ratios.push_back(ratio);
    (ratio <= 1.0 ? win_ratios : loss_ratios).push_back(ratio);
    table.add_row({inst.name(), cost_str(base.cost), cost_str(dnc.cost),
                   fmt(ratio, 2), std::to_string(dnc.num_parts)});
  }
  emit(table,
       "Table 2: larger dataset, baseline / divide-and-conquer ILP "
       "(P=4, r=5r0, L=10)",
       config, "table2");
  print_geomean(ratios, "all instances");
  if (!win_ratios.empty()) print_geomean(win_ratios, "winning instances");
  if (!loss_ratios.empty()) print_geomean(loss_ratios, "losing instances");
  return 0;
}
