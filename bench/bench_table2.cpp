// Regenerates Table 2: baseline vs the divide-and-conquer ILP on the
// larger ('small') dataset, with r = 5*r0, P = 4, L = 10. Paper reference:
// wins on the coarse-grained and SpMV instances (0.60x-0.77x), losses on
// the exp / kNN instances (~1.24x geomean increase).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = small_dataset(config.seed);
  const std::size_t count = dataset.size();

  struct Row {
    std::string name;
    double base = 0, ilp = 0;
    std::size_t parts = 0;
  };
  std::vector<Row> rows(count);

  for_each_instance(count, [&](std::size_t i) {
    const MbspInstance inst = make_instance(dataset[i], 4, 5.0, 1, 10);
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    const double base_cost = sync_cost(inst, base.mbsp);

    DivideConquerOptions options;
    options.lns.budget_ms = config.budget_ms / 4;  // per part
    const DivideConquerResult res = divide_conquer_schedule(inst, options);
    validate_or_die(inst, res.schedule);
    rows[i] = {inst.name(), base_cost, res.cost, res.num_parts};
  });

  Table table({"Instance", "Base", "D&C ILP", "ratio", "parts"});
  std::vector<double> ratios, win_ratios, loss_ratios;
  for (const Row& row : rows) {
    const double ratio = row.ilp / row.base;
    ratios.push_back(ratio);
    (ratio <= 1.0 ? win_ratios : loss_ratios).push_back(ratio);
    table.add_row({row.name, cost_str(row.base), cost_str(row.ilp),
                   fmt(ratio, 2), std::to_string(row.parts)});
  }
  emit(table,
       "Table 2: larger dataset, baseline / divide-and-conquer ILP "
       "(P=4, r=5r0, L=10)",
       config, "table2");
  print_geomean(ratios, "all instances");
  if (!win_ratios.empty()) print_geomean(win_ratios, "winning instances");
  if (!loss_ratios.empty()) print_geomean(loss_ratios, "losing instances");
  return 0;
}
