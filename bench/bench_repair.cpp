// bench_repair: online schedule repair vs re-solving from scratch
// (docs/REPAIR.md). Replays a timed-arrival trace per family: after each
// InstanceDelta the incumbent is repaired via the "repair" scheduler
// (structural patch + locality-masked polish) AND the mutated instance is
// re-solved cold with "lns" at the SAME iteration budget. The headline
// metric is the geometric-mean cost ratio repair/resolve across all
// events — the repair engine's reason to exist is ratio <= 1.0 at equal
// budget, and the bench fails hard when that does not hold.
//
// Requests use budget_ms = 0 with an iteration cap, so costs and the
// ratio are bit-reproducible and gate in CI; wall-clock speedups track
// the host and are informational.
//
// Writes BENCH_repair.json (compared against bench/baselines/ by
// tools/bench_compare.py).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/holistic/repair.hpp"
#include "src/workload/trace.hpp"

namespace {

using namespace mbsp;

constexpr long kIterations = 400;  // equal budget for repair and re-solve

struct TraceCase {
  const char* spec;
  const char* machine;
};

// One DAG-growth, one machine-degradation and one everything-at-once
// trace, across the machine kinds the repair engine special-cases.
const TraceCase kCases[] = {
    {"trace-grow:base=stencil2d,events=6,batch=3", "uniform:P=4"},
    {"trace-dropout:base=mapreduce,events=2", "uniform:P=6"},
    {"trace-mixed:base=random-layered,events=6,batch=2", "uniform:P=4"},
};

SchedulerOptions solver_options(std::uint64_t seed) {
  SchedulerOptions options;
  options.budget_ms = 0;  // no deadline: the iteration cap decides
  options.max_iterations = kIterations;
  options.seed = seed;
  return options;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const auto config = mbsp::bench::BenchConfig::from_env();
  const MbspScheduler* lns = SchedulerRegistry::global().find("lns");
  const MbspScheduler* repair = SchedulerRegistry::global().find("repair");
  if (lns == nullptr || repair == nullptr) {
    std::fprintf(stderr, "bench_repair: lns/repair schedulers missing\n");
    return 1;
  }

  std::vector<double> all_ratios;
  std::vector<double> all_speedups;
  mbsp::bench::PerfReport report("repair");

  for (const TraceCase& c : kCases) {
    std::string error;
    auto trace = make_trace(c.spec, config.seed, c.machine, &error);
    if (!trace) {
      std::fprintf(stderr, "bench_repair: cannot build '%s': %s\n", c.spec,
                   error.c_str());
      return 1;
    }

    // The pre-event incumbent: a plain LNS solve of the base instance.
    MbspInstance inst = trace->base;
    ScheduleResult incumbent = lns->run(inst, solver_options(config.seed));

    std::vector<double> ratios, speedups;
    for (const TraceEvent& event : trace->events) {
      if (!apply_instance_delta(inst, event.delta, nullptr, &error)) {
        std::fprintf(stderr, "bench_repair: %s: %s\n", trace->name.c_str(),
                     error.c_str());
        return 1;
      }

      SchedulerOptions repair_options = solver_options(config.seed);
      repair_options.warm_start_plan = &incumbent.plan;
      repair_options.repair_delta = &event.delta;
      repair_options.repair_mask_radius = 2;
      const double repair_start = now_ms();
      ScheduleResult repaired = repair->run(inst, repair_options);
      const double repair_ms = now_ms() - repair_start;

      const double resolve_start = now_ms();
      ScheduleResult resolved = lns->run(inst, solver_options(config.seed));
      const double resolve_ms = now_ms() - resolve_start;

      ratios.push_back(repaired.cost / resolved.cost);
      speedups.push_back(resolve_ms / repair_ms);
      incumbent = std::move(repaired);  // repairs chain along the trace
    }

    const double ratio = geometric_mean(ratios);
    const double speedup = geometric_mean(speedups);
    std::printf("%-46s events=%zu  cost ratio %.4f  wall speedup %.2fx\n",
                trace->name.c_str(), ratios.size(), ratio, speedup);
    report.add_family(trace->name, "cost_ratio", ratio);
    report.add_family(trace->name, "wall_speedup", speedup);
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());
    all_speedups.insert(all_speedups.end(), speedups.begin(), speedups.end());
  }

  const double ratio = geometric_mean(all_ratios);
  const double speedup = geometric_mean(all_speedups);
  std::printf("repair/resolve: %.4f geometric-mean cost ratio over %zu "
              "events (%.2fx wall speedup)\n",
              ratio, all_ratios.size(), speedup);

  // Deterministic (budget_ms = 0 + iteration cap) — gates.
  report.add_metric("repair_vs_resolve_cost_ratio", ratio,
                    /*higher_is_better=*/false, /*gated=*/true);
  // Host-dependent wall-clock advantage — informational.
  report.add_metric("repair_wall_speedup", speedup,
                    /*higher_is_better=*/true, /*gated=*/false);
  report.write();

  if (ratio > 1.0) {
    std::fprintf(stderr, "bench_repair: FAIL — repair is worse than a "
                 "from-scratch re-solve at equal budget (%.4f > 1.0)\n",
                 ratio);
    return 1;
  }
  std::printf("repair_vs_resolve: OK (ratio %.4f <= 1.0)\n", ratio);
  return 0;
}
