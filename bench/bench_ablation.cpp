// Ablation bench for the design choices DESIGN.md calls out:
//  * each LNS move class disabled in turn (which degrees of freedom carry
//    the improvement?),
//  * completion policy inside the search (clairvoyant vs LRU),
//  * warm start (baseline) vs cold start (trivial all-on-p0 plan).
// Reported as geomean cost ratios vs the full configuration over a
// representative subset of the tiny dataset. All configurations run as
// "lns" registry cells with the corresponding SchedulerOptions knobs.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

struct Config {
  const char* label;
  unsigned move_mask = kAllMoves;
  PolicyKind policy = PolicyKind::kClairvoyant;
  bool cold_start = false;
};

const Config kConfigs[] = {
    {"full"},
    {"no proc moves", kAllMoves & ~(kMoveProc | kSwapProcs)},
    {"no superstep moves",
     kAllMoves & ~(kMoveSuperstep | kMergeSupersteps | kSplitSuperstep)},
    {"no recompute moves", kAllMoves & ~(kAddRecompute | kRemoveOccurrence)},
    {"lru completion", kAllMoves, PolicyKind::kLru},
    {"cold start", kAllMoves, PolicyKind::kClairvoyant, true},
};

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::vector<int> subset{0, 3, 6, 9, 12};  // one per family
  constexpr std::size_t kNumConfigs = std::size(kConfigs);

  std::vector<MbspInstance> instances;
  for (int index : subset) {
    instances.push_back(make_instance(dataset[index], 4, 3.0, 1, 10));
  }
  std::vector<BatchRunner::CellSpec> specs;  // i-major, config-minor
  for (const MbspInstance& inst : instances) {
    for (const Config& cfg : kConfigs) {
      SchedulerOptions options = scheduler_options(config);
      options.move_mask = cfg.move_mask;
      options.completion_policy = cfg.policy;
      options.cold_start = cfg.cold_start;
      specs.push_back({&inst, "lns", options});
    }
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"configuration", "geomean vs full", "per-instance ratios",
               "proposed", "accepted", "accept %", "per-class accept %"});
  for (std::size_t c = 0; c < kNumConfigs; ++c) {
    std::vector<double> ratios;
    std::string detail;
    // Move-class proposal/acceptance counters summed over the subset: move
    // ablations should report *acceptance rates*, not just final cost.
    long proposed = 0, accepted = 0;
    std::array<long, kNumMoveClasses> class_proposed{}, class_accepted{};
    for (std::size_t i = 0; i < subset.size(); ++i) {
      const ScheduleResult& cell = cell_or_die(cells[i * kNumConfigs + c]);
      const double full = cell_or_die(cells[i * kNumConfigs]).cost;
      ratios.push_back(cell.cost / full);
      detail += fmt(ratios.back(), 2) + " ";
      for (std::size_t m = 0; m < cell.lns_proposed.size(); ++m) {
        proposed += cell.lns_proposed[m];
        accepted += cell.lns_accepted[m];
        class_proposed[m] += cell.lns_proposed[m];
        class_accepted[m] += cell.lns_accepted[m];
      }
    }
    std::string per_class;
    for (int m = 0; m < kNumMoveClasses; ++m) {
      if (class_proposed[m] == 0) continue;
      per_class += std::string(lns_move_class_name(m)) + ":" +
                   fmt(100.0 * class_accepted[m] / class_proposed[m], 0) +
                   "% ";
    }
    table.add_row({kConfigs[c].label, fmt(geometric_mean(ratios), 3), detail,
                   std::to_string(proposed), std::to_string(accepted),
                   proposed > 0 ? fmt(100.0 * accepted / proposed, 1) : "-",
                   per_class});
  }
  emit(table,
       "LNS design ablation (>= 1.0 means the full configuration is better)",
       config, "ablation");
  return 0;
}
