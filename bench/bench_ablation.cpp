// Ablation bench for the design choices DESIGN.md calls out:
//  * each LNS move class disabled in turn (which degrees of freedom carry
//    the improvement?),
//  * completion policy inside the search (clairvoyant vs LRU),
//  * warm start (baseline) vs cold start (trivial all-on-p0 plan).
// Reported as geomean cost ratios vs the full configuration over a
// representative subset of the tiny dataset.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

struct Config {
  const char* label;
  unsigned move_mask = kAllMoves;
  PolicyKind policy = PolicyKind::kClairvoyant;
  bool cold_start = false;
};

const Config kConfigs[] = {
    {"full"},
    {"no proc moves", kAllMoves & ~(kMoveProc | kSwapProcs)},
    {"no superstep moves",
     kAllMoves & ~(kMoveSuperstep | kMergeSupersteps | kSplitSuperstep)},
    {"no recompute moves", kAllMoves & ~(kAddRecompute | kRemoveOccurrence)},
    {"lru completion", kAllMoves, PolicyKind::kLru},
    {"cold start", kAllMoves, PolicyKind::kClairvoyant, true},
};

ComputePlan trivial_plan(const MbspInstance& inst) {
  // Everything on processor 0 in one long superstep, topological order.
  ComputePlan plan;
  plan.num_procs = inst.arch.num_processors;
  plan.seq.resize(plan.num_procs);
  for (NodeId v : topological_order(inst.dag)) {
    if (!inst.dag.is_source(v)) plan.seq[0].push_back({v, 0});
  }
  return plan;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::vector<int> subset{0, 3, 6, 9, 12};  // one per family
  constexpr std::size_t kNumConfigs = std::size(kConfigs);

  std::vector<std::array<double, kNumConfigs>> cost(subset.size());
  for_each_instance(subset.size() * kNumConfigs, [&](std::size_t job) {
    const std::size_t i = job / kNumConfigs;
    const std::size_t c = job % kNumConfigs;
    const Config& cfg = kConfigs[c];
    const MbspInstance inst = make_instance(dataset[subset[i]], 4, 3.0, 1, 10);
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    LnsOptions options;
    options.budget_ms = config.budget_ms;
    options.move_mask = cfg.move_mask;
    options.completion_policy = cfg.policy;
    const ComputePlan initial =
        cfg.cold_start ? trivial_plan(inst) : base.plan;
    const LnsResult res = improve_plan(inst, initial, options);
    cost[i][c] = res.cost;
  });

  Table table({"configuration", "geomean vs full", "per-instance ratios"});
  for (std::size_t c = 0; c < kNumConfigs; ++c) {
    std::vector<double> ratios;
    std::string detail;
    for (std::size_t i = 0; i < subset.size(); ++i) {
      ratios.push_back(cost[i][c] / cost[i][0]);
      detail += fmt(ratios.back(), 2) + " ";
    }
    table.add_row({kConfigs[c].label, fmt(geometric_mean(ratios), 3), detail});
  }
  emit(table,
       "LNS design ablation (>= 1.0 means the full configuration is better)",
       config, "ablation");
  return 0;
}
