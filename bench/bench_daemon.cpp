// bench_daemon: load generator for the mbspd serving path (docs/DAEMON.md).
// Starts an in-process MbspdServer on a private socket, then drives it with
// concurrent clients in three phases:
//
//   cold   — one client, one request per workload family (fills the cache);
//            per-request latency here is solver-dominated.
//   hot    — kClients concurrent clients, kRoundsPerClient rounds over the
//            same families; every request must be an exact cache hit.
//   warm   — one request per family with a larger iteration cap; each must
//            warm-start from the cached incumbent (cache=warm).
//
// Requests use budget_ms = 0 with an iteration cap, so the request stream
// and the cache-status sequence are deterministic: after the cold phase the
// hot phase is 100% exact hits, and exact_hit_rate gates in CI. Latency
// percentiles and throughput track the host and are informational.
//
// Writes BENCH_daemon.json (compared against bench/baselines/ by
// tools/bench_compare.py).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace {

using namespace mbsp;
using namespace mbsp::daemon;

constexpr int kClients = 4;
constexpr int kRoundsPerClient = 16;

const char* const kFamilies[] = {
    "stencil2d:nx=8,ny=8,steps=3",
    "lu:blocks=5",
    "fft:n=32",
};
constexpr std::size_t kNumFamilies = sizeof(kFamilies) / sizeof(kFamilies[0]);

ScheduleRequest make_request(const std::string& workload, std::uint64_t seed,
                             long max_iterations) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, seed, &error);
  if (!dag) {
    std::fprintf(stderr, "bench_daemon: cannot generate '%s': %s\n",
                 workload.c_str(), error.c_str());
    std::abort();
  }
  ScheduleRequest request;
  request.dag_bytes = dag_to_binary(*dag);
  request.machine_spec = "uniform:P=4";
  request.scheduler = "lns";
  request.budget_ms = 0;  // unlimited wall clock: the iteration cap decides
  request.max_iterations = max_iterations;
  request.seed = 7;
  return request;
}

/// One blocking request; returns latency in milliseconds, aborts on error.
double timed_request(MbspClient& client, const ScheduleRequest& request,
                     CacheStatus expect) {
  MbspClient::Outcome outcome;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  if (!client.run(request, &outcome, &error) || !outcome.ok) {
    std::fprintf(stderr, "bench_daemon: request failed: %s\n",
                 outcome.ok ? error.c_str() : outcome.error.message.c_str());
    std::abort();
  }
  const auto stop = std::chrono::steady_clock::now();
  if (outcome.final.cache != expect) {
    std::fprintf(stderr, "bench_daemon: expected cache=%s, got cache=%s\n",
                 cache_status_name(expect),
                 cache_status_name(outcome.final.cache));
    std::abort();
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

int main() {
  const auto config = bench::BenchConfig::from_env();

  MbspdOptions options;
#if defined(__unix__) || defined(__APPLE__)
  options.socket_path =
      "/tmp/mbspd-bench-" + std::to_string(::getpid()) + ".sock";
#else
  std::fprintf(stderr, "bench_daemon: sockets unsupported on this platform\n");
  return 0;  // not a failure: the serving path is POSIX-only
#endif
  options.cache_capacity = 64;
  MbspdServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_daemon: %s\n", error.c_str());
    return 1;
  }

  std::vector<ScheduleRequest> requests;
  for (const char* family : kFamilies) {
    requests.push_back(make_request(family, config.seed, 8'000));
  }

  // Phase 1: cold — fill the cache, one solver call per family.
  std::vector<double> cold_ms;
  {
    MbspClient client;
    if (!client.connect(options.socket_path, &error)) {
      std::fprintf(stderr, "bench_daemon: %s\n", error.c_str());
      return 1;
    }
    for (const ScheduleRequest& request : requests) {
      cold_ms.push_back(timed_request(client, request, CacheStatus::kCold));
    }
  }

  // Phase 2: hot — concurrent clients replaying the same requests; the
  // cache is already full, so every reply must be an exact hit.
  const DaemonStats before = server.stats();
  std::vector<std::vector<double>> per_client(kClients);
  const auto hot_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        MbspClient client;
        std::string err;
        if (!client.connect(options.socket_path, &err)) {
          std::fprintf(stderr, "bench_daemon: %s\n", err.c_str());
          std::abort();
        }
        for (int round = 0; round < kRoundsPerClient; ++round) {
          for (const ScheduleRequest& request : requests) {
            per_client[c].push_back(
                timed_request(client, request, CacheStatus::kExact));
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double hot_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    hot_start)
          .count();
  const DaemonStats after = server.stats();

  std::vector<double> hot_ms;
  for (const auto& client_ms : per_client) {
    hot_ms.insert(hot_ms.end(), client_ms.begin(), client_ms.end());
  }
  const double hot_requests = static_cast<double>(hot_ms.size());
  const double exact_hit_rate =
      static_cast<double>(after.exact_hits - before.exact_hits) /
      static_cast<double>(after.requests - before.requests);

  // Phase 3: warm — same keys at a larger iteration cap; the daemon must
  // warm-start LNS from the cached incumbent rather than solving cold.
  std::vector<double> warm_ms;
  {
    MbspClient client;
    if (!client.connect(options.socket_path, &error)) {
      std::fprintf(stderr, "bench_daemon: %s\n", error.c_str());
      return 1;
    }
    for (const char* family : kFamilies) {
      const ScheduleRequest bigger = make_request(family, config.seed, 16'000);
      warm_ms.push_back(timed_request(client, bigger, CacheStatus::kWarm));
    }
  }

  server.stop();

  const double p50 = percentile(hot_ms, 0.50);
  const double p99 = percentile(hot_ms, 0.99);
  std::printf("cold: %zu requests, p50=%.2fms\n", cold_ms.size(),
              percentile(cold_ms, 0.50));
  std::printf("hot:  %.0f requests across %d clients, p50=%.3fms "
              "p99=%.3fms, %.0f req/s, exact-hit rate %.3f\n",
              hot_requests, kClients, p50, p99, hot_requests / hot_seconds,
              exact_hit_rate);
  std::printf("warm: %zu requests, p50=%.2fms\n", warm_ms.size(),
              percentile(warm_ms, 0.50));

  bench::PerfReport report("daemon");
  // Deterministic given the request stream — gates.
  report.add_metric("exact_hit_rate", exact_hit_rate,
                    /*higher_is_better=*/true, /*gated=*/true);
  // Host-dependent latency/throughput — informational.
  report.add_metric("hot_p50_ms", p50, /*higher_is_better=*/false,
                    /*gated=*/false);
  report.add_metric("hot_p99_ms", p99, /*higher_is_better=*/false,
                    /*gated=*/false);
  report.add_metric("hot_requests_per_s", hot_requests / hot_seconds,
                    /*higher_is_better=*/true, /*gated=*/false);
  for (std::size_t i = 0; i < kNumFamilies; ++i) {
    report.add_family(kFamilies[i], "cold_ms", cold_ms[i]);
    report.add_family(kFamilies[i], "warm_ms", warm_ms[i]);
  }
  report.write();
  return 0;
}
