// Regenerates Table 4: baseline / ILP cost under alternative parameters:
// r = 5*r0, r = r0, P = 8, L = 0, and the asynchronous cost model.
// Paper reference geomeans: 0.76x (r=5r0), 0.97x (r=r0), 0.82x (P=8),
// 0.85x (L=0), 0.91x (async).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

struct Variant {
  const char* label;
  int P;
  double r_factor, L;
  CostModel cost;
};

constexpr Variant kVariants[] = {
    {"r=5r0", 4, 5.0, 10, CostModel::kSynchronous},
    {"r=r0", 4, 1.0, 10, CostModel::kSynchronous},
    {"P=8", 8, 3.0, 10, CostModel::kSynchronous},
    {"L=0", 4, 3.0, 0, CostModel::kSynchronous},
    {"async", 4, 3.0, 0, CostModel::kAsynchronous},
};

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();
  constexpr std::size_t kNumVariants = std::size(kVariants);

  // Materialize every (instance, variant) pair with its own architecture;
  // the cell list is i-major, k-minor.
  std::vector<MbspInstance> instances;
  std::vector<BatchRunner::CellSpec> specs;
  instances.reserve(count * kNumVariants);
  for (std::size_t i = 0; i < count; ++i) {
    for (const Variant& variant : kVariants) {
      instances.push_back(make_instance(dataset[i], variant.P,
                                        variant.r_factor, 1, variant.L));
    }
  }
  for (std::size_t i = 0; i < count * kNumVariants; ++i) {
    specs.push_back({&instances[i], "holistic",
                     scheduler_options(config, kVariants[i % kNumVariants].cost)});
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"Instance", "r=5r0", "r=r0", "P=8", "L=0", "async"});
  std::array<std::vector<double>, kNumVariants> ratios;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::string> row_cells{dataset[i].name()};
    for (std::size_t k = 0; k < kNumVariants; ++k) {
      const ScheduleResult& res = cell_or_die(cells[i * kNumVariants + k]);
      row_cells.push_back(cost_str(res.baseline_cost) + " / " +
                          cost_str(res.cost));
      ratios[k].push_back(res.cost / res.baseline_cost);
    }
    table.add_row(std::move(row_cells));
  }
  emit(table, "Table 4: baseline / our ILP under alternative parameters",
       config, "table4");
  for (std::size_t k = 0; k < kNumVariants; ++k) {
    print_geomean(ratios[k], kVariants[k].label);
  }
  return 0;
}
