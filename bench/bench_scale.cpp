// Out-of-core scale bench (docs/SCALE.md): measures the full streaming
// pipeline end to end —
//
//   1. stream-generate a large instance to disk through DagStreamWriter
//      (O(1) memory, canonical hash on the fly),
//   2. ingest it with the chunked CSR-native binary reader,
//   3. schedule it with the sharded pipeline across a shard-count sweep,
//
// and writes BENCH_scale.json for the perf-trajectory gate. Gated metrics
// are the deterministic cost ratios (sharded final / unpartitioned greedy
// seed, iteration-capped so they are machine-speed independent); wall
// times, ingest throughput and peak RSS are informational because they
// track the host. The CI scale-smoke job runs the same pipeline at 10^6
// nodes under an address-space cap the non-streaming path cannot meet.
//
// Environment knobs (on top of the common MBSP_BENCH_* ones):
//   MBSP_BENCH_SCALE_SPEC    workload spec (default a deep-narrow stencil:
//                            streaming families only)
//   MBSP_BENCH_SCALE_SHARDS  comma-separated shard counts (default 1,4,8)
//   MBSP_BENCH_SCALE_ITERS   per-shard LNS iteration cap (default 600)
//   MBSP_BENCH_SCALE_P       processors (default 8)
//   MBSP_BENCH_SCALE_KEEP    if set, the generated .bin is not deleted
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<int> parse_shards(const std::string& csv) {
  std::vector<int> shards;
  std::string token;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) shards.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
    } else {
      token += c;
    }
  }
  if (shards.empty()) shards.push_back(1);
  return shards;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  // Deep-narrow by default: the greedy seed is O(n x ready-width), so a
  // narrow stencil keeps the unpartitioned reference tractable at scale.
  // LNS throughput is a few hundred iterations/s at this size (see
  // BENCH_lns.json), so the default iteration cap is deliberately small:
  // the gate tracks the deterministic cost ratios, not solution quality.
  const std::string spec = env_string(
      "MBSP_BENCH_SCALE_SPEC", "stencil2d:nx=32,ny=8,steps=40");
  const std::vector<int> shard_sweep =
      parse_shards(env_string("MBSP_BENCH_SCALE_SHARDS", "1,4,8"));
  const long iters = env_long("MBSP_BENCH_SCALE_ITERS", 600);
  const int P = static_cast<int>(env_long("MBSP_BENCH_SCALE_P", 8));
  const std::string path = "BENCH_scale_instance.bin";

  // 1. Streaming generation: the DAG never exists in memory here.
  const auto write_start = std::chrono::steady_clock::now();
  std::uint64_t stream_hash = 0;
  {
    std::string error;
    DagStreamWriter writer(path);
    if (!WorkloadRegistry::global().make_dag_stream(spec, config.seed, writer,
                                                    &error)) {
      std::fprintf(stderr, "bench_scale: cannot stream '%s': %s\n",
                   spec.c_str(), error.c_str());
      return 1;
    }
    if (!writer.finish(&stream_hash)) {
      std::fprintf(stderr, "bench_scale: write failed: %s\n",
                   writer.error().c_str());
      return 1;
    }
  }
  const double write_ms = ms_since(write_start);

  // 2. Chunked CSR-native ingest, hash-verified by the footer.
  const auto ingest_start = std::chrono::steady_clock::now();
  std::string error;
  auto dag = read_dag_file(path, &error);
  if (!dag) {
    std::fprintf(stderr, "bench_scale: cannot ingest %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const double ingest_ms = ms_since(ingest_start);
  if (dag_canonical_hash(*dag) != stream_hash) {
    std::fprintf(stderr, "bench_scale: hash mismatch after ingest\n");
    return 1;
  }
  const double nodes = static_cast<double>(dag->num_nodes());
  const double edges = static_cast<double>(dag->num_edges());
  std::printf("bench_scale: %s  (%.0f nodes, %.0f edges, csr_native=%d)\n",
              spec.c_str(), nodes, edges, dag->csr_native() ? 1 : 0);
  std::printf("  stream write %.1f ms, ingest %.1f ms (%.2f Mnodes/s)\n",
              write_ms, ingest_ms, nodes / std::max(1e-3, ingest_ms) / 1e3);

  const MbspInstance inst = make_instance(std::move(*dag), P, 3.0, 1, 10);

  PerfReport report("scale");
  report.add_metric("nodes", nodes, true, false);
  report.add_metric("edges", edges, true, false);
  report.add_metric("stream_write_ms", write_ms, false, false);
  report.add_metric("ingest_ms", ingest_ms, false, false);
  report.add_metric("ingest_mnodes_per_s",
                    nodes / std::max(1e-3, ingest_ms) / 1e3, true, false);

  // 3. Shard-count sweep. Iteration-capped (budget_ms = 0) so the cost
  // ratios are deterministic: they gate, the wall times do not.
  Table table({"shards", "cost", "stitched", "seed", "ratio", "cut edges",
               "boundary", "wall ms"});
  double seed_cost = 0;
  for (int k : shard_sweep) {
    ShardOptions options;
    options.num_shards = k;
    options.lns.budget_ms = 0;
    options.lns.max_iterations = iters;
    options.lns.seed = config.seed;
    options.polish_budget_ms = 0;
    options.polish_max_iterations = iters / 2;
    const auto solve_start = std::chrono::steady_clock::now();
    const ShardResult result = shard_schedule(inst, options);
    const double solve_ms = ms_since(solve_start);
    seed_cost = result.seed_cost;
    const double ratio =
        result.seed_cost > 0 ? result.cost / result.seed_cost : 1.0;
    const std::string label = "k" + std::to_string(k);
    report.add_metric("cost_ratio_" + label, ratio, false, true);
    report.add_family(label, "cost", result.cost);
    report.add_family(label, "stitched_cost", result.stitched_cost);
    report.add_family(label, "cut_edges",
                      static_cast<double>(result.cut_edges));
    report.add_family(label, "boundary_nodes",
                      static_cast<double>(result.boundary_nodes));
    report.add_family(label, "schedule_ms", solve_ms);
    table.add_row({std::to_string(k), cost_str(result.cost),
                   cost_str(result.stitched_cost), cost_str(result.seed_cost),
                   fmt(ratio, 4), std::to_string(result.cut_edges),
                   std::to_string(result.boundary_nodes), fmt(solve_ms, 1)});
  }
  report.add_metric("seed_cost", seed_cost, false, false);

  emit(table, "out-of-core scale: " + spec + " (P=" + std::to_string(P) + ")",
       config, "scale");
  report.write();

  if (env_string("MBSP_BENCH_SCALE_KEEP", "").empty()) std::remove(path.c_str());
  return 0;
}
