// Regenerates the recomputation ablation of Section 7.2: the holistic
// scheduler with recomputation allowed vs prohibited. Paper reference: up
// to 1.40x cost increase without recomputation on some instances, but a
// few instances counter-intuitively improve (the restricted search space
// can help an anytime solver within a fixed budget).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const std::vector<MbspInstance> instances =
      make_instances(tiny_dataset(config.seed), 4, 3.0, 1, 10);

  // Cell layout: i-major; recompute-allowed first, prohibited second.
  std::vector<BatchRunner::CellSpec> specs;
  for (const MbspInstance& inst : instances) {
    for (const bool allow : {true, false}) {
      SchedulerOptions options = scheduler_options(config);
      options.allow_recompute = allow;
      specs.push_back({&inst, "holistic", options});
    }
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"Instance", "with recompute", "no recompute", "increase"});
  std::vector<double> increases;
  int worse = 0, better = 0;
  double max_increase = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const double with = cell_or_die(cells[2 * i]).cost;
    const double without = cell_or_die(cells[2 * i + 1]).cost;
    const double increase = without / with;
    increases.push_back(increase);
    worse += increase > 1.0 + 1e-9;
    better += increase < 1.0 - 1e-9;
    max_increase = std::max(max_increase, increase);
    table.add_row({instances[i].name(), cost_str(with), cost_str(without),
                   fmt(increase, 2)});
  }
  emit(table, "Section 7.2: prohibiting recomputation (P=4, r=3r0, L=10)",
       config, "recompute");
  std::printf("instances worse without recomputation: %d; better: %d; "
              "largest increase %.2fx (paper: up to 1.40x, 7 worse / 6 "
              "better of 15)\n",
              worse, better, max_increase);
  print_geomean(increases, "no-recompute / with-recompute");
  return 0;
}
