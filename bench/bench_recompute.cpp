// Regenerates the recomputation ablation of Section 7.2: the holistic
// scheduler with recomputation allowed vs prohibited. Paper reference: up
// to 1.40x cost increase without recomputation on some instances, but a
// few instances counter-intuitively improve (the restricted search space
// can help an anytime solver within a fixed budget).
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();

  struct Row {
    std::string name;
    double with = 0, without = 0;
  };
  std::vector<Row> rows(count);

  for_each_instance(count * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool allow = job % 2 == 0;
    const MbspInstance inst = make_instance(dataset[i], 4, 3.0, 1, 10);
    HolisticOptions options;
    options.budget_ms = config.budget_ms;
    options.allow_recompute = allow;
    const HolisticOutcome out = holistic_schedule(inst, options);
    validate_or_die(inst, out.schedule);
    rows[i].name = inst.name();
    (allow ? rows[i].with : rows[i].without) = out.cost;
  });

  Table table({"Instance", "with recompute", "no recompute", "increase"});
  std::vector<double> increases;
  int worse = 0, better = 0;
  double max_increase = 0;
  for (const Row& row : rows) {
    const double increase = row.without / row.with;
    increases.push_back(increase);
    worse += increase > 1.0 + 1e-9;
    better += increase < 1.0 - 1e-9;
    max_increase = std::max(max_increase, increase);
    table.add_row({row.name, cost_str(row.with), cost_str(row.without),
                   fmt(increase, 2)});
  }
  emit(table, "Section 7.2: prohibiting recomputation (P=4, r=3r0, L=10)",
       config, "recompute");
  std::printf("instances worse without recomputation: %d; better: %d; "
              "largest increase %.2fx (paper: up to 1.40x, 7 worse / 6 "
              "better of 15)\n",
              worse, better, max_increase);
  print_geomean(increases, "no-recompute / with-recompute");
  return 0;
}
