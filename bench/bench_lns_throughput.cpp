// LNS throughput bench: iterations/sec of the incremental improve_plan
// versus the copy-and-reevaluate baseline (improve_plan_reference) on
// corpus workload families with n >= 1000 nodes (plus one ~5000-node
// point to show the O(delta) scaling). Both loops are run with a fixed
// iteration count and no deadline, so the trajectories are deterministic
// and must be bitwise identical — the bench aborts if they are not, which
// doubles as an end-to-end differential check of the evaluation engine.
//
//   MBSP_BENCH_LNS_ITERS     iterations per loop (default 300)
//   MBSP_BENCH_LNS_SKIP_REF  1: run only the incremental loop (profiling
//                            aid; disables the identity check and the
//                            speedup column, never set in CI)
//   MBSP_BENCH_CSV           CSV export prefix (CI uploads the artifact)
#include "bench/bench_common.hpp"

#include <cstdlib>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/holistic/lns.hpp"
#include "src/twostage/two_stage.hpp"

using namespace mbsp;
using namespace mbsp::bench;

namespace {

struct Case {
  const char* spec;
  double iter_scale;  ///< fraction of the base iteration count
};

const Case kCases[] = {
    {"stencil2d:nx=20,ny=20,steps=2", 1.0},  // n = 1200
    {"fft:n=128", 1.0},                      // n = 1024
    {"wavefront:nx=32,ny=32", 1.0},          // n = 1089
    {"mapreduce:maps=40,reducers=30,rounds=15", 1.0},  // n = 1090
    {"stencil2d:nx=41,ny=41,steps=2", 0.5},  // n = 5043
};

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const long base_iters = env_long("MBSP_BENCH_LNS_ITERS", 300);
  const bool skip_ref = env_long("MBSP_BENCH_LNS_SKIP_REF", 0) != 0;

  Table table({"workload", "n", "iterations", "baseline it/s",
               "incremental it/s", "speedup", "identical"});
  PerfReport report("lns");
  std::vector<double> speedups;
  std::vector<double> rates;
  bool all_identical = true;
  for (const Case& c : kCases) {
    std::string error;
    auto dag = WorkloadRegistry::global().make_dag(c.spec, config.seed, &error);
    if (!dag) {
      std::fprintf(stderr, "cannot generate '%s': %s\n", c.spec,
                   error.c_str());
      return 1;
    }
    const MbspInstance inst = make_instance(std::move(*dag), 4, 3.0, 1, 10);
    const ComputePlan initial =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;

    LnsOptions options;
    options.budget_ms = 0;  // no deadline: fixed, reproducible trajectories
    options.max_iterations =
        std::max<long>(1, static_cast<long>(base_iters * c.iter_scale));
    options.seed = config.seed;

    Timer fast_timer;
    const LnsResult fast = improve_plan(inst, initial, options);
    const double fast_ms = fast_timer.elapsed_ms();
    if (skip_ref) {
      std::printf("%s: %.0f it/s (reference skipped)\n", c.spec,
                  options.max_iterations * 1000.0 / fast_ms);
      continue;
    }
    Timer ref_timer;
    const LnsResult ref = improve_plan_reference(inst, initial, options);
    const double ref_ms = ref_timer.elapsed_ms();

    const bool identical = fast.cost == ref.cost &&
                           fast.accepted == ref.accepted &&
                           fast.iterations == ref.iterations &&
                           fast.plan.seq == ref.plan.seq;
    all_identical = all_identical && identical;
    const double fast_rate = options.max_iterations * 1000.0 / fast_ms;
    const double ref_rate = options.max_iterations * 1000.0 / ref_ms;
    speedups.push_back(fast_rate / ref_rate);
    rates.push_back(fast_rate);
    table.add_row({c.spec, std::to_string(inst.dag.num_nodes()),
                   std::to_string(options.max_iterations), fmt(ref_rate, 0),
                   fmt(fast_rate, 0), fmt(fast_rate / ref_rate, 2) + "x",
                   identical ? "yes" : "NO"});
    report.add_family(c.spec, "iters_per_sec", fast_rate);
    report.add_family(c.spec, "baseline_iters_per_sec", ref_rate);
    report.add_family(c.spec, "speedup", fast_rate / ref_rate);
  }
  if (skip_ref) return 0;
  emit(table,
       "LNS throughput: incremental evaluation vs copy-and-reevaluate "
       "baseline (identical results required)",
       config, "lns_throughput");
  std::printf("geomean speedup: %.2fx (acceptance target: >= 5x at n >= 1000)\n",
              geometric_mean(speedups));
  // The speedup over improve_plan_reference is machine-relative (both
  // loops run on this host), so it gates the perf trajectory; absolute
  // iteration rates track the host and stay informational.
  report.add_metric("geomean_speedup", geometric_mean(speedups),
                    /*higher_is_better=*/true, /*gated=*/true);
  report.add_metric("geomean_iters_per_sec", geometric_mean(rates),
                    /*higher_is_better=*/true, /*gated=*/false);
  report.write();
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: incremental and baseline LNS results diverged\n");
    return 1;
  }
  return 0;
}
