// Regenerates Table 3: all baselines on the main dataset —
//  1) main baseline (BSPg + clairvoyant),
//  2) our ILP/LNS initialized from the main baseline,
//  3) the weak practical baseline (Cilk + LRU),
//  4) the strong baseline ("ILP-BSP" + clairvoyant),
//  5) our ILP/LNS initialized from the strong baseline.
// Paper reference: ILP vs Cilk+LRU gives a 0.66x geomean reduction; the
// strong baseline is usually (not always) better than the main one.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  const std::vector<MbspInstance> instances =
      make_instances(tiny_dataset(config.seed), 4, 3.0, 1, 10);

  const SchedulerOptions base_options = scheduler_options(config);
  SchedulerOptions strong_options = base_options;
  strong_options.warm_start = BaselineKind::kRefinedClairvoyant;
  strong_options.stage1_budget_ms = config.budget_ms / 4;

  // The strong baseline's cost is read off the lns cell's warm start
  // (baseline_cost) rather than run as a separate cell: the refined
  // stage 1 is anytime, so one run both reports the baseline and seeds
  // the improver — no duplicate compute, no divergence between the two.
  std::vector<BatchRunner::CellSpec> specs;
  for (const MbspInstance& inst : instances) {
    specs.push_back({&inst, "holistic", base_options});
    specs.push_back({&inst, "cilk+lru", base_options});
    specs.push_back({&inst, "lns", strong_options});
  }
  const std::vector<BatchCell> cells = make_runner(config).run_cells(specs);

  Table table({"Instance", "Baseline", "Our ILP", "Cilk+LRU", "BSP-ILP",
               "BSP-ILP + our ILP"});
  std::vector<double> vs_base, vs_weak, vs_strong;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const ScheduleResult& main_out = cell_or_die(cells[3 * i]);
    const ScheduleResult& weak = cell_or_die(cells[3 * i + 1]);
    const ScheduleResult& strong_ilp = cell_or_die(cells[3 * i + 2]);
    const double strong = strong_ilp.baseline_cost;
    const double strong_best = std::min(strong_ilp.cost, strong);
    table.add_row({instances[i].name(), cost_str(main_out.baseline_cost),
                   cost_str(main_out.cost), cost_str(weak.cost),
                   cost_str(strong), cost_str(strong_best)});
    vs_base.push_back(main_out.cost / main_out.baseline_cost);
    vs_weak.push_back(main_out.cost / weak.cost);
    vs_strong.push_back(strong_best / strong);
  }
  emit(table, "Table 3: all baselines (P=4, r=3r0, L=10, sync)", config,
       "table3");
  print_geomean(vs_base, "vs main baseline");
  print_geomean(vs_weak, "vs Cilk+LRU");
  print_geomean(vs_strong, "vs BSP-ILP baseline");
  return 0;
}
