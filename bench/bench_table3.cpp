// Regenerates Table 3: all baselines on the main dataset —
//  1) main baseline (BSPg + clairvoyant),
//  2) our ILP/LNS initialized from the main baseline,
//  3) the weak practical baseline (Cilk + LRU),
//  4) the strong baseline ("ILP-BSP" + clairvoyant),
//  5) our ILP/LNS initialized from the strong baseline.
// Paper reference: ILP vs Cilk+LRU gives a 0.66x geomean reduction; the
// strong baseline is usually (not always) better than the main one.
#include "bench/bench_common.hpp"

using namespace mbsp;
using namespace mbsp::bench;

int main() {
  const BenchConfig config = BenchConfig::from_env();
  auto dataset = tiny_dataset(config.seed);
  const std::size_t count = dataset.size();

  struct Row {
    std::string name;
    double base = 0, ilp = 0, weak = 0, strong = 0, strong_ilp = 0;
  };
  std::vector<Row> rows(count);

  for_each_instance(count, [&](std::size_t i) {
    const MbspInstance inst = make_instance(dataset[i], 4, 3.0, 1, 10);
    Row row;
    row.name = inst.name();

    HolisticOptions options;
    options.budget_ms = config.budget_ms;
    const HolisticOutcome main_out = holistic_schedule(inst, options);
    row.base = main_out.baseline_cost;
    row.ilp = main_out.cost;

    row.weak = schedule_cost(
        inst, run_baseline(inst, BaselineKind::kCilkLru).mbsp,
        CostModel::kSynchronous);

    const TwoStageResult strong =
        run_baseline(inst, BaselineKind::kRefinedClairvoyant,
                     config.budget_ms / 4);
    row.strong = schedule_cost(inst, strong.mbsp, CostModel::kSynchronous);
    const HolisticOutcome strong_out =
        holistic_improve(inst, strong.plan, options);
    row.strong_ilp = std::min(strong_out.cost, row.strong);
    rows[i] = row;
  });

  Table table({"Instance", "Baseline", "Our ILP", "Cilk+LRU", "BSP-ILP",
               "BSP-ILP + our ILP"});
  std::vector<double> vs_base, vs_weak, vs_strong;
  for (const Row& row : rows) {
    table.add_row({row.name, cost_str(row.base), cost_str(row.ilp),
                   cost_str(row.weak), cost_str(row.strong),
                   cost_str(row.strong_ilp)});
    vs_base.push_back(row.ilp / row.base);
    vs_weak.push_back(row.ilp / row.weak);
    vs_strong.push_back(row.strong_ilp / row.strong);
  }
  emit(table, "Table 3: all baselines (P=4, r=3r0, L=10, sync)", config,
       "table3");
  print_geomean(vs_base, "vs main baseline");
  print_geomean(vs_weak, "vs Cilk+LRU");
  print_geomean(vs_strong, "vs BSP-ILP baseline");
  return 0;
}
