// Red-blue pebbling example (P = 1): the MBSP model restricted to one
// processor is the red-blue pebble game of Hong & Kung with compute costs.
// This example solves the Lemma 6.1 gadget exactly and shows the optimum
// switching from "load the value again" to "recompute the chain" as the
// I/O cost g grows — the phenomenon behind the paper's observation that an
// optimal schedule can need *more* steps than a shorter suboptimal one.

#include <cstdio>

#include "include/mbsp/mbsp.hpp"

int main() {
  using namespace mbsp;

  const RecomputeGadget gadget = lemma61_gadget(/*d=*/3, /*m=*/2);
  std::printf("Lemma 6.1 gadget: two %d-chains feeding an alternating "
              "%zu-node chain, cache r = 4\n\n",
              gadget.d, gadget.v.size());

  const MbspScheduler& pebbler =
      SchedulerRegistry::global().at("exact-pebbler");
  SchedulerOptions options;
  options.budget_ms = 30000;  // the exact solver may need the full default
  for (double g : {1.0, 2.0, 4.0, 8.0}) {
    ComputeDag dag = gadget.dag;
    const MbspInstance inst{std::move(dag),
                            Architecture::make(1, 4, g, 0)};
    const ScheduleResult res = pebbler.run(inst, options);
    if (!res.optimal) {
      std::printf("g = %.0f: state space too large\n", g);
      continue;
    }
    validate_or_die(inst, res.schedule);
    std::size_t recomputes = 0;
    double load_count = 0;
    for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
      if (res.schedule.compute_count(v) > 1) ++recomputes;
    }
    for (const Superstep& step : res.schedule.steps) {
      load_count += step.proc[0].loads.size();
    }
    std::printf("g = %.0f: optimal cost %6.1f | %3zu ops | %2.0f loads | "
                "%zu nodes recomputed\n",
                g, res.cost, res.schedule.num_ops(), load_count, recomputes);
  }

  std::printf("\nOnce g exceeds the chain length d = 3, recomputing a chain\n"
              "(cost d) beats loading its head (cost g): the schedule grows\n"
              "by d-1 unmergeable steps yet becomes cheaper, which is why a\n"
              "time-step-bounded ILP can contain empty steps and still be\n"
              "suboptimal (Lemma 6.1).\n");
  return 0;
}
