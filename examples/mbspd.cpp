// mbspd: the scheduler-as-a-service daemon CLI (docs/DAEMON.md). Binds a
// Unix-domain socket, serves scheduling requests in the mbspd wire
// protocol until SIGTERM/SIGINT, then drains: in-flight requests finish
// and their clients receive complete replies before the process exits.
//
//   mbspd --socket /tmp/mbspd.sock [--workers N] [--cache-capacity N]
//         [--dag-store N] [--max-request-mb N] [--backlog N]
//
// --workers bounds concurrent solves (the admission queue forms behind
// them); --cache-capacity sizes the schedule cache in entries. On exit
// the daemon prints its final counters, so a smoke run's cache behavior
// is auditable from the log alone.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "include/mbsp/mbsp.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket path [--workers n] [--cache-capacity n]\n"
               "          [--dag-store n] [--max-request-mb n] [--backlog n]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbsp::daemon;

  MbspdOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = value();
    } else if (arg == "--workers") {
      options.solver_threads = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--dag-store") {
      options.dag_store_capacity = static_cast<std::size_t>(
          std::atol(value()));
    } else if (arg == "--max-request-mb") {
      options.max_request_bytes =
          static_cast<std::size_t>(std::atol(value())) << 20;
    } else if (arg == "--backlog") {
      options.backlog = std::atoi(value());
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors
#endif

  MbspdServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "mbspd: %s\n", error.c_str());
    return 1;
  }
  std::printf("mbspd: listening on %s (workers=%zu, cache=%zu entries)\n",
              options.socket_path.c_str(),
              server.options().solver_threads == 0
                  ? static_cast<std::size_t>(
                        std::thread::hardware_concurrency())
                  : server.options().solver_threads,
              server.options().cache_capacity);
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("mbspd: draining in-flight requests\n");
  std::fflush(stdout);
  server.stop();

  const DaemonStats stats = server.stats();
  std::printf(
      "mbspd: served %llu requests — exact-hits=%llu warm-hits=%llu "
      "misses=%llu evictions=%llu solver-calls=%llu protocol-errors=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.exact_hits),
      static_cast<unsigned long long>(stats.warm_hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.solver_calls),
      static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
