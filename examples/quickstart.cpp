// Quickstart: build a computational DAG, describe the architecture, run
// the two-stage baseline and the holistic scheduler, inspect the result.
//
//   $ ./examples/quickstart
//
// The DAG is a tiny stencil-like computation: two input rows feed a row of
// averages, which feeds a row of outputs (a 1D Jacobi step, twice).

#include <cstdio>

#include "include/mbsp/mbsp.hpp"

int main() {
  using namespace mbsp;

  // 1. Build the DAG. Nodes carry a compute weight (omega, time to execute)
  //    and a memory weight (mu, size of the output value).
  ComputeDag dag("jacobi2");
  constexpr int kWidth = 8;
  std::vector<NodeId> row;
  for (int i = 0; i < kWidth; ++i) {
    row.push_back(dag.add_node(/*omega=*/0, /*mu=*/1));  // inputs
  }
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<NodeId> next;
    for (int i = 0; i < kWidth; ++i) {
      const NodeId v = dag.add_node(/*omega=*/1, /*mu=*/1);
      dag.add_edge(row[i], v);
      if (i > 0) dag.add_edge(row[i - 1], v);
      if (i + 1 < kWidth) dag.add_edge(row[i + 1], v);
      next.push_back(v);
    }
    row = std::move(next);
  }
  std::printf("DAG '%s': %d nodes, %zu edges, r0 = %.0f\n",
              dag.name().c_str(), dag.num_nodes(), dag.num_edges(),
              min_memory_r0(dag));

  // 2. Describe the machine: P processors, cache capacity r per processor,
  //    g = cost per transferred unit, L = synchronization cost.
  const MbspInstance inst{std::move(dag),
                          Architecture::make(/*P=*/2, /*r=*/8, /*g=*/1,
                                             /*L=*/5)};

  // 3. Every scheduling algorithm lives in the SchedulerRegistry and is
  //    addressed by name. First the two-stage baseline: BSPg-style
  //    scheduling, then clairvoyant cache management (Section 4).
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  SchedulerOptions options;
  options.budget_ms = 1000;
  const ScheduleResult baseline =
      registry.at("bspg+clairvoyant").run(inst, options);
  validate_or_die(inst, baseline.schedule);
  std::printf("two-stage baseline: sync cost %.1f, async cost %.1f, %d "
              "supersteps\n",
              sync_cost(inst, baseline.schedule),
              async_cost(inst, baseline.schedule), baseline.supersteps);

  // 4. Holistic scheduler: improves the baseline against the true MBSP
  //    objective (assignment, superstep structure, recomputation and
  //    memory management considered together).
  const ScheduleResult out = registry.at("holistic").run(inst, options);
  validate_or_die(inst, out.schedule);
  std::printf("holistic schedule:  sync cost %.1f (baseline %.1f, ratio "
              "%.2fx)\n",
              out.cost, out.baseline_cost, out.cost / out.baseline_cost);

  // 5. Inspect the schedule: supersteps with per-processor compute phases
  //    and save/delete/load phases, plus the aggregate report.
  std::printf("\n%s", out.schedule.to_string(inst).c_str());
  std::printf("\n%s", schedule_report(inst, out.schedule).c_str());
  return 0;
}
