// Corpus CLI: the command-line face of the workload subsystem. Generates
// any registered family from a spec string, converts between the text (v1)
// and binary (v2) DAG formats, prints canonical instance hashes, and
// drives the parallel BatchRunner over workload x scheduler grids.
//
//   corpus list
//   corpus describe [family]
//   corpus generate <spec> [--seed n] [-o out.dag] [--binary] [--stream]
//   corpus hash <file-or-spec> ...
//   corpus convert <in> <out> [--text | --binary]
//   corpus sweep --workload spec [--workload spec ...]
//               [--machine spec ...] [--list-machines]
//               [--schedulers a,b,...] [--shards k] [--P n] [--r-factor x]
//               [--g x] [--L x] [--cost sync|async] [--seed n]
//               [--budget-ms x] [--max-iterations n] [--threads n]
//               [--wall] [--csv path]
//
// Specs are `family` or `family:key=value,...` (see `corpus describe`).
// `--machine` runs every workload on each named machine model (shared
// grammar, see docs/MACHINES.md; `sweep --list-machines` lists the
// registered kinds); without it the legacy --P/--r-factor/--g/--L flags
// build one ad-hoc uniform machine. Sweeps default to budget_ms = 0 with
// a finite iteration cap, so the result table is bitwise identical for
// any thread count and machine.
//
// `generate --stream` emits the binary through the out-of-core writer
// (docs/SCALE.md): O(1) memory, so 10^6..10^7-node instances fit in a few
// hundred MB of RSS. `sweep --shards k` sizes the "sharded" scheduler's
// partition.
//
// Examples:
//   corpus generate stencil2d:nx=16,ny=16,steps=4 -o stencil.dag --binary
//   corpus convert stencil.dag stencil.txt
//   corpus hash stencil.dag stencil.txt fft:n=16
//   corpus sweep --workload lu:blocks=4 --workload fft:n=16 \
//                --schedulers bspg+clairvoyant,cilk+lru,lns

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "examples/cli_util.hpp"
#include "include/mbsp/mbsp.hpp"

namespace {

using namespace mbsp;
using mbsp::cli::split_csv;

int usage() {
  std::fprintf(
      stderr,
      "usage: corpus <command> ...\n"
      "  list                         registered workload families\n"
      "  describe [family]            family parameters and defaults\n"
      "  generate <spec> [--seed n] [-o out.dag] [--binary] [--stream]\n"
      "                               --stream: O(1)-memory binary writer\n"
      "  hash <file-or-spec> ...      canonical instance hashes\n"
      "  convert <in> <out> [--text | --binary]\n"
      "  sweep --workload spec [--workload spec ...]\n"
      "        [--machine spec ...] [--list-machines]\n"
      "        [--schedulers a,b,...] [--shards k] [--P n] [--r-factor x]\n"
      "        [--g x] [--L x] [--cost sync|async] [--seed n]\n"
      "        [--budget-ms x] [--max-iterations n] [--threads n]\n"
      "        [--wall] [--csv path]\n");
  return 2;
}

void describe_family(const WorkloadFamily& family) {
  std::printf("%s — %s\n", family.name().c_str(),
              family.description().c_str());
  for (const WorkloadParamInfo& p : family.params()) {
    std::printf("  %-10s default %-6s %s\n", p.key.c_str(),
                p.default_value.empty() ? "-" : p.default_value.c_str(),
                p.help.c_str());
  }
  std::printf("  %-10s default %-6s %s\n", "mu", "rand",
              "memory weights: rand (uniform {1..5}) or unit");
}

/// Loads `arg` as a DAG file when one exists at that path, otherwise
/// treats it as a workload spec.
std::optional<ComputeDag> load_file_or_spec(const std::string& arg,
                                            std::uint64_t seed,
                                            std::string* error) {
  if (std::ifstream(arg).good()) return read_dag_file(arg, error);
  return WorkloadRegistry::global().make_dag(arg, seed, error);
}

int cmd_list() {
  for (const std::string& name : WorkloadRegistry::global().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_describe(int argc, char** argv) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  if (argc > 0) {
    const WorkloadFamily* family = registry.find(argv[0]);
    if (family == nullptr) {
      std::fprintf(stderr, "unknown workload family '%s' (see corpus list)\n",
                   argv[0]);
      return 2;
    }
    describe_family(*family);
    return 0;
  }
  for (const std::string& name : registry.names()) {
    describe_family(registry.at(name));
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  std::string spec, out_path;
  std::uint64_t seed = 2025;
  bool binary = false;
  bool stream = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (spec.empty() && arg[0] != '-') {
      spec = arg;
    } else {
      return usage();
    }
  }
  if (spec.empty()) return usage();
  if (binary && out_path.empty()) {
    std::fprintf(stderr, "--binary requires -o <file> (stdout is text)\n");
    return 2;
  }
  if (stream) {
    // Out-of-core path: never materializes the DAG, emits the binary
    // incrementally (docs/SCALE.md). Same (spec, seed) -> same canonical
    // hash as the in-memory path below.
    if (out_path.empty()) {
      std::fprintf(stderr, "--stream requires -o <file> (binary only)\n");
      return 2;
    }
    std::string error;
    DagStreamWriter writer(out_path);
    if (!WorkloadRegistry::global().make_dag_stream(spec, seed, writer,
                                                    &error)) {
      std::fprintf(stderr, "cannot stream '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    std::uint64_t hash = 0;
    if (!writer.finish(&hash)) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   writer.error().c_str());
      return 1;
    }
    std::printf("%s  %s  (streamed binary)\n", dag_hash_hex(hash).c_str(),
                out_path.c_str());
    return 0;
  }
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(spec, seed, &error);
  if (!dag) {
    std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                 error.c_str());
    return 1;
  }
  if (out_path.empty()) {
    std::fputs(dag_to_text(*dag).c_str(), stdout);
  } else if (!write_dag_file(*dag, out_path, binary)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  } else {
    std::printf("%s  %s  (%d nodes, %zu edges, %s)\n",
                dag_hash_hex(dag_canonical_hash(*dag)).c_str(), out_path.c_str(),
                dag->num_nodes(), dag->num_edges(),
                binary ? "binary" : "text");
  }
  return 0;
}

int cmd_hash(int argc, char** argv) {
  std::uint64_t seed = 2025;
  std::vector<std::string> targets;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) return usage();
  int failures = 0;
  for (const std::string& target : targets) {
    std::string error;
    const auto dag = load_file_or_spec(target, seed, &error);
    if (!dag) {
      std::fprintf(stderr, "%s: %s\n", target.c_str(), error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s  %s  %s\n", dag_hash_hex(dag_canonical_hash(*dag)).c_str(),
                dag->name().c_str(), target.c_str());
  }
  return failures == 0 ? 0 : 1;
}

int cmd_convert(int argc, char** argv) {
  std::string in_path, out_path;
  int format = -1;  // -1 auto (flip), 0 text, 1 binary
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--text") {
      format = 0;
    } else if (arg == "--binary") {
      format = 1;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      return usage();
    }
  }
  if (in_path.empty() || out_path.empty()) return usage();
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  std::string error;
  const auto dag = dag_from_bytes(bytes, &error);
  if (!dag) {
    std::fprintf(stderr, "cannot parse %s: %s\n", in_path.c_str(),
                 error.c_str());
    return 1;
  }
  const bool to_binary = format == -1 ? !is_binary_dag(bytes) : format == 1;
  if (!write_dag_file(*dag, out_path, to_binary)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s  %s -> %s (%s)\n",
              dag_hash_hex(dag_canonical_hash(*dag)).c_str(), in_path.c_str(),
              out_path.c_str(), to_binary ? "binary" : "text");
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  std::vector<std::string> workloads;
  std::vector<std::string> machines;
  std::vector<std::string> schedulers{"bspg+clairvoyant", "cilk+lru",
                                      "holistic"};
  std::string csv_path;
  int P = 4;
  double r_factor = 3.0, g = 1.0, L = 10.0;
  std::uint64_t seed = 2025;
  bool wall = false;
  BatchOptions batch;
  // Deterministic by default: iteration-capped instead of wall-clocked.
  batch.scheduler.budget_ms = 0;
  batch.scheduler.max_iterations = 20'000;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workloads.push_back(value());
    } else if (arg == "--machine") {
      machines.push_back(value());
    } else if (arg == "--list-machines") {
      for (const std::string& name : MachineRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--schedulers") {
      schedulers = split_csv(value());
    } else if (arg == "--shards") {
      const char* token = value();
      const int shards = std::atoi(token);
      if (shards < 1) {
        std::fprintf(stderr,
                     "--shards: expected a positive shard count, got '%s'\n",
                     token);
        return 2;
      }
      batch.scheduler.shards = shards;
    } else if (arg == "--P") {
      P = std::atoi(value());
    } else if (arg == "--r-factor") {
      r_factor = std::atof(value());
    } else if (arg == "--g") {
      g = std::atof(value());
    } else if (arg == "--L") {
      L = std::atof(value());
    } else if (arg == "--cost") {
      const std::string cost = value();
      if (cost != "sync" && cost != "async") return usage();
      batch.scheduler.cost = cost == "sync" ? CostModel::kSynchronous
                                            : CostModel::kAsynchronous;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--budget-ms") {
      batch.scheduler.budget_ms = std::atof(value());
    } else if (arg == "--max-iterations") {
      batch.scheduler.max_iterations = std::atol(value());
    } else if (arg == "--threads") {
      batch.threads = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--wall") {
      wall = true;
    } else if (arg == "--csv") {
      csv_path = value();
    } else {
      return usage();
    }
  }
  if (workloads.empty()) {
    std::fprintf(stderr, "sweep needs at least one --workload spec\n");
    return 2;
  }
  for (const std::string& name : schedulers) {
    if (!SchedulerRegistry::global().contains(name)) {
      std::fprintf(stderr,
                   "unknown scheduler '%s' (see suite_runner --list)\n",
                   name.c_str());
      return 2;
    }
  }
  std::vector<MbspInstance> instances;
  instances.reserve(workloads.size() * std::max<std::size_t>(
                                           1, machines.size()));
  for (const std::string& spec : workloads) {
    if (machines.empty()) {
      std::string error;
      auto inst = WorkloadRegistry::global().make_instance(spec, seed, P,
                                                           r_factor, g, L,
                                                           &error);
      if (!inst) {
        std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                     error.c_str());
        return 1;
      }
      instances.push_back(std::move(*inst));
      continue;
    }
    // One instance per (workload, machine): the DAG is generated once and
    // sized per machine from its own min_memory_r0.
    std::string error;
    auto dag = WorkloadRegistry::global().make_dag(spec, seed, &error);
    if (!dag) {
      std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    const double r0 = min_memory_r0(*dag);
    for (const std::string& machine_spec : machines) {
      auto machine = MachineRegistry::global().make_machine(machine_spec, r0,
                                                            &error);
      if (!machine) {
        std::fprintf(stderr, "bad --machine '%s': %s\n", machine_spec.c_str(),
                     error.c_str());
        return 2;
      }
      instances.push_back({*dag, std::move(*machine)});
    }
  }
  const std::vector<BatchCell> cells =
      BatchRunner(batch).run_grid(instances, schedulers);
  const Table table = batch_table(cells, wall, /*include_hash=*/true);
  const std::string title =
      machines.empty()
          ? "corpus sweep: " + std::to_string(instances.size()) +
                " workloads x " + std::to_string(schedulers.size()) +
                " schedulers (P=" + std::to_string(P) + ")"
          : "corpus sweep: " + std::to_string(workloads.size()) +
                " workloads x " + std::to_string(machines.size()) +
                " machines x " + std::to_string(schedulers.size()) +
                " schedulers";
  std::fputs(table.to_text(title).c_str(), stdout);
  if (!csv_path.empty() && !table.write_csv(csv_path)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  int failures = 0;
  for (const BatchCell& cell : cells) failures += !cell.ok;
  if (failures > 0) {
    std::printf("%d of %zu cells failed or were unsupported\n", failures,
                cells.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  argc -= 2;
  argv += 2;
  if (command == "list") return cmd_list();
  if (command == "describe") return cmd_describe(argc, argv);
  if (command == "generate") return cmd_generate(argc, argv);
  if (command == "hash") return cmd_hash(argc, argv);
  if (command == "convert") return cmd_convert(argc, argv);
  if (command == "sweep") return cmd_sweep(argc, argv);
  return usage();
}
