#pragma once
// Small helpers shared by the example CLIs (suite_runner, corpus).

#include <string>
#include <vector>

namespace mbsp::cli {

/// Splits "a,b,c" into its non-empty comma-separated items.
inline std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > start) out.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace mbsp::cli
