// Domain example: scheduling a sparse matrix-vector product (the workload
// family where the paper's holistic method wins the most) across cache
// sizes and eviction policies, as one BatchRunner grid:
//   (r in {r0, 2r0, 3r0, 5r0}) x (two-stage clairvoyant, two-stage LRU,
//   holistic),
// showing how the memory bound shifts the compute/I-O balance and how much
// of the gap is due to the policy vs the assignment.

#include <cstdio>

#include "include/mbsp/mbsp.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace mbsp;

  Rng rng(7);
  ComputeDag dag = spmv_dag(/*n=*/8, /*avg_nnz=*/4, rng, "spmv_demo");
  assign_random_memory_weights(dag, rng);
  const double r0 = min_memory_r0(dag);
  std::printf("SpMV DAG: %d nodes, %zu edges, r0 = %.0f\n\n", dag.num_nodes(),
              dag.num_edges(), r0);

  const std::vector<double> factors{1.0, 2.0, 3.0, 5.0};
  std::vector<MbspInstance> instances;
  for (double factor : factors) {
    ComputeDag copy = dag;
    copy.set_name(dag.name() + "@" + fmt(factor, 0) + "r0");
    instances.push_back(
        {std::move(copy), Architecture::make(4, factor * r0, 1, 10)});
  }

  BatchOptions batch;
  batch.scheduler.budget_ms = 800;
  const std::vector<BatchCell> cells = BatchRunner(batch).run_grid(
      instances, {"bspg+clairvoyant", "bspg+lru", "holistic"});

  Table table({"r", "two-stage (clairvoyant)", "two-stage (LRU)",
               "holistic", "holistic I/O volume"});
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const BatchCell& cv = cells[3 * i];
    const BatchCell& lru = cells[3 * i + 1];
    const BatchCell& holistic = cells[3 * i + 2];
    if (!cv.ok || !lru.ok || !holistic.ok) {
      std::fprintf(stderr, "cell failed: %s\n",
                   (!cv.ok ? cv : !lru.ok ? lru : holistic).error.c_str());
      return 1;
    }
    table.add_row({fmt(factors[i], 0) + "*r0", fmt(cv.result.cost, 0),
                   fmt(lru.result.cost, 0), fmt(holistic.result.cost, 0),
                   fmt(holistic.result.io_volume, 0)});
  }
  std::fputs(table.to_text("SpMV scheduling across cache sizes (P=4, L=10)")
                 .c_str(),
             stdout);
  std::printf("\nLarger caches cut I/O until the compute term dominates; the\n"
              "holistic scheduler also re-assigns rows to processors, which\n"
              "the two-stage pipeline cannot do once stage 1 has committed.\n");
  return 0;
}
