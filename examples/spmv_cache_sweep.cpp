// Domain example: scheduling a sparse matrix-vector product (the workload
// family where the paper's holistic method wins the most) across cache
// sizes and eviction policies.
//
// Prints, for r in {r0, 2r0, 3r0, 5r0}:
//   * the two-stage cost with clairvoyant and with LRU eviction,
//   * the holistic scheduler's cost,
// showing how the memory bound shifts the compute/I-O balance and how much
// of the gap is due to the policy vs the assignment.

#include <cstdio>

#include "include/mbsp/mbsp.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace mbsp;

  Rng rng(7);
  ComputeDag dag = spmv_dag(/*n=*/8, /*avg_nnz=*/4, rng, "spmv_demo");
  assign_random_memory_weights(dag, rng);
  const double r0 = min_memory_r0(dag);
  std::printf("SpMV DAG: %d nodes, %zu edges, r0 = %.0f\n\n", dag.num_nodes(),
              dag.num_edges(), r0);

  Table table({"r", "two-stage (clairvoyant)", "two-stage (LRU)",
               "holistic", "holistic I/O volume"});
  for (double factor : {1.0, 2.0, 3.0, 5.0}) {
    ComputeDag copy = dag;
    const MbspInstance inst{std::move(copy),
                            Architecture::make(4, factor * r0, 1, 10)};

    GreedyBspScheduler stage1;
    const TwoStageResult cv =
        two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
    const TwoStageResult lru =
        two_stage_schedule(inst, stage1, PolicyKind::kLru);
    HolisticOptions options;
    options.budget_ms = 800;
    const HolisticOutcome holistic = holistic_schedule(inst, options);
    validate_or_die(inst, holistic.schedule);

    table.add_row({std::to_string(factor) + "*r0",
                   fmt(sync_cost(inst, cv.mbsp), 0),
                   fmt(sync_cost(inst, lru.mbsp), 0), fmt(holistic.cost, 0),
                   fmt(io_volume(inst, holistic.schedule), 0)});
  }
  std::fputs(table.to_text("SpMV scheduling across cache sizes (P=4, L=10)")
                 .c_str(),
             stdout);
  std::printf("\nLarger caches cut I/O until the compute term dominates; the\n"
              "holistic scheduler also re-assigns rows to processors, which\n"
              "the two-stage pipeline cannot do once stage 1 has committed.\n");
  return 0;
}
