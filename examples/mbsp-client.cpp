// mbsp-client: CLI client for the mbspd daemon (docs/DAEMON.md). Builds
// the request DAG locally — from a workload spec or a .dag file — ships
// it inline in mbsp-dag v2 bytes (or pins a canonical hash the daemon
// already knows), and prints the streamed reply.
//
//   mbsp-client --socket path [--ping | --stats]
//               [--workload spec | --dag file | --pin-hash hex | --trace spec]
//               [--machine spec] [--scheduler name] [--cost sync|async]
//               [--budget-ms x] [--max-iterations n] [--seed n]
//               [--deadline-ms x] [--no-cache] [--repeat k] [--quiet]
//
// The final line is machine-greppable:
//   final: scheduler=lns machine=uniform:P=4 hash=<16 hex> cost=... \
//          baseline=... supersteps=... cache=cold|exact|warm
// --repeat sends the identical request k times — the second and later
// replies must come back cache=exact (the CI smoke asserts exactly that).
//
// --trace replays a timed-arrival trace (docs/REPAIR.md) over the wire:
// SCHEDULE seeds the base incumbent, then each event goes out as a REPAIR
// pinning the previous reply's mutated hash, so repairs chain server-side.
// DAG deltas chain cumulatively (the daemon keeps each mutated DAG
// resident); machine deltas rebuild from --machine at every event, so a
// warning is printed when the trace contains any. The verdict line
//   trace_replay: OK|PARTIAL (k/n events repaired)
// is greppable; OK means every event was answered from the repair path
// (cache=repaired or exact), and PARTIAL exits 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "include/mbsp/mbsp.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket path [--ping | --stats]\n"
      "          [--workload spec | --dag file | --pin-hash hex |\n"
      "           --trace spec]\n"
      "          [--machine spec] [--scheduler name] [--cost sync|async]\n"
      "          [--budget-ms x] [--max-iterations n] [--seed n]\n"
      "          [--deadline-ms x] [--no-cache] [--repeat k] [--quiet]\n",
      argv0);
  return 2;
}

void print_stats(const mbsp::daemon::DaemonStats& stats) {
  std::printf(
      "stats: requests=%llu exact-hits=%llu warm-hits=%llu misses=%llu\n"
      "       insertions=%llu evictions=%llu solver-calls=%llu\n"
      "       repair-requests=%llu repair-hits=%llu\n"
      "       protocol-errors=%llu cache-entries=%llu/%llu connections=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.exact_hits),
      static_cast<unsigned long long>(stats.warm_hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.insertions),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.solver_calls),
      static_cast<unsigned long long>(stats.repair_requests),
      static_cast<unsigned long long>(stats.repair_hits),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.cache_entries),
      static_cast<unsigned long long>(stats.cache_capacity),
      static_cast<unsigned long long>(stats.active_connections));
}

/// Replays `trace_spec` against a live daemon: SCHEDULE seeds the base
/// incumbent, then every event is a REPAIR pinning the previous reply's
/// mutated hash (docs/REPAIR.md "Repair over the wire").
int replay_trace(mbsp::daemon::MbspClient& client,
                 const std::string& trace_spec,
                 const mbsp::daemon::ScheduleRequest& base_request,
                 bool quiet) {
  using namespace mbsp;
  using namespace mbsp::daemon;

  std::string error;
  auto trace = make_trace(trace_spec, base_request.seed,
                          base_request.machine_spec, &error);
  if (!trace) {
    std::fprintf(stderr, "mbsp-client: cannot build trace '%s': %s\n",
                 trace_spec.c_str(), error.c_str());
    return 1;
  }
  for (const TraceEvent& event : trace->events) {
    if (event.delta.touches_machine()) {
      std::fprintf(stderr,
                   "mbsp-client: warning: '%s' contains machine deltas; the "
                   "daemon rebuilds the machine from --machine at every "
                   "event, so those do not chain cumulatively\n",
                   trace->name.c_str());
      break;
    }
  }

  ScheduleRequest seed_request = base_request;
  seed_request.dag_bytes = dag_to_binary(trace->base.dag);
  MbspClient::Outcome seeded;
  if (!client.run(seed_request, &seeded, &error)) {
    std::fprintf(stderr, "mbsp-client: transport error: %s\n", error.c_str());
    return 1;
  }
  if (!seeded.ok) {
    std::fprintf(stderr, "mbsp-client: daemon error [%s]: %s\n",
                 wire_error_name(seeded.error.code),
                 seeded.error.message.c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("base: hash=%s cost=%g cache=%s\n",
                dag_hash_hex(seeded.final.dag_hash).c_str(), seeded.final.cost,
                cache_status_name(seeded.final.cache));
  }

  std::uint64_t pinned = seeded.final.dag_hash;
  std::size_t repaired = 0;
  for (std::size_t i = 0; i < trace->events.size(); ++i) {
    RepairRequest repair;
    repair.no_cache = base_request.no_cache;
    repair.machine_spec = base_request.machine_spec;
    repair.scheduler = base_request.scheduler;
    repair.cost_model = base_request.cost_model;
    repair.budget_ms = base_request.budget_ms;
    repair.max_iterations = base_request.max_iterations;
    repair.seed = base_request.seed;
    repair.deadline_ms = base_request.deadline_ms;
    if (i == 0) {
      repair.dag_bytes = seed_request.dag_bytes;  // base goes inline once
    } else {
      repair.dag_hash = pinned;  // chain onto the previous mutated scenario
    }
    repair.delta = trace->events[i].delta;

    MbspClient::Outcome outcome;
    if (!client.repair(repair, &outcome, &error)) {
      std::fprintf(stderr, "mbsp-client: transport error: %s\n",
                   error.c_str());
      return 1;
    }
    if (!outcome.ok) {
      std::fprintf(stderr, "mbsp-client: daemon error [%s]: %s\n",
                   wire_error_name(outcome.error.code),
                   outcome.error.message.c_str());
      return 1;
    }
    const bool via_repair = outcome.final.cache == CacheStatus::kRepaired ||
                            outcome.final.cache == CacheStatus::kExact;
    repaired += via_repair ? 1 : 0;
    if (!quiet) {
      std::printf("event %zu @%gms (%zu ops): hash=%s cost=%g cache=%s\n", i,
                  trace->events[i].at_ms, trace->events[i].delta.ops.size(),
                  dag_hash_hex(outcome.final.dag_hash).c_str(),
                  outcome.final.cost, cache_status_name(outcome.final.cache));
    }
    pinned = outcome.final.dag_hash;
  }

  const bool all = repaired == trace->events.size();
  std::printf("trace_replay: %s (%zu/%zu events repaired)\n",
              all ? "OK" : "PARTIAL", repaired, trace->events.size());
  return all ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbsp;
  using namespace mbsp::daemon;

  std::string socket_path;
  std::string workload_spec;
  std::string dag_file;
  std::string pin_hash_hex;
  std::string trace_spec;
  ScheduleRequest request;
  bool do_ping = false, do_stats = false, quiet = false;
  int repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--ping") {
      do_ping = true;
    } else if (arg == "--stats") {
      do_stats = true;
    } else if (arg == "--workload") {
      workload_spec = value();
    } else if (arg == "--dag") {
      dag_file = value();
    } else if (arg == "--pin-hash") {
      pin_hash_hex = value();
    } else if (arg == "--trace") {
      trace_spec = value();
    } else if (arg == "--machine") {
      request.machine_spec = value();
    } else if (arg == "--scheduler") {
      request.scheduler = value();
    } else if (arg == "--cost") {
      const std::string cost = value();
      if (cost != "sync" && cost != "async") return usage(argv[0]);
      request.cost_model = cost == "sync" ? 0 : 1;
    } else if (arg == "--budget-ms") {
      request.budget_ms = std::atof(value());
    } else if (arg == "--max-iterations") {
      request.max_iterations = std::atol(value());
    } else if (arg == "--seed") {
      request.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--deadline-ms") {
      request.deadline_ms = std::atof(value());
    } else if (arg == "--no-cache") {
      request.no_cache = true;
    } else if (arg == "--repeat") {
      repeat = std::atoi(value());
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  MbspClient client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    std::fprintf(stderr, "mbsp-client: %s\n", error.c_str());
    return 1;
  }

  if (do_ping) {
    if (!client.ping(&error)) {
      std::fprintf(stderr, "mbsp-client: ping failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (do_stats) {
    DaemonStats stats;
    if (!client.stats(&stats, &error)) {
      std::fprintf(stderr, "mbsp-client: stats failed: %s\n", error.c_str());
      return 1;
    }
    print_stats(stats);
    return 0;
  }

  if (!trace_spec.empty()) {
    return replay_trace(client, trace_spec, request, quiet);
  }

  // Assemble the DAG side of the request.
  if (!pin_hash_hex.empty()) {
    request.dag_hash = std::strtoull(pin_hash_hex.c_str(), nullptr, 16);
  } else if (!dag_file.empty()) {
    auto dag = read_dag_file(dag_file, &error);
    if (!dag) {
      std::fprintf(stderr, "mbsp-client: cannot load %s: %s\n",
                   dag_file.c_str(), error.c_str());
      return 1;
    }
    request.dag_bytes = dag_to_binary(*dag);
  } else if (!workload_spec.empty()) {
    auto dag = WorkloadRegistry::global().make_dag(workload_spec,
                                                   request.seed, &error);
    if (!dag) {
      std::fprintf(stderr, "mbsp-client: cannot generate '%s': %s\n",
                   workload_spec.c_str(), error.c_str());
      return 1;
    }
    request.dag_bytes = dag_to_binary(*dag);
  } else {
    std::fprintf(stderr,
                 "mbsp-client: one of --workload / --dag / --pin-hash / "
                 "--trace is required\n");
    return usage(argv[0]);
  }

  for (int round = 0; round < repeat; ++round) {
    MbspClient::Outcome outcome;
    if (!client.run(request, &outcome, &error)) {
      std::fprintf(stderr, "mbsp-client: transport error: %s\n",
                   error.c_str());
      return 1;
    }
    if (!outcome.ok) {
      std::fprintf(stderr, "mbsp-client: daemon error [%s]: %s\n",
                   wire_error_name(outcome.error.code),
                   outcome.error.message.c_str());
      return 1;
    }
    if (!quiet) {
      for (const std::string& status : outcome.statuses) {
        std::printf("status: %s\n", status.c_str());
      }
      for (const ProgressFrame& p : outcome.progress) {
        std::printf("progress: stage=%d cost=%g iterations=%lld\n",
                    static_cast<int>(p.stage), p.cost,
                    static_cast<long long>(p.iterations));
      }
    }
    const FinalResult& fin = outcome.final;
    std::printf(
        "final: scheduler=%s machine=%s hash=%s cost=%g baseline=%g "
        "supersteps=%u cache=%s\n",
        fin.scheduler.c_str(), fin.machine.c_str(),
        dag_hash_hex(fin.dag_hash).c_str(), fin.cost, fin.baseline_cost,
        fin.supersteps, cache_status_name(fin.cache));
  }
  return 0;
}
