// Suite runner CLI: runs any named subset of registered schedulers over a
// generated dataset or file-loaded DAGs, through the parallel BatchRunner,
// and prints (optionally exports) the result table. The whole experiment
// grid is data: adding a scheduler to the registry makes it available here
// with no code changes.
//
//   suite_runner --list | --list-workloads | --list-machines | --list-traces
//   suite_runner [--schedulers a,b,...] [--dataset tiny|small]
//                [--dag file.dag ...] [--workload spec ...]
//                [--machine spec ...]
//                [--P 4] [--r-factor 3] [--g 1]
//                [--L 10] [--cost sync|async] [--budget-ms 1500]
//                [--moves proc,step,swap,merge,split,recompute,drop|all]
//                [--lns-budget-ms x]
//                [--workers K] [--epochs E] [--shards K]
//                [--profile uniform|diverse] [--free-running]
//                [--seed 2025] [--threads N] [--wall] [--csv path.csv]
//   suite_runner --repair --trace spec [--trace spec ...]
//                [--machine spec] [--seed n] [--max-iterations n]
//
// Examples:
//   suite_runner --schedulers bspg+clairvoyant,cilk+lru,holistic
//   suite_runner --dataset small --schedulers bspg+clairvoyant,divide-conquer
//   suite_runner --dag my.dag --P 1 --schedulers dfs+clairvoyant,exact-pebbler
//   suite_runner --workload stencil2d:nx=8,ny=8 --workload fft:n=16
//   suite_runner --schedulers lns --moves proc,swap --lns-budget-ms 500
//   suite_runner --schedulers lns,lns-portfolio --workers 8 --epochs 4
//   suite_runner --workload fft:n=16 --machine uniform:P=8 \
//                --machine "numa:groups=2x4,gin=1,gout=4"
//
// --machine runs every instance on each named machine model (see
// docs/MACHINES.md and --list-machines); without it the legacy
// --P/--r-factor/--g/--L flags build one ad-hoc uniform machine. The
// result table gains a machine column whenever --machine is used.
//
// --repair switches to the online-repair replay mode (docs/REPAIR.md):
// each --trace spec (a timed-arrival trace, see --list-traces) is
// replayed event by event — the incumbent schedule is repaired via the
// "repair" scheduler AND the mutated instance is re-solved from scratch
// with "lns" at the same iteration budget. The run prints per-event cost
// ratios, a per-trace and overall geometric mean, and ends with the
// greppable verdict line `repair_vs_resolve: OK|FAIL` (exit 1 on FAIL:
// repair lost to re-solving at equal budget). Deterministic for
// --max-iterations with the default budget-free replay.
//
// --moves restricts the LNS move classes (ablation sweeps without
// recompiling); --lns-budget-ms overrides the optimization budget for the
// LNS-family schedulers (lns / lns-portfolio / holistic / divide-conquer)
// only, so a grid can mix fast baselines with a separately-budgeted
// anytime improver. --workers / --epochs / --profile / --free-running
// shape the lns-portfolio scheduler (see docs/CLI.md); --shards sizes the
// "sharded" out-of-core scheduler's partition (see docs/SCALE.md).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "examples/cli_util.hpp"
#include "include/mbsp/mbsp.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace mbsp;
using mbsp::cli::split_csv;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--list-workloads] [--list-machines]\n"
               "          [--list-traces]\n"
               "          [--repair] [--trace spec ...]\n"
               "          [--schedulers a,b,...]\n"
               "          [--dataset tiny|small] [--dag file ...]\n"
               "          [--workload spec ...] [--machine spec ...]\n"
               "          [--P n] [--r-factor x] [--g x] [--L x]\n"
               "          [--cost sync|async] [--budget-ms x] [--seed n]\n"
               "          [--moves a,b,...|all] [--lns-budget-ms x]\n"
               "          [--workers k] [--epochs e] [--shards k]\n"
               "          [--profile uniform|diverse] [--free-running]\n"
               "          [--max-iterations n] [--threads n] [--wall]\n"
               "          [--csv path.csv]\n",
               argv0);
  return 2;
}

/// The --repair replay (docs/REPAIR.md): repair-vs-resolve along each
/// trace, at the same per-event iteration budget. Returns the process
/// exit status.
int run_repair_replay(const std::vector<std::string>& trace_specs,
                      const std::string& machine_spec, std::uint64_t seed,
                      const SchedulerOptions& base_options) {
  const MbspScheduler* lns = SchedulerRegistry::global().find("lns");
  const MbspScheduler* repairer = SchedulerRegistry::global().find("repair");
  if (lns == nullptr || repairer == nullptr) {
    std::fprintf(stderr, "repair replay: lns/repair schedulers missing\n");
    return 1;
  }
  std::vector<double> all_ratios;
  for (const std::string& spec : trace_specs) {
    std::string error;
    auto trace = make_trace(spec, seed, machine_spec, &error);
    if (!trace) {
      std::fprintf(stderr, "cannot build trace '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 2;
    }
    MbspInstance inst = trace->base;
    ScheduleResult incumbent = lns->run(inst, base_options);
    std::printf("%s on %s: base cost %g, %zu events\n", trace->name.c_str(),
                inst.arch.name.c_str(), incumbent.cost,
                trace->events.size());
    std::vector<double> ratios;
    for (std::size_t e = 0; e < trace->events.size(); ++e) {
      const TraceEvent& event = trace->events[e];
      if (!apply_instance_delta(inst, event.delta, nullptr, &error)) {
        std::fprintf(stderr, "%s event %zu: %s\n", trace->name.c_str(), e,
                     error.c_str());
        return 1;
      }
      SchedulerOptions repair_options = base_options;
      repair_options.warm_start_plan = &incumbent.plan;
      repair_options.repair_delta = &event.delta;
      ScheduleResult repaired = repairer->run(inst, repair_options);
      ScheduleResult resolved = lns->run(inst, base_options);
      const double ratio = repaired.cost / resolved.cost;
      ratios.push_back(ratio);
      std::printf("  event %zu @%gms (%zu ops): repair %g  resolve %g  "
                  "ratio %.4f\n",
                  e, event.at_ms, event.delta.ops.size(), repaired.cost,
                  resolved.cost, ratio);
      incumbent = std::move(repaired);
    }
    std::printf("  %s geomean ratio %.4f\n", trace->name.c_str(),
                geometric_mean(ratios));
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());
  }
  const double geomean = geometric_mean(all_ratios);
  const bool ok = geomean <= 1.0;
  std::printf("repair_vs_resolve: %s (geomean %.4f over %zu events)\n",
              ok ? "OK" : "FAIL", geomean, all_ratios.size());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbsp;

  std::vector<std::string> schedulers{"bspg+clairvoyant", "holistic"};
  std::string dataset = "tiny";
  std::vector<std::string> dag_files;
  std::vector<std::string> workload_specs;
  std::vector<std::string> machine_specs;
  std::string csv_path;
  int P = 4;
  double r_factor = 3.0, g = 1.0, L = 10.0;
  BatchOptions batch;
  batch.scheduler.budget_ms = 1500;
  std::uint64_t seed = 2025;
  bool wall = false;
  double lns_budget_ms = -1;  // < 0: no LNS-specific override
  bool repair_mode = false;
  std::vector<std::string> trace_specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const std::string& name : SchedulerRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--list-workloads") {
      for (const std::string& name : WorkloadRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--list-machines") {
      for (const std::string& name : MachineRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--list-traces") {
      for (const std::string& name : trace_family_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--repair") {
      repair_mode = true;
    } else if (arg == "--trace") {
      trace_specs.push_back(value());
    } else if (arg == "--machine") {
      machine_specs.push_back(value());
    } else if (arg == "--schedulers") {
      schedulers = split_csv(value());
    } else if (arg == "--dataset") {
      dataset = value();
    } else if (arg == "--dag") {
      dag_files.push_back(value());
    } else if (arg == "--workload") {
      workload_specs.push_back(value());
    } else if (arg == "--P") {
      P = std::atoi(value());
    } else if (arg == "--r-factor") {
      r_factor = std::atof(value());
    } else if (arg == "--g") {
      g = std::atof(value());
    } else if (arg == "--L") {
      L = std::atof(value());
    } else if (arg == "--cost") {
      const std::string cost = value();
      if (cost != "sync" && cost != "async") return usage(argv[0]);
      batch.scheduler.cost = cost == "sync" ? CostModel::kSynchronous
                                            : CostModel::kAsynchronous;
    } else if (arg == "--budget-ms") {
      batch.scheduler.budget_ms = std::atof(value());
    } else if (arg == "--moves") {
      unsigned mask = 0;
      std::string unknown;
      if (!parse_move_mask(value(), &mask, &unknown)) {
        std::fprintf(stderr,
                     "unknown move class '%s' in --moves (known: all, none",
                     unknown.c_str());
        for (int m = 0; m < kNumMoveClasses; ++m) {
          std::fprintf(stderr, ", %s", lns_move_class_name(m));
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
      batch.scheduler.move_mask = mask;
    } else if (arg == "--lns-budget-ms") {
      lns_budget_ms = std::atof(value());
    } else if (arg == "--workers") {
      batch.scheduler.workers = std::atoi(value());
    } else if (arg == "--shards") {
      // Partition size for the "sharded" scheduler (docs/SCALE.md).
      const char* token = value();
      const int shards = std::atoi(token);
      if (shards < 1) {
        std::fprintf(stderr,
                     "--shards: expected a positive shard count, got '%s'\n",
                     token);
        return 2;
      }
      batch.scheduler.shards = shards;
    } else if (arg == "--epochs") {
      batch.scheduler.epochs = std::atoi(value());
    } else if (arg == "--profile") {
      if (!parse_portfolio_profile(value(),
                                   &batch.scheduler.portfolio_profile)) {
        std::fprintf(stderr, "unknown --profile (uniform | diverse)\n");
        return 2;
      }
    } else if (arg == "--free-running") {
      batch.scheduler.free_running = true;
    } else if (arg == "--max-iterations") {
      // With --budget-ms 0 this makes runs bit-for-bit reproducible.
      batch.scheduler.max_iterations = std::atol(value());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      batch.threads = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--wall") {
      wall = true;
    } else if (arg == "--csv") {
      csv_path = value();
    } else {
      return usage(argv[0]);
    }
  }

  if (repair_mode || !trace_specs.empty()) {
    if (!repair_mode) {
      std::fprintf(stderr, "--trace requires --repair (the replay mode)\n");
      return 2;
    }
    if (trace_specs.empty()) {
      std::fprintf(stderr,
                   "--repair needs at least one --trace spec "
                   "(families: see --list-traces)\n");
      return 2;
    }
    if (machine_specs.size() > 1) {
      std::fprintf(stderr, "--repair replays on one machine model\n");
      return 2;
    }
    SchedulerOptions options = batch.scheduler;
    options.seed = seed;
    return run_repair_replay(
        trace_specs,
        machine_specs.empty() ? "uniform:P=4" : machine_specs.front(), seed,
        options);
  }

  for (const std::string& name : schedulers) {
    if (!SchedulerRegistry::global().contains(name)) {
      std::fprintf(stderr,
                   "unknown scheduler '%s' (see --list for the registry)\n",
                   name.c_str());
      return 2;
    }
  }

  // Assemble the instance set: file-loaded DAGs and workload specs win
  // over the dataset.
  std::vector<ComputeDag> dags;
  if (!dag_files.empty() || !workload_specs.empty()) {
    for (const std::string& path : dag_files) {
      std::string error;
      auto dag = read_dag_file(path, &error);
      if (!dag) {
        std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
      }
      dags.push_back(std::move(*dag));
    }
    for (const std::string& spec : workload_specs) {
      std::string error;
      auto dag = WorkloadRegistry::global().make_dag(spec, seed, &error);
      if (!dag) {
        std::fprintf(stderr, "cannot generate '%s': %s\n", spec.c_str(),
                     error.c_str());
        return 1;
      }
      dags.push_back(std::move(*dag));
    }
  } else if (dataset == "tiny") {
    dags = tiny_dataset(seed);
  } else if (dataset == "small") {
    dags = small_dataset(seed);
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (tiny | small)\n",
                 dataset.c_str());
    return 2;
  }

  std::vector<MbspInstance> instances;
  if (machine_specs.empty()) {
    instances.reserve(dags.size());
    for (ComputeDag& dag : dags) {
      const double r0 = min_memory_r0(dag);
      instances.push_back(
          {std::move(dag), Architecture::make(P, r_factor * r0, g, L)});
    }
  } else {
    // One instance per (DAG, machine): each DAG runs on every named
    // machine model, sized from its own min_memory_r0.
    instances.reserve(dags.size() * machine_specs.size());
    for (const ComputeDag& dag : dags) {
      const double r0 = min_memory_r0(dag);
      for (const std::string& spec : machine_specs) {
        std::string error;
        auto machine = MachineRegistry::global().make_machine(spec, r0,
                                                              &error);
        if (!machine) {
          std::fprintf(stderr, "bad --machine '%s': %s\n", spec.c_str(),
                       error.c_str());
          return 2;
        }
        instances.push_back({dag, std::move(*machine)});
      }
    }
  }

  std::vector<BatchCell> cells;
  if (lns_budget_ms >= 0) {
    // Per-cell options: the LNS-family schedulers get their own budget
    // (cell order matches run_grid: instance-major, scheduler-minor).
    std::vector<BatchRunner::CellSpec> specs;
    for (const MbspInstance& inst : instances) {
      for (const std::string& name : schedulers) {
        SchedulerOptions options = batch.scheduler;
        if (name == "lns" || name == "lns-portfolio" || name == "holistic" ||
            name == "divide-conquer") {
          options.budget_ms = lns_budget_ms;
        }
        specs.push_back({&inst, name, options});
      }
    }
    cells = BatchRunner(batch).run_cells(specs);
  } else {
    cells = BatchRunner(batch).run_grid(instances, schedulers);
  }
  const Table table = batch_table(cells, wall);
  const std::string title =
      machine_specs.empty()
          ? "suite: " + std::to_string(instances.size()) + " instances x " +
                std::to_string(schedulers.size()) + " schedulers (P=" +
                std::to_string(P) + ")"
          : "suite: " + std::to_string(dags.size()) + " instances x " +
                std::to_string(machine_specs.size()) + " machines x " +
                std::to_string(schedulers.size()) + " schedulers";
  std::fputs(table.to_text(title).c_str(), stdout);
  if (!csv_path.empty() && !table.write_csv(csv_path)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  int failures = 0;
  for (const BatchCell& cell : cells) failures += !cell.ok;
  if (failures > 0) {
    std::printf("%d of %zu cells failed or were unsupported\n", failures,
                cells.size());
  }
  return 0;
}
