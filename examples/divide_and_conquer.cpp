// Scaling example: scheduling a ~300-node DAG with the divide-and-conquer
// pipeline of Section 6.3 — ILP-based acyclic bipartitioning into <= 60
// node parts, a quotient-level processor allocation, per-part holistic
// solves, and a global memory completion that stitches the parts together.

#include <cstdio>

#include "include/mbsp/mbsp.hpp"

int main() {
  using namespace mbsp;

  auto dataset = small_dataset(2025);
  ComputeDag dag = std::move(dataset[2]);  // spmv_N25, ~290 nodes
  const double r0 = min_memory_r0(dag);
  std::printf("instance %s: %d nodes, %zu edges, r0 = %.0f\n",
              dag.name().c_str(), dag.num_nodes(), dag.num_edges(), r0);
  const MbspInstance inst{std::move(dag),
                          Architecture::make(4, 5 * r0, 1, 10)};

  // Step 1 in isolation: what does the acyclic partitioner produce?
  const auto parts = recursive_acyclic_partition(inst.dag, 60);
  std::size_t boundary = 0;
  {
    std::vector<int> part_of(inst.dag.num_nodes());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      for (NodeId v : parts[i]) part_of[v] = static_cast<int>(i);
    }
    boundary = cut_edges(inst.dag, part_of);
  }
  std::printf("acyclic partition: %zu parts, %zu cut edges\n", parts.size(),
              boundary);

  // The two-stage baseline for reference, then the full divide-and-conquer
  // run — both through the scheduler registry.
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  SchedulerOptions options;
  options.budget_ms = 1600;  // the divide-conquer adapter spends /4 per part
  const ScheduleResult base =
      registry.at("bspg+clairvoyant").run(inst, options);
  const ScheduleResult res = registry.at("divide-conquer").run(inst, options);
  validate_or_die(inst, res.schedule);

  std::printf("baseline cost %.0f | divide-and-conquer cost %.0f "
              "(ratio %.2fx, %zu parts)\n",
              base.cost, res.cost, res.cost / base.cost, res.num_parts);
  std::printf("\nOn SpMV-like DAGs the parts are loosely coupled and the\n"
              "method wins; on exp/kNN-like DAGs the per-part optima ignore\n"
              "cross-part cache reuse and it can lose to the baseline —\n"
              "exactly the behaviour Table 2 of the paper reports.\n");
  return 0;
}
