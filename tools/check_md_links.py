#!/usr/bin/env python3
"""Fails on broken intra-repo markdown links (files and heading anchors).

Scans every tracked *.md file (excluding build directories), extracts
inline markdown links, and verifies that every non-external target
resolves: the referenced file exists relative to the linking file, and a
`#fragment` (same-file or cross-file) matches a GitHub-style heading slug
in the target. External schemes (http/https/mailto) are ignored — CI
must not fail on someone else's outage.

Usage: tools/check_md_links.py [repo-root]   (exit 1 on any broken link)
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {"build", "build-asan", ".git", "_deps", "html"}


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm: strip formatting, lowercase, drop
    punctuation, spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path: str):
    """(line number, target) pairs of inline links outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def heading_slugs(path: str):
    slugs = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slug = github_slug(match.group(1))
                count = seen.get(slug, 0)
                seen[slug] = count + 1
                slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for md in markdown_files(root):
        rel_md = os.path.relpath(md, root)
        for lineno, target in links_in(md):
            if target.startswith(EXTERNAL) or target.startswith("<"):
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part))
            else:
                resolved = md  # same-file anchor
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}:{lineno}: broken link '{target}' "
                              f"(no such file {path_part})")
                continue
            if fragment and resolved.endswith(".md"):
                if fragment not in heading_slugs(resolved):
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'#{fragment}' in '{target}'")
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} intra-repo links, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
