#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (stdlib only; run with
`python3 tools/test_bench_compare.py`). Covers the perf-gate semantics the
CI jobs rely on — in particular that a fresh BENCH_*.json without a
committed baseline (a just-added bench like bench_repair) warns and skips
the gate instead of failing the build."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_compare.py")


def report(bench="demo", value=1.0, gated=True, higher=True):
    return {
        "bench": bench,
        "peak_rss_mb": 10.0,
        "metrics": {
            "metric": {"value": value, "higher_is_better": higher,
                       "gated": gated},
        },
        "families": {},
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, payload=None):
        p = os.path.join(self.dir.name, name)
        if payload is not None:
            with open(p, "w") as f:
                json.dump(payload, f)
        return p

    def run_tool(self, *args):
        return subprocess.run([sys.executable, TOOL, *args],
                              capture_output=True, text=True)

    def test_missing_baseline_warns_and_exits_zero(self):
        current = self.path("current.json", report())
        result = self.run_tool(self.path("no_such_baseline.json"), current)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("no baseline", result.stdout)
        self.assertIn("gate skipped", result.stdout)
        self.assertIn("--update", result.stdout)  # actionable notice

    def test_within_threshold_passes(self):
        baseline = self.path("baseline.json", report(value=1.0))
        current = self.path("current.json", report(value=0.95))
        result = self.run_tool(baseline, current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("all gated metrics within threshold", result.stdout)

    def test_gated_regression_fails(self):
        baseline = self.path("baseline.json", report(value=1.0))
        current = self.path("current.json", report(value=0.5))
        result = self.run_tool(baseline, current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("[FAIL] metric", result.stdout)

    def test_lower_is_better_direction(self):
        baseline = self.path("baseline.json", report(value=1.0, higher=False))
        worse = self.path("worse.json", report(value=1.5, higher=False))
        better = self.path("better.json", report(value=0.5, higher=False))
        self.assertEqual(self.run_tool(baseline, worse).returncode, 1)
        self.assertEqual(self.run_tool(baseline, better).returncode, 0)

    def test_ungated_regression_is_informational(self):
        baseline = self.path("baseline.json", report(value=1.0, gated=False))
        current = self.path("current.json", report(value=0.1, gated=False))
        result = self.run_tool(baseline, current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[info]", result.stdout)

    def test_bench_mismatch_is_an_error(self):
        baseline = self.path("baseline.json", report(bench="a"))
        current = self.path("current.json", report(bench="b"))
        result = self.run_tool(baseline, current)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("bench mismatch", result.stderr)

    def test_update_installs_baseline(self):
        baseline = self.path("nested/dir/baseline.json")
        current = self.path("current.json", report(value=2.0))
        result = self.run_tool(baseline, current, "--update")
        self.assertEqual(result.returncode, 0, result.stderr)
        with open(baseline) as f:
            self.assertEqual(json.load(f)["metrics"]["metric"]["value"], 2.0)
        # And the freshly installed baseline gates cleanly.
        self.assertEqual(self.run_tool(baseline, current).returncode, 0)

    def test_update_refuses_malformed_json(self):
        baseline = self.path("baseline.json")
        current = self.path("current.json")
        with open(current, "w") as f:
            f.write("{not json")
        result = self.run_tool(baseline, current, "--update")
        self.assertNotEqual(result.returncode, 0)
        self.assertFalse(os.path.exists(baseline))


if __name__ == "__main__":
    unittest.main()
