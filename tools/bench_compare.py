#!/usr/bin/env python3
"""Perf-trajectory gate: compare a fresh BENCH_*.json against its baseline.

Each bench binary writes a BENCH_<name>.json report (see bench/bench_common.hpp,
PerfReport). Metrics carry their direction and a `gated` flag:

  * gated metrics are machine-relative (speedups over an in-process reference,
    deterministic cost ratios) and FAIL the run when they regress beyond the
    noise threshold relative to the committed baseline in bench/baselines/;
  * ungated metrics (absolute iters/s, peak RSS) track the host, so they are
    reported but never fail the gate.

Usage:
  bench_compare.py BASELINE CURRENT [--threshold 0.10]
  bench_compare.py BASELINE CURRENT --update     # accept CURRENT as baseline

A missing BASELINE file is not an error: the bench is treated as new, the
gate is skipped with an actionable notice (run with --update to install
the baseline), and the exit status is 0 — so adding a bench binary never
breaks CI before its first baseline lands.

Exit status: 0 when every gated metric is within threshold, 1 otherwise.
Stdlib only — runs anywhere python3 does.
"""

import argparse
import json
import os
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def metric_row(name, bv, cv, higher, gated, threshold):
    """One (metric, base, cur, gated, ok, detail) comparison row. Shared by
    declared metrics and top-level fields like peak_rss_mb, so every number
    gets the same direction/threshold treatment."""
    if bv is None:
        return (name, None, cv, gated, True, "new metric, not in baseline")
    if cv is None:
        return (name, bv, None, gated, not gated, "missing in current")
    if bv == 0:
        return (name, bv, cv, gated, True, "zero baseline, skipped")
    if higher:
        ok = cv >= bv * (1.0 - threshold)
        detail = f"{cv / bv - 1.0:+.1%} vs baseline (floor {-threshold:.0%})"
    else:
        ok = cv <= bv * (1.0 + threshold)
        detail = f"{cv / bv - 1.0:+.1%} vs baseline (ceiling {threshold:+.0%})"
    return (name, bv, cv, gated, ok or not gated,
            detail if gated else detail + " [informational]")


def compare(baseline, current, threshold):
    """Returns a list of (metric, base, cur, gated, ok, detail) rows."""
    rows = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name, base in base_metrics.items():
        cur = cur_metrics.get(name)
        rows.append(metric_row(name, base["value"],
                               None if cur is None else cur["value"],
                               base.get("higher_is_better", True),
                               base.get("gated", False), threshold))
    for name in cur_metrics:
        if name not in base_metrics:
            rows.append(metric_row(name, None, cur_metrics[name]["value"],
                                   True, False, threshold))
    # Top-level peak RSS rides the same row machinery as any other absolute
    # metric: lower is better, informational (it tracks the host, not the
    # code).
    if (baseline.get("peak_rss_mb") is not None
            or current.get("peak_rss_mb") is not None):
        rows.append(metric_row("peak_rss_mb", baseline.get("peak_rss_mb"),
                               current.get("peak_rss_mb"), False, False,
                               threshold))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative noise threshold for gated metrics "
                             "(default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="copy CURRENT over BASELINE and exit 0")
    args = parser.parse_args()

    if args.update:
        load(args.current)  # refuse to install malformed JSON
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        current = load(args.current)
        print(f"bench_compare: new benchmark '{current.get('bench')}' — "
              f"no baseline at {args.baseline}")
        print(f"  install one with: tools/bench_compare.py {args.baseline} "
              f"{args.current} --update")
        print("bench_compare: gate skipped (nothing to compare against)")
        return 0

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("bench") != current.get("bench"):
        sys.exit(f"bench_compare: bench mismatch: baseline is "
                 f"'{baseline.get('bench')}', current is "
                 f"'{current.get('bench')}'")

    rows = compare(baseline, current, args.threshold)
    failed = [r for r in rows if not r[4]]
    print(f"bench '{current.get('bench')}' vs {args.baseline} "
          f"(threshold {args.threshold:.0%}):")
    for name, bv, cv, gated, ok, detail in rows:
        flag = "FAIL" if not ok else ("gate" if gated else "info")
        fmt = lambda v: "-" if v is None else f"{v:.6g}"
        print(f"  [{flag}] {name}: {fmt(bv)} -> {fmt(cv)}  {detail}")
    if failed:
        print(f"bench_compare: {len(failed)} gated metric(s) regressed "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: all gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
