#!/usr/bin/env python3
"""Perf-trajectory gate: compare a fresh BENCH_*.json against its baseline.

Each bench binary writes a BENCH_<name>.json report (see bench/bench_common.hpp,
PerfReport). Metrics carry their direction and a `gated` flag:

  * gated metrics are machine-relative (speedups over an in-process reference,
    deterministic cost ratios) and FAIL the run when they regress beyond the
    noise threshold relative to the committed baseline in bench/baselines/;
  * ungated metrics (absolute iters/s, peak RSS) track the host, so they are
    reported but never fail the gate.

Usage:
  bench_compare.py BASELINE CURRENT [--threshold 0.10]
  bench_compare.py BASELINE CURRENT --update     # accept CURRENT as baseline

Exit status: 0 when every gated metric is within threshold, 1 otherwise.
Stdlib only — runs anywhere python3 does.
"""

import argparse
import json
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def compare(baseline, current, threshold):
    """Returns a list of (metric, base, cur, gated, ok, detail) rows."""
    rows = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name, base in base_metrics.items():
        cur = cur_metrics.get(name)
        if cur is None:
            rows.append((name, base["value"], None, base.get("gated", False),
                         not base.get("gated", False), "missing in current"))
            continue
        bv, cv = base["value"], cur["value"]
        higher = base.get("higher_is_better", True)
        gated = base.get("gated", False)
        if bv == 0:
            ok, detail = True, "zero baseline, skipped"
        elif higher:
            ok = cv >= bv * (1.0 - threshold)
            detail = f"{cv / bv - 1.0:+.1%} vs baseline (floor {-threshold:.0%})"
        else:
            ok = cv <= bv * (1.0 + threshold)
            detail = f"{cv / bv - 1.0:+.1%} vs baseline (ceiling {threshold:+.0%})"
        rows.append((name, bv, cv, gated, ok or not gated,
                     detail if gated else detail + " [informational]"))
    for name in cur_metrics:
        if name not in base_metrics:
            rows.append((name, None, cur_metrics[name]["value"], False, True,
                         "new metric, not in baseline"))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative noise threshold for gated metrics "
                             "(default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="copy CURRENT over BASELINE and exit 0")
    args = parser.parse_args()

    if args.update:
        load(args.current)  # refuse to install malformed JSON
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("bench") != current.get("bench"):
        sys.exit(f"bench_compare: bench mismatch: baseline is "
                 f"'{baseline.get('bench')}', current is "
                 f"'{current.get('bench')}'")

    rows = compare(baseline, current, args.threshold)
    failed = [r for r in rows if not r[4]]
    print(f"bench '{current.get('bench')}' vs {args.baseline} "
          f"(threshold {args.threshold:.0%}):")
    for name, bv, cv, gated, ok, detail in rows:
        flag = "FAIL" if not ok else ("gate" if gated else "info")
        fmt = lambda v: "-" if v is None else f"{v:.6g}"
        print(f"  [{flag}] {name}: {fmt(bv)} -> {fmt(cv)}  {detail}")
    rss_b = baseline.get("peak_rss_mb")
    rss_c = current.get("peak_rss_mb")
    if rss_b is not None and rss_c is not None:
        print(f"  [info] peak_rss_mb: {rss_b:.6g} -> {rss_c:.6g}")
    if failed:
        print(f"bench_compare: {len(failed)} gated metric(s) regressed "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: all gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
