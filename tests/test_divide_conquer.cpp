// Tests for the divide-and-conquer scheduler on larger DAGs.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/holistic/divide_conquer.hpp"
#include "src/holistic/scheduler.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"

namespace mbsp {
namespace {

TEST(DivideConquer, ValidOnSmallDatasetInstance) {
  auto dataset = small_dataset(2025);
  ComputeDag dag = std::move(dataset[2]);  // spmv_N25
  const double r0 = min_memory_r0(dag);
  const MbspInstance inst{std::move(dag),
                          Architecture::make(4, 5 * r0, 1, 10)};
  DivideConquerOptions options;
  options.lns.budget_ms = 100;
  const DivideConquerResult res = divide_conquer_schedule(inst, options);
  EXPECT_GT(res.num_parts, 1u);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_DOUBLE_EQ(res.cost, sync_cost(inst, res.schedule));
  // Every non-source node computed at least once.
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (!inst.dag.is_source(v)) {
      EXPECT_GE(res.schedule.compute_count(v), 1u) << "node " << v;
    }
  }
}

TEST(DivideConquer, WorksOnCoarseGrainedInstance) {
  auto dataset = small_dataset(2025);
  ComputeDag dag = std::move(dataset[0]);  // simple_pagerank
  const double r0 = min_memory_r0(dag);
  const MbspInstance inst{std::move(dag),
                          Architecture::make(4, 5 * r0, 1, 10)};
  DivideConquerOptions options;
  options.lns.budget_ms = 100;
  const DivideConquerResult res = divide_conquer_schedule(inst, options);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(DivideConquer, FacadeRoutesLargeInstances) {
  auto dataset = small_dataset(2025);
  ComputeDag dag = std::move(dataset[4]);  // CG_N5_K4
  const double r0 = min_memory_r0(dag);
  const MbspInstance inst{std::move(dag),
                          Architecture::make(4, 5 * r0, 1, 10)};
  HolisticOptions options;
  options.budget_ms = 600;
  const HolisticOutcome out = holistic_schedule(inst, options);
  EXPECT_TRUE(out.used_divide_conquer);
  const auto valid = validate(inst, out.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_GT(out.baseline_cost, 0);
}

TEST(DivideConquer, SingleProcessorDegenerates) {
  auto dataset = small_dataset(2025);
  ComputeDag dag = std::move(dataset[3]);  // spmv_N35
  const double r0 = min_memory_r0(dag);
  const MbspInstance inst{std::move(dag), Architecture::make(1, 5 * r0, 1, 0)};
  DivideConquerOptions options;
  options.lns.budget_ms = 50;
  const DivideConquerResult res = divide_conquer_schedule(inst, options);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
}

}  // namespace
}  // namespace mbsp
