// Tests for the holistic LNS scheduler: never worsens the warm start,
// always yields valid schedules, exploits the structures the paper's
// theory predicts (zipper gadget), and is deterministic per seed.
#include <gtest/gtest.h>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/gadgets.hpp"
#include "src/graph/generators.hpp"
#include "src/holistic/lns.hpp"
#include "src/holistic/scheduler.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {
namespace {

MbspInstance tiny_instance(int index, int P = 4, double r_factor = 3,
                           double g = 1, double L = 10) {
  auto dataset = tiny_dataset(2025);
  ComputeDag dag = std::move(dataset[index]);
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, g, L)};
}

TEST(Lns, NeverWorseThanWarmStart) {
  for (int index : {1, 3, 9}) {
    const MbspInstance inst = tiny_instance(index);
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    LnsOptions options;
    options.budget_ms = 300;
    const LnsResult res = improve_plan(inst, base.plan, options);
    EXPECT_LE(res.cost, res.initial_cost + 1e-9) << inst.name();
    const auto valid = validate(inst, res.schedule);
    EXPECT_TRUE(valid.ok) << inst.name() << ": " << valid.error;
  }
}

TEST(Lns, ImprovesSpmvNoticeably) {
  // The paper's largest wins are on SpMV-like instances; even a short
  // budget should find a strictly better schedule.
  const MbspInstance inst = tiny_instance(3);  // spmv_N6
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  options.budget_ms = 1500;
  const LnsResult res = improve_plan(inst, base.plan, options);
  EXPECT_LT(res.cost, res.initial_cost) << "no improvement on spmv_N6";
}

TEST(Lns, DeterministicPerSeed) {
  const MbspInstance inst = tiny_instance(5);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  options.budget_ms = 0;  // no deadline: run a fixed iteration count
  options.max_iterations = 3000;
  const LnsResult a = improve_plan(inst, base.plan, options);
  const LnsResult b = improve_plan(inst, base.plan, options);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Lns, AsyncObjectiveSupported) {
  const MbspInstance inst = tiny_instance(4, 4, 3, 1, 0);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  options.budget_ms = 300;
  options.cost = CostModel::kAsynchronous;
  const LnsResult res = improve_plan(inst, base.plan, options);
  EXPECT_LE(res.cost, res.initial_cost + 1e-9);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_NEAR(async_cost(inst, res.schedule), res.cost, 1e-9);
}

TEST(Lns, NoRecomputeRestrictionHolds) {
  const MbspInstance inst = tiny_instance(10);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  options.budget_ms = 300;
  options.allow_recompute = false;
  const LnsResult res = improve_plan(inst, base.plan, options);
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (!inst.dag.is_source(v)) {
      EXPECT_LE(res.plan.seq[0].size() + res.plan.seq[1].size() +
                    res.plan.seq[2].size() + res.plan.seq[3].size(),
                res.plan.total_computes());
    }
  }
  std::size_t non_source = 0;
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    non_source += !inst.dag.is_source(v);
  }
  EXPECT_EQ(res.plan.total_computes(), non_source);
}

TEST(Lns, ZipperGadgetLargeGain) {
  // Theorem 4.1: the two-stage result on the zipper costs ~d*m*g in I/O;
  // the holistic optimum only ~(2m + d)*g. The LNS must close a large part
  // of that gap from the baseline warm start.
  const ZipperGadget z = zipper_gadget(6, 10);
  ComputeDag dag = z.dag;
  const MbspInstance inst{std::move(dag),
                          Architecture::make(2, z.d + 2, 1, 0)};
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  const double base_cost = sync_cost(inst, base.mbsp);
  LnsOptions options;
  options.budget_ms = 3000;
  options.seed = 5;
  const LnsResult res = improve_plan(inst, base.plan, options);
  EXPECT_LT(res.cost, base_cost) << "LNS failed to improve the zipper";
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(HolisticFacade, SmallInstanceUsesLns) {
  const MbspInstance inst = tiny_instance(2);
  HolisticOptions options;
  options.budget_ms = 200;
  const HolisticOutcome out = holistic_schedule(inst, options);
  EXPECT_FALSE(out.used_divide_conquer);
  EXPECT_LE(out.cost, out.baseline_cost + 1e-9);
  const auto valid = validate(inst, out.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Lns, MoveMaskRestrictsSearch) {
  const MbspInstance inst = tiny_instance(3);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  options.budget_ms = 0;
  options.max_iterations = 2000;
  options.move_mask = 0;  // nothing enabled: search must be a no-op
  const LnsResult none = improve_plan(inst, base.plan, options);
  EXPECT_EQ(none.iterations, 0);
  EXPECT_DOUBLE_EQ(none.cost, none.initial_cost);
  options.move_mask = kMergeSupersteps | kSplitSuperstep;
  const LnsResult some = improve_plan(inst, base.plan, options);
  EXPECT_LE(some.cost, some.initial_cost + 1e-9);
  // Superstep-structure moves alone never change the processor of a node.
  for (int p = 0; p < inst.arch.num_processors; ++p) {
    ASSERT_EQ(some.plan.seq[p].size(), base.plan.seq[p].size());
    for (std::size_t i = 0; i < some.plan.seq[p].size(); ++i) {
      EXPECT_EQ(some.plan.seq[p][i].node, base.plan.seq[p][i].node);
    }
  }
}

TEST(EvaluatePlan, MatchesScheduleCost) {
  const MbspInstance inst = tiny_instance(0);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  LnsOptions options;
  MbspSchedule sched;
  const double cost = evaluate_plan(inst, base.plan, options, &sched);
  EXPECT_DOUBLE_EQ(cost, sync_cost(inst, sched));
}

}  // namespace
}  // namespace mbsp
