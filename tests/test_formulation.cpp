// Tests for the exact ILP formulation of MBSP scheduling (Section 6.1):
// solved by the in-house branch-and-bound on tiny instances, extracted
// schedules must validate, and objectives must agree with the model cost
// functions and with the exact pebbler.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/holistic/exact_pebbler.hpp"
#include "src/holistic/formulation.hpp"
#include "src/ilp/solver.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {
namespace {

MbspInstance chain3(double r, double g = 1, double L = 0, int P = 1) {
  ComputeDag dag("chain3");
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  return {std::move(dag), Architecture::make(P, r, g, L)};
}

MbspInstance diamond(double r, double g = 1, double L = 0, int P = 1) {
  ComputeDag dag("diamond");
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  return {std::move(dag), Architecture::make(P, r, g, L)};
}

ilp::MipResult solve(const IlpFormulation& formulation, double budget_ms) {
  ilp::MipOptions options;
  options.budget_ms = budget_ms;
  options.lp.max_iterations = 50000;
  ilp::BranchAndBoundSolver solver(options);
  return solver.solve(formulation.model());
}

TEST(Formulation, AsyncChainOptimum) {
  const MbspInstance inst = chain3(2);
  FormulationOptions options;
  options.num_steps = 5;
  options.cost = CostModel::kAsynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 20000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  // load s (1) + compute a + compute b (2) + save b (1) = 4.
  EXPECT_NEAR(res.objective, 4.0, 1e-5);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_NEAR(async_cost(inst, sched), res.objective, 1e-5);
}

TEST(Formulation, AsyncMatchesExactPebbler) {
  const MbspInstance inst = diamond(3, 3, 0);  // r = r0 = 3
  FormulationOptions options;
  options.num_steps = 7;
  options.cost = CostModel::kAsynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 30000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  const ExactPebbleResult exact = exact_pebble(inst);
  ASSERT_TRUE(exact.solved);
  EXPECT_NEAR(res.objective, exact.cost, 1e-5);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Formulation, SyncChainWithL) {
  const MbspInstance inst = chain3(2, 1, 10);
  FormulationOptions options;
  options.num_steps = 5;
  options.cost = CostModel::kSynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 30000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
  // The extracted grouping can only merge supersteps relative to the ILP's
  // accounting, so the true cost never exceeds the objective.
  EXPECT_LE(sync_cost(inst, sched), res.objective + 1e-5);
  // Optimal: [load s][compute a,b + save b] = I/O 2 + compute 2 + 2L.
  EXPECT_NEAR(sync_cost(inst, sched), 24.0, 1e-5);
}

TEST(Formulation, TwoProcessorsSplitWork) {
  // Two independent chains; with async cost and 2 processors the optimum
  // runs them fully in parallel.
  ComputeDag dag;
  for (int c = 0; c < 2; ++c) {
    const NodeId s = dag.add_node(0, 1);
    const NodeId a = dag.add_node(2, 1);
    dag.add_edge(s, a);
  }
  const MbspInstance inst{std::move(dag), Architecture::make(2, 2, 1, 0)};
  FormulationOptions options;
  options.num_steps = 4;
  options.cost = CostModel::kAsynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 30000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  // Per processor: load (1) + compute (2) + save (1) = 4, in parallel.
  EXPECT_NEAR(res.objective, 4.0, 1e-5);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Formulation, NoRecomputeConstraintEnforced) {
  // Mechanical check of the Section 7.2 toggle: with recomputation
  // prohibited the model gains one at-most-once row per non-source node,
  // the optimum cannot improve, and the solution computes each node once.
  // (The *benefit* of recomputation is covered by the exact pebbler tests,
  // where the state space is cheap to search.)
  const MbspInstance inst = chain3(2);
  FormulationOptions with;
  with.num_steps = 5;
  with.cost = CostModel::kAsynchronous;
  FormulationOptions without = with;
  without.allow_recompute = false;
  IlpFormulation f_with(inst, with), f_without(inst, without);
  EXPECT_GT(f_without.model().num_constraints(),
            f_with.model().num_constraints());
  const auto res_with = solve(f_with, 20000);
  const auto res_without = solve(f_without, 20000);
  ASSERT_EQ(res_with.status, ilp::MipStatus::kOptimal);
  ASSERT_EQ(res_without.status, ilp::MipStatus::kOptimal);
  EXPECT_GE(res_without.objective, res_with.objective - 1e-6);
  const MbspSchedule sched = f_without.extract_schedule(res_without.x);
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (!inst.dag.is_source(v)) EXPECT_EQ(sched.compute_count(v), 1u);
  }
}

TEST(Formulation, InfeasibleWhenTooFewSteps) {
  const MbspInstance inst = chain3(2);
  FormulationOptions options;
  options.num_steps = 2;  // cannot load + compute*2 + save in 2 steps
  options.cost = CostModel::kAsynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 20000);
  EXPECT_EQ(res.status, ilp::MipStatus::kInfeasible);
}

TEST(Formulation, MemoryBoundRespectedInExtraction) {
  // r = r0 = 3 on the diamond forces the source out of cache before the
  // join node is computed; the extracted schedule must satisfy the
  // validator's *transient* bound at the COMPUTE (the strengthened
  // constraint (7') — plain constraint (7) does not imply it).
  const MbspInstance inst = diamond(3, 1, 0);
  FormulationOptions options;
  options.num_steps = 8;
  options.cost = CostModel::kAsynchronous;
  IlpFormulation formulation(inst, options);
  const auto res = solve(formulation, 60000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
}

// ---------------------------------------------------------------------------
// Warm-start encoding fidelity: encoding a real baseline schedule into the
// formulation must satisfy every constraint, and the objective must agree
// with the independent cost functions. This exercises the whole constraint
// system at dataset scale without needing the solver.

TEST(Formulation, EncodeBaselineAsyncFeasibleOnDataset) {
  auto dataset = tiny_dataset(2025);
  for (int i : {0, 3, 9}) {
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(2, 3 * r0, 1, 0)};
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    FormulationOptions options;
    options.cost = CostModel::kAsynchronous;
    options.num_steps = IlpFormulation::steps_required(base.mbsp);
    IlpFormulation formulation(inst, options);
    const std::vector<double> x = formulation.encode_schedule(base.mbsp);
    ASSERT_FALSE(x.empty()) << inst.name();
    EXPECT_TRUE(formulation.model().is_feasible(x, 1e-5)) << inst.name();
    EXPECT_NEAR(formulation.model().objective_value(x),
                async_cost(inst, base.mbsp), 1e-6)
        << inst.name();
  }
}

TEST(Formulation, EncodeBaselineSyncRoundTrip) {
  auto dataset = tiny_dataset(2025);
  for (int i : {2, 6, 12}) {
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(2, 3 * r0, 1, 10)};
    const TwoStageResult base =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    FormulationOptions options;
    options.cost = CostModel::kSynchronous;
    options.num_steps = IlpFormulation::steps_required(base.mbsp);
    IlpFormulation formulation(inst, options);
    const std::vector<double> x = formulation.encode_schedule(base.mbsp);
    ASSERT_FALSE(x.empty()) << inst.name();
    EXPECT_TRUE(formulation.model().is_feasible(x, 1e-5)) << inst.name();
    // The encoding may merge adjacent compute-only supersteps (that is a
    // legitimately cheaper schedule), so the tight identity is: objective
    // == sync cost of the schedule extracted back from the encoding, and
    // never more than the original schedule's cost.
    const MbspSchedule round = formulation.extract_schedule(x);
    const auto valid = validate(inst, round);
    ASSERT_TRUE(valid.ok) << inst.name() << ": " << valid.error;
    EXPECT_NEAR(formulation.model().objective_value(x),
                sync_cost(inst, round), 1e-6)
        << inst.name();
    EXPECT_LE(sync_cost(inst, round), sync_cost(inst, base.mbsp) + 1e-6);
  }
}

TEST(Formulation, WarmStartedBranchAndBoundImproves) {
  // The paper's workflow at exact scale: initialize the solver with the
  // two-stage baseline; the incumbent can only get better.
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 1);
  std::vector<NodeId> mids;
  for (int i = 0; i < 3; ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(s, v);
    mids.push_back(v);
  }
  const NodeId t = dag.add_node(1, 1);
  for (NodeId v : mids) dag.add_edge(v, t);
  const MbspInstance inst{std::move(dag), Architecture::make(1, 5, 2, 0)};
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kDfsClairvoyant);
  const double base_cost = async_cost(inst, base.mbsp);
  FormulationOptions options;
  options.cost = CostModel::kAsynchronous;
  options.num_steps = IlpFormulation::steps_required(base.mbsp);
  IlpFormulation formulation(inst, options);
  const std::vector<double> warm = formulation.encode_schedule(base.mbsp);
  ASSERT_FALSE(warm.empty());
  ASSERT_TRUE(formulation.model().is_feasible(warm, 1e-5));
  ilp::MipOptions mip;
  mip.budget_ms = 10000;
  ilp::BranchAndBoundSolver solver(mip);
  const auto res = solver.solve(formulation.model(), warm);
  ASSERT_TRUE(res.status == ilp::MipStatus::kOptimal ||
              res.status == ilp::MipStatus::kFeasible);
  EXPECT_LE(res.objective, base_cost + 1e-6);
}

// ---------------------------------------------------------------------------
// Step merging (Section 6.2).

TEST(Formulation, MergedStepsMatchUnmergedOptimum) {
  // The merged model reaches the same optimum with far fewer steps:
  // chain3 needs 5 unmerged steps but only 3 merged ones (load, compute
  // both nodes, save).
  const MbspInstance inst = chain3(3);  // r = 3: both chain nodes fit
  FormulationOptions merged;
  merged.num_steps = 3;
  merged.cost = CostModel::kAsynchronous;
  merged.merge_steps = true;
  IlpFormulation f_merged(inst, merged);
  const auto res = solve(f_merged, 20000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-5);
  const MbspSchedule sched = f_merged.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_NEAR(async_cost(inst, sched), 4.0, 1e-5);
}

TEST(Formulation, MergedStepsRespectSimultaneousFit) {
  // With r = 2 the two chain nodes cannot fit in one merged step (input s
  // + a + b exceeds the cache), so 3 steps are infeasible while 4 suffice
  // (load, compute a, compute b after dropping s... still one compute per
  // step because of the memory bound).
  const MbspInstance inst = chain3(2);
  FormulationOptions merged;
  merged.num_steps = 3;
  merged.cost = CostModel::kAsynchronous;
  merged.merge_steps = true;
  IlpFormulation f3(inst, merged);
  EXPECT_EQ(solve(f3, 20000).status, ilp::MipStatus::kInfeasible);
  merged.num_steps = 5;
  IlpFormulation f5(inst, merged);
  const auto res = solve(f5, 20000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-5);
  const MbspSchedule sched = f5.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Formulation, MergedIoSteps) {
  // Two independent chain heads: both source loads merge into one step and
  // both sink saves into another; with merged compute the whole DAG runs
  // in 3 steps on one processor.
  ComputeDag dag;
  for (int c = 0; c < 2; ++c) {
    const NodeId s = dag.add_node(0, 1);
    const NodeId a = dag.add_node(1, 1);
    dag.add_edge(s, a);
  }
  const MbspInstance inst{std::move(dag), Architecture::make(1, 4, 1, 0)};
  FormulationOptions merged;
  merged.num_steps = 3;
  merged.cost = CostModel::kAsynchronous;
  merged.merge_steps = true;
  IlpFormulation formulation(inst, merged);
  const auto res = solve(formulation, 20000);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  // 2 loads + 2 computes + 2 saves, all unit cost.
  EXPECT_NEAR(res.objective, 6.0, 1e-5);
  const MbspSchedule sched = formulation.extract_schedule(res.x);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Formulation, LpExportNonTrivial) {
  const MbspInstance inst = chain3(2);
  FormulationOptions options;
  options.num_steps = 4;
  IlpFormulation formulation(inst, options);
  const std::string lp = formulation.model().to_lp_string();
  EXPECT_GT(lp.size(), 1000u);
  EXPECT_NE(lp.find("comp_0_1_0"), std::string::npos);
}

}  // namespace
}  // namespace mbsp
