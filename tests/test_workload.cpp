// Unit tests for the workload corpus subsystem: spec parsing, the family
// registry, the structured generators, the Matrix Market importer, and
// corpus-driven batch sweeps.
#include <gtest/gtest.h>

#include <fstream>

#include "src/graph/dag_io.hpp"
#include "src/graph/mtx_io.hpp"
#include "src/graph/topology.hpp"
#include "src/runner/batch_runner.hpp"
#include "src/workload/structured.hpp"
#include "src/workload/workload.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

TEST(WorkloadSpec, ParsesFamilyOnly) {
  const auto spec = WorkloadSpec::parse("fft");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->family, "fft");
  EXPECT_TRUE(spec->params.empty());
  EXPECT_EQ(spec->canonical(), "fft");
}

TEST(WorkloadSpec, ParsesParams) {
  const auto spec = WorkloadSpec::parse("stencil2d:nx=32,ny=16,steps=4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->family, "stencil2d");
  ASSERT_EQ(spec->params.size(), 3u);
  ASSERT_NE(spec->find("ny"), nullptr);
  EXPECT_EQ(*spec->find("ny"), "16");
  EXPECT_EQ(spec->find("absent"), nullptr);
}

TEST(WorkloadSpec, CanonicalSortsByKey) {
  const auto a = WorkloadSpec::parse("f:b=2,a=1");
  const auto b = WorkloadSpec::parse("f:a=1,b=2");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->canonical(), "f:a=1,b=2");
  EXPECT_EQ(a->canonical(), b->canonical());
}

TEST(WorkloadSpec, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(WorkloadSpec::parse(":n=3", &error).has_value());
  EXPECT_NE(error.find("family"), std::string::npos);
  EXPECT_FALSE(WorkloadSpec::parse("f:novalue", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(WorkloadSpec::parse("f:a=1,a=2", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(WorkloadParams, TypedAccessorsAndErrors) {
  const auto spec = WorkloadSpec::parse("f:n=12,x=2.5,s=hello");
  ASSERT_TRUE(spec.has_value());
  const WorkloadParams p(*spec);
  EXPECT_EQ(p.get_int("n", 1), 12);
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("x", 0), 2.5);
  EXPECT_EQ(p.get_string("s", ""), "hello");
  EXPECT_THROW(p.get_int("s", 1), std::invalid_argument);
  EXPECT_THROW(p.get_int("n", 1, 100), std::invalid_argument);
}

TEST(WorkloadParams, RejectsOutOfIntRangeValues) {
  // Values beyond int (or long) range must error, not silently truncate
  // into a wrong-but-valid-looking instance size.
  const auto spec = WorkloadSpec::parse(
      "f:big=4294967297,huge=999999999999999999999");
  ASSERT_TRUE(spec.has_value());
  const WorkloadParams p(*spec);
  EXPECT_THROW(p.get_int("big", 1), std::invalid_argument);
  EXPECT_THROW(p.get_int("huge", 1), std::invalid_argument);
}

TEST(WorkloadRegistry, GlobalHasAllBuiltinFamilies) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  for (const char* name :
       {"spmv", "exp", "cg", "knn", "bicgstab", "kmeans", "pregel",
        "pagerank", "snni", "random-layered", "stencil2d", "stencil3d",
        "wavefront", "lu", "cholesky", "fft", "attention", "mapreduce",
        "mtx-spmv", "mtx-cg", "mtx-exp"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), registry.size());
}

TEST(WorkloadRegistry, EveryNonFileFamilyGeneratesWithDefaults) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  for (const std::string& name : registry.names()) {
    if (name.rfind("mtx-", 0) == 0) continue;  // requires file=
    std::string error;
    const auto dag = registry.make_dag(name, 7, &error);
    ASSERT_TRUE(dag.has_value()) << name << ": " << error;
    EXPECT_GT(dag->num_nodes(), 0) << name;
    EXPECT_TRUE(is_acyclic(*dag)) << name;
    EXPECT_EQ(dag->name(), name);
  }
}

TEST(WorkloadRegistry, MakeDagDeterministicPerSeed) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const std::string spec = "snni:blocks=6,layers=3";
  const auto a = registry.make_dag(spec, 11);
  const auto b = registry.make_dag(spec, 11);
  const auto c = registry.make_dag(spec, 12);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(dag_to_text(*a), dag_to_text(*b));
  EXPECT_EQ(dag_canonical_hash(*a), dag_canonical_hash(*b));
  EXPECT_NE(dag_canonical_hash(*a), dag_canonical_hash(*c));
}

TEST(WorkloadRegistry, EquivalentSpecsShareNameAndHash) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const auto a = registry.make_dag("lu:blocks=3,mu=unit", 5);
  const auto b = registry.make_dag("lu:mu=unit,blocks=3", 5);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->name(), "lu:blocks=3,mu=unit");
  EXPECT_EQ(dag_to_text(*a), dag_to_text(*b));
}

TEST(WorkloadRegistry, CanonicalNameDropsDefaultValuedParams) {
  // Spelling out a default must not change the scenario's identity: the
  // canonical name, the DAG text (same RNG stream) and hence the hash all
  // match the bare-family spelling.
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const auto bare = registry.make_dag("lu", 5);
  const auto spelled = registry.make_dag("lu:blocks=4,mu=rand", 5);
  ASSERT_TRUE(bare && spelled);
  EXPECT_EQ(spelled->name(), "lu");
  EXPECT_EQ(dag_to_text(*bare), dag_to_text(*spelled));
  EXPECT_EQ(dag_canonical_hash(*bare), dag_canonical_hash(*spelled));
  // Non-default values survive.
  const auto other = registry.make_dag("lu:blocks=5", 5);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->name(), "lu:blocks=5");
}

TEST(WorkloadRegistry, ReportsUnknownFamilyAndParam) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  std::string error;
  EXPECT_FALSE(registry.make_dag("no-such-family", 1, &error).has_value());
  EXPECT_NE(error.find("unknown workload family"), std::string::npos);
  EXPECT_FALSE(registry.make_dag("fft:bogus=1", 1, &error).has_value());
  EXPECT_NE(error.find("unknown parameter 'bogus'"), std::string::npos);
  EXPECT_FALSE(registry.make_dag("fft:n=7", 1, &error).has_value());
  EXPECT_NE(error.find("power of two"), std::string::npos);
  EXPECT_FALSE(registry.make_dag("fft:mu=bogus", 1, &error).has_value());
  EXPECT_NE(error.find("'mu'"), std::string::npos);
  EXPECT_THROW(registry.at("no-such-family"), std::out_of_range);
}

TEST(WorkloadRegistry, UnitMuKeepsGeneratorWeights) {
  const auto dag = WorkloadRegistry::global().make_dag("lu:mu=unit", 3);
  ASSERT_TRUE(dag.has_value());
  for (NodeId v = 0; v < dag->num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(dag->mu(v), 1.0);
  }
}

TEST(WorkloadRegistry, MakeInstanceSizesArchitecture) {
  const auto inst = WorkloadRegistry::global().make_instance(
      "wavefront:nx=4,ny=4", 2, /*P=*/3, /*r_factor=*/2.5);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->arch.num_processors, 3);
  EXPECT_DOUBLE_EQ(inst->arch.fast_memory, 2.5 * min_memory_r0(inst->dag));
}

TEST(StructuredGenerators, StencilNodeCounts) {
  const ComputeDag s2 = stencil2d_dag(4, 3, 2, "s2");
  EXPECT_EQ(s2.num_nodes(), 4 * 3 * (2 + 1));
  EXPECT_TRUE(is_acyclic(s2));
  const ComputeDag s3 = stencil3d_dag(3, 3, 3, 1, "s3");
  EXPECT_EQ(s3.num_nodes(), 27 * 2);
  EXPECT_TRUE(is_acyclic(s3));
}

TEST(StructuredGenerators, WavefrontStructure) {
  const ComputeDag dag = wavefront_dag(3, 4, "wf");
  // 3 top + 4 left + corner inputs, then 3*4 cells with 3 parents each.
  EXPECT_EQ(dag.num_nodes(), 3 + 4 + 1 + 12);
  EXPECT_EQ(dag.num_edges(), 12u * 3u);
  EXPECT_TRUE(is_acyclic(dag));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!dag.is_source(v)) EXPECT_EQ(dag.parents(v).size(), 3u);
  }
}

TEST(StructuredGenerators, BlockedFactorizationCounts) {
  // LU over b x b blocks: b^2 inputs + sum_k (1 + 2(b-1-k) + (b-1-k)^2).
  const int b = 4;
  const ComputeDag lu = blocked_lu_dag(b, "lu");
  int expected = b * b;
  for (int k = 0; k < b; ++k) {
    const int rest = b - 1 - k;
    expected += 1 + 2 * rest + rest * rest;
  }
  EXPECT_EQ(lu.num_nodes(), expected);
  EXPECT_TRUE(is_acyclic(lu));

  const ComputeDag chol = blocked_cholesky_dag(b, "chol");
  int chol_expected = b * (b + 1) / 2;
  for (int k = 0; k < b; ++k) {
    const int rest = b - 1 - k;
    chol_expected += 1 + rest + rest * (rest + 1) / 2;
  }
  EXPECT_EQ(chol.num_nodes(), chol_expected);
  EXPECT_TRUE(is_acyclic(chol));
}

TEST(StructuredGenerators, FftButterfly) {
  const ComputeDag dag = fft_dag(8, "fft");
  EXPECT_EQ(dag.num_nodes(), 8 * (3 + 1));  // inputs + log2(8) stages
  EXPECT_TRUE(is_acyclic(dag));
  for (NodeId v = 8; v < dag.num_nodes(); ++v) {
    EXPECT_EQ(dag.parents(v).size(), 2u);
  }
  EXPECT_THROW(fft_dag(12, "bad"), std::invalid_argument);
  EXPECT_THROW(fft_dag(1, "bad"), std::invalid_argument);
}

TEST(StructuredGenerators, TransformerAndMapReduceAcyclic) {
  const ComputeDag t = transformer_dag(4, 2, 4, "attn");
  EXPECT_TRUE(is_acyclic(t));
  EXPECT_GT(t.num_nodes(), 4);
  // Sinks are the per-token feed-forward residuals.
  EXPECT_EQ(t.sinks().size(), 4u);

  const ComputeDag mr = mapreduce_dag(5, 3, 2, "mr");
  EXPECT_TRUE(is_acyclic(mr));
  EXPECT_EQ(mr.num_nodes(), 5 + 2 * (5 + 3));
  EXPECT_EQ(mr.sinks().size(), 3u);  // final round's reducers
}

TEST(MtxIo, ParsesGeneralPattern) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "3 3 4\n"
      "1 1\n"
      "2 1\n"
      "2 3\n"
      "3 2\n";
  std::string error;
  const auto pattern = pattern_from_mtx(text, &error);
  ASSERT_TRUE(pattern.has_value()) << error;
  ASSERT_EQ(pattern->size(), 3u);
  EXPECT_EQ((*pattern)[0], (std::vector<int>{0}));
  EXPECT_EQ((*pattern)[1], (std::vector<int>{0, 2}));
  EXPECT_EQ((*pattern)[2], (std::vector<int>{1}));
}

TEST(MtxIo, MirrorsSymmetricEntries) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 -1.0\n";
  const auto pattern = pattern_from_mtx(text);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ((*pattern)[0], (std::vector<int>{0, 1}));  // (2,1) mirrored
  EXPECT_EQ((*pattern)[1], (std::vector<int>{0, 2}));  // (3,2) mirrored
  EXPECT_EQ((*pattern)[2], (std::vector<int>{1}));
}

TEST(MtxIo, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(pattern_from_mtx("", &error).has_value());
  EXPECT_FALSE(
      pattern_from_mtx("%%MatrixMarket matrix array real general\n2 2\n",
                       &error)
          .has_value());
  EXPECT_NE(error.find("coordinate"), std::string::npos);
  EXPECT_FALSE(pattern_from_mtx(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 3 1\n1 1 1.0\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("square"), std::string::npos);
  EXPECT_FALSE(pattern_from_mtx(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 1\n3 1 1.0\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(pattern_from_mtx(
                   "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 2\n1 1 1.0\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("declared 2"), std::string::npos);
}

TEST(MtxIo, FeedsWorkloadFamilies) {
  const std::string path = ::testing::TempDir() + "/mbsp_workload_test.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "4 4 7\n"
        << "1 1 4\n2 2 4\n3 3 4\n4 4 4\n"
        << "2 1 -1\n3 2 -1\n4 3 -1\n";
  }
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  std::string error;
  const auto spmv = registry.make_dag("mtx-spmv:file=" + path, 1, &error);
  ASSERT_TRUE(spmv.has_value()) << error;
  EXPECT_TRUE(is_acyclic(*spmv));
  // 4 vector sources + one multiply per nonzero (7 with mirroring = 10).
  EXPECT_GT(spmv->num_nodes(), 4);
  const auto cg =
      registry.make_dag("mtx-cg:file=" + path + ",iters=1", 1, &error);
  ASSERT_TRUE(cg.has_value()) << error;
  EXPECT_TRUE(is_acyclic(*cg));
  // Missing file and missing param both fail with a message.
  EXPECT_FALSE(registry.make_dag("mtx-spmv", 1, &error).has_value());
  EXPECT_NE(error.find("file="), std::string::npos);
  EXPECT_FALSE(
      registry.make_dag("mtx-spmv:file=/no/such.mtx", 1, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(WorkloadSweep, BatchTableIdenticalForAnyThreadCount) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  std::vector<MbspInstance> instances;
  for (const char* spec : {"lu:blocks=3", "fft:n=8", "stencil2d:nx=3,ny=3"}) {
    auto inst = registry.make_instance(spec, 3, 2, 3.0);
    ASSERT_TRUE(inst.has_value());
    instances.push_back(std::move(*inst));
  }
  const std::vector<std::string> schedulers{"bspg+clairvoyant", "cilk+lru",
                                            "dfs+clairvoyant"};
  BatchOptions base;
  base.scheduler.budget_ms = 0;
  base.scheduler.max_iterations = 1000;
  std::string reference;
  for (const std::size_t threads : {1u, 4u}) {
    BatchOptions options = base;
    options.threads = threads;
    const auto cells =
        BatchRunner(options).run_grid(instances, schedulers);
    const std::string csv =
        batch_table(cells, false, /*include_hash=*/true).to_csv();
    if (reference.empty()) {
      reference = csv;
      EXPECT_NE(csv.find("dag_hash"), std::string::npos);
    } else {
      EXPECT_EQ(csv, reference);
    }
  }
}

TEST(WorkloadRegistry, LocalRegistryAddAndReplace) {
  WorkloadRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  registry.add(std::make_unique<SimpleWorkloadFamily>(
      "custom", "test family", std::vector<WorkloadParamInfo>{},
      [](const WorkloadParams&, Rng&) {
        ComputeDag dag;
        dag.add_node();
        return dag;
      }));
  EXPECT_TRUE(registry.contains("custom"));
  const auto dag = registry.make_dag("custom:mu=unit", 1);
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->num_nodes(), 1);
  // Replacing keeps the registry size stable.
  registry.add(std::make_unique<SimpleWorkloadFamily>(
      "custom", "replacement", std::vector<WorkloadParamInfo>{},
      [](const WorkloadParams&, Rng&) {
        ComputeDag dag;
        dag.add_node();
        dag.add_node();
        return dag;
      }));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.make_dag("custom", 1)->num_nodes(), 2);
}

}  // namespace
}  // namespace mbsp
