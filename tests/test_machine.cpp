// Machine-model registry and heterogeneous-cost tests:
//  * registry canonical names, round-trip determinism, error style
//    (offending token + valid keys, aligned with the workload registry);
//  * uniform identity — the generalized (hetero/numa) code paths with
//    degenerate parameters reproduce the historical uniform costs
//    bitwise, across evaluate_plan, improve_plan and PortfolioLns;
//  * hand-checked heterogeneous cost semantics (speeds, home-group
//    transfer pricing, per-group latency, per-processor capacities);
//  * randomized incremental-vs-oracle differential on heterogeneous
//    machines (improve_plan == improve_plan_reference; in debug builds
//    the evaluator additionally asserts bitwise row equality per move).
#include <gtest/gtest.h>

#include "src/holistic/lns.hpp"
#include "src/holistic/portfolio.hpp"
#include "src/model/cost.hpp"
#include "src/model/machine_registry.hpp"
#include "src/model/validate.hpp"
#include "src/runner/batch_runner.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

const char* kFamilies[] = {
    "stencil2d:nx=5,ny=5,steps=2",
    "fft:n=16",
    "lu:blocks=3",
    "wavefront:nx=6,ny=6",
    "mapreduce:maps=8,reducers=3",
};

ComputeDag workload_dag(const std::string& spec) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(spec, 2025, &error);
  EXPECT_TRUE(dag.has_value()) << spec << ": " << error;
  return std::move(*dag);
}

Machine machine_or_die(const std::string& spec, double base_memory) {
  std::string error;
  auto machine =
      MachineRegistry::global().make_machine(spec, base_memory, &error);
  EXPECT_TRUE(machine.has_value()) << spec << ": " << error;
  return std::move(*machine);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MachineRegistry, ListsBuiltinKinds) {
  const auto names = MachineRegistry::global().names();
  EXPECT_EQ(names,
            (std::vector<std::string>{"hetero", "numa", "uniform"}));
}

TEST(MachineRegistry, CanonicalNamesDropDefaultsAndSortKeys) {
  // Defaults dropped: rf=3 is the declared default.
  EXPECT_EQ(machine_or_die("uniform:P=8,rf=3", 10).name, "uniform:P=8");
  // Spelled-out default machine == bare kind name.
  EXPECT_EQ(machine_or_die("uniform:P=4,g=1,L=10,rf=3", 10).name, "uniform");
  // Keys sorted; every spelling shares one canonical name.
  EXPECT_EQ(machine_or_die("numa:gout=4,groups=2x4,gin=1", 10).name,
            machine_or_die("numa:groups=2x4,gin=1,gout=4", 10).name);
}

TEST(MachineRegistry, RoundTripDeterminism) {
  // Equal specs yield equal machines, field for field, and the canonical
  // name itself round-trips to the same machine.
  for (const char* spec :
       {"uniform:P=8", "hetero:P=8,speeds=1x4+2x4,mems=1x6+2x2",
        "numa:groups=2x4,gin=1,gout=4,Lg=5,speeds=2"}) {
    const Machine a = machine_or_die(spec, 7.5);
    const Machine b = machine_or_die(spec, 7.5);
    const Machine c = machine_or_die(a.name, 7.5);
    for (const Machine* m : {&b, &c}) {
      EXPECT_EQ(a.name, m->name) << spec;
      EXPECT_EQ(a.num_processors, m->num_processors) << spec;
      EXPECT_EQ(a.fast_memory, m->fast_memory) << spec;
      EXPECT_EQ(a.g, m->g) << spec;
      EXPECT_EQ(a.L, m->L) << spec;
      EXPECT_EQ(a.speeds, m->speeds) << spec;
      EXPECT_EQ(a.memories, m->memories) << spec;
      EXPECT_EQ(a.group_of, m->group_of) << spec;
      EXPECT_EQ(a.g_in, m->g_in) << spec;
      EXPECT_EQ(a.g_out, m->g_out) << spec;
      EXPECT_EQ(a.L_group, m->L_group) << spec;
    }
  }
}

TEST(MachineRegistry, BuildsTheDeclaredShapes) {
  const Machine uniform = machine_or_die("uniform:P=8,rf=2", 10);
  EXPECT_TRUE(uniform.is_uniform());
  EXPECT_EQ(uniform.num_processors, 8);
  EXPECT_EQ(uniform.fast_memory, 20.0);
  EXPECT_EQ(uniform.sync_L(), 10.0);

  const Machine hetero = machine_or_die("hetero:P=8,speeds=1x4+2x4", 10);
  EXPECT_FALSE(hetero.is_uniform());
  EXPECT_EQ(hetero.speed(0), 1.0);
  EXPECT_EQ(hetero.speed(7), 2.0);
  EXPECT_EQ(hetero.memory(3), hetero.fast_memory);
  EXPECT_EQ(hetero.num_groups(), 1);

  const Machine numa =
      machine_or_die("numa:groups=2x4,gin=1,gout=4,Lg=5,L=10", 10);
  EXPECT_EQ(numa.num_processors, 8);
  EXPECT_EQ(numa.num_groups(), 2);
  EXPECT_EQ(numa.group(3), 0);
  EXPECT_EQ(numa.group(4), 1);
  EXPECT_EQ(numa.comm_g(0, 0), 1.0);   // intra-group
  EXPECT_EQ(numa.comm_g(4, 0), 4.0);   // cross-group
  EXPECT_EQ(numa.comm_g(0, -1), 4.0);  // far memory (sources)
  EXPECT_EQ(numa.sync_L(), 10.0 + 5.0 * 2);
}

TEST(MachineRegistry, ErrorsNameTheTokenAndListAlternatives) {
  std::string error;
  const MachineRegistry& registry = MachineRegistry::global();
  EXPECT_FALSE(registry.make_machine("quantum:P=8", 1, &error));
  EXPECT_NE(error.find("unknown machine kind 'quantum'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("hetero, numa, uniform"), std::string::npos) << error;

  EXPECT_FALSE(registry.make_machine("numa:bogus=1", 1, &error));
  EXPECT_NE(error.find("unknown parameter 'bogus'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("machine kind 'numa'"), std::string::npos) << error;
  // The valid keys are listed, sorted.
  EXPECT_NE(error.find("gin"), std::string::npos) << error;
  EXPECT_NE(error.find("groups"), std::string::npos) << error;

  EXPECT_FALSE(registry.make_machine("hetero:P=8,speeds=1x4", 1, &error));
  EXPECT_NE(error.find("covers 4 processors, expected 8"), std::string::npos)
      << error;
  EXPECT_FALSE(registry.make_machine("hetero:speeds=wat", 1, &error));
  EXPECT_NE(error.find("bad entry 'wat'"), std::string::npos) << error;
  EXPECT_FALSE(registry.make_machine("numa:groups=8", 1, &error));
  EXPECT_NE(error.find("'groups'"), std::string::npos) << error;
  EXPECT_FALSE(registry.make_machine("hetero:mems=0.5", 1, &error));
  EXPECT_NE(error.find("below the minimum"), std::string::npos) << error;
}

TEST(WorkloadRegistry, UnknownParameterListsValidKeys) {
  // The workload registry shares the machine registry's error style.
  std::string error;
  EXPECT_FALSE(
      WorkloadRegistry::global().make_dag("fft:bogus=1", 2025, &error));
  EXPECT_NE(error.find("unknown parameter 'bogus'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("valid: mu, n"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Uniform identity: degenerate generalized machines cost bitwise like the
// historical uniform machine.

TEST(MachineModel, DegenerateHeteroAndNumaMatchUniformBitwise) {
  for (const char* spec : kFamilies) {
    const ComputeDag dag = workload_dag(spec);
    const double r0 = min_memory_r0(dag);
    const MbspInstance uniform{dag, Architecture::make(4, 3 * r0, 1, 10)};
    // hetero with all-equal speeds/mems and numa with one group and
    // gin == gout == g take the generalized code paths.
    const MbspInstance hetero{dag, machine_or_die("hetero:P=4", r0)};
    const MbspInstance numa{
        dag, machine_or_die("numa:groups=1x4,gin=1,gout=1,Lg=0", r0)};
    ASSERT_FALSE(hetero.arch.is_uniform());
    ASSERT_FALSE(numa.arch.is_uniform());

    const ComputePlan plan =
        run_baseline(uniform, BaselineKind::kGreedyClairvoyant).plan;
    LnsOptions options;
    MbspSchedule u_sched, h_sched, n_sched;
    const double u = evaluate_plan(uniform, plan, options, &u_sched);
    const double h = evaluate_plan(hetero, plan, options, &h_sched);
    const double n = evaluate_plan(numa, plan, options, &n_sched);
    EXPECT_EQ(u, h) << spec;
    EXPECT_EQ(u, n) << spec;
    EXPECT_EQ(sync_cost(uniform, u_sched), sync_cost(hetero, h_sched))
        << spec;
    EXPECT_EQ(async_cost(uniform, u_sched), async_cost(hetero, h_sched))
        << spec;
    EXPECT_EQ(async_cost(uniform, u_sched), async_cost(numa, n_sched))
        << spec;

    // The LNS trajectory (incremental engine) is bitwise unchanged too.
    options.budget_ms = 0;
    options.max_iterations = 800;
    options.seed = 13;
    const LnsResult u_lns = improve_plan(uniform, plan, options);
    const LnsResult h_lns = improve_plan(hetero, plan, options);
    const LnsResult n_lns = improve_plan(numa, plan, options);
    EXPECT_EQ(u_lns.cost, h_lns.cost) << spec;
    EXPECT_EQ(u_lns.cost, n_lns.cost) << spec;
    EXPECT_EQ(u_lns.accepted, h_lns.accepted) << spec;
    EXPECT_EQ(u_lns.plan.seq, h_lns.plan.seq) << spec;
    EXPECT_EQ(u_lns.plan.seq, n_lns.plan.seq) << spec;
  }
}

TEST(MachineModel, DegeneratePortfolioMatchesUniformBitwise) {
  const ComputeDag dag = workload_dag(kFamilies[0]);
  const double r0 = min_memory_r0(dag);
  const MbspInstance uniform{dag, Architecture::make(4, 3 * r0, 1, 10)};
  const MbspInstance hetero{dag, machine_or_die("hetero:P=4", r0)};
  const ComputePlan plan =
      run_baseline(uniform, BaselineKind::kGreedyClairvoyant).plan;

  PortfolioOptions options;
  options.lns.budget_ms = 0;
  options.lns.max_iterations = 600;
  options.lns.seed = 7;
  options.workers = 3;
  options.epochs = 2;
  const PortfolioResult u = PortfolioLns(options).improve(uniform, plan);
  const PortfolioResult h = PortfolioLns(options).improve(hetero, plan);
  EXPECT_EQ(u.cost, h.cost);
  EXPECT_EQ(u.iterations, h.iterations);
  EXPECT_EQ(u.accepted, h.accepted);
  EXPECT_EQ(u.plan.seq, h.plan.seq);
  EXPECT_EQ(u.worker_costs, h.worker_costs);
}

// ---------------------------------------------------------------------------
// Hand-checked heterogeneous semantics.

TEST(MachineModel, HomeGroupTransferPricing) {
  // s (source, mu=1) -> a (omega=2, mu=2) -> b (omega=4, mu=1).
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 1);
  const NodeId a = dag.add_node(2, 2);
  const NodeId b = dag.add_node(4, 1);
  dag.add_edge(s, a);
  dag.add_edge(a, b);

  Machine m = machine_or_die("numa:groups=2x1,gin=1,gout=10,L=3,Lg=2", 100);
  m.speeds = {1, 2};
  const MbspInstance inst{dag, m};

  // p0 (group 0): load s, compute a, save a. p1 (group 1): load a,
  // compute b, save b.
  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {s};
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(a)};
  s1.proc[0].saves = {a};
  Superstep& s2 = sched.append(2);
  s2.proc[1].loads = {a};
  Superstep& s3 = sched.append(2);
  s3.proc[1].compute_phase = {PhaseOp::compute(b)};
  s3.proc[1].saves = {b};
  ASSERT_TRUE(validate(inst, sched).ok);

  const std::vector<int> homes = home_groups(inst, sched);
  EXPECT_EQ(homes[s], -1);  // never saved: far memory
  EXPECT_EQ(homes[a], 0);   // first saved by p0
  EXPECT_EQ(homes[b], 1);

  const auto table = sync_cost_table(inst, sched);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].max_load, 10.0);      // source from far memory: g_out
  EXPECT_EQ(table[1].max_compute, 2.0);    // omega(a) / speed(p0) = 2/1
  EXPECT_EQ(table[1].max_save, 1.0 * 2);   // first save: own segment, g_in
  EXPECT_EQ(table[2].max_load, 10.0 * 2);  // cross-group load of a
  EXPECT_EQ(table[3].max_compute, 2.0);    // omega(b) / speed(p1) = 4/2
  EXPECT_EQ(table[3].max_save, 1.0 * 1);   // b homed with its saver
  // Per-superstep latency: L + Lg * num_groups = 3 + 2*2 = 7.
  const SyncCostBreakdown breakdown = sync_cost_breakdown(inst, sched);
  EXPECT_EQ(breakdown.sync, 4 * 7.0);
  EXPECT_EQ(breakdown.total(),
            (10.0) + (2.0 + 2.0) + (20.0) + (2.0 + 1.0) + 28.0);
}

TEST(MachineModel, PerProcessorCapacitiesAreEnforced) {
  // s (source, mu=2) -> c (omega=1, mu=3): computing c on p needs 5 units.
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 2);
  const NodeId c = dag.add_node(1, 3);
  dag.add_edge(s, c);

  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {s};
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(c)};
  s1.proc[0].saves = {c};

  Machine m = Machine::make(2, 5, 1, 0);
  EXPECT_TRUE(validate({dag, m}, sched).ok);
  // Starving the *other* processor changes nothing...
  m.memories = {5, 0.5};
  EXPECT_TRUE(validate({dag, m}, sched).ok);
  // ...starving the working one fails at the COMPUTE.
  m.memories = {4.9, 5};
  const auto invalid = validate({dag, m}, sched);
  EXPECT_FALSE(invalid.ok);
  EXPECT_NE(invalid.error.find("memory bound exceeded"), std::string::npos)
      << invalid.error;
}

// ---------------------------------------------------------------------------
// Incremental vs oracle on genuinely heterogeneous machines.

TEST(MachineModel, ImprovePlanMatchesReferenceOnHeterogeneousMachines) {
  const char* kMachines[] = {
      "hetero:P=4,speeds=1x2+2x2",
      "hetero:P=4,speeds=1x2+4x2,mems=1x2+2x2",
      "numa:groups=2x2,gin=1,gout=4",
      "numa:groups=2x2,gin=1,gout=8,Lg=5,speeds=1x2+2x2",
  };
  int machine_index = 0;
  for (const char* spec : kFamilies) {
    const ComputeDag dag = workload_dag(spec);
    const double r0 = min_memory_r0(dag);
    const char* machine_spec = kMachines[machine_index++ % 4];
    const MbspInstance inst{dag, machine_or_die(machine_spec, r0)};
    const ComputePlan initial =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
    LnsOptions options;
    options.budget_ms = 0;  // no deadline: fixed iteration count
    options.max_iterations = 1500;
    options.seed = 13;
    const LnsResult fast = improve_plan(inst, initial, options);
    const LnsResult ref = improve_plan_reference(inst, initial, options);
    EXPECT_EQ(fast.cost, ref.cost) << spec << " on " << machine_spec;
    EXPECT_EQ(fast.initial_cost, ref.initial_cost) << spec;
    EXPECT_EQ(fast.iterations, ref.iterations) << spec;
    EXPECT_EQ(fast.accepted, ref.accepted) << spec;
    EXPECT_EQ(fast.plan.seq, ref.plan.seq) << spec;
    EXPECT_LE(fast.cost, fast.initial_cost) << spec;
    const auto valid = validate(inst, fast.schedule);
    EXPECT_TRUE(valid.ok) << spec << ": " << valid.error;
  }
}

TEST(MachineModel, HeterogeneousBatchCellsCarryTheMachineKey) {
  const ComputeDag dag = workload_dag(kFamilies[1]);
  const double r0 = min_memory_r0(dag);
  std::vector<MbspInstance> instances;
  instances.push_back({dag, machine_or_die("uniform:P=4", r0)});
  instances.push_back({dag, machine_or_die("numa:groups=2x2,gout=4", r0)});
  BatchOptions batch;
  batch.scheduler.budget_ms = 0;
  batch.scheduler.max_iterations = 200;
  batch.threads = 2;
  const auto cells = BatchRunner(batch).run_grid(
      instances, {"bspg+clairvoyant", "lns"});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].machine, "uniform");
  // groups=2x2 and gout=4 are the declared defaults, so they drop out of
  // the canonical name.
  EXPECT_EQ(cells[2].machine, "numa");
  const Table table = batch_table(cells);
  EXPECT_NE(table.to_csv().find("machine"), std::string::npos);
}

}  // namespace
}  // namespace mbsp
