// Tests for the exact P = 1 pebbler: known optima on small graphs and the
// Lemma 6.1 recomputation phenomenon.
#include <gtest/gtest.h>

#include "src/graph/gadgets.hpp"
#include "src/holistic/exact_pebbler.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"

namespace mbsp {
namespace {

MbspInstance chain(int len, double r, double g) {
  ComputeDag dag("chain");
  NodeId prev = dag.add_node(0, 1);
  for (int i = 0; i < len; ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(prev, v);
    prev = v;
  }
  return {std::move(dag), Architecture::make(1, r, g, 0)};
}

TEST(ExactPebbler, ChainOptimal) {
  // Load source (g), compute len nodes (len), save sink (g).
  const MbspInstance inst = chain(4, 2, 3);
  const ExactPebbleResult res = exact_pebble(inst);
  ASSERT_TRUE(res.solved);
  EXPECT_DOUBLE_EQ(res.cost, 3 + 4 + 3);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_DOUBLE_EQ(async_cost(inst, res.schedule), res.cost);
  EXPECT_DOUBLE_EQ(sync_cost(inst, res.schedule), res.cost);  // L = 0
}

TEST(ExactPebbler, DiamondNeedsBothBranches) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  const MbspInstance inst{std::move(dag), Architecture::make(1, 3, 1, 0)};
  const ExactPebbleResult res = exact_pebble(inst);
  ASSERT_TRUE(res.solved);
  // load s (1) + compute 3 (3) + save sink (1) = 5.
  EXPECT_DOUBLE_EQ(res.cost, 5);
}

TEST(ExactPebbler, TightMemoryForcesExtraIo) {
  // Heavy source s (mu = 2) feeding two 2-node branches that join in t.
  // With r = 4 everything pipelines with one load of s; with r = r0 = 3 the
  // second branch must re-acquire s (or spill), so the optimum is larger.
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 2);
  const NodeId a1 = dag.add_node(1, 1), a2 = dag.add_node(1, 1);
  const NodeId b1 = dag.add_node(1, 1), b2 = dag.add_node(1, 1);
  const NodeId t = dag.add_node(1, 1);
  dag.add_edge(s, a1);
  dag.add_edge(a1, a2);
  dag.add_edge(s, b1);
  dag.add_edge(b1, b2);
  dag.add_edge(a2, t);
  dag.add_edge(b2, t);
  ASSERT_DOUBLE_EQ(min_memory_r0(dag), 3.0);
  const MbspInstance loose{dag, Architecture::make(1, 4, 2, 0)};
  ComputeDag dag2 = loose.dag;
  const MbspInstance tight{std::move(dag2), Architecture::make(1, 3, 2, 0)};
  const ExactPebbleResult loose_res = exact_pebble(loose);
  const ExactPebbleResult tight_res = exact_pebble(tight);
  ASSERT_TRUE(loose_res.solved);
  ASSERT_TRUE(tight_res.solved);
  EXPECT_GT(tight_res.cost, loose_res.cost);
  const auto valid = validate(tight, tight_res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(ExactPebbler, RecomputationBeatsIoWhenCheap) {
  // Lemma 6.1 gadget with expensive I/O (g > d): the exact optimum must be
  // strictly cheaper than the best no-recompute two-stage schedule, because
  // recomputing a u-chain replaces a load of cost g by d unit computes.
  const RecomputeGadget gadget = lemma61_gadget(3, 3);
  ComputeDag dag = gadget.dag;
  const MbspInstance inst{std::move(dag), Architecture::make(1, 4, 10, 0)};
  const ExactPebbleResult res = exact_pebble(inst);
  ASSERT_TRUE(res.solved);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  std::size_t recomputed_nodes = 0;
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (res.schedule.compute_count(v) > 1) ++recomputed_nodes;
  }
  EXPECT_GT(recomputed_nodes, 0u)
      << "optimum should trade loads for recomputation at g = 10";
}

TEST(ExactPebbler, Lemma61RecomputeVsIo) {
  // With g >= d, replacing one load by recomputing the d-chain lowers the
  // cost by g - d, as the lemma's proof describes.
  const RecomputeGadget gadget = lemma61_gadget(3, 3);
  ComputeDag dag = gadget.dag;
  const double g = 6;  // g > d = 3
  const MbspInstance inst{std::move(dag), Architecture::make(1, 4, g, 0)};
  const ExactPebbleResult res = exact_pebble(inst);
  ASSERT_TRUE(res.solved);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  // The optimum uses recomputation: some u-chain node is computed >= 2x.
  std::size_t recomputes = 0;
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (res.schedule.compute_count(v) > 1) ++recomputes;
  }
  EXPECT_GT(recomputes, 0u);
}

TEST(ExactPebbler, RespectsStateLimit) {
  const MbspInstance inst = chain(10, 3, 1);
  ExactPebbleOptions options;
  options.max_states = 5;
  const ExactPebbleResult res = exact_pebble(inst, options);
  EXPECT_FALSE(res.solved);
}

}  // namespace
}  // namespace mbsp
