// Tests for the MBSP model core: r0, schedule validation against the
// transition rules, and the synchronous/asynchronous cost functions.
#include <gtest/gtest.h>

#include "src/model/cost.hpp"
#include "src/model/instance.hpp"
#include "src/model/report.hpp"
#include "src/model/validate.hpp"

namespace mbsp {
namespace {

// chain: s (source) -> a -> b (sink), unit weights.
MbspInstance chain_instance(double r, double g = 1, double L = 0, int P = 1) {
  ComputeDag dag("chain3");
  dag.add_node(0, 1);  // s
  dag.add_node(1, 1);  // a
  dag.add_node(1, 1);  // b
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  return {std::move(dag), Architecture::make(P, r, g, L)};
}

/// A handwritten valid schedule for the chain on one processor.
MbspSchedule chain_schedule() {
  MbspSchedule sched;
  Superstep& s0 = sched.append(1);
  s0.proc[0].loads = {0};  // load s
  Superstep& s1 = sched.append(1);
  s1.proc[0].compute_phase = {PhaseOp::compute(1), PhaseOp::erase(0),
                              PhaseOp::compute(2)};
  s1.proc[0].saves = {2};
  return sched;
}

TEST(MinMemory, ChainR0) {
  const MbspInstance inst = chain_instance(2);
  EXPECT_DOUBLE_EQ(min_memory_r0(inst.dag), 2.0);  // a + its parent s
}

TEST(MinMemory, WeightedParents) {
  ComputeDag dag;
  dag.add_node(0, 3);
  dag.add_node(0, 4);
  dag.add_node(1, 2);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 9.0);
}

TEST(MinMemory, LargeSourceCounts) {
  ComputeDag dag;
  dag.add_node(0, 7);  // isolated heavy source
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 7.0);
}

TEST(MinMemory, SingleNodeDag) {
  // One node is both source and sink: r0 is exactly its mu (it must be
  // loadable), with no parent-sum term at all.
  ComputeDag dag;
  dag.add_node(1, 3);
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 3.0);
}

TEST(MinMemory, SourceOnlyDag) {
  // No non-source node exists, so the bound degenerates to the largest
  // single mu over the (edge-free) sources.
  ComputeDag dag;
  dag.add_node(0, 2);
  dag.add_node(0, 5);
  dag.add_node(0, 1);
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 5.0);
}

TEST(MinMemory, LargeMuSourceDominatesParentSumBound) {
  // A huge source that feeds nothing must still fit in cache on its own,
  // even when every compute's mu + parent-sum is tiny.
  ComputeDag dag;
  dag.add_node(0, 100);  // heavy isolated source
  dag.add_node(0, 1);    // light source s
  dag.add_node(1, 1);    // v with parent s: bound 1 + 1 = 2
  dag.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 100.0);
}

TEST(MinMemory, HeavyParentSourceEntersParentSum) {
  // The same heavy source, now consumed: the consumer's bound must count
  // it (mu(v) + sum of parents' mu), dominating the standalone mu bound.
  ComputeDag dag;
  dag.add_node(0, 100);  // heavy source, consumed below
  dag.add_node(1, 2);
  dag.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(min_memory_r0(dag), 102.0);
}

TEST(Validate, AcceptsValidChain) {
  const MbspInstance inst = chain_instance(2);
  EXPECT_TRUE(validate(inst, chain_schedule()).ok);
}

TEST(Validate, RejectsComputeWithoutParent) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched;
  Superstep& s0 = sched.append(1);
  s0.proc[0].compute_phase = {PhaseOp::compute(1)};  // parent s not red
  const auto res = validate(inst, sched);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("missing red parent"), std::string::npos);
}

TEST(Validate, RejectsComputeOnSource) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched;
  sched.append(1).proc[0].compute_phase = {PhaseOp::compute(0)};
  EXPECT_FALSE(validate(inst, sched).ok);
}

TEST(Validate, RejectsLoadWithoutBlue) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched;
  sched.append(1).proc[0].loads = {1};  // node a was never saved
  const auto res = validate(inst, sched);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("without blue"), std::string::npos);
}

TEST(Validate, RejectsSaveWithoutRed) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched;
  sched.append(1).proc[0].saves = {0};
  EXPECT_FALSE(validate(inst, sched).ok);
}

TEST(Validate, RejectsDeleteWithoutRed) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched;
  sched.append(1).proc[0].deletes = {0};
  EXPECT_FALSE(validate(inst, sched).ok);
}

TEST(Validate, RejectsMemoryOverflow) {
  const MbspInstance inst = chain_instance(1.5);  // r < mu(s) + mu(a)
  const auto res = validate(inst, chain_schedule());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("memory bound"), std::string::npos);
}

TEST(Validate, RejectsMissingTerminalSink) {
  const MbspInstance inst = chain_instance(2);
  MbspSchedule sched = chain_schedule();
  sched.steps[1].proc[0].saves.clear();  // never save the sink
  const auto res = validate(inst, sched);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("terminal"), std::string::npos);
}

TEST(Validate, SameSuperstepSaveThenLoadAllowed) {
  // p0 computes and saves a; p1 loads a in the same superstep.
  const MbspInstance inst = chain_instance(2, 1, 0, 2);
  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {0};
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(1)};
  s1.proc[0].saves = {1};
  s1.proc[1].loads = {1};
  Superstep& s2 = sched.append(2);
  s2.proc[1].compute_phase = {PhaseOp::compute(2)};
  s2.proc[1].saves = {2};
  EXPECT_TRUE(validate(inst, sched).ok) << validate(inst, sched).error;
}

TEST(Validate, CrossProcessorRedRejected) {
  // p1 computing b requires a red *on p1*, not p0.
  const MbspInstance inst = chain_instance(2, 1, 0, 2);
  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {0};
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(1)};
  Superstep& s2 = sched.append(2);
  s2.proc[1].compute_phase = {PhaseOp::compute(2)};
  EXPECT_FALSE(validate(inst, sched).ok);
}

TEST(SyncCost, ChainBreakdown) {
  const MbspInstance inst = chain_instance(2, /*g=*/2, /*L=*/10);
  const MbspSchedule sched = chain_schedule();
  const auto breakdown = sync_cost_breakdown(inst, sched);
  // Superstep 0: load cost 2 (g*mu); superstep 1: compute 2, save 2.
  EXPECT_DOUBLE_EQ(breakdown.compute, 2.0);
  EXPECT_DOUBLE_EQ(breakdown.io, 4.0);
  EXPECT_DOUBLE_EQ(breakdown.sync, 20.0);
  EXPECT_DOUBLE_EQ(sync_cost(inst, sched), 26.0);
}

TEST(SyncCost, MaxAcrossProcessors) {
  const MbspInstance inst = chain_instance(10, 1, 0, 2);
  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {0};
  s0.proc[1].loads = {0};
  // Both processors compute a in parallel: max, not sum.
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(1)};
  s1.proc[1].compute_phase = {PhaseOp::compute(1)};
  s1.proc[0].saves = {1};
  Superstep& s2 = sched.append(2);
  s2.proc[0].compute_phase = {PhaseOp::compute(2)};
  s2.proc[0].saves = {2};
  ASSERT_TRUE(validate(inst, sched).ok);
  // load 1 + (comp 1 + save 1) + (comp 1 + save 1) = 5.
  EXPECT_DOUBLE_EQ(sync_cost(inst, sched), 5.0);
}

TEST(AsyncCost, AtMostSyncWhenLZero) {
  const MbspInstance inst = chain_instance(2, 1, 0);
  const MbspSchedule sched = chain_schedule();
  EXPECT_LE(async_cost(inst, sched), sync_cost(inst, sched) + 1e-9);
}

TEST(AsyncCost, ChainValue) {
  const MbspInstance inst = chain_instance(2, 1, 0);
  // load(1) + compute(1) + compute(1) + save(1) = 4.
  EXPECT_DOUBLE_EQ(async_cost(inst, chain_schedule()), 4.0);
}

TEST(AsyncCost, LoadWaitsForSave) {
  // p0: compute a (cost 1) then save (cost 1) -> Gamma(a) = 2.
  // p1: loads a. p1 has no earlier work, so its load finishes at 3.
  const MbspInstance inst = chain_instance(3, 1, 0, 2);
  MbspSchedule sched;
  Superstep& s0 = sched.append(2);
  s0.proc[0].loads = {0};
  Superstep& s1 = sched.append(2);
  s1.proc[0].compute_phase = {PhaseOp::compute(1)};
  s1.proc[0].saves = {1};
  s1.proc[1].loads = {1};
  Superstep& s2 = sched.append(2);
  s2.proc[1].compute_phase = {PhaseOp::compute(2)};
  s2.proc[1].saves = {2};
  ASSERT_TRUE(validate(inst, sched).ok);
  // p0: load s (1), compute a (2), save a (3) -> Gamma(a) = 3.
  // p1: load a waits until 3, finishes 4; compute b 5; save b 6.
  EXPECT_DOUBLE_EQ(async_cost(inst, sched), 6.0);
}

TEST(AsyncCost, SourceAvailableAtTimeZero) {
  const MbspInstance inst = chain_instance(2, 1, 0);
  MbspSchedule sched;
  sched.append(1).proc[0].loads = {0};
  EXPECT_DOUBLE_EQ(async_cost(inst, sched), 1.0);
}

TEST(IoVolume, CountsSavesAndLoads) {
  const MbspInstance inst = chain_instance(2);
  EXPECT_DOUBLE_EQ(io_volume(inst, chain_schedule()), 2.0);
}

TEST(Report, StatsOnChainSchedule) {
  const MbspInstance inst = chain_instance(2, 2, 10);
  const MbspSchedule sched = chain_schedule();
  const ScheduleStats stats = schedule_stats(inst, sched);
  EXPECT_EQ(stats.supersteps, 2);
  EXPECT_EQ(stats.computes, 2u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.saves, 1u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.recomputed_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.io_volume, 2.0);
  EXPECT_DOUBLE_EQ(stats.sync_cost_total, sync_cost(inst, sched));
  EXPECT_DOUBLE_EQ(stats.async_cost_total, async_cost(inst, sched));
}

TEST(Report, CountsRecomputation) {
  const MbspInstance inst = chain_instance(3);
  MbspSchedule sched = chain_schedule();
  // Recompute node 1 after reloading its parent.
  Superstep& extra = sched.append(1);
  extra.proc[0].loads = {0};
  Superstep& extra2 = sched.append(1);
  extra2.proc[0].compute_phase = {PhaseOp::compute(1)};
  ASSERT_TRUE(validate(inst, sched).ok);
  EXPECT_EQ(schedule_stats(inst, sched).recomputed_nodes, 1u);
}

TEST(Report, TextContainsBreakdown) {
  const MbspInstance inst = chain_instance(2, 2, 10);
  const std::string report = schedule_report(inst, chain_schedule());
  EXPECT_NE(report.find("supersteps"), std::string::npos);
  EXPECT_NE(report.find("I/O volume"), std::string::npos);
  EXPECT_NE(report.find("superstep"), std::string::npos);
}

TEST(Schedule, HelpersWork) {
  MbspSchedule sched = chain_schedule();
  EXPECT_EQ(sched.num_supersteps(), 2);
  EXPECT_EQ(sched.num_ops(), 5u);
  EXPECT_EQ(sched.compute_count(1), 1u);
  EXPECT_EQ(sched.compute_count(0), 0u);
  sched.append(1);
  sched.drop_empty_supersteps();
  EXPECT_EQ(sched.num_supersteps(), 2);
  const MbspInstance inst = chain_instance(2);
  EXPECT_NE(sched.to_string(inst).find("superstep"), std::string::npos);
}

}  // namespace
}  // namespace mbsp
