// Structural tests for the proof-construction gadgets.
#include <gtest/gtest.h>

#include "src/graph/gadgets.hpp"
#include "src/graph/topology.hpp"
#include "src/model/instance.hpp"

namespace mbsp {
namespace {

TEST(Zipper, Structure) {
  const ZipperGadget z = zipper_gadget(4, 6);
  EXPECT_TRUE(is_acyclic(z.dag));
  EXPECT_EQ(z.dag.num_nodes(), 2 * 4 + 2 * 6);
  EXPECT_EQ(z.h1.size(), 4u);
  EXPECT_EQ(z.v.size(), 6u);
  // v_1 (odd) has parents H2; u_1 has parents H1.
  for (NodeId h : z.h2) {
    const auto& children = z.dag.children(h);
    EXPECT_NE(std::find(children.begin(), children.end(), z.v[0]),
              children.end());
  }
  for (NodeId h : z.h1) {
    const auto& children = z.dag.children(h);
    EXPECT_NE(std::find(children.begin(), children.end(), z.u[0]),
              children.end());
  }
  // v_2 (even) has parents H1.
  for (NodeId h : z.h1) {
    const auto& children = z.dag.children(h);
    EXPECT_NE(std::find(children.begin(), children.end(), z.v[1]),
              children.end());
  }
  // Chain edges.
  for (int i = 1; i < 6; ++i) {
    const auto& parents = z.dag.parents(z.v[i]);
    EXPECT_NE(std::find(parents.begin(), parents.end(), z.v[i - 1]),
              parents.end());
  }
  // With r = d + 2, every chain node's parents (d group nodes + previous
  // chain node) plus itself fit exactly.
  EXPECT_DOUBLE_EQ(min_memory_r0(z.dag), 4 + 2);
}

TEST(Lemma51, WeightsAndShape) {
  const PartitionGadget gadget = lemma51_gadget({3, 5, 2, 6});
  EXPECT_DOUBLE_EQ(gadget.alpha, 16);
  EXPECT_DOUBLE_EQ(gadget.dag.mu(gadget.v_prime), 8);
  EXPECT_TRUE(is_acyclic(gadget.dag));
  EXPECT_EQ(gadget.dag.parents(gadget.w1).size(), 4u);
  EXPECT_EQ(gadget.dag.parents(gadget.w3).size(), 5u);  // items + w2
  // The computation order w1 -> w2 -> w3 is forced by edges.
  const auto& w2_parents = gadget.dag.parents(gadget.w2);
  EXPECT_NE(std::find(w2_parents.begin(), w2_parents.end(), gadget.w1),
            w2_parents.end());
}

TEST(Lemma53, PairStructure) {
  const PairChainsGadget gadget = lemma53_gadget(6, 50);
  EXPECT_TRUE(is_acyclic(gadget.dag));
  EXPECT_EQ(gadget.pairs, 3);
  EXPECT_EQ(gadget.dag.num_nodes(), 1 + 2 * 3 * 3);
  // Diagonal stages are heavy.
  EXPECT_DOUBLE_EQ(gadget.dag.omega(gadget.u[1][1]), 50);
  EXPECT_DOUBLE_EQ(gadget.dag.omega(gadget.u[1][0]), 1);
}

TEST(Lemma54, Weights) {
  const SyncGapGadget gadget = lemma54_gadget(100);
  EXPECT_TRUE(is_acyclic(gadget.dag));
  EXPECT_DOUBLE_EQ(gadget.dag.omega(gadget.u3), 200);
  EXPECT_DOUBLE_EQ(gadget.dag.omega(gadget.w), 99);
  EXPECT_EQ(gadget.dag.children(gadget.w1).size(), 3u);
}

TEST(Lemma61, AlternatingChain) {
  const RecomputeGadget gadget = lemma61_gadget(3, 4);
  EXPECT_TRUE(is_acyclic(gadget.dag));
  EXPECT_EQ(gadget.v.size(), 5u);  // v_0 .. v_4
  // v_1 depends on u_d, v_2 on u'_d.
  const auto& p1 = gadget.dag.parents(gadget.v[1]);
  EXPECT_NE(std::find(p1.begin(), p1.end(), gadget.u.back()), p1.end());
  const auto& p2 = gadget.dag.parents(gadget.v[2]);
  EXPECT_NE(std::find(p2.begin(), p2.end(), gadget.u_prime.back()), p2.end());
  // w reaches every node.
  for (NodeId v = 1; v < gadget.dag.num_nodes(); ++v) {
    const auto& parents = gadget.dag.parents(v);
    EXPECT_NE(std::find(parents.begin(), parents.end(), gadget.w),
              parents.end());
  }
}

}  // namespace
}  // namespace mbsp
