// Integration tests for the two-stage pipeline: BSP scheduling, compute
// plans, and the memory-completion engine. Heavy use of parameterized
// sweeps: every (instance, policy, memory bound) combination must produce
// a schedule that passes full semantic validation.
#include <gtest/gtest.h>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/generators.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/memory_completion.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {
namespace {

MbspInstance make_instance(ComputeDag dag, int P, double r_factor,
                           double g = 1, double L = 10) {
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, g, L)};
}

TEST(ComputePlan, FromBspRoundTrip) {
  Rng rng(1);
  ComputeDag dag = spmv_dag(6, 3, rng, "t");
  const MbspInstance inst = make_instance(std::move(dag), 2, 3);
  GreedyBspScheduler sched;
  const BspSchedule bsp = sched.schedule(inst.dag, inst.arch);
  ASSERT_TRUE(validate_bsp(inst.dag, 2, bsp).ok);
  const ComputePlan plan = plan_from_bsp(inst.dag, bsp, 2);
  EXPECT_TRUE(validate_plan(inst.dag, plan).ok);
  std::size_t non_sources = 0;
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    non_sources += !inst.dag.is_source(v);
  }
  EXPECT_EQ(plan.total_computes(), non_sources);
}

TEST(ComputePlan, DetectsMissingNode) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  ComputePlan plan;
  plan.num_procs = 1;
  plan.seq.resize(1);
  EXPECT_FALSE(validate_plan(dag, plan).ok);
}

TEST(ComputePlan, DetectsUnavailableParent) {
  // a -> b with both on different procs in the same superstep.
  ComputeDag dag;
  dag.add_node(0, 1);  // source s
  dag.add_node(1, 1);  // a
  dag.add_node(1, 1);  // b
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  ComputePlan plan;
  plan.num_procs = 2;
  plan.seq.resize(2);
  plan.seq[0].push_back({1, 0});
  plan.seq[1].push_back({2, 0});  // parent a unavailable cross-proc same step
  EXPECT_FALSE(validate_plan(dag, plan).ok);
  plan.seq[1][0].superstep = 1;
  EXPECT_TRUE(validate_plan(dag, plan).ok);
}

TEST(ComputePlan, RecomputationAccepted) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  ComputePlan plan;
  plan.num_procs = 2;
  plan.seq.resize(2);
  plan.seq[0].push_back({1, 0});
  plan.seq[1].push_back({1, 0});  // recompute a locally
  plan.seq[1].push_back({2, 0});
  EXPECT_TRUE(validate_plan(dag, plan).ok);
}

TEST(ComputePlan, NormalizeSupersteps) {
  ComputePlan plan;
  plan.num_procs = 1;
  plan.seq.resize(1);
  plan.seq[0] = {{0, 3}, {1, 7}, {2, 7}};
  normalize_supersteps(plan);
  EXPECT_EQ(plan.seq[0][0].superstep, 0);
  EXPECT_EQ(plan.seq[0][1].superstep, 1);
  EXPECT_EQ(plan.num_supersteps(), 2);
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every tiny-dataset instance completes to a valid
// schedule under every policy and several memory bounds.
struct SweepParam {
  int instance_index;
  PolicyKind policy;
  double r_factor;
};

class CompletionSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CompletionSweep, ProducesValidSchedule) {
  const SweepParam param = GetParam();
  auto dataset = tiny_dataset(2025);
  ComputeDag dag = std::move(dataset[param.instance_index]);
  const std::string name = dag.name();
  const MbspInstance inst = make_instance(std::move(dag), 4, param.r_factor);
  GreedyBspScheduler stage1;
  const TwoStageResult result =
      two_stage_schedule(inst, stage1, param.policy);
  const ValidationResult valid = validate(inst, result.mbsp);
  EXPECT_TRUE(valid.ok) << name << ": " << valid.error;
  EXPECT_GT(sync_cost(inst, result.mbsp), 0);
  EXPECT_GT(async_cost(inst, result.mbsp), 0);
  EXPECT_LE(async_cost(inst, result.mbsp),
            sync_cost(inst, result.mbsp) + 1e-9)
      << "async cost must not exceed sync cost (L contributes only sync)";
  // Every non-source node computed exactly once (no recomputation in the
  // two-stage pipeline).
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    if (!inst.dag.is_source(v)) {
      EXPECT_EQ(result.mbsp.compute_count(v), 1u) << name << " node " << v;
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (int i = 0; i < 15; ++i) {
    for (PolicyKind policy : {PolicyKind::kClairvoyant, PolicyKind::kLru}) {
      for (double r : {1.0, 3.0, 5.0}) {
        params.push_back({i, policy, r});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(TinyDataset, CompletionSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const SweepParam& p = info.param;
                           return "i" + std::to_string(p.instance_index) +
                                  (p.policy == PolicyKind::kClairvoyant
                                       ? "_cv_"
                                       : "_lru_") +
                                  "r" + std::to_string(int(p.r_factor));
                         });

// Tighter memory must never make the schedule cheaper (same stage-1 plan).
TEST(Completion, MonotoneInMemoryBound) {
  auto dataset = tiny_dataset(2025);
  for (int i : {0, 3, 9}) {
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    GreedyBspScheduler stage1;
    double previous = -1;
    for (double factor : {1.0, 2.0, 4.0, 8.0}) {
      MbspInstance inst{dag, Architecture::make(4, factor * r0, 1, 10)};
      const TwoStageResult res =
          two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
      const double cost = sync_cost(inst, res.mbsp);
      if (previous >= 0) {
        EXPECT_LE(cost, previous * 1.001)
            << dag.name() << " factor " << factor;
      }
      previous = cost;
    }
  }
}

// The completion engine also handles plans *with* recomputation.
TEST(Completion, RecomputePlanCompletes) {
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 1);
  const NodeId a = dag.add_node(1, 1);
  const NodeId b = dag.add_node(1, 1);
  const NodeId c = dag.add_node(1, 1);
  dag.add_edge(s, a);
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  MbspInstance inst{dag, Architecture::make(2, 3, 1, 0)};
  ComputePlan plan;
  plan.num_procs = 2;
  plan.seq.resize(2);
  plan.seq[0] = {{a, 0}, {b, 0}};
  plan.seq[1] = {{a, 0}, {c, 0}};  // a recomputed on p1, no load needed
  ASSERT_TRUE(validate_plan(dag, plan).ok);
  const MbspSchedule sched =
      complete_memory(inst, plan, PolicyKind::kClairvoyant);
  const auto valid = validate(inst, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_EQ(sched.compute_count(a), 2u);
}

// With r = r0 exactly, long chains force eviction churn but must stay valid.
TEST(Completion, TightMemoryChain) {
  ComputeDag dag("tight_chain");
  const NodeId h = dag.add_node(0, 2);  // heavy source reused by all
  NodeId prev = kInvalidNode;
  for (int i = 0; i < 12; ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(h, v);
    if (prev != kInvalidNode) dag.add_edge(prev, v);
    prev = v;
  }
  const double r0 = min_memory_r0(dag);
  MbspInstance inst{dag, Architecture::make(1, r0, 1, 0)};
  GreedyBspScheduler stage1;
  const TwoStageResult res =
      two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
  const auto valid = validate(inst, res.mbsp);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Baselines, AllKindsRunOnSmallInstance) {
  Rng rng(4);
  ComputeDag dag = iterated_spmv_dag(4, 2, 2, rng, "x");
  assign_random_memory_weights(dag, rng);
  const MbspInstance inst = make_instance(std::move(dag), 2, 3);
  for (BaselineKind kind :
       {BaselineKind::kGreedyClairvoyant, BaselineKind::kCilkLru,
        BaselineKind::kRefinedClairvoyant}) {
    const TwoStageResult res = run_baseline(inst, kind, 50);
    const auto valid = validate(inst, res.mbsp);
    EXPECT_TRUE(valid.ok) << baseline_name(kind) << ": " << valid.error;
  }
}

TEST(Baselines, DfsForSingleProcessor) {
  Rng rng(4);
  ComputeDag dag = spmv_dag(5, 3, rng, "p1");
  assign_random_memory_weights(dag, rng);
  const MbspInstance inst = make_instance(std::move(dag), 1, 3);
  const TwoStageResult res =
      run_baseline(inst, BaselineKind::kDfsClairvoyant);
  const auto valid = validate(inst, res.mbsp);
  EXPECT_TRUE(valid.ok) << valid.error;
}

// Random layered DAGs: fuzz the completion engine across shapes and seeds.
class RandomDagFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagFuzz, CompletionAlwaysValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  ComputeDag dag = random_layered_dag(40 + GetParam() % 41, 4, rng);
  assign_random_memory_weights(dag, rng);
  const int P = 1 + GetParam() % 4;
  const double factor = 1.0 + (GetParam() % 3);
  const MbspInstance inst = make_instance(std::move(dag), P, factor);
  GreedyBspScheduler stage1;
  for (PolicyKind policy : {PolicyKind::kClairvoyant, PolicyKind::kLru}) {
    const TwoStageResult res = two_stage_schedule(inst, stage1, policy);
    const auto valid = validate(inst, res.mbsp);
    EXPECT_TRUE(valid.ok) << "seed " << GetParam() << ": " << valid.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace mbsp
