// Protocol hardening tests for the mbspd wire format (docs/DAEMON.md):
// codec round-trips and offset-naming decode errors (pure, no sockets),
// then adversarial framing against a live in-process server — garbage
// magic, oversized and truncated frames, garbage payloads, mid-request
// disconnects. Every malformed input must produce a typed kError frame
// (or a clean connection close), never a crash, and the server must keep
// serving other clients afterwards.
#include <gtest/gtest.h>

#include <thread>

#include "src/daemon/client.hpp"
#include "src/daemon/protocol.hpp"
#include "src/daemon/server.hpp"
#include "src/workload/workload_registry.hpp"
#include "src/graph/dag_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MBSP_DAEMON_TESTS_POSIX 1
#endif

namespace mbsp::daemon {
namespace {

// ---------------------------------------------------------------------------
// Pure codec tests.

TEST(WireCodec, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  w.blob(std::string(3, '\0'));

  WireReader r(w.bytes());
  std::uint8_t u8v;
  std::uint16_t u16v;
  std::uint32_t u32v;
  std::uint64_t u64v;
  std::int64_t i64v;
  double f64v;
  std::string strv, blobv;
  EXPECT_TRUE(r.u8(&u8v));
  EXPECT_TRUE(r.u16(&u16v));
  EXPECT_TRUE(r.u32(&u32v));
  EXPECT_TRUE(r.u64(&u64v));
  EXPECT_TRUE(r.i64(&i64v));
  EXPECT_TRUE(r.f64(&f64v));
  EXPECT_TRUE(r.str(&strv, "s"));
  EXPECT_TRUE(r.blob(&blobv, "b"));
  EXPECT_TRUE(r.expect_end());
  EXPECT_EQ(u8v, 7);
  EXPECT_EQ(u16v, 65535);
  EXPECT_EQ(u32v, 0xdeadbeefu);
  EXPECT_EQ(u64v, 0x0123456789abcdefULL);
  EXPECT_EQ(i64v, -42);
  EXPECT_EQ(f64v, 3.25);
  EXPECT_EQ(strv, "hello");
  EXPECT_EQ(blobv, std::string(3, '\0'));
}

TEST(WireCodec, TruncatedReadNamesTheByteOffset) {
  const std::string bytes = "\x01\x02";
  WireReader r(bytes);
  std::uint8_t u8v;
  EXPECT_TRUE(r.u8(&u8v));
  std::uint32_t u32v;
  EXPECT_FALSE(r.u32(&u32v));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("at byte 1"), std::string::npos) << r.error();
  // The error latches: further reads keep failing with the first message.
  EXPECT_FALSE(r.u8(&u8v));
  EXPECT_NE(r.error().find("at byte 1"), std::string::npos);
}

TEST(WireCodec, TruncatedStringNamesDeclaredLength) {
  WireWriter w;
  w.str("hello world");
  std::string bytes = w.take();
  bytes.resize(bytes.size() - 4);  // keep the prefix, drop payload bytes
  WireReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.str(&s, "greeting"));
  EXPECT_NE(r.error().find("greeting"), std::string::npos) << r.error();
  EXPECT_NE(r.error().find("at byte"), std::string::npos) << r.error();
}

TEST(WireCodec, TrailingGarbageIsAnError) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  WireReader r(w.bytes());
  std::uint8_t v;
  EXPECT_TRUE(r.u8(&v));
  EXPECT_FALSE(r.expect_end());
  EXPECT_NE(r.error().find("trailing garbage at byte 1"), std::string::npos)
      << r.error();
}

TEST(WireCodec, ScheduleRequestRoundTrips) {
  ScheduleRequest request;
  request.no_cache = true;
  request.dag_hash = 0x1122334455667788ULL;
  request.dag_bytes = std::string("\x00\x01\x02", 3);
  request.machine_spec = "numa:P=8,groups=2";
  request.scheduler = "lns-portfolio";
  request.cost_model = 1;
  request.budget_ms = 125.5;
  request.max_iterations = 123456789;
  request.seed = 99;
  request.deadline_ms = 2000;

  ScheduleRequest decoded;
  std::string error;
  ASSERT_TRUE(decode_schedule_request(encode_schedule_request(request),
                                      &decoded, &error))
      << error;
  EXPECT_EQ(decoded.version, request.version);
  EXPECT_EQ(decoded.no_cache, request.no_cache);
  EXPECT_EQ(decoded.dag_hash, request.dag_hash);
  EXPECT_EQ(decoded.dag_bytes, request.dag_bytes);
  EXPECT_EQ(decoded.machine_spec, request.machine_spec);
  EXPECT_EQ(decoded.scheduler, request.scheduler);
  EXPECT_EQ(decoded.cost_model, request.cost_model);
  EXPECT_EQ(decoded.budget_ms, request.budget_ms);
  EXPECT_EQ(decoded.max_iterations, request.max_iterations);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
}

TEST(WireCodec, TruncatedScheduleRequestNamesOffset) {
  ScheduleRequest request;
  request.dag_bytes = "some dag payload";
  const std::string full = encode_schedule_request(request);
  // Every strict prefix must fail with a typed offset-naming error, and
  // must never be accepted as a complete request.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ScheduleRequest decoded;
    std::string error;
    ASSERT_FALSE(
        decode_schedule_request(full.substr(0, cut), &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
  }
}

TEST(WireCodec, FinalResultAndPlanRoundTripBitwise) {
  FinalResult fin;
  fin.dag_hash = 42;
  fin.machine = "uniform";
  fin.scheduler = "lns";
  fin.cost_model = 1;
  fin.cache = CacheStatus::kWarm;
  fin.cost = 123.5;
  fin.baseline_cost = 200;
  fin.io_volume = 17;
  fin.supersteps = 9;
  fin.plan.num_procs = 2;
  fin.plan.seq = {{{0, 0}, {2, 1}}, {{1, 0}}};

  FinalResult decoded;
  std::string error;
  ASSERT_TRUE(
      decode_final_result(encode_final_result(fin), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.cache, CacheStatus::kWarm);
  EXPECT_EQ(decoded.cost, fin.cost);
  EXPECT_EQ(decoded.supersteps, fin.supersteps);

  // "Bitwise identical plan" is byte equality of the deterministic plan
  // encoding; a round-trip must be a fixed point.
  WireWriter original, roundtripped;
  encode_plan(original, fin.plan);
  encode_plan(roundtripped, decoded.plan);
  EXPECT_EQ(original.bytes(), roundtripped.bytes());
}

TEST(WireCodec, SmallFramesRoundTrip) {
  std::string error;

  ProgressFrame progress{1, 77.5, 1234};
  ProgressFrame progress2;
  ASSERT_TRUE(decode_progress(encode_progress(progress), &progress2, &error));
  EXPECT_EQ(progress2.stage, 1);
  EXPECT_EQ(progress2.cost, 77.5);
  EXPECT_EQ(progress2.iterations, 1234);

  std::string message;
  ASSERT_TRUE(decode_status(encode_status("warm-start"), &message, &error));
  EXPECT_EQ(message, "warm-start");

  ErrorFrame err{WireError::kDeadlineExpired, "too slow"};
  ErrorFrame err2;
  ASSERT_TRUE(decode_error(encode_error(err), &err2, &error));
  EXPECT_EQ(err2.code, WireError::kDeadlineExpired);
  EXPECT_EQ(err2.message, "too slow");

  DaemonStats stats;
  stats.requests = 10;
  stats.exact_hits = 4;
  stats.cache_capacity = 256;
  DaemonStats stats2;
  ASSERT_TRUE(decode_stats(encode_stats(stats), &stats2, &error));
  EXPECT_EQ(stats2.requests, 10u);
  EXPECT_EQ(stats2.exact_hits, 4u);
  EXPECT_EQ(stats2.cache_capacity, 256u);
}

/// One op of every kind, with distinguishable payloads.
InstanceDelta delta_of_every_kind() {
  InstanceDelta delta;
  delta.add_node(2.5, 1.25);
  delta.add_edge(3, 9);
  delta.set_node_weight(4, 6.0, 2.0);
  delta.drop_processor(2);
  delta.shrink_memory(-1, 17.5);
  return delta;
}

TEST(WireCodec, InstanceDeltaRoundTripsAllOpKinds) {
  const InstanceDelta delta = delta_of_every_kind();
  WireWriter w;
  encode_instance_delta(w, delta);
  WireReader r(w.bytes());
  InstanceDelta decoded;
  ASSERT_TRUE(decode_instance_delta(r, &decoded));
  ASSERT_TRUE(r.expect_end());
  EXPECT_TRUE(decoded == delta);
  EXPECT_EQ(instance_delta_hash(decoded), instance_delta_hash(delta));
}

TEST(WireCodec, RepairRequestRoundTrips) {
  RepairRequest request;
  request.no_cache = true;
  request.dag_hash = 0x1122334455667788ULL;
  request.dag_bytes = std::string("\x00\x01\x02", 3);
  request.machine_spec = "hetero:speeds=1x2+2x2";
  request.scheduler = "lns-portfolio";
  request.cost_model = 1;
  request.budget_ms = 125.5;
  request.max_iterations = 123456789;
  request.seed = 99;
  request.deadline_ms = 2000;
  request.delta = delta_of_every_kind();

  RepairRequest decoded;
  std::string error;
  ASSERT_TRUE(decode_repair_request(encode_repair_request(request), &decoded,
                                    &error))
      << error;
  EXPECT_EQ(decoded.version, request.version);
  EXPECT_EQ(decoded.no_cache, request.no_cache);
  EXPECT_EQ(decoded.dag_hash, request.dag_hash);
  EXPECT_EQ(decoded.dag_bytes, request.dag_bytes);
  EXPECT_EQ(decoded.machine_spec, request.machine_spec);
  EXPECT_EQ(decoded.scheduler, request.scheduler);
  EXPECT_EQ(decoded.cost_model, request.cost_model);
  EXPECT_EQ(decoded.budget_ms, request.budget_ms);
  EXPECT_EQ(decoded.max_iterations, request.max_iterations);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_TRUE(decoded.delta == request.delta);
}

TEST(WireCodec, TruncatedRepairRequestFailsAtEveryOffset) {
  RepairRequest request;
  request.dag_bytes = "some dag payload";
  request.delta = delta_of_every_kind();
  const std::string full = encode_repair_request(request);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    RepairRequest decoded;
    std::string error;
    ASSERT_FALSE(
        decode_repair_request(full.substr(0, cut), &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
  }
}

TEST(WireCodec, UnknownDeltaOpKindIsASemanticError) {
  RepairRequest request;
  InstanceDelta delta;
  delta.add_node();
  request.delta = delta;
  std::string bytes = encode_repair_request(request);
  // The delta is encoded last: u32 op count, then one 49-byte op whose
  // first byte is the kind. Overwrite it with an undeclared value.
  constexpr std::size_t kOpBytes = 1 + 6 * 8;
  bytes[bytes.size() - kOpBytes] = '\x7f';
  RepairRequest decoded;
  std::string error;
  ASSERT_FALSE(decode_repair_request(bytes, &decoded, &error));
  EXPECT_NE(error.find("bad delta op kind"), std::string::npos) << error;
}

TEST(WireCodec, StatsRoundTripIncludesRepairCounters) {
  DaemonStats stats;
  stats.requests = 10;
  stats.solver_calls = 6;
  stats.repair_requests = 4;
  stats.repair_hits = 3;
  DaemonStats decoded;
  std::string error;
  ASSERT_TRUE(decode_stats(encode_stats(stats), &decoded, &error)) << error;
  EXPECT_EQ(decoded.requests, 10u);
  EXPECT_EQ(decoded.solver_calls, 6u);
  EXPECT_EQ(decoded.repair_requests, 4u);
  EXPECT_EQ(decoded.repair_hits, 3u);
}

TEST(WireCodec, FrameTypeSidedness) {
  EXPECT_TRUE(is_request_frame(FrameType::kScheduleRequest));
  EXPECT_TRUE(is_request_frame(FrameType::kPing));
  EXPECT_TRUE(is_request_frame(FrameType::kStatsRequest));
  EXPECT_TRUE(is_request_frame(FrameType::kRepairRequest));
  EXPECT_FALSE(is_request_frame(FrameType::kFinal));
  EXPECT_FALSE(is_request_frame(FrameType::kError));
  EXPECT_FALSE(is_request_frame(static_cast<FrameType>(0x7f)));
}

TEST(WireCodec, ErrorNamesAreStable) {
  EXPECT_STREQ(wire_error_name(WireError::kBadMagic), "bad-magic");
  EXPECT_STREQ(wire_error_name(WireError::kOversizedFrame),
               "oversized-frame");
  EXPECT_STREQ(wire_error_name(WireError::kDeadlineExpired),
               "deadline-expired");
  EXPECT_STREQ(wire_error_name(WireError::kBadDelta), "bad-delta");
  EXPECT_STREQ(cache_status_name(CacheStatus::kRepaired), "repaired");
}

#if defined(MBSP_DAEMON_TESTS_POSIX)

// ---------------------------------------------------------------------------
// Adversarial framing against a live server.

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/mbspd-proto-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

class ProtocolServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.socket_path = test_socket_path();
    options_.solver_threads = 2;
    options_.max_request_bytes = 1u << 16;  // small limit: easy to exceed
    server_ = std::make_unique<MbspdServer>(options_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override { server_->stop(); }

  /// The server must still answer a fresh client (the liveness probe run
  /// after every attack).
  void expect_server_alive() {
    MbspClient probe;
    std::string error;
    ASSERT_TRUE(probe.connect(options_.socket_path, &error)) << error;
    EXPECT_TRUE(probe.ping(&error)) << error;
  }

  ScheduleRequest tiny_request() {
    std::string error;
    auto dag = WorkloadRegistry::global().make_dag("fft:n=8", 7, &error);
    EXPECT_TRUE(dag) << error;
    ScheduleRequest request;
    request.dag_bytes = dag_to_binary(*dag);
    request.budget_ms = 0;
    request.max_iterations = 200;
    return request;
  }

  MbspdOptions options_;
  std::unique_ptr<MbspdServer> server_;
};

TEST_F(ProtocolServerTest, GarbageMagicGetsTypedErrorAndClose) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  ASSERT_TRUE(client.send_raw("XXXXXXXXXXXXXXXX", &error)) << error;

  Frame frame;
  ASSERT_TRUE(client.read_reply(&frame, &error)) << error;
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame err;
  ASSERT_TRUE(decode_error(frame.payload, &err, &error)) << error;
  EXPECT_EQ(err.code, WireError::kBadMagic);
  EXPECT_NE(err.message.find("byte 0"), std::string::npos) << err.message;

  // Framing errors are unrecoverable: the server closes the connection.
  EXPECT_FALSE(client.read_reply(&frame, &error));
  expect_server_alive();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ProtocolServerTest, OversizedFrameIsRejectedBeforeAllocation) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;

  // Valid header declaring a payload far beyond max_request_bytes.
  WireWriter header;
  header.u8('M');
  header.u8('B');
  header.u8('P');
  header.u8('D');
  header.u8(static_cast<std::uint8_t>(FrameType::kScheduleRequest));
  header.u32(64u << 20);
  ASSERT_TRUE(client.send_raw(header.bytes(), &error)) << error;

  Frame frame;
  ASSERT_TRUE(client.read_reply(&frame, &error)) << error;
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame err;
  ASSERT_TRUE(decode_error(frame.payload, &err, &error)) << error;
  EXPECT_EQ(err.code, WireError::kOversizedFrame);
  EXPECT_NE(err.message.find("limit"), std::string::npos) << err.message;
  expect_server_alive();
}

TEST_F(ProtocolServerTest, NonRequestFrameTypeIsRejected) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  // kFinal is a server->client type; a client sending it is a protocol
  // error even though the type value itself is known.
  ASSERT_TRUE(client.send_raw(encode_frame(FrameType::kFinal, ""), &error));

  Frame frame;
  ASSERT_TRUE(client.read_reply(&frame, &error)) << error;
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame err;
  ASSERT_TRUE(decode_error(frame.payload, &err, &error)) << error;
  EXPECT_EQ(err.code, WireError::kBadFrameType);
  expect_server_alive();
}

TEST_F(ProtocolServerTest, TruncatedFrameThenDisconnectLeavesServerAlive) {
  {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    // Header promises 100 payload bytes; deliver 10 and vanish.
    WireWriter partial;
    partial.u8('M');
    partial.u8('B');
    partial.u8('P');
    partial.u8('D');
    partial.u8(static_cast<std::uint8_t>(FrameType::kScheduleRequest));
    partial.u32(100);
    ASSERT_TRUE(client.send_raw(partial.bytes() + "0123456789", &error));
  }  // destructor closes mid-frame
  expect_server_alive();
}

TEST_F(ProtocolServerTest, GarbagePayloadKeepsConnectionUsable) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  // A well-framed request whose payload is not a ScheduleRequest: the
  // frame boundary is intact, so after the typed error the same
  // connection must still serve.
  ASSERT_TRUE(client.send_raw(
      encode_frame(FrameType::kScheduleRequest, "not a request"), &error));

  Frame frame;
  // The server answers "queued" only after a successful decode, so the
  // first reply here is the error frame itself.
  ASSERT_TRUE(client.read_reply(&frame, &error)) << error;
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorFrame err;
  ASSERT_TRUE(decode_error(frame.payload, &err, &error)) << error;
  EXPECT_EQ(err.code, WireError::kBadRequest);
  EXPECT_NE(err.message.find("at byte"), std::string::npos) << err.message;

  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST_F(ProtocolServerTest, MidRequestDisconnectDoesNotWedgeTheServer) {
  {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    ASSERT_TRUE(client.send_raw(
        encode_frame(FrameType::kScheduleRequest,
                     encode_schedule_request(tiny_request())),
        &error));
  }  // gone before the reply stream starts

  // The abandoned solve still completes and is memoized; the server keeps
  // serving, and the same request from a live client is an exact hit once
  // the orphaned solve lands.
  expect_server_alive();
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  MbspClient::Outcome outcome;
  ASSERT_TRUE(client.run(tiny_request(), &outcome, &error)) << error;
  ASSERT_TRUE(outcome.ok) << outcome.error.message;
}

TEST_F(ProtocolServerTest, UnsupportedVersionGetsTypedError) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  ScheduleRequest request = tiny_request();
  request.version = 9;
  MbspClient::Outcome outcome;
  ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kBadVersion);
}

TEST_F(ProtocolServerTest, BadRequestFieldsGetTypedErrors) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  MbspClient::Outcome outcome;

  ScheduleRequest bad_scheduler = tiny_request();
  bad_scheduler.scheduler = "no-such-scheduler";
  ASSERT_TRUE(client.run(bad_scheduler, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kUnknownScheduler);
  EXPECT_NE(outcome.error.message.find("no-such-scheduler"),
            std::string::npos);

  ScheduleRequest bad_machine = tiny_request();
  bad_machine.machine_spec = "no-such-machine:P=4";
  ASSERT_TRUE(client.run(bad_machine, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kBadMachineSpec);

  ScheduleRequest bad_dag = tiny_request();
  bad_dag.dag_bytes = "this is not a dag";
  ASSERT_TRUE(client.run(bad_dag, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kBadDag);

  ScheduleRequest unknown_hash = tiny_request();
  unknown_hash.dag_bytes.clear();
  unknown_hash.dag_hash = 0xdeadbeefdeadbeefULL;
  ASSERT_TRUE(client.run(unknown_hash, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kUnknownDagHash);
  EXPECT_NE(outcome.error.message.find("resend"), std::string::npos)
      << "the error must tell the client how to recover";

  // The connection survived four typed errors.
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST_F(ProtocolServerTest, PinnedHashMismatchIsRejected) {
  MbspClient client;
  std::string error;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  ScheduleRequest request = tiny_request();
  request.dag_hash = 0x1234;  // wrong pin for the inline DAG
  MbspClient::Outcome outcome;
  ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kBadDag);
  EXPECT_NE(outcome.error.message.find("pinned"), std::string::npos)
      << outcome.error.message;
}

TEST_F(ProtocolServerTest, TruncatedRepairFrameAtEveryOffsetNeverCrashes) {
  RepairRequest request;
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag("fft:n=8", 7, &error);
  ASSERT_TRUE(dag) << error;
  request.dag_bytes = dag_to_binary(*dag);
  request.budget_ms = 0;
  request.max_iterations = 100;
  request.delta.add_node(2.0, 1.0);
  request.delta.add_edge(0, dag->num_nodes());
  const std::string frame =
      encode_frame(FrameType::kRepairRequest, encode_repair_request(request));

  // Cut the raw frame at every byte offset, send the prefix, vanish. The
  // server must treat every one as a truncated frame / clean close and
  // keep serving (sampled liveness probes keep the test fast; the final
  // probe covers the whole sweep).
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    MbspClient attacker;
    ASSERT_TRUE(attacker.connect(options_.socket_path, &error)) << error;
    if (cut > 0) {
      ASSERT_TRUE(attacker.send_raw(frame.substr(0, cut), &error))
          << "cut " << cut << ": " << error;
    }
    attacker.close();
    if (cut % 64 == 0) expect_server_alive();
  }
  expect_server_alive();

  // Well-framed frames whose *declared* payload is a strict prefix of the
  // real payload: the decode fails with a typed error and the connection
  // stays usable.
  const std::string payload = encode_repair_request(request);
  for (std::size_t cut = 0; cut < payload.size(); cut += 13) {
    MbspClient client;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    ASSERT_TRUE(client.send_raw(
        encode_frame(FrameType::kRepairRequest, payload.substr(0, cut)),
        &error));
    Frame reply;
    ASSERT_TRUE(client.read_reply(&reply, &error)) << "cut " << cut << ": "
                                                   << error;
    ASSERT_EQ(reply.type, FrameType::kError) << "cut " << cut;
    ErrorFrame err;
    ASSERT_TRUE(decode_error(reply.payload, &err, &error)) << error;
    EXPECT_EQ(err.code, WireError::kBadRequest) << "cut " << cut;
    EXPECT_TRUE(client.ping(&error)) << "cut " << cut << ": " << error;
  }
  expect_server_alive();
}

TEST_F(ProtocolServerTest, TamperedDeltaOpKindOverTheWireIsBadDelta) {
  RepairRequest request;
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag("fft:n=8", 7, &error);
  ASSERT_TRUE(dag) << error;
  request.dag_bytes = dag_to_binary(*dag);
  request.delta.add_node();
  std::string payload = encode_repair_request(request);
  constexpr std::size_t kOpBytes = 1 + 6 * 8;
  payload[payload.size() - kOpBytes] = '\x7f';  // undeclared op kind

  MbspClient client;
  ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  ASSERT_TRUE(client.send_raw(
      encode_frame(FrameType::kRepairRequest, payload), &error));
  Frame reply;
  ASSERT_TRUE(client.read_reply(&reply, &error)) << error;
  ASSERT_EQ(reply.type, FrameType::kError);
  ErrorFrame err;
  ASSERT_TRUE(decode_error(reply.payload, &err, &error)) << error;
  EXPECT_EQ(err.code, WireError::kBadDelta);
  EXPECT_NE(err.message.find("bad delta op kind"), std::string::npos)
      << err.message;
  EXPECT_TRUE(client.ping(&error)) << error;
}

#endif  // MBSP_DAEMON_TESTS_POSIX

}  // namespace
}  // namespace mbsp::daemon
