// Tests for the parallel portfolio LNS: the workers=1/epochs=1 identity
// with improve_plan (bitwise), deterministic-mode reproducibility across
// runs and pool thread counts, epoch-exchange monotonicity (never worse
// than the warm start or any worker's solo run at the same per-worker
// budget), the differential check against improve_plan_reference, and the
// lns-portfolio registry entry.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.hpp"
#include "src/holistic/lns.hpp"
#include "src/holistic/portfolio.hpp"
#include "src/model/validate.hpp"
#include "src/runner/batch_runner.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

MbspInstance tiny_instance(int index, int P = 4, double r_factor = 3) {
  auto dataset = tiny_dataset(2025);
  ComputeDag dag = std::move(dataset[index]);
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, 1, 10)};
}

MbspInstance workload_instance(const std::string& spec, int P = 4) {
  std::string error;
  auto inst =
      WorkloadRegistry::global().make_instance(spec, 2025, P, 3.0, 1, 10,
                                               &error);
  EXPECT_TRUE(inst.has_value()) << spec << ": " << error;
  return std::move(*inst);
}

/// Reproducible base options: no deadline, fixed iteration budget.
PortfolioOptions reproducible_options(long iterations, int workers,
                                      int epochs) {
  PortfolioOptions options;
  options.lns.budget_ms = 0;
  options.lns.max_iterations = iterations;
  options.workers = workers;
  options.epochs = epochs;
  return options;
}

TEST(Portfolio, SingleWorkerSingleEpochIsBitwiseImprovePlan) {
  for (int index : {1, 3, 5}) {
    const MbspInstance inst = tiny_instance(index);
    const ComputePlan initial =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
    const PortfolioOptions options = reproducible_options(3000, 1, 1);
    const LnsResult solo = improve_plan(inst, initial, options.lns);
    const PortfolioResult port = PortfolioLns(options).improve(inst, initial);
    EXPECT_EQ(port.plan.seq, solo.plan.seq) << inst.name();
    EXPECT_EQ(port.cost, solo.cost) << inst.name();
    EXPECT_EQ(port.initial_cost, solo.initial_cost);
    EXPECT_EQ(port.iterations, solo.iterations);
    EXPECT_EQ(port.accepted, solo.accepted);
    EXPECT_EQ(port.proposed_by_class, solo.proposed_by_class);
    EXPECT_EQ(port.accepted_by_class, solo.accepted_by_class);
  }
}

TEST(Portfolio, SingleWorkerMatchesReferenceOracle) {
  // improve_plan is bitwise-equal to improve_plan_reference (PR 3), so the
  // degenerate portfolio must chain through to the historical oracle too.
  const MbspInstance inst = tiny_instance(3);
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  const PortfolioOptions options = reproducible_options(2000, 1, 1);
  const LnsResult oracle = improve_plan_reference(inst, initial, options.lns);
  const PortfolioResult port = PortfolioLns(options).improve(inst, initial);
  EXPECT_EQ(port.plan.seq, oracle.plan.seq);
  EXPECT_EQ(port.cost, oracle.cost);
  EXPECT_EQ(port.iterations, oracle.iterations);
}

TEST(Portfolio, DeterministicModeReproducibleAcrossRunsAndThreadCounts) {
  const MbspInstance inst = tiny_instance(5);
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  PortfolioOptions options = reproducible_options(1200, 4, 3);

  options.threads = 4;
  const PortfolioResult a = PortfolioLns(options).improve(inst, initial);
  const PortfolioResult b = PortfolioLns(options).improve(inst, initial);
  options.threads = 1;  // serialized epochs: same barriers, same result
  const PortfolioResult c = PortfolioLns(options).improve(inst, initial);
  options.threads = 7;  // more threads than workers
  const PortfolioResult d = PortfolioLns(options).improve(inst, initial);

  for (const PortfolioResult* other : {&b, &c, &d}) {
    EXPECT_EQ(a.plan.seq, other->plan.seq);
    EXPECT_EQ(a.cost, other->cost);
    EXPECT_EQ(a.iterations, other->iterations);
    EXPECT_EQ(a.accepted, other->accepted);
    EXPECT_EQ(a.best_worker, other->best_worker);
    EXPECT_EQ(a.best_epoch, other->best_epoch);
    EXPECT_EQ(a.worker_costs, other->worker_costs);
  }
}

TEST(Portfolio, NeverWorseThanWarmStartAndSchedulesStayValid) {
  for (const char* spec : {"stencil2d:nx=6,ny=6,steps=2", "fft:n=16",
                           "lu:blocks=3"}) {
    const MbspInstance inst = workload_instance(spec);
    const ComputePlan initial =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
    const PortfolioOptions options = reproducible_options(1500, 3, 3);
    const PortfolioResult res = PortfolioLns(options).improve(inst, initial);
    EXPECT_LE(res.cost, res.initial_cost) << spec;
    const auto valid = validate(inst, res.schedule);
    EXPECT_TRUE(valid.ok) << spec << ": " << valid.error;
    ASSERT_EQ(res.worker_costs.size(), 3u);
    for (double wc : res.worker_costs) {
      EXPECT_LE(wc, res.initial_cost) << spec;
      EXPECT_LE(res.cost, wc) << spec;  // incumbent = min over workers
    }
  }
}

TEST(Portfolio, SingleEpochNeverWorseThanAnyWorkersSoloRun) {
  // With epochs = 1 each worker's slice IS a solo improve_plan run at the
  // same per-worker budget (worker 0 on the base seed), so the exchanged
  // incumbent must match the best of the solo runs exactly.
  const MbspInstance inst = tiny_instance(3);
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  const PortfolioOptions options = reproducible_options(2500, 3, 1);
  const PortfolioResult port = PortfolioLns(options).improve(inst, initial);
  double best_solo = port.initial_cost;
  for (int w = 0; w < options.workers; ++w) {
    const LnsOptions solo_options = portfolio_worker_options(options, w, 0);
    const LnsResult solo = improve_plan(inst, initial, solo_options);
    EXPECT_LE(port.cost, solo.cost) << "worker " << w;
    best_solo = std::min(best_solo, solo.cost);
  }
  EXPECT_EQ(port.cost, best_solo);
}

TEST(Portfolio, EpochExchangeMonotonicity) {
  // Chained epochs only ever continue from a plan at least as good as the
  // previous one, so every intermediate worker cost and the incumbent are
  // non-increasing; spot-check the end state against a 1-epoch run of the
  // same per-worker budget (exchange must not lose the best incumbent).
  const MbspInstance inst = workload_instance("wavefront:nx=8,ny=8");
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  const PortfolioOptions chained = reproducible_options(2400, 3, 4);
  const PortfolioResult res = PortfolioLns(chained).improve(inst, initial);
  EXPECT_LE(res.cost, res.initial_cost);
  for (double wc : res.worker_costs) EXPECT_LE(res.cost, wc);
  EXPECT_EQ(res.cost,
            *std::min_element(res.worker_costs.begin(),
                              res.worker_costs.end()));
}

TEST(Portfolio, WorkerSeedsAreDistinctAndWorkerZeroKeepsBase) {
  EXPECT_EQ(portfolio_worker_seed(42, 0), 42u);
  EXPECT_NE(portfolio_worker_seed(42, 1), 42u);
  EXPECT_NE(portfolio_worker_seed(42, 1), portfolio_worker_seed(42, 2));
  // Worker/epoch derivations must not collide: worker w at epoch 0 vs
  // worker 0 at epoch w draw from differently-salted SplitMix streams.
  PortfolioOptions options = reproducible_options(100, 4, 4);
  const LnsOptions w1e0 = portfolio_worker_options(options, 1, 0);
  const LnsOptions w0e1 = portfolio_worker_options(options, 0, 1);
  EXPECT_NE(w1e0.seed, w0e1.seed);
}

TEST(Portfolio, EpochSlicesPartitionTheIterationBudget) {
  const PortfolioOptions options = reproducible_options(1001, 2, 4);
  long total = 0;
  for (int e = 0; e < options.epochs; ++e) {
    total += portfolio_worker_options(options, 0, e).max_iterations;
  }
  EXPECT_EQ(total, 1001);
  // And the portfolio actually spends worker x budget iterations when no
  // deadline cuts it short.
  const MbspInstance inst = tiny_instance(1);
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  const PortfolioResult res = PortfolioLns(options).improve(inst, initial);
  EXPECT_EQ(res.iterations, 2 * 1001);
}

TEST(Portfolio, FreeRunningModeStaysValidAndMonotone) {
  const MbspInstance inst = tiny_instance(5);
  const ComputePlan initial =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
  PortfolioOptions options = reproducible_options(1200, 4, 3);
  options.free_running = true;
  const PortfolioResult res = PortfolioLns(options).improve(inst, initial);
  EXPECT_LE(res.cost, res.initial_cost);
  const auto valid = validate(inst, res.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_EQ(res.iterations, 4 * 1200);
}

TEST(Portfolio, ProfileParsingRoundTrips) {
  PortfolioProfile profile = PortfolioProfile::kUniform;
  EXPECT_TRUE(parse_portfolio_profile("diverse", &profile));
  EXPECT_EQ(profile, PortfolioProfile::kDiverse);
  EXPECT_TRUE(parse_portfolio_profile("uniform", &profile));
  EXPECT_EQ(profile, PortfolioProfile::kUniform);
  EXPECT_FALSE(parse_portfolio_profile("bogus", &profile));
  EXPECT_STREQ(portfolio_profile_name(PortfolioProfile::kUniform), "uniform");
  EXPECT_STREQ(portfolio_profile_name(PortfolioProfile::kDiverse), "diverse");
}

TEST(Portfolio, DiverseProfileKeepsWorkerZeroOnBaseOptions) {
  PortfolioOptions options = reproducible_options(1000, 4, 1);
  options.profile = PortfolioProfile::kDiverse;
  const LnsOptions w0 = portfolio_worker_options(options, 0, 0);
  EXPECT_EQ(w0.seed, options.lns.seed);
  EXPECT_EQ(w0.move_mask, options.lns.move_mask);
  EXPECT_DOUBLE_EQ(w0.initial_temperature_frac,
                   options.lns.initial_temperature_frac);
  // Workers 1..3 differ from base in temperature or move mask.
  for (int w : {1, 2, 3}) {
    const LnsOptions o = portfolio_worker_options(options, w, 0);
    EXPECT_TRUE(o.initial_temperature_frac !=
                    options.lns.initial_temperature_frac ||
                o.move_mask != options.lns.move_mask)
        << "worker " << w << " is not diversified";
  }
}

TEST(PortfolioRegistry, LnsPortfolioIsRegisteredAndDeterministic) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  ASSERT_TRUE(registry.contains("lns-portfolio"));
  const MbspInstance inst = tiny_instance(3);
  SchedulerOptions options;
  options.budget_ms = 0;
  options.max_iterations = 1200;
  options.workers = 3;
  options.epochs = 2;
  const ScheduleResult a = registry.at("lns-portfolio").run(inst, options);
  const ScheduleResult b = registry.at("lns-portfolio").run(inst, options);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_LE(a.cost, a.baseline_cost);
  const auto valid = validate(inst, a.schedule);
  EXPECT_TRUE(valid.ok) << valid.error;
  ASSERT_EQ(a.lns_proposed.size(), static_cast<std::size_t>(kNumMoveClasses));
  long proposed = 0;
  for (long p : a.lns_proposed) proposed += p;
  EXPECT_EQ(proposed, 3 * 1200);
}

}  // namespace
}  // namespace mbsp
