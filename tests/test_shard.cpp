// Tests for the sharded hierarchical pipeline (src/holistic/shard.*,
// docs/SCALE.md): partition properties, validity and seed-dominance of the
// stitched schedule, bitwise thread-count independence, the masked-LNS
// contract the boundary polish relies on, and the "sharded" registry
// adapter.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/generators.hpp"
#include "src/holistic/shard.hpp"
#include "src/model/validate.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

MbspInstance workload_instance(const std::string& spec, int P,
                               double r_factor) {
  std::string error;
  auto inst = WorkloadRegistry::global().make_instance(spec, /*seed=*/11, P,
                                                       r_factor, 1, 5, &error);
  EXPECT_TRUE(inst.has_value()) << spec << ": " << error;
  return std::move(*inst);
}

ShardOptions deterministic_options(int shards) {
  ShardOptions options;
  options.num_shards = shards;
  options.lns.budget_ms = 0;  // iteration-capped: machine-speed independent
  options.lns.max_iterations = 3000;
  options.polish_budget_ms = 0;
  options.polish_max_iterations = 2000;
  return options;
}

TEST(ShardPartition, CoversAllNodesWithMonotoneParts) {
  Rng rng(7);
  const ComputeDag dag = random_layered_dag(120, 6, rng);
  for (int k : {1, 2, 5, 16}) {
    const auto parts = acyclic_kway_partition(dag, k);
    ASSERT_FALSE(parts.empty());
    EXPECT_LE(parts.size(), static_cast<std::size_t>(k));
    std::vector<int> part_of(static_cast<std::size_t>(dag.num_nodes()), -1);
    std::size_t covered = 0;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      EXPECT_FALSE(parts[p].empty()) << "shard " << p;
      for (NodeId v : parts[p]) {
        ASSERT_EQ(part_of[static_cast<std::size_t>(v)], -1)
            << "node " << v << " in two shards";
        part_of[static_cast<std::size_t>(v)] = static_cast<int>(p);
        ++covered;
      }
    }
    EXPECT_EQ(covered, static_cast<std::size_t>(dag.num_nodes()));
    // Interval partition of a topological order: edges never point from a
    // later shard to an earlier one, so the quotient is acyclic.
    for (NodeId u = 0; u < dag.num_nodes(); ++u) {
      for (NodeId v : dag.children(u)) {
        EXPECT_LE(part_of[static_cast<std::size_t>(u)],
                  part_of[static_cast<std::size_t>(v)]);
      }
    }
  }
}

TEST(ShardPartition, OversizedKCollapsesToNodeCount) {
  Rng rng(9);
  const ComputeDag dag = random_layered_dag(10, 3, rng);
  const auto parts = acyclic_kway_partition(dag, 64);
  std::size_t covered = 0;
  for (const auto& part : parts) covered += part.size();
  EXPECT_EQ(covered, static_cast<std::size_t>(dag.num_nodes()));
  EXPECT_LE(parts.size(), static_cast<std::size_t>(dag.num_nodes()));
}

TEST(ShardSchedule, ValidatesAndNeverLosesToGreedySeed) {
  for (const char* spec :
       {"stencil2d:nx=6,ny=6,steps=4", "mapreduce:maps=8,reducers=4"}) {
    const MbspInstance inst = workload_instance(spec, 4, 3.0);
    const ShardOptions options = deterministic_options(4);
    const ShardResult result = shard_schedule(inst, options);
    EXPECT_EQ(result.num_shards, 4u);
    const ValidationResult valid = validate(inst, result.schedule);
    EXPECT_TRUE(valid.ok) << spec << ": " << valid.error;
    ASSERT_GT(result.seed_cost, 0) << spec;
    EXPECT_LE(result.cost, result.seed_cost + 1e-9) << spec;
    // The polish never regresses the stitched plan either.
    EXPECT_LE(result.cost, result.stitched_cost + 1e-9) << spec;
  }
}

TEST(ShardSchedule, SingleShardDegeneratesGracefully) {
  const MbspInstance inst = workload_instance("wavefront:nx=6,ny=5", 2, 3.0);
  const ShardResult result = shard_schedule(inst, deterministic_options(1));
  EXPECT_EQ(result.num_shards, 1u);
  EXPECT_EQ(result.cut_edges, 0u);
  EXPECT_EQ(result.boundary_nodes, 0u);
  EXPECT_TRUE(validate(inst, result.schedule).ok);
}

TEST(ShardSchedule, BitwiseReproducibleAcrossThreadCounts) {
  const MbspInstance inst =
      workload_instance("stencil2d:nx=7,ny=5,steps=4", 4, 3.0);
  auto run = [&](int threads) {
    ShardOptions options = deterministic_options(5);
    options.num_threads = threads;
    return shard_schedule(inst, options);
  };
  const ShardResult serial = run(1);
  const ShardResult parallel = run(8);
  EXPECT_EQ(serial.cost, parallel.cost);  // bitwise, not approximate
  EXPECT_EQ(serial.stitched_cost, parallel.stitched_cost);
  EXPECT_EQ(serial.cut_edges, parallel.cut_edges);
  EXPECT_EQ(serial.boundary_nodes, parallel.boundary_nodes);
  ASSERT_EQ(serial.plan.num_procs, parallel.plan.num_procs);
  for (int p = 0; p < serial.plan.num_procs; ++p) {
    const auto& a = serial.plan.seq[static_cast<std::size_t>(p)];
    const auto& b = parallel.plan.seq[static_cast<std::size_t>(p)];
    ASSERT_EQ(a.size(), b.size()) << "proc " << p;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].superstep, b[i].superstep);
    }
  }
}

TEST(ShardSchedule, ShardCountChangesSeedStream) {
  // Different shard counts are different (deterministic) searches; this
  // guards against the shard-indexed seeds collapsing to one stream.
  const MbspInstance inst =
      workload_instance("stencil2d:nx=7,ny=5,steps=4", 4, 3.0);
  const ShardResult a = shard_schedule(inst, deterministic_options(2));
  const ShardResult b = shard_schedule(inst, deterministic_options(5));
  EXPECT_TRUE(validate(inst, a.schedule).ok);
  EXPECT_TRUE(validate(inst, b.schedule).ok);
  EXPECT_NE(a.num_shards, b.num_shards);
}

TEST(MaskedLns, AllOnesMaskIsIdentityAndFrozenNodesKeepAssignments) {
  const MbspInstance inst = workload_instance("fft:n=8", 2, 3.0);
  const ComputePlan initial =
      plan_from_bsp(inst.dag,
                    GreedyBspScheduler().schedule(inst.dag, inst.arch),
                    inst.arch.num_processors);
  LnsOptions options;
  options.budget_ms = 0;
  options.max_iterations = 4000;

  const LnsResult unmasked = improve_plan(inst, initial, options);

  // An all-ones mask must not change a single draw.
  std::vector<char> all(static_cast<std::size_t>(inst.dag.num_nodes()), 1);
  LnsOptions masked_options = options;
  masked_options.node_mask = &all;
  const LnsResult all_masked = improve_plan(inst, initial, masked_options);
  EXPECT_EQ(all_masked.cost, unmasked.cost);
  EXPECT_EQ(all_masked.iterations, unmasked.iterations);
  EXPECT_EQ(all_masked.accepted, unmasked.accepted);

  // Freeze the first half of the nodes: their occurrence multisets (node,
  // proc) must survive the search untouched.
  std::vector<char> half(static_cast<std::size_t>(inst.dag.num_nodes()), 0);
  for (NodeId v = inst.dag.num_nodes() / 2; v < inst.dag.num_nodes(); ++v) {
    half[static_cast<std::size_t>(v)] = 1;
  }
  masked_options.node_mask = &half;
  const LnsResult half_masked = improve_plan(inst, initial, masked_options);
  EXPECT_TRUE(validate(inst, half_masked.schedule).ok);
  auto frozen_occurrences = [&](const ComputePlan& plan) {
    std::vector<std::pair<NodeId, int>> out;
    for (int p = 0; p < plan.num_procs; ++p) {
      for (const PlannedCompute& pc : plan.seq[static_cast<std::size_t>(p)]) {
        if (!half[static_cast<std::size_t>(pc.node)]) {
          out.emplace_back(pc.node, p);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(frozen_occurrences(half_masked.plan), frozen_occurrences(initial));
}

TEST(ShardedAdapter, RegisteredAndMapsResultFields) {
  const MbspInstance inst =
      workload_instance("stencil2d:nx=6,ny=4,steps=3", 2, 3.0);
  SchedulerOptions options;
  options.budget_ms = 0;
  options.max_iterations = 2000;
  options.shards = 3;
  const ScheduleResult result =
      SchedulerRegistry::global().at("sharded").run(inst, options);
  EXPECT_EQ(result.scheduler, "sharded");
  EXPECT_TRUE(validate(inst, result.schedule).ok);
  EXPECT_EQ(result.num_parts, 3u);
  EXPECT_GT(result.baseline_cost, 0);
  EXPECT_LE(result.cost, result.baseline_cost + 1e-9);
}

}  // namespace
}  // namespace mbsp
