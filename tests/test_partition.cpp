// Tests for acyclic bipartitioning and recursive partitioning.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/graph/topology.hpp"
#include "src/holistic/partition.hpp"
#include "src/ilp/solver.hpp"

namespace mbsp {
namespace {

void expect_downset(const ComputeDag& dag, const std::vector<int>& part) {
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      EXPECT_LE(part[u], part[v])
          << "edge " << u << "->" << v << " violates acyclicity";
    }
  }
}

TEST(Bipartition, GreedyDownsetAndBalance) {
  Rng rng(3);
  const ComputeDag dag = random_layered_dag(60, 5, rng);
  BipartitionOptions options;
  options.use_ilp = false;
  const BipartitionResult res = greedy_bipartition(dag, options);
  expect_downset(dag, res.part);
  int zeros = 0;
  for (int p : res.part) zeros += p == 0;
  EXPECT_GE(zeros, 60 / 3);
  EXPECT_GE(60 - zeros, 60 / 3);
  EXPECT_EQ(res.cut, cut_edges(dag, res.part));
}

TEST(Bipartition, IlpOptimalOnTwoChains) {
  // Two disjoint chains of length 6: a balanced split with zero cut exists
  // (one chain per side); the ILP must find it.
  ComputeDag dag;
  for (int c = 0; c < 2; ++c) {
    NodeId prev = dag.add_node(1, 1);
    for (int i = 0; i < 5; ++i) {
      const NodeId v = dag.add_node(1, 1);
      dag.add_edge(prev, v);
      prev = v;
    }
  }
  const BipartitionResult res = acyclic_bipartition(dag);
  expect_downset(dag, res.part);
  EXPECT_EQ(res.cut, 0u);
}

TEST(Bipartition, IlpMatchesBruteForceOnSmallDags) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    const ComputeDag dag = random_layered_dag(10, 3, rng);
    BipartitionOptions options;
    options.ilp_budget_ms = 2000;
    const BipartitionResult res = acyclic_bipartition(dag, options);
    expect_downset(dag, res.part);
    // Brute force over all down-sets within balance.
    const int n = dag.num_nodes();
    const int lo = std::max(1, n / 3);
    std::size_t best = SIZE_MAX;
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<int> part(n);
      int ones = 0;
      for (int v = 0; v < n; ++v) {
        part[v] = (mask >> v) & 1;
        ones += part[v];
      }
      if (ones < lo || n - ones < lo) continue;
      bool downset = true;
      for (NodeId u = 0; u < n && downset; ++u) {
        for (NodeId v : dag.children(u)) downset &= part[u] <= part[v];
      }
      if (downset) best = std::min(best, cut_edges(dag, part));
    }
    ASSERT_NE(best, SIZE_MAX);
    EXPECT_EQ(res.cut, best) << "trial " << trial;
  }
}

TEST(Bipartition, IlpModelShape) {
  ComputeDag dag;
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  const ilp::Model model = build_bipartition_ilp(dag, 1, 1);
  EXPECT_EQ(model.num_vars(), 3);  // 2 part vars + 1 cut var
  // part0=0, part1=1 cuts the edge; the solver minimizes the cut but the
  // balance constraint (1 <= ones <= 1) forces exactly that.
  ilp::BranchAndBoundSolver solver;
  const auto res = solver.solve(model);
  ASSERT_EQ(res.status, ilp::MipStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
}

TEST(RecursivePartition, PartsSmallAndTopological) {
  const auto dataset = small_dataset(2025);
  const ComputeDag& dag = dataset[2];  // spmv_N25
  BipartitionOptions options;
  options.ilp_budget_ms = 200;
  const auto parts = recursive_acyclic_partition(dag, 60, options);
  EXPECT_GT(parts.size(), 1u);
  std::vector<int> part_of(dag.num_nodes(), -1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_LE(parts[i].size(), 60u);
    EXPECT_FALSE(parts[i].empty());
    total += parts[i].size();
    for (NodeId v : parts[i]) {
      EXPECT_EQ(part_of[v], -1) << "node in two parts";
      part_of[v] = static_cast<int>(i);
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(dag.num_nodes()));
  // Topological order of parts: cross edges only go forward.
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      EXPECT_LE(part_of[u], part_of[v]);
    }
  }
}

}  // namespace
}  // namespace mbsp
