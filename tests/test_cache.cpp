// Tests for eviction policies and the weighted cache simulator.
#include <gtest/gtest.h>

#include "src/cache/cache_sim.hpp"
#include "src/cache/policy.hpp"
#include "src/util/rng.hpp"

namespace mbsp {
namespace {

TEST(Clairvoyant, PicksFarthestNextUse) {
  ClairvoyantPolicy policy;
  std::vector<VictimInfo> candidates{{0, 5, 0}, {1, 9, 0}, {2, 7, 0}};
  EXPECT_EQ(policy.choose_victim(candidates), 1);
}

TEST(Clairvoyant, DeadValueWins) {
  ClairvoyantPolicy policy;
  std::vector<VictimInfo> candidates{{0, 5, 0}, {1, kNoNextUse, 0}};
  EXPECT_EQ(policy.choose_victim(candidates), 1);
}

TEST(Lru, PicksLeastRecentlyActive) {
  LruPolicy policy;
  std::vector<VictimInfo> candidates{{0, 5, 10}, {1, 5, 3}, {2, 5, 7}};
  EXPECT_EQ(policy.choose_victim(candidates), 1);
}

TEST(Lru, DeadValuesFirst) {
  LruPolicy policy;
  std::vector<VictimInfo> candidates{{0, 5, 1}, {1, kNoNextUse, 99}};
  EXPECT_EQ(policy.choose_victim(candidates), 1);
}

TEST(PolicyFactory, MakesBothKinds) {
  EXPECT_EQ(make_policy(PolicyKind::kClairvoyant)->name(), "clairvoyant");
  EXPECT_EQ(make_policy(PolicyKind::kLru)->name(), "lru");
}

TEST(CacheSim, HitsAndMisses) {
  const std::vector<int> trace{0, 1, 0, 1, 2, 0};
  const std::vector<double> weight{1, 1, 1};
  ClairvoyantPolicy policy;
  const auto res = simulate_cache(trace, weight, 2, policy);
  // 0 miss, 1 miss, 0 hit, 1 hit, 2 miss (evict 1: next use never),
  // 0 hit (clairvoyant keeps 0, whose next use is sooner).
  EXPECT_EQ(res.misses, 3u);
  EXPECT_EQ(res.hits, 3u);
}

TEST(CacheSim, LruClassicPattern) {
  // Cyclic pattern of 3 items through a 2-slot LRU thrashes. Our LRU
  // additionally auto-evicts dead values first (as the paper's
  // implementation does), which saves exactly the final access: after the
  // last use of item 0 it is dropped, so the last access of 2 hits.
  const std::vector<int> trace{0, 1, 2, 0, 1, 2};
  const std::vector<double> weight{1, 1, 1};
  LruPolicy policy;
  const auto res = simulate_cache(trace, weight, 2, policy);
  EXPECT_EQ(res.misses, 5u);
}

TEST(CacheSim, ClairvoyantBeatsLruOnCycle) {
  const std::vector<int> trace{0, 1, 2, 0, 1, 2, 0, 1, 2};
  const std::vector<double> weight{1, 1, 1};
  ClairvoyantPolicy cv;
  LruPolicy lru;
  EXPECT_LT(simulate_cache(trace, weight, 2, cv).misses,
            simulate_cache(trace, weight, 2, lru).misses);
}

TEST(CacheSim, WeightedEviction) {
  // Item 2 weighs 2: inserting it into a capacity-2 cache evicts both.
  const std::vector<int> trace{0, 1, 2, 0};
  const std::vector<double> weight{1, 1, 2};
  ClairvoyantPolicy policy;
  const auto res = simulate_cache(trace, weight, 2, policy);
  EXPECT_EQ(res.misses, 4u);
  EXPECT_DOUBLE_EQ(res.loaded_weight, 5.0);
}

// Property: clairvoyant is optimal for unit weights — compare against LRU
// and FIFO-like behaviour on random traces.
TEST(CacheSim, BeladyNeverWorseThanLruRandomTraces) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> trace;
    const int items = 4 + static_cast<int>(rng.index(5));
    for (int i = 0; i < 60; ++i) {
      trace.push_back(static_cast<int>(rng.index(items)));
    }
    const std::vector<double> weight(items, 1.0);
    const std::size_t capacity = 2 + rng.index(3);
    ClairvoyantPolicy cv;
    LruPolicy lru;
    EXPECT_LE(simulate_cache(trace, weight, capacity, cv).misses,
              simulate_cache(trace, weight, capacity, lru).misses)
        << "trial " << trial;
  }
}

TEST(CacheSim, MinMissesOracleMatches) {
  const std::vector<int> trace{0, 1, 2, 0, 1, 2};
  EXPECT_EQ(min_misses_unit_weights(trace, 2), 4u);
  EXPECT_EQ(min_misses_unit_weights(trace, 3), 3u);
}

}  // namespace
}  // namespace mbsp
