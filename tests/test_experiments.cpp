// Shape assertions for the paper's experimental claims, at reduced budget:
//  * the holistic scheduler never loses to its two-stage warm start and
//    wins in aggregate (geometric mean < 1) on the tiny dataset;
//  * r = r0 leaves little room for improvement compared to r = 3 r0;
//  * the Cilk+LRU baseline is weaker than BSPg+clairvoyant in aggregate;
//  * the zipper construction's two-stage/holistic gap grows with d.
#include <gtest/gtest.h>

#include "src/graph/gadgets.hpp"
#include "src/graph/generators.hpp"
#include "src/holistic/scheduler.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/util/stats.hpp"

namespace mbsp {
namespace {

constexpr double kBudgetMs = 400;  // keep the suite fast; benches go longer

TEST(Experiments, HolisticBeatsBaselineInAggregate) {
  auto dataset = tiny_dataset(2025);
  std::vector<double> ratios;
  int strict_wins = 0;
  for (std::size_t i = 0; i < dataset.size(); i += 2) {  // subsample for time
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(4, 3 * r0, 1, 10)};
    HolisticOptions options;
    options.budget_ms = kBudgetMs;
    const HolisticOutcome out = holistic_schedule(inst, options);
    EXPECT_LE(out.cost, out.baseline_cost + 1e-9) << inst.name();
    ratios.push_back(out.cost / out.baseline_cost);
    strict_wins += out.cost < out.baseline_cost - 1e-9;
  }
  EXPECT_LT(geometric_mean(ratios), 0.999);
  EXPECT_GE(strict_wins, 2);
}

TEST(Experiments, MemoryBoundSweepStaysValidAndImproving) {
  // Note: the paper observes almost no ILP improvement at r = r0. Our LNS
  // substitute behaves differently there (the greedy warm start degrades
  // faster than the search space shrinks — see EXPERIMENTS.md), so this
  // test asserts only the invariants that hold for any anytime improver:
  // valid output and no regression, at every memory bound.
  auto dataset = tiny_dataset(2025);
  for (int i : {3, 9, 12}) {  // spmv / exp / kNN families
    for (double factor : {1.0, 3.0, 5.0}) {
      ComputeDag dag = dataset[i];
      const double r0 = min_memory_r0(dag);
      const MbspInstance inst{std::move(dag),
                              Architecture::make(4, factor * r0, 1, 10)};
      HolisticOptions options;
      options.budget_ms = kBudgetMs / 2;
      const HolisticOutcome out = holistic_schedule(inst, options);
      EXPECT_LE(out.cost, out.baseline_cost + 1e-9)
          << inst.name() << " factor " << factor;
      const auto valid = validate(inst, out.schedule);
      EXPECT_TRUE(valid.ok) << inst.name() << ": " << valid.error;
    }
  }
}

TEST(Experiments, CilkLruWeakerThanMainBaseline) {
  auto dataset = tiny_dataset(2025);
  std::vector<double> ratios;
  for (int i : {0, 3, 6, 9, 12}) {
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(4, 3 * r0, 1, 10)};
    const double main_cost = sync_cost(
        inst, run_baseline(inst, BaselineKind::kGreedyClairvoyant).mbsp);
    const double weak_cost =
        sync_cost(inst, run_baseline(inst, BaselineKind::kCilkLru).mbsp);
    ratios.push_back(main_cost / weak_cost);
  }
  EXPECT_LT(geometric_mean(ratios), 1.05);
}

TEST(Experiments, ZipperGapGrowsWithD) {
  // Theorem 4.1: the two-stage approach pays ~d*m*g in I/O on the zipper
  // while the holistic assignment pays ~(2m + d)*g. We verify the *ratio*
  // grows with d using the hand-built schedules from the proof.
  double previous_ratio = 0;
  for (int d : {3, 6, 9}) {
    const int m = 2 * d;
    const ZipperGadget z = zipper_gadget(d, m);
    ComputeDag dag = z.dag;
    const MbspInstance inst{std::move(dag),
                            Architecture::make(2, z.d + 2, 1, 0)};
    // Two-stage: BSP-optimal chain split (one chain per processor), then
    // clairvoyant eviction — must thrash between H1 and H2.
    ComputePlan chain_split;
    chain_split.num_procs = 2;
    chain_split.seq.resize(2);
    for (int i = 0; i < m; ++i) {
      chain_split.seq[0].push_back({z.v[i], 0});
      chain_split.seq[1].push_back({z.u[i], 0});
    }
    ASSERT_TRUE(validate_plan(inst.dag, chain_split).ok);
    const MbspSchedule two_stage =
        complete_memory(inst, chain_split, PolicyKind::kClairvoyant);
    validate_or_die(inst, two_stage);
    // Holistic: children of H1 on p0, children of H2 on p1, exchanging
    // chain values through slow memory every superstep.
    ComputePlan holistic;
    holistic.num_procs = 2;
    holistic.seq.resize(2);
    for (int i = 0; i < m; ++i) {
      // odd i (1-based i+1): u_{i+1} child of H1 -> p0, v_{i+1} -> p1.
      if (i % 2 == 0) {
        holistic.seq[0].push_back({z.u[i], i});
        holistic.seq[1].push_back({z.v[i], i});
      } else {
        holistic.seq[0].push_back({z.v[i], i});
        holistic.seq[1].push_back({z.u[i], i});
      }
    }
    ASSERT_TRUE(validate_plan(inst.dag, holistic).ok);
    const MbspSchedule holistic_sched =
        complete_memory(inst, holistic, PolicyKind::kClairvoyant);
    validate_or_die(inst, holistic_sched);
    const double ratio =
        sync_cost(inst, two_stage) / sync_cost(inst, holistic_sched);
    EXPECT_GT(ratio, previous_ratio) << "d = " << d;
    EXPECT_GT(ratio, d / 8.0) << "gap should be ~linear in d";
    previous_ratio = ratio;
  }
}

TEST(Experiments, AsyncCostAtMostSyncOnDataset) {
  auto dataset = tiny_dataset(2025);
  for (int i : {1, 7, 13}) {
    ComputeDag dag = dataset[i];
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(4, 3 * r0, 1, 0)};
    const TwoStageResult res =
        run_baseline(inst, BaselineKind::kGreedyClairvoyant);
    EXPECT_LE(async_cost(inst, res.mbsp), sync_cost(inst, res.mbsp) + 1e-9)
        << inst.name();
  }
}

}  // namespace
}  // namespace mbsp
