// Tests for the runner layer: the scheduler registry (completeness,
// lookup, replacement), validity of every registered scheduler's output on
// a small instance grid, and the batch runner (cell ordering, unsupported
// cells, and bitwise-identical result tables with 1 vs N threads).
#include <gtest/gtest.h>

#include <memory>

#include "src/graph/generators.hpp"
#include "src/model/validate.hpp"
#include "src/runner/batch_runner.hpp"
#include "src/runner/scheduler_registry.hpp"

namespace mbsp {
namespace {

/// Small grid instances: quick enough for exhaustive scheduler coverage.
MbspInstance grid_instance(int P, double r_factor, std::string name) {
  Rng rng(17);
  ComputeDag dag = random_layered_dag(14, 4, rng);
  dag.set_name(std::move(name));
  const double r0 = min_memory_r0(dag);
  return {std::move(dag), Architecture::make(P, r_factor * r0, 1, 5)};
}

SchedulerOptions fast_options() {
  SchedulerOptions options;
  options.budget_ms = 60;
  return options;
}

TEST(Registry, ListsAllBuiltinSchedulers) {
  const std::vector<std::string> names = SchedulerRegistry::global().names();
  for (const char* expected :
       {"bspg+clairvoyant", "bspg+lru", "cilk+lru", "ilp-bsp+clairvoyant",
        "dfs+clairvoyant", "lns", "lns-portfolio", "holistic",
        "divide-conquer", "sharded", "exact-pebbler", "ilp", "repair"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from registry";
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(Registry, FindAndAt) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  EXPECT_TRUE(registry.contains("holistic"));
  EXPECT_FALSE(registry.contains("no-such-scheduler"));
  EXPECT_EQ(registry.find("no-such-scheduler"), nullptr);
  EXPECT_EQ(registry.at("lns").name(), "lns");
  EXPECT_THROW(registry.at("no-such-scheduler"), std::out_of_range);
}

TEST(Registry, AddReplacesSameName) {
  class Dummy final : public MbspScheduler {
   public:
    explicit Dummy(int tag) : tag_(tag) {}
    std::string name() const override { return "dummy"; }
    ScheduleResult run(const MbspInstance&,
                       const SchedulerOptions&) const override {
      ScheduleResult result;
      result.cost = tag_;
      return result;
    }

   private:
    int tag_;
  };
  SchedulerRegistry registry;
  registry.add(std::make_unique<Dummy>(1));
  registry.add(std::make_unique<Dummy>(2));
  EXPECT_EQ(registry.size(), 1u);
  const MbspInstance inst = grid_instance(1, 3.0, "g");
  EXPECT_DOUBLE_EQ(registry.at("dummy").run(inst, {}).cost, 2.0);
}

TEST(Registry, EverySchedulerProducesValidSchedules) {
  // P = 1 so the exact pebbler participates; a multiprocessor point too.
  const std::vector<MbspInstance> grid = [] {
    std::vector<MbspInstance> instances;
    instances.push_back(grid_instance(1, 2.0, "p1_tight"));
    instances.push_back(grid_instance(2, 3.0, "p2_roomy"));
    return instances;
  }();
  const SchedulerOptions options = fast_options();
  for (const std::string& name : SchedulerRegistry::global().names()) {
    const MbspScheduler& scheduler = SchedulerRegistry::global().at(name);
    for (const MbspInstance& inst : grid) {
      if (!scheduler.supports(inst)) continue;
      const ScheduleResult result = scheduler.run(inst, options);
      EXPECT_EQ(result.scheduler, name);
      const ValidationResult valid = validate(inst, result.schedule);
      EXPECT_TRUE(valid.ok)
          << name << " on " << inst.name() << ": " << valid.error;
      EXPECT_GT(result.cost, 0) << name;
      EXPECT_GT(result.baseline_cost, 0) << name;
      EXPECT_GT(result.supersteps, 0) << name;
      EXPECT_GE(result.io_volume, 0) << name;
    }
  }
}

TEST(Registry, ImprovingSchedulersNeverLoseToWarmStart) {
  const MbspInstance inst = grid_instance(2, 3.0, "improve");
  const SchedulerOptions options = fast_options();
  for (const char* name : {"lns", "holistic", "ilp"}) {
    const ScheduleResult result =
        SchedulerRegistry::global().at(name).run(inst, options);
    EXPECT_LE(result.cost, result.baseline_cost + 1e-9) << name;
  }
}

TEST(BatchRunner, GridOrderIsInstanceMajor) {
  std::vector<MbspInstance> instances;
  instances.push_back(grid_instance(2, 3.0, "a"));
  instances.push_back(grid_instance(2, 3.0, "b"));
  BatchOptions batch;
  batch.scheduler = fast_options();
  const std::vector<BatchCell> cells = BatchRunner(batch).run_grid(
      instances, {"bspg+clairvoyant", "cilk+lru"});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].instance, "a");
  EXPECT_EQ(cells[0].scheduler, "bspg+clairvoyant");
  EXPECT_EQ(cells[1].instance, "a");
  EXPECT_EQ(cells[1].scheduler, "cilk+lru");
  EXPECT_EQ(cells[2].instance, "b");
  for (const BatchCell& cell : cells) EXPECT_TRUE(cell.ok) << cell.error;
  EXPECT_EQ(find_cell(cells, "b", "cilk+lru"), &cells[3]);
  EXPECT_EQ(find_cell(cells, "c", "cilk+lru"), nullptr);
}

TEST(BatchRunner, UnsupportedCellsAreSkippedNotFatal) {
  std::vector<MbspInstance> instances;
  instances.push_back(grid_instance(2, 3.0, "p2"));  // pebbler needs P = 1
  BatchOptions batch;
  batch.scheduler = fast_options();
  const std::vector<BatchCell> cells =
      BatchRunner(batch).run_grid(instances, {"exact-pebbler",
                                              "bspg+clairvoyant"});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_FALSE(cells[0].ok);
  EXPECT_EQ(cells[0].error, "unsupported instance");
  EXPECT_TRUE(cells[1].ok);
  // The table renders the failed cell without dying.
  EXPECT_NE(batch_table(cells).to_csv().find("unsupported"),
            std::string::npos);
}

TEST(BatchRunner, UnknownSchedulerThrowsBeforeRunning) {
  std::vector<MbspInstance> instances;
  instances.push_back(grid_instance(1, 3.0, "x"));
  BatchRunner runner;
  EXPECT_THROW(runner.run_grid(instances, {"no-such-scheduler"}),
               std::out_of_range);
}

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  // The acceptance bar of the runner layer: N-thread batch tables are
  // bitwise identical to the 1-thread run (solvers stay single-threaded
  // and seeded; cells are indexed, not raced).
  std::vector<MbspInstance> instances;
  instances.push_back(grid_instance(1, 2.0, "d1"));
  instances.push_back(grid_instance(2, 3.0, "d2"));
  instances.push_back(grid_instance(4, 3.0, "d3"));
  const std::vector<std::string> schedulers{
      "bspg+clairvoyant", "cilk+lru", "lns", "holistic", "exact-pebbler"};

  const auto run_with_threads = [&](std::size_t threads) {
    BatchOptions batch;
    batch.threads = threads;
    // No wall-clock deadline + a finite LNS iteration cap: the anytime
    // search becomes machine-speed independent, so thread count can't
    // change any cell.
    batch.scheduler.budget_ms = 0;
    batch.scheduler.max_iterations = 4000;
    return BatchRunner(batch).run_grid(instances, schedulers);
  };
  const std::vector<BatchCell> serial = run_with_threads(1);
  const std::vector<BatchCell> parallel = run_with_threads(8);

  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(batch_table(serial).to_csv(), batch_table(parallel).to_csv());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ok, parallel[i].ok);
    EXPECT_EQ(serial[i].result.cost, parallel[i].result.cost) << i;
    EXPECT_EQ(serial[i].result.io_volume, parallel[i].result.io_volume) << i;
    EXPECT_EQ(serial[i].result.supersteps, parallel[i].result.supersteps);
  }
}

TEST(TrivialPlan, CoversAllNonSourcesOnProcessorZero) {
  const MbspInstance inst = grid_instance(2, 3.0, "trivial");
  const ComputePlan plan = trivial_plan(inst);
  ASSERT_EQ(plan.num_procs, 2);
  EXPECT_TRUE(plan.seq[1].empty());
  EXPECT_TRUE(validate_plan(inst.dag, plan).ok);
}

}  // namespace
}  // namespace mbsp
