// Unit tests for the DAG container and topological utilities.
#include <gtest/gtest.h>

#include "src/graph/dag.hpp"
#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/topology.hpp"

namespace mbsp {
namespace {

ComputeDag diamond() {
  // 0 -> {1, 2} -> 3
  ComputeDag dag("diamond");
  for (int i = 0; i < 4; ++i) dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  return dag;
}

TEST(Dag, BasicStructure) {
  const ComputeDag dag = diamond();
  EXPECT_EQ(dag.num_nodes(), 4);
  EXPECT_EQ(dag.num_edges(), 4u);
  EXPECT_TRUE(dag.is_source(0));
  EXPECT_TRUE(dag.is_sink(3));
  EXPECT_EQ(dag.parents(3).size(), 2u);
  EXPECT_EQ(dag.children(0).size(), 2u);
  EXPECT_EQ(dag.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(dag.sinks(), std::vector<NodeId>{3});
}

TEST(Dag, DuplicateEdgeIgnored) {
  ComputeDag dag;
  dag.add_node();
  dag.add_node();
  dag.add_edge(0, 1);
  dag.add_edge(0, 1);
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(Dag, DuplicateEdgeLeavesAdjacencyUntouched) {
  // Idempotence must hold on both adjacency sides, not just the counter.
  ComputeDag dag;
  for (int i = 0; i < 3; ++i) dag.add_node();
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  dag.add_edge(0, 2);  // duplicate, interleaved with distinct edges
  dag.add_edge(0, 2);
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_EQ(dag.children(0).size(), 1u);
  EXPECT_EQ(dag.parents(2).size(), 2u);
  EXPECT_EQ(dag.children(1).size(), 1u);
}

TEST(Dag, NumEdgesAccountsEveryDistinctEdge) {
  // num_edges() must track distinct insertions exactly under a mix of
  // fresh and repeated add_edge calls.
  ComputeDag dag;
  constexpr int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) dag.add_node();
  std::size_t distinct = 0;
  for (int round = 0; round < 3; ++round) {  // re-add the full edge set
    for (int u = 0; u < kNodes; ++u) {
      for (int v = u + 1; v < kNodes; ++v) {
        if ((u + v) % 2 == 0) continue;
        dag.add_edge(u, v);
        if (round == 0) ++distinct;
      }
    }
  }
  EXPECT_EQ(dag.num_edges(), distinct);
}

TEST(Dag, Weights) {
  ComputeDag dag;
  const NodeId v = dag.add_node(2.5, 3.5);
  EXPECT_DOUBLE_EQ(dag.omega(v), 2.5);
  EXPECT_DOUBLE_EQ(dag.mu(v), 3.5);
  dag.set_omega(v, 1);
  dag.set_mu(v, 2);
  EXPECT_DOUBLE_EQ(dag.total_omega(), 1);
  EXPECT_DOUBLE_EQ(dag.total_mu(), 2);
}

TEST(Dag, RandomMemoryWeightsInRange) {
  ComputeDag dag;
  for (int i = 0; i < 100; ++i) dag.add_node();
  Rng rng(3);
  assign_random_memory_weights(dag, rng, 1, 5);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_GE(dag.mu(v), 1);
    EXPECT_LE(dag.mu(v), 5);
  }
}

TEST(Dag, DotOutputContainsNodes) {
  const std::string dot = diamond().to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Topology, TopologicalOrderRespectsEdges) {
  const ComputeDag dag = diamond();
  const auto order = topological_order(dag);
  ASSERT_EQ(order.size(), 4u);
  const auto pos = order_positions(order, dag.num_nodes());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

TEST(Topology, AcyclicCheck) {
  EXPECT_TRUE(is_acyclic(diamond()));
  ComputeDag empty;
  EXPECT_TRUE(is_acyclic(empty));
}

TEST(Topology, Levels) {
  const auto levels = longest_path_levels(diamond());
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
}

TEST(Topology, CriticalPathOmega) {
  ComputeDag dag;
  dag.add_node(1, 1);
  dag.add_node(5, 1);
  dag.add_node(2, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(critical_path_omega(dag), 8.0);
}

TEST(Topology, InducedSubdag) {
  const ComputeDag dag = diamond();
  std::vector<NodeId> local;
  const ComputeDag sub = induced_subdag(dag, {0, 1, 3}, &local);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0->1 and 1->3 survive
  EXPECT_EQ(local[2], kInvalidNode);
}

TEST(Topology, QuotientGraph) {
  const ComputeDag dag = diamond();
  const std::vector<int> part{0, 0, 1, 1};
  const ComputeDag q = quotient_graph(dag, part, 2);
  EXPECT_EQ(q.num_nodes(), 2);
  EXPECT_EQ(q.num_edges(), 1u);  // 0 -> 1 (edges 0->2 and 1->3 merge)
  EXPECT_DOUBLE_EQ(q.omega(0), 2.0);
  EXPECT_TRUE(is_acyclic(q));
}

TEST(Topology, CutEdges) {
  const ComputeDag dag = diamond();
  EXPECT_EQ(cut_edges(dag, {0, 0, 1, 1}), 2u);
  EXPECT_EQ(cut_edges(dag, {0, 0, 0, 0}), 0u);
}

TEST(DagIo, RoundTripPreservesEverything) {
  Rng rng(21);
  ComputeDag original = spmv_dag(7, 3, rng, "roundtrip demo");
  assign_random_memory_weights(original, rng);
  original.set_omega(2, 1.25e-3);  // exercise double round-tripping
  std::string error;
  const auto parsed = dag_from_text(dag_to_text(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name(), original.name());
  ASSERT_EQ(parsed->num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed->num_edges(), original.num_edges());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(parsed->omega(v), original.omega(v));
    EXPECT_DOUBLE_EQ(parsed->mu(v), original.mu(v));
    EXPECT_EQ(parsed->children(v), original.children(v));
  }
}

TEST(DagIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(dag_from_text("garbage", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 1\n1 1\nedges 1\n0 5\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("edge"), std::string::npos);
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 2\n1 1\n1 1\nedges 2\n"
                    "0 1\n0 1\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(DagIo, FileRoundTrip) {
  ComputeDag dag("file demo");
  dag.add_node(1, 2);
  dag.add_node(3, 4);
  dag.add_edge(0, 1);
  const std::string path = ::testing::TempDir() + "/mbsp_dag_io_test.dag";
  ASSERT_TRUE(write_dag_file(dag, path));
  std::string error;
  const auto loaded = read_dag_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_nodes(), 2);
  EXPECT_DOUBLE_EQ(loaded->mu(1), 4);
  EXPECT_FALSE(read_dag_file(path + ".missing").has_value());
}

TEST(DagIo, ErrorsNameTheOffendingLine) {
  std::string error;
  // Truncated node list: 3 declared, only 1 weight line present.
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 3\n1 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("after line 4"), std::string::npos) << error;
  EXPECT_NE(error.find("3 node weight lines, got 1"), std::string::npos)
      << error;
  // Bad node weight line: line 4 is not "<omega> <mu>".
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 1\noops\nedges 0\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  // Edge id out of range, naming line 6.
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 2\n1 1\n1 1\nedges 1\n0 5\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("line 7"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  // Truncated edge list.
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 2\n1 1\n1 1\nedges 2\n0 1\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("2 edge lines, got 1"), std::string::npos) << error;
  // Self-loop.
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 2\n1 1\n1 1\nedges 1\n1 1\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("self-loop"), std::string::npos) << error;
  // Trailing tokens on node and edge lines are rejected, not ignored.
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 1\n1 1 bogus\nedges 0\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("bad node weight"), std::string::npos) << error;
  EXPECT_FALSE(
      dag_from_text(
          "mbsp-dag v1\nname x\nnodes 3\n1 1\n1 1\n1 1\nedges 2\n0 1 0 2\n",
          &error)
          .has_value());
  EXPECT_NE(error.find("bad edge line"), std::string::npos) << error;
}

TEST(DagIo, BinaryRoundTripPreservesEverything) {
  Rng rng(33);
  ComputeDag original = spmv_dag(6, 3, rng, "binary roundtrip");
  assign_random_memory_weights(original, rng);
  original.set_omega(1, 6.02214076e23);
  const std::string bytes = dag_to_binary(original);
  ASSERT_TRUE(is_binary_dag(bytes));
  std::string error;
  const auto parsed = dag_from_binary(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(dag_to_text(*parsed), dag_to_text(original));
  EXPECT_EQ(dag_canonical_hash(*parsed), dag_canonical_hash(original));
}

TEST(DagIo, TextBinaryTextPropertyRoundTrip) {
  // Property: any generated DAG survives text -> binary -> text bitwise
  // identically, and the canonical hash is stable at every hop.
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    ComputeDag dag = random_layered_dag(30 + trial * 7, 3 + trial % 4, rng);
    assign_random_memory_weights(dag, rng);
    dag.set_name("prop " + std::to_string(trial));
    const std::uint64_t hash = dag_canonical_hash(dag);
    const std::string text = dag_to_text(dag);
    std::string error;
    const auto from_text = dag_from_text(text, &error);
    ASSERT_TRUE(from_text.has_value()) << error;
    EXPECT_EQ(dag_canonical_hash(*from_text), hash);
    const std::string bytes = dag_to_binary(*from_text);
    const auto from_binary = dag_from_binary(bytes, &error);
    ASSERT_TRUE(from_binary.has_value()) << error;
    EXPECT_EQ(dag_canonical_hash(*from_binary), hash);
    EXPECT_EQ(dag_to_text(*from_binary), text);
    // Auto-detection picks the right parser for both encodings.
    EXPECT_TRUE(dag_from_bytes(bytes).has_value());
    EXPECT_TRUE(dag_from_bytes(text).has_value());
  }
}

TEST(DagIo, CanonicalHashIgnoresEdgeInsertionOrder) {
  ComputeDag a("same"), b("same");
  for (int i = 0; i < 3; ++i) a.add_node(1, 2);
  for (int i = 0; i < 3; ++i) b.add_node(1, 2);
  a.add_edge(0, 1);
  a.add_edge(0, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  EXPECT_EQ(dag_canonical_hash(a), dag_canonical_hash(b));
  ComputeDag c("different");
  for (int i = 0; i < 3; ++i) c.add_node(1, 2);
  c.add_edge(0, 1);
  c.add_edge(0, 2);
  EXPECT_NE(dag_canonical_hash(a), dag_canonical_hash(c));
}

TEST(DagIo, CorruptedBinaryRejected) {
  ComputeDag dag("corrupt me");
  dag.add_node(1, 2);
  dag.add_node(3, 4);
  dag.add_edge(0, 1);
  std::string bytes = dag_to_binary(dag);
  std::string error;
  // Flip one weight byte: the stored canonical hash no longer matches.
  std::string flipped = bytes;
  flipped[14] = static_cast<char>(flipped[14] ^ 0x40);
  EXPECT_FALSE(dag_from_binary(flipped, &error).has_value());
  // Truncation is caught by the bounds-checked reader.
  EXPECT_FALSE(
      dag_from_binary(bytes.substr(0, bytes.size() - 3), &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  // Not a binary DAG at all.
  EXPECT_FALSE(dag_from_binary("garbage", &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(DagIo, BinaryFileRoundTrip) {
  Rng rng(17);
  ComputeDag dag = spmv_dag(5, 3, rng, "binary file demo");
  const std::string path = ::testing::TempDir() + "/mbsp_dag_io_test.bin";
  ASSERT_TRUE(write_dag_file(dag, path, /*binary=*/true));
  std::string error;
  const auto loaded = read_dag_file(path, &error);  // auto-detected
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(dag_to_text(*loaded), dag_to_text(dag));
}

TEST(Topology, RandomLayeredDagAcyclic) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const ComputeDag dag = random_layered_dag(60, 5, rng);
    EXPECT_EQ(dag.num_nodes(), 60);
    EXPECT_TRUE(is_acyclic(dag));
  }
}

}  // namespace
}  // namespace mbsp
