// Unit tests for the DAG container and topological utilities.
#include <gtest/gtest.h>

#include "src/graph/dag.hpp"
#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/topology.hpp"

namespace mbsp {
namespace {

ComputeDag diamond() {
  // 0 -> {1, 2} -> 3
  ComputeDag dag("diamond");
  for (int i = 0; i < 4; ++i) dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  return dag;
}

TEST(Dag, BasicStructure) {
  const ComputeDag dag = diamond();
  EXPECT_EQ(dag.num_nodes(), 4);
  EXPECT_EQ(dag.num_edges(), 4u);
  EXPECT_TRUE(dag.is_source(0));
  EXPECT_TRUE(dag.is_sink(3));
  EXPECT_EQ(dag.parents(3).size(), 2u);
  EXPECT_EQ(dag.children(0).size(), 2u);
  EXPECT_EQ(dag.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(dag.sinks(), std::vector<NodeId>{3});
}

TEST(Dag, DuplicateEdgeIgnored) {
  ComputeDag dag;
  dag.add_node();
  dag.add_node();
  dag.add_edge(0, 1);
  dag.add_edge(0, 1);
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(Dag, DuplicateEdgeLeavesAdjacencyUntouched) {
  // Idempotence must hold on both adjacency sides, not just the counter.
  ComputeDag dag;
  for (int i = 0; i < 3; ++i) dag.add_node();
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  dag.add_edge(0, 2);  // duplicate, interleaved with distinct edges
  dag.add_edge(0, 2);
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_EQ(dag.children(0).size(), 1u);
  EXPECT_EQ(dag.parents(2).size(), 2u);
  EXPECT_EQ(dag.children(1).size(), 1u);
}

TEST(Dag, NumEdgesAccountsEveryDistinctEdge) {
  // num_edges() must track distinct insertions exactly under a mix of
  // fresh and repeated add_edge calls.
  ComputeDag dag;
  constexpr int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) dag.add_node();
  std::size_t distinct = 0;
  for (int round = 0; round < 3; ++round) {  // re-add the full edge set
    for (int u = 0; u < kNodes; ++u) {
      for (int v = u + 1; v < kNodes; ++v) {
        if ((u + v) % 2 == 0) continue;
        dag.add_edge(u, v);
        if (round == 0) ++distinct;
      }
    }
  }
  EXPECT_EQ(dag.num_edges(), distinct);
}

TEST(Dag, Weights) {
  ComputeDag dag;
  const NodeId v = dag.add_node(2.5, 3.5);
  EXPECT_DOUBLE_EQ(dag.omega(v), 2.5);
  EXPECT_DOUBLE_EQ(dag.mu(v), 3.5);
  dag.set_omega(v, 1);
  dag.set_mu(v, 2);
  EXPECT_DOUBLE_EQ(dag.total_omega(), 1);
  EXPECT_DOUBLE_EQ(dag.total_mu(), 2);
}

TEST(Dag, RandomMemoryWeightsInRange) {
  ComputeDag dag;
  for (int i = 0; i < 100; ++i) dag.add_node();
  Rng rng(3);
  assign_random_memory_weights(dag, rng, 1, 5);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_GE(dag.mu(v), 1);
    EXPECT_LE(dag.mu(v), 5);
  }
}

TEST(Dag, DotOutputContainsNodes) {
  const std::string dot = diamond().to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Topology, TopologicalOrderRespectsEdges) {
  const ComputeDag dag = diamond();
  const auto order = topological_order(dag);
  ASSERT_EQ(order.size(), 4u);
  const auto pos = order_positions(order, dag.num_nodes());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

TEST(Topology, AcyclicCheck) {
  EXPECT_TRUE(is_acyclic(diamond()));
  ComputeDag empty;
  EXPECT_TRUE(is_acyclic(empty));
}

TEST(Topology, Levels) {
  const auto levels = longest_path_levels(diamond());
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
}

TEST(Topology, CriticalPathOmega) {
  ComputeDag dag;
  dag.add_node(1, 1);
  dag.add_node(5, 1);
  dag.add_node(2, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(critical_path_omega(dag), 8.0);
}

TEST(Topology, InducedSubdag) {
  const ComputeDag dag = diamond();
  std::vector<NodeId> local;
  const ComputeDag sub = induced_subdag(dag, {0, 1, 3}, &local);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0->1 and 1->3 survive
  EXPECT_EQ(local[2], kInvalidNode);
}

TEST(Topology, QuotientGraph) {
  const ComputeDag dag = diamond();
  const std::vector<int> part{0, 0, 1, 1};
  const ComputeDag q = quotient_graph(dag, part, 2);
  EXPECT_EQ(q.num_nodes(), 2);
  EXPECT_EQ(q.num_edges(), 1u);  // 0 -> 1 (edges 0->2 and 1->3 merge)
  EXPECT_DOUBLE_EQ(q.omega(0), 2.0);
  EXPECT_TRUE(is_acyclic(q));
}

TEST(Topology, CutEdges) {
  const ComputeDag dag = diamond();
  EXPECT_EQ(cut_edges(dag, {0, 0, 1, 1}), 2u);
  EXPECT_EQ(cut_edges(dag, {0, 0, 0, 0}), 0u);
}

TEST(DagIo, RoundTripPreservesEverything) {
  Rng rng(21);
  ComputeDag original = spmv_dag(7, 3, rng, "roundtrip demo");
  assign_random_memory_weights(original, rng);
  original.set_omega(2, 1.25e-3);  // exercise double round-tripping
  std::string error;
  const auto parsed = dag_from_text(dag_to_text(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name(), original.name());
  ASSERT_EQ(parsed->num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed->num_edges(), original.num_edges());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(parsed->omega(v), original.omega(v));
    EXPECT_DOUBLE_EQ(parsed->mu(v), original.mu(v));
    EXPECT_EQ(parsed->children(v), original.children(v));
  }
}

TEST(DagIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(dag_from_text("garbage", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 1\n1 1\nedges 1\n0 5\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("edge"), std::string::npos);
  EXPECT_FALSE(
      dag_from_text("mbsp-dag v1\nname x\nnodes 2\n1 1\n1 1\nedges 2\n"
                    "0 1\n0 1\n",
                    &error)
          .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(DagIo, FileRoundTrip) {
  ComputeDag dag("file demo");
  dag.add_node(1, 2);
  dag.add_node(3, 4);
  dag.add_edge(0, 1);
  const std::string path = ::testing::TempDir() + "/mbsp_dag_io_test.dag";
  ASSERT_TRUE(write_dag_file(dag, path));
  std::string error;
  const auto loaded = read_dag_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_nodes(), 2);
  EXPECT_DOUBLE_EQ(loaded->mu(1), 4);
  EXPECT_FALSE(read_dag_file(path + ".missing").has_value());
}

TEST(Topology, RandomLayeredDagAcyclic) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const ComputeDag dag = random_layered_dag(60, 5, rng);
    EXPECT_EQ(dag.num_nodes(), 60);
    EXPECT_TRUE(is_acyclic(dag));
  }
}

}  // namespace
}  // namespace mbsp
