// Differential oracle tests for the incremental evaluation engine:
// randomized move sequences over several workload families, asserting
// after every apply AND every undo that the incremental cost equals the
// full evaluator's (evaluate_plan -> complete_memory -> sync_cost)
// bitwise, and that improve_plan returns results identical to the
// preserved copy-and-reevaluate reference loop.
#include <gtest/gtest.h>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/generators.hpp"
#include "src/holistic/incremental_eval.hpp"
#include "src/holistic/lns.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

MbspInstance workload_instance(const std::string& spec, int P = 4,
                               double r_factor = 3, double g = 1,
                               double L = 10) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(spec, 2025, &error);
  EXPECT_TRUE(dag.has_value()) << spec << ": " << error;
  const double r0 = min_memory_r0(*dag);
  return {std::move(*dag), Architecture::make(P, r_factor * r0, g, L)};
}

ComputePlan warm_plan(const MbspInstance& inst) {
  return run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
}

// The >= 5 workload families the differential harness runs over.
const char* kFamilies[] = {
    "stencil2d:nx=5,ny=5,steps=2",
    "fft:n=16",
    "lu:blocks=3",
    "wavefront:nx=6,ny=6",
    "mapreduce:maps=8,reducers=3",
};

/// Runs `iterations` random LNS-style moves through the evaluator,
/// asserting incremental == full cost after every apply and every undo.
void differential_run(const MbspInstance& inst, const LnsOptions& options,
                      long iterations, std::uint64_t seed) {
  const ComputePlan initial = warm_plan(inst);
  ASSERT_TRUE(has_dense_supersteps(initial));
  ASSERT_TRUE(validate_plan(inst.dag, initial).ok);

  IncrementalEvaluator eval(inst, options);
  const double attach_cost = eval.attach(initial);
  EXPECT_EQ(attach_cost, evaluate_plan(inst, initial, options))
      << inst.name() << ": attach cost differs from the oracle";

  // Drive the evaluator with the same move generators improve_plan uses,
  // via improve_plan itself being compared against the reference below;
  // here we additionally exercise explicit apply/undo cycles with raw
  // ops so undo is covered even for rejected/invalid candidates.
  Rng rng(seed);
  long applied = 0, undone = 0;
  for (long it = 0; it < iterations; ++it) {
    const ComputePlan before = eval.plan();
    eval.begin_move();
    // Random primitive edit: move one occurrence somewhere else (erase +
    // insert), the core shape of every non-structural move.
    const std::size_t total = before.total_computes();
    if (total == 0) break;
    std::size_t pick = rng.index(total);
    int p = 0;
    for (; p < before.num_procs; ++p) {
      if (pick < before.seq[p].size()) break;
      pick -= before.seq[p].size();
    }
    const PlannedCompute pc = before.seq[p][pick];
    PlanDeltaOp erase;
    erase.kind = PlanDeltaOpKind::kErase;
    erase.proc = p;
    erase.pos = pick;
    erase.pc = pc;
    eval.apply_op(erase);
    const int q = static_cast<int>(rng.index(
        static_cast<std::size_t>(before.num_procs)));
    // Insert at a random position within the same superstep block on q.
    const auto& qseq = eval.plan().seq[q];
    const auto lo = std::lower_bound(
        qseq.begin(), qseq.end(), pc.superstep,
        [](const PlannedCompute& a, int s) { return a.superstep < s; });
    const auto hi = std::upper_bound(
        qseq.begin(), qseq.end(), pc.superstep,
        [](int s, const PlannedCompute& a) { return s < a.superstep; });
    const std::size_t at =
        static_cast<std::size_t>(lo - qseq.begin()) +
        rng.index(static_cast<std::size_t>(hi - lo) + 1);
    PlanDeltaOp insert;
    insert.kind = PlanDeltaOpKind::kInsert;
    insert.proc = q;
    insert.pos = at;
    insert.pc = pc;
    eval.apply_op(insert);

    const auto out = eval.finish_move();
    if (out.valid) {
      // Incremental cost must equal the oracle on the applied plan.
      const double full = evaluate_plan(inst, eval.plan(), options);
      ASSERT_EQ(out.cost, full)
          << inst.name() << " iteration " << it
          << ": incremental cost diverged from evaluate_plan";
      ASSERT_TRUE(validate_plan(inst.dag, eval.plan()).ok);
    }
    if (out.valid && rng.chance(0.5)) {
      eval.commit();
      ++applied;
    } else {
      eval.rollback();
      ++undone;
      // Undo must restore the plan bitwise, and the evaluator must again
      // agree with the oracle on the restored plan.
      ASSERT_EQ(eval.plan().seq, before.seq)
          << inst.name() << " iteration " << it << ": undo did not restore";
    }
    // After every apply and every undo: committed state still matches the
    // oracle (exercised through a cheap follow-up no-op evaluation).
    eval.begin_move();
    const auto noop = eval.finish_move();
    (void)noop;
    eval.rollback();
  }
  // Some instances rarely admit valid random edits; require only that the
  // harness exercised the undo path, and the apply path where possible.
  EXPECT_GT(applied + undone, 0) << inst.name();
  EXPECT_GT(undone, 0) << inst.name();
}

TEST(IncrementalEval, DifferentialOverWorkloadFamilies) {
  for (const char* spec : kFamilies) {
    const MbspInstance inst = workload_instance(spec);
    LnsOptions options;
    differential_run(inst, options, 120, 7);
  }
}

TEST(IncrementalEval, DifferentialTinyDataset) {
  auto dataset = tiny_dataset(2025);
  for (int index : {0, 3, 6, 9}) {
    ComputeDag dag = std::move(dataset[index]);
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag), Architecture::make(4, 3 * r0, 1, 10)};
    LnsOptions options;
    differential_run(inst, options, 80, 11);
  }
}

/// The acceptance criterion: improve_plan must return a bitwise-identical
/// LnsResult to the preserved copy-and-reevaluate reference for fixed
/// seed and options.
void expect_identical_results(const MbspInstance& inst,
                              const LnsOptions& options) {
  const ComputePlan initial = warm_plan(inst);
  const LnsResult fast = improve_plan(inst, initial, options);
  const LnsResult ref = improve_plan_reference(inst, initial, options);
  EXPECT_EQ(fast.cost, ref.cost) << inst.name();
  EXPECT_EQ(fast.initial_cost, ref.initial_cost) << inst.name();
  EXPECT_EQ(fast.iterations, ref.iterations) << inst.name();
  EXPECT_EQ(fast.accepted, ref.accepted) << inst.name();
  EXPECT_EQ(fast.proposed_by_class, ref.proposed_by_class) << inst.name();
  EXPECT_EQ(fast.accepted_by_class, ref.accepted_by_class) << inst.name();
  ASSERT_EQ(fast.plan.num_procs, ref.plan.num_procs) << inst.name();
  EXPECT_EQ(fast.plan.seq, ref.plan.seq) << inst.name();
  EXPECT_EQ(fast.schedule.num_supersteps(), ref.schedule.num_supersteps())
      << inst.name();
  const auto valid = validate(inst, fast.schedule);
  EXPECT_TRUE(valid.ok) << inst.name() << ": " << valid.error;
}

TEST(IncrementalEval, ImprovePlanMatchesReference) {
  for (const char* spec : kFamilies) {
    const MbspInstance inst = workload_instance(spec);
    LnsOptions options;
    options.budget_ms = 0;  // no deadline: fixed iteration count
    options.max_iterations = 1500;
    options.seed = 13;
    expect_identical_results(inst, options);
  }
}

TEST(IncrementalEval, ImprovePlanMatchesReferenceTinyDatasetLong) {
  // Long runs on small instances reach deep into the move space (e.g.
  // erasing the lone occurrence of a processor's first superstep — a
  // dirty-bound edge case caught by exactly this configuration).
  auto dataset = tiny_dataset(2025);
  for (int index : {1, 5, 8}) {
    ComputeDag dag = std::move(dataset[index]);
    const double r0 = min_memory_r0(dag);
    const MbspInstance inst{std::move(dag),
                            Architecture::make(4, 3 * r0, 1, 10)};
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 6000;
    options.seed = 42;
    expect_identical_results(inst, options);
  }
}

TEST(IncrementalEval, ImprovePlanMatchesReferenceVariedArch) {
  for (int P : {2, 8}) {
    const MbspInstance inst = workload_instance(kFamilies[3], P, 2.0);
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 1200;
    options.seed = 99;
    expect_identical_results(inst, options);
  }
}

TEST(IncrementalEval, ImprovePlanMatchesReferenceAsyncAndLru) {
  const MbspInstance inst = workload_instance(kFamilies[0]);
  {
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 600;
    options.cost = CostModel::kAsynchronous;
    expect_identical_results(inst, options);
  }
  {
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 600;
    options.completion_policy = PolicyKind::kLru;
    expect_identical_results(inst, options);
  }
}

TEST(IncrementalEval, ImprovePlanMatchesReferenceMoveMasks) {
  const MbspInstance inst = workload_instance(kFamilies[1]);
  for (unsigned mask :
       {kAllMoves & ~(kMergeSupersteps | kSplitSuperstep),
        unsigned(kMoveProc | kSwapProcs), unsigned(kMergeSupersteps),
        kAllMoves & ~(kAddRecompute | kRemoveOccurrence)}) {
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 800;
    options.move_mask = mask;
    expect_identical_results(inst, options);
  }
}

/// Heterogeneous 4-processor machine: mixed speeds and memories, two
/// communication groups with asymmetric transfer costs.
Machine hetero_machine(double r0) {
  Machine m = Machine::make(4, 3 * r0, 1, 10);
  m.speeds = {1.0, 2.0, 1.0, 0.5};
  m.memories = {3 * r0, 4 * r0, 3 * r0, 5 * r0};
  m.group_of = {0, 0, 1, 1};
  m.g_in = 1;
  m.g_out = 3;
  m.L_group = 2;
  return m;
}

TEST(IncrementalEval, ImprovePlanMatchesReferenceHeteroMachine) {
  std::string error;
  for (CostModel cost : {CostModel::kSynchronous, CostModel::kAsynchronous}) {
    auto dag = WorkloadRegistry::global().make_dag(kFamilies[0], 2025, &error);
    ASSERT_TRUE(dag.has_value()) << error;
    const double r0 = min_memory_r0(*dag);
    const MbspInstance inst{std::move(*dag), hetero_machine(r0)};
    LnsOptions options;
    options.budget_ms = 0;
    options.max_iterations = 600;
    options.cost = cost;
    options.seed = 31;
    expect_identical_results(inst, options);
  }
}

TEST(IncrementalEval, AsyncAndLruTakeIncrementalPath) {
  // Async cost and LRU eviction must run through the O(dirty) incremental
  // path, not a full-evaluation fallback: the evaluator reports itself
  // incremental, and local moves re-derive strictly fewer rounds than the
  // committed total (while still matching the oracle bitwise — checked by
  // differential_run's per-move asserts).
  for (auto [cost, policy] :
       {std::pair{CostModel::kAsynchronous, PolicyKind::kClairvoyant},
        std::pair{CostModel::kSynchronous, PolicyKind::kLru},
        std::pair{CostModel::kAsynchronous, PolicyKind::kLru}}) {
    // A deep round structure (13 rounds over 4 supersteps) so a tail-local
    // move has room to leave a strict prefix of rounds untouched.
    const MbspInstance inst = workload_instance("stencil2d:nx=8,ny=8,steps=4");
    LnsOptions options;
    options.cost = cost;
    options.completion_policy = policy;
    const ComputePlan initial = warm_plan(inst);
    IncrementalEvaluator eval(inst, options);
    eval.attach(initial);
    ASSERT_TRUE(eval.incremental());
    // Touch the last occurrence of the highest processor: a tail-local
    // move whose dirty suffix must not span the whole plan.
    long partial = 0;
    Rng rng(5);
    for (int it = 0; it < 40; ++it) {
      const ComputePlan& plan = eval.plan();
      int p = plan.num_procs - 1;
      while (p >= 0 && plan.seq[p].empty()) --p;
      ASSERT_GE(p, 0);
      const std::size_t pos = plan.seq[p].size() - 1;
      const PlannedCompute pc = plan.seq[p][pos];
      eval.begin_move();
      PlanDeltaOp erase;
      erase.kind = PlanDeltaOpKind::kErase;
      erase.proc = p;
      erase.pos = pos;
      erase.pc = pc;
      eval.apply_op(erase);
      PlanDeltaOp insert;
      insert.kind = PlanDeltaOpKind::kInsert;
      insert.proc = p;
      insert.pos = pos;
      insert.pc = pc;
      eval.apply_op(insert);
      const auto out = eval.finish_move();
      if (out.valid) {
        EXPECT_EQ(out.cost, evaluate_plan(inst, eval.plan(), options));
        if (eval.last_dirty_rounds() < eval.committed_rounds()) ++partial;
      }
      eval.rollback();
      (void)rng;
    }
    EXPECT_GT(partial, 0)
        << "cost=" << static_cast<int>(cost)
        << " policy=" << static_cast<int>(policy)
        << ": every move re-derived the full round sequence";
    // And the full differential harness agrees move-by-move.
    differential_run(inst, options, 80, 17);
  }
}

TEST(IncrementalEval, ArenaParanoidMatchesBumpAllocation) {
  // MBSP_ARENA_MODE=heap / arena_paranoid routes evaluator scratch through
  // fresh poisoned heap blocks. Any read of recycled arena memory shows up
  // as a bitwise divergence between the two modes.
  for (const char* spec : kFamilies) {
    const MbspInstance inst = workload_instance(spec);
    const ComputePlan initial = warm_plan(inst);
    LnsOptions fast_opts;
    fast_opts.budget_ms = 0;
    fast_opts.max_iterations = 400;
    fast_opts.seed = 23;
    LnsOptions paranoid_opts = fast_opts;
    paranoid_opts.arena_paranoid = true;
    const LnsResult bump = improve_plan(inst, initial, fast_opts);
    const LnsResult heap = improve_plan(inst, initial, paranoid_opts);
    EXPECT_EQ(bump.cost, heap.cost) << spec;
    EXPECT_EQ(bump.iterations, heap.iterations) << spec;
    EXPECT_EQ(bump.accepted, heap.accepted) << spec;
    EXPECT_EQ(bump.plan.seq, heap.plan.seq) << spec;
  }
}

TEST(IncrementalEval, MergeSplitHeavyStress) {
  // Structural moves dominate: stresses the merge/split dirty-bound
  // analysis (pure relabels, crossing occurrences, label-shift fixups).
  const MbspInstance inst = workload_instance(kFamilies[4]);
  LnsOptions options;
  options.budget_ms = 0;
  options.max_iterations = 2500;
  options.move_mask = kMergeSupersteps | kSplitSuperstep | kMoveSuperstep;
  options.seed = 77;
  expect_identical_results(inst, options);
}

TEST(IncrementalEval, DeadlinePollIntervalKeepsTrajectory) {
  // Iteration-capped runs are deterministic regardless of the poll
  // interval (the knob only changes how often the clock is read).
  const MbspInstance inst = workload_instance(kFamilies[2]);
  const ComputePlan initial = warm_plan(inst);
  LnsOptions base;
  base.budget_ms = 0;
  base.max_iterations = 500;
  const LnsResult a = improve_plan(inst, initial, base);
  LnsOptions tight = base;
  tight.deadline_poll_interval = 1;
  const LnsResult b = improve_plan(inst, initial, tight);
  LnsOptions wide = base;
  wide.deadline_poll_interval = 4096;
  const LnsResult c = improve_plan(inst, initial, wide);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.cost, c.cost);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.iterations, c.iterations);
  EXPECT_EQ(a.plan.seq, b.plan.seq);
  EXPECT_EQ(a.plan.seq, c.plan.seq);
}

TEST(IncrementalEval, ZeroLengthSuffixAfterTopSuperstepErase) {
  // Erasing the lone occupant of the top superstep shrinks the superstep
  // count to exactly the dirty bound: the re-evaluation suffix is empty
  // (regression: this used to write a checkpoint past the end).
  ComputeDag dag("top-erase");
  const NodeId s0 = dag.add_node(1, 1);
  const NodeId v = dag.add_node(2, 1);
  dag.add_edge(s0, v);
  const MbspInstance inst{std::move(dag), Architecture::make(2, 8, 1, 10)};
  ComputePlan plan;
  plan.num_procs = 2;
  plan.seq.resize(2);
  plan.seq[0].push_back({v, 0});
  plan.seq[1].push_back({v, 1});  // duplicate occurrence, top superstep
  ASSERT_TRUE(validate_plan(inst.dag, plan).ok);

  LnsOptions options;
  IncrementalEvaluator eval(inst, options);
  eval.attach(plan);
  eval.begin_move();
  PlanDeltaOp erase;
  erase.kind = PlanDeltaOpKind::kErase;
  erase.proc = 1;
  erase.pos = 0;
  erase.pc = {v, 1};
  eval.apply_op(erase);
  const auto out = eval.finish_move();
  ASSERT_TRUE(out.valid);
  EXPECT_EQ(out.cost, evaluate_plan(inst, eval.plan(), options));
  eval.commit();
  // The committed state must still evaluate correctly afterwards.
  eval.begin_move();
  PlanDeltaOp back;
  back.kind = PlanDeltaOpKind::kInsert;
  back.proc = 1;
  back.pos = 0;
  back.pc = {v, 1};
  eval.apply_op(back);
  const auto redo = eval.finish_move();
  ASSERT_TRUE(redo.valid);
  EXPECT_EQ(redo.cost, evaluate_plan(inst, eval.plan(), options));
  eval.rollback();
}

TEST(IncrementalEval, MoveMaskParsing) {
  unsigned mask = 0;
  EXPECT_TRUE(parse_move_mask("all", &mask));
  EXPECT_EQ(mask, kAllMoves);
  EXPECT_TRUE(parse_move_mask("proc,swap", &mask));
  EXPECT_EQ(mask, kMoveProc | kSwapProcs);
  EXPECT_TRUE(parse_move_mask("merge,split,drop", &mask));
  EXPECT_EQ(mask, kMergeSupersteps | kSplitSuperstep | kRemoveOccurrence);
  EXPECT_TRUE(parse_move_mask("none", &mask));
  EXPECT_EQ(mask, 0u);
  EXPECT_FALSE(parse_move_mask("bogus", &mask));
}

TEST(IncrementalEval, MoveMaskParseErrorNamesUnknownToken) {
  unsigned mask = 0;
  std::string unknown;
  EXPECT_FALSE(parse_move_mask("bogus", &mask, &unknown));
  EXPECT_EQ(unknown, "bogus");
  // The first unknown token of a mixed list is the one reported.
  EXPECT_FALSE(parse_move_mask("proc,stepp,swap", &mask, &unknown));
  EXPECT_EQ(unknown, "stepp");
  // A trailing comma parses as an empty (ignored) item, not an error.
  EXPECT_TRUE(parse_move_mask("proc,", &mask, &unknown));
  EXPECT_EQ(mask, kMoveProc);
}

TEST(IncrementalEval, SyncCostTableMatchesBreakdown) {
  const MbspInstance inst = workload_instance(kFamilies[2]);
  const TwoStageResult base =
      run_baseline(inst, BaselineKind::kGreedyClairvoyant);
  const auto table = sync_cost_table(inst, base.mbsp);
  EXPECT_EQ(static_cast<int>(table.size()), base.mbsp.num_supersteps());
  const SyncCostBreakdown sum = sum_sync_cost_table(table, inst.arch.L);
  const SyncCostBreakdown direct = sync_cost_breakdown(inst, base.mbsp);
  EXPECT_EQ(sum.compute, direct.compute);
  EXPECT_EQ(sum.io, direct.io);
  EXPECT_EQ(sum.sync, direct.sync);
  EXPECT_EQ(sum.total(), sync_cost(inst, base.mbsp));
}

}  // namespace
}  // namespace mbsp
