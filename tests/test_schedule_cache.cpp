// Socket-free unit tests for the daemon's ScheduleCache: key
// canonicalization (the key's DAG hash is dag_canonical_hash, i.e. what
// `corpus hash` prints; the machine component is the registry-canonical
// name), the effort semantics of exact vs warm hits under the
// budget_ms = 0 == unlimited convention, LRU capacity accounting, and the
// stats counters surfaced over the daemon's stats request.
#include <gtest/gtest.h>

#include <cmath>

#include "src/daemon/protocol.hpp"
#include "src/daemon/schedule_cache.hpp"
#include "src/graph/dag_io.hpp"
#include "src/model/machine_registry.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp::daemon {
namespace {

MbspInstance test_instance(const std::string& machine_spec = "uniform:P=4") {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag("fft:n=16", 7, &error);
  EXPECT_TRUE(dag) << error;
  auto machine = MachineRegistry::global().make_machine(
      machine_spec, min_memory_r0(*dag), &error);
  EXPECT_TRUE(machine) << error;
  return {std::move(*dag), std::move(*machine)};
}

ScheduleCacheEntry entry_with_effort(double budget_ms,
                                     std::int64_t max_iterations,
                                     double cost = 100) {
  ScheduleCacheEntry entry;
  entry.cost = cost;
  entry.budget_ms = budget_ms;
  entry.max_iterations = max_iterations;
  return entry;
}

TEST(ScheduleCacheKey, DagComponentIsTheCanonicalHash) {
  const MbspInstance inst = test_instance();
  const ScheduleCacheKey key = make_cache_key(inst, "lns", SchedulerOptions{});
  EXPECT_EQ(key.dag_hash, dag_canonical_hash(inst.dag));
}

TEST(ScheduleCacheKey, MachineComponentIsTheCanonicalName) {
  // "uniform:P=4" spells out the default P, so it canonicalizes to plain
  // "uniform": both spellings must produce the same key.
  const MbspInstance spelled = test_instance("uniform:P=4");
  const MbspInstance defaulted = test_instance("uniform");
  const SchedulerOptions options;
  EXPECT_EQ(make_cache_key(spelled, "lns", options),
            make_cache_key(defaulted, "lns", options));
  EXPECT_EQ(spelled.arch.name, make_cache_key(spelled, "lns", options).machine);
}

TEST(ScheduleCacheKey, SpecExcludesBudgetFields) {
  SchedulerOptions cheap;
  cheap.budget_ms = 10;
  cheap.max_iterations = 100;
  SchedulerOptions expensive;
  expensive.budget_ms = 0;
  expensive.max_iterations = 2'000'000;
  // Budget is the effort dimension, not part of the identity: the same
  // scenario at different effort must map to the same entry.
  EXPECT_EQ(scheduler_cache_spec("lns", cheap),
            scheduler_cache_spec("lns", expensive));
}

TEST(ScheduleCacheKey, SpecSeparatesPlanAffectingOptions) {
  const SchedulerOptions base;
  const std::string reference = scheduler_cache_spec("lns", base);

  EXPECT_NE(scheduler_cache_spec("lns-portfolio", base), reference);

  SchedulerOptions other = base;
  other.seed = base.seed + 1;
  EXPECT_NE(scheduler_cache_spec("lns", other), reference);

  other = base;
  other.cost = CostModel::kAsynchronous;
  EXPECT_NE(scheduler_cache_spec("lns", other), reference);

  other = base;
  other.move_mask = 1;
  EXPECT_NE(scheduler_cache_spec("lns", other), reference);

  other = base;
  other.cold_start = true;
  EXPECT_NE(scheduler_cache_spec("lns", other), reference);
}

TEST(ScheduleCacheEffort, BudgetZeroMeansUnlimited) {
  EXPECT_TRUE(std::isinf(effective_budget_ms(0)));
  EXPECT_EQ(effective_budget_ms(250), 250);
  EXPECT_LT(effective_budget_ms(1e12), effective_budget_ms(0));
}

TEST(ScheduleCache, MissInsertThenHitClassification) {
  ScheduleCache cache(4);
  const ScheduleCacheKey key{1, "uniform", "lns|..."};
  ScheduleCacheEntry out;

  EXPECT_EQ(cache.lookup(key, 0, 1000, &out), CacheHit::kMiss);
  cache.insert(key, entry_with_effort(/*budget_ms=*/0, /*max_iterations=*/1000,
                                      /*cost=*/42));

  // Less or equal effort: exact. More iterations: warm. A finite budget is
  // always within an unlimited (budget 0) cached entry.
  EXPECT_EQ(cache.lookup(key, 0, 500, &out), CacheHit::kExact);
  EXPECT_EQ(out.cost, 42);
  EXPECT_EQ(cache.lookup(key, 0, 1000, &out), CacheHit::kExact);
  EXPECT_EQ(cache.lookup(key, 9999, 1000, &out), CacheHit::kExact);
  EXPECT_EQ(cache.lookup(key, 0, 2000, &out), CacheHit::kWarm);
  EXPECT_EQ(out.cost, 42) << "warm hits hand back the incumbent";

  // Cached under a finite budget: an unlimited request asks for more.
  const ScheduleCacheKey finite_key{2, "uniform", "lns|..."};
  cache.insert(finite_key, entry_with_effort(100, 1000));
  EXPECT_EQ(cache.lookup(finite_key, 50, 1000, &out), CacheHit::kExact);
  EXPECT_EQ(cache.lookup(finite_key, 0, 1000, &out), CacheHit::kWarm);
  EXPECT_EQ(cache.lookup(finite_key, 200, 1000, &out), CacheHit::kWarm);
}

TEST(ScheduleCache, LruEvictionOrderAndRefresh) {
  ScheduleCache cache(2);
  const ScheduleCacheKey a{1, "m", "s"}, b{2, "m", "s"}, c{3, "m", "s"};
  ScheduleCacheEntry out;

  cache.insert(a, entry_with_effort(0, 100, 1));
  cache.insert(b, entry_with_effort(0, 100, 2));
  EXPECT_EQ(cache.size(), 2u);

  // Touch `a`, making `b` the LRU entry; inserting `c` must evict `b`.
  EXPECT_EQ(cache.lookup(a, 0, 100, &out), CacheHit::kExact);
  cache.insert(c, entry_with_effort(0, 100, 3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(b, 0, 100, &out), CacheHit::kMiss);
  EXPECT_EQ(cache.lookup(a, 0, 100, &out), CacheHit::kExact);
  EXPECT_EQ(cache.lookup(c, 0, 100, &out), CacheHit::kExact);

  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ScheduleCache, ReinsertReplacesWithoutEviction) {
  ScheduleCache cache(2);
  const ScheduleCacheKey key{1, "m", "s"};
  ScheduleCacheEntry out;

  cache.insert(key, entry_with_effort(0, 100, 1));
  cache.insert(key, entry_with_effort(0, 200, 2));  // warm re-insert path
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key, 0, 150, &out), CacheHit::kExact)
      << "the replacement carries the enlarged effort";
  EXPECT_EQ(out.cost, 2);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ScheduleCache, StatsCountEveryTransition) {
  ScheduleCache cache(1);
  const ScheduleCacheKey a{1, "m", "s"}, b{2, "m", "s"};
  ScheduleCacheEntry out;

  EXPECT_EQ(cache.lookup(a, 0, 100, &out), CacheHit::kMiss);
  cache.insert(a, entry_with_effort(0, 100));
  EXPECT_EQ(cache.lookup(a, 0, 100, &out), CacheHit::kExact);
  EXPECT_EQ(cache.lookup(a, 0, 200, &out), CacheHit::kWarm);
  cache.insert(b, entry_with_effort(0, 100));  // evicts a (capacity 1)
  EXPECT_EQ(cache.lookup(a, 0, 100, &out), CacheHit::kMiss);

  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ScheduleCache, ZeroCapacityIsClampedToOne) {
  ScheduleCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.insert({1, "m", "s"}, entry_with_effort(0, 100));
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace mbsp::daemon
