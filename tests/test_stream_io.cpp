// Tests for the out-of-core paths (docs/SCALE.md): the incremental v2
// binary writer (DagStreamWriter), the chunked CSR-native binary reader,
// the workload registry's streaming generation (make_dag_stream), and the
// byte-offset/section diagnostics of the binary parser, including a
// fuzz-ish sweep over every truncation length of a real file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "/" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Streams `dag` through DagStreamWriter exactly as a generator would:
/// counts first, nodes in id order, edges u-major in stored-child order.
std::uint64_t stream_copy(const ComputeDag& dag, const std::string& path) {
  DagStreamWriter writer(path);
  writer.begin(dag.name(), static_cast<std::uint64_t>(dag.num_nodes()));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    writer.add_node(dag.omega(v), dag.mu(v));
  }
  writer.begin_edges(static_cast<std::uint64_t>(dag.num_edges()));
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) writer.add_edge(u, v);
  }
  std::uint64_t hash = 0;
  EXPECT_TRUE(writer.finish(&hash)) << writer.error();
  return hash;
}

TEST(StreamIo, WriterMatchesInMemoryEncoderBitwise) {
  Rng rng(33);
  ComputeDag dag = spmv_dag(8, 3, rng, "stream vs in-memory");
  assign_random_memory_weights(dag, rng);
  const std::string path = temp_path("stream_writer_bitwise.bin");
  const std::uint64_t hash = stream_copy(dag, path);
  EXPECT_EQ(hash, dag_canonical_hash(dag));
  EXPECT_EQ(slurp(path), dag_to_binary(dag));
}

TEST(StreamIo, TextToStreamedBinaryToTextIsBitwiseIdentity) {
  Rng rng(91);
  for (int trial = 0; trial < 8; ++trial) {
    ComputeDag dag = random_layered_dag(40 + trial * 9, 3 + trial % 4, rng);
    assign_random_memory_weights(dag, rng);
    dag.set_name("stream prop " + std::to_string(trial));
    const std::string text = dag_to_text(dag);
    const std::string path = temp_path("stream_roundtrip.bin");
    stream_copy(dag, path);
    std::string error;
    const auto loaded = read_dag_file(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(loaded->csr_native());
    EXPECT_EQ(dag_to_text(*loaded), text);
    EXPECT_EQ(dag_canonical_hash(*loaded), dag_canonical_hash(dag));
  }
}

TEST(StreamIo, WriterEnforcesProtocolAndLatchesErrors) {
  {
    DagStreamWriter writer(temp_path("stream_protocol.bin"));
    writer.begin("x", 2);
    writer.add_node(1, 1);
    writer.add_node(1, 1);
    writer.begin_edges(2);
    writer.add_edge(1, 0);  // ok so far (stored order within u = 1)
    writer.add_edge(0, 1);  // u went backwards: not u-major
    EXPECT_FALSE(writer.ok());
    EXPECT_NE(writer.error().find("u-major"), std::string::npos)
        << writer.error();
    EXPECT_FALSE(writer.finish());
  }
  {
    DagStreamWriter writer(temp_path("stream_protocol.bin"));
    writer.begin("x", 2);
    writer.add_node(1, 1);
    writer.add_node(1, 1);
    writer.begin_edges(1);
    EXPECT_FALSE(writer.finish());  // declared 1 edge, emitted 0
    EXPECT_NE(writer.error().find("edge"), std::string::npos)
        << writer.error();
  }
  {
    DagStreamWriter writer("/nonexistent-dir/cannot.bin");
    EXPECT_FALSE(writer.ok());
    writer.begin("x", 0);  // no-op after the open failure latched
    EXPECT_FALSE(writer.finish());
  }
}

TEST(StreamIo, RegistryStreamingMatchesInMemoryAcrossFamilies) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const std::vector<std::string> specs = {
      "stencil2d:nx=5,ny=4,steps=3",
      "stencil3d:nx=3,ny=4,nz=2,steps=2",
      "wavefront:nx=6,ny=3",
      "fft:n=16",
      "mapreduce:maps=5,reducers=3,rounds=3",
      // mu=unit exercises the non-randomized wrapper path.
      "stencil2d:nx=4,ny=4,steps=2,mu=unit",
  };
  for (const std::string& spec : specs) {
    ASSERT_TRUE(registry.supports_streaming(spec)) << spec;
    std::string error;
    const auto in_memory = registry.make_dag(spec, /*seed=*/7, &error);
    ASSERT_TRUE(in_memory.has_value()) << spec << ": " << error;

    const std::string path = temp_path("stream_family.bin");
    DagStreamWriter writer(path);
    ASSERT_TRUE(registry.make_dag_stream(spec, /*seed=*/7, writer, &error))
        << spec << ": " << error;
    std::uint64_t hash = 0;
    ASSERT_TRUE(writer.finish(&hash)) << spec << ": " << writer.error();
    EXPECT_EQ(hash, dag_canonical_hash(*in_memory)) << spec;

    const auto streamed = read_dag_file(path, &error);
    ASSERT_TRUE(streamed.has_value()) << spec << ": " << error;
    EXPECT_EQ(streamed->name(), in_memory->name()) << spec;
    EXPECT_EQ(streamed->num_nodes(), in_memory->num_nodes()) << spec;
    EXPECT_EQ(streamed->num_edges(), in_memory->num_edges()) << spec;
    EXPECT_EQ(dag_canonical_hash(*streamed), dag_canonical_hash(*in_memory))
        << spec;
  }
}

TEST(StreamIo, RegistryStreamingErrorNamesTheFamily) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  EXPECT_FALSE(registry.supports_streaming("lu:blocks=4"));
  const std::string path = temp_path("stream_unsupported.bin");
  DagStreamWriter writer(path);
  std::string error;
  EXPECT_FALSE(registry.make_dag_stream("lu:blocks=4", /*seed=*/1, writer,
                                        &error));
  EXPECT_NE(error.find("'lu'"), std::string::npos) << error;
  EXPECT_NE(error.find("stencil2d"), std::string::npos) << error;
  // Spec errors surface with the same offending-token messages as make_dag.
  EXPECT_FALSE(registry.make_dag_stream("stencil2d:bogus=1", /*seed=*/1,
                                        writer, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(StreamIo, BinaryErrorsReportOffsetSectionAndFileSize) {
  Rng rng(17);
  ComputeDag dag = spmv_dag(5, 3, rng, "diagnose me");
  const std::string bytes = dag_to_binary(dag);
  std::string error;
  // Truncated mid-edges: the message carries all three diagnostics.
  EXPECT_FALSE(
      dag_from_binary(bytes.substr(0, bytes.size() - 11), &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find("byte offset"), std::string::npos) << error;
  EXPECT_NE(error.find("section"), std::string::npos) << error;
  EXPECT_NE(error.find(std::to_string(bytes.size() - 11)), std::string::npos)
      << error;
}

TEST(StreamIo, EveryTruncationLengthIsRejectedWithDiagnostics) {
  // Fuzz-ish sweep: chop a real file at every possible length; the parser
  // must reject every prefix (no prefix of a valid file is valid, thanks
  // to the hash footer) and always say where and in which section it gave
  // up.
  Rng rng(5);
  ComputeDag dag = random_layered_dag(24, 3, rng);
  dag.set_name("truncate me");
  const std::string bytes = dag_to_binary(dag);
  const std::string path = temp_path("stream_truncation.bin");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(dag_from_binary(bytes.substr(0, len), &error).has_value())
        << "length " << len;
    if (len >= 8) {  // past the magic, the offset diagnostics kick in
      EXPECT_NE(error.find("byte offset"), std::string::npos)
          << "length " << len << ": " << error;
      EXPECT_NE(error.find("section"), std::string::npos)
          << "length " << len << ": " << error;
    }
    // The file-backed reader reports the same failure.
    if (len == bytes.size() / 2) {
      spill(path, bytes.substr(0, len));
      const auto loaded = read_dag_file(path, &error);
      EXPECT_FALSE(loaded.has_value());
      EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    }
  }
  // The untruncated bytes still parse (the sweep used the real encoder).
  EXPECT_TRUE(dag_from_binary(bytes).has_value());
}

TEST(StreamIo, ReadDagFileLoadsBinaryAsCsrNative) {
  Rng rng(3);
  ComputeDag dag = spmv_dag(6, 3, rng, "csr native load");
  const std::string path = temp_path("stream_csr_native.bin");
  ASSERT_TRUE(write_dag_file(dag, path, /*binary=*/true));
  std::string error;
  const auto loaded = read_dag_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->csr_native());
  // Mutation thaws the CSR-native storage transparently.
  ComputeDag copy = *loaded;
  const NodeId extra = copy.add_node(1, 1);
  copy.add_edge(0, extra);
  EXPECT_EQ(copy.num_nodes(), loaded->num_nodes() + 1);
  EXPECT_FALSE(copy.csr_native());
  EXPECT_TRUE(loaded->csr_native());  // the source is untouched
}

}  // namespace
}  // namespace mbsp
