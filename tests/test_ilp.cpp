// Tests for the in-house MILP stack: model container, LP writer, two-phase
// simplex, and branch-and-bound.
#include <gtest/gtest.h>

#include "src/ilp/model.hpp"
#include "src/ilp/simplex.hpp"
#include "src/ilp/solver.hpp"
#include "src/util/rng.hpp"

namespace mbsp::ilp {
namespace {

TEST(Model, FeasibilityCheck) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_continuous(0, 10, "y");
  LinExpr e;
  e.add(x, 2).add(y, 1);
  m.add_constraint(std::move(e), Sense::kLe, 5);
  EXPECT_TRUE(m.is_feasible({1, 3}));
  EXPECT_FALSE(m.is_feasible({1, 4}));   // constraint violated
  EXPECT_FALSE(m.is_feasible({0.5, 0}));  // fractional binary
  EXPECT_FALSE(m.is_feasible({0, 11}));   // bound violated
}

TEST(Model, LpWriter) {
  Model m("demo");
  const VarId x = m.add_binary("x");
  m.set_objective_coeff(x, 3);
  LinExpr e;
  e.add(x, 1);
  m.add_constraint(std::move(e), Sense::kGe, 1, "row");
  const std::string lp = m.to_lp_string();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("row:"), std::string::npos);
  EXPECT_NE(lp.find("Generals"), std::string::npos);
}

TEST(Simplex, SimpleLp) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  (x,y >= 0)
  Model m;
  const VarId x = m.add_continuous(0, 3);
  const VarId y = m.add_continuous(0, 2);
  m.set_objective_coeff(x, -1);
  m.set_objective_coeff(y, -2);
  LinExpr e;
  e.add(x, 1).add(y, 1);
  m.add_constraint(std::move(e), Sense::kLe, 4);
  const LpResult res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -6.0, 1e-7);  // x=2, y=2
  EXPECT_NEAR(res.x[y], 2.0, 1e-7);
}

TEST(Simplex, EqualityAndGe) {
  // min x + y s.t. x + y = 3, x >= 1.
  Model m;
  const VarId x = m.add_continuous(0, kInf);
  const VarId y = m.add_continuous(0, kInf);
  m.set_objective_coeff(x, 1);
  m.set_objective_coeff(y, 1);
  LinExpr eq;
  eq.add(x, 1).add(y, 1);
  m.add_constraint(std::move(eq), Sense::kEq, 3);
  LinExpr ge;
  ge.add(x, 1);
  m.add_constraint(std::move(ge), Sense::kGe, 1);
  const LpResult res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_continuous(0, 1);
  LinExpr e;
  e.add(x, 1);
  m.add_constraint(std::move(e), Sense::kGe, 2);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_continuous(0, kInf);
  m.set_objective_coeff(x, -1);
  const LpResult res = solve_lp(m);
  EXPECT_EQ(res.status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x s.t. x >= -5 (shifted variables path).
  Model m;
  const VarId x = m.add_continuous(-5, 5);
  m.set_objective_coeff(x, 1);
  const LpResult res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.x[x], -5.0, 1e-7);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Many redundant constraints through the origin.
  Model m;
  const VarId x = m.add_continuous(0, 10);
  const VarId y = m.add_continuous(0, 10);
  m.set_objective_coeff(x, -1);
  for (int i = 1; i <= 6; ++i) {
    LinExpr e;
    e.add(x, 1.0).add(y, static_cast<double>(i));
    m.add_constraint(std::move(e), Sense::kLe, 10.0);
  }
  const LpResult res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -10.0, 1e-6);
}

TEST(BranchAndBound, Knapsack) {
  // max 10x0 + 13x1 + 7x2 + 4x3 (= min negative) with 3x0+4x1+2x2+x3 <= 6.
  Model m;
  std::vector<VarId> x;
  const double value[] = {10, 13, 7, 4};
  const double weight[] = {3, 4, 2, 1};
  LinExpr cap;
  for (int i = 0; i < 4; ++i) {
    x.push_back(m.add_binary());
    m.set_objective_coeff(x[i], -value[i]);
    cap.add(x[i], weight[i]);
  }
  m.add_constraint(std::move(cap), Sense::kLe, 6);
  BranchAndBoundSolver solver;
  const MipResult res = solver.solve(m);
  ASSERT_EQ(res.status, MipStatus::kOptimal);
  // Optimum: items 1, 2 (13 + 7 = 20)? vs 0+2+3 = 21; weights 3+2+1=6 ok.
  EXPECT_NEAR(res.objective, -21.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIlp) {
  Model m;
  const VarId x = m.add_binary();
  const VarId y = m.add_binary();
  LinExpr lo;
  lo.add(x, 1).add(y, 1);
  m.add_constraint(std::move(lo), Sense::kGe, 2);
  LinExpr hi;
  hi.add(x, 1).add(y, 1);
  m.add_constraint(std::move(hi), Sense::kLe, 1);
  BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(m).status, MipStatus::kInfeasible);
}

TEST(BranchAndBound, WarmStartUsed) {
  Model m;
  const VarId x = m.add_binary();
  m.set_objective_coeff(x, -1);
  MipOptions opts;
  opts.max_nodes = 0;  // no exploration at all
  BranchAndBoundSolver solver(opts);
  const MipResult res = solver.solve(m, {1.0});
  EXPECT_EQ(res.status, MipStatus::kFeasible);
  EXPECT_NEAR(res.objective, -1.0, 1e-9);
}

TEST(BranchAndBound, IntegerGeneralVariables) {
  // min -x with 2x <= 7, x integer in [0, 10] -> x = 3.
  Model m;
  const VarId x = m.add_var(0, 10, VarType::kInteger);
  m.set_objective_coeff(x, -1);
  LinExpr e;
  e.add(x, 2);
  m.add_constraint(std::move(e), Sense::kLe, 7);
  BranchAndBoundSolver solver;
  const MipResult res = solver.solve(m);
  ASSERT_EQ(res.status, MipStatus::kOptimal);
  EXPECT_NEAR(res.x[x], 3.0, 1e-6);
}

// Randomized property sweep: B&B equals brute force on random knapsacks.
class KnapsackSweep : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackSweep, MatchesBruteForce) {
  mbsp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 6 + GetParam() % 4;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = static_cast<double>(rng.uniform_int(1, 20));
    weight[i] = static_cast<double>(rng.uniform_int(1, 8));
  }
  const double capacity = static_cast<double>(rng.uniform_int(8, 20));
  Model m;
  LinExpr cap;
  for (int i = 0; i < n; ++i) {
    const VarId x = m.add_binary();
    m.set_objective_coeff(x, -value[i]);
    cap.add(x, weight[i]);
  }
  m.add_constraint(std::move(cap), Sense::kLe, capacity);
  BranchAndBoundSolver solver;
  const MipResult res = solver.solve(m);
  ASSERT_EQ(res.status, MipStatus::kOptimal) << "seed " << GetParam();

  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0, w = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        v += value[i];
        w += weight[i];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }
  EXPECT_NEAR(res.objective, -best, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, KnapsackSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace mbsp::ilp
