// Tests for online schedule repair (src/holistic/repair.*, docs/REPAIR.md)
// and the timed-arrival trace corpus (src/workload/trace.*): the
// differential oracle (repaired plans validate and their reported cost is
// bitwise equal to a from-scratch evaluate_plan on the mutated instance),
// apply/undo exactness of InstanceDelta chains, typed rejection of
// cycle-creating edges, thread-count independence of the portfolio polish,
// the "repair" registry adapter, and the determinism / streaming / hashing
// contracts of the trace families.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/topology.hpp"
#include "src/holistic/repair.hpp"
#include "src/model/machine_registry.hpp"
#include "src/model/validate.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/twostage/compute_plan.hpp"
#include "src/util/rng.hpp"
#include "src/workload/trace.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {
namespace {

ComputePlan greedy_plan(const MbspInstance& inst) {
  ComputePlan plan =
      plan_from_bsp(inst.dag,
                    GreedyBspScheduler().schedule(inst.dag, inst.arch),
                    inst.arch.num_processors);
  normalize_supersteps(plan);
  EXPECT_TRUE(validate_plan(inst.dag, plan).ok);
  return plan;
}

RepairOptions deterministic_repair(long iterations = 1500) {
  RepairOptions options;
  options.lns.budget_ms = 0;  // iteration-capped: machine-speed independent
  options.lns.max_iterations = iterations;
  return options;
}

/// Bitwise structural snapshot of an instance: the DAG's weights and
/// adjacency *in insertion order*, plus every machine field. Two snapshots
/// compare equal only when apply/undo restored the instance exactly.
struct InstanceFingerprint {
  std::string dag_name;
  std::size_t num_edges = 0;
  std::vector<double> omega, mu;
  std::vector<std::vector<NodeId>> children, parents;
  Machine machine;

  static InstanceFingerprint of(const MbspInstance& inst) {
    InstanceFingerprint fp;
    fp.dag_name = inst.dag.name();
    fp.num_edges = inst.dag.num_edges();
    for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
      fp.omega.push_back(inst.dag.omega(v));
      fp.mu.push_back(inst.dag.mu(v));
      auto cs = inst.dag.children(v);
      fp.children.emplace_back(cs.begin(), cs.end());
      auto ps = inst.dag.parents(v);
      fp.parents.emplace_back(ps.begin(), ps.end());
    }
    fp.machine = inst.arch;
    return fp;
  }
};

void expect_fingerprints_equal(const InstanceFingerprint& a,
                               const InstanceFingerprint& b,
                               const char* what) {
  EXPECT_EQ(a.dag_name, b.dag_name) << what;
  EXPECT_EQ(a.num_edges, b.num_edges) << what;
  ASSERT_EQ(a.omega.size(), b.omega.size()) << what;
  EXPECT_EQ(a.omega, b.omega) << what;
  EXPECT_EQ(a.mu, b.mu) << what;
  EXPECT_EQ(a.children, b.children) << what;
  EXPECT_EQ(a.parents, b.parents) << what;
  const Machine& m = a.machine;
  const Machine& n = b.machine;
  EXPECT_EQ(m.num_processors, n.num_processors) << what;
  EXPECT_EQ(m.fast_memory, n.fast_memory) << what;
  EXPECT_EQ(m.g, n.g) << what;
  EXPECT_EQ(m.L, n.L) << what;
  EXPECT_EQ(m.speeds, n.speeds) << what;
  EXPECT_EQ(m.memories, n.memories) << what;
  EXPECT_EQ(m.group_of, n.group_of) << what;
  EXPECT_EQ(m.g_in, n.g_in) << what;
  EXPECT_EQ(m.g_out, n.g_out) << what;
  EXPECT_EQ(m.L_group, n.L_group) << what;
  EXPECT_EQ(m.name, n.name) << what;
}

void expect_plans_equal(const ComputePlan& a, const ComputePlan& b) {
  ASSERT_EQ(a.num_procs, b.num_procs);
  for (int p = 0; p < a.num_procs; ++p) {
    const auto& s = a.seq[static_cast<std::size_t>(p)];
    const auto& t = b.seq[static_cast<std::size_t>(p)];
    ASSERT_EQ(s.size(), t.size()) << "proc " << p;
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].node, t[i].node) << "proc " << p << " pos " << i;
      EXPECT_EQ(s[i].superstep, t[i].superstep)
          << "proc " << p << " pos " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// The differential oracle: replay every trace family against its machine,
// repairing after each event, and hold repair_plan to its contracts on
// every single step. Five workload families, three machine kinds.

struct TraceCase {
  const char* trace;
  const char* machine;
};

const TraceCase kTraceCases[] = {
    {"trace-grow:base=stencil2d,events=4,batch=2", "uniform:P=4"},
    {"trace-drift:base=spmv,events=4,batch=3", "hetero:speeds=1x2+2x2"},
    {"trace-dropout:base=mapreduce,events=2", "uniform:P=4"},
    {"trace-churn:base=fft,events=4,batch=2", "numa:groups=2x2"},
    {"trace-mixed:base=random-layered,events=5,batch=2",
     "hetero:mems=2x2+3x2"},
};

TEST(RepairDifferential, TraceReplayMatchesOracleOnEveryEvent) {
  for (const TraceCase& tc : kTraceCases) {
    std::string error;
    auto trace = make_trace(tc.trace, /*seed=*/5, tc.machine, &error);
    ASSERT_TRUE(trace.has_value()) << tc.trace << ": " << error;
    ASSERT_FALSE(trace->events.empty()) << tc.trace;

    MbspInstance inst = trace->base;
    ComputePlan incumbent = greedy_plan(inst);
    const RepairOptions options = deterministic_repair();

    for (std::size_t e = 0; e < trace->events.size(); ++e) {
      const std::string ctx =
          std::string(tc.trace) + " event " + std::to_string(e);
      ASSERT_TRUE(apply_instance_delta(inst, trace->events[e].delta, nullptr,
                                       &error))
          << ctx << ": " << error;
      auto repaired = repair_plan(inst, incumbent, trace->events[e].delta,
                                  options, &error);
      ASSERT_TRUE(repaired.has_value()) << ctx << ": " << error;

      // Both the patched seed and the polished plan validate on the
      // mutated instance.
      EXPECT_TRUE(validate_plan(inst.dag, repaired->patched).ok) << ctx;
      EXPECT_TRUE(validate_plan(inst.dag, repaired->plan).ok) << ctx;
      EXPECT_TRUE(validate(inst, repaired->schedule).ok) << ctx;

      // The differential oracle, bitwise: reported costs are exactly what
      // a from-scratch evaluation of the same plans yields.
      EXPECT_EQ(repaired->cost,
                evaluate_plan(inst, repaired->plan, options.lns))
          << ctx;
      EXPECT_EQ(repaired->patched_cost,
                evaluate_plan(inst, repaired->patched, options.lns))
          << ctx;

      // Repair-then-polish never loses to the patched seed.
      EXPECT_LE(repaired->cost, repaired->patched_cost) << ctx;

      // Machine deltas reprice everything: the polish must run unmasked.
      EXPECT_EQ(repaired->full_mask,
                trace->events[e].delta.touches_machine())
          << ctx;

      incumbent = std::move(repaired->plan);
    }
  }
}

TEST(RepairDifferential, RetrofitEdgeBetweenPlannedNodesRecertifies) {
  // Edges between two *existing* nodes are the hard structural case: the
  // head's occurrences were planned without the new dependency and must be
  // re-certified (recompute-style inserts when the parent arrives late).
  std::string error;
  auto inst = WorkloadRegistry::global().make_instance(
      "random-layered:nodes=40,width=5", /*seed=*/3, /*P=*/4, /*r_factor=*/3.0,
      1, 5, &error);
  ASSERT_TRUE(inst.has_value()) << error;
  const ComputePlan incumbent = greedy_plan(*inst);
  const std::vector<NodeId> topo = topological_order(inst->dag);

  Rng rng(17);
  int tested = 0;
  for (int attempt = 0; attempt < 40 && tested < 6; ++attempt) {
    const std::size_t i = rng.index(topo.size() - 1);
    const std::size_t j =
        i + 1 + rng.index(topo.size() - i - 1);  // strictly later in topo
    const NodeId u = topo[i];
    const NodeId v = topo[j];
    bool present = false;
    for (NodeId c : inst->dag.children(u)) present |= (c == v);
    if (present || inst->dag.is_source(v)) continue;

    InstanceDelta delta;
    delta.add_edge(u, v);
    MbspInstance mutated = *inst;
    ASSERT_TRUE(apply_instance_delta(mutated, delta, nullptr, &error))
        << error;
    const RepairOptions options = deterministic_repair(800);
    auto repaired = repair_plan(mutated, incumbent, delta, options, &error);
    ASSERT_TRUE(repaired.has_value())
        << "edge " << u << "->" << v << ": " << error;
    EXPECT_TRUE(validate_plan(mutated.dag, repaired->plan).ok)
        << "edge " << u << "->" << v;
    EXPECT_EQ(repaired->cost,
              evaluate_plan(mutated, repaired->plan, options.lns));
    ++tested;
  }
  EXPECT_GE(tested, 3);  // the workload offers plenty of retrofit targets
}

TEST(RepairEngine, PolishOffReturnsThePatchedSeed) {
  std::string error;
  auto trace =
      make_trace("trace-churn:base=stencil2d,events=3", 9, "uniform:P=4",
                 &error);
  ASSERT_TRUE(trace.has_value()) << error;
  MbspInstance inst = trace->base;
  const ComputePlan incumbent = greedy_plan(inst);
  ASSERT_TRUE(
      apply_instance_delta(inst, trace->events[0].delta, nullptr, &error))
      << error;

  RepairOptions options = deterministic_repair();
  options.polish = false;
  auto repaired =
      repair_plan(inst, incumbent, trace->events[0].delta, options, &error);
  ASSERT_TRUE(repaired.has_value()) << error;
  EXPECT_EQ(repaired->cost, repaired->patched_cost);
  EXPECT_EQ(repaired->polish_iterations, 0);
  expect_plans_equal(repaired->plan, repaired->patched);
}

TEST(RepairEngine, BitwiseReproducibleAcrossPolishThreadCounts) {
  std::string error;
  auto trace = make_trace("trace-mixed:base=stencil2d,events=2", 13,
                          "uniform:P=4", &error);
  ASSERT_TRUE(trace.has_value()) << error;
  MbspInstance inst = trace->base;
  const ComputePlan incumbent = greedy_plan(inst);
  ASSERT_TRUE(
      apply_instance_delta(inst, trace->events[0].delta, nullptr, &error))
      << error;

  auto run = [&](int threads) {
    RepairOptions options = deterministic_repair(2000);
    options.workers = 3;  // deterministic portfolio polish
    options.threads = threads;
    auto repaired = repair_plan(inst, incumbent, trace->events[0].delta,
                                options, &error);
    EXPECT_TRUE(repaired.has_value()) << error;
    return std::move(*repaired);
  };
  const RepairResult serial = run(1);
  const RepairResult parallel = run(4);
  EXPECT_EQ(serial.cost, parallel.cost);  // bitwise, not approximate
  EXPECT_EQ(serial.patched_cost, parallel.patched_cost);
  expect_plans_equal(serial.plan, parallel.plan);
}

TEST(RepairEngine, WrongIncumbentShapeIsATypedError) {
  std::string error;
  auto inst = WorkloadRegistry::global().make_instance(
      "stencil2d:nx=4,ny=4,steps=2", 1, /*P=*/4, 3.0, 1, 5, &error);
  ASSERT_TRUE(inst.has_value()) << error;
  ComputePlan incumbent = greedy_plan(*inst);
  incumbent.num_procs = 2;  // contradicts the (delta-free) instance's P=4
  incumbent.seq.resize(2);

  const InstanceDelta empty_delta;
  auto repaired = repair_plan(*inst, incumbent, empty_delta,
                              deterministic_repair(), &error);
  EXPECT_FALSE(repaired.has_value());
  EXPECT_NE(error.find("processor"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// InstanceDelta apply/undo fuzz: long random chains — including rejected
// ops — must leave the instance (and an attached PlanOccurrenceIndex)
// exactly as they found it.

InstanceDelta random_delta(const MbspInstance& inst, Rng& rng) {
  InstanceDelta delta;
  const int ops = static_cast<int>(rng.uniform_int(1, 4));
  const std::size_t n = static_cast<std::size_t>(inst.dag.num_nodes());
  const std::size_t procs =
      static_cast<std::size_t>(inst.arch.num_processors);
  for (int i = 0; i < ops; ++i) {
    switch (rng.uniform_int(0, 5)) {
      case 0:
        delta.add_node(static_cast<double>(rng.uniform_int(1, 4)),
                       static_cast<double>(rng.uniform_int(1, 3)));
        break;
      case 1: {
        // Ascending ids: usually acyclic, occasionally rejected (dup edges
        // are no-ops; both paths must roll back / undo exactly).
        const NodeId a = static_cast<NodeId>(rng.index(n));
        const NodeId b = static_cast<NodeId>(rng.index(n));
        delta.add_edge(std::min(a, b), std::max(a, b));
        break;
      }
      case 2:
        delta.set_node_weight(static_cast<NodeId>(rng.index(n)),
                              static_cast<double>(rng.uniform_int(1, 6)),
                              static_cast<double>(rng.uniform_int(1, 4)));
        break;
      case 3:
        delta.drop_processor(static_cast<int>(rng.index(procs)));
        break;
      case 4: {
        const double r0 = min_memory_r0(inst.dag);
        // Mostly >= r0 (valid), sometimes below (typed rejection).
        delta.shrink_memory(
            rng.chance(0.5) ? -1 : static_cast<int>(rng.index(procs)),
            r0 * (0.9 + rng.uniform01()));
        break;
      }
      default:
        delta.add_node();
        break;
    }
  }
  return delta;
}

void fuzz_apply_undo(const char* machine_spec, std::uint64_t seed) {
  std::string error;
  auto dag =
      WorkloadRegistry::global().make_dag("random-layered:nodes=30,width=4",
                                          /*seed=*/21, &error);
  ASSERT_TRUE(dag.has_value()) << error;
  auto machine = MachineRegistry::global().make_machine(
      machine_spec, min_memory_r0(*dag), &error);
  ASSERT_TRUE(machine.has_value()) << error;
  MbspInstance inst{std::move(*dag), std::move(*machine)};
  const InstanceFingerprint before = InstanceFingerprint::of(inst);

  // A live plan + occurrence index rides along: instance deltas never
  // touch the plan, and once the chain is unwound the index must answer
  // exactly as before (drop_processor chains included — procs whose
  // cached values the plan still references come back intact).
  const ComputePlan plan = greedy_plan(inst);
  PlanOccurrenceIndex index;
  index.attach(&inst.dag, &plan);
  const int steps_before = index.num_supersteps();
  std::vector<long> counts_before;
  std::vector<int> done_before;
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    counts_before.push_back(index.node_count(v));
    done_before.push_back(index.earliest_done(v));
  }

  Rng rng(seed);
  std::vector<AppliedInstanceDelta> chain;
  int applied = 0;
  int rejected = 0;
  for (int round = 0; round < 60; ++round) {
    const InstanceDelta delta = random_delta(inst, rng);
    const InstanceFingerprint pre = InstanceFingerprint::of(inst);
    AppliedInstanceDelta undo;
    if (apply_instance_delta(inst, delta, &undo, &error)) {
      chain.push_back(std::move(undo));
      ++applied;
    } else {
      // A failed apply is transactional: nothing changed.
      EXPECT_FALSE(error.empty());
      expect_fingerprints_equal(InstanceFingerprint::of(inst), pre,
                                "failed apply must roll back");
      ++rejected;
    }
    if (!chain.empty() && rng.chance(0.4)) {
      undo_instance_delta(inst, chain.back());
      chain.pop_back();
    }
  }
  EXPECT_GT(applied, 10);
  EXPECT_GT(rejected, 0);  // the generator must exercise the error paths
  while (!chain.empty()) {
    undo_instance_delta(inst, chain.back());
    chain.pop_back();
  }

  expect_fingerprints_equal(InstanceFingerprint::of(inst), before,
                            machine_spec);
  EXPECT_EQ(index.num_supersteps(), steps_before);
  for (NodeId v = 0; v < inst.dag.num_nodes(); ++v) {
    EXPECT_EQ(index.node_count(v), counts_before[static_cast<std::size_t>(v)])
        << "node " << v;
    EXPECT_EQ(index.earliest_done(v),
              done_before[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(InstanceDeltaFuzz, LongApplyUndoChainsRestoreUniformMachine) {
  fuzz_apply_undo("uniform:P=4", 101);
}

TEST(InstanceDeltaFuzz, LongApplyUndoChainsRestoreHeteroMachine) {
  fuzz_apply_undo("hetero:speeds=1x2+2x2,mems=2x2+3x2", 202);
}

TEST(InstanceDeltaFuzz, LongApplyUndoChainsRestoreNumaMachine) {
  fuzz_apply_undo("numa:groups=2x2", 303);
}

TEST(InstanceDeltaFuzz, CycleCreatingEdgeRejectedNamingTheEdge) {
  ComputeDag dag("cycle-probe");
  dag.add_node();
  dag.add_node();
  dag.add_node();
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  MbspInstance inst{std::move(dag), Machine::make(2, 10.0, 1, 10)};
  const InstanceFingerprint before = InstanceFingerprint::of(inst);

  InstanceDelta delta;
  delta.add_node();       // applied, then rolled back by the failure
  delta.add_edge(2, 1);   // 1 -> 2 exists: this closes a cycle
  std::string error;
  EXPECT_FALSE(apply_instance_delta(inst, delta, nullptr, &error));
  EXPECT_NE(error.find("add_edge"), std::string::npos) << error;
  EXPECT_NE(error.find("2->1"), std::string::npos) << error;
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
  expect_fingerprints_equal(InstanceFingerprint::of(inst), before,
                            "rejected delta");

  delta.ops.clear();
  delta.add_edge(1, 1);  // self loops are cycles of length one
  EXPECT_FALSE(apply_instance_delta(inst, delta, nullptr, &error));
  EXPECT_NE(error.find("1->1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// The "repair" registry adapter.

TEST(RepairAdapter, RepairsWhenGivenIncumbentAndDelta) {
  std::string error;
  auto trace = make_trace("trace-grow:base=stencil2d,events=2", 7,
                          "uniform:P=4", &error);
  ASSERT_TRUE(trace.has_value()) << error;
  MbspInstance inst = trace->base;
  const ComputePlan incumbent = greedy_plan(inst);
  ASSERT_TRUE(
      apply_instance_delta(inst, trace->events[0].delta, nullptr, &error))
      << error;

  SchedulerOptions options;
  options.budget_ms = 0;
  options.max_iterations = 1000;
  options.warm_start_plan = &incumbent;
  options.repair_delta = &trace->events[0].delta;
  const ScheduleResult result =
      SchedulerRegistry::global().at("repair").run(inst, options);
  EXPECT_EQ(result.scheduler, "repair");
  EXPECT_TRUE(validate_plan(inst.dag, result.plan).ok);
  EXPECT_TRUE(validate(inst, result.schedule).ok);
  // baseline_cost reports the patched seed; the polish never loses to it.
  EXPECT_GT(result.baseline_cost, 0);
  EXPECT_LE(result.cost, result.baseline_cost);

  // The adapter is a thin wrapper over repair_plan with the same knobs.
  RepairOptions direct = deterministic_repair(1000);
  auto repaired = repair_plan(inst, incumbent, *options.repair_delta, direct,
                              &error);
  ASSERT_TRUE(repaired.has_value()) << error;
  EXPECT_EQ(result.cost, repaired->cost);
  expect_plans_equal(result.plan, repaired->plan);
}

TEST(RepairAdapter, DegeneratesToLnsWithoutADelta) {
  std::string error;
  auto inst = WorkloadRegistry::global().make_instance(
      "mapreduce:maps=6,reducers=3", 4, /*P=*/4, 3.0, 1, 5, &error);
  ASSERT_TRUE(inst.has_value()) << error;
  SchedulerOptions options;
  options.budget_ms = 0;
  options.max_iterations = 800;
  const ScheduleResult via_repair =
      SchedulerRegistry::global().at("repair").run(*inst, options);
  const ScheduleResult via_lns =
      SchedulerRegistry::global().at("lns").run(*inst, options);
  EXPECT_EQ(via_repair.cost, via_lns.cost);  // same search, bitwise
  expect_plans_equal(via_repair.plan, via_lns.plan);
}

// ---------------------------------------------------------------------------
// Trace corpus contracts.

TEST(TraceCorpus, FamiliesAreRegisteredAndRecognized) {
  const std::vector<std::string> families = trace_family_names();
  ASSERT_EQ(families.size(), 5u);
  EXPECT_TRUE(std::is_sorted(families.begin(), families.end()));
  for (const std::string& family : families) {
    EXPECT_TRUE(is_trace_spec(family)) << family;
    std::string error;
    auto trace = make_trace(family, 1, "uniform:P=4", &error);
    ASSERT_TRUE(trace.has_value()) << family << ": " << error;
    EXPECT_FALSE(trace->events.empty()) << family;
  }
  EXPECT_FALSE(is_trace_spec("stencil2d:nx=4"));
}

TEST(TraceCorpus, DeterministicPerSeedAndCanonicallyNamed) {
  std::string error;
  const char* spec = "trace-churn:base=fft,events=6,batch=2";
  auto a = make_trace(spec, 11, "uniform:P=4", &error);
  auto b = make_trace(spec, 11, "uniform:P=4", &error);
  auto c = make_trace(spec, 12, "uniform:P=4", &error);
  ASSERT_TRUE(a && b && c) << error;
  ASSERT_EQ(a->events.size(), b->events.size());
  for (std::size_t e = 0; e < a->events.size(); ++e) {
    EXPECT_EQ(a->events[e].at_ms, b->events[e].at_ms);
    EXPECT_TRUE(a->events[e].delta == b->events[e].delta) << "event " << e;
  }
  EXPECT_EQ(trace_canonical_hash(*a), trace_canonical_hash(*b));
  EXPECT_NE(trace_canonical_hash(*a), trace_canonical_hash(*c));

  // Timestamps strictly increase along the trace.
  for (std::size_t e = 1; e < a->events.size(); ++e) {
    EXPECT_GT(a->events[e].at_ms, a->events[e - 1].at_ms);
  }

  // Canonical naming: params sort, defaults drop.
  EXPECT_EQ(a->name, "trace-churn:base=fft,batch=2,events=6");
  auto d = make_trace("trace-grow:events=8,batch=3", 11, "uniform:P=4",
                      &error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->name, "trace-grow");  // all parameters at their defaults
}

TEST(TraceCorpus, StreamingMatchesMaterializedAndStopsEarly) {
  std::string error;
  const char* spec = "trace-mixed:base=stencil2d,events=5";
  auto trace = make_trace(spec, 23, "uniform:P=4", &error);
  ASSERT_TRUE(trace.has_value()) << error;

  std::vector<TraceEvent> streamed;
  MbspInstance base{ComputeDag("empty"), Machine::make(1, 1)};
  ASSERT_TRUE(for_each_trace_event(
      spec, 23, "uniform:P=4",
      [&](const TraceEvent& event) {
        streamed.push_back(event);
        return true;
      },
      &base, &error))
      << error;
  ASSERT_EQ(streamed.size(), trace->events.size());
  for (std::size_t e = 0; e < streamed.size(); ++e) {
    EXPECT_EQ(streamed[e].at_ms, trace->events[e].at_ms);
    EXPECT_TRUE(streamed[e].delta == trace->events[e].delta) << "event " << e;
  }
  EXPECT_EQ(base.dag.num_nodes(), trace->base.dag.num_nodes());
  EXPECT_EQ(base.arch.name, trace->base.arch.name);

  std::size_t seen = 0;
  ASSERT_TRUE(for_each_trace_event(spec, 23, "uniform:P=4",
                                   [&](const TraceEvent&) {
                                     ++seen;
                                     return seen < 2;
                                   },
                                   nullptr, &error))
      << error;
  EXPECT_EQ(seen, 2u);
}

TEST(TraceCorpus, EventsAreValidByConstruction) {
  // Every generated delta applies cleanly, and the feasibility invariant
  // (min machine capacity >= min_memory_r0) survives the whole replay.
  for (const TraceCase& tc : kTraceCases) {
    std::string error;
    auto trace = make_trace(tc.trace, 31, tc.machine, &error);
    ASSERT_TRUE(trace.has_value()) << tc.trace << ": " << error;
    MbspInstance inst = trace->base;
    for (std::size_t e = 0; e < trace->events.size(); ++e) {
      ASSERT_TRUE(apply_instance_delta(inst, trace->events[e].delta, nullptr,
                                       &error))
          << tc.trace << " event " << e << ": " << error;
      double min_capacity = inst.arch.fast_memory;
      for (int p = 0; p < inst.arch.num_processors; ++p) {
        min_capacity = std::min(min_capacity, inst.arch.memory(p));
      }
      EXPECT_GE(min_capacity, min_memory_r0(inst.dag))
          << tc.trace << " event " << e;
    }
  }
}

TEST(TraceCorpus, BadSpecsAreTypedErrors) {
  std::string error;
  EXPECT_FALSE(make_trace("trace-nope:events=2", 1, "uniform:P=4", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      make_trace("trace-grow:bogus=1", 1, "uniform:P=4", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  EXPECT_FALSE(
      make_trace("trace-grow:base=not-a-family", 1, "uniform:P=4", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(make_trace("trace-grow:events=0", 1, "uniform:P=4", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mbsp
