// Tests for the dataset generators: structure, sizes matching the paper's
// datasets, determinism, and acyclicity of every family.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/graph/topology.hpp"
#include "src/model/instance.hpp"

namespace mbsp {
namespace {

TEST(SparsePattern, DiagonalAndBounds) {
  Rng rng(1);
  const auto pattern = random_sparse_pattern(10, 3, rng);
  ASSERT_EQ(pattern.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(std::find(pattern[i].begin(), pattern[i].end(), i),
              pattern[i].end())
        << "diagonal missing in row " << i;
    for (int col : pattern[i]) {
      EXPECT_GE(col, 0);
      EXPECT_LT(col, 10);
    }
    // No duplicates.
    auto sorted = pattern[i];
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

TEST(ReductionTree, SingleInputPassThrough) {
  ComputeDag dag;
  const NodeId a = dag.add_node(1, 1);
  EXPECT_EQ(add_reduction_tree(dag, {a}, 1, 1), a);
  EXPECT_EQ(dag.num_nodes(), 1);
}

TEST(ReductionTree, BuildsBinaryTree) {
  ComputeDag dag;
  std::vector<NodeId> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(dag.add_node(0, 1));
  const NodeId root = add_reduction_tree(dag, inputs, 1, 1);
  EXPECT_EQ(dag.num_nodes(), 9);  // 5 leaves + 4 internal
  EXPECT_TRUE(dag.is_sink(root));
  EXPECT_TRUE(is_acyclic(dag));
}

TEST(Spmv, StructureSane) {
  Rng rng(2);
  const ComputeDag dag = spmv_dag(6, 3, rng, "spmv");
  EXPECT_TRUE(is_acyclic(dag));
  EXPECT_EQ(dag.sources().size(), 6u);  // the input vector
  EXPECT_EQ(dag.sinks().size(), 6u);    // one result per row
}

TEST(IteratedSpmv, DeeperThanSingle) {
  Rng rng(2);
  const ComputeDag once = spmv_dag(5, 2, rng, "a");
  Rng rng2(2);
  const ComputeDag thrice = iterated_spmv_dag(5, 3, 2, rng2, "b");
  const auto l1 = longest_path_levels(once);
  const auto l3 = longest_path_levels(thrice);
  EXPECT_GT(*std::max_element(l3.begin(), l3.end()),
            *std::max_element(l1.begin(), l1.end()));
}

TEST(Cg, AcyclicWithScalarChains) {
  Rng rng(3);
  const ComputeDag dag = cg_dag(3, 2, 2, rng, "cg");
  EXPECT_TRUE(is_acyclic(dag));
  EXPECT_GT(dag.num_edges(), static_cast<std::size_t>(dag.num_nodes()));
}

TEST(Knn, QueryCountMatchesSinks) {
  Rng rng(4);
  const ComputeDag dag = knn_dag(5, 3, 2, rng, "knn");
  EXPECT_TRUE(is_acyclic(dag));
  EXPECT_EQ(dag.sinks().size(), 3u);  // one selection per query
}

TEST(CoarseGrained, AllAcyclic) {
  Rng rng(5);
  EXPECT_TRUE(is_acyclic(bicgstab_dag(3)));
  EXPECT_TRUE(is_acyclic(kmeans_dag(4, 4, 3)));
  EXPECT_TRUE(is_acyclic(pregel_dag(5, 4, rng)));
  EXPECT_TRUE(is_acyclic(pagerank_dag(16, 8, rng)));
  EXPECT_TRUE(is_acyclic(snni_dag(16, 9, rng)));
}

TEST(TinyDataset, FifteenInstancesInPaperSizeRange) {
  const auto dataset = tiny_dataset(2025);
  ASSERT_EQ(dataset.size(), 15u);
  for (const ComputeDag& dag : dataset) {
    EXPECT_TRUE(is_acyclic(dag)) << dag.name();
    EXPECT_GE(dag.num_nodes(), 40) << dag.name();
    EXPECT_LE(dag.num_nodes(), 80) << dag.name();
    // Memory weights randomized into {1..5}.
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      EXPECT_GE(dag.mu(v), 1);
      EXPECT_LE(dag.mu(v), 5);
    }
    EXPECT_GT(min_memory_r0(dag), 0);
  }
  EXPECT_EQ(dataset[0].name(), "bicgstab");
  EXPECT_EQ(dataset[3].name(), "spmv_N6");
}

TEST(SmallDataset, TenInstancesInPaperSizeRange) {
  const auto dataset = small_dataset(2025);
  ASSERT_EQ(dataset.size(), 10u);
  for (const ComputeDag& dag : dataset) {
    EXPECT_TRUE(is_acyclic(dag)) << dag.name();
    EXPECT_GE(dag.num_nodes(), 264) << dag.name() << " " << dag.num_nodes();
    EXPECT_LE(dag.num_nodes(), 464) << dag.name() << " " << dag.num_nodes();
  }
}

TEST(Datasets, DeterministicForSeed) {
  const auto a = tiny_dataset(7);
  const auto b = tiny_dataset(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_nodes(), b[i].num_nodes());
    EXPECT_EQ(a[i].num_edges(), b[i].num_edges());
    for (NodeId v = 0; v < a[i].num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(a[i].mu(v), b[i].mu(v));
    }
  }
}

TEST(Datasets, DifferentSeedsChangeWeights) {
  const auto a = tiny_dataset(7);
  const auto b = tiny_dataset(8);
  int diffs = 0;
  for (NodeId v = 0; v < a[0].num_nodes(); ++v) {
    diffs += a[0].mu(v) != b[0].mu(v);
  }
  EXPECT_GT(diffs, 0);
}

}  // namespace
}  // namespace mbsp
