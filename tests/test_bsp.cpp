// Tests for the memory-oblivious BSP layer: validity of every stage-1
// scheduler and sanity of the BSP cost model.
#include <gtest/gtest.h>

#include "src/bsp/bsp_schedule.hpp"
#include "src/bsp/cilk_scheduler.hpp"
#include "src/bsp/dfs_scheduler.hpp"
#include "src/bsp/greedy_scheduler.hpp"
#include "src/bsp/refined_scheduler.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/topology.hpp"

namespace mbsp {
namespace {

TEST(BspValidate, CatchesCrossProcSameSuperstep) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  BspSchedule sched;
  sched.proc = {-1, 0, 1};
  sched.superstep = {-1, 0, 0};
  sched.order = {1, 2};
  EXPECT_FALSE(validate_bsp(dag, 2, sched).ok);
  sched.superstep = {-1, 0, 1};
  EXPECT_TRUE(validate_bsp(dag, 2, sched).ok);
}

TEST(BspValidate, CatchesBadOrder) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  BspSchedule sched;
  sched.proc = {-1, 0, 0};
  sched.superstep = {-1, 0, 0};
  sched.order = {2, 1};  // child before parent on same processor
  EXPECT_FALSE(validate_bsp(dag, 2, sched).ok);
}

TEST(BspCost, AccountsForCommunication) {
  // a on p0, b on p1: mu(a) crosses, plus the source delivery.
  ComputeDag dag;
  dag.add_node(0, 2);  // source s, mu 2
  dag.add_node(1, 3);  // a
  dag.add_node(1, 1);  // b
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  BspSchedule same, split;
  same.proc = {-1, 0, 0};
  same.superstep = {-1, 0, 0};
  same.order = {1, 2};
  split.proc = {-1, 0, 1};
  split.superstep = {-1, 0, 1};
  split.order = {1, 2};
  const Architecture arch = Architecture::make(2, 100, 1, 0);
  EXPECT_LT(bsp_cost(dag, arch, same), bsp_cost(dag, arch, split));
}

class SchedulerValidity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerValidity, AllSchedulersValidOnDataset) {
  const auto [instance_index, num_procs] = GetParam();
  auto dataset = tiny_dataset(2025);
  const ComputeDag& dag = dataset[instance_index];
  const Architecture arch = Architecture::make(num_procs, 1e9, 1, 10);

  GreedyBspScheduler greedy;
  CilkScheduler cilk;
  RefinedBspScheduler::Params rp;
  rp.budget_ms = 20;
  RefinedBspScheduler refined(rp);
  std::vector<BspScheduler*> schedulers{&greedy, &cilk, &refined};
  for (BspScheduler* scheduler : schedulers) {
    const BspSchedule sched = scheduler->schedule(dag, arch);
    const auto valid = validate_bsp(dag, num_procs, sched);
    EXPECT_TRUE(valid.ok)
        << dag.name() << " / " << scheduler->name() << ": " << valid.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Dataset, SchedulerValidity,
                         ::testing::Combine(::testing::Values(0, 2, 4, 7, 10,
                                                              13),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(GreedyScheduler, BalancesIndependentWork) {
  // 8 independent unit tasks on 4 procs: expect parallel work split.
  ComputeDag dag;
  const NodeId s = dag.add_node(0, 1);
  for (int i = 0; i < 8; ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(s, v);
  }
  GreedyBspScheduler greedy;
  const BspSchedule sched =
      greedy.schedule(dag, Architecture::make(4, 1e9, 1, 0));
  std::vector<int> per_proc(4, 0);
  for (NodeId v = 1; v < dag.num_nodes(); ++v) ++per_proc[sched.proc[v]];
  for (int p = 0; p < 4; ++p) EXPECT_EQ(per_proc[p], 2) << "proc " << p;
}

TEST(GreedyScheduler, ChainStaysOnOneProcessor) {
  ComputeDag dag;
  NodeId prev = dag.add_node(0, 1);
  for (int i = 0; i < 10; ++i) {
    const NodeId v = dag.add_node(1, 1);
    dag.add_edge(prev, v);
    prev = v;
  }
  GreedyBspScheduler greedy;
  const BspSchedule sched =
      greedy.schedule(dag, Architecture::make(4, 1e9, 1, 0));
  std::set<int> procs;
  for (NodeId v = 1; v < dag.num_nodes(); ++v) procs.insert(sched.proc[v]);
  EXPECT_EQ(procs.size(), 1u);
}

TEST(CilkScheduler, UsesMultipleProcessorsOnWideDag) {
  Rng rng(3);
  ComputeDag dag = random_layered_dag(60, 8, rng);
  CilkScheduler cilk;
  const BspSchedule sched =
      cilk.schedule(dag, Architecture::make(4, 1e9, 1, 0));
  std::set<int> procs;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!dag.is_source(v)) procs.insert(sched.proc[v]);
  }
  EXPECT_GT(procs.size(), 1u);
}

TEST(DfsScheduler, HandlesReconvergentFanout) {
  // Regression: a pending parent deeper in the DFS stack used to livelock
  // the scheduler (observed on the bicgstab task graph).
  for (int i : {0, 1, 2}) {
    auto dataset = tiny_dataset(2025);
    const ComputeDag& dag = dataset[i];
    DfsScheduler dfs;
    const BspSchedule sched =
        dfs.schedule(dag, Architecture::make(1, 1e9, 1, 0));
    const auto valid = validate_bsp(dag, 1, sched);
    EXPECT_TRUE(valid.ok) << dag.name() << ": " << valid.error;
  }
}

TEST(DfsScheduler, SingleProcessorTopological) {
  Rng rng(5);
  const ComputeDag dag = iterated_spmv_dag(4, 2, 2, rng, "dfs");
  DfsScheduler dfs;
  const BspSchedule sched = dfs.schedule(dag, Architecture::make(1, 1e9, 1, 0));
  const auto valid = validate_bsp(dag, 1, sched);
  EXPECT_TRUE(valid.ok) << valid.error;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!dag.is_source(v)) EXPECT_EQ(sched.superstep[v], 0);
  }
}

TEST(RefinedScheduler, NeverWorseThanGreedyLift) {
  auto dataset = tiny_dataset(2025);
  const Architecture arch = Architecture::make(4, 1e9, 1, 10);
  for (int i : {1, 5, 8}) {
    const ComputeDag& dag = dataset[i];
    GreedyBspScheduler greedy;
    const BspSchedule base = RefinedBspScheduler::lift_assignment(
        dag, greedy.schedule(dag, arch).proc);
    RefinedBspScheduler::Params params;
    params.budget_ms = 100;
    RefinedBspScheduler refined(params);
    const BspSchedule improved = refined.schedule(dag, arch);
    EXPECT_LE(bsp_cost(dag, arch, improved), bsp_cost(dag, arch, base) + 1e-9)
        << dag.name();
  }
}

TEST(LiftAssignment, MinimalSuperstepsOnChainSplit) {
  ComputeDag dag;
  dag.add_node(0, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_node(1, 1);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(2, 3);
  const BspSchedule lifted =
      RefinedBspScheduler::lift_assignment(dag, {-1, 0, 1, 0});
  EXPECT_TRUE(validate_bsp(dag, 2, lifted).ok);
  EXPECT_EQ(lifted.superstep[1], 0);
  EXPECT_EQ(lifted.superstep[2], 1);
  EXPECT_EQ(lifted.superstep[3], 2);
}

}  // namespace
}  // namespace mbsp
