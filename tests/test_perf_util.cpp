// Unit tests for the hot-path memory-layout substrate: the bump arena
// (reuse/reset semantics, no stale-data leakage across resets) and the
// open-addressing FlatMap (epoch clears, growth, iteration).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <set>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/flat_map.hpp"

namespace mbsp {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena(256);
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.allocate_array<int>(7);
    for (int j = 0; j < 7; ++j) p[j] = i * 100 + j;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 7; ++j) EXPECT_EQ(ptrs[i][j], i * 100 + j);
  }
}

TEST(Arena, ResetReusesMemoryWithoutGrowth) {
  Arena arena(1 << 12);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      double* p = arena.allocate_array<double>(8);
      p[0] = round + i;
    }
    arena.reset();
  }
  const std::size_t cap_after_warmup = arena.capacity_bytes();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) arena.allocate_array<double>(8);
    arena.reset();
  }
  // Steady state: reset recycles the same chunks, no further growth.
  EXPECT_EQ(arena.capacity_bytes(), cap_after_warmup);
}

TEST(Arena, NoStaleDataDependenceAcrossResets) {
  // Writing distinct values each round and never reading across resets
  // must give identical results whether memory is recycled (bump mode)
  // or fresh-and-poisoned every time (paranoid mode).
  auto run = [](bool paranoid) {
    Arena arena(512);
    arena.set_paranoid(paranoid);
    long checksum = 0;
    for (int round = 0; round < 20; ++round) {
      ArenaVector<int> vec(&arena);
      for (int i = 0; i < 37 + round; ++i) vec.push_back(round * 1000 + i);
      for (std::size_t i = 0; i < vec.size(); ++i) checksum += vec[i];
      arena.reset();
    }
    return checksum;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Arena, AlignmentRespected) {
  Arena arena(64);
  for (std::size_t align : {std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.allocate(24, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
  }
}

TEST(ArenaVector, GrowPreservesContents) {
  Arena arena;
  ArenaVector<long> vec(&arena);
  for (long i = 0; i < 1000; ++i) vec.push_back(i * 3);
  ASSERT_EQ(vec.size(), 1000u);
  for (long i = 0; i < 1000; ++i) EXPECT_EQ(vec[static_cast<std::size_t>(i)], i * 3);
}

TEST(ArenaVector, AppendBulk) {
  Arena arena;
  ArenaVector<int> vec(&arena);
  std::vector<int> src(100);
  std::iota(src.begin(), src.end(), 5);
  vec.push_back(-1);
  vec.append(src.data(), src.size());
  ASSERT_EQ(vec.size(), 101u);
  EXPECT_EQ(vec[0], -1);
  EXPECT_EQ(vec[1], 5);
  EXPECT_EQ(vec[100], 104);
}

TEST(FlatMap, InsertFindClear) {
  FlatMap<int, int> map;
  for (int i = 0; i < 100; ++i) map.get_or_insert(i * 7, 0) = i;
  EXPECT_EQ(map.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const int* v = map.find(i * 7);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.find(3), nullptr);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(7), nullptr);
}

TEST(FlatMap, GetOrInsertKeepsFirstValue) {
  FlatMap<long, double> map;
  map.get_or_insert(42, 1.5);
  map.get_or_insert(42, 9.9) += 1.0;
  const double* v = map.find(42);
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(*v, 2.5);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SurvivesManyClears) {
  FlatMap<int, int> map;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 20; ++i) map.get_or_insert(i + round, round);
    EXPECT_EQ(map.size(), 20u);
    map.clear();
  }
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, ForEachVisitsAllOnceInInsertionOrder) {
  FlatMap<int, int> map;
  std::vector<int> inserted;
  for (int i = 0; i < 200; ++i) {
    const int key = (i * 37) % 1000;
    if (map.find(key) == nullptr) inserted.push_back(key);
    map.get_or_insert(key, i);
  }
  std::vector<int> visited;
  map.for_each([&](int key, int) { visited.push_back(key); });
  EXPECT_EQ(visited, inserted);
}

TEST(FlatMap, GrowthKeepsEntries) {
  FlatMap<int, long> map;
  for (int i = 0; i < 5000; ++i) map.get_or_insert(i, i * 2L);
  EXPECT_EQ(map.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const long* v = map.find(i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i * 2L);
  }
}

}  // namespace
}  // namespace mbsp
