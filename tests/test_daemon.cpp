// End-to-end tests of the mbspd serving path (docs/DAEMON.md), run
// against an in-process MbspdServer over a real Unix-domain socket:
// round-trip correctness vs a local registry solve, the cache acceptance
// contract (exact hits are bitwise-identical and invoke no solver; warm
// starts never lose to the cached incumbent), LRU eviction order,
// concurrent-client determinism, per-request deadlines, and graceful
// drain on stop().
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <thread>
#include <vector>

#include "src/daemon/client.hpp"
#include "src/daemon/server.hpp"
#include "src/graph/dag_io.hpp"
#include "src/model/machine_registry.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/workload/workload_registry.hpp"

#include <unistd.h>

namespace mbsp::daemon {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/mbspd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

ScheduleRequest make_request(const std::string& workload,
                             long max_iterations) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  ScheduleRequest request;
  request.dag_bytes = dag_to_binary(*dag);
  request.machine_spec = "uniform:P=4";
  request.scheduler = "lns";
  request.budget_ms = 0;  // deterministic: the iteration cap decides
  request.max_iterations = max_iterations;
  request.seed = 7;
  return request;
}

/// Reference result: the same solve the daemon performs, run locally.
ScheduleResult local_solve(const std::string& workload,
                           const ScheduleRequest& request) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  auto machine = MachineRegistry::global().make_machine(
      request.machine_spec, min_memory_r0(*dag), &error);
  EXPECT_TRUE(machine) << error;
  const MbspInstance inst{std::move(*dag), std::move(*machine)};
  SchedulerOptions options;
  options.budget_ms = request.budget_ms;
  options.max_iterations = request.max_iterations;
  options.seed = request.seed;
  const MbspScheduler* scheduler =
      SchedulerRegistry::global().find(request.scheduler);
  EXPECT_NE(scheduler, nullptr);
  return scheduler->run(inst, options);
}

std::string plan_bytes(const ComputePlan& plan) {
  WireWriter w;
  encode_plan(w, plan);
  return w.take();
}

class DaemonTest : public ::testing::Test {
 protected:
  void start_server(std::size_t cache_capacity = 256,
                    std::size_t solver_threads = 2) {
    options_.socket_path = test_socket_path();
    options_.cache_capacity = cache_capacity;
    options_.solver_threads = solver_threads;
    server_ = std::make_unique<MbspdServer>(options_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  MbspClient::Outcome run_ok(MbspClient& client,
                             const ScheduleRequest& request) {
    MbspClient::Outcome outcome;
    std::string error;
    EXPECT_TRUE(client.run(request, &outcome, &error)) << error;
    EXPECT_TRUE(outcome.ok) << outcome.error.message;
    return outcome;
  }

  void connect_ok(MbspClient& client) {
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  }

  MbspdOptions options_;
  std::unique_ptr<MbspdServer> server_;
};

TEST_F(DaemonTest, RoundTripMatchesLocalSolve) {
  start_server();
  const std::string workload = "fft:n=16";
  const ScheduleRequest request = make_request(workload, 2000);
  const ScheduleResult reference = local_solve(workload, request);

  MbspClient client;
  connect_ok(client);
  const MbspClient::Outcome outcome = run_ok(client, request);
  EXPECT_EQ(outcome.final.cache, CacheStatus::kCold);
  EXPECT_EQ(outcome.final.cost, reference.cost);
  EXPECT_EQ(outcome.final.baseline_cost, reference.baseline_cost);
  EXPECT_EQ(outcome.final.supersteps,
            static_cast<std::uint32_t>(reference.supersteps));
  EXPECT_EQ(outcome.final.machine, "uniform");
  EXPECT_EQ(plan_bytes(outcome.final.plan), plan_bytes(reference.plan))
      << "the daemon must return the exact plan a local solve produces";
}

TEST_F(DaemonTest, ExactHitIsBitwiseIdenticalAndInvokesNoSolver) {
  start_server();
  const ScheduleRequest request = make_request("fft:n=16", 2000);
  MbspClient client;
  connect_ok(client);

  const MbspClient::Outcome first = run_ok(client, request);
  EXPECT_EQ(first.final.cache, CacheStatus::kCold);
  const std::uint64_t solver_calls_after_first = server_->stats().solver_calls;

  const MbspClient::Outcome second = run_ok(client, request);
  EXPECT_EQ(second.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(second.final.plan), plan_bytes(first.final.plan));
  EXPECT_EQ(second.final.cost, first.final.cost);
  EXPECT_EQ(second.final.io_volume, first.final.io_volume);
  EXPECT_EQ(server_->stats().solver_calls, solver_calls_after_first)
      << "an exact hit must be served without invoking a solver";
  EXPECT_EQ(server_->stats().exact_hits, 1u);

  // A *smaller* effort request is still within the cached effort: exact.
  ScheduleRequest smaller = request;
  smaller.max_iterations = 500;
  const MbspClient::Outcome third = run_ok(client, smaller);
  EXPECT_EQ(third.final.cache, CacheStatus::kExact);
  EXPECT_EQ(server_->stats().solver_calls, solver_calls_after_first);
}

TEST_F(DaemonTest, WarmStartNeverLosesToTheCachedIncumbent) {
  start_server();
  MbspClient client;
  connect_ok(client);

  // Seed the cache with a small-effort solve, then ask for more effort.
  const ScheduleRequest small = make_request("fft:n=16", 500);
  const MbspClient::Outcome cached = run_ok(client, small);
  ASSERT_EQ(cached.final.cache, CacheStatus::kCold);

  ScheduleRequest bigger = small;
  bigger.max_iterations = 2000;
  const MbspClient::Outcome warm = run_ok(client, bigger);
  EXPECT_EQ(warm.final.cache, CacheStatus::kWarm);
  EXPECT_LE(warm.final.cost, cached.final.cost)
      << "the LNS contract: never worse than the warm-start incumbent";

  // Reference point: the same big request solved cold (cache bypassed).
  ScheduleRequest cold = bigger;
  cold.no_cache = true;
  const MbspClient::Outcome cold_run = run_ok(client, cold);
  ASSERT_EQ(cold_run.final.cache, CacheStatus::kCold);
  EXPECT_LE(warm.final.cost, cold_run.final.cost)
      << "warm-starting from the incumbent must not lose to a cold solve "
         "at equal effort on this fixed (workload, seed)";

  // The warm re-solve re-inserts at the enlarged effort: the same big
  // request is now an exact hit.
  const MbspClient::Outcome replay = run_ok(client, bigger);
  EXPECT_EQ(replay.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(replay.final.plan), plan_bytes(warm.final.plan));
}

TEST_F(DaemonTest, LruEvictionFollowsRecencyOrder) {
  start_server(/*cache_capacity=*/2);
  MbspClient client;
  connect_ok(client);

  const ScheduleRequest a = make_request("fft:n=8", 300);
  const ScheduleRequest b = make_request("fft:n=16", 300);
  const ScheduleRequest c = make_request("lu:blocks=3", 300);

  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kCold);
  EXPECT_EQ(run_ok(client, b).final.cache, CacheStatus::kCold);
  // Touch `a` so `b` is least recently used, then overflow with `c`.
  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, c).final.cache, CacheStatus::kCold);
  EXPECT_EQ(server_->stats().evictions, 1u);

  // `b` was evicted; `a` and `c` survived.
  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, c).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, b).final.cache, CacheStatus::kCold)
      << "b must have been evicted as the LRU entry";
}

TEST_F(DaemonTest, ConcurrentClientsGetIdenticalPlansForTheSameRequest) {
  start_server(/*cache_capacity=*/256, /*solver_threads=*/4);
  const ScheduleRequest request = make_request("fft:n=16", 1000);
  const std::string reference =
      plan_bytes(local_solve("fft:n=16", request).plan);

  // 4 clients race the same request: whoever solves first populates the
  // cache, everyone else hits it — but every reply must carry the same
  // bitwise plan, equal to the local reference (determinism contract).
  constexpr int kClients = 4;
  std::vector<std::string> plans(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      MbspClient client;
      std::string error;
      ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
      MbspClient::Outcome outcome;
      ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
      ASSERT_TRUE(outcome.ok) << outcome.error.message;
      plans[i] = plan_bytes(outcome.final.plan);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(plans[i], reference) << "client " << i;
  }
}

TEST_F(DaemonTest, ConcurrentDistinctRequestsMatchLocalReferences) {
  start_server(/*cache_capacity=*/256, /*solver_threads=*/4);
  const std::vector<std::string> workloads = {"fft:n=8", "fft:n=16",
                                              "lu:blocks=3", "cholesky:blocks=3"};
  std::vector<std::string> got(workloads.size()), want(workloads.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    threads.emplace_back([&, i] {
      const ScheduleRequest request = make_request(workloads[i], 500);
      want[i] = plan_bytes(local_solve(workloads[i], request).plan);
      MbspClient client;
      std::string error;
      ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
      MbspClient::Outcome outcome;
      ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
      ASSERT_TRUE(outcome.ok) << outcome.error.message;
      got[i] = plan_bytes(outcome.final.plan);
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << workloads[i];
  }
}

TEST_F(DaemonTest, NoCacheRequestsAlwaysSolveAndNeverMemoize) {
  start_server();
  MbspClient client;
  connect_ok(client);
  ScheduleRequest request = make_request("fft:n=8", 300);
  request.no_cache = true;

  EXPECT_EQ(run_ok(client, request).final.cache, CacheStatus::kCold);
  EXPECT_EQ(run_ok(client, request).final.cache, CacheStatus::kCold);
  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.solver_calls, 2u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST_F(DaemonTest, PinnedHashIsServedFromCacheAndDagStore) {
  start_server();
  MbspClient client;
  connect_ok(client);
  const ScheduleRequest inline_request = make_request("fft:n=16", 500);
  const MbspClient::Outcome first = run_ok(client, inline_request);

  // Identical request by hash only: exact hit, no DAG bytes on the wire.
  ScheduleRequest pinned;
  pinned.dag_hash = first.final.dag_hash;
  pinned.machine_spec = inline_request.machine_spec;
  pinned.scheduler = inline_request.scheduler;
  pinned.budget_ms = inline_request.budget_ms;
  pinned.max_iterations = inline_request.max_iterations;
  pinned.seed = inline_request.seed;
  const MbspClient::Outcome replay = run_ok(client, pinned);
  EXPECT_EQ(replay.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(replay.final.plan), plan_bytes(first.final.plan));

  // More effort by hash: the warm re-solve needs the DAG itself, which
  // the bounded DAG store still has resident.
  ScheduleRequest pinned_bigger = pinned;
  pinned_bigger.max_iterations = 1500;
  const MbspClient::Outcome warm = run_ok(client, pinned_bigger);
  EXPECT_EQ(warm.final.cache, CacheStatus::kWarm);
  EXPECT_LE(warm.final.cost, first.final.cost);
}

TEST_F(DaemonTest, QueuedDeadlineExpiryIsATypedError) {
  // One solver thread: a long solve occupies it, so a second request's
  // deadline covers (and here, expires in) the admission queue.
  start_server(/*cache_capacity=*/256, /*solver_threads=*/1);

  std::thread long_solver([&] {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    MbspClient::Outcome outcome;
    ASSERT_TRUE(
        client.run(make_request("stencil2d:nx=8,ny=8,steps=3", 30'000),
                   &outcome, &error))
        << error;
    ASSERT_TRUE(outcome.ok) << outcome.error.message;
  });
  // Give the long solve time to claim the only worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  MbspClient client;
  connect_ok(client);
  ScheduleRequest hurried = make_request("fft:n=8", 300);
  hurried.deadline_ms = 50;
  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.run(hurried, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok) << "the deadline must expire in the queue";
  EXPECT_EQ(outcome.error.code, WireError::kDeadlineExpired);
  EXPECT_NE(outcome.error.message.find("deadline"), std::string::npos);
  long_solver.join();
}

TEST_F(DaemonTest, StopDrainsInFlightRequestsThenRefusesConnections) {
  start_server();
  const ScheduleRequest request =
      make_request("stencil2d:nx=8,ny=8,steps=3", 8'000);

  MbspClient::Outcome outcome;
  std::thread in_flight([&] {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
  });
  // Let the request reach the solver, then initiate the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server_->stop();
  in_flight.join();

  EXPECT_TRUE(outcome.ok) << "a drained shutdown must still deliver the "
                             "final frame: "
                          << outcome.error.message;
  EXPECT_GT(outcome.final.cost, 0);

  MbspClient late;
  std::string error;
  EXPECT_FALSE(late.connect(options_.socket_path, &error))
      << "the socket must be gone after stop()";
}

/// A deterministic growth delta for `dag`: two arriving nodes chained off
/// node 0 (pure DAG delta, machine untouched).
InstanceDelta growth_delta(const ComputeDag& dag) {
  InstanceDelta delta;
  delta.add_node(2.0, 1.0);
  delta.add_edge(0, dag.num_nodes());
  delta.add_node(1.0, 1.0);
  delta.add_edge(dag.num_nodes(), dag.num_nodes() + 1);
  return delta;
}

RepairRequest make_repair_request(const std::string& workload,
                                  long max_iterations) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  RepairRequest request;
  request.dag_bytes = dag_to_binary(*dag);
  request.machine_spec = "uniform:P=4";
  request.scheduler = "lns";
  request.budget_ms = 0;
  request.max_iterations = max_iterations;
  request.seed = 7;
  request.delta = growth_delta(*dag);
  return request;
}

/// Reference repair, run locally exactly the way the daemon does it: the
/// incumbent is the request's own scheduler solved on the BASE scenario
/// (machine at the base DAG's r0), then the "repair" adapter patches it
/// onto the mutated instance.
ScheduleResult local_repair(const std::string& workload,
                            const RepairRequest& request,
                            bool with_incumbent) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  auto machine = MachineRegistry::global().make_machine(
      request.machine_spec, min_memory_r0(*dag), &error);
  EXPECT_TRUE(machine) << error;
  MbspInstance base{*dag, std::move(*machine)};

  SchedulerOptions options;
  options.budget_ms = request.budget_ms;
  options.max_iterations = request.max_iterations;
  options.seed = request.seed;
  const MbspScheduler* scheduler =
      SchedulerRegistry::global().find(request.scheduler);
  EXPECT_NE(scheduler, nullptr);

  MbspInstance mutated = base;
  EXPECT_TRUE(apply_instance_delta(mutated, request.delta, nullptr, &error))
      << error;
  if (!with_incumbent) return scheduler->run(mutated, options);

  const ScheduleResult incumbent = scheduler->run(base, options);
  options.warm_start_plan = &incumbent.plan;
  options.repair_delta = &request.delta;
  return SchedulerRegistry::global().at("repair").run(mutated, options);
}

TEST_F(DaemonTest, RepairPatchesTheCachedIncumbentAndMatchesLocalRepair) {
  start_server();
  const std::string workload = "fft:n=16";
  MbspClient client;
  connect_ok(client);

  // Seed the base scenario's incumbent through the normal SCHEDULE path.
  const ScheduleRequest base = make_request(workload, 1500);
  const MbspClient::Outcome seeded = run_ok(client, base);
  ASSERT_EQ(seeded.final.cache, CacheStatus::kCold);
  const std::uint64_t solver_calls_after_seed = server_->stats().solver_calls;

  RepairRequest repair = make_repair_request(workload, 1500);
  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.repair(repair, &outcome, &error)) << error;
  ASSERT_TRUE(outcome.ok) << outcome.error.message;
  EXPECT_EQ(outcome.final.cache, CacheStatus::kRepaired);
  EXPECT_EQ(outcome.final.machine, "uniform");  // pure DAG delta
  EXPECT_NE(outcome.final.dag_hash, seeded.final.dag_hash)
      << "the final frame must be keyed by the MUTATED dag";

  // Differential against the same repair performed locally.
  const ScheduleResult reference =
      local_repair(workload, repair, /*with_incumbent=*/true);
  EXPECT_EQ(outcome.final.cost, reference.cost);
  EXPECT_EQ(outcome.final.baseline_cost, reference.baseline_cost);
  EXPECT_EQ(plan_bytes(outcome.final.plan), plan_bytes(reference.plan))
      << "the daemon repair must equal a local repair_plan bitwise";

  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.repair_requests, 1u);
  EXPECT_EQ(stats.repair_hits, 1u);
  EXPECT_EQ(stats.solver_calls, solver_calls_after_seed + 1);

  // The repair counters travel over the wire too.
  DaemonStats over_wire;
  ASSERT_TRUE(client.stats(&over_wire, &error)) << error;
  EXPECT_EQ(over_wire.repair_requests, 1u);
  EXPECT_EQ(over_wire.repair_hits, 1u);
}

TEST_F(DaemonTest, RepeatRepairIsAnExactHitWithoutASolverCall) {
  start_server();
  const std::string workload = "fft:n=16";
  MbspClient client;
  connect_ok(client);
  run_ok(client, make_request(workload, 1000));

  const RepairRequest repair = make_repair_request(workload, 1000);
  MbspClient::Outcome first, second;
  std::string error;
  ASSERT_TRUE(client.repair(repair, &first, &error)) << error;
  ASSERT_TRUE(first.ok) << first.error.message;
  ASSERT_EQ(first.final.cache, CacheStatus::kRepaired);
  const std::uint64_t solver_calls_after_first = server_->stats().solver_calls;

  ASSERT_TRUE(client.repair(repair, &second, &error)) << error;
  ASSERT_TRUE(second.ok) << second.error.message;
  EXPECT_EQ(second.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(second.final.plan), plan_bytes(first.final.plan));
  EXPECT_EQ(second.final.cost, first.final.cost);

  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.solver_calls, solver_calls_after_first)
      << "a repeat repair must be served from the mutated-scenario cache";
  EXPECT_EQ(stats.repair_requests, 2u);
  EXPECT_EQ(stats.repair_hits, 1u);  // the exact hit never reached the solver
}

TEST_F(DaemonTest, ChainedRepairReusesThePreviousRepairedIncumbent) {
  start_server();
  const std::string workload = "fft:n=16";
  MbspClient client;
  connect_ok(client);
  run_ok(client, make_request(workload, 1000));

  const RepairRequest first_request = make_repair_request(workload, 1000);
  MbspClient::Outcome first;
  std::string error;
  ASSERT_TRUE(client.repair(first_request, &first, &error)) << error;
  ASSERT_TRUE(first.ok) << first.error.message;
  ASSERT_EQ(first.final.cache, CacheStatus::kRepaired);
  const std::uint64_t solver_calls_after_first = server_->stats().solver_calls;

  // Follow-up repair pinning the stored MUTATED hash as its base. The
  // repaired incumbent lives under the repair+ spec, and the lookup must
  // chain onto it instead of cold-solving.
  auto base_dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  ASSERT_TRUE(base_dag) << error;
  const std::size_t n1 = base_dag->num_nodes() + 2;  // after the first delta
  RepairRequest second_request = first_request;
  second_request.dag_bytes.clear();
  second_request.dag_hash = first.final.dag_hash;
  second_request.delta = InstanceDelta{};
  second_request.delta.add_node(3.0, 1.0);
  second_request.delta.add_edge(n1 - 1, n1);

  MbspClient::Outcome second;
  ASSERT_TRUE(client.repair(second_request, &second, &error)) << error;
  ASSERT_TRUE(second.ok) << second.error.message;
  EXPECT_EQ(second.final.cache, CacheStatus::kRepaired)
      << "a pinned repaired hash must chain onto the repaired incumbent";
  EXPECT_NE(second.final.dag_hash, first.final.dag_hash);

  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.solver_calls, solver_calls_after_first + 1);
  EXPECT_EQ(stats.repair_requests, 2u);
  EXPECT_EQ(stats.repair_hits, 2u);

  // Differential: chain the same two repairs locally.
  SchedulerOptions options;
  options.budget_ms = first_request.budget_ms;
  options.max_iterations = first_request.max_iterations;
  options.seed = first_request.seed;
  auto machine = MachineRegistry::global().make_machine(
      first_request.machine_spec, min_memory_r0(*base_dag), &error);
  ASSERT_TRUE(machine) << error;
  MbspInstance base{*base_dag, std::move(*machine)};
  const ScheduleResult seed_result =
      SchedulerRegistry::global().at(first_request.scheduler).run(base,
                                                                  options);

  MbspInstance mut1 = base;
  ASSERT_TRUE(
      apply_instance_delta(mut1, first_request.delta, nullptr, &error))
      << error;
  options.warm_start_plan = &seed_result.plan;
  options.repair_delta = &first_request.delta;
  const ScheduleResult repaired1 =
      SchedulerRegistry::global().at("repair").run(mut1, options);

  // The daemon rebuilds the machine at the (new) base dag's r0.
  auto machine2 = MachineRegistry::global().make_machine(
      first_request.machine_spec, min_memory_r0(mut1.dag), &error);
  ASSERT_TRUE(machine2) << error;
  MbspInstance mut2{mut1.dag, std::move(*machine2)};
  ASSERT_TRUE(
      apply_instance_delta(mut2, second_request.delta, nullptr, &error))
      << error;
  options.warm_start_plan = &repaired1.plan;
  options.repair_delta = &second_request.delta;
  const ScheduleResult repaired2 =
      SchedulerRegistry::global().at("repair").run(mut2, options);

  EXPECT_EQ(second.final.cost, repaired2.cost);
  EXPECT_EQ(plan_bytes(second.final.plan), plan_bytes(repaired2.plan))
      << "the chained daemon repair must equal the local chain bitwise";
}

TEST_F(DaemonTest, RepairWithoutAnIncumbentColdSolvesTheMutatedInstance) {
  start_server();
  const std::string workload = "fft:n=16";
  MbspClient client;
  connect_ok(client);

  // No SCHEDULE request seeded the base scenario: nothing to patch.
  const RepairRequest repair = make_repair_request(workload, 1000);
  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.repair(repair, &outcome, &error)) << error;
  ASSERT_TRUE(outcome.ok) << outcome.error.message;
  EXPECT_EQ(outcome.final.cache, CacheStatus::kCold);

  const ScheduleResult reference =
      local_repair(workload, repair, /*with_incumbent=*/false);
  EXPECT_EQ(outcome.final.cost, reference.cost);
  EXPECT_EQ(plan_bytes(outcome.final.plan), plan_bytes(reference.plan));

  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.repair_requests, 1u);
  EXPECT_EQ(stats.repair_hits, 0u);
  EXPECT_EQ(stats.solver_calls, 1u);
}

TEST_F(DaemonTest, MachineDeltaKeysTheMutatedScenarioDistinctly) {
  start_server();
  const std::string workload = "fft:n=16";
  MbspClient client;
  connect_ok(client);
  run_ok(client, make_request(workload, 800));

  RepairRequest repair = make_repair_request(workload, 800);
  repair.delta = InstanceDelta{};
  repair.delta.drop_processor(1);
  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.repair(repair, &outcome, &error)) << error;
  ASSERT_TRUE(outcome.ok) << outcome.error.message;
  EXPECT_EQ(outcome.final.cache, CacheStatus::kRepaired);
  EXPECT_EQ(outcome.final.machine, "uniform#drop(1)");
  EXPECT_EQ(outcome.final.plan.num_procs, 3);  // the drop was relocated
}

TEST_F(DaemonTest, UnappliableDeltaIsATypedBadDeltaError) {
  start_server();
  MbspClient client;
  connect_ok(client);
  RepairRequest repair = make_repair_request("fft:n=16", 500);
  repair.delta = InstanceDelta{};
  repair.delta.add_edge(0, 999999);  // far out of range

  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.repair(repair, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, WireError::kBadDelta);
  EXPECT_NE(outcome.error.message.find("add_edge"), std::string::npos)
      << outcome.error.message;
  EXPECT_TRUE(client.ping(&error)) << error;  // connection stays usable
}

TEST_F(DaemonTest, StatsRequestMirrorsServerCounters) {
  start_server();
  MbspClient client;
  connect_ok(client);
  run_ok(client, make_request("fft:n=8", 300));
  run_ok(client, make_request("fft:n=8", 300));

  DaemonStats over_wire;
  std::string error;
  ASSERT_TRUE(client.stats(&over_wire, &error)) << error;
  const DaemonStats direct = server_->stats();
  EXPECT_EQ(over_wire.requests, direct.requests);
  EXPECT_EQ(over_wire.exact_hits, direct.exact_hits);
  EXPECT_EQ(over_wire.solver_calls, direct.solver_calls);
  EXPECT_EQ(over_wire.cache_entries, direct.cache_entries);
  EXPECT_EQ(over_wire.requests, 2u);
  EXPECT_EQ(over_wire.exact_hits, 1u);
  EXPECT_EQ(over_wire.solver_calls, 1u);
}

}  // namespace
}  // namespace mbsp::daemon

#else  // non-POSIX

TEST(Daemon, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
