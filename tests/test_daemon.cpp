// End-to-end tests of the mbspd serving path (docs/DAEMON.md), run
// against an in-process MbspdServer over a real Unix-domain socket:
// round-trip correctness vs a local registry solve, the cache acceptance
// contract (exact hits are bitwise-identical and invoke no solver; warm
// starts never lose to the cached incumbent), LRU eviction order,
// concurrent-client determinism, per-request deadlines, and graceful
// drain on stop().
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <thread>
#include <vector>

#include "src/daemon/client.hpp"
#include "src/daemon/server.hpp"
#include "src/graph/dag_io.hpp"
#include "src/model/machine_registry.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/workload/workload_registry.hpp"

#include <unistd.h>

namespace mbsp::daemon {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/mbspd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

ScheduleRequest make_request(const std::string& workload,
                             long max_iterations) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  ScheduleRequest request;
  request.dag_bytes = dag_to_binary(*dag);
  request.machine_spec = "uniform:P=4";
  request.scheduler = "lns";
  request.budget_ms = 0;  // deterministic: the iteration cap decides
  request.max_iterations = max_iterations;
  request.seed = 7;
  return request;
}

/// Reference result: the same solve the daemon performs, run locally.
ScheduleResult local_solve(const std::string& workload,
                           const ScheduleRequest& request) {
  std::string error;
  auto dag = WorkloadRegistry::global().make_dag(workload, 7, &error);
  EXPECT_TRUE(dag) << error;
  auto machine = MachineRegistry::global().make_machine(
      request.machine_spec, min_memory_r0(*dag), &error);
  EXPECT_TRUE(machine) << error;
  const MbspInstance inst{std::move(*dag), std::move(*machine)};
  SchedulerOptions options;
  options.budget_ms = request.budget_ms;
  options.max_iterations = request.max_iterations;
  options.seed = request.seed;
  const MbspScheduler* scheduler =
      SchedulerRegistry::global().find(request.scheduler);
  EXPECT_NE(scheduler, nullptr);
  return scheduler->run(inst, options);
}

std::string plan_bytes(const ComputePlan& plan) {
  WireWriter w;
  encode_plan(w, plan);
  return w.take();
}

class DaemonTest : public ::testing::Test {
 protected:
  void start_server(std::size_t cache_capacity = 256,
                    std::size_t solver_threads = 2) {
    options_.socket_path = test_socket_path();
    options_.cache_capacity = cache_capacity;
    options_.solver_threads = solver_threads;
    server_ = std::make_unique<MbspdServer>(options_);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  MbspClient::Outcome run_ok(MbspClient& client,
                             const ScheduleRequest& request) {
    MbspClient::Outcome outcome;
    std::string error;
    EXPECT_TRUE(client.run(request, &outcome, &error)) << error;
    EXPECT_TRUE(outcome.ok) << outcome.error.message;
    return outcome;
  }

  void connect_ok(MbspClient& client) {
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
  }

  MbspdOptions options_;
  std::unique_ptr<MbspdServer> server_;
};

TEST_F(DaemonTest, RoundTripMatchesLocalSolve) {
  start_server();
  const std::string workload = "fft:n=16";
  const ScheduleRequest request = make_request(workload, 2000);
  const ScheduleResult reference = local_solve(workload, request);

  MbspClient client;
  connect_ok(client);
  const MbspClient::Outcome outcome = run_ok(client, request);
  EXPECT_EQ(outcome.final.cache, CacheStatus::kCold);
  EXPECT_EQ(outcome.final.cost, reference.cost);
  EXPECT_EQ(outcome.final.baseline_cost, reference.baseline_cost);
  EXPECT_EQ(outcome.final.supersteps,
            static_cast<std::uint32_t>(reference.supersteps));
  EXPECT_EQ(outcome.final.machine, "uniform");
  EXPECT_EQ(plan_bytes(outcome.final.plan), plan_bytes(reference.plan))
      << "the daemon must return the exact plan a local solve produces";
}

TEST_F(DaemonTest, ExactHitIsBitwiseIdenticalAndInvokesNoSolver) {
  start_server();
  const ScheduleRequest request = make_request("fft:n=16", 2000);
  MbspClient client;
  connect_ok(client);

  const MbspClient::Outcome first = run_ok(client, request);
  EXPECT_EQ(first.final.cache, CacheStatus::kCold);
  const std::uint64_t solver_calls_after_first = server_->stats().solver_calls;

  const MbspClient::Outcome second = run_ok(client, request);
  EXPECT_EQ(second.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(second.final.plan), plan_bytes(first.final.plan));
  EXPECT_EQ(second.final.cost, first.final.cost);
  EXPECT_EQ(second.final.io_volume, first.final.io_volume);
  EXPECT_EQ(server_->stats().solver_calls, solver_calls_after_first)
      << "an exact hit must be served without invoking a solver";
  EXPECT_EQ(server_->stats().exact_hits, 1u);

  // A *smaller* effort request is still within the cached effort: exact.
  ScheduleRequest smaller = request;
  smaller.max_iterations = 500;
  const MbspClient::Outcome third = run_ok(client, smaller);
  EXPECT_EQ(third.final.cache, CacheStatus::kExact);
  EXPECT_EQ(server_->stats().solver_calls, solver_calls_after_first);
}

TEST_F(DaemonTest, WarmStartNeverLosesToTheCachedIncumbent) {
  start_server();
  MbspClient client;
  connect_ok(client);

  // Seed the cache with a small-effort solve, then ask for more effort.
  const ScheduleRequest small = make_request("fft:n=16", 500);
  const MbspClient::Outcome cached = run_ok(client, small);
  ASSERT_EQ(cached.final.cache, CacheStatus::kCold);

  ScheduleRequest bigger = small;
  bigger.max_iterations = 2000;
  const MbspClient::Outcome warm = run_ok(client, bigger);
  EXPECT_EQ(warm.final.cache, CacheStatus::kWarm);
  EXPECT_LE(warm.final.cost, cached.final.cost)
      << "the LNS contract: never worse than the warm-start incumbent";

  // Reference point: the same big request solved cold (cache bypassed).
  ScheduleRequest cold = bigger;
  cold.no_cache = true;
  const MbspClient::Outcome cold_run = run_ok(client, cold);
  ASSERT_EQ(cold_run.final.cache, CacheStatus::kCold);
  EXPECT_LE(warm.final.cost, cold_run.final.cost)
      << "warm-starting from the incumbent must not lose to a cold solve "
         "at equal effort on this fixed (workload, seed)";

  // The warm re-solve re-inserts at the enlarged effort: the same big
  // request is now an exact hit.
  const MbspClient::Outcome replay = run_ok(client, bigger);
  EXPECT_EQ(replay.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(replay.final.plan), plan_bytes(warm.final.plan));
}

TEST_F(DaemonTest, LruEvictionFollowsRecencyOrder) {
  start_server(/*cache_capacity=*/2);
  MbspClient client;
  connect_ok(client);

  const ScheduleRequest a = make_request("fft:n=8", 300);
  const ScheduleRequest b = make_request("fft:n=16", 300);
  const ScheduleRequest c = make_request("lu:blocks=3", 300);

  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kCold);
  EXPECT_EQ(run_ok(client, b).final.cache, CacheStatus::kCold);
  // Touch `a` so `b` is least recently used, then overflow with `c`.
  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, c).final.cache, CacheStatus::kCold);
  EXPECT_EQ(server_->stats().evictions, 1u);

  // `b` was evicted; `a` and `c` survived.
  EXPECT_EQ(run_ok(client, a).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, c).final.cache, CacheStatus::kExact);
  EXPECT_EQ(run_ok(client, b).final.cache, CacheStatus::kCold)
      << "b must have been evicted as the LRU entry";
}

TEST_F(DaemonTest, ConcurrentClientsGetIdenticalPlansForTheSameRequest) {
  start_server(/*cache_capacity=*/256, /*solver_threads=*/4);
  const ScheduleRequest request = make_request("fft:n=16", 1000);
  const std::string reference =
      plan_bytes(local_solve("fft:n=16", request).plan);

  // 4 clients race the same request: whoever solves first populates the
  // cache, everyone else hits it — but every reply must carry the same
  // bitwise plan, equal to the local reference (determinism contract).
  constexpr int kClients = 4;
  std::vector<std::string> plans(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      MbspClient client;
      std::string error;
      ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
      MbspClient::Outcome outcome;
      ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
      ASSERT_TRUE(outcome.ok) << outcome.error.message;
      plans[i] = plan_bytes(outcome.final.plan);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(plans[i], reference) << "client " << i;
  }
}

TEST_F(DaemonTest, ConcurrentDistinctRequestsMatchLocalReferences) {
  start_server(/*cache_capacity=*/256, /*solver_threads=*/4);
  const std::vector<std::string> workloads = {"fft:n=8", "fft:n=16",
                                              "lu:blocks=3", "cholesky:blocks=3"};
  std::vector<std::string> got(workloads.size()), want(workloads.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    threads.emplace_back([&, i] {
      const ScheduleRequest request = make_request(workloads[i], 500);
      want[i] = plan_bytes(local_solve(workloads[i], request).plan);
      MbspClient client;
      std::string error;
      ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
      MbspClient::Outcome outcome;
      ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
      ASSERT_TRUE(outcome.ok) << outcome.error.message;
      got[i] = plan_bytes(outcome.final.plan);
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << workloads[i];
  }
}

TEST_F(DaemonTest, NoCacheRequestsAlwaysSolveAndNeverMemoize) {
  start_server();
  MbspClient client;
  connect_ok(client);
  ScheduleRequest request = make_request("fft:n=8", 300);
  request.no_cache = true;

  EXPECT_EQ(run_ok(client, request).final.cache, CacheStatus::kCold);
  EXPECT_EQ(run_ok(client, request).final.cache, CacheStatus::kCold);
  const DaemonStats stats = server_->stats();
  EXPECT_EQ(stats.solver_calls, 2u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST_F(DaemonTest, PinnedHashIsServedFromCacheAndDagStore) {
  start_server();
  MbspClient client;
  connect_ok(client);
  const ScheduleRequest inline_request = make_request("fft:n=16", 500);
  const MbspClient::Outcome first = run_ok(client, inline_request);

  // Identical request by hash only: exact hit, no DAG bytes on the wire.
  ScheduleRequest pinned;
  pinned.dag_hash = first.final.dag_hash;
  pinned.machine_spec = inline_request.machine_spec;
  pinned.scheduler = inline_request.scheduler;
  pinned.budget_ms = inline_request.budget_ms;
  pinned.max_iterations = inline_request.max_iterations;
  pinned.seed = inline_request.seed;
  const MbspClient::Outcome replay = run_ok(client, pinned);
  EXPECT_EQ(replay.final.cache, CacheStatus::kExact);
  EXPECT_EQ(plan_bytes(replay.final.plan), plan_bytes(first.final.plan));

  // More effort by hash: the warm re-solve needs the DAG itself, which
  // the bounded DAG store still has resident.
  ScheduleRequest pinned_bigger = pinned;
  pinned_bigger.max_iterations = 1500;
  const MbspClient::Outcome warm = run_ok(client, pinned_bigger);
  EXPECT_EQ(warm.final.cache, CacheStatus::kWarm);
  EXPECT_LE(warm.final.cost, first.final.cost);
}

TEST_F(DaemonTest, QueuedDeadlineExpiryIsATypedError) {
  // One solver thread: a long solve occupies it, so a second request's
  // deadline covers (and here, expires in) the admission queue.
  start_server(/*cache_capacity=*/256, /*solver_threads=*/1);

  std::thread long_solver([&] {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    MbspClient::Outcome outcome;
    ASSERT_TRUE(
        client.run(make_request("stencil2d:nx=8,ny=8,steps=3", 30'000),
                   &outcome, &error))
        << error;
    ASSERT_TRUE(outcome.ok) << outcome.error.message;
  });
  // Give the long solve time to claim the only worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  MbspClient client;
  connect_ok(client);
  ScheduleRequest hurried = make_request("fft:n=8", 300);
  hurried.deadline_ms = 50;
  MbspClient::Outcome outcome;
  std::string error;
  ASSERT_TRUE(client.run(hurried, &outcome, &error)) << error;
  ASSERT_FALSE(outcome.ok) << "the deadline must expire in the queue";
  EXPECT_EQ(outcome.error.code, WireError::kDeadlineExpired);
  EXPECT_NE(outcome.error.message.find("deadline"), std::string::npos);
  long_solver.join();
}

TEST_F(DaemonTest, StopDrainsInFlightRequestsThenRefusesConnections) {
  start_server();
  const ScheduleRequest request =
      make_request("stencil2d:nx=8,ny=8,steps=3", 8'000);

  MbspClient::Outcome outcome;
  std::thread in_flight([&] {
    MbspClient client;
    std::string error;
    ASSERT_TRUE(client.connect(options_.socket_path, &error)) << error;
    ASSERT_TRUE(client.run(request, &outcome, &error)) << error;
  });
  // Let the request reach the solver, then initiate the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server_->stop();
  in_flight.join();

  EXPECT_TRUE(outcome.ok) << "a drained shutdown must still deliver the "
                             "final frame: "
                          << outcome.error.message;
  EXPECT_GT(outcome.final.cost, 0);

  MbspClient late;
  std::string error;
  EXPECT_FALSE(late.connect(options_.socket_path, &error))
      << "the socket must be gone after stop()";
}

TEST_F(DaemonTest, StatsRequestMirrorsServerCounters) {
  start_server();
  MbspClient client;
  connect_ok(client);
  run_ok(client, make_request("fft:n=8", 300));
  run_ok(client, make_request("fft:n=8", 300));

  DaemonStats over_wire;
  std::string error;
  ASSERT_TRUE(client.stats(&over_wire, &error)) << error;
  const DaemonStats direct = server_->stats();
  EXPECT_EQ(over_wire.requests, direct.requests);
  EXPECT_EQ(over_wire.exact_hits, direct.exact_hits);
  EXPECT_EQ(over_wire.solver_calls, direct.solver_calls);
  EXPECT_EQ(over_wire.cache_entries, direct.cache_entries);
  EXPECT_EQ(over_wire.requests, 2u);
  EXPECT_EQ(over_wire.exact_hits, 1u);
  EXPECT_EQ(over_wire.solver_calls, 1u);
}

}  // namespace
}  // namespace mbsp::daemon

#else  // non-POSIX

TEST(Daemon, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
