// Unit tests for the util substrate: RNG, statistics, tables, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/timer.hpp"

namespace mbsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto draw = rng.uniform_int(-3, 5);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IndexWithinBound) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Table, TextAlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"value_a", "b"});
  const std::string text = t.to_text("title");
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("value_a"), std::string::npos);
}

TEST(Table, CsvEscapes) {
  Table t({"x"});
  t.add_row({"with,comma"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, CsvQuotesCrLf) {
  // RFC 4180: fields containing CR or LF must be quoted, not just fields
  // with commas/quotes.
  Table t({"x", "y"});
  t.add_row({"line\nbreak", "carriage\rreturn"});
  t.add_row({"crlf\r\nboth", "plain"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(csv.find("\"carriage\rreturn\""), std::string::npos);
  EXPECT_NE(csv.find("\"crlf\r\nboth\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
  EXPECT_EQ(csv.find("\"plain\""), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.add_row({"only_a"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_csv().find("only_a,"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, 50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentSubmitAndWaitIdleStress) {
  // Several producer threads hammer submit() while the main thread calls
  // wait_idle() repeatedly: every task must run exactly once and each
  // wait_idle() must only return on a drained queue.
  ThreadPool pool(4);
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  // Interleave waits with ongoing submissions; each call must return.
  for (int i = 0; i < 20; ++i) pool.wait_idle();
  for (std::thread& producer : producers) producer.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // no tasks submitted: must not block
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(Deadline, ZeroBudgetNeverExpires) {
  Deadline d(0);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(0.01);
  Timer t;
  while (t.elapsed_ms() < 1) {
  }
  EXPECT_TRUE(d.expired());
}

}  // namespace
}  // namespace mbsp
