#include "src/ilp/model.hpp"

#include <cmath>
#include <sstream>

namespace mbsp::ilp {

VarId Model::add_var(double lo, double hi, VarType type, std::string name) {
  const VarId id = static_cast<VarId>(lo_.size());
  lo_.push_back(lo);
  hi_.push_back(hi);
  obj_.push_back(0.0);
  type_.push_back(type);
  if (name.empty()) name = "x" + std::to_string(id);
  var_names_.push_back(std::move(name));
  return id;
}

void Model::add_constraint(LinExpr expr, Sense sense, double rhs,
                           std::string name) {
  if (name.empty()) name = "c" + std::to_string(constraints_.size());
  constraints_.push_back({std::move(expr), sense, rhs, std::move(name)});
}

void Model::set_objective_coeff(VarId var, double coeff) { obj_[var] = coeff; }

double Model::objective_value(const std::vector<double>& x) const {
  double value = 0;
  for (int v = 0; v < num_vars(); ++v) value += obj_[v] * x[v];
  return value;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_vars()) return false;
  for (int v = 0; v < num_vars(); ++v) {
    if (x[v] < lo_[v] - tol || x[v] > hi_[v] + tol) return false;
    if (type_[v] != VarType::kContinuous &&
        std::abs(x[v] - std::round(x[v])) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0;
    for (const Term& t : c.expr.terms()) lhs += t.coeff * x[t.var];
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::to_lp_string() const {
  std::ostringstream out;
  out << "\\ " << name_ << "\nMinimize\n obj:";
  bool first = true;
  for (int v = 0; v < num_vars(); ++v) {
    if (obj_[v] == 0) continue;
    out << (obj_[v] >= 0 && !first ? " +" : " ") << obj_[v] << ' '
        << var_names_[v];
    first = false;
  }
  if (first) out << " 0 " << var_names_.empty();
  out << "\nSubject To\n";
  for (const Constraint& c : constraints_) {
    out << ' ' << c.name << ':';
    for (const Term& t : c.expr.terms()) {
      out << (t.coeff >= 0 ? " +" : " ") << t.coeff << ' '
          << var_names_[t.var];
    }
    switch (c.sense) {
      case Sense::kLe: out << " <= "; break;
      case Sense::kGe: out << " >= "; break;
      case Sense::kEq: out << " = "; break;
    }
    out << c.rhs << '\n';
  }
  out << "Bounds\n";
  for (int v = 0; v < num_vars(); ++v) {
    out << ' ' << lo_[v] << " <= " << var_names_[v] << " <= ";
    if (hi_[v] == kInf) {
      out << "+inf";
    } else {
      out << hi_[v];
    }
    out << '\n';
  }
  out << "Generals\n";
  for (int v = 0; v < num_vars(); ++v) {
    if (type_[v] != VarType::kContinuous) out << ' ' << var_names_[v];
  }
  out << "\nEnd\n";
  return out.str();
}

}  // namespace mbsp::ilp
