#pragma once
// Branch-and-bound MILP solver over the LP relaxation (simplex.hpp).
// Anytime: accepts a warm-start incumbent (the paper warm-starts COPT with
// the two-stage baseline in exactly this way), obeys a time budget, and
// reports the best incumbent plus the proven bound.

#include <vector>

#include "src/ilp/model.hpp"
#include "src/ilp/simplex.hpp"
#include "src/util/timer.hpp"

namespace mbsp::ilp {

enum class MipStatus {
  kOptimal,     ///< incumbent proven optimal
  kFeasible,    ///< incumbent found, search truncated (time/node limit)
  kInfeasible,  ///< proven infeasible
  kNoSolution,  ///< truncated before any incumbent was found
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0;     ///< incumbent objective (if any)
  double best_bound = -kInf;  ///< proven lower bound on the optimum
  std::vector<double> x;
  long nodes_explored = 0;
};

struct MipOptions {
  double budget_ms = 10000;
  long max_nodes = 1000000;
  double int_tol = 1e-6;
  /// Relative optimality gap at which the search stops.
  double gap_tol = 1e-9;
  SimplexOptions lp;
};

class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(MipOptions options = {}) : options_(options) {}

  /// Solves `model`; `warm_start` (if non-empty) must be integer-feasible
  /// and becomes the initial incumbent.
  MipResult solve(const Model& model,
                  const std::vector<double>& warm_start = {}) const;

 private:
  MipOptions options_;
};

}  // namespace mbsp::ilp
