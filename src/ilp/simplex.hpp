#pragma once
// Dense two-phase primal simplex for the LP relaxations inside branch and
// bound. Scope: the small/medium LPs of this project (acyclic-partitioning
// ILPs, tiny MBSP scheduling formulations, knapsack-style tests) — dense
// tableau, Dantzig pricing with a Bland fallback against cycling.
//
// Variables are shifted to x' = x - lo >= 0; finite upper bounds become
// explicit rows. Minimization throughout.

#include <vector>

#include "src/ilp/model.hpp"

namespace mbsp::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0;
  std::vector<double> x;  ///< values for the model's variables
};

struct SimplexOptions {
  int max_iterations = 20000;
  double eps = 1e-9;
  /// Wall-clock budget for one solve; <= 0 means no deadline. On expiry
  /// the solve stops with kIterLimit, so a caller's own deadline (e.g.
  /// branch and bound's) is honored even mid-LP on large tableaus.
  double budget_ms = 0;
};

/// Solves the LP relaxation of `model` (integrality dropped).
LpResult solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace mbsp::ilp
