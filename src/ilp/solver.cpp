#include "src/ilp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace mbsp::ilp {

namespace {

struct Node {
  // Variable bound overrides relative to the root model.
  std::vector<std::pair<VarId, std::pair<double, double>>> bounds;
  double parent_bound = -kInf;
  int depth = 0;
};

int most_fractional_var(const Model& model, const std::vector<double>& x,
                        double tol) {
  int best = -1;
  double best_frac = tol;
  for (int v = 0; v < model.num_vars(); ++v) {
    if (model.var_type(v) == VarType::kContinuous) continue;
    const double frac = std::abs(x[v] - std::round(x[v]));
    const double distance = std::min(frac, 1.0 - frac);
    if (std::abs(x[v] - std::round(x[v])) > tol && distance + tol > best_frac) {
      best_frac = distance;
      best = v;
    }
  }
  return best;
}

}  // namespace

MipResult BranchAndBoundSolver::solve(const Model& root,
                                      const std::vector<double>& warm_start)
    const {
  Deadline deadline(options_.budget_ms);
  MipResult result;
  bool have_incumbent = false;
  if (!warm_start.empty() && root.is_feasible(warm_start, 1e-5)) {
    result.x = warm_start;
    result.objective = root.objective_value(warm_start);
    result.status = MipStatus::kFeasible;
    have_incumbent = true;
  }

  // DFS stack; depth-first keeps the bound-override lists short and finds
  // integer solutions fast, which is what the anytime role needs.
  std::vector<Node> stack;
  stack.push_back({});
  Model work = root;  // mutated bounds per node, restored after

  double best_open_bound = kInf;  // not tracked exactly; gap from root LP
  bool truncated = false;
  double root_bound = -kInf;

  while (!stack.empty()) {
    if (deadline.expired() || result.nodes_explored >= options_.max_nodes) {
      truncated = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    if (have_incumbent && node.parent_bound > -kInf &&
        node.parent_bound >= result.objective - options_.gap_tol) {
      continue;  // cannot improve
    }

    // Apply bound overrides.
    std::vector<std::pair<VarId, std::pair<double, double>>> saved;
    saved.reserve(node.bounds.size());
    for (const auto& [v, bounds] : node.bounds) {
      saved.push_back({v, {work.lower_bound(v), work.upper_bound(v)}});
      work.set_bounds(v, bounds.first, bounds.second);
    }
    auto restore = [&] {
      for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        work.set_bounds(it->first, it->second.first, it->second.second);
      }
    };

    // Hand the LP the remaining wall-clock budget so one big tableau
    // cannot blow through the node-level deadline. Clamped to >= 1 ms:
    // remaining_ms() == 0 would read as "no deadline" in SimplexOptions.
    SimplexOptions lp_options = options_.lp;
    if (options_.budget_ms > 0 && lp_options.budget_ms <= 0) {
      lp_options.budget_ms = std::max(1.0, deadline.remaining_ms());
    }
    const LpResult lp = solve_lp(work, lp_options);
    if (node.depth == 0) {
      root_bound = lp.status == LpStatus::kOptimal ? lp.objective : -kInf;
    }
    if (lp.status == LpStatus::kInfeasible) {
      restore();
      continue;
    }
    if (lp.status == LpStatus::kIterLimit) {
      // Cannot certify anything about this subtree: the search is no
      // longer exhaustive, so never report "infeasible"/"optimal" later.
      truncated = true;
      restore();
      continue;
    }
    if (lp.status == LpStatus::kUnbounded) {
      restore();
      // MILP relaxation unbounded at the root means no finite bound.
      if (node.depth == 0) {
        result.best_bound = -kInf;
      }
      continue;
    }
    if (have_incumbent && lp.objective >= result.objective - options_.gap_tol) {
      restore();
      continue;
    }

    const int branch_var = most_fractional_var(root, lp.x, options_.int_tol);
    if (branch_var == -1) {
      // Integer feasible: new incumbent.
      if (!have_incumbent || lp.objective < result.objective) {
        result.x = lp.x;
        for (int v = 0; v < root.num_vars(); ++v) {
          if (root.var_type(v) != VarType::kContinuous) {
            result.x[v] = std::round(result.x[v]);
          }
        }
        result.objective = root.objective_value(result.x);
        result.status = MipStatus::kFeasible;
        have_incumbent = true;
      }
      restore();
      continue;
    }

    // Branch: floor side and ceil side; explore the side closer to the LP
    // value first (pushed last).
    const double value = lp.x[branch_var];
    Node down, up;
    down.bounds = node.bounds;
    up.bounds = node.bounds;
    down.parent_bound = lp.objective;
    up.parent_bound = lp.objective;
    down.depth = node.depth + 1;
    up.depth = node.depth + 1;
    down.bounds.push_back({branch_var,
                           {work.lower_bound(branch_var), std::floor(value)}});
    up.bounds.push_back({branch_var,
                         {std::ceil(value), work.upper_bound(branch_var)}});
    restore();
    if (value - std::floor(value) < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  (void)best_open_bound;
  if (!truncated && stack.empty()) {
    if (have_incumbent) {
      result.status = MipStatus::kOptimal;
      result.best_bound = result.objective;
    } else {
      result.status = MipStatus::kInfeasible;
    }
  } else if (have_incumbent) {
    result.status = MipStatus::kFeasible;
    result.best_bound = root_bound;
  } else {
    result.status = MipStatus::kNoSolution;
    result.best_bound = root_bound;
  }
  return result;
}

}  // namespace mbsp::ilp
