#include "src/ilp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/timer.hpp"

namespace mbsp::ilp {

namespace {

/// Dense tableau with an objective row at index m (reduced costs).
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                data_(static_cast<std::size_t>(rows + 1) *
                                          (cols + 1),
                                      0.0) {}

  double& at(int i, int j) {
    return data_[static_cast<std::size_t>(i) * (cols_ + 1) + j];
  }
  double at(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * (cols_ + 1) + j];
  }
  double& rhs(int i) { return at(i, cols_); }
  double rhs(int i) const { return at(i, cols_); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void pivot(int pr, int pc) {
    const double pivot_value = at(pr, pc);
    const double inv = 1.0 / pivot_value;
    for (int j = 0; j <= cols_; ++j) at(pr, j) *= inv;
    at(pr, pc) = 1.0;
    for (int i = 0; i <= rows_; ++i) {
      if (i == pr) continue;
      const double factor = at(i, pc);
      if (factor == 0.0) continue;
      for (int j = 0; j <= cols_; ++j) at(i, j) -= factor * at(pr, j);
      at(i, pc) = 0.0;
    }
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

struct Problem {
  int n_struct = 0;      // structural (shifted) variables
  int n_total = 0;       // + slacks + artificials
  int first_artificial = 0;
  std::vector<double> shift;  // lo_j, x_j = shift_j + x'_j
};

}  // namespace

LpResult solve_lp(const Model& model, const SimplexOptions& options) {
  const double eps = options.eps;
  const int n = model.num_vars();

  // Assemble rows: model constraints (with shifted rhs) + upper-bound rows.
  struct Row {
    std::vector<Term> terms;  // over structural variables
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + n);
  Problem prob;
  prob.n_struct = n;
  prob.shift.resize(n);
  for (int v = 0; v < n; ++v) prob.shift[v] = model.lower_bound(v);

  for (const Constraint& c : model.constraints()) {
    Row row;
    row.sense = c.sense;
    double shifted = c.rhs;
    for (const Term& t : c.expr.terms()) {
      shifted -= t.coeff * prob.shift[t.var];
      row.terms.push_back(t);
    }
    row.rhs = shifted;
    rows.push_back(std::move(row));
  }
  for (int v = 0; v < n; ++v) {
    const double hi = model.upper_bound(v);
    if (hi == kInf) continue;
    const double span = hi - model.lower_bound(v);
    Row row;
    row.sense = Sense::kLe;
    row.terms.push_back({v, 1.0});
    row.rhs = span;
    rows.push_back(std::move(row));
  }
  const int m = static_cast<int>(rows.size());

  // Normalize rhs >= 0 and decide slack / artificial columns.
  int n_slack = 0, n_art = 0;
  std::vector<int> slack_col(m, -1), art_col(m, -1);
  for (Row& row : rows) {
    if (row.rhs < 0) {
      row.rhs = -row.rhs;
      for (Term& t : row.terms) t.coeff = -t.coeff;
      if (row.sense == Sense::kLe) {
        row.sense = Sense::kGe;
      } else if (row.sense == Sense::kGe) {
        row.sense = Sense::kLe;
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    switch (rows[i].sense) {
      case Sense::kLe:
        slack_col[i] = n + n_slack++;
        break;
      case Sense::kGe:
        slack_col[i] = n + n_slack++;  // surplus, coefficient -1
        break;
      case Sense::kEq:
        break;
    }
  }
  prob.first_artificial = n + n_slack;
  for (int i = 0; i < m; ++i) {
    // >= rows and = rows need an artificial basic column.
    if (rows[i].sense != Sense::kLe) art_col[i] = prob.first_artificial + n_art++;
  }
  prob.n_total = n + n_slack + n_art;

  Tableau tab(m, prob.n_total);
  std::vector<int> basis(m, -1);
  for (int i = 0; i < m; ++i) {
    for (const Term& t : rows[i].terms) tab.at(i, t.var) += t.coeff;
    tab.rhs(i) = rows[i].rhs;
    if (rows[i].sense == Sense::kLe) {
      tab.at(i, slack_col[i]) = 1.0;
      basis[i] = slack_col[i];
    } else if (rows[i].sense == Sense::kGe) {
      tab.at(i, slack_col[i]) = -1.0;
      tab.at(i, art_col[i]) = 1.0;
      basis[i] = art_col[i];
    } else {
      tab.at(i, art_col[i]) = 1.0;
      basis[i] = art_col[i];
    }
  }

  const Deadline deadline(options.budget_ms);
  auto run_phase = [&](bool phase1, int iter_budget) -> LpStatus {
    int degenerate_streak = 0;
    for (int iter = 0; iter < iter_budget; ++iter) {
      if ((iter & 63) == 0 && deadline.expired()) return LpStatus::kIterLimit;
      // Entering column: most negative reduced cost (Dantzig), switching to
      // Bland's smallest-index rule after a degenerate streak.
      const bool bland = degenerate_streak > 2 * (m + prob.n_total);
      int enter = -1;
      double best = -eps;
      for (int j = 0; j < prob.n_total; ++j) {
        if (!phase1 && j >= prob.first_artificial) continue;  // keep arts out
        const double reduced = tab.at(m, j);
        if (reduced < -eps) {
          if (bland) {
            enter = j;
            break;
          }
          if (reduced < best) {
            best = reduced;
            enter = j;
          }
        }
      }
      if (enter == -1) return LpStatus::kOptimal;
      // Ratio test.
      int leave = -1;
      double best_ratio = 0;
      for (int i = 0; i < m; ++i) {
        const double a = tab.at(i, enter);
        if (a > eps) {
          const double ratio = tab.rhs(i) / a;
          if (leave == -1 || ratio < best_ratio - eps ||
              (ratio < best_ratio + eps && basis[i] < basis[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == -1) return LpStatus::kUnbounded;
      degenerate_streak = best_ratio < eps ? degenerate_streak + 1 : 0;
      tab.pivot(leave, enter);
      basis[leave] = enter;
    }
    return LpStatus::kIterLimit;
  };

  // Phase 1: minimize the sum of artificials.
  if (n_art > 0) {
    for (int j = 0; j <= prob.n_total; ++j) tab.at(m, j) = 0.0;
    for (int j = prob.first_artificial; j < prob.n_total; ++j)
      tab.at(m, j) = 1.0;
    // Price out the artificial basics.
    for (int i = 0; i < m; ++i) {
      if (basis[i] >= prob.first_artificial) {
        for (int j = 0; j <= prob.n_total; ++j) tab.at(m, j) -= tab.at(i, j);
      }
    }
    const LpStatus st = run_phase(/*phase1=*/true, options.max_iterations);
    if (st == LpStatus::kIterLimit) return {LpStatus::kIterLimit, 0, {}};
    const double infeasibility = -tab.rhs(m);
    if (infeasibility > 1e-6) return {LpStatus::kInfeasible, 0, {}};
    // Drive leftover artificial basics out (or drop their rows).
    for (int i = 0; i < m; ++i) {
      if (basis[i] < prob.first_artificial) continue;
      int pivot_col = -1;
      for (int j = 0; j < prob.first_artificial; ++j) {
        if (std::abs(tab.at(i, j)) > eps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col != -1) {
        tab.pivot(i, pivot_col);
        basis[i] = pivot_col;
      }
      // Otherwise the row is redundant; the artificial stays basic at 0,
      // harmless because phase 2 never lets artificials increase.
    }
  }

  // Phase 2: the real objective over shifted variables.
  for (int j = 0; j <= prob.n_total; ++j) tab.at(m, j) = 0.0;
  for (int v = 0; v < n; ++v) tab.at(m, v) = model.objective_coeff(v);
  for (int i = 0; i < m; ++i) {
    const int b = basis[i];
    if (b < n) {
      const double cost = model.objective_coeff(b);
      if (cost != 0.0) {
        for (int j = 0; j <= prob.n_total; ++j) {
          tab.at(m, j) -= cost * tab.at(i, j);
        }
        tab.at(m, b) = 0.0;
      }
    }
  }
  const LpStatus st = run_phase(/*phase1=*/false, options.max_iterations);
  if (st == LpStatus::kUnbounded) return {LpStatus::kUnbounded, 0, {}};
  if (st == LpStatus::kIterLimit) return {LpStatus::kIterLimit, 0, {}};

  LpResult result;
  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[i] < n) result.x[basis[i]] = tab.rhs(i);
  }
  for (int v = 0; v < n; ++v) result.x[v] += prob.shift[v];
  result.objective = model.objective_value(result.x);
  return result;
}

}  // namespace mbsp::ilp
