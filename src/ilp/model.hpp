#pragma once
// Generic mixed-integer linear program container. This is the in-house
// substitute for the commercial solver interface the paper uses (COPT):
// models are built once, exported to .lp for inspection, and solved by the
// branch-and-bound solver in solver.hpp.
//
// Conventions: minimization; every variable has bounds [lo, hi] with
// lo > -inf (all MBSP formulations are naturally nonnegative).

#include <limits>
#include <string>
#include <vector>

namespace mbsp::ilp {

using VarId = int;
constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kBinary, kInteger };

enum class Sense { kLe, kGe, kEq };

struct Term {
  VarId var;
  double coeff;
};

/// A linear expression sum(coeff_i * var_i) built incrementally.
class LinExpr {
 public:
  LinExpr& add(VarId var, double coeff) {
    if (coeff != 0.0) terms_.push_back({var, coeff});
    return *this;
  }
  const std::vector<Term>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

 private:
  std::vector<Term> terms_;
};

struct Constraint {
  LinExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0;
  std::string name;
};

class Model {
 public:
  explicit Model(std::string name = "model") : name_(std::move(name)) {}

  VarId add_var(double lo, double hi, VarType type, std::string name = "");
  VarId add_binary(std::string name = "") {
    return add_var(0, 1, VarType::kBinary, std::move(name));
  }
  VarId add_continuous(double lo, double hi, std::string name = "") {
    return add_var(lo, hi, VarType::kContinuous, std::move(name));
  }

  void add_constraint(LinExpr expr, Sense sense, double rhs,
                      std::string name = "");

  /// Objective is minimized. Coefficients default to 0.
  void set_objective_coeff(VarId var, double coeff);
  double objective_coeff(VarId var) const { return obj_[var]; }

  int num_vars() const { return static_cast<int>(lo_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  double lower_bound(VarId v) const { return lo_[v]; }
  double upper_bound(VarId v) const { return hi_[v]; }
  VarType var_type(VarId v) const { return type_[v]; }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::string& name() const { return name_; }

  /// Tightens a variable's bounds (used by branch-and-bound).
  void set_bounds(VarId v, double lo, double hi) {
    lo_[v] = lo;
    hi_[v] = hi;
  }

  /// Objective value of an assignment.
  double objective_value(const std::vector<double>& x) const;

  /// Checks feasibility of `x` within tolerance (bounds, constraints,
  /// integrality for integer variables).
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// CPLEX .lp text format for offline inspection.
  std::string to_lp_string() const;

 private:
  std::string name_;
  std::vector<double> lo_, hi_, obj_;
  std::vector<VarType> type_;
  std::vector<std::string> var_names_;
  std::vector<Constraint> constraints_;
};

}  // namespace mbsp::ilp
