#pragma once
// Timed-arrival trace corpus: the workload side of online schedule repair
// (docs/REPAIR.md). A trace is a base MbspInstance plus a sequence of
// timestamped InstanceDeltas — DAG growth, weight drift, processor
// drop-outs, memory shrinkage — that a serving loop replays against an
// incumbent schedule, repairing after each event.
//
// Traces follow the corpus conventions (docs/FORMATS.md): they are named
// by a canonical `family:key=value,...` spec, deterministic given
// (spec, seed, machine spec), hashable (trace_canonical_hash), and
// streamable — for_each_trace_event generates events one at a time
// against an internally evolved instance, so a million-event trace never
// materializes more than the current instance. Families:
//
//   trace-grow     batches of new nodes with edges from existing nodes
//   trace-drift    compute-weight (omega) drift on random nodes
//   trace-dropout  one processor drops out per event
//   trace-churn    grow + drift interleaved
//   trace-mixed    everything, including fast-memory shrinkage
//
// Every generated delta is applied to the generator's own evolving copy
// with apply_instance_delta, so traces are valid by construction; growth
// clamps new-node memory weights against the machine's smallest capacity
// and drift never touches mu, keeping `min capacity >= min_memory_r0`
// invariant across the whole event sequence (no event can strand the
// instance in an unschedulable state).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/holistic/repair.hpp"
#include "src/model/instance.hpp"

namespace mbsp {

/// One timed event: at `at_ms` (strictly increasing along the trace) the
/// instance mutates by `delta`.
struct TraceEvent {
  double at_ms = 0;
  InstanceDelta delta;
};

struct RepairTrace {
  std::string name;   ///< canonical trace spec
  MbspInstance base;  ///< pre-event instance (DAG + machine)
  std::vector<TraceEvent> events;
};

/// Sorted names of the built-in trace families.
std::vector<std::string> trace_family_names();

/// True when `spec` names a trace family ("trace-" head).
bool is_trace_spec(const std::string& spec);

/// Builds the full trace named by `spec` ("trace-grow:events=8,batch=3").
/// Common parameters: `base` (a workload family name, built at its
/// declared defaults), `events`, `batch` (ops per event; drop-out traces
/// ignore it). The machine comes from `machine_spec` via MachineRegistry,
/// scaled to the base DAG's min_memory_r0. Unknown families, parameters
/// or bad values fill *error and return nullopt.
std::optional<RepairTrace> make_trace(const std::string& spec,
                                      std::uint64_t seed,
                                      const std::string& machine_spec,
                                      std::string* error = nullptr);

/// Streaming twin of make_trace: invokes `fn` per event, in order, without
/// retaining past events (the callback returns false to stop early). When
/// `base_out` is non-null it receives the pre-event instance. Emits
/// exactly make_trace's events for equal (spec, seed, machine_spec).
bool for_each_trace_event(const std::string& spec, std::uint64_t seed,
                          const std::string& machine_spec,
                          const std::function<bool(const TraceEvent&)>& fn,
                          MbspInstance* base_out = nullptr,
                          std::string* error = nullptr);

/// Canonical trace digest: chains the base DAG's canonical hash, the
/// machine's canonical name, and every event's timestamp + delta hash.
/// Equal traces hash equal regardless of how they were produced
/// (make_trace vs the streaming path).
std::uint64_t trace_canonical_hash(const RepairTrace& trace);

}  // namespace mbsp
