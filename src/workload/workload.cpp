#include "src/workload/workload.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <stdexcept>

namespace mbsp {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<WorkloadSpec> WorkloadSpec::parse(const std::string& text,
                                                std::string* error) {
  WorkloadSpec spec;
  const std::size_t colon = text.find(':');
  spec.family = text.substr(0, colon);
  if (spec.family.empty()) {
    fail(error, "empty family name in spec '" + text + "'");
    return std::nullopt;
  }
  if (colon == std::string::npos) return spec;
  std::size_t start = colon + 1;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string item = text.substr(start, end - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(error, "bad parameter '" + item + "' (expected key=value)");
        return std::nullopt;
      }
      const std::string key = item.substr(0, eq);
      if (spec.find(key) != nullptr) {
        fail(error, "duplicate parameter '" + key + "'");
        return std::nullopt;
      }
      spec.params.emplace_back(key, item.substr(eq + 1));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return spec;
}

const std::string* WorkloadSpec::find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string WorkloadSpec::canonical() const {
  if (params.empty()) return family;
  auto sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out = family + ":";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first + "=" + sorted[i].second;
  }
  return out;
}

int WorkloadParams::get_int(const std::string& key, int def, int lo) const {
  const std::string* value = spec_.find(key);
  if (value == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key + "': '" + *value +
                                "' is not an integer");
  }
  if (errno == ERANGE || parsed > INT_MAX) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is out of range");
  }
  if (parsed < lo) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is below the minimum " + std::to_string(lo));
  }
  return static_cast<int>(parsed);
}

double WorkloadParams::get_double(const std::string& key, double def,
                                  double lo) const {
  const std::string* value = spec_.find(key);
  if (value == nullptr) return def;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key + "': '" + *value +
                                "' is not a number");
  }
  if (parsed < lo) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is below the minimum " + std::to_string(lo));
  }
  return parsed;
}

std::string WorkloadParams::get_string(const std::string& key,
                                       std::string def) const {
  const std::string* value = spec_.find(key);
  return value == nullptr ? std::move(def) : *value;
}

}  // namespace mbsp
