#include "src/workload/workload.hpp"

#include <stdexcept>

#include "src/model/spec.hpp"

namespace mbsp {

void WorkloadFamily::generate_stream(const WorkloadParams&, Rng&,
                                     DagSink&) const {
  throw std::logic_error("family '" + name() +
                         "' does not support streaming emission");
}

// WorkloadSpec is the workload-facing view of the shared SpecString
// grammar (src/model/spec.*): same parser, same canonicalization, same
// error style as machine specs.

std::optional<WorkloadSpec> WorkloadSpec::parse(const std::string& text,
                                                std::string* error) {
  auto parsed = SpecString::parse(text, error, "family name");
  if (!parsed) return std::nullopt;
  WorkloadSpec spec;
  spec.family = std::move(parsed->head);
  spec.params = std::move(parsed->params);
  return spec;
}

const std::string* WorkloadSpec::find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string WorkloadSpec::canonical() const {
  return SpecString{family, params}.canonical();
}

int WorkloadParams::get_int(const std::string& key, int def, int lo) const {
  return spec_get_int(spec_.params, key, def, lo);
}

double WorkloadParams::get_double(const std::string& key, double def,
                                  double lo) const {
  return spec_get_double(spec_.params, key, def, lo);
}

std::string WorkloadParams::get_string(const std::string& key,
                                       std::string def) const {
  return spec_get_string(spec_.params, key, std::move(def));
}

}  // namespace mbsp
