#include "src/workload/structured.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"

namespace mbsp {

namespace {
// Compute weights by operation kind, on the same scale as the paper
// dataset generators (coarse block ops are an order of magnitude heavier
// than fine-grained arithmetic).
constexpr double kCell = 1;                              // stencil/wavefront
constexpr double kButterfly = 1;                         // FFT
constexpr double kGetrf = 6, kTrsm = 4, kGemm = 8;       // LU / Cholesky
constexpr double kPotrf = 6, kSyrk = 6;
constexpr double kProj = 4, kScore = 1, kNorm = 1;       // transformer
constexpr double kMap = 4, kReduce = 6;                  // MapReduce
}  // namespace

ComputeDag stencil2d_dag(int nx, int ny, int steps, std::string name) {
  ComputeDag dag(std::move(name));
  auto at = [&](const std::vector<NodeId>& grid, int x, int y) {
    return grid[static_cast<std::size_t>(y) * nx + x];
  };
  std::vector<NodeId> grid;
  for (int i = 0; i < nx * ny; ++i) grid.push_back(dag.add_node(0, 1));
  for (int t = 0; t < steps; ++t) {
    std::vector<NodeId> next;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const NodeId cell = dag.add_node(kCell, 1);
        dag.add_edge(at(grid, x, y), cell);
        if (x > 0) dag.add_edge(at(grid, x - 1, y), cell);
        if (x + 1 < nx) dag.add_edge(at(grid, x + 1, y), cell);
        if (y > 0) dag.add_edge(at(grid, x, y - 1), cell);
        if (y + 1 < ny) dag.add_edge(at(grid, x, y + 1), cell);
        next.push_back(cell);
      }
    }
    grid = std::move(next);
  }
  return dag;
}

ComputeDag stencil3d_dag(int nx, int ny, int nz, int steps, std::string name) {
  ComputeDag dag(std::move(name));
  auto at = [&](const std::vector<NodeId>& grid, int x, int y, int z) {
    return grid[(static_cast<std::size_t>(z) * ny + y) * nx + x];
  };
  std::vector<NodeId> grid;
  for (int i = 0; i < nx * ny * nz; ++i) grid.push_back(dag.add_node(0, 1));
  for (int t = 0; t < steps; ++t) {
    std::vector<NodeId> next;
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          const NodeId cell = dag.add_node(kCell, 1);
          dag.add_edge(at(grid, x, y, z), cell);
          if (x > 0) dag.add_edge(at(grid, x - 1, y, z), cell);
          if (x + 1 < nx) dag.add_edge(at(grid, x + 1, y, z), cell);
          if (y > 0) dag.add_edge(at(grid, x, y - 1, z), cell);
          if (y + 1 < ny) dag.add_edge(at(grid, x, y + 1, z), cell);
          if (z > 0) dag.add_edge(at(grid, x, y, z - 1), cell);
          if (z + 1 < nz) dag.add_edge(at(grid, x, y, z + 1), cell);
          next.push_back(cell);
        }
      }
    }
    grid = std::move(next);
  }
  return dag;
}

ComputeDag wavefront_dag(int nx, int ny, std::string name) {
  ComputeDag dag(std::move(name));
  // Boundary inputs: one per column (top), one per row (left), one corner.
  std::vector<NodeId> top, left;
  for (int x = 0; x < nx; ++x) top.push_back(dag.add_node(0, 1));
  for (int y = 0; y < ny; ++y) left.push_back(dag.add_node(0, 1));
  const NodeId corner = dag.add_node(0, 1);
  std::vector<NodeId> cells(static_cast<std::size_t>(nx) * ny);
  auto at = [&](int x, int y) {
    return cells[static_cast<std::size_t>(y) * nx + x];
  };
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const NodeId cell = dag.add_node(kCell, 1);
      dag.add_edge(y > 0 ? at(x, y - 1) : top[x], cell);
      dag.add_edge(x > 0 ? at(x - 1, y) : left[y], cell);
      if (x > 0 && y > 0) {
        dag.add_edge(at(x - 1, y - 1), cell);
      } else if (x > 0) {
        dag.add_edge(top[x - 1], cell);
      } else if (y > 0) {
        dag.add_edge(left[y - 1], cell);
      } else {
        dag.add_edge(corner, cell);
      }
      cells[static_cast<std::size_t>(y) * nx + x] = cell;
    }
  }
  return dag;
}

ComputeDag blocked_lu_dag(int b, std::string name) {
  ComputeDag dag(std::move(name));
  // state[i][j]: latest producer of block (i, j); starts at the inputs.
  std::vector<std::vector<NodeId>> state(b, std::vector<NodeId>(b));
  for (int i = 0; i < b; ++i) {
    for (int j = 0; j < b; ++j) state[i][j] = dag.add_node(0, 1);
  }
  for (int k = 0; k < b; ++k) {
    const NodeId getrf = dag.add_node(kGetrf, 1);
    dag.add_edge(state[k][k], getrf);
    state[k][k] = getrf;
    for (int i = k + 1; i < b; ++i) {  // column panel: L(i,k)
      const NodeId trsm = dag.add_node(kTrsm, 1);
      dag.add_edge(getrf, trsm);
      dag.add_edge(state[i][k], trsm);
      state[i][k] = trsm;
    }
    for (int j = k + 1; j < b; ++j) {  // row panel: U(k,j)
      const NodeId trsm = dag.add_node(kTrsm, 1);
      dag.add_edge(getrf, trsm);
      dag.add_edge(state[k][j], trsm);
      state[k][j] = trsm;
    }
    for (int i = k + 1; i < b; ++i) {  // trailing update
      for (int j = k + 1; j < b; ++j) {
        const NodeId gemm = dag.add_node(kGemm, 1);
        dag.add_edge(state[i][k], gemm);
        dag.add_edge(state[k][j], gemm);
        dag.add_edge(state[i][j], gemm);
        state[i][j] = gemm;
      }
    }
  }
  return dag;
}

ComputeDag blocked_cholesky_dag(int b, std::string name) {
  ComputeDag dag(std::move(name));
  // Lower triangle only: state[i][j] for i >= j.
  std::vector<std::vector<NodeId>> state(b);
  for (int i = 0; i < b; ++i) {
    for (int j = 0; j <= i; ++j) state[i].push_back(dag.add_node(0, 1));
  }
  for (int k = 0; k < b; ++k) {
    const NodeId potrf = dag.add_node(kPotrf, 1);
    dag.add_edge(state[k][k], potrf);
    state[k][k] = potrf;
    for (int i = k + 1; i < b; ++i) {
      const NodeId trsm = dag.add_node(kTrsm, 1);
      dag.add_edge(potrf, trsm);
      dag.add_edge(state[i][k], trsm);
      state[i][k] = trsm;
    }
    for (int j = k + 1; j < b; ++j) {
      for (int i = j; i < b; ++i) {
        const NodeId update = dag.add_node(i == j ? kSyrk : kGemm, 1);
        dag.add_edge(state[i][k], update);
        if (i != j) dag.add_edge(state[j][k], update);
        dag.add_edge(state[i][j], update);
        state[i][j] = update;
      }
    }
  }
  return dag;
}

ComputeDag fft_dag(int n, std::string name) {
  if (n < 2 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: n must be a power of two >= 2, got " +
                                std::to_string(n));
  }
  ComputeDag dag(std::move(name));
  std::vector<NodeId> stage;
  for (int i = 0; i < n; ++i) stage.push_back(dag.add_node(0, 1));
  for (int bit = 1; bit < n; bit <<= 1) {
    std::vector<NodeId> next;
    for (int i = 0; i < n; ++i) {
      const NodeId butterfly = dag.add_node(kButterfly, 1);
      dag.add_edge(stage[i], butterfly);
      dag.add_edge(stage[i ^ bit], butterfly);
      next.push_back(butterfly);
    }
    stage = std::move(next);
  }
  return dag;
}

ComputeDag transformer_dag(int seq, int heads, int ff, std::string name) {
  ComputeDag dag(std::move(name));
  std::vector<NodeId> tokens;
  for (int t = 0; t < seq; ++t) tokens.push_back(dag.add_node(0, 1));
  // Multi-head attention: each head projects Q/K/V, scores every (i, j)
  // pair, normalizes rows (softmax denominator as a reduction tree) and
  // accumulates the weighted values per query.
  std::vector<std::vector<NodeId>> head_out(heads);
  for (int h = 0; h < heads; ++h) {
    std::vector<NodeId> q, k, v;
    for (int t = 0; t < seq; ++t) {
      for (auto* vec : {&q, &k, &v}) {
        const NodeId proj = dag.add_node(kProj, 1);
        dag.add_edge(tokens[t], proj);
        vec->push_back(proj);
      }
    }
    for (int i = 0; i < seq; ++i) {
      std::vector<NodeId> scores;
      for (int j = 0; j < seq; ++j) {
        const NodeId score = dag.add_node(kScore, 1);  // exp(q_i . k_j)
        dag.add_edge(q[i], score);
        dag.add_edge(k[j], score);
        scores.push_back(score);
      }
      const NodeId denom = add_reduction_tree(dag, scores, kNorm, 1);
      std::vector<NodeId> weighted;
      for (int j = 0; j < seq; ++j) {
        const NodeId w = dag.add_node(kNorm, 1);  // (score_ij / denom) v_j
        dag.add_edge(scores[j], w);
        dag.add_edge(denom, w);
        dag.add_edge(v[j], w);
        weighted.push_back(w);
      }
      head_out[h].push_back(
          add_reduction_tree(dag, std::move(weighted), kNorm, 1));
    }
  }
  // Output projection over the concatenated heads, plus residual.
  std::vector<NodeId> attended;
  for (int t = 0; t < seq; ++t) {
    const NodeId out = dag.add_node(kProj, 1);
    for (int h = 0; h < heads; ++h) dag.add_edge(head_out[h][t], out);
    const NodeId residual = dag.add_node(kNorm, 1);
    dag.add_edge(out, residual);
    dag.add_edge(tokens[t], residual);
    attended.push_back(residual);
  }
  // Feed-forward block: ff-wide hidden layer, projection back, residual.
  for (int t = 0; t < seq; ++t) {
    const NodeId ff1 = dag.add_node(kProj * ff, 1);
    dag.add_edge(attended[t], ff1);
    const NodeId ff2 = dag.add_node(kProj * ff, 1);
    dag.add_edge(ff1, ff2);
    const NodeId residual = dag.add_node(kNorm, 1);
    dag.add_edge(ff2, residual);
    dag.add_edge(attended[t], residual);
  }
  return dag;
}

ComputeDag mapreduce_dag(int maps, int reducers, int rounds,
                         std::string name) {
  ComputeDag dag(std::move(name));
  std::vector<NodeId> inputs;
  for (int m = 0; m < maps; ++m) inputs.push_back(dag.add_node(0, 1));
  for (int round = 0; round < rounds; ++round) {
    std::vector<NodeId> mapped;
    for (int m = 0; m < maps; ++m) {
      const NodeId map = dag.add_node(kMap, 1);
      // Round 0 maps read their split; later rounds redistribute the
      // previous round's reducer outputs.
      dag.add_edge(inputs[m % inputs.size()], map);
      mapped.push_back(map);
    }
    std::vector<NodeId> reduced;
    for (int r = 0; r < reducers; ++r) {
      const NodeId reduce = dag.add_node(kReduce, 1);  // all-to-all shuffle
      for (NodeId map : mapped) dag.add_edge(map, reduce);
      reduced.push_back(reduce);
    }
    inputs = std::move(reduced);
  }
  return dag;
}

// --- Streaming emitters. -------------------------------------------------
//
// Each emitter mirrors its in-memory twin's node-id assignment exactly;
// children are derived by inverting the twin's "cell reads neighborhood"
// loops so edges come out u-major. The suffix-sum edge counts are analytic
// (no discovery pass over the graph).

void stencil2d_stream(int nx, int ny, int steps, const std::string& name,
                      DagSink& sink) {
  const std::uint64_t layer = static_cast<std::uint64_t>(nx) * ny;
  // Per step: one carried-value edge per cell plus both directions of
  // every in-bounds grid adjacency.
  const std::uint64_t adjacency =
      2ull * (static_cast<std::uint64_t>(nx - 1) * ny +
              static_cast<std::uint64_t>(nx) * (ny - 1));
  sink.begin(name, layer * (static_cast<std::uint64_t>(steps) + 1));
  for (std::uint64_t i = 0; i < layer; ++i) sink.add_node(0, 1);
  for (int t = 0; t < steps; ++t) {
    for (std::uint64_t i = 0; i < layer; ++i) sink.add_node(kCell, 1);
  }
  sink.begin_edges(static_cast<std::uint64_t>(steps) * (layer + adjacency));
  for (int t = 0; t < steps; ++t) {
    const std::uint64_t base = layer * static_cast<std::uint64_t>(t);
    const std::uint64_t next = base + layer;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const NodeId u = static_cast<NodeId>(
            base + static_cast<std::uint64_t>(y) * nx + x);
        auto child = [&](int cx, int cy) {
          sink.add_edge(u, static_cast<NodeId>(
                               next + static_cast<std::uint64_t>(cy) * nx +
                               cx));
        };
        child(x, y);
        if (x > 0) child(x - 1, y);
        if (x + 1 < nx) child(x + 1, y);
        if (y > 0) child(x, y - 1);
        if (y + 1 < ny) child(x, y + 1);
      }
    }
  }
}

void stencil3d_stream(int nx, int ny, int nz, int steps,
                      const std::string& name, DagSink& sink) {
  const std::uint64_t layer =
      static_cast<std::uint64_t>(nx) * ny * static_cast<std::uint64_t>(nz);
  const std::uint64_t adjacency =
      2ull * (static_cast<std::uint64_t>(nx - 1) * ny * nz +
              static_cast<std::uint64_t>(nx) * (ny - 1) * nz +
              static_cast<std::uint64_t>(nx) * ny * (nz - 1));
  sink.begin(name, layer * (static_cast<std::uint64_t>(steps) + 1));
  for (std::uint64_t i = 0; i < layer; ++i) sink.add_node(0, 1);
  for (int t = 0; t < steps; ++t) {
    for (std::uint64_t i = 0; i < layer; ++i) sink.add_node(kCell, 1);
  }
  sink.begin_edges(static_cast<std::uint64_t>(steps) * (layer + adjacency));
  for (int t = 0; t < steps; ++t) {
    const std::uint64_t base = layer * static_cast<std::uint64_t>(t);
    const std::uint64_t next = base + layer;
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          const std::uint64_t cell =
              (static_cast<std::uint64_t>(z) * ny + y) * nx + x;
          const NodeId u = static_cast<NodeId>(base + cell);
          auto child = [&](int cx, int cy, int cz) {
            sink.add_edge(
                u, static_cast<NodeId>(
                       next + (static_cast<std::uint64_t>(cz) * ny + cy) * nx +
                       cx));
          };
          child(x, y, z);
          if (x > 0) child(x - 1, y, z);
          if (x + 1 < nx) child(x + 1, y, z);
          if (y > 0) child(x, y - 1, z);
          if (y + 1 < ny) child(x, y + 1, z);
          if (z > 0) child(x, y, z - 1);
          if (z + 1 < nz) child(x, y, z + 1);
        }
      }
    }
  }
}

void wavefront_stream(int nx, int ny, const std::string& name,
                      DagSink& sink) {
  const std::uint64_t cells = static_cast<std::uint64_t>(nx) * ny;
  const std::uint64_t first_cell =
      static_cast<std::uint64_t>(nx) + static_cast<std::uint64_t>(ny) + 1;
  auto cell = [&](int x, int y) {
    return static_cast<NodeId>(first_cell +
                               static_cast<std::uint64_t>(y) * nx + x);
  };
  sink.begin(name, first_cell + cells);
  for (std::uint64_t i = 0; i < first_cell; ++i) sink.add_node(0, 1);
  for (std::uint64_t i = 0; i < cells; ++i) sink.add_node(kCell, 1);
  sink.begin_edges(3 * cells);  // every cell has exactly three parents
  for (int x = 0; x < nx; ++x) {  // top boundary inputs
    sink.add_edge(static_cast<NodeId>(x), cell(x, 0));
    if (x + 1 < nx) sink.add_edge(static_cast<NodeId>(x), cell(x + 1, 0));
  }
  for (int y = 0; y < ny; ++y) {  // left boundary inputs
    sink.add_edge(static_cast<NodeId>(nx + y), cell(0, y));
    if (y + 1 < ny) sink.add_edge(static_cast<NodeId>(nx + y), cell(0, y + 1));
  }
  sink.add_edge(static_cast<NodeId>(nx + ny), cell(0, 0));  // corner
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const NodeId u = cell(x, y);
      if (y + 1 < ny) sink.add_edge(u, cell(x, y + 1));
      if (x + 1 < nx) sink.add_edge(u, cell(x + 1, y));
      if (x + 1 < nx && y + 1 < ny) sink.add_edge(u, cell(x + 1, y + 1));
    }
  }
}

void fft_stream(int n, const std::string& name, DagSink& sink) {
  if (n < 2 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: n must be a power of two >= 2, got " +
                                std::to_string(n));
  }
  int stages = 0;
  for (int bit = 1; bit < n; bit <<= 1) ++stages;
  sink.begin(name, static_cast<std::uint64_t>(n) * (stages + 1));
  for (int i = 0; i < n; ++i) sink.add_node(0, 1);
  for (int s = 0; s < stages; ++s) {
    for (int i = 0; i < n; ++i) sink.add_node(kButterfly, 1);
  }
  sink.begin_edges(2ull * n * static_cast<std::uint64_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const std::uint64_t base = static_cast<std::uint64_t>(s) * n;
    const std::uint64_t next = base + static_cast<std::uint64_t>(n);
    const int bit = 1 << s;
    for (int i = 0; i < n; ++i) {
      const NodeId u = static_cast<NodeId>(base + i);
      sink.add_edge(u, static_cast<NodeId>(next + i));
      sink.add_edge(u, static_cast<NodeId>(next + (i ^ bit)));
    }
  }
}

void mapreduce_stream(int maps, int reducers, int rounds,
                      const std::string& name, DagSink& sink) {
  const std::uint64_t round_size =
      static_cast<std::uint64_t>(maps) + reducers;
  sink.begin(name, static_cast<std::uint64_t>(maps) +
                       static_cast<std::uint64_t>(rounds) * round_size);
  for (int m = 0; m < maps; ++m) sink.add_node(0, 1);
  for (int round = 0; round < rounds; ++round) {
    for (int m = 0; m < maps; ++m) sink.add_node(kMap, 1);
    for (int r = 0; r < reducers; ++r) sink.add_node(kReduce, 1);
  }
  // Per round: one feed edge per map plus the all-to-all shuffle.
  sink.begin_edges(static_cast<std::uint64_t>(rounds) * maps *
                   (1ull + static_cast<std::uint64_t>(reducers)));
  auto round_base = [&](int round) {
    return static_cast<std::uint64_t>(maps) +
           static_cast<std::uint64_t>(round) * round_size;
  };
  for (int m = 0; m < maps; ++m) {  // input split m feeds round-0 map m
    sink.add_edge(static_cast<NodeId>(m),
                  static_cast<NodeId>(round_base(0) + m));
  }
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t base = round_base(round);
    for (int m = 0; m < maps; ++m) {  // all-to-all shuffle
      const NodeId u = static_cast<NodeId>(base + m);
      for (int r = 0; r < reducers; ++r) {
        sink.add_edge(u, static_cast<NodeId>(base + maps + r));
      }
    }
    if (round + 1 < rounds) {  // redistribute to the next round's maps
      for (int r = 0; r < reducers; ++r) {
        const NodeId u = static_cast<NodeId>(base + maps + r);
        for (int m = r; m < maps; m += reducers) {
          sink.add_edge(u, static_cast<NodeId>(round_base(round + 1) + m));
        }
      }
    }
  }
}

}  // namespace mbsp
