#pragma once
// Central registry of every WorkloadFamily, the instance-side mirror of
// SchedulerRegistry. The global registry comes pre-populated with:
//
//   paper set     spmv, exp, cg, knn, bicgstab, kmeans, pregel, pagerank,
//                 snni, random-layered (the [36]-style dataset builders)
//   structured    stencil2d, stencil3d, wavefront, lu, cholesky, fft,
//                 attention, mapreduce
//   imported      mtx-spmv, mtx-cg, mtx-exp (Matrix Market files)
//
// Adding a family is one `add(...)` call; the corpus CLI, suite_runner
// and bench_workloads pick the newcomer up by name with no code changes.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/model/instance.hpp"
#include "src/workload/workload.hpp"

namespace mbsp {

class WorkloadRegistry {
 public:
  /// Empty registry (tests); `global()` is the pre-populated one.
  WorkloadRegistry() = default;

  /// The process-wide registry with every built-in family registered.
  /// Register custom families before starting batch runs; lookups are not
  /// synchronized against concurrent registration.
  static WorkloadRegistry& global();

  /// Registers `family` under its name(); replaces any previous holder.
  void add(std::unique_ptr<WorkloadFamily> family);

  /// Whether a family of that exact name is registered (read-only,
  /// thread-safe after registration).
  bool contains(const std::string& name) const;

  /// Looks a family up by name; nullptr when absent. Families are
  /// stateless: generate() is const, thread-safe, and deterministic given
  /// (params, rng state).
  const WorkloadFamily* find(const std::string& name) const;

  /// Like find(), but throws std::out_of_range naming the missing family
  /// (the CLI-facing lookup).
  const WorkloadFamily& at(const std::string& name) const;

  /// All registered names, sorted (a deterministic listing regardless of
  /// registration order).
  std::vector<std::string> names() const;

  std::size_t size() const { return families_.size(); }

  /// Builds the DAG named by `spec` ("family" or "family:k=v,..."). The
  /// result is named by the canonical spec and its structure depends only
  /// on (spec, seed). Unknown families/parameters or bad values fill
  /// *error and return nullopt.
  std::optional<ComputeDag> make_dag(const std::string& spec,
                                     std::uint64_t seed,
                                     std::string* error = nullptr) const;

  /// Whether `spec` names a family with a streaming emitter (the spec must
  /// parse and the family exist; parameter values are not validated here).
  bool supports_streaming(const std::string& spec) const;

  /// Out-of-core twin of make_dag (docs/SCALE.md): emits the DAG named by
  /// `spec` straight into `sink` — typically a DagStreamWriter — without
  /// materializing a ComputeDag. The emitted stream is identical to
  /// make_dag's result for the same (spec, seed): same canonical name,
  /// same RNG stream, same per-node mu draws, so the canonical hashes
  /// match bitwise. Fails (false + *error) for families without streaming
  /// support, naming the family.
  bool make_dag_stream(const std::string& spec, std::uint64_t seed,
                       DagSink& sink, std::string* error = nullptr) const;

  /// make_dag plus architecture sizing: r = r_factor * min_memory_r0(dag).
  std::optional<MbspInstance> make_instance(const std::string& spec,
                                            std::uint64_t seed, int P,
                                            double r_factor, double g = 1,
                                            double L = 10,
                                            std::string* error = nullptr) const;

 private:
  std::vector<std::unique_ptr<WorkloadFamily>> families_;
};

/// Registers the built-in families listed above (what `global()` does on
/// first use; exposed for registry-local tests).
void register_builtin_workloads(WorkloadRegistry& registry);

/// Convenience adapter so a family is one add() call: name, description,
/// declared params, a generate callback and (optionally) its streaming
/// twin.
class SimpleWorkloadFamily final : public WorkloadFamily {
 public:
  using GenerateFn =
      std::function<ComputeDag(const WorkloadParams&, Rng&)>;
  using StreamFn =
      std::function<void(const WorkloadParams&, Rng&, DagSink&)>;

  SimpleWorkloadFamily(std::string name, std::string description,
                       std::vector<WorkloadParamInfo> params, GenerateFn fn,
                       StreamFn stream = nullptr)
      : name_(std::move(name)),
        description_(std::move(description)),
        params_(std::move(params)),
        fn_(std::move(fn)),
        stream_(std::move(stream)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::vector<WorkloadParamInfo> params() const override { return params_; }
  ComputeDag generate(const WorkloadParams& p, Rng& rng) const override {
    return fn_(p, rng);
  }
  bool supports_streaming() const override { return stream_ != nullptr; }
  void generate_stream(const WorkloadParams& p, Rng& rng,
                       DagSink& sink) const override {
    if (!stream_) {
      WorkloadFamily::generate_stream(p, rng, sink);  // throws
      return;
    }
    stream_(p, rng, sink);
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<WorkloadParamInfo> params_;
  GenerateFn fn_;
  StreamFn stream_;
};

}  // namespace mbsp
