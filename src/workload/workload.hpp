#pragma once
// Workload corpus subsystem, the instance-side mirror of the scheduler
// registry: parameterized named DAG families that build MbspInstances from
// a spec string like `stencil2d:nx=32,ny=32,steps=4`.
//
// A spec is `family` or `family:key=value,key=value,...`. The registry
// canonicalizes it — parameters sorted by key, entries that textually
// match the family's declared default dropped — and names generated DAGs
// by the canonical form, so equal scenarios carry equal names (and equal
// canonical hashes) everywhere: batch tables, corpus files, CI artifacts.
//
// Every family also honors the common parameter `mu` (`rand`, the
// default, draws memory weights uniformly from {1..5} as the paper does;
// `unit` keeps the generator's weights).

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/dag.hpp"

namespace mbsp {

class DagSink;  // src/graph/dag_io.hpp (streaming emission target)

/// One declared parameter of a family, for `describe` and validation.
struct WorkloadParamInfo {
  std::string key;
  std::string default_value;
  std::string help;
};

/// Parsed `family:key=value,...` spec. Parameter order is preserved as
/// written; `canonical()` sorts by key.
struct WorkloadSpec {
  std::string family;
  std::vector<std::pair<std::string, std::string>> params;

  static std::optional<WorkloadSpec> parse(const std::string& text,
                                           std::string* error = nullptr);

  /// nullptr when the key is absent.
  const std::string* find(const std::string& key) const;

  std::string canonical() const;
};

/// Typed accessors over a spec's parameters. Bad values throw
/// std::invalid_argument (converted to error strings by the registry).
class WorkloadParams {
 public:
  explicit WorkloadParams(const WorkloadSpec& spec) : spec_(spec) {}

  /// Integer parameter clamped from below by `lo`; non-numeric or < lo
  /// throws.
  int get_int(const std::string& key, int def, int lo = 1) const;
  double get_double(const std::string& key, double def, double lo = 0) const;
  std::string get_string(const std::string& key, std::string def) const;

  const WorkloadSpec& spec() const { return spec_; }

 private:
  const WorkloadSpec& spec_;
};

/// A named, parameterized DAG family. Implementations are stateless;
/// `generate` is const + thread-safe and deterministic given (params, rng
/// state), like MbspScheduler::run.
class WorkloadFamily {
 public:
  virtual ~WorkloadFamily() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual std::vector<WorkloadParamInfo> params() const = 0;

  /// Builds the family DAG. `rng` is pre-seeded from the corpus seed and
  /// the canonical spec, so equal specs yield equal DAGs.
  virtual ComputeDag generate(const WorkloadParams& p, Rng& rng) const = 0;

  /// Out-of-core path (docs/SCALE.md): families whose node/edge counts are
  /// analytic can emit the same DAG straight into a DagSink in O(1) memory
  /// beyond one node's child list, instead of materializing a ComputeDag.
  /// Contract: the emitted (name, nodes, edges) stream describes a DAG
  /// identical to generate()'s — same node ids, same (omega, mu) sequence,
  /// same edge sets — so the canonical hash matches bitwise. Edges must be
  /// emitted u-major (all of node 0's children, then node 1's, ...).
  virtual bool supports_streaming() const { return false; }

  /// Emits the family DAG into `sink`. Only valid when
  /// supports_streaming(); the default implementation throws.
  virtual void generate_stream(const WorkloadParams& p, Rng& rng,
                               DagSink& sink) const;
};

}  // namespace mbsp
