#pragma once
// Structured DAG families beyond the paper's benchmark set: dense linear
// algebra task graphs, stencils, wavefronts, FFT butterflies, a
// transformer layer and MapReduce rounds. All builders are deterministic
// (no RNG): structure is fully determined by the parameters, which makes
// the corpus hashes stable by construction. Memory-weight randomization is
// applied afterwards by the workload registry (common `mu` parameter).

#include <string>

#include "src/graph/dag.hpp"

namespace mbsp {

/// 5-point 2D stencil iterated `steps` times: grid nx x ny of sources,
/// then steps full grids where (t,x,y) reads its (t-1) von-Neumann
/// neighborhood (boundary-clamped).
ComputeDag stencil2d_dag(int nx, int ny, int steps, std::string name);

/// 7-point 3D stencil, same construction.
ComputeDag stencil3d_dag(int nx, int ny, int nz, int steps, std::string name);

/// Dynamic-programming wavefront (Smith-Waterman style): cell (i,j)
/// depends on (i-1,j), (i,j-1) and (i-1,j-1); boundary cells read from
/// dedicated input nodes.
ComputeDag wavefront_dag(int nx, int ny, std::string name);

/// Right-looking blocked LU factorization over a b x b block matrix:
/// getrf on the diagonal, trsm on its row/column, gemm trailing updates.
ComputeDag blocked_lu_dag(int blocks, std::string name);

/// Right-looking blocked Cholesky over the lower triangle: potrf, trsm,
/// syrk/gemm trailing updates.
ComputeDag blocked_cholesky_dag(int blocks, std::string name);

/// Radix-2 FFT butterfly: n inputs (n a power of two), log2(n) stages of
/// n butterflies; (s,i) reads (s-1,i) and (s-1, i XOR 2^(s-1)).
/// Throws std::invalid_argument when n is not a power of two.
ComputeDag fft_dag(int n, std::string name);

/// One transformer layer (multi-head attention + MLP) over `seq` tokens:
/// per head Q/K/V projections, seq x seq score and weighting nodes with
/// softmax row reductions, output projection with residual, then a
/// two-layer feed-forward block (hidden multiplier `ff`) with residual.
ComputeDag transformer_dag(int seq, int heads, int ff, std::string name);

/// `rounds` MapReduce rounds: map tasks feeding an all-to-all shuffle into
/// reduce tasks; later rounds' maps read the previous round's reducers.
ComputeDag mapreduce_dag(int maps, int reducers, int rounds,
                         std::string name);

// --- Streaming emitters (out-of-core path, docs/SCALE.md). ---------------
//
// Each *_stream builder emits exactly the DAG its in-memory twin above
// builds — same node ids, same (omega, mu) sequence, same edge sets, so
// the canonical hash matches bitwise — but into a DagSink in O(1) memory
// beyond one node's child list. Node and edge counts are analytic; edges
// are emitted u-major as DagStreamWriter requires. This is how 10^6..10^7
// node instances are generated without ever materializing a ComputeDag.

class DagSink;  // src/graph/dag_io.hpp

void stencil2d_stream(int nx, int ny, int steps, const std::string& name,
                      DagSink& sink);
void stencil3d_stream(int nx, int ny, int nz, int steps,
                      const std::string& name, DagSink& sink);
void wavefront_stream(int nx, int ny, const std::string& name, DagSink& sink);
/// Throws std::invalid_argument when n is not a power of two (mirrors
/// fft_dag).
void fft_stream(int n, const std::string& name, DagSink& sink);
void mapreduce_stream(int maps, int reducers, int rounds,
                      const std::string& name, DagSink& sink);

}  // namespace mbsp
