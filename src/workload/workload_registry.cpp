#include "src/workload/workload_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/mtx_io.hpp"
#include "src/model/spec.hpp"
#include "src/workload/structured.hpp"

namespace mbsp {

WorkloadRegistry& WorkloadRegistry::global() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    register_builtin_workloads(*r);
    return r;
  }();
  return *registry;
}

void WorkloadRegistry::add(std::unique_ptr<WorkloadFamily> family) {
  const std::string name = family->name();
  for (auto& existing : families_) {
    if (existing->name() == name) {
      existing = std::move(family);
      return;
    }
  }
  families_.push_back(std::move(family));
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const WorkloadFamily* WorkloadRegistry::find(const std::string& name) const {
  for (const auto& family : families_) {
    if (family->name() == name) return family.get();
  }
  return nullptr;
}

const WorkloadFamily& WorkloadRegistry::at(const std::string& name) const {
  const WorkloadFamily* family = find(name);
  if (family == nullptr) {
    throw std::out_of_range("no workload family named '" + name + "'");
  }
  return *family;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& family : families_) out.push_back(family->name());
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Outcome of parsing + validating a spec against the registry: the
/// family, the parsed spec (owning the parameter storage WorkloadParams
/// views), the canonical name (also the RNG salt) and the mu mode.
struct ResolvedSpec {
  const WorkloadFamily* family = nullptr;
  WorkloadSpec spec;
  std::string canonical;
  bool mu_rand = true;
};

std::optional<ResolvedSpec> resolve_spec(const WorkloadRegistry& registry,
                                         const std::string& spec,
                                         std::string* error) {
  std::string parse_error;
  auto parsed = WorkloadSpec::parse(spec, &parse_error);
  if (!parsed) {
    fail(error, parse_error);
    return std::nullopt;
  }
  const WorkloadFamily* family = registry.find(parsed->family);
  if (family == nullptr) {
    fail(error, spec_unknown_name_error(parsed->family, "workload family",
                                        registry.names()));
    return std::nullopt;
  }
  const auto declared = family->params();
  for (const auto& [key, value] : parsed->params) {
    if (key == "mu") continue;  // common parameter, handled below
    const bool known =
        std::any_of(declared.begin(), declared.end(),
                    [&key](const WorkloadParamInfo& p) { return p.key == key; });
    if (!known) {
      // Shared error style with the machine registry: name the offending
      // token and list the valid keys (mu is accepted everywhere).
      std::vector<std::string> keys{"mu"};
      for (const WorkloadParamInfo& p : declared) keys.push_back(p.key);
      fail(error, spec_unknown_key_error(
                      key, "family '" + parsed->family + "'",
                      std::move(keys)));
      return std::nullopt;
    }
  }
  const WorkloadParams params(*parsed);
  const std::string mu = params.get_string("mu", "rand");
  if (mu != "rand" && mu != "unit") {
    fail(error, "parameter 'mu': expected 'rand' or 'unit', got '" + mu + "'");
    return std::nullopt;
  }
  // Canonical name: parameters sorted by key, with entries that textually
  // match the family's declared default (and mu=rand) dropped — so every
  // spelling of the same scenario shares one name, hash and RNG stream.
  WorkloadSpec normalized = *parsed;
  std::erase_if(normalized.params,
                [&](const std::pair<std::string, std::string>& kv) {
                  if (kv.first == "mu") return kv.second == "rand";
                  return std::any_of(declared.begin(), declared.end(),
                                     [&kv](const WorkloadParamInfo& p) {
                                       return p.key == kv.first &&
                                              p.default_value == kv.second;
                                     });
                });
  ResolvedSpec resolved;
  resolved.family = family;
  resolved.canonical = normalized.canonical();
  resolved.mu_rand = (mu == "rand");
  resolved.spec = std::move(*parsed);
  return resolved;
}

/// The RNG stream every maker shares: per-spec, so equal specs yield equal
/// DAGs for a given seed and no family's draws can shift another's.
Rng spec_rng(std::uint64_t seed, const std::string& canonical) {
  return Rng(seed * 0x9E3779B97F4A7C15ull ^
             fnv1a_64(canonical.data(), canonical.size()));
}

/// Sink wrapper the streaming path routes through: forces the canonical
/// name and applies the common mu parameter with the same draw, in the
/// same node-id order, as assign_random_memory_weights on the in-memory
/// path. Streaming families consume no other randomness, so the two paths
/// see identical RNG streams and the canonical hashes match bitwise.
class RegistrySink final : public DagSink {
 public:
  RegistrySink(DagSink& inner, const std::string& canonical, bool mu_rand,
               Rng& rng)
      : inner_(inner), canonical_(canonical), mu_rand_(mu_rand), rng_(rng) {}

  void begin(const std::string&, std::uint64_t num_nodes) override {
    inner_.begin(canonical_, num_nodes);
  }
  void add_node(double omega, double mu) override {
    if (mu_rand_) mu = static_cast<double>(rng_.uniform_int(1, 5));
    inner_.add_node(omega, mu);
  }
  void begin_edges(std::uint64_t num_edges) override {
    inner_.begin_edges(num_edges);
  }
  void add_edge(NodeId u, NodeId v) override { inner_.add_edge(u, v); }

 private:
  DagSink& inner_;
  const std::string& canonical_;
  bool mu_rand_;
  Rng& rng_;
};

}  // namespace

std::optional<ComputeDag> WorkloadRegistry::make_dag(const std::string& spec,
                                                     std::uint64_t seed,
                                                     std::string* error) const {
  auto resolved = resolve_spec(*this, spec, error);
  if (!resolved) return std::nullopt;
  const WorkloadParams params(resolved->spec);
  Rng rng = spec_rng(seed, resolved->canonical);
  try {
    ComputeDag dag = resolved->family->generate(params, rng);
    if (resolved->mu_rand) assign_random_memory_weights(dag, rng);
    dag.set_name(resolved->canonical);
    return dag;
  } catch (const std::exception& e) {
    fail(error, resolved->spec.family + ": " + e.what());
    return std::nullopt;
  }
}

bool WorkloadRegistry::supports_streaming(const std::string& spec) const {
  const auto parsed = WorkloadSpec::parse(spec);
  if (!parsed) return false;
  const WorkloadFamily* family = find(parsed->family);
  return family != nullptr && family->supports_streaming();
}

bool WorkloadRegistry::make_dag_stream(const std::string& spec,
                                       std::uint64_t seed, DagSink& sink,
                                       std::string* error) const {
  auto resolved = resolve_spec(*this, spec, error);
  if (!resolved) return false;
  if (!resolved->family->supports_streaming()) {
    std::vector<std::string> streaming;
    for (const std::string& name : names()) {
      if (at(name).supports_streaming()) streaming.push_back(name);
    }
    std::string list;
    for (const std::string& name : streaming) {
      if (!list.empty()) list += ", ";
      list += name;
    }
    return fail(error, "family '" + resolved->spec.family +
                           "' has no streaming emitter (families with one: " +
                           list + "); drop --stream or pick one of those");
  }
  const WorkloadParams params(resolved->spec);
  Rng rng = spec_rng(seed, resolved->canonical);
  RegistrySink wrapped(sink, resolved->canonical, resolved->mu_rand, rng);
  try {
    resolved->family->generate_stream(params, rng, wrapped);
    return true;
  } catch (const std::exception& e) {
    return fail(error, resolved->spec.family + ": " + e.what());
  }
}

std::optional<MbspInstance> WorkloadRegistry::make_instance(
    const std::string& spec, std::uint64_t seed, int P, double r_factor,
    double g, double L, std::string* error) const {
  auto dag = make_dag(spec, seed, error);
  if (!dag) return std::nullopt;
  const double r0 = min_memory_r0(*dag);
  return MbspInstance{std::move(*dag),
                      Architecture::make(P, r_factor * r0, g, L)};
}

namespace {

std::vector<std::vector<int>> load_mtx_or_throw(const WorkloadParams& p) {
  const std::string file = p.get_string("file", "");
  if (file.empty()) {
    throw std::invalid_argument("requires file=<path.mtx>");
  }
  std::string error;
  auto pattern = read_mtx_file(file, &error);
  if (!pattern) throw std::invalid_argument(error);
  return std::move(*pattern);
}

}  // namespace

void register_builtin_workloads(WorkloadRegistry& r) {
  using P = WorkloadParamInfo;
  auto add = [&r](std::string name, std::string description,
                  std::vector<P> params, SimpleWorkloadFamily::GenerateFn fn,
                  SimpleWorkloadFamily::StreamFn stream = nullptr) {
    r.add(std::make_unique<SimpleWorkloadFamily>(
        std::move(name), std::move(description), std::move(params),
        std::move(fn), std::move(stream)));
  };

  // --- The paper's benchmark families ([36]-style generators). ---------
  add("spmv", "fine-grained sparse matrix-vector product y = Ax",
      {{"n", "8", "matrix dimension"}, {"nnz", "3", "average nonzeros/row"}},
      [](const WorkloadParams& p, Rng& rng) {
        return spmv_dag(p.get_int("n", 8), p.get_int("nnz", 3), rng, "");
      });
  add("exp", "iterated SpMV x_{k+1} = A x_k with a fixed pattern",
      {{"n", "6", "matrix dimension"},
       {"iters", "3", "product iterations"},
       {"nnz", "3", "average nonzeros/row"}},
      [](const WorkloadParams& p, Rng& rng) {
        return iterated_spmv_dag(p.get_int("n", 6), p.get_int("iters", 3),
                                 p.get_int("nnz", 3), rng, "");
      });
  add("cg", "fine-grained conjugate gradient iterations",
      {{"n", "4", "matrix dimension"},
       {"iters", "2", "CG iterations"},
       {"nnz", "3", "average nonzeros/row"}},
      [](const WorkloadParams& p, Rng& rng) {
        return cg_dag(p.get_int("n", 4), p.get_int("iters", 2),
                      p.get_int("nnz", 3), rng, "");
      });
  add("knn", "k-nearest-neighbour distance computation",
      {{"refs", "5", "reference points"},
       {"queries", "4", "query points"},
       {"dims", "2", "coordinate dimensions"}},
      [](const WorkloadParams& p, Rng& rng) {
        return knn_dag(p.get_int("refs", 5), p.get_int("queries", 4),
                       p.get_int("dims", 2), rng, "");
      });
  add("bicgstab", "coarse-grained BiCGSTAB solver task graph",
      {{"iters", "3", "solver iterations"}},
      [](const WorkloadParams& p, Rng&) {
        return bicgstab_dag(p.get_int("iters", 3));
      });
  add("kmeans", "coarse-grained blocked k-means",
      {{"blocks", "4", "data blocks"},
       {"clusters", "4", "centroids"},
       {"iters", "3", "Lloyd iterations"}},
      [](const WorkloadParams& p, Rng&) {
        return kmeans_dag(p.get_int("blocks", 4), p.get_int("clusters", 4),
                          p.get_int("iters", 3));
      });
  add("pregel", "coarse-grained Pregel vertex-block supersteps",
      {{"blocks", "5", "vertex blocks"}, {"supersteps", "4", "supersteps"}},
      [](const WorkloadParams& p, Rng& rng) {
        return pregel_dag(p.get_int("blocks", 5), p.get_int("supersteps", 4),
                          rng, "");
      });
  add("pagerank", "coarse-grained block PageRank",
      {{"blocks", "8", "vertex blocks"}, {"iters", "4", "power iterations"}},
      [](const WorkloadParams& p, Rng& rng) {
        return pagerank_dag(p.get_int("blocks", 8), p.get_int("iters", 4),
                            rng);
      });
  add("snni", "sparse-NN inference (GraphChallenge SNNI style)",
      {{"blocks", "8", "activation blocks"}, {"layers", "4", "layers"}},
      [](const WorkloadParams& p, Rng& rng) {
        return snni_dag(p.get_int("blocks", 8), p.get_int("layers", 4), rng);
      });
  add("random-layered", "random layered DAG (property-test workhorse)",
      {{"nodes", "60", "total nodes"}, {"width", "5", "expected layer width"}},
      [](const WorkloadParams& p, Rng& rng) {
        return random_layered_dag(p.get_int("nodes", 60),
                                  p.get_int("width", 5), rng);
      });

  // --- Structured families beyond the paper's set. ---------------------
  add("stencil2d", "iterated 5-point 2D stencil",
      {{"nx", "8", "grid width"},
       {"ny", "8", "grid height"},
       {"steps", "3", "time steps"}},
      [](const WorkloadParams& p, Rng&) {
        return stencil2d_dag(p.get_int("nx", 8), p.get_int("ny", 8),
                             p.get_int("steps", 3), "");
      },
      [](const WorkloadParams& p, Rng&, DagSink& sink) {
        stencil2d_stream(p.get_int("nx", 8), p.get_int("ny", 8),
                         p.get_int("steps", 3), "", sink);
      });
  add("stencil3d", "iterated 7-point 3D stencil",
      {{"nx", "4", "grid width"},
       {"ny", "4", "grid height"},
       {"nz", "4", "grid depth"},
       {"steps", "2", "time steps"}},
      [](const WorkloadParams& p, Rng&) {
        return stencil3d_dag(p.get_int("nx", 4), p.get_int("ny", 4),
                             p.get_int("nz", 4), p.get_int("steps", 2), "");
      },
      [](const WorkloadParams& p, Rng&, DagSink& sink) {
        stencil3d_stream(p.get_int("nx", 4), p.get_int("ny", 4),
                         p.get_int("nz", 4), p.get_int("steps", 2), "", sink);
      });
  add("wavefront", "dynamic-programming wavefront (Smith-Waterman style)",
      {{"nx", "8", "matrix width"}, {"ny", "8", "matrix height"}},
      [](const WorkloadParams& p, Rng&) {
        return wavefront_dag(p.get_int("nx", 8), p.get_int("ny", 8), "");
      },
      [](const WorkloadParams& p, Rng&, DagSink& sink) {
        wavefront_stream(p.get_int("nx", 8), p.get_int("ny", 8), "", sink);
      });
  add("lu", "right-looking blocked LU factorization task graph",
      {{"blocks", "4", "blocks per dimension"}},
      [](const WorkloadParams& p, Rng&) {
        return blocked_lu_dag(p.get_int("blocks", 4), "");
      });
  add("cholesky", "right-looking blocked Cholesky task graph",
      {{"blocks", "4", "blocks per dimension"}},
      [](const WorkloadParams& p, Rng&) {
        return blocked_cholesky_dag(p.get_int("blocks", 4), "");
      });
  add("fft", "radix-2 FFT butterfly network",
      {{"n", "8", "transform size (power of two)"}},
      [](const WorkloadParams& p, Rng&) {
        return fft_dag(p.get_int("n", 8, 2), "");
      },
      [](const WorkloadParams& p, Rng&, DagSink& sink) {
        fft_stream(p.get_int("n", 8, 2), "", sink);
      });
  add("attention", "one transformer layer: multi-head attention + MLP",
      {{"seq", "6", "sequence length"},
       {"heads", "2", "attention heads"},
       {"ff", "4", "feed-forward hidden multiplier"}},
      [](const WorkloadParams& p, Rng&) {
        return transformer_dag(p.get_int("seq", 6), p.get_int("heads", 2),
                               p.get_int("ff", 4), "");
      });
  add("mapreduce", "MapReduce rounds with all-to-all shuffle",
      {{"maps", "6", "map tasks per round"},
       {"reducers", "4", "reduce tasks per round"},
       {"rounds", "2", "rounds"}},
      [](const WorkloadParams& p, Rng&) {
        return mapreduce_dag(p.get_int("maps", 6), p.get_int("reducers", 4),
                             p.get_int("rounds", 2), "");
      },
      [](const WorkloadParams& p, Rng&, DagSink& sink) {
        mapreduce_stream(p.get_int("maps", 6), p.get_int("reducers", 4),
                         p.get_int("rounds", 2), "", sink);
      });

  // --- Imported scenarios: real sparse matrices (Matrix Market). -------
  add("mtx-spmv", "SpMV over a Matrix Market (.mtx) sparsity pattern",
      {{"file", "", "path to the .mtx file (required)"}},
      [](const WorkloadParams& p, Rng&) {
        return spmv_dag_from_pattern(load_mtx_or_throw(p), "");
      });
  add("mtx-cg", "conjugate gradient over a Matrix Market pattern",
      {{"file", "", "path to the .mtx file (required)"},
       {"iters", "2", "CG iterations"}},
      [](const WorkloadParams& p, Rng&) {
        return cg_dag_from_pattern(load_mtx_or_throw(p),
                                   p.get_int("iters", 2), "");
      });
  add("mtx-exp", "iterated SpMV over a Matrix Market pattern",
      {{"file", "", "path to the .mtx file (required)"},
       {"iters", "2", "product iterations"}},
      [](const WorkloadParams& p, Rng&) {
        return iterated_spmv_dag_from_pattern(load_mtx_or_throw(p),
                                              p.get_int("iters", 2), "");
      });
}

}  // namespace mbsp
