#include "src/workload/trace.hpp"

#include <algorithm>
#include <cstring>

#include "src/graph/dag_io.hpp"
#include "src/model/machine_registry.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload_registry.hpp"

namespace mbsp {

namespace {

constexpr const char* kTraceFamilies[] = {
    "trace-churn", "trace-drift", "trace-dropout", "trace-grow",
    "trace-mixed",
};

struct TraceParams {
  std::string family;
  std::string canonical;
  std::string base = "random-layered";
  int events = 8;
  int batch = 3;
};

bool set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

bool parse_trace_spec(const std::string& spec, TraceParams* out,
                      std::string* error) {
  std::string parse_error;
  const auto parsed = WorkloadSpec::parse(spec, &parse_error);
  if (!parsed) return set_error(error, "bad trace spec: " + parse_error);
  const auto names = trace_family_names();
  if (std::find(names.begin(), names.end(), parsed->family) == names.end()) {
    std::string known;
    for (const std::string& name : names) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return set_error(error, "unknown trace family '" + parsed->family +
                                "' (known: " + known + ")");
  }
  out->family = parsed->family;
  for (const auto& [key, value] : parsed->params) {
    if (key == "base") {
      // Bare family name at its defaults: the spec grammar reserves ':'
      // and ',' so nested parameterized specs cannot be expressed here.
      if (value.find(':') != std::string::npos ||
          value.find(',') != std::string::npos ||
          !WorkloadRegistry::global().contains(value)) {
        return set_error(error, "trace base '" + value +
                                    "' is not a workload family name");
      }
      out->base = value;
    } else if (key == "events" || key == "batch") {
      try {
        const int parsed_value = std::stoi(value);
        if (parsed_value < 1) throw std::invalid_argument(value);
        (key == "events" ? out->events : out->batch) = parsed_value;
      } catch (const std::exception&) {
        return set_error(error, "trace parameter " + key + "=" + value +
                                    " is not a positive integer");
      }
    } else {
      return set_error(error, "unknown trace parameter '" + key +
                                  "' (known: base, batch, events)");
    }
  }
  // Canonical spelling: sorted keys, textual defaults dropped — the same
  // rule the workload/machine registries apply.
  out->canonical = out->family;
  std::string params;
  auto append = [&params](const std::string& key, const std::string& value) {
    params += params.empty() ? "" : ",";
    params += key + "=" + value;
  };
  if (out->base != "random-layered") append("base", out->base);
  if (out->batch != 3) append("batch", std::to_string(out->batch));
  if (out->events != 8) append("events", std::to_string(out->events));
  if (!params.empty()) out->canonical += ":" + params;
  return true;
}

double min_capacity(const Machine& m) {
  double cap = m.memory(0);
  for (int p = 1; p < m.num_processors; ++p) {
    cap = std::min(cap, m.memory(p));
  }
  return cap;
}

/// Appends an add_node (plus incoming edges) to `out`, clamped so the
/// new node's working set mu + sum(parent mu) fits the smallest
/// fast-memory capacity — growth can never push min_memory_r0 above what
/// the machine holds. `next_id` is the id the node will get.
void gen_grow_node(const MbspInstance& sim, NodeId next_id, Rng& rng,
                   InstanceDelta* out) {
  const double budget = min_capacity(sim.arch);
  auto mu_of = [&](NodeId v) {
    if (v < sim.dag.num_nodes()) return sim.dag.mu(v);
    // A parent created earlier in this same delta: find its add_node op.
    NodeId id = sim.dag.num_nodes();
    for (const InstanceDeltaOp& op : out->ops) {
      if (op.kind != InstanceDeltaOpKind::kAddNode) continue;
      if (id == v) return op.mu;
      ++id;
    }
    return 1.0;
  };
  std::vector<NodeId> parents;
  const int want = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < want; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.index(
        static_cast<std::size_t>(next_id)));
    if (std::find(parents.begin(), parents.end(), parent) == parents.end()) {
      parents.push_back(parent);
    }
  }
  double mu = static_cast<double>(rng.uniform_int(1, 5));
  double parent_mu = 0;
  for (NodeId parent : parents) parent_mu += mu_of(parent);
  while (!parents.empty() && mu + parent_mu > budget) {
    if (mu > 1) {
      mu = 1;
      continue;
    }
    parent_mu -= mu_of(parents.back());
    parents.pop_back();
  }
  if (mu > budget) mu = std::max(1.0, budget);
  const double omega = static_cast<double>(rng.uniform_int(1, 4));
  out->add_node(omega, mu);
  for (NodeId parent : parents) out->add_edge(parent, next_id);
}

/// Omega-only drift: mu is left untouched so min_memory_r0 never grows
/// (see the file comment's feasibility invariant).
void gen_drift_node(const MbspInstance& sim, Rng& rng, InstanceDelta* out) {
  const NodeId v = static_cast<NodeId>(
      rng.index(static_cast<std::size_t>(sim.dag.num_nodes())));
  const double omega = static_cast<double>(rng.uniform_int(1, 6));
  out->set_node_weight(v, omega, sim.dag.mu(v));
}

InstanceDelta gen_event(const TraceParams& params, const MbspInstance& sim,
                        Rng& rng) {
  InstanceDelta delta;
  NodeId next_id = sim.dag.num_nodes();
  if (params.family == "trace-grow") {
    for (int i = 0; i < params.batch; ++i) {
      gen_grow_node(sim, next_id++, rng, &delta);
    }
  } else if (params.family == "trace-drift") {
    for (int i = 0; i < params.batch; ++i) gen_drift_node(sim, rng, &delta);
  } else if (params.family == "trace-dropout") {
    if (sim.arch.num_processors > 1) {
      delta.drop_processor(static_cast<int>(
          rng.index(static_cast<std::size_t>(sim.arch.num_processors))));
    } else {
      gen_drift_node(sim, rng, &delta);  // nothing left to drop
    }
  } else if (params.family == "trace-churn") {
    for (int i = 0; i < params.batch; ++i) {
      if (rng.chance(0.5)) {
        gen_grow_node(sim, next_id++, rng, &delta);
      } else {
        gen_drift_node(sim, rng, &delta);
      }
    }
  } else {  // trace-mixed
    const double roll = rng.uniform01();
    if (roll < 0.2 && sim.arch.num_processors > 2) {
      delta.drop_processor(static_cast<int>(
          rng.index(static_cast<std::size_t>(sim.arch.num_processors))));
    } else if (roll < 0.4) {
      // Shrink every processor toward (but never past) the feasibility
      // floor; later growth clamps against the shrunk capacity.
      const double r0 = min_memory_r0(sim.dag);
      const double cap = std::max(
          r0, min_capacity(sim.arch) * (0.85 + 0.1 * rng.uniform01()));
      delta.shrink_memory(-1, cap);
    } else {
      for (int i = 0; i < params.batch; ++i) {
        if (rng.chance(0.5)) {
          gen_grow_node(sim, next_id++, rng, &delta);
        } else {
          gen_drift_node(sim, rng, &delta);
        }
      }
    }
  }
  return delta;
}

}  // namespace

std::vector<std::string> trace_family_names() {
  return {std::begin(kTraceFamilies), std::end(kTraceFamilies)};
}

bool is_trace_spec(const std::string& spec) {
  return spec.rfind("trace-", 0) == 0;
}

bool for_each_trace_event(const std::string& spec, std::uint64_t seed,
                          const std::string& machine_spec,
                          const std::function<bool(const TraceEvent&)>& fn,
                          MbspInstance* base_out, std::string* error) {
  TraceParams params;
  if (!parse_trace_spec(spec, &params, error)) return false;
  std::string sub_error;
  auto dag = WorkloadRegistry::global().make_dag(params.base, seed,
                                                &sub_error);
  if (!dag) return set_error(error, "trace base: " + sub_error);
  auto machine = MachineRegistry::global().make_machine(
      machine_spec, min_memory_r0(*dag), &sub_error);
  if (!machine) return set_error(error, "trace machine: " + sub_error);

  MbspInstance sim;
  sim.dag = std::move(*dag);
  sim.arch = std::move(*machine);
  if (base_out) *base_out = sim;

  // The RNG is seeded from the canonical spec (like DAG families), so
  // every spelling of the same trace replays identically.
  Rng rng(fnv1a_64(params.canonical.data(), params.canonical.size(), seed));
  double at = 0;
  for (int e = 0; e < params.events; ++e) {
    TraceEvent event;
    at += 10.0 * (0.5 + rng.uniform01());
    event.at_ms = at;
    event.delta = gen_event(params, sim, rng);
    if (!apply_instance_delta(sim, event.delta, nullptr, &sub_error)) {
      return set_error(error,
                       "trace generator produced an invalid delta (event " +
                           std::to_string(e) + "): " + sub_error);
    }
    if (!fn(event)) break;
  }
  return true;
}

std::optional<RepairTrace> make_trace(const std::string& spec,
                                      std::uint64_t seed,
                                      const std::string& machine_spec,
                                      std::string* error) {
  TraceParams params;
  if (!parse_trace_spec(spec, &params, error)) return std::nullopt;
  RepairTrace trace;
  trace.name = params.canonical;
  const bool ok = for_each_trace_event(
      spec, seed, machine_spec,
      [&trace](const TraceEvent& event) {
        trace.events.push_back(event);
        return true;
      },
      &trace.base, error);
  if (!ok) return std::nullopt;
  return trace;
}

std::uint64_t trace_canonical_hash(const RepairTrace& trace) {
  std::uint64_t h = dag_canonical_hash(trace.base.dag);
  h = fnv1a_64(trace.base.arch.name.data(), trace.base.arch.name.size(), h);
  for (const TraceEvent& event : trace.events) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(event.at_ms));
    std::memcpy(&bits, &event.at_ms, sizeof(bits));
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(bits >> (8 * i));
    }
    h = fnv1a_64(bytes, sizeof(bytes), h);
    h = instance_delta_hash(event.delta, h);
  }
  return h;
}

}  // namespace mbsp
