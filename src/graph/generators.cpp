#include "src/graph/generators.hpp"

#include <algorithm>
#include <cassert>

namespace mbsp {

namespace {
// Compute weights by operation kind, loosely following the granularity of
// the [36] dataset (coarse ops are an order of magnitude heavier).
constexpr double kMul = 1, kAdd = 1, kScalar = 1, kDist = 2, kSelect = 2;
constexpr double kCoarseMatvec = 8, kCoarseDot = 3, kCoarseAxpy = 2;
}  // namespace

std::vector<std::vector<int>> random_sparse_pattern(int n, int avg_nnz,
                                                    Rng& rng) {
  std::vector<std::vector<int>> pattern(n);
  for (int i = 0; i < n; ++i) {
    auto& row = pattern[i];
    row.push_back(i);  // diagonal keeps iterated products connected
    const int extras =
        std::max(0, avg_nnz - 1 + static_cast<int>(rng.uniform_int(-1, 1)));
    for (int k = 0; k < extras && static_cast<int>(row.size()) < n; ++k) {
      int col = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      while (std::find(row.begin(), row.end(), col) != row.end()) {
        col = (col + 1) % n;
      }
      row.push_back(col);
    }
    std::sort(row.begin(), row.end());
  }
  return pattern;
}

NodeId add_reduction_tree(ComputeDag& dag, std::vector<NodeId> inputs,
                          double omega_add, double mu_add) {
  assert(!inputs.empty());
  while (inputs.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((inputs.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
      const NodeId sum = dag.add_node(omega_add, mu_add);
      dag.add_edge(inputs[i], sum);
      dag.add_edge(inputs[i + 1], sum);
      next.push_back(sum);
    }
    if (inputs.size() % 2 == 1) next.push_back(inputs.back());
    inputs = std::move(next);
  }
  return inputs.front();
}

std::vector<NodeId> add_spmv(ComputeDag& dag,
                             const std::vector<std::vector<int>>& pattern,
                             const std::vector<NodeId>& x) {
  std::vector<NodeId> y;
  y.reserve(pattern.size());
  for (const auto& row : pattern) {
    std::vector<NodeId> terms;
    terms.reserve(row.size());
    for (int col : row) {
      const NodeId mul = dag.add_node(kMul, 1);
      dag.add_edge(x[col], mul);
      terms.push_back(mul);
    }
    y.push_back(add_reduction_tree(dag, std::move(terms), kAdd, 1));
  }
  return y;
}

ComputeDag spmv_dag_from_pattern(const std::vector<std::vector<int>>& pattern,
                                 std::string name) {
  return iterated_spmv_dag_from_pattern(pattern, 1, std::move(name));
}

ComputeDag spmv_dag(int n, int avg_nnz, Rng& rng, std::string name) {
  return spmv_dag_from_pattern(random_sparse_pattern(n, avg_nnz, rng),
                               std::move(name));
}

ComputeDag iterated_spmv_dag_from_pattern(
    const std::vector<std::vector<int>>& pattern, int iterations,
    std::string name) {
  ComputeDag dag(std::move(name));
  const int n = static_cast<int>(pattern.size());
  std::vector<NodeId> x;
  for (int i = 0; i < n; ++i) x.push_back(dag.add_node(0, 1));
  for (int k = 0; k < iterations; ++k) x = add_spmv(dag, pattern, x);
  return dag;
}

ComputeDag iterated_spmv_dag(int n, int iterations, int avg_nnz, Rng& rng,
                             std::string name) {
  return iterated_spmv_dag_from_pattern(
      random_sparse_pattern(n, avg_nnz, rng), iterations, std::move(name));
}

ComputeDag cg_dag_from_pattern(const std::vector<std::vector<int>>& pattern,
                               int iterations, std::string name) {
  ComputeDag dag(std::move(name));
  const int n = static_cast<int>(pattern.size());
  // Sources: the current solution x, residual r and direction p.
  std::vector<NodeId> x, r, p;
  for (int i = 0; i < n; ++i) x.push_back(dag.add_node(0, 1));
  for (int i = 0; i < n; ++i) r.push_back(dag.add_node(0, 1));
  for (int i = 0; i < n; ++i) p.push_back(dag.add_node(0, 1));
  // rho = r . r
  auto dot = [&](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
    std::vector<NodeId> terms;
    for (int i = 0; i < n; ++i) {
      const NodeId mul = dag.add_node(kMul, 1);
      dag.add_edge(a[i], mul);
      if (b[i] != a[i]) dag.add_edge(b[i], mul);
      terms.push_back(mul);
    }
    return add_reduction_tree(dag, std::move(terms), kAdd, 1);
  };
  NodeId rho = dot(r, r);
  for (int k = 0; k < iterations; ++k) {
    const auto q = add_spmv(dag, pattern, p);  // q = A p
    const NodeId pq = dot(p, q);
    const NodeId alpha = dag.add_node(kScalar, 1);  // alpha = rho / (p.q)
    dag.add_edge(rho, alpha);
    dag.add_edge(pq, alpha);
    std::vector<NodeId> x_next, r_next;
    for (int i = 0; i < n; ++i) {
      const NodeId xi = dag.add_node(kAdd, 1);  // x += alpha p
      dag.add_edge(x[i], xi);
      dag.add_edge(p[i], xi);
      dag.add_edge(alpha, xi);
      x_next.push_back(xi);
      const NodeId ri = dag.add_node(kAdd, 1);  // r -= alpha q
      dag.add_edge(r[i], ri);
      dag.add_edge(q[i], ri);
      dag.add_edge(alpha, ri);
      r_next.push_back(ri);
    }
    const NodeId rho_next = dot(r_next, r_next);
    const NodeId beta = dag.add_node(kScalar, 1);  // beta = rho' / rho
    dag.add_edge(rho_next, beta);
    dag.add_edge(rho, beta);
    std::vector<NodeId> p_next;
    for (int i = 0; i < n; ++i) {
      const NodeId pi = dag.add_node(kAdd, 1);  // p = r + beta p
      dag.add_edge(r_next[i], pi);
      dag.add_edge(p[i], pi);
      dag.add_edge(beta, pi);
      p_next.push_back(pi);
    }
    x = std::move(x_next);
    r = std::move(r_next);
    p = std::move(p_next);
    rho = rho_next;
  }
  return dag;
}

ComputeDag cg_dag(int n, int iterations, int avg_nnz, Rng& rng,
                  std::string name) {
  return cg_dag_from_pattern(random_sparse_pattern(n, avg_nnz, rng),
                             iterations, std::move(name));
}

ComputeDag knn_dag(int refs, int queries, int dims, Rng& rng,
                   std::string name) {
  (void)rng;  // structure is deterministic; kept for interface symmetry
  ComputeDag dag(std::move(name));
  std::vector<NodeId> ref_nodes, query_nodes;
  for (int i = 0; i < refs; ++i) ref_nodes.push_back(dag.add_node(0, 1));
  for (int q = 0; q < queries; ++q) query_nodes.push_back(dag.add_node(0, 1));
  for (int q = 0; q < queries; ++q) {
    std::vector<NodeId> dists;
    for (int i = 0; i < refs; ++i) {
      std::vector<NodeId> coords;
      for (int d = 0; d < dims; ++d) {
        const NodeId term = dag.add_node(kDist, 1);  // (x_d - y_d)^2
        dag.add_edge(ref_nodes[i], term);
        dag.add_edge(query_nodes[q], term);
        coords.push_back(term);
      }
      dists.push_back(add_reduction_tree(dag, std::move(coords), kAdd, 1));
    }
    const NodeId nearest = add_reduction_tree(dag, std::move(dists), kAdd, 1);
    const NodeId select = dag.add_node(kSelect, 1);
    dag.add_edge(nearest, select);
  }
  return dag;
}

ComputeDag bicgstab_dag(int iterations) {
  ComputeDag dag("bicgstab");
  const NodeId b = dag.add_node(0, 1);
  const NodeId x0 = dag.add_node(0, 1);
  NodeId r = dag.add_node(kCoarseAxpy, 1);  // r0 = b - A x0
  dag.add_edge(b, r);
  dag.add_edge(x0, r);
  const NodeId r_hat = dag.add_node(kScalar, 1);  // shadow residual
  dag.add_edge(r, r_hat);
  NodeId p = dag.add_node(kCoarseAxpy, 1);
  dag.add_edge(r, p);
  NodeId rho = dag.add_node(kCoarseDot, 1);  // rho = (r_hat, r)
  dag.add_edge(r_hat, rho);
  dag.add_edge(r, rho);
  NodeId x = x0;
  for (int k = 0; k < iterations; ++k) {
    const NodeId v = dag.add_node(kCoarseMatvec, 1);  // v = A p
    dag.add_edge(p, v);
    const NodeId rhv = dag.add_node(kCoarseDot, 1);  // (r_hat, v)
    dag.add_edge(r_hat, rhv);
    dag.add_edge(v, rhv);
    const NodeId alpha = dag.add_node(kScalar, 1);
    dag.add_edge(rho, alpha);
    dag.add_edge(rhv, alpha);
    const NodeId s = dag.add_node(kCoarseAxpy, 1);  // s = r - alpha v
    dag.add_edge(r, s);
    dag.add_edge(alpha, s);
    dag.add_edge(v, s);
    const NodeId t = dag.add_node(kCoarseMatvec, 1);  // t = A s
    dag.add_edge(s, t);
    const NodeId ts = dag.add_node(kCoarseDot, 1);
    dag.add_edge(t, ts);
    dag.add_edge(s, ts);
    const NodeId tt = dag.add_node(kCoarseDot, 1);
    dag.add_edge(t, tt);
    const NodeId omega = dag.add_node(kScalar, 1);  // omega = (t,s)/(t,t)
    dag.add_edge(ts, omega);
    dag.add_edge(tt, omega);
    const NodeId x_next = dag.add_node(kCoarseAxpy, 1);
    dag.add_edge(x, x_next);
    dag.add_edge(alpha, x_next);
    dag.add_edge(p, x_next);
    dag.add_edge(omega, x_next);
    dag.add_edge(s, x_next);
    const NodeId r_next = dag.add_node(kCoarseAxpy, 1);  // r = s - omega t
    dag.add_edge(s, r_next);
    dag.add_edge(omega, r_next);
    dag.add_edge(t, r_next);
    const NodeId rho_next = dag.add_node(kCoarseDot, 1);
    dag.add_edge(r_hat, rho_next);
    dag.add_edge(r_next, rho_next);
    const NodeId beta = dag.add_node(kScalar, 1);
    dag.add_edge(rho_next, beta);
    dag.add_edge(rho, beta);
    dag.add_edge(alpha, beta);
    dag.add_edge(omega, beta);
    const NodeId p_next = dag.add_node(kCoarseAxpy, 1);
    dag.add_edge(r_next, p_next);
    dag.add_edge(beta, p_next);
    dag.add_edge(p, p_next);
    dag.add_edge(omega, p_next);
    dag.add_edge(v, p_next);
    x = x_next;
    r = r_next;
    p = p_next;
    rho = rho_next;
  }
  return dag;
}

ComputeDag kmeans_dag(int blocks, int clusters, int iterations) {
  ComputeDag dag("k-means");
  std::vector<NodeId> data, centroids;
  for (int b = 0; b < blocks; ++b) data.push_back(dag.add_node(0, 1));
  for (int c = 0; c < clusters; ++c) centroids.push_back(dag.add_node(0, 1));
  for (int it = 0; it < iterations; ++it) {
    std::vector<NodeId> partials;
    for (int b = 0; b < blocks; ++b) {
      const NodeId assign = dag.add_node(6, 1);  // assign block to clusters
      dag.add_edge(data[b], assign);
      for (NodeId c : centroids) dag.add_edge(c, assign);
      const NodeId partial = dag.add_node(3, 1);  // per-block partial sums
      dag.add_edge(assign, partial);
      partials.push_back(partial);
    }
    std::vector<NodeId> next_centroids;
    for (int c = 0; c < clusters; ++c) {
      const NodeId update = dag.add_node(2, 1);
      for (NodeId partial : partials) dag.add_edge(partial, update);
      next_centroids.push_back(update);
    }
    centroids = std::move(next_centroids);
  }
  return dag;
}

ComputeDag pregel_dag(int blocks, int supersteps, Rng& rng, std::string name) {
  ComputeDag dag(std::move(name));
  // Random block adjacency, reused every superstep (it is the graph's
  // partition structure, which does not change between supersteps).
  std::vector<std::vector<int>> neighbours(blocks);
  for (int b = 0; b < blocks; ++b) {
    neighbours[b].push_back((b + 1) % blocks);
    const int extra = 1 + static_cast<int>(rng.index(2));
    for (int e = 0; e < extra; ++e) {
      const int nb = static_cast<int>(rng.index(blocks));
      if (nb != b) neighbours[b].push_back(nb);
    }
  }
  std::vector<NodeId> state;
  for (int b = 0; b < blocks; ++b) state.push_back(dag.add_node(0, 1));
  for (int s = 0; s < supersteps; ++s) {
    std::vector<NodeId> computed, gathered;
    for (int b = 0; b < blocks; ++b) {
      const NodeId vp = dag.add_node(4, 1);  // vertex program over block b
      dag.add_edge(state[b], vp);
      computed.push_back(vp);
    }
    for (int b = 0; b < blocks; ++b) {
      const NodeId gather = dag.add_node(2, 1);  // aggregate inbox of b
      dag.add_edge(computed[b], gather);
      for (int nb : neighbours[b]) dag.add_edge(computed[nb], gather);
      gathered.push_back(gather);
    }
    state = std::move(gathered);
  }
  return dag;
}

ComputeDag pagerank_dag(int blocks, int iterations, Rng& rng) {
  auto dag = pregel_dag(blocks, iterations, rng, "simple_pagerank");
  return dag;
}

ComputeDag snni_dag(int blocks, int layers, Rng& rng) {
  ComputeDag dag("snni_graphchall.");
  std::vector<NodeId> activation;
  for (int b = 0; b < blocks; ++b) activation.push_back(dag.add_node(0, 1));
  for (int layer = 0; layer < layers; ++layer) {
    std::vector<NodeId> next;
    for (int b = 0; b < blocks; ++b) {
      const NodeId matmul = dag.add_node(8, 1);  // block-sparse product
      dag.add_edge(activation[b], matmul);
      const int fan_in = 2 + static_cast<int>(rng.index(2));
      for (int e = 0; e < fan_in; ++e) {
        const int src = static_cast<int>(rng.index(blocks));
        if (src != b) dag.add_edge(activation[src], matmul);
      }
      const NodeId relu = dag.add_node(2, 1);  // bias + ReLU
      dag.add_edge(matmul, relu);
      next.push_back(relu);
    }
    activation = std::move(next);
  }
  return dag;
}

ComputeDag random_layered_dag(int nodes, int width, Rng& rng) {
  ComputeDag dag("random_layered");
  std::vector<std::vector<NodeId>> layers;
  int made = 0;
  while (made < nodes) {
    const int in_layer =
        std::min(nodes - made,
                 std::max(1, width + static_cast<int>(rng.uniform_int(-1, 1))));
    std::vector<NodeId> layer;
    for (int i = 0; i < in_layer; ++i) {
      const NodeId v =
          dag.add_node(static_cast<double>(rng.uniform_int(1, 4)), 1);
      if (!layers.empty()) {
        const int fan_in = 1 + static_cast<int>(rng.index(3));
        for (int e = 0; e < fan_in; ++e) {
          // Parent from one of the previous (up to two) layers.
          const auto& src_layer =
              layers[layers.size() - 1 -
                     (layers.size() > 1 ? rng.index(2) : 0)];
          dag.add_edge(src_layer[rng.index(src_layer.size())], v);
        }
      }
      layer.push_back(v);
    }
    made += in_layer;
    layers.push_back(std::move(layer));
  }
  return dag;
}

namespace {
/// Each instance draws from its own stream so that tuning one generator's
/// parameters cannot shift the structure of the others.
Rng instance_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(seed * 0x9E3779B97F4A7C15ull + (index + 1) * 0xD1B54A32D192ED03ull);
}
}  // namespace

std::vector<ComputeDag> tiny_dataset(std::uint64_t seed) {
  std::vector<ComputeDag> out;
  auto rng = [&](std::uint64_t i) { return instance_rng(seed, i); };
  Rng r2 = rng(2), r3 = rng(3), r4 = rng(4), r5 = rng(5), r6 = rng(6),
      r7 = rng(7), r8 = rng(8), r9 = rng(9), r10 = rng(10), r11 = rng(11),
      r12 = rng(12), r13 = rng(13), r14 = rng(14);
  out.push_back(bicgstab_dag(3));
  out.push_back(kmeans_dag(4, 4, 3));
  out.push_back(pregel_dag(5, 4, r2, "pregel"));
  out.push_back(spmv_dag(6, 5, r3, "spmv_N6"));
  out.push_back(spmv_dag(7, 5, r4, "spmv_N7"));
  out.push_back(spmv_dag(10, 3, r5, "spmv_N10"));
  out.push_back(cg_dag(2, 2, 2, r6, "CG_N2_K2"));
  out.push_back(cg_dag(3, 1, 2, r7, "CG_N3_K1"));
  out.push_back(cg_dag(4, 1, 2, r8, "CG_N4_K1"));
  out.push_back(iterated_spmv_dag(4, 2, 3, r9, "exp_N4_K2"));
  out.push_back(iterated_spmv_dag(5, 3, 3, r10, "exp_N5_K3"));
  out.push_back(iterated_spmv_dag(6, 4, 2, r11, "exp_N6_K4"));
  out.push_back(knn_dag(4, 3, 2, r12, "kNN_N4_K3"));
  out.push_back(knn_dag(5, 3, 2, r13, "kNN_N5_K3"));
  out.push_back(knn_dag(6, 4, 1, r14, "kNN_N6_K4"));
  Rng weights = instance_rng(seed, 99);
  for (auto& dag : out) assign_random_memory_weights(dag, weights);
  return out;
}

std::vector<ComputeDag> small_dataset(std::uint64_t seed) {
  std::vector<ComputeDag> out;
  auto rng = [&](std::uint64_t i) { return instance_rng(seed, 100 + i); };
  Rng r0 = rng(0), r1 = rng(1), r2 = rng(2), r3 = rng(3), r4 = rng(4),
      r5 = rng(5), r6 = rng(6), r7 = rng(7), r8 = rng(8), r9 = rng(9);
  out.push_back(pagerank_dag(16, 8, r0));
  out.push_back(snni_dag(16, 9, r1));
  out.push_back(spmv_dag(25, 6, r2, "spmv_N25"));
  out.push_back(spmv_dag(35, 6, r3, "spmv_N35"));
  out.push_back(cg_dag(5, 4, 3, r4, "CG_N5_K4"));
  out.push_back(cg_dag(7, 2, 6, r5, "CG_N7_K2"));
  out.push_back(iterated_spmv_dag(10, 8, 3, r6, "exp_N10_K8"));
  out.push_back(iterated_spmv_dag(15, 4, 3, r7, "exp_N15_K4"));
  out.push_back(knn_dag(10, 8, 2, r8, "kNN_N10_K8"));
  out.push_back(knn_dag(15, 4, 3, r9, "kNN_N15_K4"));
  Rng weights = instance_rng(seed, 199);
  for (auto& dag : out) assign_random_memory_weights(dag, weights);
  return out;
}

}  // namespace mbsp
