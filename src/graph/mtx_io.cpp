#include "src/graph/mtx_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace mbsp {

namespace {

std::optional<std::vector<std::vector<int>>> fail(
    std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

std::string lower(std::string s) {
  for (char& ch : s) {
    if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
  }
  return s;
}

}  // namespace

std::optional<std::vector<std::vector<int>>> pattern_from_mtx(
    const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line)) return fail(error, "empty input");
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%matrixmarket") {
    return fail(error, "missing '%%MatrixMarket' header");
  }
  if (object != "matrix" || format != "coordinate") {
    return fail(error, "only 'matrix coordinate' files are supported (got '" +
                           object + " " + format + "')");
  }
  if (field != "real" && field != "integer" && field != "pattern" &&
      field != "complex") {
    return fail(error, "unsupported field '" + field + "'");
  }
  const bool mirror = symmetry == "symmetric" || symmetry == "skew-symmetric" ||
                      symmetry == "hermitian";
  if (!mirror && symmetry != "general") {
    return fail(error, "unsupported symmetry '" + symmetry + "'");
  }

  // Size line (first non-comment, non-blank line): rows cols nnz.
  long long rows = -1, cols = -1, nnz = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    if (!(fields >> rows >> cols >> nnz) || rows < 0 || cols < 0 || nnz < 0) {
      return fail(error, "line " + std::to_string(line_no) +
                             ": expected '<rows> <cols> <nnz>'");
    }
    break;
  }
  if (rows < 0) return fail(error, "missing size line");
  if (rows != cols) {
    return fail(error, "only square matrices are supported (" +
                           std::to_string(rows) + " x " +
                           std::to_string(cols) + ")");
  }

  std::vector<std::vector<int>> pattern(static_cast<std::size_t>(rows));
  long long seen = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (seen == nnz) {
      return fail(error, "line " + std::to_string(line_no) +
                             ": more entries than the declared nnz");
    }
    std::istringstream fields(line);
    long long i = 0, j = 0;
    if (!(fields >> i >> j)) {  // trailing value(s) ignored
      return fail(error,
                  "line " + std::to_string(line_no) + ": bad entry line");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      return fail(error, "line " + std::to_string(line_no) +
                             ": index out of range (1-based)");
    }
    pattern[static_cast<std::size_t>(i - 1)].push_back(
        static_cast<int>(j - 1));
    if (mirror && i != j) {
      pattern[static_cast<std::size_t>(j - 1)].push_back(
          static_cast<int>(i - 1));
    }
    ++seen;
  }
  if (seen != nnz) {
    return fail(error, "declared " + std::to_string(nnz) +
                           " entries but found " + std::to_string(seen));
  }
  for (std::size_t r = 0; r < pattern.size(); ++r) {
    auto& row = pattern[r];
    if (row.empty()) row.push_back(static_cast<int>(r));
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return pattern;
}

std::optional<std::vector<std::vector<int>>> read_mtx_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return pattern_from_mtx(buffer.str(), error);
}

}  // namespace mbsp
