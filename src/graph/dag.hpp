#pragma once
// Computational DAG with per-node compute weight (omega) and memory weight
// (mu), as defined in Section 3 of the paper. Nodes represent operations;
// an edge (u, v) means v consumes the output of u.

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace mbsp {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

/// Directed acyclic computational graph. Nodes are dense 0..n-1 ids.
/// Acyclicity is the caller's responsibility at edge insertion; it is
/// verified by `is_acyclic()` (tests do this for every generator).
class ComputeDag {
 public:
  ComputeDag() = default;
  explicit ComputeDag(std::string name) : name_(std::move(name)) {}

  /// Adds a node with compute weight `omega` and memory weight `mu`.
  NodeId add_node(double omega = 1.0, double mu = 1.0);

  /// Adds edge u -> v. Duplicate edges are ignored (idempotent).
  void add_edge(NodeId u, NodeId v);

  NodeId num_nodes() const { return static_cast<NodeId>(succ_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& children(NodeId v) const { return succ_[v]; }
  const std::vector<NodeId>& parents(NodeId v) const { return pred_[v]; }

  double omega(NodeId v) const { return omega_[v]; }
  double mu(NodeId v) const { return mu_[v]; }
  void set_omega(NodeId v, double w) { omega_[v] = w; }
  void set_mu(NodeId v, double m) { mu_[v] = m; }

  bool is_source(NodeId v) const { return pred_[v].empty(); }
  bool is_sink(NodeId v) const { return succ_[v].empty(); }

  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  double total_omega() const;
  double total_mu() const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Graphviz dot representation (node label: id, omega, mu).
  std::string to_dot() const;

 private:
  std::string name_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::vector<double> omega_;
  std::vector<double> mu_;
  std::size_t num_edges_ = 0;
};

/// Overwrites every node's memory weight with a uniform draw from
/// {lo, ..., hi}; this is how the paper adds mu to the [36] dataset.
void assign_random_memory_weights(ComputeDag& dag, Rng& rng, int lo = 1,
                                  int hi = 5);

}  // namespace mbsp
