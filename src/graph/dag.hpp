#pragma once
// Computational DAG with per-node compute weight (omega) and memory weight
// (mu), as defined in Section 3 of the paper. Nodes represent operations;
// an edge (u, v) means v consumes the output of u.
//
// Adjacency is kept twice: per-node insertion vectors (the build-time
// representation mutated by add_node / add_edge) and a flattened CSR copy
// (offset + value arrays) that `parents()` / `children()` serve as
// contiguous spans. The CSR arrays are the read path of every scheduler
// hot loop — one indirection and a linear scan instead of a
// vector-of-vectors pointer chase — and are rebuilt lazily (thread-safe,
// double-checked) after the last mutation. Neighbour order inside a span
// is exactly edge-insertion order, matching the historical vector API, so
// algorithms that iterate adjacency stay deterministic.
//
// A DAG can also be *CSR-native*: built directly from flat offset/value
// arrays via from_csr() (the streaming binary reader uses this — see
// docs/SCALE.md) with no per-node vectors at all. Read access is
// identical; the first mutation thaw()s the build vectors back into
// existence, so the class stays fully mutable either way.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace mbsp {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

/// Directed acyclic computational graph. Nodes are dense 0..n-1 ids.
/// Acyclicity is the caller's responsibility at edge insertion; it is
/// verified by `is_acyclic()` (tests do this for every generator).
class ComputeDag {
 public:
  /// Contiguous, immutable view into the CSR adjacency arrays.
  class AdjSpan {
   public:
    using value_type = NodeId;
    using const_iterator = const NodeId*;

    AdjSpan() = default;
    AdjSpan(const NodeId* data, std::size_t size) : data_(data), size_(size) {}

    const NodeId* begin() const { return data_; }
    const NodeId* end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    NodeId operator[](std::size_t i) const { return data_[i]; }
    NodeId front() const { return data_[0]; }
    NodeId back() const { return data_[size_ - 1]; }

    friend bool operator==(const AdjSpan& a, const AdjSpan& b) {
      if (a.size_ != b.size_) return false;
      for (std::size_t i = 0; i < a.size_; ++i) {
        if (a.data_[i] != b.data_[i]) return false;
      }
      return true;
    }

   private:
    const NodeId* data_ = nullptr;
    std::size_t size_ = 0;
  };

  ComputeDag() = default;
  explicit ComputeDag(std::string name) : name_(std::move(name)) {}

  ComputeDag(const ComputeDag& other);
  ComputeDag& operator=(const ComputeDag& other);
  ComputeDag(ComputeDag&& other) noexcept;
  ComputeDag& operator=(ComputeDag&& other) noexcept;

  /// Builds a CSR-native DAG directly from flat successor arrays: no
  /// per-node std::vectors are ever materialized. `succ_off` has n+1
  /// entries; `succ[succ_off[u]..succ_off[u+1])` are u's children in
  /// stored order. The predecessor CSR is derived in O(n+m). The caller
  /// guarantees acyclicity and id bounds (the streaming reader checks
  /// both before calling).
  static ComputeDag from_csr(std::string name, std::vector<double> omega,
                             std::vector<double> mu,
                             std::vector<std::size_t> succ_off,
                             std::vector<NodeId> succ);

  /// Adds a node with compute weight `omega` and memory weight `mu`.
  NodeId add_node(double omega = 1.0, double mu = 1.0);

  /// Adds edge u -> v. Duplicate edges are ignored (idempotent).
  void add_edge(NodeId u, NodeId v);

  /// Removes edge u -> v if present; returns whether an edge was removed.
  /// The exact inverse of a non-duplicate add_edge: the remaining
  /// neighbour orders are unchanged, so apply/undo of an InstanceDelta
  /// (src/holistic/repair.hpp) restores the DAG bitwise.
  bool remove_edge(NodeId u, NodeId v);

  /// Removes the highest-id node. The node must be isolated (no incident
  /// edges); the InstanceDelta undo path removes a new node's edges first,
  /// in reverse insertion order.
  void remove_last_node();

  NodeId num_nodes() const { return static_cast<NodeId>(omega_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  /// CSR span of v's successors / predecessors, in edge-insertion order.
  /// Invalidated by the next add_node / add_edge (don't hold spans across
  /// mutations); safe to call concurrently from const contexts.
  AdjSpan children(NodeId v) const {
    ensure_csr();
    return {csr_succ_.data() + csr_succ_off_[v],
            static_cast<std::size_t>(csr_succ_off_[v + 1] - csr_succ_off_[v])};
  }
  AdjSpan parents(NodeId v) const {
    ensure_csr();
    return {csr_pred_.data() + csr_pred_off_[v],
            static_cast<std::size_t>(csr_pred_off_[v + 1] - csr_pred_off_[v])};
  }

  std::size_t out_degree(NodeId v) const {
    return csr_native_ ? csr_succ_off_[v + 1] - csr_succ_off_[v]
                       : succ_[v].size();
  }
  std::size_t in_degree(NodeId v) const {
    return csr_native_ ? csr_pred_off_[v + 1] - csr_pred_off_[v]
                       : pred_[v].size();
  }

  double omega(NodeId v) const { return omega_[v]; }
  double mu(NodeId v) const { return mu_[v]; }
  void set_omega(NodeId v, double w) { omega_[v] = w; }
  void set_mu(NodeId v, double m) { mu_[v] = m; }

  bool is_source(NodeId v) const { return in_degree(v) == 0; }
  bool is_sink(NodeId v) const { return out_degree(v) == 0; }

  /// True when adjacency lives only in the CSR arrays (built by
  /// from_csr and not yet thawed by a mutation).
  bool csr_native() const { return csr_native_; }

  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  double total_omega() const;
  double total_mu() const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Graphviz dot representation (node label: id, omega, mu).
  std::string to_dot() const;

 private:
  void ensure_csr() const {
    if (!csr_valid_.load(std::memory_order_acquire)) build_csr();
  }
  void build_csr() const;
  /// Materializes succ_/pred_ from the CSR arrays so a CSR-native DAG
  /// can be mutated; clears csr_native_.
  void thaw();

  std::string name_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::vector<double> omega_;
  std::vector<double> mu_;
  std::size_t num_edges_ = 0;
  bool csr_native_ = false;

  // Lazily flattened CSR mirror of succ_ / pred_ (offsets have n+1
  // entries). Mutable: building is a cache fill behind a const API, made
  // thread-safe by the double-checked csr_valid_ flag + mutex.
  mutable std::vector<std::size_t> csr_succ_off_;
  mutable std::vector<std::size_t> csr_pred_off_;
  mutable std::vector<NodeId> csr_succ_;
  mutable std::vector<NodeId> csr_pred_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::mutex csr_mutex_;
};

/// Overwrites every node's memory weight with a uniform draw from
/// {lo, ..., hi}; this is how the paper adds mu to the [36] dataset.
void assign_random_memory_weights(ComputeDag& dag, Rng& rng, int lo = 1,
                                  int hi = 5);

}  // namespace mbsp
