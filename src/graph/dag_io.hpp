#pragma once
// Serialization for computational DAGs, so instances can be exported,
// archived next to experiment results, and reloaded exactly. Two formats:
//
// Plain text ("mbsp-dag v1"), whitespace-separated, one record per line:
//
//   mbsp-dag v1
//   name <string without newline>
//   nodes <n>
//   <omega> <mu>          # one line per node, id = line index
//   edges <m>
//   <u> <v>               # one line per edge
//
// Weights are printed with enough digits to round-trip doubles. Parse
// errors name the offending line number.
//
// Binary ("mbsp-dag v2"), little-endian regardless of host, for fast,
// verifiable corpus load:
//
//   "MBSPDAG2"            8-byte magic
//   u32 name_len, name bytes
//   u32 n, then n x (f64 omega, f64 mu)
//   u64 m, then m x (u32 u, u32 v)    # u-major, stored children order
//   u64 canonical hash               # footer, verified on load
//
// Both formats preserve child order exactly, so text -> binary -> text is
// bitwise identity. `dag_canonical_hash` is an FNV-1a digest over a
// canonicalized stream (edges sorted per node), identical however the DAG
// was built or loaded.
//
// ## Out-of-core paths (docs/SCALE.md)
//
// DagStreamWriter emits the v2 binary incrementally — counts up front,
// then one add_node / add_edge call per record — holding only the current
// node's child list in memory, with the canonical hash folded in on the
// fly. Workload generators stream 10^6..10^7-node instances through it in
// O(1) extra memory. The binary read path (read_dag_file and
// dag_from_binary) is the mirror image: it decodes chunk-wise straight
// into the CSR arrays of a CSR-native ComputeDag (see ComputeDag::from_csr)
// without ever materializing per-node std::vectors, verifying the hash
// footer as it goes. Binary parse errors report the byte offset, the
// section being decoded, and the file size.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/dag.hpp"

namespace mbsp {

/// 64-bit FNV-1a over a byte range; `seed` chains multiple ranges.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
std::uint64_t fnv1a_64(const void* data, std::size_t size,
                       std::uint64_t seed = kFnvOffset);

/// Canonical instance hash: digests name, weights and the per-node sorted
/// edge lists, so structurally identical DAGs hash identically no matter
/// the edge insertion order or the format they were loaded from.
std::uint64_t dag_canonical_hash(const ComputeDag& dag);

/// The fixed 16-digit lower-case hex rendering of a canonical hash, used
/// by every harness (corpus CLI, batch tables, benches) so hashes join
/// across CSV artifacts.
std::string dag_hash_hex(std::uint64_t hash);

std::string dag_to_text(const ComputeDag& dag);

/// Parses the v1 text format; returns std::nullopt (and fills *error,
/// naming the offending line) on malformed input, bad ids, or a cycle.
std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error = nullptr);

/// The v2 binary encoding (with the canonical hash as integrity footer).
std::string dag_to_binary(const ComputeDag& dag);

/// Parses the v2 binary format; verifies the hash footer.
std::optional<ComputeDag> dag_from_binary(const std::string& bytes,
                                          std::string* error = nullptr);

/// True when `bytes` starts with the v2 magic.
bool is_binary_dag(const std::string& bytes);

/// Auto-detecting parse: v2 when the magic matches, v1 text otherwise.
std::optional<ComputeDag> dag_from_bytes(const std::string& bytes,
                                         std::string* error = nullptr);

bool write_dag_file(const ComputeDag& dag, const std::string& path,
                    bool binary = false);

/// Reads either format (auto-detected by magic). Binary files are decoded
/// chunk-wise straight into a CSR-native ComputeDag — peak memory is the
/// CSR arrays plus an O(max-degree) scratch buffer, never the whole file
/// plus per-node vectors.
std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error = nullptr);

/// Streaming consumer of a DAG declaration: counts first, then one call
/// per record. DagStreamWriter is the file-backed implementation; the
/// workload registry layers mu-randomization on top of it (see
/// make_dag_stream). Call order contract: begin, num_nodes x add_node,
/// begin_edges, num_edges x add_edge with nondecreasing u.
class DagSink {
 public:
  virtual ~DagSink() = default;
  virtual void begin(const std::string& name, std::uint64_t num_nodes) = 0;
  virtual void add_node(double omega, double mu) = 0;
  virtual void begin_edges(std::uint64_t num_edges) = 0;
  virtual void add_edge(NodeId u, NodeId v) = 0;
};

/// Incremental v2 binary writer: O(1) memory beyond the current node's
/// child list, canonical FNV-1a hash computed on the fly (bitwise equal to
/// dag_canonical_hash of the equivalent in-memory DAG). Errors (I/O
/// failure, protocol misuse, out-of-range ids, duplicate edges,
/// non-u-major edge order) latch: subsequent calls are no-ops and finish()
/// returns false with the first error message.
class DagStreamWriter final : public DagSink {
 public:
  explicit DagStreamWriter(const std::string& path);
  ~DagStreamWriter() override;
  DagStreamWriter(const DagStreamWriter&) = delete;
  DagStreamWriter& operator=(const DagStreamWriter&) = delete;

  void begin(const std::string& name, std::uint64_t num_nodes) override;
  void add_node(double omega, double mu) override;
  void begin_edges(std::uint64_t num_edges) override;
  void add_edge(NodeId u, NodeId v) override;

  /// Flushes the final node's edges, writes the hash footer and closes the
  /// file. Returns false (with error() set) on any latched error or if the
  /// declared node/edge counts were not met. On success *hash_out (when
  /// non-null) receives the canonical hash.
  bool finish(std::uint64_t* hash_out = nullptr);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void set_error(const std::string& message);
  void put_bytes(const void* data, std::size_t size);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double d);
  void hash_bytes(const void* data, std::size_t size);
  void hash_u32(std::uint32_t v);
  void hash_u64(std::uint64_t v);
  void hash_f64(double d);
  bool flush_pending_children();

  std::FILE* file_ = nullptr;
  std::vector<char> io_buffer_;
  std::string error_;
  enum class State { kCreated, kNodes, kEdges, kFinished } state_ =
      State::kCreated;
  std::uint64_t declared_nodes_ = 0;
  std::uint64_t declared_edges_ = 0;
  std::uint64_t emitted_nodes_ = 0;
  std::uint64_t emitted_edges_ = 0;
  NodeId current_u_ = kInvalidNode;
  std::vector<NodeId> pending_children_;  // current u, stored order
  std::vector<NodeId> sorted_children_;   // reused sort scratch for hashing
  std::uint64_t hash_;
};

}  // namespace mbsp
