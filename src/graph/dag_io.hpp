#pragma once
// Serialization for computational DAGs, so instances can be exported,
// archived next to experiment results, and reloaded exactly. Two formats:
//
// Plain text ("mbsp-dag v1"), whitespace-separated, one record per line:
//
//   mbsp-dag v1
//   name <string without newline>
//   nodes <n>
//   <omega> <mu>          # one line per node, id = line index
//   edges <m>
//   <u> <v>               # one line per edge
//
// Weights are printed with enough digits to round-trip doubles. Parse
// errors name the offending line number.
//
// Binary ("mbsp-dag v2"), little-endian regardless of host, for fast,
// verifiable corpus load:
//
//   "MBSPDAG2"            8-byte magic
//   u32 name_len, name bytes
//   u32 n, then n x (f64 omega, f64 mu)
//   u64 m, then m x (u32 u, u32 v)    # u-major, stored children order
//   u64 canonical hash               # footer, verified on load
//
// Both formats preserve child order exactly, so text -> binary -> text is
// bitwise identity. `dag_canonical_hash` is an FNV-1a digest over a
// canonicalized stream (edges sorted per node), identical however the DAG
// was built or loaded.

#include <cstdint>
#include <optional>
#include <string>

#include "src/graph/dag.hpp"

namespace mbsp {

/// 64-bit FNV-1a over a byte range; `seed` chains multiple ranges.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
std::uint64_t fnv1a_64(const void* data, std::size_t size,
                       std::uint64_t seed = kFnvOffset);

/// Canonical instance hash: digests name, weights and the per-node sorted
/// edge lists, so structurally identical DAGs hash identically no matter
/// the edge insertion order or the format they were loaded from.
std::uint64_t dag_canonical_hash(const ComputeDag& dag);

/// The fixed 16-digit lower-case hex rendering of a canonical hash, used
/// by every harness (corpus CLI, batch tables, benches) so hashes join
/// across CSV artifacts.
std::string dag_hash_hex(std::uint64_t hash);

std::string dag_to_text(const ComputeDag& dag);

/// Parses the v1 text format; returns std::nullopt (and fills *error,
/// naming the offending line) on malformed input, bad ids, or a cycle.
std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error = nullptr);

/// The v2 binary encoding (with the canonical hash as integrity footer).
std::string dag_to_binary(const ComputeDag& dag);

/// Parses the v2 binary format; verifies the hash footer.
std::optional<ComputeDag> dag_from_binary(const std::string& bytes,
                                          std::string* error = nullptr);

/// True when `bytes` starts with the v2 magic.
bool is_binary_dag(const std::string& bytes);

/// Auto-detecting parse: v2 when the magic matches, v1 text otherwise.
std::optional<ComputeDag> dag_from_bytes(const std::string& bytes,
                                         std::string* error = nullptr);

bool write_dag_file(const ComputeDag& dag, const std::string& path,
                    bool binary = false);

/// Reads either format (auto-detected by magic).
std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace mbsp
