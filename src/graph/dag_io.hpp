#pragma once
// Plain-text serialization for computational DAGs, so instances can be
// exported, archived next to experiment results, and reloaded exactly.
//
// Format ("mbsp-dag v1"), whitespace-separated:
//
//   mbsp-dag v1
//   name <string without newline>
//   nodes <n>
//   <omega> <mu>          # one line per node, id = line index
//   edges <m>
//   <u> <v>               # one line per edge
//
// Weights are printed with enough digits to round-trip doubles.

#include <optional>
#include <string>

#include "src/graph/dag.hpp"

namespace mbsp {

std::string dag_to_text(const ComputeDag& dag);

/// Parses the v1 format; returns std::nullopt (and fills *error if given)
/// on malformed input, bad ids, or a cyclic edge set.
std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error = nullptr);

bool write_dag_file(const ComputeDag& dag, const std::string& path);
std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace mbsp
