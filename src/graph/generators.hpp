#pragma once
// Instance generators reproducing the structure of the computational-DAG
// benchmark of Papp et al. [36] used in the paper's experiments:
//
//  * fine-grained DAGs: SpMV (y = Ax over a random sparse matrix), iterated
//    SpMV ("exp", x_{k+1} = A x_k), conjugate gradient (CG), and k-NN;
//  * coarse-grained task graphs: BiCGSTAB, k-means, Pregel (tiny dataset),
//    simple_pagerank and snni_graphchallenge (small dataset).
//
// The original dataset files are not redistributable here, so these
// generators rebuild each family at the same node counts (tiny: 40-80,
// small: 264-464). Compute weights reflect operation kinds; memory weights
// are assigned afterwards as uniform {1..5} draws, as in the paper.

#include <cstdint>
#include <vector>

#include "src/graph/dag.hpp"

namespace mbsp {

/// Random sparse pattern: `n` rows, each with ~avg_nnz distinct columns
/// in [0, n) including the diagonal (so iterated products stay connected).
std::vector<std::vector<int>> random_sparse_pattern(int n, int avg_nnz,
                                                    Rng& rng);

/// Binary reduction tree over `inputs`; returns the root node. A single
/// input is returned unchanged. New nodes get weight (omega_add, mu_add).
NodeId add_reduction_tree(ComputeDag& dag, std::vector<NodeId> inputs,
                          double omega_add, double mu_add);

/// Appends one SpMV y = A x to `dag`: one multiply node per nonzero plus a
/// reduction tree per row. Returns the n row results.
std::vector<NodeId> add_spmv(ComputeDag& dag,
                             const std::vector<std::vector<int>>& pattern,
                             const std::vector<NodeId>& x);

/// Fine-grained SpMV DAG: n sources (the input vector), one SpMV.
ComputeDag spmv_dag(int n, int avg_nnz, Rng& rng, std::string name);

/// SpMV over an explicit (e.g. Matrix Market-loaded) square pattern.
ComputeDag spmv_dag_from_pattern(
    const std::vector<std::vector<int>>& pattern, std::string name);

/// Iterated SpMV ("exp" instances): `iterations` successive products with
/// the same matrix pattern.
ComputeDag iterated_spmv_dag(int n, int iterations, int avg_nnz, Rng& rng,
                             std::string name);

ComputeDag iterated_spmv_dag_from_pattern(
    const std::vector<std::vector<int>>& pattern, int iterations,
    std::string name);

/// Fine-grained conjugate gradient: per iteration one SpMV, two dot
/// products (reduction trees), two axpys and the direction update.
ComputeDag cg_dag(int n, int iterations, int avg_nnz, Rng& rng,
                  std::string name);

ComputeDag cg_dag_from_pattern(const std::vector<std::vector<int>>& pattern,
                               int iterations, std::string name);

/// Fine-grained k-nearest-neighbours: per (query, reference) pair `dims`
/// coordinate terms + a distance reduction, then a per-query min-reduction
/// and selection node.
ComputeDag knn_dag(int refs, int queries, int dims, Rng& rng,
                   std::string name);

/// Coarse-grained BiCGSTAB task graph (`iterations` solver iterations).
ComputeDag bicgstab_dag(int iterations = 3);

/// Coarse-grained k-means over `blocks` data blocks, `clusters` centroids.
ComputeDag kmeans_dag(int blocks = 4, int clusters = 4, int iterations = 3);

/// Coarse-grained Pregel-style vertex-block computation with random block
/// connectivity re-used across supersteps.
ComputeDag pregel_dag(int blocks, int supersteps, Rng& rng,
                      std::string name = "pregel");

/// Coarse-grained block PageRank (Pregel-like, denser connectivity).
ComputeDag pagerank_dag(int blocks, int iterations, Rng& rng);

/// Coarse-grained sparse-NN inference (GraphChallenge SNNI style): layered
/// block-sparse matrix products with bias+ReLU nodes.
ComputeDag snni_dag(int blocks, int layers, Rng& rng);

/// Random layered DAG for property tests: `nodes` nodes in layers of
/// ~`width`, each non-first-layer node drawing 1..3 parents from the
/// previous few layers. Always acyclic.
ComputeDag random_layered_dag(int nodes, int width, Rng& rng);

/// The 15 tiny instances (40-80 nodes) in the paper's Table 1 order:
/// bicgstab, k-means, pregel, spmv_N6/7/10, CG_N2_K2/N3_K1/N4_K1,
/// exp_N4_K2/N5_K3/N6_K4, kNN_N4_K3/N5_K3/N6_K4. Memory weights already
/// randomized from `seed`.
std::vector<ComputeDag> tiny_dataset(std::uint64_t seed);

/// The 10 small instances (264-464 nodes) of Table 2: simple_pagerank,
/// snni_graphchallenge, spmv_N25/N35, CG_N5_K4/N7_K2, exp_N10_K8/N15_K4,
/// kNN_N10_K8/N15_K4.
std::vector<ComputeDag> small_dataset(std::uint64_t seed);

}  // namespace mbsp
