#pragma once
// Executable versions of the paper's proof constructions. Each gadget
// returns the DAG plus the landmark node ids needed by tests/benches to
// build the schedules the proofs describe.

#include <vector>

#include "src/graph/dag.hpp"

namespace mbsp {

/// Theorem 4.1 construction ("zipper"): two groups H1, H2 of `d` source
/// nodes and two chains v_1..v_m, u_1..u_m. For odd i, u_i has edges from
/// all of H1 and v_i from all of H2; for even i the roles swap. Chain edges
/// v_i -> v_{i+1}, u_i -> u_{i+1}. Uniform weights omega = mu = 1.
/// Intended parameters: P = 2, r = d + 2, L = 0.
struct ZipperGadget {
  ComputeDag dag;
  std::vector<NodeId> h1, h2;  // source groups
  std::vector<NodeId> v, u;    // the two chains, index 0 is v_1 / u_1
  int d = 0, m = 0;
};
ZipperGadget zipper_gadget(int d, int m);

/// Lemma 5.1 construction (weak NP-hardness of memory management, P = 1):
/// sources v_1..v_m with memory weights a_1..a_m, plus v' with weight
/// alpha/2 (alpha = sum a_i); w1 and w3 consume all v_i, w2 consumes v'.
/// Cache r = alpha. The optimal I/O cost is 2*alpha iff a subset of the
/// a_i sums to exactly alpha/2.
struct PartitionGadget {
  ComputeDag dag;
  std::vector<NodeId> items;  // v_1..v_m
  NodeId v_prime = kInvalidNode;
  NodeId w1 = kInvalidNode, w2 = kInvalidNode, w3 = kInvalidNode;
  double alpha = 0;
};
PartitionGadget lemma51_gadget(const std::vector<double>& weights);

/// Lemma 5.3 construction: P/2 processor pairs; pair i has a chain of
/// P/2 stages of node pairs (u_{i,j}, v_{i,j}); stage j == i has compute
/// weight Z, all other stages weight 1. r effectively unlimited, g ~ 0.
/// Async-optimal scheduling is a P/2 - eps factor worse synchronously.
struct PairChainsGadget {
  ComputeDag dag;
  NodeId source = kInvalidNode;
  // u[i][j] / v[i][j]: pair i in [P/2], stage j in [P/2].
  std::vector<std::vector<NodeId>> u, v;
  int pairs = 0;
  double heavy = 0;
};
PairChainsGadget lemma53_gadget(int num_processors, double heavy_weight);

/// Lemma 5.4 construction (sync optimum is 4/3 - eps worse async):
/// u1,u2 (omega Z-1) -> u3,u4 (omega 2Z); w1 (omega 2Z) -> w2,w3,w4
/// (omega Z-1); isolated w (omega Z-1); artificial source s. P = 5.
struct SyncGapGadget {
  ComputeDag dag;
  NodeId s, u1, u2, u3, u4, w1, w2, w3, w4, w;
  double z = 0;
};
SyncGapGadget lemma54_gadget(double z);

/// Lemma 6.1 construction: chains (u_1..u_d) and (u'_1..u'_d) feeding an
/// alternating chain v_0..v_m, plus a source w with an edge to every other
/// node; r = 4. With g >= d, recomputing a u-chain beats one load, but
/// needs d-1 extra (unmergeable) steps.
struct RecomputeGadget {
  ComputeDag dag;
  NodeId w = kInvalidNode;
  std::vector<NodeId> u, u_prime, v;  // v[0] is v_0
  int d = 0, m = 0;
};
RecomputeGadget lemma61_gadget(int d, int m);

}  // namespace mbsp
