#include "src/graph/dag.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mbsp {

ComputeDag::ComputeDag(const ComputeDag& other)
    : name_(other.name_),
      succ_(other.succ_),
      pred_(other.pred_),
      omega_(other.omega_),
      mu_(other.mu_),
      num_edges_(other.num_edges_),
      csr_native_(other.csr_native_) {
  // A CSR-native source has no build vectors: the CSR arrays ARE the
  // adjacency, so the copy must carry them (a build-path copy rebuilds
  // its CSR lazily instead, keeping the historical cheap-copy behavior).
  if (csr_native_) {
    csr_succ_off_ = other.csr_succ_off_;
    csr_pred_off_ = other.csr_pred_off_;
    csr_succ_ = other.csr_succ_;
    csr_pred_ = other.csr_pred_;
    csr_valid_.store(true, std::memory_order_release);
  }
}

ComputeDag& ComputeDag::operator=(const ComputeDag& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  succ_ = other.succ_;
  pred_ = other.pred_;
  omega_ = other.omega_;
  mu_ = other.mu_;
  num_edges_ = other.num_edges_;
  csr_native_ = other.csr_native_;
  if (csr_native_) {
    csr_succ_off_ = other.csr_succ_off_;
    csr_pred_off_ = other.csr_pred_off_;
    csr_succ_ = other.csr_succ_;
    csr_pred_ = other.csr_pred_;
    csr_valid_.store(true, std::memory_order_release);
  } else {
    csr_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

ComputeDag::ComputeDag(ComputeDag&& other) noexcept
    : name_(std::move(other.name_)),
      succ_(std::move(other.succ_)),
      pred_(std::move(other.pred_)),
      omega_(std::move(other.omega_)),
      mu_(std::move(other.mu_)),
      num_edges_(other.num_edges_),
      csr_native_(other.csr_native_),
      csr_succ_off_(std::move(other.csr_succ_off_)),
      csr_pred_off_(std::move(other.csr_pred_off_)),
      csr_succ_(std::move(other.csr_succ_)),
      csr_pred_(std::move(other.csr_pred_)),
      csr_valid_(other.csr_valid_.load(std::memory_order_acquire)) {
  other.csr_valid_.store(false, std::memory_order_release);
  other.csr_native_ = false;
}

ComputeDag& ComputeDag::operator=(ComputeDag&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  succ_ = std::move(other.succ_);
  pred_ = std::move(other.pred_);
  omega_ = std::move(other.omega_);
  mu_ = std::move(other.mu_);
  num_edges_ = other.num_edges_;
  csr_native_ = other.csr_native_;
  csr_succ_off_ = std::move(other.csr_succ_off_);
  csr_pred_off_ = std::move(other.csr_pred_off_);
  csr_succ_ = std::move(other.csr_succ_);
  csr_pred_ = std::move(other.csr_pred_);
  csr_valid_.store(other.csr_valid_.load(std::memory_order_acquire),
                   std::memory_order_release);
  other.csr_valid_.store(false, std::memory_order_release);
  other.csr_native_ = false;
  return *this;
}

ComputeDag ComputeDag::from_csr(std::string name, std::vector<double> omega,
                                std::vector<double> mu,
                                std::vector<std::size_t> succ_off,
                                std::vector<NodeId> succ) {
  const std::size_t n = omega.size();
  assert(mu.size() == n && succ_off.size() == n + 1);
  ComputeDag dag(std::move(name));
  dag.omega_ = std::move(omega);
  dag.mu_ = std::move(mu);
  dag.num_edges_ = succ_off.empty() ? 0 : succ_off[n];
  dag.csr_succ_off_ = std::move(succ_off);
  dag.csr_succ_ = std::move(succ);
  assert(dag.csr_succ_.size() == dag.num_edges_);
  // Derive the predecessor CSR with a counting pass + scatter.
  dag.csr_pred_off_.assign(n + 1, 0);
  for (NodeId v : dag.csr_succ_) {
    ++dag.csr_pred_off_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    dag.csr_pred_off_[v + 1] += dag.csr_pred_off_[v];
  }
  dag.csr_pred_.resize(dag.num_edges_);
  std::vector<std::size_t> cursor(dag.csr_pred_off_.begin(),
                                  dag.csr_pred_off_.end() - 1);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t e = dag.csr_succ_off_[u]; e < dag.csr_succ_off_[u + 1];
         ++e) {
      dag.csr_pred_[cursor[static_cast<std::size_t>(dag.csr_succ_[e])]++] =
          static_cast<NodeId>(u);
    }
  }
  dag.csr_native_ = true;
  dag.csr_valid_.store(true, std::memory_order_release);
  return dag;
}

void ComputeDag::thaw() {
  if (!csr_native_) return;
  const std::size_t n = omega_.size();
  succ_.resize(n);
  pred_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    succ_[v].assign(csr_succ_.begin() +
                        static_cast<std::ptrdiff_t>(csr_succ_off_[v]),
                    csr_succ_.begin() +
                        static_cast<std::ptrdiff_t>(csr_succ_off_[v + 1]));
    pred_[v].assign(csr_pred_.begin() +
                        static_cast<std::ptrdiff_t>(csr_pred_off_[v]),
                    csr_pred_.begin() +
                        static_cast<std::ptrdiff_t>(csr_pred_off_[v + 1]));
  }
  csr_native_ = false;
}

NodeId ComputeDag::add_node(double omega, double mu) {
  thaw();
  succ_.emplace_back();
  pred_.emplace_back();
  omega_.push_back(omega);
  mu_.push_back(mu);
  csr_valid_.store(false, std::memory_order_release);
  return static_cast<NodeId>(succ_.size() - 1);
}

void ComputeDag::add_edge(NodeId u, NodeId v) {
  thaw();
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes() && u != v);
  if (std::find(succ_[u].begin(), succ_[u].end(), v) != succ_[u].end()) return;
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++num_edges_;
  csr_valid_.store(false, std::memory_order_release);
}

bool ComputeDag::remove_edge(NodeId u, NodeId v) {
  thaw();
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  const auto it = std::find(succ_[u].begin(), succ_[u].end(), v);
  if (it == succ_[u].end()) return false;
  succ_[u].erase(it);
  pred_[v].erase(std::find(pred_[v].begin(), pred_[v].end(), u));
  --num_edges_;
  csr_valid_.store(false, std::memory_order_release);
  return true;
}

void ComputeDag::remove_last_node() {
  thaw();
  assert(!omega_.empty());
  assert(succ_.back().empty() && pred_.back().empty());
  succ_.pop_back();
  pred_.pop_back();
  omega_.pop_back();
  mu_.pop_back();
  csr_valid_.store(false, std::memory_order_release);
}

void ComputeDag::build_csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;  // lost the race
  const std::size_t n = succ_.size();
  csr_succ_off_.assign(n + 1, 0);
  csr_pred_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    csr_succ_off_[v + 1] = csr_succ_off_[v] + succ_[v].size();
    csr_pred_off_[v + 1] = csr_pred_off_[v] + pred_[v].size();
  }
  csr_succ_.resize(csr_succ_off_[n]);
  csr_pred_.resize(csr_pred_off_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(succ_[v].begin(), succ_[v].end(),
              csr_succ_.begin() + static_cast<std::ptrdiff_t>(csr_succ_off_[v]));
    std::copy(pred_[v].begin(), pred_[v].end(),
              csr_pred_.begin() + static_cast<std::ptrdiff_t>(csr_pred_off_[v]));
  }
  csr_valid_.store(true, std::memory_order_release);
}

std::vector<NodeId> ComputeDag::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_source(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> ComputeDag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_sink(v)) out.push_back(v);
  }
  return out;
}

double ComputeDag::total_omega() const {
  double sum = 0;
  for (double w : omega_) sum += w;
  return sum;
}

double ComputeDag::total_mu() const {
  double sum = 0;
  for (double m : mu_) sum += m;
  return sum;
}

std::string ComputeDag::to_dot() const {
  std::ostringstream out;
  out << "digraph \"" << name_ << "\" {\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\\nw=" << omega_[v]
        << " m=" << mu_[v] << "\"];\n";
  }
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : children(u)) out << "  n" << u << " -> n" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

void assign_random_memory_weights(ComputeDag& dag, Rng& rng, int lo, int hi) {
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    dag.set_mu(v, static_cast<double>(rng.uniform_int(lo, hi)));
  }
}

}  // namespace mbsp
