#include "src/graph/dag.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mbsp {

NodeId ComputeDag::add_node(double omega, double mu) {
  succ_.emplace_back();
  pred_.emplace_back();
  omega_.push_back(omega);
  mu_.push_back(mu);
  return static_cast<NodeId>(succ_.size() - 1);
}

void ComputeDag::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes() && u != v);
  if (std::find(succ_[u].begin(), succ_[u].end(), v) != succ_[u].end()) return;
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++num_edges_;
}

std::vector<NodeId> ComputeDag::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_source(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> ComputeDag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_sink(v)) out.push_back(v);
  }
  return out;
}

double ComputeDag::total_omega() const {
  double sum = 0;
  for (double w : omega_) sum += w;
  return sum;
}

double ComputeDag::total_mu() const {
  double sum = 0;
  for (double m : mu_) sum += m;
  return sum;
}

std::string ComputeDag::to_dot() const {
  std::ostringstream out;
  out << "digraph \"" << name_ << "\" {\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\\nw=" << omega_[v]
        << " m=" << mu_[v] << "\"];\n";
  }
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : succ_[u]) out << "  n" << u << " -> n" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

void assign_random_memory_weights(ComputeDag& dag, Rng& rng, int lo, int hi) {
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    dag.set_mu(v, static_cast<double>(rng.uniform_int(lo, hi)));
  }
}

}  // namespace mbsp
