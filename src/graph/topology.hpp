#pragma once
// Topological utilities over ComputeDag: ordering, acyclicity, levels,
// reachability. All O(V+E) unless noted.

#include <vector>

#include "src/graph/dag.hpp"

namespace mbsp {

/// Kahn topological order; empty result iff the graph has a cycle and is
/// non-empty. Prefers lower node ids first (deterministic).
std::vector<NodeId> topological_order(const ComputeDag& dag);

bool is_acyclic(const ComputeDag& dag);

/// Level of v = length (edge count) of the longest path from any source.
std::vector<int> longest_path_levels(const ComputeDag& dag);

/// Critical path length weighted by omega (max over sinks of summed omega
/// along a path, inclusive of both endpoints).
double critical_path_omega(const ComputeDag& dag);

/// pos[v] = index of v in `order` (inverse permutation).
std::vector<int> order_positions(const std::vector<NodeId>& order,
                                 NodeId num_nodes);

/// Induced sub-DAG on `nodes` (order preserved); `local_of[v]` maps a global
/// node to its local id or kInvalidNode. Edges between selected nodes only.
ComputeDag induced_subdag(const ComputeDag& dag,
                          const std::vector<NodeId>& nodes,
                          std::vector<NodeId>* local_of = nullptr);

/// Quotient graph of a partition part[v] in [0, k): node i = part i with
/// summed omega/mu; edge i->j iff some DAG edge crosses from part i to j.
ComputeDag quotient_graph(const ComputeDag& dag, const std::vector<int>& part,
                          int num_parts);

/// Number of DAG edges whose endpoints lie in different parts.
std::size_t cut_edges(const ComputeDag& dag, const std::vector<int>& part);

}  // namespace mbsp
