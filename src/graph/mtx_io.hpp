#pragma once
// Matrix Market (.mtx) import: reads the coordinate format into the sparse
// row pattern consumed by the SpMV/CG/iterated-SpMV DAG builders, so real
// sparse matrices become workload scenarios.
//
// Supported: `matrix coordinate` with field real/integer/pattern/complex
// (values are ignored; only the structure matters) and symmetry general/
// symmetric/skew-symmetric/hermitian (mirrored entries are materialized).
// The matrix must be square. Rows left empty by the file get their diagonal
// entry added, so every DAG row has at least one term to reduce.

#include <optional>
#include <string>
#include <vector>

namespace mbsp {

/// Parses .mtx text into a per-row sorted, deduplicated column pattern.
std::optional<std::vector<std::vector<int>>> pattern_from_mtx(
    const std::string& text, std::string* error = nullptr);

std::optional<std::vector<std::vector<int>>> read_mtx_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace mbsp
