#include "src/graph/dag_io.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/graph/topology.hpp"

namespace mbsp {

namespace {

constexpr char kBinaryMagic[8] = {'M', 'B', 'S', 'P', 'D', 'A', 'G', '2'};
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::string format_weight(double w) {
  char buf[64];
  // %.17g round-trips IEEE doubles; trim to plain form where possible.
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Little-endian byte writer / FNV hasher over the same primitive layout,
/// so the canonical hash and the binary encoding agree bit for bit.
/// Pass hashing = false for pure writers (the per-byte FNV loop is the
/// dominant cost of emitting large binary files otherwise).
class ByteSink {
 public:
  explicit ByteSink(std::string* out = nullptr, bool hashing = true)
      : out_(out), hashing_(hashing) {}

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    if (hashing_) {
      for (std::size_t i = 0; i < size; ++i) {
        hash_ = (hash_ ^ p[i]) * kFnvPrime;
      }
    }
    if (out_ != nullptr) out_->append(reinterpret_cast<const char*>(p), size);
  }
  void u32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 4);
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }

  std::uint64_t hash() const { return hash_; }

 private:
  std::string* out_;
  bool hashing_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Bounds-checked little-endian reader for the binary format.
class ByteSource {
 public:
  explicit ByteSource(const std::string& bytes) : bytes_(bytes) {}

  bool bytes(void* out, std::size_t size) {
    if (pos_ + size > bytes_.size()) return false;
    std::copy_n(bytes_.data() + pos_, size, static_cast<char*>(out));
    pos_ += size;
    return true;
  }
  bool u32(std::uint32_t* v) {
    unsigned char b[4];
    if (!bytes(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t* v) {
    unsigned char b[8];
    if (!bytes(b, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
  }
  bool f64(double* d) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *d = std::bit_cast<double>(bits);
    return true;
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

/// Streams the canonical form of `dag` (header-free; sorted edges) into
/// `sink`. Shared by the hash and the binary footer.
void stream_canonical(const ComputeDag& dag, ByteSink& sink) {
  sink.bytes(dag.name().data(), dag.name().size());
  sink.u32(0);  // name terminator (names cannot contain NUL-NUL-NUL-NUL)
  sink.u32(static_cast<std::uint32_t>(dag.num_nodes()));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    sink.f64(dag.omega(v));
    sink.f64(dag.mu(v));
  }
  sink.u64(dag.num_edges());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    const auto span = dag.children(u);
    std::vector<NodeId> children(span.begin(), span.end());
    std::sort(children.begin(), children.end());
    for (NodeId v : children) {
      sink.u32(static_cast<std::uint32_t>(u));
      sink.u32(static_cast<std::uint32_t>(v));
    }
  }
}

}  // namespace

std::uint64_t fnv1a_64(const void* data, std::size_t size,
                       std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t dag_canonical_hash(const ComputeDag& dag) {
  ByteSink sink;
  stream_canonical(dag, sink);
  return sink.hash();
}

std::string dag_hash_hex(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

std::string dag_to_text(const ComputeDag& dag) {
  std::ostringstream out;
  out << "mbsp-dag v1\n";
  out << "name " << dag.name() << '\n';
  out << "nodes " << dag.num_nodes() << '\n';
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    out << format_weight(dag.omega(v)) << ' ' << format_weight(dag.mu(v))
        << '\n';
  }
  out << "edges " << dag.num_edges() << '\n';
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) out << u << ' ' << v << '\n';
  }
  return out.str();
}

std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  // Reads the next non-blank line (CR-stripped); false at end of input.
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") != std::string::npos) return true;
    }
    return false;
  };
  auto at_line = [&](const std::string& message) {
    return "line " + std::to_string(line_no) + ": " + message;
  };
  auto truncated = [&](const std::string& expected) {
    return "unexpected end of input after line " + std::to_string(line_no) +
           ": expected " + expected;
  };

  if (!next_line() || line != "mbsp-dag v1") {
    fail(error, line_no == 0 ? "empty input: missing 'mbsp-dag v1' header"
                             : at_line("missing 'mbsp-dag v1' header"));
    return std::nullopt;
  }
  if (!next_line()) {
    fail(error, truncated("'name <string>'"));
    return std::nullopt;
  }
  if (line.rfind("name", 0) != 0 || (line.size() > 4 && line[4] != ' ')) {
    fail(error, at_line("expected 'name <string>'"));
    return std::nullopt;
  }
  const std::string name = line.size() > 5 ? line.substr(5) : "";

  long long n = 0;
  {
    if (!next_line()) {
      fail(error, truncated("'nodes <count>'"));
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token >> n) || token != "nodes" || n < 0) {
      fail(error, at_line("expected 'nodes <count>'"));
      return std::nullopt;
    }
  }
  ComputeDag dag(name);
  for (long long i = 0; i < n; ++i) {
    if (!next_line()) {
      fail(error, truncated(std::to_string(n) + " node weight lines, got " +
                            std::to_string(i)));
      return std::nullopt;
    }
    std::istringstream fields(line);
    double omega = 0, mu = 0;
    std::string extra;
    if (!(fields >> omega >> mu) || fields >> extra) {
      fail(error, at_line("bad node weight line (expected '<omega> <mu>')"));
      return std::nullopt;
    }
    dag.add_node(omega, mu);
  }
  long long m = 0;
  {
    if (!next_line()) {
      fail(error, truncated("'edges <count>'"));
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token >> m) || token != "edges" || m < 0) {
      fail(error, at_line("expected 'edges <count>'"));
      return std::nullopt;
    }
  }
  for (long long e = 0; e < m; ++e) {
    if (!next_line()) {
      fail(error, truncated(std::to_string(m) + " edge lines, got " +
                            std::to_string(e)));
      return std::nullopt;
    }
    std::istringstream fields(line);
    long long u = 0, v = 0;
    std::string extra;
    if (!(fields >> u >> v) || fields >> extra) {
      fail(error, at_line("bad edge line (expected '<u> <v>')"));
      return std::nullopt;
    }
    if (u < 0 || u >= n || v < 0 || v >= n) {
      fail(error, at_line("edge endpoint out of range [0, " +
                          std::to_string(n) + ")"));
      return std::nullopt;
    }
    if (u == v) {
      fail(error, at_line("self-loop edge " + std::to_string(u)));
      return std::nullopt;
    }
    const std::size_t before = dag.num_edges();
    dag.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (dag.num_edges() == before) {
      fail(error, at_line("duplicate edge " + std::to_string(u) + " -> " +
                          std::to_string(v)));
      return std::nullopt;
    }
  }
  if (next_line()) {
    fail(error, at_line("trailing content after the edge list"));
    return std::nullopt;
  }
  if (!is_acyclic(dag)) {
    fail(error, "edge set contains a cycle");
    return std::nullopt;
  }
  return dag;
}

std::string dag_to_binary(const ComputeDag& dag) {
  std::string out;
  ByteSink sink(&out, /*hashing=*/false);
  sink.bytes(kBinaryMagic, sizeof(kBinaryMagic));
  sink.u32(static_cast<std::uint32_t>(dag.name().size()));
  sink.bytes(dag.name().data(), dag.name().size());
  sink.u32(static_cast<std::uint32_t>(dag.num_nodes()));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    sink.f64(dag.omega(v));
    sink.f64(dag.mu(v));
  }
  sink.u64(dag.num_edges());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      sink.u32(static_cast<std::uint32_t>(u));
      sink.u32(static_cast<std::uint32_t>(v));
    }
  }
  sink.u64(dag_canonical_hash(dag));
  return out;
}

bool is_binary_dag(const std::string& bytes) {
  return bytes.size() >= sizeof(kBinaryMagic) &&
         std::equal(kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic),
                    bytes.begin());
}

std::optional<ComputeDag> dag_from_binary(const std::string& bytes,
                                          std::string* error) {
  if (!is_binary_dag(bytes)) {
    fail(error, "missing 'MBSPDAG2' magic (not a binary DAG)");
    return std::nullopt;
  }
  ByteSource in(bytes);
  char magic[8];
  in.bytes(magic, sizeof(magic));
  std::uint32_t name_len = 0;
  if (!in.u32(&name_len) || name_len > in.remaining()) {
    fail(error, "truncated name");
    return std::nullopt;
  }
  std::string name(name_len, '\0');
  in.bytes(name.data(), name_len);
  std::uint32_t n = 0;
  if (!in.u32(&n) || static_cast<std::uint64_t>(n) * 16 > in.remaining()) {
    fail(error, "truncated node table");
    return std::nullopt;
  }
  ComputeDag dag(std::move(name));
  for (std::uint32_t i = 0; i < n; ++i) {
    double omega = 0, mu = 0;
    in.f64(&omega);
    in.f64(&mu);
    dag.add_node(omega, mu);
  }
  std::uint64_t m = 0;
  if (!in.u64(&m) || m > in.remaining() / 8) {
    fail(error, "truncated edge table");
    return std::nullopt;
  }
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t u = 0, v = 0;
    in.u32(&u);
    in.u32(&v);
    if (u >= n || v >= n || u == v) {
      fail(error, "edge " + std::to_string(e) + " endpoint out of range");
      return std::nullopt;
    }
    dag.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (dag.num_edges() != m) {
    fail(error, "duplicate edges in input");
    return std::nullopt;
  }
  std::uint64_t stored_hash = 0;
  if (!in.u64(&stored_hash)) {
    fail(error, "truncated hash footer");
    return std::nullopt;
  }
  if (in.remaining() != 0) {
    fail(error, "trailing bytes after the hash footer");
    return std::nullopt;
  }
  if (!is_acyclic(dag)) {
    fail(error, "edge set contains a cycle");
    return std::nullopt;
  }
  const std::uint64_t actual = dag_canonical_hash(dag);
  if (actual != stored_hash) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 " != stored %016" PRIx64,
                  actual, stored_hash);
    fail(error, std::string("canonical hash mismatch (corrupt file): ") + buf);
    return std::nullopt;
  }
  return dag;
}

std::optional<ComputeDag> dag_from_bytes(const std::string& bytes,
                                         std::string* error) {
  return is_binary_dag(bytes) ? dag_from_binary(bytes, error)
                              : dag_from_text(bytes, error);
}

bool write_dag_file(const ComputeDag& dag, const std::string& path,
                    bool binary) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << (binary ? dag_to_binary(dag) : dag_to_text(dag));
  return static_cast<bool>(out);
}

std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return dag_from_bytes(buffer.str(), error);
}

}  // namespace mbsp
