#include "src/graph/dag_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/graph/topology.hpp"

namespace mbsp {

namespace {

std::string format_weight(double w) {
  char buf[64];
  // %.17g round-trips IEEE doubles; trim to plain form where possible.
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::string dag_to_text(const ComputeDag& dag) {
  std::ostringstream out;
  out << "mbsp-dag v1\n";
  out << "name " << dag.name() << '\n';
  out << "nodes " << dag.num_nodes() << '\n';
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    out << format_weight(dag.omega(v)) << ' ' << format_weight(dag.mu(v))
        << '\n';
  }
  out << "edges " << dag.num_edges() << '\n';
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) out << u << ' ' << v << '\n';
  }
  return out.str();
}

std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error) {
  std::istringstream in(text);
  std::string token, version;
  if (!(in >> token >> version) || token != "mbsp-dag" || version != "v1") {
    fail(error, "missing 'mbsp-dag v1' header");
    return std::nullopt;
  }
  if (!(in >> token) || token != "name") {
    fail(error, "expected 'name'");
    return std::nullopt;
  }
  in >> std::ws;
  std::string name;
  std::getline(in, name);
  long long n = 0;
  if (!(in >> token >> n) || token != "nodes" || n < 0) {
    fail(error, "expected 'nodes <count>'");
    return std::nullopt;
  }
  ComputeDag dag(name);
  for (long long i = 0; i < n; ++i) {
    double omega = 0, mu = 0;
    if (!(in >> omega >> mu)) {
      fail(error, "bad node weight line " + std::to_string(i));
      return std::nullopt;
    }
    dag.add_node(omega, mu);
  }
  long long m = 0;
  if (!(in >> token >> m) || token != "edges" || m < 0) {
    fail(error, "expected 'edges <count>'");
    return std::nullopt;
  }
  for (long long e = 0; e < m; ++e) {
    long long u = 0, v = 0;
    if (!(in >> u >> v) || u < 0 || v < 0 || u >= n || v >= n || u == v) {
      fail(error, "bad edge line " + std::to_string(e));
      return std::nullopt;
    }
    dag.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (static_cast<long long>(dag.num_edges()) != m) {
    fail(error, "duplicate edges in input");
    return std::nullopt;
  }
  if (!is_acyclic(dag)) {
    fail(error, "edge set contains a cycle");
    return std::nullopt;
  }
  return dag;
}

bool write_dag_file(const ComputeDag& dag, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << dag_to_text(dag);
  return static_cast<bool>(out);
}

std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return dag_from_text(buffer.str(), error);
}

}  // namespace mbsp
