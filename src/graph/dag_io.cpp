#include "src/graph/dag_io.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/graph/topology.hpp"

namespace mbsp {

namespace {

constexpr char kBinaryMagic[8] = {'M', 'B', 'S', 'P', 'D', 'A', 'G', '2'};
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::string format_weight(double w) {
  char buf[64];
  // %.17g round-trips IEEE doubles; trim to plain form where possible.
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Little-endian byte writer / FNV hasher over the same primitive layout,
/// so the canonical hash and the binary encoding agree bit for bit.
/// Pass hashing = false for pure writers (the per-byte FNV loop is the
/// dominant cost of emitting large binary files otherwise).
class ByteSink {
 public:
  explicit ByteSink(std::string* out = nullptr, bool hashing = true)
      : out_(out), hashing_(hashing) {}

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    if (hashing_) {
      for (std::size_t i = 0; i < size; ++i) {
        hash_ = (hash_ ^ p[i]) * kFnvPrime;
      }
    }
    if (out_ != nullptr) out_->append(reinterpret_cast<const char*>(p), size);
  }
  void u32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 4);
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }

  std::uint64_t hash() const { return hash_; }

 private:
  std::string* out_;
  bool hashing_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Byte supplier for the chunked binary parser: a file or an in-memory
/// string, with the total size known up front and the running offset
/// tracked so parse errors can name the exact byte position.
class Feed {
 public:
  virtual ~Feed() = default;
  /// Copies up to `size` bytes into `out`; returns the count delivered
  /// (short only at end of input).
  virtual std::size_t read(void* out, std::size_t size) = 0;
  std::size_t pos() const { return pos_; }
  std::size_t size() const { return size_; }
  std::size_t remaining() const { return size_ - pos_; }

 protected:
  std::size_t pos_ = 0;
  std::size_t size_ = 0;
};

class StringFeed final : public Feed {
 public:
  explicit StringFeed(const std::string& bytes) : bytes_(bytes) {
    size_ = bytes.size();
  }
  std::size_t read(void* out, std::size_t size) override {
    const std::size_t take = std::min(size, bytes_.size() - pos_);
    std::copy_n(bytes_.data() + pos_, take, static_cast<char*>(out));
    pos_ += take;
    return take;
  }

 private:
  const std::string& bytes_;
};

class FileFeed final : public Feed {
 public:
  /// Takes ownership of `file` (must be open, positioned at 0).
  FileFeed(std::FILE* file, std::size_t file_size) : file_(file) {
    size_ = file_size;
    buffer_.resize(1u << 20);
    std::setvbuf(file_, buffer_.data(), _IOFBF, buffer_.size());
  }
  ~FileFeed() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  std::size_t read(void* out, std::size_t size) override {
    const std::size_t got = std::fread(out, 1, size, file_);
    pos_ += got;
    return got;
  }

 private:
  std::FILE* file_;
  std::vector<char> buffer_;
};

std::uint32_t decode_u32(const unsigned char* b) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t decode_u64(const unsigned char* b) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

/// Streams the canonical form of `dag` (header-free; sorted edges) into
/// `sink`. Shared by the hash and the binary footer.
void stream_canonical(const ComputeDag& dag, ByteSink& sink) {
  sink.bytes(dag.name().data(), dag.name().size());
  sink.u32(0);  // name terminator (names cannot contain NUL-NUL-NUL-NUL)
  sink.u32(static_cast<std::uint32_t>(dag.num_nodes()));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    sink.f64(dag.omega(v));
    sink.f64(dag.mu(v));
  }
  sink.u64(dag.num_edges());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    const auto span = dag.children(u);
    std::vector<NodeId> children(span.begin(), span.end());
    std::sort(children.begin(), children.end());
    for (NodeId v : children) {
      sink.u32(static_cast<std::uint32_t>(u));
      sink.u32(static_cast<std::uint32_t>(v));
    }
  }
}

/// Chunked v2 binary parser shared by the in-memory and file paths.
/// Decodes straight into CSR arrays (no per-node vectors), folds the
/// canonical hash in on the fly, and reports byte offset + section + file
/// size on truncation or corruption.
std::optional<ComputeDag> parse_binary_stream(Feed& in, std::string* error) {
  std::uint64_t hash = kFnvOffset;
  const auto hash_bytes = [&](const void* data, std::size_t size) {
    hash = fnv1a_64(data, size, hash);
  };
  const auto hash_u32 = [&](std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    hash_bytes(b, 4);
  };
  const auto hash_u64 = [&](std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    hash_bytes(b, 8);
  };

  // Error helpers: every message carries the byte offset where decoding
  // stopped, the section being decoded, and the file size.
  const auto at = [&](const std::string& message, const char* section) {
    return message + " (at byte offset " + std::to_string(in.pos()) +
           ", section '" + section + "', file size " +
           std::to_string(in.size()) + " bytes)";
  };
  const auto truncated = [&](const char* section, std::uint64_t need) {
    fail(error, at("truncated file: " + std::to_string(need) +
                       " more byte(s) expected",
                   section));
    return std::nullopt;
  };
  // Reads exactly `size` bytes or reports truncation of `section`.
  const auto read_exact = [&](void* out, std::size_t size,
                              const char* section) {
    return in.read(out, size) == size ? true
                                      : (fail(error, at("truncated file: " +
                                                            std::to_string(
                                                                size) +
                                                            " more byte(s) "
                                                            "expected",
                                                        section)),
                                         false);
  };

  unsigned char scratch[8];
  char magic[8];
  if (!read_exact(magic, sizeof(magic), "magic")) return std::nullopt;
  if (!std::equal(magic, magic + sizeof(magic), kBinaryMagic)) {
    fail(error, "missing 'MBSPDAG2' magic (not a binary DAG)");
    return std::nullopt;
  }

  if (!read_exact(scratch, 4, "name length")) return std::nullopt;
  const std::uint32_t name_len = decode_u32(scratch);
  if (name_len > in.remaining()) return truncated("name", name_len);
  std::string name(name_len, '\0');
  if (!read_exact(name.data(), name_len, "name")) return std::nullopt;
  hash_bytes(name.data(), name.size());
  hash_u32(0);  // canonical name terminator

  if (!read_exact(scratch, 4, "node count")) return std::nullopt;
  const std::uint32_t n = decode_u32(scratch);
  hash_u32(n);
  if (static_cast<std::uint64_t>(n) * 16 > in.remaining()) {
    return truncated("node weights", static_cast<std::uint64_t>(n) * 16);
  }

  std::vector<double> omega, mu;
  omega.reserve(n);
  mu.reserve(n);
  {
    // Decode node weights in fixed-size chunks (16 bytes per node).
    constexpr std::size_t kNodesPerChunk = 4096;
    std::vector<unsigned char> chunk(kNodesPerChunk * 16);
    std::uint32_t done = 0;
    while (done < n) {
      const std::size_t batch =
          std::min<std::size_t>(kNodesPerChunk, n - done);
      if (!read_exact(chunk.data(), batch * 16, "node weights")) {
        return std::nullopt;
      }
      hash_bytes(chunk.data(), batch * 16);
      for (std::size_t i = 0; i < batch; ++i) {
        omega.push_back(
            std::bit_cast<double>(decode_u64(chunk.data() + i * 16)));
        mu.push_back(
            std::bit_cast<double>(decode_u64(chunk.data() + i * 16 + 8)));
      }
      done += static_cast<std::uint32_t>(batch);
    }
  }

  if (!read_exact(scratch, 8, "edge count")) return std::nullopt;
  const std::uint64_t m = decode_u64(scratch);
  hash_u64(m);
  if (m * 8 > in.remaining()) return truncated("edges", m * 8);

  // Stream edges straight into the successor CSR. The format is u-major
  // (see the header comment), which lets us fill offsets in one pass and
  // hash each node's sorted child list as soon as it completes.
  std::vector<std::size_t> succ_off(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> succ;
  succ.reserve(m);
  std::vector<NodeId> sorted_children;  // reused per-u scratch
  std::int64_t prev_u = -1;
  std::size_t u_begin = 0;  // index into succ where prev_u's children start
  const auto flush_u = [&]() -> bool {
    if (prev_u < 0) return true;
    sorted_children.assign(succ.begin() + static_cast<std::ptrdiff_t>(u_begin),
                           succ.end());
    std::sort(sorted_children.begin(), sorted_children.end());
    for (std::size_t i = 0; i < sorted_children.size(); ++i) {
      if (i > 0 && sorted_children[i] == sorted_children[i - 1]) {
        fail(error, at("duplicate edge " + std::to_string(prev_u) + " -> " +
                           std::to_string(sorted_children[i]),
                       "edges"));
        return false;
      }
      hash_u32(static_cast<std::uint32_t>(prev_u));
      hash_u32(static_cast<std::uint32_t>(sorted_children[i]));
    }
    return true;
  };
  {
    constexpr std::size_t kEdgesPerChunk = 8192;
    std::vector<unsigned char> chunk(kEdgesPerChunk * 8);
    std::uint64_t done = 0;
    while (done < m) {
      const std::size_t batch =
          std::min<std::uint64_t>(kEdgesPerChunk, m - done);
      if (!read_exact(chunk.data(), batch * 8, "edges")) return std::nullopt;
      for (std::size_t i = 0; i < batch; ++i) {
        const std::uint32_t u = decode_u32(chunk.data() + i * 8);
        const std::uint32_t v = decode_u32(chunk.data() + i * 8 + 4);
        const std::uint64_t e = done + i;
        if (u >= n || v >= n) {
          fail(error, at("edge " + std::to_string(e) + " endpoint out of "
                             "range [0, " + std::to_string(n) + ")",
                         "edges"));
          return std::nullopt;
        }
        if (u == v) {
          fail(error,
               at("self-loop edge " + std::to_string(u), "edges"));
          return std::nullopt;
        }
        if (static_cast<std::int64_t>(u) < prev_u) {
          fail(error, at("edge " + std::to_string(e) +
                             " breaks u-major order (u=" + std::to_string(u) +
                             " after u=" + std::to_string(prev_u) + ")",
                         "edges"));
          return std::nullopt;
        }
        if (static_cast<std::int64_t>(u) != prev_u) {
          if (!flush_u()) return std::nullopt;
          for (std::int64_t k = prev_u + 1; k <= static_cast<std::int64_t>(u);
               ++k) {
            succ_off[static_cast<std::size_t>(k)] = succ.size();
          }
          prev_u = u;
          u_begin = succ.size();
        }
        succ.push_back(static_cast<NodeId>(v));
      }
      done += batch;
    }
  }
  if (!flush_u()) return std::nullopt;
  for (std::int64_t k = prev_u + 1; k <= static_cast<std::int64_t>(n); ++k) {
    succ_off[static_cast<std::size_t>(k)] = succ.size();
  }

  if (!read_exact(scratch, 8, "hash footer")) return std::nullopt;
  const std::uint64_t stored_hash = decode_u64(scratch);
  if (in.remaining() != 0) {
    fail(error, at(std::to_string(in.remaining()) +
                       " trailing byte(s) after the hash footer",
                   "footer"));
    return std::nullopt;
  }

  ComputeDag dag = ComputeDag::from_csr(std::move(name), std::move(omega),
                                        std::move(mu), std::move(succ_off),
                                        std::move(succ));
  if (!is_acyclic(dag)) {
    fail(error, "edge set contains a cycle");
    return std::nullopt;
  }
  if (hash != stored_hash) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 " != stored %016" PRIx64,
                  hash, stored_hash);
    fail(error, std::string("canonical hash mismatch (corrupt file): ") + buf);
    return std::nullopt;
  }
  return dag;
}

}  // namespace

std::uint64_t fnv1a_64(const void* data, std::size_t size,
                       std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t dag_canonical_hash(const ComputeDag& dag) {
  ByteSink sink;
  stream_canonical(dag, sink);
  return sink.hash();
}

std::string dag_hash_hex(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

std::string dag_to_text(const ComputeDag& dag) {
  std::ostringstream out;
  out << "mbsp-dag v1\n";
  out << "name " << dag.name() << '\n';
  out << "nodes " << dag.num_nodes() << '\n';
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    out << format_weight(dag.omega(v)) << ' ' << format_weight(dag.mu(v))
        << '\n';
  }
  out << "edges " << dag.num_edges() << '\n';
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) out << u << ' ' << v << '\n';
  }
  return out.str();
}

std::optional<ComputeDag> dag_from_text(const std::string& text,
                                        std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  // Reads the next non-blank line (CR-stripped); false at end of input.
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") != std::string::npos) return true;
    }
    return false;
  };
  auto at_line = [&](const std::string& message) {
    return "line " + std::to_string(line_no) + ": " + message;
  };
  auto truncated = [&](const std::string& expected) {
    return "unexpected end of input after line " + std::to_string(line_no) +
           ": expected " + expected;
  };

  if (!next_line() || line != "mbsp-dag v1") {
    fail(error, line_no == 0 ? "empty input: missing 'mbsp-dag v1' header"
                             : at_line("missing 'mbsp-dag v1' header"));
    return std::nullopt;
  }
  if (!next_line()) {
    fail(error, truncated("'name <string>'"));
    return std::nullopt;
  }
  if (line.rfind("name", 0) != 0 || (line.size() > 4 && line[4] != ' ')) {
    fail(error, at_line("expected 'name <string>'"));
    return std::nullopt;
  }
  const std::string name = line.size() > 5 ? line.substr(5) : "";

  long long n = 0;
  {
    if (!next_line()) {
      fail(error, truncated("'nodes <count>'"));
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token >> n) || token != "nodes" || n < 0) {
      fail(error, at_line("expected 'nodes <count>'"));
      return std::nullopt;
    }
  }
  ComputeDag dag(name);
  for (long long i = 0; i < n; ++i) {
    if (!next_line()) {
      fail(error, truncated(std::to_string(n) + " node weight lines, got " +
                            std::to_string(i)));
      return std::nullopt;
    }
    std::istringstream fields(line);
    double omega = 0, mu = 0;
    std::string extra;
    if (!(fields >> omega >> mu) || fields >> extra) {
      fail(error, at_line("bad node weight line (expected '<omega> <mu>')"));
      return std::nullopt;
    }
    dag.add_node(omega, mu);
  }
  long long m = 0;
  {
    if (!next_line()) {
      fail(error, truncated("'edges <count>'"));
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token >> m) || token != "edges" || m < 0) {
      fail(error, at_line("expected 'edges <count>'"));
      return std::nullopt;
    }
  }
  for (long long e = 0; e < m; ++e) {
    if (!next_line()) {
      fail(error, truncated(std::to_string(m) + " edge lines, got " +
                            std::to_string(e)));
      return std::nullopt;
    }
    std::istringstream fields(line);
    long long u = 0, v = 0;
    std::string extra;
    if (!(fields >> u >> v) || fields >> extra) {
      fail(error, at_line("bad edge line (expected '<u> <v>')"));
      return std::nullopt;
    }
    if (u < 0 || u >= n || v < 0 || v >= n) {
      fail(error, at_line("edge endpoint out of range [0, " +
                          std::to_string(n) + ")"));
      return std::nullopt;
    }
    if (u == v) {
      fail(error, at_line("self-loop edge " + std::to_string(u)));
      return std::nullopt;
    }
    const std::size_t before = dag.num_edges();
    dag.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (dag.num_edges() == before) {
      fail(error, at_line("duplicate edge " + std::to_string(u) + " -> " +
                          std::to_string(v)));
      return std::nullopt;
    }
  }
  if (next_line()) {
    fail(error, at_line("trailing content after the edge list"));
    return std::nullopt;
  }
  if (!is_acyclic(dag)) {
    fail(error, "edge set contains a cycle");
    return std::nullopt;
  }
  return dag;
}

std::string dag_to_binary(const ComputeDag& dag) {
  std::string out;
  ByteSink sink(&out, /*hashing=*/false);
  sink.bytes(kBinaryMagic, sizeof(kBinaryMagic));
  sink.u32(static_cast<std::uint32_t>(dag.name().size()));
  sink.bytes(dag.name().data(), dag.name().size());
  sink.u32(static_cast<std::uint32_t>(dag.num_nodes()));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    sink.f64(dag.omega(v));
    sink.f64(dag.mu(v));
  }
  sink.u64(dag.num_edges());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      sink.u32(static_cast<std::uint32_t>(u));
      sink.u32(static_cast<std::uint32_t>(v));
    }
  }
  sink.u64(dag_canonical_hash(dag));
  return out;
}

bool is_binary_dag(const std::string& bytes) {
  return bytes.size() >= sizeof(kBinaryMagic) &&
         std::equal(kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic),
                    bytes.begin());
}

std::optional<ComputeDag> dag_from_binary(const std::string& bytes,
                                          std::string* error) {
  if (!is_binary_dag(bytes)) {
    fail(error, "missing 'MBSPDAG2' magic (not a binary DAG)");
    return std::nullopt;
  }
  StringFeed in(bytes);
  return parse_binary_stream(in, error);
}

std::optional<ComputeDag> dag_from_bytes(const std::string& bytes,
                                         std::string* error) {
  return is_binary_dag(bytes) ? dag_from_binary(bytes, error)
                              : dag_from_text(bytes, error);
}

bool write_dag_file(const ComputeDag& dag, const std::string& path,
                    bool binary) {
  if (binary) {
    // Stream through DagStreamWriter instead of buffering dag_to_binary's
    // full string: identical bytes, O(max-degree) extra memory.
    DagStreamWriter writer(path);
    writer.begin(dag.name(), static_cast<std::uint64_t>(dag.num_nodes()));
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      writer.add_node(dag.omega(v), dag.mu(v));
    }
    writer.begin_edges(dag.num_edges());
    for (NodeId u = 0; u < dag.num_nodes(); ++u) {
      for (NodeId v : dag.children(u)) writer.add_edge(u, v);
    }
    return writer.finish();
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << dag_to_text(dag);
  return static_cast<bool>(out);
}

std::optional<ComputeDag> read_dag_file(const std::string& path,
                                        std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  // Sniff the magic to pick the format, then rewind.
  char magic[8] = {};
  const std::size_t got = std::fread(magic, 1, sizeof(magic), file);
  if (got == sizeof(magic) &&
      std::equal(magic, magic + sizeof(magic), kBinaryMagic)) {
    // Binary: chunked decode straight into CSR (FileFeed owns the handle).
    if (std::fseek(file, 0, SEEK_END) != 0) {
      std::fclose(file);
      if (error != nullptr) *error = "cannot seek " + path;
      return std::nullopt;
    }
    const long file_size = std::ftell(file);
    std::rewind(file);
    FileFeed in(file, static_cast<std::size_t>(file_size));
    return parse_binary_stream(in, error);
  }
  // Text: small by construction; read whole and reuse the line parser.
  std::rewind(file);
  std::string buffer;
  char chunk[1 << 16];
  std::size_t read = 0;
  while ((read = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    buffer.append(chunk, read);
  }
  std::fclose(file);
  return dag_from_text(buffer, error);
}

// ---------------------------------------------------------------------------
// DagStreamWriter

DagStreamWriter::DagStreamWriter(const std::string& path)
    : hash_(kFnvOffset) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    set_error("cannot open " + path + " for writing");
    return;
  }
  io_buffer_.resize(1u << 20);
  std::setvbuf(file_, io_buffer_.data(), _IOFBF, io_buffer_.size());
}

DagStreamWriter::~DagStreamWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void DagStreamWriter::set_error(const std::string& message) {
  if (error_.empty()) error_ = message;
}

void DagStreamWriter::put_bytes(const void* data, std::size_t size) {
  if (!ok() || file_ == nullptr) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    set_error("write failed (disk full?)");
  }
}

void DagStreamWriter::put_u32(std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  put_bytes(b, 4);
}

void DagStreamWriter::put_u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  put_bytes(b, 8);
}

void DagStreamWriter::put_f64(double d) {
  put_u64(std::bit_cast<std::uint64_t>(d));
}

void DagStreamWriter::hash_bytes(const void* data, std::size_t size) {
  hash_ = fnv1a_64(data, size, hash_);
}

void DagStreamWriter::hash_u32(std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  hash_bytes(b, 4);
}

void DagStreamWriter::hash_u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  hash_bytes(b, 8);
}

void DagStreamWriter::hash_f64(double d) {
  hash_u64(std::bit_cast<std::uint64_t>(d));
}

void DagStreamWriter::begin(const std::string& name,
                            std::uint64_t num_nodes) {
  if (!ok()) return;
  if (state_ != State::kCreated) {
    set_error("begin() called twice");
    return;
  }
  if (num_nodes > 0xFFFFFFFFull) {
    set_error("node count " + std::to_string(num_nodes) +
              " exceeds the format's u32 limit");
    return;
  }
  state_ = State::kNodes;
  declared_nodes_ = num_nodes;
  put_bytes(kBinaryMagic, sizeof(kBinaryMagic));
  put_u32(static_cast<std::uint32_t>(name.size()));
  put_bytes(name.data(), name.size());
  put_u32(static_cast<std::uint32_t>(num_nodes));
  hash_bytes(name.data(), name.size());
  hash_u32(0);  // canonical name terminator
  hash_u32(static_cast<std::uint32_t>(num_nodes));
}

void DagStreamWriter::add_node(double omega, double mu) {
  if (!ok()) return;
  if (state_ != State::kNodes) {
    set_error("add_node() outside the node section");
    return;
  }
  if (emitted_nodes_ == declared_nodes_) {
    set_error("more add_node() calls than the declared " +
              std::to_string(declared_nodes_));
    return;
  }
  ++emitted_nodes_;
  put_f64(omega);
  put_f64(mu);
  hash_f64(omega);
  hash_f64(mu);
}

void DagStreamWriter::begin_edges(std::uint64_t num_edges) {
  if (!ok()) return;
  if (state_ != State::kNodes) {
    set_error("begin_edges() outside the node section");
    return;
  }
  if (emitted_nodes_ != declared_nodes_) {
    set_error("begin_edges() after " + std::to_string(emitted_nodes_) +
              " of " + std::to_string(declared_nodes_) + " declared nodes");
    return;
  }
  state_ = State::kEdges;
  declared_edges_ = num_edges;
  put_u64(num_edges);
  hash_u64(num_edges);
}

bool DagStreamWriter::flush_pending_children() {
  if (current_u_ == kInvalidNode) return true;
  sorted_children_ = pending_children_;
  std::sort(sorted_children_.begin(), sorted_children_.end());
  for (std::size_t i = 0; i < sorted_children_.size(); ++i) {
    if (i > 0 && sorted_children_[i] == sorted_children_[i - 1]) {
      set_error("duplicate edge " + std::to_string(current_u_) + " -> " +
                std::to_string(sorted_children_[i]));
      return false;
    }
    hash_u32(static_cast<std::uint32_t>(current_u_));
    hash_u32(static_cast<std::uint32_t>(sorted_children_[i]));
  }
  pending_children_.clear();
  return true;
}

void DagStreamWriter::add_edge(NodeId u, NodeId v) {
  if (!ok()) return;
  if (state_ != State::kEdges) {
    set_error("add_edge() outside the edge section");
    return;
  }
  if (emitted_edges_ == declared_edges_) {
    set_error("more add_edge() calls than the declared " +
              std::to_string(declared_edges_));
    return;
  }
  if (u < 0 || v < 0 ||
      static_cast<std::uint64_t>(u) >= declared_nodes_ ||
      static_cast<std::uint64_t>(v) >= declared_nodes_) {
    set_error("edge " + std::to_string(u) + " -> " + std::to_string(v) +
              " endpoint out of range [0, " +
              std::to_string(declared_nodes_) + ")");
    return;
  }
  if (u == v) {
    set_error("self-loop edge " + std::to_string(u));
    return;
  }
  if (current_u_ != kInvalidNode && u < current_u_) {
    set_error("edges must be u-major: u=" + std::to_string(u) +
              " after u=" + std::to_string(current_u_));
    return;
  }
  if (u != current_u_) {
    if (!flush_pending_children()) return;
    current_u_ = u;
  }
  ++emitted_edges_;
  pending_children_.push_back(v);
  put_u32(static_cast<std::uint32_t>(u));
  put_u32(static_cast<std::uint32_t>(v));
}

bool DagStreamWriter::finish(std::uint64_t* hash_out) {
  if (ok()) {
    if (state_ != State::kEdges) {
      set_error(state_ == State::kFinished ? "finish() called twice"
                                           : "finish() before begin_edges()");
    } else if (emitted_edges_ != declared_edges_) {
      set_error("finish() after " + std::to_string(emitted_edges_) + " of " +
                std::to_string(declared_edges_) + " declared edges");
    }
  }
  if (ok()) flush_pending_children();
  if (ok()) {
    put_u64(hash_);
    if (file_ != nullptr && std::fflush(file_) != 0) {
      set_error("flush failed (disk full?)");
    }
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!ok()) return false;
  state_ = State::kFinished;
  if (hash_out != nullptr) *hash_out = hash_;
  return true;
}

}  // namespace mbsp
