#include "src/graph/topology.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace mbsp {

std::vector<NodeId> topological_order(const ComputeDag& dag) {
  const NodeId n = dag.num_nodes();
  std::vector<int> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(dag.parents(v).size());
  }
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeId c : dag.children(v)) {
      if (--indeg[c] == 0) ready.push(c);
    }
  }
  if (static_cast<NodeId>(order.size()) != n) order.clear();
  return order;
}

bool is_acyclic(const ComputeDag& dag) {
  return dag.num_nodes() == 0 || !topological_order(dag).empty();
}

std::vector<int> longest_path_levels(const ComputeDag& dag) {
  const auto order = topological_order(dag);
  std::vector<int> level(dag.num_nodes(), 0);
  for (NodeId v : order) {
    for (NodeId u : dag.parents(v)) {
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  return level;
}

double critical_path_omega(const ComputeDag& dag) {
  const auto order = topological_order(dag);
  std::vector<double> path(dag.num_nodes(), 0.0);
  double best = 0.0;
  for (NodeId v : order) {
    double incoming = 0.0;
    for (NodeId u : dag.parents(v)) incoming = std::max(incoming, path[u]);
    path[v] = incoming + dag.omega(v);
    best = std::max(best, path[v]);
  }
  return best;
}

std::vector<int> order_positions(const std::vector<NodeId>& order,
                                 NodeId num_nodes) {
  std::vector<int> pos(num_nodes, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<int>(i);
  }
  return pos;
}

ComputeDag induced_subdag(const ComputeDag& dag,
                          const std::vector<NodeId>& nodes,
                          std::vector<NodeId>* local_of) {
  std::vector<NodeId> map(dag.num_nodes(), kInvalidNode);
  ComputeDag sub(dag.name() + "#sub");
  for (NodeId v : nodes) {
    map[v] = sub.add_node(dag.omega(v), dag.mu(v));
  }
  for (NodeId v : nodes) {
    for (NodeId c : dag.children(v)) {
      if (map[c] != kInvalidNode) sub.add_edge(map[v], map[c]);
    }
  }
  if (local_of != nullptr) *local_of = std::move(map);
  return sub;
}

ComputeDag quotient_graph(const ComputeDag& dag, const std::vector<int>& part,
                          int num_parts) {
  ComputeDag q(dag.name() + "#quotient");
  std::vector<double> omega(num_parts, 0.0), mu(num_parts, 0.0);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    assert(part[v] >= 0 && part[v] < num_parts);
    omega[part[v]] += dag.omega(v);
    mu[part[v]] += dag.mu(v);
  }
  for (int i = 0; i < num_parts; ++i) q.add_node(omega[i], mu[i]);
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      if (part[u] != part[v]) q.add_edge(part[u], part[v]);
    }
  }
  return q;
}

std::size_t cut_edges(const ComputeDag& dag, const std::vector<int>& part) {
  std::size_t cut = 0;
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      if (part[u] != part[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace mbsp
