#include "src/graph/gadgets.hpp"

#include <cassert>

namespace mbsp {

ZipperGadget zipper_gadget(int d, int m) {
  assert(d >= 1 && m >= 1);
  ZipperGadget out;
  out.d = d;
  out.m = m;
  out.dag.set_name("zipper_d" + std::to_string(d) + "_m" + std::to_string(m));
  for (int i = 0; i < d; ++i) out.h1.push_back(out.dag.add_node(1, 1));
  for (int i = 0; i < d; ++i) out.h2.push_back(out.dag.add_node(1, 1));
  for (int i = 1; i <= m; ++i) {
    const NodeId vi = out.dag.add_node(1, 1);
    const NodeId ui = out.dag.add_node(1, 1);
    if (i >= 2) {
      out.dag.add_edge(out.v.back(), vi);
      out.dag.add_edge(out.u.back(), ui);
    }
    // Odd i: u_i from H1, v_i from H2; even i: swapped.
    const auto& to_u = (i % 2 == 1) ? out.h1 : out.h2;
    const auto& to_v = (i % 2 == 1) ? out.h2 : out.h1;
    for (NodeId h : to_u) out.dag.add_edge(h, ui);
    for (NodeId h : to_v) out.dag.add_edge(h, vi);
    out.v.push_back(vi);
    out.u.push_back(ui);
  }
  return out;
}

PartitionGadget lemma51_gadget(const std::vector<double>& weights) {
  PartitionGadget out;
  out.dag.set_name("lemma51_partition");
  for (double a : weights) {
    out.items.push_back(out.dag.add_node(0, a));
    out.alpha += a;
  }
  out.v_prime = out.dag.add_node(0, out.alpha / 2);
  // Negligibly small outputs for the compute nodes, as in the proof.
  constexpr double kTinyMu = 1e-6;
  out.w1 = out.dag.add_node(1, kTinyMu);
  for (NodeId v : out.items) out.dag.add_edge(v, out.w1);
  // w2 depends on w1 so the three computations are forced into the order
  // w1 (items in cache), w2 (v' in cache), w3 (items again).
  out.w2 = out.dag.add_node(1, kTinyMu);
  out.dag.add_edge(out.v_prime, out.w2);
  out.dag.add_edge(out.w1, out.w2);
  // w3 depends on w2 so the three computations are forced into this order.
  out.w3 = out.dag.add_node(1, kTinyMu);
  out.dag.add_edge(out.w2, out.w3);
  for (NodeId v : out.items) out.dag.add_edge(v, out.w3);
  return out;
}

PairChainsGadget lemma53_gadget(int num_processors, double heavy_weight) {
  assert(num_processors >= 2 && num_processors % 2 == 0);
  PairChainsGadget out;
  out.pairs = num_processors / 2;
  out.heavy = heavy_weight;
  out.dag.set_name("lemma53_pairs_P" + std::to_string(num_processors));
  out.source = out.dag.add_node(0, 1);
  out.u.resize(out.pairs);
  out.v.resize(out.pairs);
  for (int i = 0; i < out.pairs; ++i) {
    for (int j = 0; j < out.pairs; ++j) {
      const double w = (i == j) ? heavy_weight : 1.0;
      const NodeId uij = out.dag.add_node(w, 1);
      const NodeId vij = out.dag.add_node(w, 1);
      if (j == 0) {
        out.dag.add_edge(out.source, uij);
        out.dag.add_edge(out.source, vij);
      } else {
        // Both stage-(j-1) nodes feed both stage-j nodes of the pair.
        out.dag.add_edge(out.u[i][j - 1], uij);
        out.dag.add_edge(out.v[i][j - 1], uij);
        out.dag.add_edge(out.u[i][j - 1], vij);
        out.dag.add_edge(out.v[i][j - 1], vij);
      }
      out.u[i].push_back(uij);
      out.v[i].push_back(vij);
    }
  }
  return out;
}

SyncGapGadget lemma54_gadget(double z) {
  SyncGapGadget out;
  out.z = z;
  out.dag.set_name("lemma54_syncgap");
  out.s = out.dag.add_node(0, 1);
  out.u1 = out.dag.add_node(z - 1, 1);
  out.u2 = out.dag.add_node(z - 1, 1);
  out.u3 = out.dag.add_node(2 * z, 1);
  out.u4 = out.dag.add_node(2 * z, 1);
  out.w1 = out.dag.add_node(2 * z, 1);
  out.w2 = out.dag.add_node(z - 1, 1);
  out.w3 = out.dag.add_node(z - 1, 1);
  out.w4 = out.dag.add_node(z - 1, 1);
  out.w = out.dag.add_node(z - 1, 1);
  out.dag.add_edge(out.s, out.u1);
  out.dag.add_edge(out.s, out.u2);
  out.dag.add_edge(out.s, out.w1);
  out.dag.add_edge(out.s, out.w);
  out.dag.add_edge(out.u1, out.u3);
  out.dag.add_edge(out.u1, out.u4);
  out.dag.add_edge(out.u2, out.u3);
  out.dag.add_edge(out.u2, out.u4);
  out.dag.add_edge(out.w1, out.w2);
  out.dag.add_edge(out.w1, out.w3);
  out.dag.add_edge(out.w1, out.w4);
  return out;
}

RecomputeGadget lemma61_gadget(int d, int m) {
  assert(d >= 2 && m >= 1);
  RecomputeGadget out;
  out.d = d;
  out.m = m;
  out.dag.set_name("lemma61_d" + std::to_string(d) + "_m" + std::to_string(m));
  out.w = out.dag.add_node(0, 1);
  for (int i = 0; i < d; ++i) {
    const NodeId ui = out.dag.add_node(1, 1);
    const NodeId upi = out.dag.add_node(1, 1);
    out.dag.add_edge(out.w, ui);
    out.dag.add_edge(out.w, upi);
    if (i > 0) {
      out.dag.add_edge(out.u.back(), ui);
      out.dag.add_edge(out.u_prime.back(), upi);
    }
    out.u.push_back(ui);
    out.u_prime.push_back(upi);
  }
  for (int i = 0; i <= m; ++i) {
    const NodeId vi = out.dag.add_node(1, 1);
    out.dag.add_edge(out.w, vi);
    if (i == 0) {
      out.dag.add_edge(out.u.back(), vi);
      out.dag.add_edge(out.u_prime.back(), vi);
    } else {
      out.dag.add_edge(out.v.back(), vi);
      out.dag.add_edge((i % 2 == 1) ? out.u.back() : out.u_prime.back(), vi);
    }
    out.v.push_back(vi);
  }
  return out;
}

}  // namespace mbsp
