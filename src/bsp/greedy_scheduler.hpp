#pragma once
// BSPg-style greedy list scheduler (after Papp et al. [36]): grows
// supersteps one at a time; inside a superstep, ready nodes are assigned to
// processors greedily, balancing work against communication by preferring
// the processor that already holds the node's parents. A node whose parent
// was computed in the *current* superstep on a *different* processor must
// wait for the next superstep, which is what ends supersteps naturally.

#include "src/bsp/bsp_schedule.hpp"

namespace mbsp {

class GreedyBspScheduler : public BspScheduler {
 public:
  struct Params {
    /// Weight of parent locality (mu of local parents) in the assignment
    /// score, relative to one unit of processor work.
    double locality_weight = 2.0;
    /// A processor may exceed the least-loaded processor's work by at most
    /// this factor of the average node weight before it stops receiving
    /// nodes in the current superstep.
    double imbalance_slack = 4.0;
  };

  GreedyBspScheduler() = default;
  explicit GreedyBspScheduler(Params params) : params_(params) {}

  BspSchedule schedule(const ComputeDag& dag, const Architecture& arch) override;
  std::string name() const override { return "bspg"; }

 private:
  Params params_;
};

}  // namespace mbsp
