#include "src/bsp/cilk_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "src/graph/topology.hpp"

namespace mbsp {

BspSchedule CilkScheduler::schedule(const ComputeDag& dag,
                                    const Architecture& arch) {
  const NodeId n = dag.num_nodes();
  const int P = arch.num_processors;
  Rng rng(seed_);

  BspSchedule out;
  out.proc.assign(n, -1);
  out.superstep.assign(n, -1);

  std::vector<int> waiting(n, 0);
  std::vector<std::deque<NodeId>> deque_of(P);
  {
    std::vector<NodeId> initial;
    for (NodeId v = 0; v < n; ++v) {
      if (dag.is_source(v)) continue;
      for (NodeId u : dag.parents(v)) {
        if (!dag.is_source(u)) ++waiting[v];
      }
      if (waiting[v] == 0) initial.push_back(v);
    }
    // Initial ready tasks are dealt round-robin, as if spawned by a root.
    for (std::size_t i = 0; i < initial.size(); ++i) {
      deque_of[i % P].push_back(initial[i]);
    }
  }

  // Event-driven simulation: worker p is busy with `running[p]` until
  // `free_at[p]`; idle workers pop locally (back) or steal (front).
  std::vector<double> free_at(P, 0.0);
  std::vector<NodeId> running(P, kInvalidNode);
  std::size_t remaining = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!dag.is_source(v)) ++remaining;
  }

  double clock = 0.0;
  std::size_t done = 0;
  while (done < remaining) {
    // Dispatch work to every idle processor.
    bool dispatched_any = false;
    for (int p = 0; p < P; ++p) {
      if (running[p] != kInvalidNode || free_at[p] > clock) continue;
      NodeId task = kInvalidNode;
      if (!deque_of[p].empty()) {
        task = deque_of[p].back();
        deque_of[p].pop_back();
      } else {
        // Steal attempts: random victims, oldest task first.
        for (int attempt = 0; attempt < 2 * P && task == kInvalidNode;
             ++attempt) {
          const int victim = static_cast<int>(rng.index(P));
          if (victim != p && !deque_of[victim].empty()) {
            task = deque_of[victim].front();
            deque_of[victim].pop_front();
          }
        }
      }
      if (task != kInvalidNode) {
        running[p] = task;
        free_at[p] = clock + std::max(dag.omega(task), 1e-9);
        out.proc[task] = p;
        out.order.push_back(task);
        dispatched_any = true;
      }
    }
    (void)dispatched_any;
    // Advance to the next completion.
    double next = std::numeric_limits<double>::infinity();
    for (int p = 0; p < P; ++p) {
      if (running[p] != kInvalidNode) next = std::min(next, free_at[p]);
    }
    clock = next;
    for (int p = 0; p < P; ++p) {
      if (running[p] == kInvalidNode || free_at[p] > clock) continue;
      const NodeId finished = running[p];
      running[p] = kInvalidNode;
      ++done;
      for (NodeId c : dag.children(finished)) {
        if (--waiting[c] == 0) deque_of[p].push_back(c);
      }
    }
  }

  // Lift to supersteps: the minimum level consistent with cross-processor
  // edges needing a superstep boundary and the per-processor execution
  // order being nondecreasing.
  std::vector<int> last_step(P, 0);
  std::vector<int> pos(n, -1);
  for (std::size_t i = 0; i < out.order.size(); ++i) {
    pos[out.order[i]] = static_cast<int>(i);
  }
  for (NodeId v : out.order) {
    int step = last_step[out.proc[v]];
    for (NodeId u : dag.parents(v)) {
      if (dag.is_source(u)) continue;
      if (out.proc[u] == out.proc[v]) {
        step = std::max(step, out.superstep[u]);
      } else {
        step = std::max(step, out.superstep[u] + 1);
      }
    }
    out.superstep[v] = step;
    last_step[out.proc[v]] = step;
  }
  return out;
}

}  // namespace mbsp
