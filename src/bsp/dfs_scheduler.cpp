#include "src/bsp/dfs_scheduler.hpp"

#include <vector>

namespace mbsp {

BspSchedule DfsScheduler::schedule(const ComputeDag& dag,
                                   const Architecture& arch) {
  (void)arch;  // always runs on processor 0
  const NodeId n = dag.num_nodes();
  BspSchedule out;
  out.proc.assign(n, -1);
  out.superstep.assign(n, -1);

  // Iterative DFS from each sink: a node is emitted once all its parents
  // have been emitted (post-order over the reversed graph), which yields a
  // topological order that dives along dependency chains. Unemitted
  // parents are re-pushed even when already on the stack (duplicates pop
  // harmlessly); suppressing them can livelock when a pending parent sits
  // below the current node.
  std::vector<char> emitted(n, 0);
  std::vector<NodeId> stack;
  auto visit = [&](NodeId root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      if (emitted[v] || dag.is_source(v)) {
        stack.pop_back();
        continue;
      }
      bool parents_done = true;
      for (NodeId u : dag.parents(v)) {
        if (!dag.is_source(u) && !emitted[u]) {
          parents_done = false;
          stack.push_back(u);
        }
      }
      if (parents_done) {
        stack.pop_back();
        emitted[v] = 1;
        out.order.push_back(v);
        out.proc[v] = 0;
        out.superstep[v] = 0;
      }
    }
  };
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_sink(v) && !dag.is_source(v)) visit(v);
  }
  return out;
}

}  // namespace mbsp
