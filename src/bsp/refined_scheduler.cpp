#include "src/bsp/refined_scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/topology.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace mbsp {

BspSchedule RefinedBspScheduler::lift_assignment(const ComputeDag& dag,
                                                 const std::vector<int>& proc) {
  const NodeId n = dag.num_nodes();
  BspSchedule out;
  out.proc = proc;
  out.superstep.assign(n, -1);
  const auto topo = topological_order(dag);
  std::vector<int> topo_pos = order_positions(topo, n);
  for (NodeId v : topo) {
    if (dag.is_source(v)) {
      out.proc[v] = -1;
      continue;
    }
    int step = 0;
    for (NodeId u : dag.parents(v)) {
      if (dag.is_source(u)) continue;
      step = std::max(step, out.superstep[u] +
                                (proc[u] == proc[v] ? 0 : 1));
    }
    out.superstep[v] = step;
  }
  for (NodeId v : topo) {
    if (!dag.is_source(v)) out.order.push_back(v);
  }
  std::stable_sort(out.order.begin(), out.order.end(),
                   [&](NodeId a, NodeId b) {
                     if (out.superstep[a] != out.superstep[b]) {
                       return out.superstep[a] < out.superstep[b];
                     }
                     return topo_pos[a] < topo_pos[b];
                   });
  return out;
}

BspSchedule RefinedBspScheduler::schedule(const ComputeDag& dag,
                                          const Architecture& arch) {
  GreedyBspScheduler greedy;
  BspSchedule best = greedy.schedule(dag, arch);
  std::vector<int> assign = best.proc;
  // Normalize through the lift so moves and baseline are comparable.
  best = lift_assignment(dag, assign);
  double best_cost = bsp_cost(dag, arch, best);

  std::vector<NodeId> movable;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!dag.is_source(v)) movable.push_back(v);
  }
  if (movable.empty()) return best;

  Rng rng(params_.seed);
  Deadline deadline(params_.budget_ms);
  std::vector<int> current = assign;
  double current_cost = best_cost;

  for (int round = 0; round < params_.max_rounds && !deadline.expired();
       ++round) {
    const NodeId v = movable[rng.index(movable.size())];
    const int old_proc = current[v];
    int best_proc = old_proc;
    double best_move_cost = current_cost;
    for (int p = 0; p < arch.num_processors; ++p) {
      if (p == old_proc) continue;
      current[v] = p;
      const BspSchedule lifted = lift_assignment(dag, current);
      const double cost = bsp_cost(dag, arch, lifted);
      if (cost < best_move_cost) {
        best_move_cost = cost;
        best_proc = p;
      }
    }
    current[v] = best_proc;
    current_cost = best_move_cost;
    if (current_cost < best_cost) {
      best_cost = current_cost;
      best = lift_assignment(dag, current);
    }
  }
  return best;
}

}  // namespace mbsp
