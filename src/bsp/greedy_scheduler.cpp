#include "src/bsp/greedy_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "src/graph/topology.hpp"

namespace mbsp {

BspSchedule GreedyBspScheduler::schedule(const ComputeDag& dag,
                                         const Architecture& arch) {
  const NodeId n = dag.num_nodes();
  const int P = arch.num_processors;
  BspSchedule out;
  out.proc.assign(n, -1);
  out.superstep.assign(n, -1);

  // Priority: bottom level (omega-weighted longest path to a sink), so the
  // critical path drains first.
  std::vector<double> bottom(n, 0.0);
  {
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId v = *it;
      double best = 0;
      for (NodeId c : dag.children(v)) best = std::max(best, bottom[c]);
      bottom[v] = best + dag.omega(v);
    }
  }

  const double avg_omega =
      dag.num_nodes() > 0 ? dag.total_omega() / dag.num_nodes() : 1.0;
  const double slack = params_.imbalance_slack * std::max(avg_omega, 1.0);

  // unscheduled parents count; sources count as scheduled (they are data).
  std::vector<int> waiting(n, 0);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_source(v)) continue;
    for (NodeId u : dag.parents(v)) {
      if (!dag.is_source(u)) ++waiting[v];
    }
    if (waiting[v] == 0) ready.push_back(v);
  }

  std::vector<double> work(P, 0.0);         // work in current superstep
  std::vector<int> step_of_assignment(n, -1);
  int superstep = 0;
  std::vector<NodeId> next_ready;  // becomes ready only next superstep

  while (!ready.empty() || !next_ready.empty()) {
    if (ready.empty()) {
      // Close the superstep: blocked nodes become assignable.
      ++superstep;
      std::fill(work.begin(), work.end(), 0.0);
      ready = std::move(next_ready);
      next_ready.clear();
    }
    // Pick the ready node with the highest bottom level.
    std::size_t best_idx = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (bottom[ready[i]] > bottom[ready[best_idx]]) best_idx = i;
    }
    const NodeId v = ready[best_idx];
    ready[best_idx] = ready.back();
    ready.pop_back();

    // Eligible processors: parents computed in this superstep force v onto
    // that same processor (cross-processor same-superstep edges are
    // invalid); conflicting forcings postpone v.
    int forced = -1;
    bool postpone = false;
    for (NodeId u : dag.parents(v)) {
      if (dag.is_source(u)) continue;
      if (step_of_assignment[u] == superstep) {
        if (forced == -1) {
          forced = out.proc[u];
        } else if (forced != out.proc[u]) {
          postpone = true;
        }
      }
    }
    if (postpone) {
      next_ready.push_back(v);
      continue;
    }

    double min_work = *std::min_element(work.begin(), work.end());
    int best_proc = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int p = 0; p < P; ++p) {
      if (forced != -1 && p != forced) continue;
      if (forced == -1 && work[p] - min_work > slack) continue;
      double locality = 0;
      for (NodeId u : dag.parents(v)) {
        if (!dag.is_source(u) && out.proc[u] == p) locality += dag.mu(u);
      }
      const double score = params_.locality_weight * locality - work[p];
      if (score > best_score) {
        best_score = score;
        best_proc = p;
      }
    }
    if (best_proc == -1) {
      // All processors over the slack; postpone to the next superstep.
      next_ready.push_back(v);
      continue;
    }

    out.proc[v] = best_proc;
    out.superstep[v] = superstep;
    step_of_assignment[v] = superstep;
    work[best_proc] += dag.omega(v);
    out.order.push_back(v);
    for (NodeId c : dag.children(v)) {
      if (--waiting[c] == 0) {
        // c may still be assignable in this superstep (same processor).
        ready.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace mbsp
