#pragma once
// Work-stealing scheduler in the style of Cilk (Blumofe & Leiserson):
// an event-driven simulation of P workers with per-worker deques. A
// finished node pushes its newly-ready children onto the local deque
// (LIFO); idle workers steal the oldest task from a random victim.
// The resulting processor assignment and execution order are then lifted
// to a BSP schedule with the minimum number of supersteps consistent with
// cross-processor dependencies. This is the paper's "practical" stage-1
// baseline (combined with LRU in stage 2).

#include "src/bsp/bsp_schedule.hpp"
#include "src/util/rng.hpp"

namespace mbsp {

class CilkScheduler : public BspScheduler {
 public:
  explicit CilkScheduler(std::uint64_t seed = 1) : seed_(seed) {}

  BspSchedule schedule(const ComputeDag& dag, const Architecture& arch) override;
  std::string name() const override { return "cilk"; }

 private:
  std::uint64_t seed_;
};

}  // namespace mbsp
