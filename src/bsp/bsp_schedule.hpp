#pragma once
// Memory-oblivious BSP schedules: stage 1 of the two-stage approach
// (Section 4). A BSP schedule assigns every non-source node a processor
// and a superstep; source nodes are data, loaded on demand by stage 2.
//
// Validity: for every edge (u, v) with u non-source, superstep(u) <
// superstep(v) if the processors differ, superstep(u) <= superstep(v)
// otherwise. `order` fixes the intra-superstep execution order that the
// two-stage converter will follow (it must be topological per processor).

#include <string>
#include <vector>

#include "src/model/instance.hpp"

namespace mbsp {

struct BspSchedule {
  std::vector<int> proc;       ///< node -> processor (-1 for sources)
  std::vector<int> superstep;  ///< node -> superstep (-1 for sources)
  /// Global execution order over non-source nodes; per processor it must be
  /// topological and nondecreasing in superstep.
  std::vector<NodeId> order;

  int num_supersteps() const;
};

struct BspValidation {
  bool ok = true;
  std::string error;
  explicit operator bool() const { return ok; }
};

BspValidation validate_bsp(const ComputeDag& dag, int num_processors,
                           const BspSchedule& sched);

/// BSP cost in an h-relation model: per superstep, max_p work +
/// g * max_p (sent_p + received_p) + L. A non-source value crossing
/// processors is sent once per (value, consumer processor); source values
/// are received once per (value, consuming processor).
double bsp_cost(const ComputeDag& dag, const Architecture& arch,
                const BspSchedule& sched);

/// Base interface so benches can swap stage-1 schedulers uniformly.
class BspScheduler {
 public:
  virtual ~BspScheduler() = default;
  virtual BspSchedule schedule(const ComputeDag& dag,
                               const Architecture& arch) = 0;
  virtual std::string name() const = 0;
};

}  // namespace mbsp
