#pragma once
// Single-processor depth-first scheduler. With P = 1 the MBSP problem is
// the red-blue pebble game with compute costs; the paper uses a DFS
// ordering + clairvoyant eviction as the (surprisingly strong) baseline.
// The DFS emits a node as soon as possible after its last parent, which
// gives good temporal locality for the cache stage.

#include "src/bsp/bsp_schedule.hpp"

namespace mbsp {

class DfsScheduler : public BspScheduler {
 public:
  BspSchedule schedule(const ComputeDag& dag, const Architecture& arch) override;
  std::string name() const override { return "dfs"; }
};

}  // namespace mbsp
