#include "src/bsp/bsp_schedule.hpp"

#include <algorithm>
#include <set>

#include "src/graph/topology.hpp"

namespace mbsp {

int BspSchedule::num_supersteps() const {
  int count = 0;
  for (int s : superstep) count = std::max(count, s + 1);
  return count;
}

BspValidation validate_bsp(const ComputeDag& dag, int num_processors,
                           const BspSchedule& sched) {
  const NodeId n = dag.num_nodes();
  auto fail = [](std::string msg) { return BspValidation{false, std::move(msg)}; };
  if (static_cast<NodeId>(sched.proc.size()) != n ||
      static_cast<NodeId>(sched.superstep.size()) != n) {
    return fail("assignment vectors have wrong size");
  }
  std::size_t scheduled = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_source(v)) continue;
    ++scheduled;
    if (sched.proc[v] < 0 || sched.proc[v] >= num_processors) {
      return fail("node " + std::to_string(v) + " has no valid processor");
    }
    if (sched.superstep[v] < 0) {
      return fail("node " + std::to_string(v) + " has no valid superstep");
    }
    for (NodeId u : dag.parents(v)) {
      if (dag.is_source(u)) continue;
      if (sched.proc[u] == sched.proc[v]) {
        if (sched.superstep[u] > sched.superstep[v]) {
          return fail("same-processor edge " + std::to_string(u) + "->" +
                      std::to_string(v) + " goes backwards in supersteps");
        }
      } else if (sched.superstep[u] >= sched.superstep[v]) {
        return fail("cross-processor edge " + std::to_string(u) + "->" +
                    std::to_string(v) + " does not advance a superstep");
      }
    }
  }
  // Order: exactly the non-source nodes, once each, topological per
  // processor and nondecreasing in superstep.
  if (sched.order.size() != scheduled) {
    return fail("order must contain every non-source node exactly once");
  }
  std::vector<int> pos(n, -1);
  for (std::size_t i = 0; i < sched.order.size(); ++i) {
    const NodeId v = sched.order[i];
    if (v < 0 || v >= n || dag.is_source(v) || pos[v] != -1) {
      return fail("order contains an invalid or repeated node");
    }
    pos[v] = static_cast<int>(i);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_source(v)) continue;
    for (NodeId u : dag.parents(v)) {
      if (dag.is_source(u)) continue;
      if (sched.proc[u] == sched.proc[v] && pos[u] > pos[v]) {
        return fail("order is not topological on processor " +
                    std::to_string(sched.proc[v]));
      }
    }
  }
  std::vector<int> last_step(num_processors, -1);
  for (NodeId v : sched.order) {
    int& last = last_step[sched.proc[v]];
    if (sched.superstep[v] < last) {
      return fail("order decreases in supersteps on processor " +
                  std::to_string(sched.proc[v]));
    }
    last = sched.superstep[v];
  }
  return {};
}

double bsp_cost(const ComputeDag& dag, const Architecture& arch,
                const BspSchedule& sched) {
  const int S = sched.num_supersteps();
  const int P = arch.num_processors;
  if (S == 0) return 0;
  std::vector<std::vector<double>> work(S, std::vector<double>(P, 0.0));
  std::vector<std::vector<double>> sent(S, std::vector<double>(P, 0.0));
  std::vector<std::vector<double>> recv(S, std::vector<double>(P, 0.0));

  // (value, consumer processor) pairs already counted.
  std::set<std::pair<NodeId, int>> delivered;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.is_source(v)) continue;
    work[sched.superstep[v]][sched.proc[v]] += dag.omega(v);
    for (NodeId u : dag.parents(v)) {
      const int pv = sched.proc[v];
      if (dag.is_source(u)) {
        if (delivered.emplace(u, pv).second) {
          // Loaded from slow memory before the consumer's superstep; counted
          // as received in the consumer's first-use superstep.
          recv[sched.superstep[v]][pv] += dag.mu(u);
        }
        continue;
      }
      if (sched.proc[u] != pv && delivered.emplace(u, pv).second) {
        sent[sched.superstep[u]][sched.proc[u]] += dag.mu(u);
        recv[sched.superstep[u]][pv] += dag.mu(u);
      }
    }
  }
  double total = 0;
  for (int s = 0; s < S; ++s) {
    double max_work = 0, max_h = 0;
    for (int p = 0; p < P; ++p) {
      max_work = std::max(max_work, work[s][p]);
      max_h = std::max(max_h, sent[s][p] + recv[s][p]);
    }
    total += max_work + arch.g * max_h + arch.L;
  }
  return total;
}

}  // namespace mbsp
