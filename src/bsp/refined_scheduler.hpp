#pragma once
// Stage-1 "ILP-BSP" stand-in: an anytime local search over processor
// assignments optimizing the exact BSP cost, warm-started from the greedy
// scheduler. The paper's stronger baseline formulates BSP scheduling as a
// separate ILP and runs COPT on it; this plays the same role — a
// memory-oblivious schedule that is near-optimal for the BSP objective —
// with our in-house anytime machinery (see DESIGN.md, substitutions).

#include <cstdint>

#include "src/bsp/bsp_schedule.hpp"

namespace mbsp {

class RefinedBspScheduler : public BspScheduler {
 public:
  struct Params {
    double budget_ms = 500;  ///< local-search time budget
    std::uint64_t seed = 7;
    int max_rounds = 200000;
  };

  RefinedBspScheduler() = default;
  explicit RefinedBspScheduler(Params params) : params_(params) {}

  BspSchedule schedule(const ComputeDag& dag, const Architecture& arch) override;
  std::string name() const override { return "ilp-bsp"; }

  /// Re-derives the minimum superstep levels and a per-processor
  /// nondecreasing topological order for a fixed processor assignment.
  static BspSchedule lift_assignment(const ComputeDag& dag,
                                     const std::vector<int>& proc);

 private:
  Params params_;
};

}  // namespace mbsp
