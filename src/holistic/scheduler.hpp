#pragma once
// Top-level holistic MBSP scheduler facade: warm-starts from the two-stage
// baseline and improves it with the LNS (small DAGs) or the
// divide-and-conquer pipeline (large DAGs), mirroring how the paper
// deploys the full ILP on the tiny dataset and the divide-and-conquer ILP
// on the small dataset.

#include "src/holistic/divide_conquer.hpp"
#include "src/holistic/lns.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {

struct HolisticOptions {
  double budget_ms = 2000;  ///< total optimization budget
  CostModel cost = CostModel::kSynchronous;
  bool allow_recompute = true;
  std::uint64_t seed = 42;
  /// LNS iteration cap; with budget_ms = 0 this makes runs reproducible
  /// independent of wall-clock speed (see SchedulerOptions).
  long max_iterations = 2'000'000;
  /// DAGs larger than this use divide-and-conquer (the paper's full ILP
  /// "is not viable anymore" past the tiny dataset).
  int divide_conquer_threshold = 120;
  int max_part_size = 60;
  BaselineKind warm_start = BaselineKind::kGreedyClairvoyant;
};

struct HolisticOutcome {
  MbspSchedule schedule;
  ComputePlan plan;
  double cost = 0;
  double baseline_cost = 0;  ///< cost of the two-stage warm start
  bool used_divide_conquer = false;
};

/// Schedules from scratch (baseline + improvement).
HolisticOutcome holistic_schedule(const MbspInstance& inst,
                                  const HolisticOptions& options = {});

/// Improves a caller-provided initial plan (e.g. a different baseline).
HolisticOutcome holistic_improve(const MbspInstance& inst,
                                 const ComputePlan& initial,
                                 const HolisticOptions& options = {});

/// Cost of a schedule under the option's cost model.
double schedule_cost(const MbspInstance& inst, const MbspSchedule& sched,
                     CostModel cost);

}  // namespace mbsp
