#include "src/holistic/partition.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/graph/topology.hpp"
#include "src/ilp/solver.hpp"
#include "src/util/rng.hpp"

namespace mbsp {

ilp::Model build_bipartition_ilp(const ComputeDag& dag, int lo_ones,
                                 int hi_ones) {
  using ilp::LinExpr;
  using ilp::Sense;
  ilp::Model model("acyclic_bipartition_" + dag.name());
  const NodeId n = dag.num_nodes();
  std::vector<ilp::VarId> part(n);
  for (NodeId v = 0; v < n; ++v) {
    part[v] = model.add_binary("part_" + std::to_string(v));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : dag.children(u)) {
      // Acyclicity: part[u] <= part[v].
      LinExpr acyclic;
      acyclic.add(part[u], 1.0);
      acyclic.add(part[v], -1.0);
      model.add_constraint(std::move(acyclic), Sense::kLe, 0.0);
      // Cut indicator: y >= part[v] - part[u]; objective coefficient 1.
      const ilp::VarId y = model.add_binary(
          "cut_" + std::to_string(u) + "_" + std::to_string(v));
      LinExpr cut;
      cut.add(y, 1.0);
      cut.add(part[v], -1.0);
      cut.add(part[u], 1.0);
      model.add_constraint(std::move(cut), Sense::kGe, 0.0);
      model.set_objective_coeff(y, 1.0);
    }
  }
  LinExpr balance_lo, balance_hi;
  for (NodeId v = 0; v < n; ++v) {
    balance_lo.add(part[v], 1.0);
    balance_hi.add(part[v], 1.0);
  }
  model.add_constraint(std::move(balance_lo), Sense::kGe,
                       static_cast<double>(lo_ones));
  model.add_constraint(std::move(balance_hi), Sense::kLe,
                       static_cast<double>(hi_ones));
  return model;
}

BipartitionResult greedy_bipartition(const ComputeDag& dag,
                                     const BipartitionOptions& options) {
  const NodeId n = dag.num_nodes();
  const int lo = std::max(1, static_cast<int>(options.min_fraction * n));
  const int hi = n - lo;
  Rng rng(options.seed);
  BipartitionResult best;
  best.cut = SIZE_MAX;

  // Several randomized topological orders; every balanced prefix is a
  // candidate down-set.
  for (int attempt = 0; attempt < 8; ++attempt) {
    // Kahn with random tie-breaking.
    std::vector<int> indeg(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      indeg[v] = static_cast<int>(dag.parents(v).size());
    }
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < n; ++v) {
      if (indeg[v] == 0) ready.push_back(v);
    }
    std::vector<NodeId> order;
    while (!ready.empty()) {
      const std::size_t pick = rng.index(ready.size());
      const NodeId v = ready[pick];
      ready[pick] = ready.back();
      ready.pop_back();
      order.push_back(v);
      for (NodeId c : dag.children(v)) {
        if (--indeg[c] == 0) ready.push_back(c);
      }
    }
    // Sweep prefixes, tracking the cut incrementally: when node v moves
    // into part 0 (the prefix), edges from v add to the cut and edges into
    // v from part 0 leave the cut.
    std::vector<int> part(n, 1);
    std::size_t cut = 0;
    for (int prefix = 0; prefix < hi; ++prefix) {
      const NodeId v = order[prefix];
      part[v] = 0;
      cut += dag.children(v).size();
      for (NodeId u : dag.parents(v)) {
        if (part[u] == 0) --cut;
      }
      const int zeros = prefix + 1;
      const int ones = n - zeros;
      if (zeros >= lo && ones >= lo && cut < best.cut) {
        best.cut = cut;
        best.part = part;
      }
    }
  }
  if (best.part.empty()) {  // degenerate: tiny graphs
    best.part.assign(n, 1);
    for (NodeId v = 0; v < n / 2; ++v) best.part[v] = 0;
    best.cut = cut_edges(dag, best.part);
  }

  // FM-style refinement: move a node across if the down-set property and
  // balance are preserved and the cut does not increase.
  bool improved = true;
  int zeros = 0;
  for (NodeId v = 0; v < n; ++v) zeros += best.part[v] == 0;
  while (improved) {
    improved = false;
    for (NodeId v = 0; v < n; ++v) {
      const int side = best.part[v];
      // 0 -> 1 requires all children on side 1 and balance; gain = edges
      // from part-0 parents (newly cut) vs edges to children (no longer
      // cut ... children are all on 1, so edges v->c were cut, now inside).
      if (side == 0) {
        if (zeros - 1 < lo) continue;
        bool movable = true;
        for (NodeId c : dag.children(v)) movable &= best.part[c] == 1;
        if (!movable) continue;
        long gain = static_cast<long>(dag.children(v).size());
        for (NodeId u : dag.parents(v)) {
          if (best.part[u] == 0) gain -= 1;
        }
        if (gain > 0) {
          best.part[v] = 1;
          best.cut -= static_cast<std::size_t>(gain);
          --zeros;
          improved = true;
        }
      } else {
        if (n - zeros - 1 < lo) continue;
        bool movable = true;
        for (NodeId u : dag.parents(v)) movable &= best.part[u] == 0;
        if (!movable) continue;
        long gain = static_cast<long>(dag.parents(v).size());
        for (NodeId c : dag.children(v)) {
          if (best.part[c] == 1) gain -= 1;
        }
        if (gain > 0) {
          best.part[v] = 0;
          best.cut -= static_cast<std::size_t>(gain);
          ++zeros;
          improved = true;
        }
      }
    }
  }
  best.cut = cut_edges(dag, best.part);  // recompute defensively
  return best;
}

BipartitionResult acyclic_bipartition(const ComputeDag& dag,
                                      const BipartitionOptions& options) {
  BipartitionResult greedy = greedy_bipartition(dag, options);
  if (!options.use_ilp) return greedy;

  const NodeId n = dag.num_nodes();
  const int lo = std::max(1, static_cast<int>(options.min_fraction * n));
  ilp::Model model = build_bipartition_ilp(dag, lo, n - lo);

  // Warm start: part variables from the greedy solution, cut indicators
  // set accordingly (variable order: per edge, after its nodes — rebuild
  // by evaluating the model's feasibility on a constructed vector).
  std::vector<double> warm(model.num_vars(), 0.0);
  {
    int next = 0;
    for (NodeId v = 0; v < n; ++v) {
      warm[next++] = greedy.part[v];
    }
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : dag.children(u)) {
        warm[next++] =
            (greedy.part[u] == 0 && greedy.part[v] == 1) ? 1.0 : 0.0;
      }
    }
  }

  ilp::MipOptions mip;
  mip.budget_ms = options.ilp_budget_ms;
  ilp::BranchAndBoundSolver solver(mip);
  const ilp::MipResult res = solver.solve(model, warm);
  if (res.status == ilp::MipStatus::kOptimal ||
      res.status == ilp::MipStatus::kFeasible) {
    BipartitionResult out;
    out.part.resize(n);
    for (NodeId v = 0; v < n; ++v) out.part[v] = res.x[v] > 0.5 ? 1 : 0;
    out.cut = cut_edges(dag, out.part);
    out.proven_optimal = res.status == ilp::MipStatus::kOptimal;
    if (out.cut <= greedy.cut) return out;
  }
  return greedy;
}

std::vector<std::vector<NodeId>> recursive_acyclic_partition(
    const ComputeDag& dag, int max_part_size,
    const BipartitionOptions& options) {
  struct Item {
    std::vector<NodeId> nodes;  // global ids
  };
  std::deque<Item> queue;
  {
    std::vector<NodeId> all(dag.num_nodes());
    for (NodeId v = 0; v < dag.num_nodes(); ++v) all[v] = v;
    queue.push_back({std::move(all)});
  }
  std::vector<std::vector<NodeId>> parts;
  BipartitionOptions sub = options;
  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    if (static_cast<int>(item.nodes.size()) <= max_part_size) {
      parts.push_back(std::move(item.nodes));
      continue;
    }
    std::vector<NodeId> local_of;
    const ComputeDag sub_dag = induced_subdag(dag, item.nodes, &local_of);
    sub.seed = sub.seed * 6364136223846793005ull + 1442695040888963407ull;
    const BipartitionResult split = acyclic_bipartition(sub_dag, sub);
    Item first, second;
    for (std::size_t i = 0; i < item.nodes.size(); ++i) {
      (split.part[i] == 0 ? first : second).nodes.push_back(item.nodes[i]);
    }
    if (first.nodes.empty() || second.nodes.empty()) {
      parts.push_back(std::move(item.nodes));  // could not split further
      continue;
    }
    // Part 0 precedes part 1 (all cut edges go 0 -> 1): keep that order.
    queue.push_front(std::move(second));
    queue.push_front(std::move(first));
  }

  // Order the parts topologically in the quotient graph. The quotient is
  // acyclic by construction (every split orients its cut edges 0 -> 1 and
  // the splits are nested), so this always succeeds.
  std::vector<int> part_of(dag.num_nodes(), -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (NodeId v : parts[i]) part_of[v] = static_cast<int>(i);
  }
  const ComputeDag quotient =
      quotient_graph(dag, part_of, static_cast<int>(parts.size()));
  const auto order = topological_order(quotient);
  assert(order.size() == parts.size() && "quotient must be acyclic");
  std::vector<std::vector<NodeId>> sorted;
  sorted.reserve(parts.size());
  for (NodeId q : order) sorted.push_back(std::move(parts[q]));
  return sorted;
}

}  // namespace mbsp
