#include "src/holistic/portfolio.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/util/thread_pool.hpp"
#include "src/util/timer.hpp"

namespace mbsp {

namespace {

/// SplitMix64 finalizer (Steele, Lea & Flood), the same mixer Rng seeding
/// uses: one well-mixed 64-bit output per distinct input.
std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Distinct salts keep the worker and epoch derivations from colliding
// (worker w epoch 0 must never share a seed with worker 0 epoch w).
constexpr std::uint64_t kWorkerSalt = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kEpochSalt = 0xD1B54A32D192ED03ull;

std::uint64_t epoch_seed(std::uint64_t worker_seed, int epoch) {
  if (epoch == 0) return worker_seed;
  return splitmix64_mix(worker_seed ^
                        (kEpochSalt * static_cast<std::uint64_t>(epoch)));
}

/// Iterations of epoch slice `epoch`: total / epochs, the remainder spread
/// over the leading epochs so the slices sum to the per-worker total.
long slice_iterations(long total, int epochs, int epoch) {
  const long base = total / epochs;
  const long remainder = total % epochs;
  return base + (epoch < remainder ? 1 : 0);
}

/// The diverse profile's cycle for workers >= 1 (worker 0 always runs the
/// base options so a one-worker portfolio reproduces improve_plan).
void apply_diverse_profile(int worker, LnsOptions* o) {
  if (worker == 0) return;
  switch ((worker - 1) % 3) {
    case 0:  // hotter annealing: accepts more uphill moves early
      o->initial_temperature_frac *= 2.0;
      break;
    case 1:  // colder: near-greedy descent
      o->initial_temperature_frac *= 0.5;
      break;
    case 2: {  // placement-only: freeze the superstep structure
      const unsigned placement = kMoveProc | kMoveSuperstep | kSwapProcs;
      if ((o->move_mask & placement) != 0) o->move_mask &= placement;
      break;
    }
  }
}

PortfolioResult from_single(LnsResult single) {
  PortfolioResult result;
  result.plan = std::move(single.plan);
  result.schedule = std::move(single.schedule);
  result.cost = single.cost;
  result.initial_cost = single.initial_cost;
  result.iterations = single.iterations;
  result.accepted = single.accepted;
  result.proposed_by_class = single.proposed_by_class;
  result.accepted_by_class = single.accepted_by_class;
  result.worker_costs = {single.cost};
  return result;
}

void accumulate(const LnsResult& slice, PortfolioResult* result) {
  result->iterations += slice.iterations;
  result->accepted += slice.accepted;
  for (int c = 0; c < kNumMoveClasses; ++c) {
    result->proposed_by_class[c] += slice.proposed_by_class[c];
    result->accepted_by_class[c] += slice.accepted_by_class[c];
  }
}

}  // namespace

const char* portfolio_profile_name(PortfolioProfile profile) {
  return profile == PortfolioProfile::kUniform ? "uniform" : "diverse";
}

bool parse_portfolio_profile(const std::string& name,
                             PortfolioProfile* profile) {
  if (name == "uniform") {
    *profile = PortfolioProfile::kUniform;
    return true;
  }
  if (name == "diverse") {
    *profile = PortfolioProfile::kDiverse;
    return true;
  }
  return false;
}

std::uint64_t portfolio_worker_seed(std::uint64_t seed, int worker) {
  if (worker == 0) return seed;
  return splitmix64_mix(seed ^
                        (kWorkerSalt * static_cast<std::uint64_t>(worker)));
}

LnsOptions portfolio_worker_options(const PortfolioOptions& options,
                                    int worker, int epoch) {
  const int epochs = std::max(1, options.epochs);
  LnsOptions o = options.lns;
  o.seed = epoch_seed(portfolio_worker_seed(options.lns.seed, worker), epoch);
  o.max_iterations = slice_iterations(options.lns.max_iterations, epochs, epoch);
  if (o.budget_ms > 0) o.budget_ms /= epochs;
  if (options.profile == PortfolioProfile::kDiverse) {
    apply_diverse_profile(worker, &o);
  }
  return o;
}

PortfolioLns::PortfolioLns(PortfolioOptions options)
    : options_(std::move(options)) {
  options_.workers = std::max(1, options_.workers);
  options_.epochs = std::max(1, options_.epochs);
}

PortfolioResult PortfolioLns::improve(const MbspInstance& inst,
                                      const ComputePlan& initial) const {
  if (options_.workers == 1 && options_.epochs == 1) {
    // Degenerate portfolio: a verbatim single-worker call (worker 0's
    // options at epoch 0 ARE the base LnsOptions), so the result is
    // bitwise identical to improve_plan by construction.
    return from_single(
        improve_plan(inst, initial, portfolio_worker_options(options_, 0, 0)));
  }
  return options_.free_running ? improve_free_running(inst, initial)
                               : improve_deterministic(inst, initial);
}

PortfolioResult PortfolioLns::improve_deterministic(
    const MbspInstance& inst, const ComputePlan& initial) const {
  const int W = options_.workers;
  const int E = options_.epochs;

  PortfolioResult result;
  result.initial_cost =
      evaluate_plan(inst, initial, options_.lns, &result.schedule);
  result.plan = initial;
  result.cost = result.initial_cost;

  struct WorkerState {
    ComputePlan plan;
    double cost = 0;
  };
  std::vector<WorkerState> workers(static_cast<std::size_t>(W));
  for (WorkerState& w : workers) {
    w.plan = initial;
    w.cost = result.initial_cost;
  }
  ComputePlan incumbent = initial;
  double incumbent_cost = result.initial_cost;

  ThreadPool pool(options_.threads != 0 ? options_.threads
                                        : static_cast<std::size_t>(W));
  const Deadline deadline(options_.lns.budget_ms);
  std::vector<LnsResult> slices(static_cast<std::size_t>(W));
  for (int e = 0; e < E; ++e) {
    // Exchange: a strictly better incumbent replaces a worker's plan; the
    // incumbent holder itself keeps its trajectory (strict <, so equal-
    // cost workers are left alone and diversity survives the exchange).
    for (WorkerState& w : workers) {
      if (incumbent_cost < w.cost) {
        w.plan = incumbent;
        w.cost = incumbent_cost;
      }
    }
    // Redistribute the remaining wall budget over the remaining epochs
    // (only meaningful under a wall-clock budget; 0 stays 0 = no
    // deadline, the reproducible configuration).
    const double slice_budget =
        options_.lns.budget_ms <= 0
            ? options_.lns.budget_ms
            : std::max(1.0, deadline.remaining_ms() / (E - e));
    parallel_for(pool, static_cast<std::size_t>(W), [&](std::size_t w) {
      LnsOptions o = portfolio_worker_options(options_, static_cast<int>(w), e);
      o.budget_ms = slice_budget;
      slices[w] = improve_plan(inst, workers[w].plan, o);
    });
    // Barrier passed: fold the slice results back in worker order, so the
    // incumbent scan (strict <, ascending worker index) is deterministic
    // no matter which pool thread ran which worker.
    for (int w = 0; w < W; ++w) {
      LnsResult& slice = slices[static_cast<std::size_t>(w)];
      accumulate(slice, &result);
      workers[static_cast<std::size_t>(w)].plan = std::move(slice.plan);
      workers[static_cast<std::size_t>(w)].cost = slice.cost;
      if (slice.cost < incumbent_cost) {
        incumbent = workers[static_cast<std::size_t>(w)].plan;
        incumbent_cost = slice.cost;
        result.best_worker = w;
        result.best_epoch = e;
      }
    }
    if (options_.lns.budget_ms > 0 && deadline.expired()) break;
  }

  result.worker_costs.reserve(workers.size());
  for (const WorkerState& w : workers) result.worker_costs.push_back(w.cost);
  result.plan = std::move(incumbent);
  result.cost = evaluate_plan(inst, result.plan, options_.lns, &result.schedule);
  return result;
}

PortfolioResult PortfolioLns::improve_free_running(
    const MbspInstance& inst, const ComputePlan& initial) const {
  const int W = options_.workers;
  const int E = options_.epochs;

  PortfolioResult result;
  result.initial_cost =
      evaluate_plan(inst, initial, options_.lns, &result.schedule);
  result.plan = initial;
  result.cost = result.initial_cost;
  result.worker_costs.assign(static_cast<std::size_t>(W),
                             result.initial_cost);

  std::mutex mutex;
  ComputePlan incumbent = initial;
  double incumbent_cost = result.initial_cost;

  {
    ThreadPool pool(options_.threads != 0 ? options_.threads
                                          : static_cast<std::size_t>(W));
    parallel_for(pool, static_cast<std::size_t>(W), [&](std::size_t w) {
      ComputePlan plan = initial;
      double cost = result.initial_cost;
      const Deadline deadline(options_.lns.budget_ms);
      for (int e = 0; e < E; ++e) {
        {
          std::lock_guard lock(mutex);
          if (incumbent_cost < cost) {
            plan = incumbent;
            cost = incumbent_cost;
          }
        }
        LnsOptions o =
            portfolio_worker_options(options_, static_cast<int>(w), e);
        if (o.budget_ms > 0) {
          o.budget_ms = std::max(1.0, deadline.remaining_ms() / (E - e));
        }
        LnsResult slice = improve_plan(inst, plan, o);
        plan = std::move(slice.plan);
        cost = slice.cost;
        {
          std::lock_guard lock(mutex);
          accumulate(slice, &result);
          if (cost < incumbent_cost) {
            incumbent = plan;
            incumbent_cost = cost;
            result.best_worker = static_cast<int>(w);
            result.best_epoch = e;
          }
        }
        if (options_.lns.budget_ms > 0 && deadline.expired()) break;
      }
      result.worker_costs[w] = cost;  // per-slot write, no lock needed
    });
  }

  result.plan = std::move(incumbent);
  result.cost = evaluate_plan(inst, result.plan, options_.lns, &result.schedule);
  return result;
}

}  // namespace mbsp
