#include "src/holistic/formulation.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/graph/topology.hpp"

namespace mbsp {

using ilp::LinExpr;
using ilp::Sense;
using ilp::VarId;
using ilp::VarType;

namespace {
std::string tag(const char* base, int p, NodeId v, int t) {
  return std::string(base) + "_" + std::to_string(p) + "_" + std::to_string(v) +
         "_" + std::to_string(t);
}
}  // namespace

IlpFormulation::IlpFormulation(const MbspInstance& inst,
                               FormulationOptions options)
    : inst_(inst), options_(options), model_("mbsp_" + inst.name()),
      P_(inst.arch.num_processors), T_(options.num_steps),
      n_(inst.dag.num_nodes()) {
  build();
}

VarId IlpFormulation::compute_var(int p, NodeId v, int t) const {
  return compute_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t];
}
VarId IlpFormulation::save_var(int p, NodeId v, int t) const {
  return save_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t];
}
VarId IlpFormulation::load_var(int p, NodeId v, int t) const {
  return load_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t];
}
VarId IlpFormulation::hasred_var(int p, NodeId v, int t) const {
  // hasred is defined for t in [0, T] (state *before* step t; T = final).
  return hasred_[(static_cast<std::size_t>(p) * n_ + v) * (T_ + 1) + t];
}
VarId IlpFormulation::hasblue_var(NodeId v, int t) const {
  return hasblue_[static_cast<std::size_t>(v) * (T_ + 1) + t];
}

void IlpFormulation::build() {
  const ComputeDag& dag = inst_.dag;
  assert(!(options_.merge_steps && options_.cost == CostModel::kSynchronous) &&
         "step merging is supported for the asynchronous model");
  topo_pos_ = order_positions(topological_order(dag), n_);
  big_m_ = 0;
  for (NodeId v = 0; v < n_; ++v) {
    big_m_ += dag.omega(v) + inst_.arch.g * dag.mu(v);
  }
  big_m_ *= P_;

  compute_.assign(static_cast<std::size_t>(P_) * n_ * T_, kInvalidVar);
  save_.assign(static_cast<std::size_t>(P_) * n_ * T_, kInvalidVar);
  load_.assign(static_cast<std::size_t>(P_) * n_ * T_, kInvalidVar);
  hasred_.assign(static_cast<std::size_t>(P_) * n_ * (T_ + 1), kInvalidVar);
  hasblue_.assign(static_cast<std::size_t>(n_) * (T_ + 1), kInvalidVar);

  // Variable creation. Pre-determined variables are elided entirely, as
  // the paper recommends (C.1.3): no compute for sources, no reds at t=0,
  // hasblue for sources is constant 1 (we fold it into constraints), and
  // non-source hasblue at t=0 is constant 0.
  for (int p = 0; p < P_; ++p) {
    for (NodeId v = 0; v < n_; ++v) {
      for (int t = 0; t < T_; ++t) {
        if (!dag.is_source(v)) {
          compute_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t] =
              model_.add_binary(tag("comp", p, v, t));
        }
        save_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t] =
            model_.add_binary(tag("save", p, v, t));
        load_[(static_cast<std::size_t>(p) * n_ + v) * T_ + t] =
            model_.add_binary(tag("load", p, v, t));
      }
      for (int t = 1; t <= T_; ++t) {  // hasred at t=0 is constant 0
        hasred_[(static_cast<std::size_t>(p) * n_ + v) * (T_ + 1) + t] =
            model_.add_binary(tag("red", p, v, t));
      }
    }
  }
  for (NodeId v = 0; v < n_; ++v) {
    if (dag.is_source(v)) continue;  // constant 1 at all times
    for (int t = 1; t <= T_; ++t) {
      hasblue_[static_cast<std::size_t>(v) * (T_ + 1) + t] =
          model_.add_binary(std::string("blue_") + std::to_string(v) + "_" +
                            std::to_string(t));
    }
  }

  auto blue_is_constant_one = [&](NodeId v) { return dag.is_source(v); };

  for (int p = 0; p < P_; ++p) {
    for (NodeId v = 0; v < n_; ++v) {
      for (int t = 0; t < T_; ++t) {
        // (1) load only with a blue pebble present.
        if (!blue_is_constant_one(v)) {
          LinExpr c1;
          c1.add(load_var(p, v, t), 1.0);
          if (t >= 1) c1.add(hasblue_var(v, t), -1.0);
          // at t=0 non-source blue is 0: load[p][v][0] <= 0
          model_.add_constraint(std::move(c1), Sense::kLe, 0.0);
        }
        // (2) save only with this processor's red pebble.
        {
          LinExpr c2;
          c2.add(save_var(p, v, t), 1.0);
          if (t >= 1) c2.add(hasred_var(p, v, t), -1.0);
          model_.add_constraint(std::move(c2), Sense::kLe, 0.0);
        }
        // (3) compute only with all parents red — or, with step merging,
        // computed by this processor within the same (merged) step.
        if (!dag.is_source(v)) {
          for (NodeId u : dag.parents(v)) {
            LinExpr c3;
            c3.add(compute_var(p, v, t), 1.0);
            if (t >= 1) c3.add(hasred_var(p, u, t), -1.0);
            if (options_.merge_steps && !dag.is_source(u)) {
              c3.add(compute_var(p, u, t), -1.0);
            }
            model_.add_constraint(std::move(c3), Sense::kLe, 0.0);
          }
        }
      }
      // (4) red pebbles appear only from compute or load.
      for (int t = 1; t <= T_; ++t) {
        LinExpr c4;
        c4.add(hasred_var(p, v, t), 1.0);
        if (t - 1 >= 1) c4.add(hasred_var(p, v, t - 1), -1.0);
        if (!dag.is_source(v)) c4.add(compute_var(p, v, t - 1), -1.0);
        c4.add(load_var(p, v, t - 1), -1.0);
        model_.add_constraint(std::move(c4), Sense::kLe, 0.0);
      }
    }
  }
  // (5) blue pebbles appear only from saves.
  for (NodeId v = 0; v < n_; ++v) {
    if (blue_is_constant_one(v)) continue;
    for (int t = 1; t <= T_; ++t) {
      LinExpr c5;
      c5.add(hasblue_var(v, t), 1.0);
      if (t - 1 >= 1) c5.add(hasblue_var(v, t - 1), -1.0);
      for (int p = 0; p < P_; ++p) c5.add(save_var(p, v, t - 1), -1.0);
      model_.add_constraint(std::move(c5), Sense::kLe, 0.0);
    }
  }
  // (6) one operation per processor per step — or, with step merging, one
  // *kind* of step per processor (compstep / commstep, Appendix C.1.1).
  if (!options_.merge_steps) {
    for (int p = 0; p < P_; ++p) {
      for (int t = 0; t < T_; ++t) {
        LinExpr c6;
        for (NodeId v = 0; v < n_; ++v) {
          if (!dag.is_source(v)) c6.add(compute_var(p, v, t), 1.0);
          c6.add(save_var(p, v, t), 1.0);
          c6.add(load_var(p, v, t), 1.0);
        }
        model_.add_constraint(std::move(c6), Sense::kLe, 1.0);
      }
    }
  } else {
    for (int p = 0; p < P_; ++p) {
      for (int t = 0; t < T_; ++t) {
        const ilp::VarId comp_step = model_.add_binary(tag("cstep", p, 0, t));
        const ilp::VarId comm_step = model_.add_binary(tag("mstep", p, 0, t));
        LinExpr comp_force, comm_force, one_kind;
        for (NodeId v = 0; v < n_; ++v) {
          if (!dag.is_source(v)) comp_force.add(compute_var(p, v, t), 1.0);
          comm_force.add(save_var(p, v, t), 1.0);
          comm_force.add(load_var(p, v, t), 1.0);
        }
        comp_force.add(comp_step, -static_cast<double>(n_));
        comm_force.add(comm_step, -2.0 * n_);
        model_.add_constraint(std::move(comp_force), Sense::kLe, 0.0);
        model_.add_constraint(std::move(comm_force), Sense::kLe, 0.0);
        one_kind.add(comp_step, 1.0);
        one_kind.add(comm_step, 1.0);
        model_.add_constraint(std::move(one_kind), Sense::kLe, 1.0);
      }
    }
  }
  // (7) memory bound on every state.
  for (int p = 0; p < P_; ++p) {
    for (int t = 1; t <= T_; ++t) {
      LinExpr c7;
      for (NodeId v = 0; v < n_; ++v) {
        c7.add(hasred_var(p, v, t), dag.mu(v));
      }
      model_.add_constraint(std::move(c7), Sense::kLe,
                            inst_.arch.fast_memory);
    }
  }
  // (7') strengthened transient bound at COMPUTE (see header). With step
  // merging, all of a merged step's inputs and outputs must fit in cache
  // simultaneously (Section 6.2), giving one aggregated row per (p, t).
  if (!options_.merge_steps) {
    for (int p = 0; p < P_; ++p) {
      for (NodeId v = 0; v < n_; ++v) {
        if (dag.is_source(v)) continue;
        for (int t = 1; t < T_; ++t) {
          LinExpr c7s;
          for (NodeId w = 0; w < n_; ++w) {
            double coeff = dag.mu(w);
            if (w == v) coeff -= dag.mu(v);  // avoid double count when red
            if (coeff != 0.0) c7s.add(hasred_var(p, w, t), coeff);
          }
          c7s.add(compute_var(p, v, t), dag.mu(v));
          model_.add_constraint(std::move(c7s), Sense::kLe,
                                inst_.arch.fast_memory);
        }
      }
    }
  } else {
    for (int p = 0; p < P_; ++p) {
      for (int t = 1; t < T_; ++t) {
        LinExpr c7m;
        for (NodeId w = 0; w < n_; ++w) {
          c7m.add(hasred_var(p, w, t), dag.mu(w));
          if (!dag.is_source(w)) c7m.add(compute_var(p, w, t), dag.mu(w));
        }
        // Conservative: a recompute of an already-red value double-counts;
        // such computes are pointless and simply become infeasible here.
        model_.add_constraint(std::move(c7m), Sense::kLe,
                              inst_.arch.fast_memory);
      }
    }
  }
  // (10) terminal state: sinks end blue.
  for (NodeId v = 0; v < n_; ++v) {
    if (!dag.is_sink(v) || blue_is_constant_one(v)) continue;
    LinExpr c10;
    c10.add(hasblue_var(v, T_), 1.0);
    model_.add_constraint(std::move(c10), Sense::kGe, 1.0);
  }
  // Optional: prohibit recomputation (each node computed at most once).
  if (!options_.allow_recompute) {
    for (NodeId v = 0; v < n_; ++v) {
      if (dag.is_source(v)) continue;
      LinExpr once;
      for (int p = 0; p < P_; ++p) {
        for (int t = 0; t < T_; ++t) once.add(compute_var(p, v, t), 1.0);
      }
      model_.add_constraint(std::move(once), Sense::kLe, 1.0);
    }
  }
  // Every non-source node must be computed at least once (implied by (10)
  // + (5) + (2), but stating it tightens the LP relaxation considerably).
  for (NodeId v = 0; v < n_; ++v) {
    if (dag.is_source(v)) continue;
    LinExpr at_least;
    for (int p = 0; p < P_; ++p) {
      for (int t = 0; t < T_; ++t) at_least.add(compute_var(p, v, t), 1.0);
    }
    model_.add_constraint(std::move(at_least), Sense::kGe, 1.0);
  }

  if (options_.cost == CostModel::kSynchronous) {
    build_sync_cost();
  } else {
    build_async_cost();
  }
}

void IlpFormulation::build_async_cost() {
  const ComputeDag& dag = inst_.dag;
  const double g = inst_.arch.g;
  // finishtime[p][t], getsblue[v], makespan.
  std::vector<VarId>& finish = finish_;
  finish.resize(static_cast<std::size_t>(P_) * T_);
  for (int p = 0; p < P_; ++p) {
    for (int t = 0; t < T_; ++t) {
      finish[static_cast<std::size_t>(p) * T_ + t] = model_.add_continuous(
          0, ilp::kInf, tag("fin", p, 0, t));
    }
  }
  std::vector<VarId>& gets_blue = getsblue_;
  gets_blue.resize(n_);
  for (NodeId v = 0; v < n_; ++v) {
    gets_blue[v] = model_.add_continuous(0, ilp::kInf,
                                         "getsblue_" + std::to_string(v));
    if (dag.is_source(v)) model_.set_bounds(gets_blue[v], 0, 0);
  }
  const VarId makespan = model_.add_continuous(0, ilp::kInf, "makespan");
  makespan_ = makespan;

  for (int p = 0; p < P_; ++p) {
    for (int t = 0; t < T_; ++t) {
      const VarId ft = finish[static_cast<std::size_t>(p) * T_ + t];
      LinExpr step;  // finish_t - finish_{t-1} - step cost >= 0
      step.add(ft, 1.0);
      if (t >= 1) step.add(finish[static_cast<std::size_t>(p) * T_ + t - 1], -1.0);
      for (NodeId v = 0; v < n_; ++v) {
        if (!dag.is_source(v)) step.add(compute_var(p, v, t), -dag.omega(v));
        step.add(save_var(p, v, t), -g * dag.mu(v));
        step.add(load_var(p, v, t), -g * dag.mu(v));
      }
      model_.add_constraint(std::move(step), Sense::kGe, 0.0);
      for (NodeId v = 0; v < n_; ++v) {
        // getsblue_v >= finish_{p,t} - M (1 - save_{p,v,t})
        LinExpr gb;
        gb.add(gets_blue[v], 1.0);
        gb.add(ft, -1.0);
        gb.add(save_var(p, v, t), -big_m_);
        model_.add_constraint(std::move(gb), Sense::kGe, -big_m_);
        // finish_{p,t} >= getsblue_v + g mu(v) - M (1 - load_{p,v,t})
        LinExpr ld;
        ld.add(ft, 1.0);
        ld.add(gets_blue[v], -1.0);
        ld.add(load_var(p, v, t), -(big_m_ + g * dag.mu(v)));
        model_.add_constraint(std::move(ld), Sense::kGe, -big_m_);
      }
    }
    LinExpr cap;
    cap.add(makespan, 1.0);
    cap.add(finish[static_cast<std::size_t>(p) * T_ + T_ - 1], -1.0);
    model_.add_constraint(std::move(cap), Sense::kGe, 0.0);
  }
  model_.set_objective_coeff(makespan, 1.0);
}

void IlpFormulation::build_sync_cost() {
  const ComputeDag& dag = inst_.dag;
  const double g = inst_.arch.g;
  compphase_.resize(T_);
  savephase_.resize(T_);
  loadphase_.resize(T_);
  for (int t = 0; t < T_; ++t) {
    compphase_[t] = model_.add_binary("compphase_" + std::to_string(t));
    savephase_[t] = model_.add_binary("savephase_" + std::to_string(t));
    loadphase_[t] = model_.add_binary("loadphase_" + std::to_string(t));
    // Phase typing: any op of a kind at t forces the phase bit; at most one
    // phase kind per step.
    LinExpr comp_force, save_force, load_force;
    for (int p = 0; p < P_; ++p) {
      for (NodeId v = 0; v < n_; ++v) {
        if (!dag.is_source(v)) comp_force.add(compute_var(p, v, t), 1.0);
        save_force.add(save_var(p, v, t), 1.0);
        load_force.add(load_var(p, v, t), 1.0);
      }
    }
    comp_force.add(compphase_[t], -static_cast<double>(P_));
    save_force.add(savephase_[t], -static_cast<double>(P_));
    load_force.add(loadphase_[t], -static_cast<double>(P_));
    model_.add_constraint(std::move(comp_force), Sense::kLe, 0.0);
    model_.add_constraint(std::move(save_force), Sense::kLe, 0.0);
    model_.add_constraint(std::move(load_force), Sense::kLe, 0.0);
    LinExpr one_phase;
    one_phase.add(compphase_[t], 1.0);
    one_phase.add(savephase_[t], 1.0);
    one_phase.add(loadphase_[t], 1.0);
    model_.add_constraint(std::move(one_phase), Sense::kLe, 1.0);
  }

  // For each phase kind X: Xbegins_t marks the first step of a phase run,
  // Xends_t the last; Xuntil[p][t] accumulates processor p's phase cost and
  // resets at Xbegins; Xinduced_t >= Xuntil[p][t] at run ends.
  auto build_phase_cost = [&](const std::vector<VarId>& phase,
                              const char* base, PhaseAux& aux,
                              auto cost_coeff) {
    std::vector<VarId> begins(T_), ends(T_), induced(T_);
    aux.until.assign(static_cast<std::size_t>(P_) * T_, kInvalidVar);
    for (int t = 0; t < T_; ++t) {
      begins[t] = model_.add_binary(std::string(base) + "beg_" + std::to_string(t));
      ends[t] = model_.add_binary(std::string(base) + "end_" + std::to_string(t));
      induced[t] = model_.add_continuous(0, ilp::kInf,
                                         std::string(base) + "ind_" +
                                             std::to_string(t));
      // begins_t >= phase_t - phase_{t-1}; ends_t >= phase_t - phase_{t+1}.
      LinExpr b;
      b.add(begins[t], 1.0);
      b.add(phase[t], -1.0);
      if (t >= 1) b.add(phase[t - 1], 1.0);
      model_.add_constraint(std::move(b), Sense::kGe, 0.0);
      // Tight from above too: a spurious begins would let the solver reset
      // the cost accumulator mid-phase and dodge the phase cost entirely.
      LinExpr b_hi;
      b_hi.add(begins[t], 1.0);
      b_hi.add(phase[t], -1.0);
      model_.add_constraint(std::move(b_hi), Sense::kLe, 0.0);
      if (t >= 1) {
        LinExpr b_prev;
        b_prev.add(begins[t], 1.0);
        b_prev.add(phase[t - 1], 1.0);
        model_.add_constraint(std::move(b_prev), Sense::kLe, 1.0);
      }
      LinExpr e;
      e.add(ends[t], 1.0);
      e.add(phase[t], -1.0);
      if (t + 1 < T_) e.add(phase[t + 1], 1.0);
      model_.add_constraint(std::move(e), Sense::kGe, 0.0);
    }
    for (int p = 0; p < P_; ++p) {
      std::vector<VarId> until(T_);
      for (int t = 0; t < T_; ++t) {
        until[t] = model_.add_continuous(0, ilp::kInf,
                                         tag((std::string(base) + "unt").c_str(),
                                             p, 0, t));
        aux.until[static_cast<std::size_t>(p) * T_ + t] = until[t];
        LinExpr acc2;  // until_t >= until_{t-1} + cost_t - M begins_t
        acc2.add(until[t], 1.0);
        if (t >= 1) acc2.add(until[t - 1], -1.0);
        for (NodeId v = 0; v < n_; ++v) {
          const auto [var, coeff] = cost_coeff(p, v, t);
          if (var != kInvalidVar && coeff != 0.0) acc2.add(var, -coeff);
        }
        acc2.add(begins[t], big_m_);
        model_.add_constraint(std::move(acc2), Sense::kGe, 0.0);
        // The reset must not wipe the begin step's own cost:
        // until_t >= cost_t unconditionally.
        LinExpr own;
        own.add(until[t], 1.0);
        for (NodeId v = 0; v < n_; ++v) {
          const auto [var, coeff] = cost_coeff(p, v, t);
          if (var != kInvalidVar && coeff != 0.0) own.add(var, -coeff);
        }
        model_.add_constraint(std::move(own), Sense::kGe, 0.0);
        // induced_t >= until_t - M (1 - ends_t)
        LinExpr ind;
        ind.add(induced[t], 1.0);
        ind.add(until[t], -1.0);
        ind.add(ends[t], -big_m_);
        model_.add_constraint(std::move(ind), Sense::kGe, -big_m_);
      }
    }
    for (int t = 0; t < T_; ++t) model_.set_objective_coeff(induced[t], 1.0);
    aux.begins = begins;
    aux.ends = std::move(ends);
    aux.induced = std::move(induced);
    return begins;
  };

  const auto comp_begins = build_phase_cost(
      compphase_, "comp", comp_aux_, [&](int p, NodeId v, int t) {
        return std::pair<VarId, double>(
            dag.is_source(v) ? kInvalidVar : compute_var(p, v, t),
            dag.omega(v));
      });
  build_phase_cost(savephase_, "save", save_aux_, [&](int p, NodeId v, int t) {
    return std::pair<VarId, double>(save_var(p, v, t), g * dag.mu(v));
  });
  build_phase_cost(loadphase_, "load", load_aux_, [&](int p, NodeId v, int t) {
    return std::pair<VarId, double>(load_var(p, v, t), g * dag.mu(v));
  });

  // Synchronization cost: L per superstep, counted as 1 (every non-empty
  // schedule has a first superstep) plus the transitions that open a new
  // one: a compute-phase begin that is not the schedule's first phase run,
  // and a save phase directly following a load phase (I/O-only superstep).
  // extract_schedule() groups phases with exactly these rules.
  if (inst_.arch.L > 0) {
    const VarId first_ss = model_.add_var(1, 1, ilp::VarType::kBinary,
                                          "first_superstep");
    first_ss_ = first_ss;
    model_.set_objective_coeff(first_ss, inst_.arch.L);
    ssbeg_.assign(T_, kInvalidVar);
    ioss_.assign(T_, kInvalidVar);
    // started_t = some phase occurred at a step <= t (lower bounds only;
    // minimization keeps it honest because it can only *force* costs).
    std::vector<VarId>& started = started_;
    started.resize(T_);
    for (int t = 0; t < T_; ++t) {
      started[t] = model_.add_binary("started_" + std::to_string(t));
      for (const VarId phase :
           {compphase_[t], savephase_[t], loadphase_[t]}) {
        LinExpr s;
        s.add(started[t], 1.0);
        s.add(phase, -1.0);
        model_.add_constraint(std::move(s), Sense::kGe, 0.0);
      }
      if (t >= 1) {
        LinExpr chainc;
        chainc.add(started[t], 1.0);
        chainc.add(started[t - 1], -1.0);
        model_.add_constraint(std::move(chainc), Sense::kGe, 0.0);
      }
    }
    for (int t = 1; t < T_; ++t) {
      // Compute begin after the schedule has started: a new superstep.
      const VarId tb = model_.add_binary("ssbeg_" + std::to_string(t));
      ssbeg_[t] = tb;
      model_.set_objective_coeff(tb, inst_.arch.L);
      LinExpr trans;
      trans.add(tb, 1.0);
      trans.add(comp_begins[t], -1.0);
      trans.add(started[t - 1], -1.0);
      model_.add_constraint(std::move(trans), Sense::kGe, -1.0);
      // Save phase directly after a load phase: an I/O-only superstep.
      const VarId io_ss = model_.add_binary("ioss_" + std::to_string(t));
      ioss_[t] = io_ss;
      model_.set_objective_coeff(io_ss, inst_.arch.L);
      LinExpr io;
      io.add(io_ss, 1.0);
      io.add(savephase_[t], -1.0);
      io.add(loadphase_[t - 1], -1.0);
      model_.add_constraint(std::move(io), Sense::kGe, -1.0);
    }
  }
}

int IlpFormulation::steps_required(const MbspSchedule& sched) {
  int total = 0;
  for (const Superstep& step : sched.steps) {
    std::size_t comp = 0, saves = 0, loads = 0;
    for (const ProcStep& ps : step.proc) {
      std::size_t computes = 0;
      for (const PhaseOp& op : ps.compute_phase) {
        computes += op.kind == OpKind::kCompute;
      }
      comp = std::max(comp, computes);
      saves = std::max(saves, ps.saves.size());
      loads = std::max(loads, ps.loads.size());
    }
    total += static_cast<int>(comp + saves + loads);
  }
  return total;
}

std::vector<double> IlpFormulation::encode_schedule(
    const MbspSchedule& sched) const {
  const ComputeDag& dag = inst_.dag;
  const double g = inst_.arch.g;
  if (options_.merge_steps) return {};  // see header
  if (steps_required(sched) > T_) return {};
  std::vector<double> x(static_cast<std::size_t>(model_.num_vars()), 0.0);
  auto set_var = [&](VarId var, double value) {
    if (var != kInvalidVar) x[var] = value;
  };

  // Walk the schedule, laying supersteps out as [compute|save|load] blocks
  // of global steps. Red pebbles are tracked as [open_from, ...) intervals
  // closed either by a DELETE (implicit ILP transition) or at T.
  std::vector<std::vector<int>> red_open(
      P_, std::vector<int>(n_, -1));        // first t with red, -1 = closed
  std::vector<int> cursor(P_, -1);          // step of p's last explicit op
  std::vector<int> blue_from(n_, -1);       // first t with blue (non-source)

  auto close_red = [&](int p, NodeId v, int boundary) {
    // hasred[p][v][t] = 1 for t in [open, boundary); boundary <= open means
    // the pebble never materialized (allowed: rule (4) is an upper bound).
    const int open = red_open[p][v];
    if (open < 0) return;
    for (int t = open; t < std::min(boundary, T_ + 1); ++t) {
      set_var(hasred_var(p, v, t), 1.0);
    }
    red_open[p][v] = -1;
  };

  int base = 0;
  for (const Superstep& step : sched.steps) {
    std::size_t comp = 0, saves = 0, loads = 0;
    for (const ProcStep& ps : step.proc) {
      std::size_t computes = 0;
      for (const PhaseOp& op : ps.compute_phase) {
        computes += op.kind == OpKind::kCompute;
      }
      comp = std::max(comp, computes);
      saves = std::max(saves, ps.saves.size());
      loads = std::max(loads, ps.loads.size());
    }
    const int save_base = base + static_cast<int>(comp);
    const int load_base = save_base + static_cast<int>(saves);
    for (int p = 0; p < P_; ++p) {
      const ProcStep& ps = step.proc[p];
      int k = 0;
      for (const PhaseOp& op : ps.compute_phase) {
        if (op.kind == OpKind::kCompute) {
          const int t = base + k++;
          set_var(compute_var(p, op.node, t), 1.0);
          cursor[p] = t;
          if (red_open[p][op.node] < 0) red_open[p][op.node] = t + 1;
        } else {
          close_red(p, op.node, cursor[p] + 1);
        }
      }
      for (std::size_t j = 0; j < ps.saves.size(); ++j) {
        const int t = save_base + static_cast<int>(j);
        set_var(save_var(p, ps.saves[j], t), 1.0);
        cursor[p] = t;
        if (blue_from[ps.saves[j]] < 0) blue_from[ps.saves[j]] = t + 1;
      }
      for (NodeId v : ps.deletes) close_red(p, v, cursor[p] + 1);
      for (std::size_t j = 0; j < ps.loads.size(); ++j) {
        const int t = load_base + static_cast<int>(j);
        set_var(load_var(p, ps.loads[j], t), 1.0);
        cursor[p] = t;
        if (red_open[p][ps.loads[j]] < 0) red_open[p][ps.loads[j]] = t + 1;
      }
    }
    base = load_base + static_cast<int>(loads);
  }
  for (int p = 0; p < P_; ++p) {
    for (NodeId v = 0; v < n_; ++v) close_red(p, v, T_ + 1);
  }
  for (NodeId v = 0; v < n_; ++v) {
    if (dag.is_source(v) || blue_from[v] < 0) continue;
    for (int t = blue_from[v]; t <= T_; ++t) set_var(hasblue_var(v, t), 1.0);
  }

  // Step costs per (p, t), shared by both objective encodings.
  auto step_cost = [&](int kind, int p, int t) {  // 0 comp, 1 save, 2 load
    double cost = 0;
    for (NodeId v = 0; v < n_; ++v) {
      switch (kind) {
        case 0: {
          const VarId cv = compute_var(p, v, t);
          if (cv != kInvalidVar && x[cv] > 0.5) cost += dag.omega(v);
          break;
        }
        case 1:
          if (x[save_var(p, v, t)] > 0.5) cost += g * dag.mu(v);
          break;
        case 2:
          if (x[load_var(p, v, t)] > 0.5) cost += g * dag.mu(v);
          break;
      }
    }
    return cost;
  };

  if (options_.cost == CostModel::kAsynchronous) {
    // gamma recursion over the laid-out steps.
    std::vector<double> now(P_, 0.0);
    std::vector<double> gb(n_, 0.0);
    for (int t = 0; t < T_; ++t) {
      for (int p = 0; p < P_; ++p) {
        now[p] += step_cost(0, p, t) + step_cost(1, p, t);
        for (NodeId v = 0; v < n_; ++v) {
          if (x[save_var(p, v, t)] > 0.5) gb[v] = std::max(gb[v], now[p]);
        }
        for (NodeId v = 0; v < n_; ++v) {
          if (x[load_var(p, v, t)] > 0.5) {
            now[p] = std::max(now[p], gb[v]) + g * dag.mu(v);
          }
        }
        set_var(finish_[static_cast<std::size_t>(p) * T_ + t], now[p]);
      }
    }
    double makespan = 0;
    for (int p = 0; p < P_; ++p) makespan = std::max(makespan, now[p]);
    for (NodeId v = 0; v < n_; ++v) {
      if (!dag.is_source(v)) set_var(getsblue_[v], gb[v]);
    }
    set_var(makespan_, makespan);
    return x;
  }

  // Synchronous auxiliaries: phase bits from the ops actually present.
  auto any_op = [&](int kind, int t) {
    for (int p = 0; p < P_; ++p) {
      if (step_cost(kind, p, t) > 0) return true;
      // zero-cost ops still type the phase (e.g. mu = 0 values)
      for (NodeId v = 0; v < n_; ++v) {
        if (kind == 0) {
          const VarId cv = compute_var(p, v, t);
          if (cv != kInvalidVar && x[cv] > 0.5) return true;
        } else if (kind == 1 && x[save_var(p, v, t)] > 0.5) {
          return true;
        } else if (kind == 2 && x[load_var(p, v, t)] > 0.5) {
          return true;
        }
      }
    }
    return false;
  };
  const std::vector<VarId>* phase_vars[3] = {&compphase_, &savephase_,
                                             &loadphase_};
  const PhaseAux* aux[3] = {&comp_aux_, &save_aux_, &load_aux_};
  for (int kind = 0; kind < 3; ++kind) {
    std::vector<char> in_phase(T_, 0);
    for (int t = 0; t < T_; ++t) in_phase[t] = any_op(kind, t);
    for (int t = 0; t < T_; ++t) {
      if (!in_phase[t]) continue;
      set_var((*phase_vars[kind])[t], 1.0);
      const bool begin = t == 0 || !in_phase[t - 1];
      const bool end = t + 1 == T_ || !in_phase[t + 1];
      if (begin) set_var(aux[kind]->begins[t], 1.0);
      if (end) set_var(aux[kind]->ends[t], 1.0);
    }
    // until accumulators (carry outside runs, reset at begins) + induced.
    for (int p = 0; p < P_; ++p) {
      double acc = 0;
      for (int t = 0; t < T_; ++t) {
        if (in_phase[t]) {
          if (x[aux[kind]->begins[t]] > 0.5) acc = 0;
          acc += step_cost(kind, p, t);
        }
        set_var(aux[kind]->until[static_cast<std::size_t>(p) * T_ + t], acc);
      }
    }
    for (int t = 0; t < T_; ++t) {
      if (!in_phase[t] || x[aux[kind]->ends[t]] < 0.5) continue;
      double max_until = 0;
      for (int p = 0; p < P_; ++p) {
        max_until = std::max(
            max_until,
            x[aux[kind]->until[static_cast<std::size_t>(p) * T_ + t]]);
      }
      set_var(aux[kind]->induced[t], max_until);
    }
  }
  if (inst_.arch.L > 0) {
    set_var(first_ss_, 1.0);
    bool seen = false;
    for (int t = 0; t < T_; ++t) {
      seen = seen || x[compphase_[t]] > 0.5 || x[savephase_[t]] > 0.5 ||
             x[loadphase_[t]] > 0.5;
      set_var(started_[t], seen ? 1.0 : 0.0);
      if (t >= 1) {
        if (x[comp_aux_.begins[t]] > 0.5 && x[started_[t - 1]] > 0.5) {
          set_var(ssbeg_[t], 1.0);
        }
        if (x[savephase_[t]] > 0.5 && x[loadphase_[t - 1]] > 0.5) {
          set_var(ioss_[t], 1.0);
        }
      }
    }
  }
  return x;
}

MbspSchedule IlpFormulation::extract_schedule(
    const std::vector<double>& x) const {
  const ComputeDag& dag = inst_.dag;
  auto on = [&](VarId var) { return var != kInvalidVar && x[var] > 0.5; };
  auto red_at = [&](int p, NodeId v, int t) {
    return t >= 1 && on(hasred_var(p, v, t));
  };

  MbspSchedule out;
  // Phase kind of each step: 0 compute, 1 save, 2 load, -1 idle. In the
  // async model phases are untyped, so every step becomes its own
  // superstep (the async cost ignores superstep structure anyway).
  auto step_kind = [&](int t) {
    int kind = -1;
    for (int p = 0; p < P_; ++p) {
      for (NodeId v = 0; v < n_; ++v) {
        if (!dag.is_source(v) && on(compute_var(p, v, t))) kind = std::max(kind, 0);
        if (on(save_var(p, v, t))) kind = std::max(kind, 1);
        if (on(load_var(p, v, t))) kind = std::max(kind, 2);
      }
    }
    return kind;
  };

  const bool sync = options_.cost == CostModel::kSynchronous;
  int prev_kind = -1;
  Superstep* current = nullptr;
  // Deletes that must run after a LOAD of the same superstep; deferred to
  // the compute phase of the next superstep (a free op, valid anytime).
  std::vector<std::vector<NodeId>> deferred(P_);

  auto open_superstep = [&] {
    current = &out.append(inst_.arch.num_processors);
    prev_kind = -1;
    for (int p = 0; p < P_; ++p) {
      for (NodeId v : deferred[p]) {
        current->proc[p].compute_phase.push_back(PhaseOp::erase(v));
      }
      deferred[p].clear();
    }
  };

  for (int t = 0; t < T_; ++t) {
    const int kind = step_kind(t);
    // Ops and state diffs of this step, per processor.
    bool anything = kind != -1;
    for (int p = 0; p < P_ && !anything; ++p) {
      for (NodeId v = 0; v < n_ && !anything; ++v) {
        if (red_at(p, v, t) && !red_at(p, v, t + 1)) anything = true;
      }
    }
    if (!anything) continue;

    bool new_superstep = current == nullptr || !sync ||
                         (kind == 0 && prev_kind != -1 && prev_kind != 0) ||
                         (kind == 1 && prev_kind == 2);
    // A delete whose node was loaded earlier in the current superstep
    // cannot precede that load; close the superstep instead.
    if (!new_superstep && current != nullptr) {
      for (int p = 0; p < P_ && !new_superstep; ++p) {
        for (NodeId v = 0; v < n_ && !new_superstep; ++v) {
          const bool dies = red_at(p, v, t) && !red_at(p, v, t + 1) &&
                            !on(load_var(p, v, t));
          if (!dies) continue;
          const auto& loads = current->proc[p].loads;
          if (std::find(loads.begin(), loads.end(), v) != loads.end()) {
            new_superstep = true;
          }
        }
      }
    }
    if (new_superstep) open_superstep();

    for (int p = 0; p < P_; ++p) {
      ProcStep& ps = current->proc[p];
      // Pass 1: computes. The ILP checks parent reds *at* step t and
      // applies deletions at the t -> t+1 transition, so within a step the
      // computes must precede every delete; with step merging several
      // computes can share a step and are emitted in topological order
      // (within-step dependencies run parents-first).
      {
        std::vector<NodeId> computed;
        for (NodeId v = 0; v < n_; ++v) {
          if (!dag.is_source(v) && on(compute_var(p, v, t))) {
            computed.push_back(v);
          }
        }
        if (computed.size() > 1) {
          std::sort(computed.begin(), computed.end(),
                    [&](NodeId a, NodeId b) {
                      return topo_pos_[a] < topo_pos_[b];
                    });
        }
        // All computes first: a value consumed within a merged step may
        // have its red pebble dropped at the step transition, and the
        // erase must not precede its consumers.
        for (NodeId v : computed) {
          ps.compute_phase.push_back(PhaseOp::compute(v));
        }
        for (NodeId v : computed) {
          if (!red_at(p, v, t + 1)) {
            ps.compute_phase.push_back(PhaseOp::erase(v));
          }
        }
      }
      // Pass 2: saves, loads, and the remaining deletes.
      for (NodeId v = 0; v < n_; ++v) {
        const bool computed = !dag.is_source(v) && on(compute_var(p, v, t));
        const bool loaded = on(load_var(p, v, t));
        const bool red_next = red_at(p, v, t + 1);
        if (on(save_var(p, v, t))) ps.saves.push_back(v);
        if (loaded) {
          ps.loads.push_back(v);
          // A load whose red pebble vanishes immediately: defer the delete.
          if (!red_next && !red_at(p, v, t)) deferred[p].push_back(v);
        }
        // Plain delete: red at t, gone at t+1, not already handled above.
        if (red_at(p, v, t) && !red_next && !computed) {
          if (kind == 0) {
            ps.compute_phase.push_back(PhaseOp::erase(v));
          } else if (loaded) {
            // Redundant load of a red value then delete: defer.
            deferred[p].push_back(v);
          } else {
            ps.deletes.push_back(v);
          }
        }
      }
    }
    prev_kind = kind == -1 ? prev_kind : kind;
  }
  out.drop_empty_supersteps();
  return out;
}

}  // namespace mbsp
