#include "src/holistic/divide_conquer.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/topology.hpp"
#include "src/holistic/shard.hpp"  // make_shard_subproblem, slice_architecture
#include "src/model/cost.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {

DivideConquerResult divide_conquer_schedule(
    const MbspInstance& inst, const DivideConquerOptions& options) {
  const ComputeDag& dag = inst.dag;
  const int P = inst.arch.num_processors;
  DivideConquerResult result;

  const auto parts =
      recursive_acyclic_partition(dag, options.max_part_size,
                                  options.partition);
  result.num_parts = parts.size();

  // Wave packing: a part is ready when all its quotient predecessors have
  // been scheduled; each wave takes up to P mutually independent ready
  // parts and splits the processors proportionally to total work.
  std::vector<int> part_of(dag.num_nodes(), -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (NodeId v : parts[i]) part_of[v] = static_cast<int>(i);
  }
  const ComputeDag quotient =
      quotient_graph(dag, part_of, static_cast<int>(parts.size()));
  std::vector<int> waiting(parts.size(), 0);
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    waiting[q] = static_cast<int>(quotient.parents(q).size());
  }
  std::vector<int> ready;
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    if (waiting[q] == 0) ready.push_back(static_cast<int>(q));
  }

  ComputePlan global_plan;
  global_plan.num_procs = P;
  global_plan.seq.resize(P);
  int superstep_offset = 0;

  while (!ready.empty()) {
    // Largest-work-first wave of at most P parts.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return quotient.omega(a) > quotient.omega(b);
    });
    const int wave_size = std::min<int>(P, static_cast<int>(ready.size()));
    std::vector<int> wave(ready.begin(), ready.begin() + wave_size);
    ready.erase(ready.begin(), ready.begin() + wave_size);

    // Proportional processor allocation (>= 1 each).
    double wave_work = 0;
    for (int q : wave) wave_work += quotient.omega(q);
    std::vector<int> alloc(wave.size(), 1);
    int left = P - static_cast<int>(wave.size());
    for (std::size_t i = 0; i < wave.size() && left > 0; ++i) {
      const int extra = std::min<int>(
          left, static_cast<int>(quotient.omega(wave[i]) / wave_work *
                                 (P - static_cast<double>(wave.size()))));
      alloc[i] += extra;
      left -= extra;
    }
    for (std::size_t i = 0; left > 0; i = (i + 1) % wave.size()) {
      ++alloc[i];
      --left;
    }

    int next_proc = 0;
    int wave_supersteps = 0;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const int q = wave[i];
      // Sub-instance construction and machine slicing are the extracted
      // common core shared with the shard pipeline (src/holistic/shard.*).
      ShardSubproblem sub = make_shard_subproblem(dag, parts[q]);
      std::vector<int> procs;
      for (int k = 0; k < alloc[i]; ++k) procs.push_back(next_proc++);
      MbspInstance sub_inst{sub.dag, slice_architecture(inst.arch, procs)};
      // Warm start: greedy two-stage on the subproblem, then LNS.
      GreedyBspScheduler greedy;
      const BspSchedule bsp = greedy.schedule(sub_inst.dag, sub_inst.arch);
      const ComputePlan initial =
          plan_from_bsp(sub_inst.dag, bsp, sub_inst.arch.num_processors);
      LnsOptions lns = options.lns;
      lns.seed += static_cast<std::uint64_t>(q) * 1000003;
      const LnsResult improved = improve_plan(sub_inst, initial, lns);

      // Splice into the global plan.
      for (int lp = 0; lp < sub_inst.arch.num_processors; ++lp) {
        const int gp = procs[static_cast<std::size_t>(lp)];
        for (const PlannedCompute& pc : improved.plan.seq[lp]) {
          global_plan.seq[gp].push_back(
              {sub.globals[pc.node], superstep_offset + pc.superstep});
        }
      }
      wave_supersteps =
          std::max(wave_supersteps, improved.plan.num_supersteps());
    }
    superstep_offset += std::max(1, wave_supersteps);

    for (int q : wave) {
      for (NodeId c : quotient.children(q)) {
        if (--waiting[c] == 0) ready.push_back(static_cast<int>(c));
      }
    }
  }

  normalize_supersteps(global_plan);
  const PlanValidation ok = validate_plan(dag, global_plan);
  assert(ok.ok);
  (void)ok;
  result.plan = std::move(global_plan);
  result.schedule =
      complete_memory(inst, result.plan, options.lns.completion_policy);
  result.cost = options.lns.cost == CostModel::kSynchronous
                    ? sync_cost(inst, result.schedule)
                    : async_cost(inst, result.schedule);
  return result;
}

}  // namespace mbsp
