#include "src/holistic/divide_conquer.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/topology.hpp"
#include "src/model/cost.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {

namespace {

/// A part as a scheduling subproblem: the part's nodes plus its external
/// inputs (parents outside the part), which become sources of the sub-DAG.
struct SubProblem {
  std::vector<NodeId> globals;   // sub node id -> global node id
  ComputeDag dag;
  std::vector<int> procs;        // global processor ids assigned
};

SubProblem make_subproblem(const ComputeDag& dag,
                           const std::vector<NodeId>& part_nodes) {
  SubProblem sub;
  std::vector<char> in_part(dag.num_nodes(), 0);
  for (NodeId v : part_nodes) in_part[v] = 1;
  // External inputs first (sources of the sub-DAG), then the part's nodes.
  std::vector<char> added(dag.num_nodes(), 0);
  for (NodeId v : part_nodes) {
    for (NodeId u : dag.parents(v)) {
      if (!in_part[u] && !added[u]) {
        added[u] = 1;
        sub.globals.push_back(u);
      }
    }
  }
  const std::size_t num_external = sub.globals.size();
  for (NodeId v : part_nodes) sub.globals.push_back(v);
  std::vector<NodeId> local(dag.num_nodes(), kInvalidNode);
  sub.dag.set_name(dag.name() + "#part");
  for (std::size_t i = 0; i < sub.globals.size(); ++i) {
    const NodeId v = sub.globals[i];
    // External inputs keep their memory weight but are not computed.
    const double omega = i < num_external ? 0.0 : dag.omega(v);
    local[v] = sub.dag.add_node(omega, dag.mu(v));
  }
  for (NodeId v : part_nodes) {
    for (NodeId u : dag.parents(v)) {
      sub.dag.add_edge(local[u], local[v]);
    }
  }
  return sub;
}

}  // namespace

DivideConquerResult divide_conquer_schedule(
    const MbspInstance& inst, const DivideConquerOptions& options) {
  const ComputeDag& dag = inst.dag;
  const int P = inst.arch.num_processors;
  DivideConquerResult result;

  const auto parts =
      recursive_acyclic_partition(dag, options.max_part_size,
                                  options.partition);
  result.num_parts = parts.size();

  // Wave packing: a part is ready when all its quotient predecessors have
  // been scheduled; each wave takes up to P mutually independent ready
  // parts and splits the processors proportionally to total work.
  std::vector<int> part_of(dag.num_nodes(), -1);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (NodeId v : parts[i]) part_of[v] = static_cast<int>(i);
  }
  const ComputeDag quotient =
      quotient_graph(dag, part_of, static_cast<int>(parts.size()));
  std::vector<int> waiting(parts.size(), 0);
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    waiting[q] = static_cast<int>(quotient.parents(q).size());
  }
  std::vector<int> ready;
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    if (waiting[q] == 0) ready.push_back(static_cast<int>(q));
  }

  ComputePlan global_plan;
  global_plan.num_procs = P;
  global_plan.seq.resize(P);
  int superstep_offset = 0;

  while (!ready.empty()) {
    // Largest-work-first wave of at most P parts.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return quotient.omega(a) > quotient.omega(b);
    });
    const int wave_size = std::min<int>(P, static_cast<int>(ready.size()));
    std::vector<int> wave(ready.begin(), ready.begin() + wave_size);
    ready.erase(ready.begin(), ready.begin() + wave_size);

    // Proportional processor allocation (>= 1 each).
    double wave_work = 0;
    for (int q : wave) wave_work += quotient.omega(q);
    std::vector<int> alloc(wave.size(), 1);
    int left = P - static_cast<int>(wave.size());
    for (std::size_t i = 0; i < wave.size() && left > 0; ++i) {
      const int extra = std::min<int>(
          left, static_cast<int>(quotient.omega(wave[i]) / wave_work *
                                 (P - static_cast<double>(wave.size()))));
      alloc[i] += extra;
      left -= extra;
    }
    for (std::size_t i = 0; left > 0; i = (i + 1) % wave.size()) {
      ++alloc[i];
      --left;
    }

    int next_proc = 0;
    int wave_supersteps = 0;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const int q = wave[i];
      SubProblem sub = make_subproblem(dag, parts[q]);
      for (int k = 0; k < alloc[i]; ++k) sub.procs.push_back(next_proc++);

      // The sub-machine keeps each assigned processor's speed, capacity
      // and comm group (groups renumbered dense in first-appearance
      // order), so part-local LNS optimizes against the true hardware.
      Architecture sub_arch =
          Architecture::make(static_cast<int>(sub.procs.size()),
                             inst.arch.fast_memory, inst.arch.g, inst.arch.L);
      if (!inst.arch.is_uniform()) {
        sub_arch.g_in = inst.arch.g_in;
        sub_arch.g_out = inst.arch.g_out;
        sub_arch.L_group = inst.arch.L_group;
        std::vector<int> dense_group(
            static_cast<std::size_t>(inst.arch.num_groups()), -1);
        int next_group = 0;
        for (int gp : sub.procs) {
          sub_arch.speeds.push_back(inst.arch.speed(gp));
          sub_arch.memories.push_back(inst.arch.memory(gp));
          if (!inst.arch.group_of.empty()) {
            int& dense = dense_group[static_cast<std::size_t>(
                inst.arch.group(gp))];
            if (dense < 0) dense = next_group++;
            sub_arch.group_of.push_back(dense);
          }
        }
      }
      MbspInstance sub_inst{sub.dag, std::move(sub_arch)};
      // Warm start: greedy two-stage on the subproblem, then LNS.
      GreedyBspScheduler greedy;
      const BspSchedule bsp = greedy.schedule(sub_inst.dag, sub_inst.arch);
      const ComputePlan initial =
          plan_from_bsp(sub_inst.dag, bsp, sub_inst.arch.num_processors);
      LnsOptions lns = options.lns;
      lns.seed += static_cast<std::uint64_t>(q) * 1000003;
      const LnsResult improved = improve_plan(sub_inst, initial, lns);

      // Splice into the global plan.
      for (int lp = 0; lp < sub_inst.arch.num_processors; ++lp) {
        const int gp = sub.procs[lp];
        for (const PlannedCompute& pc : improved.plan.seq[lp]) {
          global_plan.seq[gp].push_back(
              {sub.globals[pc.node], superstep_offset + pc.superstep});
        }
      }
      wave_supersteps =
          std::max(wave_supersteps, improved.plan.num_supersteps());
    }
    superstep_offset += std::max(1, wave_supersteps);

    for (int q : wave) {
      for (NodeId c : quotient.children(q)) {
        if (--waiting[c] == 0) ready.push_back(static_cast<int>(c));
      }
    }
  }

  normalize_supersteps(global_plan);
  const PlanValidation ok = validate_plan(dag, global_plan);
  assert(ok.ok);
  (void)ok;
  result.plan = std::move(global_plan);
  result.schedule =
      complete_memory(inst, result.plan, options.lns.completion_policy);
  result.cost = options.lns.cost == CostModel::kSynchronous
                    ? sync_cost(inst, result.schedule)
                    : async_cost(inst, result.schedule);
  return result;
}

}  // namespace mbsp
