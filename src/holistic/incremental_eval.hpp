#pragma once
// Incremental evaluation engine for the holistic LNS: applies moves to a
// ComputePlan *in place* as reversible PlanDelta ops and maintains plan
// validity and schedule cost incrementally, so evaluating a move costs
// O(delta) bookkeeping plus a *suffix* of the memory completion instead of
// a full copy + validate + complete + cost pass.
//
// ## Dirty-round invariants
//
// The memory completion is a deterministic left-to-right simulation over
// *rounds* (one maximal segment per participating processor per round;
// memory_completion.cpp) whose cross-processor coupling is forward-only:
// the shared blue set only grows and is only read by later rounds. The
// engine checkpoints the completion state at every round boundary and,
// per move, re-completes only rounds >= b, where b is a *provably safe*
// dirty bound:
//
//  * A move edits processor p around position i. Completion decisions
//    before i on p consult the plan only through position-indexed
//    lookahead (effective_next_need) and, under LRU, position-indexed
//    lookback (last_active). For every node not touched by the edit the
//    answers shift uniformly (order-preserving); for each touched node v
//    they are unchanged for queries before d(v) = (v's last
//    occurrence-or-use position on p strictly before i) + 1. Both
//    eviction policies only *compare* those values, so every decision in
//    rounds whose segments end at positions <= d(v) - 1 is bitwise
//    reproduced; b is the committed round containing that position
//    (conservatively shifted down by the move's insert count on p, so
//    candidate-frame positions always under-approximate committed ones).
//  * save_required(v) is a global property (which processors compute /
//    consume v); if a move flips it, rounds from v's earliest
//    occurrence's superstep on are dirty too.
//  * Merging superstep s with s+1 changes nothing below the first round
//    of s, and on each processor the completion is bitwise identical up
//    to the committed round whose segment first *reaches* the old block
//    boundary (every earlier segment ended on a feasibility failure, not
//    on the block limit, so its planning loop replays identically); b is
//    the min over affected processors of that crossing round - 1. A merge
//    where one side is empty on every processor (in particular every
//    gap-closing merge after an erase) is a pure relabel: it costs *no*
//    re-completion at all, only a label fixup of the kept round table.
//    Splits are bounded symmetrically.
//
// Everything the suffix run reuses — boundary caches, blue rounds, home
// groups, per-slot cost rows, per-(slot, proc) async op lists — is
// restored exactly as a from-scratch run of the edited plan would have
// produced it, so the incremental cost is *bitwise identical* to the full
// evaluator (evaluate_plan), which remains the oracle: debug builds
// assert equality after every move, and tests/test_incremental_eval.cpp
// drives randomized apply/undo sequences against it.
//
// Every cost model / eviction policy combination runs incrementally:
// synchronous cost folds per-slot accumulator rows (heterogeneous
// speeds/memories/comm groups priced as in docs/MACHINES.md), the
// asynchronous cost replays the finishing-time recursion over per-(slot,
// proc) operation lists kept incrementally, and the LRU policy's
// last-active timestamps are reconstructed from the occurrence index
// (they are always the position of a committed compute-or-use, so a
// binary search recovers them exactly).
//
// ## Memory layout (docs/PERFORMANCE.md)
//
// The move loop runs millions of evaluations; its state is laid out to
// make an evaluation allocation-free in steady state:
//  * committed checkpoints are structure-of-arrays: flat per-(round,
//    proc) position/weight/accumulator arrays plus one pooled cache-row
//    array with offsets — no per-round vectors;
//  * per-eval scratch (checkpoint rows, async op lists, blue/home logs)
//    lives in a bump Arena (src/util/arena.hpp), reset per evaluation;
//  * the hot per-node overlays (tentative membership, blue, hoist,
//    remaining-need; the eval cache sets) are dense epoch-stamped arrays
//    — one direct indexed load per probe, O(1) clears by epoch bump —
//    while the sparse, rarely-touched validator remote-requirement rows
//    stay open-addressing FlatMaps (src/util/flat_map.hpp);
//  * slot cost accumulators are structure-of-arrays folded by contiguous
//    per-field loops in finalize_cost (same fp order as the oracle).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/holistic/lns.hpp"
#include "src/model/cost.hpp"
#include "src/twostage/compute_plan.hpp"
#include "src/util/arena.hpp"
#include "src/util/flat_map.hpp"

namespace mbsp {

class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const MbspInstance& inst, const LnsOptions& options);

  /// Attaches to `plan` (superstep indices must be dense 0..k-1) and fully
  /// evaluates it. Returns the cost, bitwise equal to evaluate_plan's.
  double attach(const ComputePlan& plan);

  const ComputePlan& plan() const { return plan_; }
  PlanOccurrenceIndex& index() { return index_; }
  /// The incremental completion path covers every cost model and
  /// eviction policy; kept (always true) so callers and tests can assert
  /// no configuration falls back to full evaluation.
  bool incremental() const { return true; }

  struct Outcome {
    bool valid = false;
    double cost = 0;
  };

  /// Move protocol: begin_move(); apply_op(...) for each edit;
  /// finish_move() validates and costs the edited plan. After
  /// finish_move, call exactly one of commit() / rollback().
  void begin_move();
  void apply_op(const PlanDeltaOp& op);
  /// Reusable op buffer for move generators: fill it, pass it to
  /// apply_op (which copies it into the pooled move log). Its `cuts`
  /// capacity is retained across proposals, so structural moves allocate
  /// nothing in steady state.
  PlanDeltaOp& scratch_op() { return scratch_op_; }
  Outcome finish_move();
  /// Keeps the applied move; promotes the scratch evaluation state.
  void commit();
  /// Undoes the applied move; the plan and all caches return to the
  /// pre-begin_move state bitwise.
  void rollback();

  /// Number of completion rounds the last finish_move re-derived (the
  /// dirty suffix). Benches and tests use this to observe how
  /// incremental the search actually is.
  long last_dirty_rounds() const { return last_dirty_; }
  /// Total committed completion rounds of the current plan.
  long committed_rounds() const { return committed_rounds_; }

 private:
  struct Segment {
    std::vector<NodeId> loads, pre_saves, pre_deletes, post_saves,
        post_deletes;
    std::vector<std::pair<char, NodeId>> ops;  ///< (is_compute, node)
    std::int64_t count = 0;
    std::vector<NodeId> final_cache;
    double final_weight = 0;
  };
  /// Per-try overlay entry, one dense slot per node; live iff
  /// stamp == t_epoch_ (one indexed load per probe, no hashing).
  struct TryOv {
    std::int8_t member = -1;  ///< -1 inherit from eval cache, else 0/1
    std::int8_t blue = 0;     ///< made blue in this try
    std::int8_t hoist = 0;    ///< hoistable snapshot (set once post-load)
    std::int8_t in_added = 0; ///< already logged in t_added_
    std::int32_t remneed = 0; ///< remaining in-segment parent uses
    std::uint32_t stamp = 0;  ///< live iff == t_epoch_
  };
  /// Per-segment overlay entry (cleared per plan_segment, shared across
  /// the growing try counts); live iff stamp == s_epoch_.
  struct SegOv {
    char produced = 0, load = 0, needed = 0;
    std::uint32_t stamp = 0;  ///< live iff == s_epoch_
  };
  struct BlueRec {
    NodeId node;
    int round;
  };
  struct HomeRec {
    NodeId node;
    int grp;
  };
  struct PendRec {
    NodeId node;
    int proc;
  };
  /// Per-(slot, proc) async operation lists of the two active slots.
  struct SlotOps {
    std::vector<NodeId> comp, save, load;
    void reset() {
      comp.clear();
      save.clear();
      load.clear();
    }
  };

  // -- validation ----------------------------------------------------------
  bool validate_candidate();
  bool rescan_proc(int p);

  // -- save_required maintenance ------------------------------------------
  void bump_occurrence_counts(int p, NodeId v, int delta);
  bool compute_save_required(NodeId v) const;
  void refresh_save_required();

  // -- completion ----------------------------------------------------------
  double evaluate_from(int b);
  void restore_boundary(int b);
  void record_checkpoint();
  bool plan_segment(int p, int superstep);
  bool run_phases(int p, std::int64_t i0, std::int64_t count);
  void commit_segment(int p);
  std::int64_t effective_next_need(int p,
                                   const PlanOccurrenceIndex::ProcPositions& pp,
                                   NodeId v, std::int64_t from);
  std::int64_t next_need_refill(int p,
                                const PlanOccurrenceIndex::ProcPositions& pp,
                                NodeId v, std::int64_t from);
  std::int64_t committed_last_active(
      const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
      std::int64_t before) const;
  int dirty_bound();
  double finalize_cost();
  double finalize_async_cost();
  void promote_eval();
  void reserve_from_attached();

  // -- round-table helpers (committed frame) -------------------------------
  int first_round_of(int superstep) const;
  int round_of_pos(int p, std::int64_t pos) const;
  int crossing_round(int p, std::int64_t cut) const;

  // eval/try-local cache + blue reads (overlay over committed state);
  // defined in-class so the run_phases loops inline them (they run
  // hundreds of millions of times per bench).
  bool eval_cache_member(int p, NodeId v) const { return ec_member(p, v); }
  bool eval_blue(NodeId v) const {
    if (eb_contains(v)) return true;
    return blue_round_[static_cast<std::size_t>(v)] < eval_b_;
  }
  void eval_blue_set(NodeId v) {
    std::uint32_t& stamp = eb_stamp_[static_cast<std::size_t>(v)];
    if (stamp == eb_epoch_) return;
    stamp = eb_epoch_;
    eval_blued_.push_back({v, eval_cur_});
  }
  bool try_member(int p, NodeId v) const {
    const TryOv* ov = try_find(v);
    if (ov != nullptr && ov->member >= 0) return ov->member != 0;
    return ec_member(p, v);
  }
  void try_set_member(int p, NodeId v, bool in) {
    TryOv& ov = try_ov(v);
    ov.member = in ? 1 : 0;
    if (in && !ov.in_added && !ec_member(p, v)) {
      ov.in_added = 1;
      t_added_.push_back(v);
    }
  }
  bool try_blue(NodeId v) const {
    const TryOv* ov = try_find(v);
    if (ov != nullptr && ov->blue) return true;
    return eval_blue(v);
  }

  // -- dense epoch-stamped overlay primitives ------------------------------
  // A slot is live iff its stamp equals the overlay's epoch; bumping the
  // epoch empties the overlay in O(1). On the (astronomically rare)
  // uint32 wrap the stamps are zero-filled so stale slots cannot alias.
  TryOv& try_ov(NodeId v) {
    TryOv& o = t_ov_[static_cast<std::size_t>(v)];
    if (o.stamp != t_epoch_) {
      o = TryOv{};
      o.stamp = t_epoch_;
    }
    return o;
  }
  const TryOv* try_find(NodeId v) const {
    const TryOv& o = t_ov_[static_cast<std::size_t>(v)];
    return o.stamp == t_epoch_ ? &o : nullptr;
  }
  void clear_try_overlay() {
    if (++t_epoch_ == 0) {
      for (TryOv& o : t_ov_) o.stamp = 0;
      t_epoch_ = 1;
    }
  }
  SegOv& seg_ov(NodeId v) {
    SegOv& o = s_ov_[static_cast<std::size_t>(v)];
    if (o.stamp != s_epoch_) {
      o = SegOv{};
      o.stamp = s_epoch_;
    }
    return o;
  }
  const SegOv* seg_find(NodeId v) const {
    const SegOv& o = s_ov_[static_cast<std::size_t>(v)];
    return o.stamp == s_epoch_ ? &o : nullptr;
  }
  void clear_seg_overlay() {
    if (++s_epoch_ == 0) {
      for (SegOv& o : s_ov_) o.stamp = 0;
      s_epoch_ = 1;
    }
  }
  bool ec_member(int p, NodeId v) const {
    return ec_stamp_[static_cast<std::size_t>(p) * n_ +
                     static_cast<std::size_t>(v)] ==
           ec_epoch_[static_cast<std::size_t>(p)];
  }
  void ec_insert(int p, NodeId v) {
    ec_stamp_[static_cast<std::size_t>(p) * n_ + static_cast<std::size_t>(v)] =
        ec_epoch_[static_cast<std::size_t>(p)];
  }
  void ec_clear(int p) {
    std::uint32_t& epoch = ec_epoch_[static_cast<std::size_t>(p)];
    if (++epoch == 0) {
      const std::ptrdiff_t base =
          static_cast<std::ptrdiff_t>(static_cast<std::size_t>(p) * n_);
      std::fill(ec_stamp_.begin() + base,
                ec_stamp_.begin() + base + static_cast<std::ptrdiff_t>(n_),
                0u);
      epoch = 1;
    }
  }
  bool eb_contains(NodeId v) const {
    return eb_stamp_[static_cast<std::size_t>(v)] == eb_epoch_;
  }
  void eb_clear() {
    if (++eb_epoch_ == 0) {
      std::fill(eb_stamp_.begin(), eb_stamp_.end(), 0u);
      eb_epoch_ = 1;
    }
  }
  // Drops proc p's memoized next-need lookahead (its candidate-frame
  // occurrence positions changed).
  void nn_invalidate(int p) {
    std::uint32_t& epoch = nn_epoch_[static_cast<std::size_t>(p)];
    if (++epoch == 0) {
      const std::ptrdiff_t base =
          static_cast<std::ptrdiff_t>(static_cast<std::size_t>(p) * n_);
      std::fill(nn_stamp_.begin() + base,
                nn_stamp_.begin() + base + static_cast<std::ptrdiff_t>(n_),
                0u);
      epoch = 1;
    }
  }

  // -- home-group bookkeeping (heterogeneous comm groups) ------------------
  int eval_home(NodeId v) const;
  void eval_assign_home(NodeId v, int grp);
  double comm_cost(int p, int home) const;

  const MbspInstance& inst_;
  const ComputeDag& dag_;
  LnsOptions options_;
  bool async_ = false;    ///< asynchronous cost model
  bool sync_ = true;      ///< !async_: maintain per-slot sync cost rows
  bool lru_ = false;      ///< LRU eviction (else clairvoyant)
  bool uniform_ = true;   ///< flat (P, r, g, L) machine
  int P_ = 1;
  std::size_t n_ = 0;
  double g_ = 0, L_ = 0;
  bool single_group_ = true;
  double g_in_ = 0, g_out_ = 0;
  std::vector<double> mem_;    ///< per-proc capacity
  std::vector<double> speed_;  ///< per-proc speed (divisor at row fold)
  std::vector<int> grp_;       ///< per-proc comm group

  ComputePlan plan_;
  PlanOccurrenceIndex index_;

  // -- committed state -----------------------------------------------------
  std::vector<long> comp_cnt_, use_cnt_;  // [p * n + v]
  std::vector<int> comp_proc_count_;      // [v]
  std::vector<char> save_req_;            // [v]
  std::vector<int> blue_round_;           // [v]: -1 sources, else first
                                          // blue round, INT_MAX never
  std::vector<int> home_group_;           // [v]: first saver's group; valid
                                          // exactly when blue_round_ is
  // blued-by-round pool: nodes first blued in round r are
  // blued_nodes_[blued_start_[r] .. blued_start_[r+1]).
  std::vector<NodeId> blued_nodes_;
  std::vector<std::int64_t> blued_start_;  // [R + 1]
  std::vector<SyncStepCost> rows_;         // per slot (sync only)
  std::vector<char> row_empty_;
  // row_prefix_[i]: the cost accumulator state after folding rows [0..i]
  // (skipping empties) — finalize_cost resumes from it instead of
  // rescanning the committed prefix, preserving the exact fp add order.
  std::vector<SyncCostBreakdown> row_prefix_;

  // Round-granular checkpoints, structure-of-arrays: row r (0..R) is the
  // completion state at the boundary *before* round r; the straddling
  // slot r holds the body of round r-1 so its partial accumulators are
  // part of the boundary. All arrays are indexed [r * P + p].
  int committed_rounds_ = 0;  // R
  int committed_steps_ = 0;   // K (committed superstep count)
  std::vector<std::int64_t> ck_pos_;
  std::vector<double> ck_weight_, ck_comp_, ck_save_, ck_load_;
  std::vector<char> ck_any_;
  std::vector<std::int64_t> ck_cache_start_;  // [(R+1)*P + 1]
  std::vector<NodeId> ck_cache_nodes_;        // pooled cache rows
  std::vector<int> ck_step_;           // [R]: superstep round r processed
  std::vector<int> step_first_round_;  // [K+1], [K] = R

  // Committed per-(slot, proc) async op lists (async cost only), pooled
  // CSR: slot s, proc p occupies [start[s*P+p], start[s*P+p+1]).
  std::vector<NodeId> as_comp_nodes_, as_save_nodes_, as_load_nodes_;
  std::vector<std::int64_t> as_comp_start_, as_save_start_, as_load_start_;
  // Boundary r: how many of slot r's saves existed at the boundary (the
  // post-saves of round r-1; the rest are re-derived stage pre-saves).
  std::vector<std::int32_t> as_save_prefix_;  // [(R+1)*P]

  // Validator: committed remote-requirement rows, R_map_[p][v] = min
  // superstep of an occurrence on p that needs v from another processor
  // (absent = none). Scratch rows are rebuilt per touched proc and
  // swapped in on commit.
  std::vector<FlatMap<NodeId, int>> R_map_, R_scratch_map_;

  // -- per-move scratch ----------------------------------------------------
  bool in_move_ = false;
  // Pooled move log (apply order); slots are reused across moves so the
  // per-op `cuts` vectors keep their capacity.
  std::vector<PlanDeltaOp> delta_ops_;
  std::size_t delta_size_ = 0;
  PlanDeltaOp scratch_op_;
  std::vector<char> proc_touched_;
  std::vector<int> touched_procs_;
  std::vector<int> inserts_on_proc_;  // kInsert count per touched proc
  std::vector<std::pair<NodeId, int>> ed_before_;  // (node, committed ed)
  std::vector<NodeId> affected_nodes_;             // counts changed
  std::vector<std::pair<NodeId, char>> save_req_before_;
  // Superstep-label fixups of the *kept* round table for pure-relabel
  // merges/splits (threshold, delta): applied to ck_step_ at promote.
  std::vector<std::pair<int, int>> relabel_fixups_;
  long last_dirty_ = 0;

  // -- per-eval scratch (arena-backed where append-only) -------------------
  Arena eval_arena_;
  int eval_b_ = 0;  ///< restart round of the running evaluation
  // Per-proc eval cache membership, dense epoch-stamped: v is in proc
  // p's eval cache iff ec_stamp_[p * n + v] == ec_epoch_[p].
  std::vector<std::uint32_t> ec_stamp_;       // [p * n + v]
  std::vector<std::uint32_t> ec_epoch_;       // [p]
  std::vector<std::vector<NodeId>> ec_list_;  // per-proc ordered cache
  std::vector<double> ec_weight_;
  std::vector<std::uint32_t> eb_stamp_;  // [v]: blued this eval iff == epoch
  std::uint32_t eb_epoch_ = 0;
  FlatMap<NodeId, int> eh_map_;  // home overlay (set at first save)
  std::vector<PendRec> pending_blue_;  // post_saves of the running round
  ArenaVector<BlueRec> eval_blued_;
  ArenaVector<HomeRec> eval_homes_;
  std::vector<std::int64_t> pos_;
  // Slot cost accumulators, structure-of-arrays: local index
  // (slot - first_eval_slot_) * P + p.
  std::vector<double> slot_comp_, slot_save_, slot_load_;
  std::vector<char> slot_any_;
  int first_eval_slot_ = 0;
  int num_slots_ = 0;
  int eval_cur_ = 0;  ///< round being processed / straddling slot index
  std::vector<SyncStepCost> scratch_rows_;  // slots >= first_eval_slot_
  std::vector<char> scratch_row_empty_;
  // Scratch checkpoint rows (boundaries b+1 .. R_cand), SoA like ck_*.
  ArenaVector<std::int64_t> scr_pos_;
  ArenaVector<double> scr_weight_, scr_comp_, scr_save_, scr_load_;
  ArenaVector<char> scr_any_;
  ArenaVector<std::int64_t> scr_cache_start_;
  ArenaVector<NodeId> scr_cache_nodes_;
  ArenaVector<int> scr_round_steps_;  // superstep of rounds b..R_cand-1
  int cand_rounds_ = 0;
  int cand_steps_ = 0;
  // Async: the two active slots' op lists and the flushed scratch pool
  // (slots b .. R_cand, same CSR layout as the committed pool).
  std::vector<SlotOps> async_cur_, async_next_;
  ArenaVector<NodeId> scr_as_comp_nodes_, scr_as_save_nodes_,
      scr_as_load_nodes_;
  ArenaVector<std::int64_t> scr_as_comp_start_, scr_as_save_start_,
      scr_as_load_start_;
  ArenaVector<std::int32_t> scr_as_save_prefix_;
  // Async finalize scratch (epoch-stamped per finalize).
  int async_epoch_ = 0;
  std::vector<int> fs_stamp_;       // [v]
  std::vector<int> first_save_;     // [v]: slot of the first save
  std::vector<double> gets_blue_;   // [v]: availability time
  std::vector<double> now_;         // [p]: finishing time per proc

  // -- per-segment / per-try scratch (dense epoch-stamped) ----------------
  std::vector<SegOv> s_ov_;  // [v]
  std::uint32_t s_epoch_ = 0;
  std::vector<NodeId> s_loads_;
  double s_load_weight_ = 0;
  std::vector<TryOv> t_ov_;  // [v]
  std::uint32_t t_epoch_ = 0;
  std::vector<NodeId> t_added_;  // try members not in the eval cache list
  double t_weight_ = 0;
  Segment cur_seg_, best_seg_;
  std::vector<NodeId> sorted_members_;

  // effective_next_need memo: the (use, comp) lower-bound pair of node v
  // on proc p at query position nn_from_; live iff the stamp matches the
  // proc's epoch. Survives across moves for untouched processors.
  std::vector<std::uint32_t> nn_stamp_;                   // [p * n + v]
  std::vector<std::uint32_t> nn_epoch_;                   // [p]
  std::vector<std::int64_t> nn_from_, nn_use_, nn_comp_;  // [p * n + v]

  // validator scratch
  int scan_epoch_ = 0;
  std::vector<int> scan_stamp_;
  int affected_epoch_ = 0;
  std::vector<int> affected_stamp_;
};

}  // namespace mbsp
