#pragma once
// Incremental evaluation engine for the holistic LNS: applies moves to a
// ComputePlan *in place* as reversible PlanDelta ops and maintains plan
// validity and schedule cost incrementally, so evaluating a move costs
// O(delta) bookkeeping plus a *suffix* of the memory completion instead of
// a full copy + validate + complete + cost pass.
//
// ## Dirty-superstep invariants
//
// The synchronous cost is separable per MBSP superstep (cost.hpp's
// SyncStepCost rows), and the memory completion is a deterministic
// left-to-right simulation over plan supersteps whose cross-processor
// coupling is forward-only (the shared blue set only grows, and is only
// read by later rounds). The engine therefore checkpoints the completion
// state at every plan-superstep boundary and, per move, recompletes only
// supersteps >= b, where b is a *provably safe* dirty bound:
//
//  * A move edits processor p around position i. Completion decisions
//    before i on p consult the future only through
//    effective_next_need(p, v, .) — whose answers, for every node not
//    touched by the edit, are shifted uniformly (order-preserving), and
//    for each touched node v (the moved occurrence's node and its
//    parents) are unchanged for queries before d(v) = (v's last
//    occurrence-or-use position on p before i) + 1. The eviction policy
//    (clairvoyant) only *compares* next-need values, so every decision
//    strictly before min_v d(v) is bitwise reproduced; b is the plan
//    superstep containing that position.
//  * save_required(v) is a global property (which processors compute /
//    consume v); if a move flips it, supersteps from v's earliest
//    occurrence on are dirty too.
//  * Moves that change the superstep *structure* (merge / split / a gap
//    close after a move emptied a superstep) relabel every superstep
//    >= s but move no occurrence positions — and next-need lookahead is
//    position-based — so they restart from b = s.
//
// Everything the suffix run reuses — boundary caches, blue timestamps,
// per-slot cost rows, per-proc position indexes — is restored exactly as
// a from-scratch run of the edited plan would have produced it, so the
// incremental cost is *bitwise identical* to the full evaluator
// (evaluate_plan), which remains the oracle: debug builds assert equality
// after every move, and tests/test_incremental_eval.cpp drives randomized
// apply/undo sequences against it.
//
// ## Heterogeneous machines
//
// The engine prices per-processor compute speeds, per-processor memory
// capacities and two-level communication groups (docs/MACHINES.md)
// natively: per-slot accumulators keep *raw* per-processor work sums
// (speed division happens once, at row-fold time, in the same order as
// the full evaluator), transfer ops are priced per operation against the
// value's home group, and home assignments (group of the first saver)
// are tracked exactly like blue timestamps — committed per superstep,
// overlaid per evaluation, restored bitwise on rollback. Completion
// *decisions* depend only on capacities (static per processor), so the
// dirty-bound proof is untouched; homes and speeds only reprice rows the
// move already re-derives. On uniform machines every factor degenerates
// to the historical scalars and results are bitwise unchanged.
//
// Restrictions: the incremental completion path requires the synchronous
// cost model and the clairvoyant completion policy (the LNS defaults).
// Other configurations still get in-place apply/undo and incremental
// validation, but each candidate is costed by the full evaluator.

#include <cstdint>
#include <vector>

#include "src/holistic/lns.hpp"
#include "src/model/cost.hpp"
#include "src/twostage/compute_plan.hpp"

namespace mbsp {

class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const MbspInstance& inst, const LnsOptions& options);

  /// Attaches to `plan` (superstep indices must be dense 0..k-1) and fully
  /// evaluates it. Returns the cost, bitwise equal to evaluate_plan's.
  double attach(const ComputePlan& plan);

  const ComputePlan& plan() const { return plan_; }
  PlanOccurrenceIndex& index() { return index_; }
  /// True when the incremental completion path is active (synchronous
  /// cost + clairvoyant policy); other configurations cost each
  /// candidate with the full evaluator, so callers should not batch
  /// wall-clock polls around finish_move.
  bool incremental() const { return incremental_; }

  struct Outcome {
    bool valid = false;
    double cost = 0;
  };

  /// Move protocol: begin_move(); apply_op(...) for each edit;
  /// finish_move() validates and costs the edited plan. After
  /// finish_move, call exactly one of commit() / rollback().
  void begin_move();
  void apply_op(const PlanDeltaOp& op);
  Outcome finish_move();
  /// Keeps the applied move; promotes the scratch evaluation state.
  void commit();
  /// Undoes the applied move; the plan and all caches return to the
  /// pre-begin_move state bitwise.
  void rollback();

  /// Number of supersteps the last finish_move re-derived (the dirty
  /// suffix; equals the superstep count on full fallbacks). Benches use
  /// this to report how incremental the search actually is.
  long last_dirty_supersteps() const { return last_dirty_; }

 private:
  struct ProcCheckpoint {
    std::vector<NodeId> cache;  ///< red set at the boundary
    double weight = 0;          ///< cache weight (historical fp trajectory)
    // Partial phase-cost accumulators of the straddling slot (the body of
    // the previous superstep's last round; the next superstep stages into
    // the same slot).
    double comp_sum = 0, save_sum = 0, load_sum = 0;
    char any = 0;
  };
  struct Checkpoint {
    int cur = 0;  ///< straddling slot index at the boundary
    std::vector<ProcCheckpoint> procs;
    std::vector<std::int64_t> pos;  ///< per-proc plan position
  };
  struct SlotAcc {
    double comp = 0, save = 0, load = 0;
    char any = 0;
  };
  struct Segment {
    std::vector<NodeId> loads, pre_saves, pre_deletes, post_saves,
        post_deletes;
    std::vector<std::pair<char, NodeId>> ops;  ///< (is_compute, node)
    std::int64_t count = 0;
    std::vector<NodeId> final_cache;
    double final_weight = 0;
  };

  // -- validation ----------------------------------------------------------
  bool validate_candidate();
  bool rescan_proc(int p);

  // -- save_required maintenance ------------------------------------------
  void bump_occurrence_counts(int p, NodeId v, int delta);
  bool compute_save_required(NodeId v) const;
  void refresh_save_required();

  // -- completion ----------------------------------------------------------
  double evaluate_from(int b);
  void restore_boundary(int b);
  void record_checkpoint(int k);
  bool plan_segment(int p, int superstep);
  bool run_phases(int p, std::int64_t i0, std::int64_t count);
  void commit_segment(int p, int superstep);
  std::int64_t effective_next_need(
      const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
      std::int64_t from) const;
  int dirty_bound();
  double finalize_cost();
  void promote_eval();

  // eval/try-local cache + blue reads (overlay over committed state)
  bool eval_cache_member(int p, NodeId v) const;
  void eval_cache_set(int p, NodeId v, bool in);
  bool eval_blue(NodeId v) const;
  void eval_blue_set(NodeId v, int step);
  bool try_member(int p, NodeId v) const;
  void try_set_member(NodeId v, bool in);
  bool try_blue(NodeId v) const;

  SlotAcc& slot_acc(int slot, int p);

  // -- home-group bookkeeping (heterogeneous comm groups) ------------------
  int eval_home(NodeId v) const;
  void eval_assign_home(NodeId v, int grp);
  double comm_cost(int p, int home) const;

  const MbspInstance& inst_;
  const ComputeDag& dag_;
  LnsOptions options_;
  bool incremental_;  ///< sync + clairvoyant: full machinery enabled
  int P_ = 1;
  std::size_t n_ = 0;
  double g_ = 0, L_ = 0;
  bool single_group_ = true;
  double g_in_ = 0, g_out_ = 0;
  std::vector<double> mem_;    ///< per-proc capacity
  std::vector<double> speed_;  ///< per-proc speed (divisor at row fold)
  std::vector<int> grp_;       ///< per-proc comm group

  ComputePlan plan_;
  PlanOccurrenceIndex index_;

  // -- committed state -----------------------------------------------------
  std::vector<long> comp_cnt_, use_cnt_;  // [p * n + v]
  std::vector<int> comp_proc_count_;      // [v]
  std::vector<char> save_req_;            // [v]
  std::vector<int> blue_step_;            // [v]: -1 sources, else first
                                          // blue superstep, INT_MAX never
  std::vector<int> home_group_;           // [v]: first saver's group; valid
                                          // exactly when blue_step_ is
  std::vector<std::vector<NodeId>> blued_in_step_;  // [k]
  std::vector<SyncStepCost> rows_;
  std::vector<char> row_empty_;
  // row_prefix_[i]: the cost accumulator state after folding rows [0..i]
  // (skipping empties) — finalize_cost resumes from it instead of
  // rescanning the committed prefix, preserving the exact fp add order.
  std::vector<SyncCostBreakdown> row_prefix_;
  std::vector<Checkpoint> checkpoints_;  // [0..K]
  // Validator: R_[p][v] = min superstep of an occurrence on p that needs v
  // from another processor (INT_MAX if none); req_nodes_[p] lists v's with
  // an entry (for sparse resets).
  std::vector<std::vector<int>> R_, R_scratch_;
  std::vector<std::vector<NodeId>> req_nodes_, req_nodes_scratch_;

  // -- per-move scratch ----------------------------------------------------
  bool in_move_ = false;
  PlanDelta delta_;
  std::vector<char> proc_touched_;
  std::vector<int> touched_procs_;
  std::vector<std::pair<NodeId, int>> ed_before_;  // (node, committed ed)
  std::vector<NodeId> affected_nodes_;             // counts changed
  std::vector<std::pair<NodeId, char>> save_req_before_;
  long last_dirty_ = 0;

  // -- per-eval scratch ----------------------------------------------------
  int eval_epoch_ = 0;
  int eval_b_ = 0;
  std::vector<int> ec_stamp_;  // [p * n + v]
  std::vector<char> ec_flag_;
  std::vector<std::vector<NodeId>> ec_list_;
  std::vector<double> ec_weight_;
  std::vector<int> eb_stamp_;  // [v] blue overlay
  std::vector<int> eh_stamp_;  // [v] home overlay (set at first save)
  std::vector<int> eval_home_ov_;  // [v] overlay home group
  std::vector<std::pair<NodeId, int>> pending_blue_;  // (node, saver proc)
  std::vector<std::pair<NodeId, int>> eval_blued_;
  std::vector<std::pair<NodeId, int>> eval_homes_;  // (node, home group)
  std::vector<std::int64_t> pos_;
  std::vector<SlotAcc> slot_accs_;  // [(slot - first_eval_slot_) * P + p]
  int first_eval_slot_ = 0;
  int num_slots_ = 0;
  int eval_cur_ = 0;  ///< straddling slot index of the running completion
  std::vector<SyncStepCost> scratch_rows_;  // slots >= first_eval_slot_
  std::vector<char> scratch_row_empty_;
  std::vector<Checkpoint> scratch_checkpoints_;  // [b+1 .. K_cand]
  int scratch_ck_base_ = 0;
  int cand_supersteps_ = 0;

  // -- per-segment / per-try scratch --------------------------------------
  int seg_epoch_ = 0;
  std::vector<int> s_produced_stamp_, s_load_stamp_, s_needed_stamp_;
  std::vector<NodeId> s_loads_;
  double s_load_weight_ = 0;
  int try_epoch_ = 0;
  std::vector<int> t_stamp_;  // [v] membership overlay stamp
  std::vector<char> t_flag_;
  std::vector<int> t_inlist_stamp_;
  std::vector<int> t_blue_stamp_;
  std::vector<int> t_hoist_stamp_;
  std::vector<char> t_hoist_flag_;
  std::vector<int> t_remneed_stamp_;
  std::vector<long> t_remneed_;
  std::vector<NodeId> t_list_;
  double t_weight_ = 0;
  Segment cur_seg_, best_seg_;
  std::vector<NodeId> sorted_members_;
  int commit_stamp_epoch_ = 0;
  std::vector<int> commit_stamp_;

  // validator scratch
  int scan_epoch_ = 0;
  std::vector<int> scan_stamp_;
  int affected_epoch_ = 0;
  std::vector<int> affected_stamp_;
};

}  // namespace mbsp
