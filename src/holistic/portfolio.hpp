#pragma once
// Parallel portfolio LNS: K simulated-annealing LNS workers run
// concurrently on a ThreadPool (one per improve() call; sized to the
// worker count by default), each on its own deterministically
// derived seed (SplitMix64 of the base seed and the worker index) and an
// optional per-worker move-mask / temperature profile, exchanging the best
// incumbent plan at fixed iteration-count epochs.
//
// ## Epoch model
//
// A worker's total iteration budget is divided into `epochs` equal slices.
// Between slices the portfolio exchanges incumbents: the globally best
// plan found so far (ties broken by lowest worker index) replaces a
// worker's current plan whenever it is strictly cheaper, so good moves
// propagate while the leading worker keeps its own trajectory.
//
// Two execution modes:
//
//  * Deterministic (default): epochs are synchronous barriers. All K
//    epoch-slices run in parallel, the exchange happens only after every
//    worker reached the barrier, and the incumbent scan is ordered by
//    worker index. The outcome is bitwise reproducible for a fixed
//    (seed, workers, epochs, profile) — independent of the pool's thread
//    count and of thread timing — under the repo's reproducibility
//    convention (budget_ms = 0 plus a finite max_iterations; a wall-clock
//    budget cuts trajectories by elapsed time and is inherently timing-
//    dependent, in the portfolio exactly as in improve_plan).
//  * free_running: no barrier. Each worker runs all its slices back to
//    back, publishing to / adopting from a mutex-protected shared
//    incumbent at slice boundaries. Maximum wall-clock throughput, no
//    run-to-run reproducibility guarantee.
//
// With workers = 1 and epochs = 1 both modes degenerate to a verbatim
// improve_plan call: the result is bitwise identical to single-worker
// LNS (enforced by tests/test_portfolio.cpp). In every configuration the
// returned plan is never worse than the warm start, because each slice is
// an improve_plan run and improve_plan never worsens its input.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/holistic/lns.hpp"

namespace mbsp {

class ThreadPool;

/// Per-worker diversification of the portfolio.
enum class PortfolioProfile {
  /// Every worker runs the base LnsOptions; only the seed differs.
  kUniform,
  /// Worker 0 keeps the base options (so its first epoch reproduces the
  /// single-worker run); workers 1.. cycle through hotter / colder
  /// annealing temperatures and a placement-only move mask.
  kDiverse,
};

/// Stable CLI name of a profile ("uniform" / "diverse").
const char* portfolio_profile_name(PortfolioProfile profile);

/// Parses a profile name; returns false on an unknown name.
bool parse_portfolio_profile(const std::string& name,
                             PortfolioProfile* profile);

struct PortfolioOptions {
  /// Base options of every worker. budget_ms and max_iterations are
  /// *per-worker* totals; with threads >= workers (the default) the
  /// workers run concurrently and the portfolio's wall-clock budget
  /// equals the per-worker budget. With fewer threads, queued workers
  /// serialize and the wall time grows accordingly.
  LnsOptions lns;
  int workers = 4;
  int epochs = 4;
  PortfolioProfile profile = PortfolioProfile::kDiverse;
  /// Relax the deterministic epoch barrier (see file comment).
  bool free_running = false;
  /// Pool size; 0 means one thread per worker. The result of the
  /// deterministic mode does not depend on this.
  std::size_t threads = 0;
};

struct PortfolioResult {
  ComputePlan plan;        ///< best plan found by any worker (or the input)
  MbspSchedule schedule;   ///< completed schedule of `plan`
  double cost = 0;         ///< cost of `schedule` under options.lns.cost
  double initial_cost = 0; ///< cost of the warm start
  long iterations = 0;     ///< summed over all workers and epochs
  long accepted = 0;
  /// Summed per-move-class counters (indexed like lns_move_class_name).
  std::array<long, kNumMoveClasses> proposed_by_class{};
  std::array<long, kNumMoveClasses> accepted_by_class{};
  /// Which worker / epoch produced the returned incumbent (0/0 when the
  /// warm start was never improved).
  int best_worker = 0;
  int best_epoch = 0;
  /// Final per-worker incumbent costs (size = workers).
  std::vector<double> worker_costs;
};

/// The seed of worker `worker`: the base seed itself for worker 0 (so a
/// one-worker portfolio reproduces improve_plan bitwise), a SplitMix64
/// derivation for the rest. Exposed so tests and benches can run a
/// worker's solo trajectory.
std::uint64_t portfolio_worker_seed(std::uint64_t seed, int worker);

/// The effective LnsOptions of (worker, epoch): derived seed, per-epoch
/// iteration slice, profile-adjusted temperature / move mask. Exposed for
/// the solo-run comparisons in tests and bench_portfolio.
LnsOptions portfolio_worker_options(const PortfolioOptions& options,
                                    int worker, int epoch);

/// Portfolio LNS driver. Stateless apart from its options; `improve` is
/// const and may be called concurrently from different threads (each call
/// spins up its own ThreadPool).
class PortfolioLns {
 public:
  explicit PortfolioLns(PortfolioOptions options);

  /// Improves `initial` (must pass validate_plan) with the configured
  /// portfolio. Deterministic given (instance, options) in the default
  /// mode under the budget_ms = 0 convention.
  PortfolioResult improve(const MbspInstance& inst,
                          const ComputePlan& initial) const;

  const PortfolioOptions& options() const { return options_; }

 private:
  PortfolioResult improve_deterministic(const MbspInstance& inst,
                                        const ComputePlan& initial) const;
  PortfolioResult improve_free_running(const MbspInstance& inst,
                                       const ComputePlan& initial) const;

  PortfolioOptions options_;
};

}  // namespace mbsp
