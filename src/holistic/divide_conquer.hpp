#pragma once
// Divide-and-conquer MBSP scheduling (Section 6.3) for DAGs too large for
// one holistic search:
//   1. recursively acyclic-bipartition the DAG into parts of <= 60 nodes
//      (ILP-based bipartitioning with greedy fallback);
//   2. build a high-level plan on the quotient graph: parts are packed
//      into "waves" of mutually independent ready parts, and each wave
//      splits the processors between its parts proportionally to work
//      (the adjusted-BSPg allocation of the paper);
//   3. each part becomes a sub-instance (external inputs appear as source
//      nodes whose values sit in slow memory) solved by the LNS scheduler;
//   4. sub-plans are concatenated into one global ComputePlan and memory
//      is completed globally — which also performs the paper's
//      "streamlining" step (values kept in cache across part boundaries
//      when possible, dead values dropped, superstep merging).

#include "src/holistic/lns.hpp"
#include "src/holistic/partition.hpp"

namespace mbsp {

struct DivideConquerOptions {
  int max_part_size = 60;
  LnsOptions lns;          ///< budget here is *per part*
  BipartitionOptions partition;
};

struct DivideConquerResult {
  ComputePlan plan;
  MbspSchedule schedule;
  double cost = 0;
  std::size_t num_parts = 0;
};

DivideConquerResult divide_conquer_schedule(const MbspInstance& inst,
                                            const DivideConquerOptions& options);

}  // namespace mbsp
