#include "src/holistic/exact_pebbler.hpp"

#include <cassert>
#include <cstdint>
#include <queue>
#include <unordered_map>

#include "src/util/timer.hpp"

namespace mbsp {

namespace {

using Mask = std::uint32_t;

struct StateKey {
  Mask red;
  Mask blue;
  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& s) const {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(s.red) << 32) |
                                      s.blue);
  }
};

struct Edge {
  // Operation leading into a state (for path reconstruction).
  enum class Kind : std::uint8_t { kNone, kCompute, kLoad, kSave, kDelete };
  Kind kind = Kind::kNone;
  NodeId node = kInvalidNode;
  StateKey from{0, 0};
};

}  // namespace

ExactPebbleResult exact_pebble(const MbspInstance& inst,
                               const ExactPebbleOptions& options) {
  const ComputeDag& dag = inst.dag;
  const NodeId n = dag.num_nodes();
  assert(inst.arch.num_processors == 1);
  assert(n <= 30 && "exact pebbler is for small instances");
  const double g = inst.arch.g;
  const double r = inst.arch.fast_memory;

  Mask sources = 0, sinks = 0;
  std::vector<Mask> parent_mask(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_source(v)) sources |= Mask{1} << v;
    if (dag.is_sink(v)) sinks |= Mask{1} << v;
    for (NodeId u : dag.parents(v)) parent_mask[v] |= Mask{1} << u;
  }
  auto red_weight = [&](Mask red) {
    double total = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (red & (Mask{1} << v)) total += dag.mu(v);
    }
    return total;
  };

  struct QueueEntry {
    double dist;
    StateKey key;
    bool operator>(const QueueEntry& other) const { return dist > other.dist; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  std::unordered_map<StateKey, double, StateKeyHash> dist;
  std::unordered_map<StateKey, Edge, StateKeyHash> pred;

  const StateKey start{0, sources};
  dist[start] = 0;
  pq.push({0, start});

  ExactPebbleResult result;
  Deadline deadline(options.budget_ms);
  std::optional<StateKey> goal;

  auto relax = [&](const StateKey& from, StateKey to, double cost,
                   Edge::Kind kind, NodeId node) {
    const double candidate = dist[from] + cost;
    auto it = dist.find(to);
    if (it == dist.end() || candidate < it->second) {
      dist[to] = candidate;
      pred[to] = {kind, node, from};
      pq.push({candidate, to});
    }
  };

  while (!pq.empty()) {
    const auto [d, key] = pq.top();
    pq.pop();
    if (d > dist[key]) continue;  // stale entry
    ++result.states_explored;
    if (result.states_explored > options.max_states || deadline.expired()) {
      return result;  // unsolved
    }
    if ((key.blue & sinks) == sinks) {
      goal = key;
      break;
    }
    const double weight = red_weight(key.red);
    for (NodeId v = 0; v < n; ++v) {
      const Mask bit = Mask{1} << v;
      // LOAD
      if ((key.blue & bit) && !(key.red & bit) &&
          weight + dag.mu(v) <= r + 1e-9) {
        relax(key, {key.red | bit, key.blue}, g * dag.mu(v), Edge::Kind::kLoad,
              v);
      }
      // SAVE
      if ((key.red & bit) && !(key.blue & bit)) {
        relax(key, {key.red, key.blue | bit}, g * dag.mu(v), Edge::Kind::kSave,
              v);
      }
      // COMPUTE
      if (!dag.is_source(v) && !(key.red & bit) &&
          (key.red & parent_mask[v]) == parent_mask[v] &&
          weight + dag.mu(v) <= r + 1e-9) {
        relax(key, {key.red | bit, key.blue}, dag.omega(v),
              Edge::Kind::kCompute, v);
      }
      // DELETE (free)
      if (key.red & bit) {
        relax(key, {key.red & ~bit, key.blue}, 0, Edge::Kind::kDelete, v);
      }
    }
  }

  if (!goal) return result;
  result.solved = true;
  result.cost = dist[*goal];

  // Reconstruct the operation sequence, then emit one superstep per op
  // (with P = 1 and L = 0 the grouping does not affect either cost).
  std::vector<Edge> ops;
  StateKey cursor = *goal;
  while (!(cursor == start)) {
    const Edge edge = pred[cursor];
    ops.push_back(edge);
    cursor = edge.from;
  }
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    Superstep& step = result.schedule.append(1);
    ProcStep& ps = step.proc[0];
    switch (it->kind) {
      case Edge::Kind::kCompute:
        ps.compute_phase.push_back(PhaseOp::compute(it->node));
        break;
      case Edge::Kind::kDelete:
        ps.compute_phase.push_back(PhaseOp::erase(it->node));
        break;
      case Edge::Kind::kLoad:
        ps.loads.push_back(it->node);
        break;
      case Edge::Kind::kSave:
        ps.saves.push_back(it->node);
        break;
      case Edge::Kind::kNone:
        break;
    }
  }
  return result;
}

}  // namespace mbsp
