#include "src/holistic/shard.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "src/bsp/greedy_scheduler.hpp"
#include "src/graph/topology.hpp"
#include "src/model/cost.hpp"
#include "src/twostage/two_stage.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp {

namespace {

/// SplitMix64 finalizer, the same mixer Rng seeding and the portfolio's
/// worker-seed derivation use: one well-mixed output per distinct input.
std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Distinct salts so a shard solve and the boundary polish can never
// collide on the same derived seed (docs/SCALE.md, determinism contract).
constexpr std::uint64_t kShardSalt = 0xA24BAED4963EE407ull;
constexpr std::uint64_t kPolishSalt = 0x9FB21C651E98DF25ull;

std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) {
  return splitmix64_mix(base ^
                        (kShardSalt * (static_cast<std::uint64_t>(shard) + 1)));
}

}  // namespace

ShardSubproblem make_shard_subproblem(const ComputeDag& dag,
                                      const std::vector<NodeId>& part_nodes) {
  ShardSubproblem sub;
  std::vector<char> in_part(dag.num_nodes(), 0);
  for (NodeId v : part_nodes) in_part[v] = 1;
  // External inputs first (sources of the sub-DAG), then the part's nodes.
  std::vector<char> added(dag.num_nodes(), 0);
  for (NodeId v : part_nodes) {
    for (NodeId u : dag.parents(v)) {
      if (!in_part[u] && !added[u]) {
        added[u] = 1;
        sub.globals.push_back(u);
      }
    }
  }
  const std::size_t num_external = sub.globals.size();
  for (NodeId v : part_nodes) sub.globals.push_back(v);
  std::vector<NodeId> local(dag.num_nodes(), kInvalidNode);
  sub.dag.set_name(dag.name() + "#part");
  for (std::size_t i = 0; i < sub.globals.size(); ++i) {
    const NodeId v = sub.globals[i];
    // External inputs keep their memory weight but are not computed.
    const double omega = i < num_external ? 0.0 : dag.omega(v);
    local[v] = sub.dag.add_node(omega, dag.mu(v));
  }
  for (NodeId v : part_nodes) {
    for (NodeId u : dag.parents(v)) {
      sub.dag.add_edge(local[u], local[v]);
    }
  }
  return sub;
}

Architecture slice_architecture(const Architecture& arch,
                                const std::vector<int>& procs) {
  // The sub-machine keeps each assigned processor's speed, capacity and
  // comm group (groups renumbered dense in first-appearance order), so
  // part-local solves optimize against the true hardware.
  Architecture sub_arch = Architecture::make(static_cast<int>(procs.size()),
                                             arch.fast_memory, arch.g, arch.L);
  if (!arch.is_uniform()) {
    sub_arch.g_in = arch.g_in;
    sub_arch.g_out = arch.g_out;
    sub_arch.L_group = arch.L_group;
    std::vector<int> dense_group(static_cast<std::size_t>(arch.num_groups()),
                                 -1);
    int next_group = 0;
    for (int gp : procs) {
      sub_arch.speeds.push_back(arch.speed(gp));
      sub_arch.memories.push_back(arch.memory(gp));
      if (!arch.group_of.empty()) {
        int& dense = dense_group[static_cast<std::size_t>(arch.group(gp))];
        if (dense < 0) dense = next_group++;
        sub_arch.group_of.push_back(dense);
      }
    }
  }
  return sub_arch;
}

std::vector<std::vector<NodeId>> acyclic_kway_partition(const ComputeDag& dag,
                                                        int num_shards) {
  const NodeId n = dag.num_nodes();
  std::vector<std::vector<NodeId>> shards;
  if (n == 0) return shards;
  const int k = std::max(1, std::min<int>(num_shards, n));
  const std::vector<NodeId> order = topological_order(dag);
  assert(static_cast<NodeId>(order.size()) == n);

  const double total = std::max(1e-12, dag.total_omega());
  shards.reserve(static_cast<std::size_t>(k));
  std::vector<NodeId> current;
  double cum = 0;
  int shard_index = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    current.push_back(order[i]);
    cum += dag.omega(order[i]);
    // Close the interval once it carries its omega share — but never
    // leave fewer nodes than shards still to fill, and fold everything
    // remaining into the last shard.
    const std::size_t remaining_nodes = order.size() - i - 1;
    const int remaining_shards = k - shard_index - 1;
    const bool quota_met =
        cum >= total * (static_cast<double>(shard_index) + 1) / k;
    if (shard_index < k - 1 &&
        (quota_met || remaining_nodes == static_cast<std::size_t>(
                                             remaining_shards)) &&
        remaining_nodes >= static_cast<std::size_t>(remaining_shards)) {
      shards.push_back(std::move(current));
      current.clear();
      ++shard_index;
    }
  }
  if (!current.empty()) shards.push_back(std::move(current));
  return shards;
}

ShardResult shard_schedule(const MbspInstance& inst,
                           const ShardOptions& options) {
  const ComputeDag& dag = inst.dag;
  const int P = inst.arch.num_processors;
  ShardResult result;

  const auto shards = acyclic_kway_partition(dag, options.num_shards);
  result.num_shards = shards.size();

  std::vector<int> part_of(dag.num_nodes(), -1);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (NodeId v : shards[i]) part_of[v] = static_cast<int>(i);
  }

  // Wave packing on the quotient graph, exactly as divide-and-conquer: a
  // shard is ready when all quotient predecessors are scheduled; each wave
  // takes up to P independent ready shards and splits the processors
  // proportionally to work. All of this is decided before any solve runs,
  // so the proc slices (and therefore the solves) are thread-independent.
  const ComputeDag quotient =
      quotient_graph(dag, part_of, static_cast<int>(shards.size()));
  std::vector<int> waiting(shards.size(), 0);
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    waiting[q] = static_cast<int>(quotient.parents(q).size());
  }
  std::vector<int> ready;
  for (NodeId q = 0; q < quotient.num_nodes(); ++q) {
    if (waiting[q] == 0) ready.push_back(static_cast<int>(q));
  }

  std::vector<std::vector<int>> waves;
  std::vector<std::vector<int>> shard_procs(shards.size());
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return quotient.omega(a) > quotient.omega(b);
    });
    const int wave_size = std::min<int>(P, static_cast<int>(ready.size()));
    std::vector<int> wave(ready.begin(), ready.begin() + wave_size);
    ready.erase(ready.begin(), ready.begin() + wave_size);

    double wave_work = 0;
    for (int q : wave) wave_work += quotient.omega(q);
    std::vector<int> alloc(wave.size(), 1);
    int left = P - static_cast<int>(wave.size());
    for (std::size_t i = 0; i < wave.size() && left > 0; ++i) {
      const int extra = std::min<int>(
          left, static_cast<int>(quotient.omega(wave[i]) / wave_work *
                                 (P - static_cast<double>(wave.size()))));
      alloc[i] += extra;
      left -= extra;
    }
    for (std::size_t i = 0; left > 0; i = (i + 1) % wave.size()) {
      ++alloc[i];
      --left;
    }
    int next_proc = 0;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      for (int kk = 0; kk < alloc[i]; ++kk) {
        shard_procs[static_cast<std::size_t>(wave[i])].push_back(next_proc++);
      }
    }
    for (int q : wave) {
      for (NodeId c : quotient.children(q)) {
        if (--waiting[c] == 0) ready.push_back(static_cast<int>(c));
      }
    }
    waves.push_back(std::move(wave));
  }

  // Per-shard solves, fanned out on the pool. Every task is independent
  // (own sub-instance, own Rng from a shard-indexed seed) and writes only
  // its own slot, so the fan-out is bitwise thread-count-independent.
  struct Solved {
    std::vector<NodeId> globals;
    ComputePlan plan;
  };
  std::vector<Solved> solved(shards.size());
  const std::size_t threads =
      options.num_threads > 0
          ? static_cast<std::size_t>(options.num_threads)
          : std::max(1u, std::thread::hardware_concurrency());
  {
    ThreadPool pool(std::min(threads, std::max<std::size_t>(1, shards.size())));
    parallel_for(pool, shards.size(), [&](std::size_t q) {
      ShardSubproblem sub = make_shard_subproblem(dag, shards[q]);
      const MbspInstance sub_inst{
          sub.dag, slice_architecture(inst.arch, shard_procs[q])};
      GreedyBspScheduler greedy;
      const BspSchedule bsp = greedy.schedule(sub_inst.dag, sub_inst.arch);
      const ComputePlan initial =
          plan_from_bsp(sub_inst.dag, bsp, sub_inst.arch.num_processors);
      LnsOptions lns = options.lns;
      lns.seed = shard_seed(options.lns.seed, q);
      LnsResult improved = improve_plan(sub_inst, initial, lns);
      solved[q] = {std::move(sub.globals), std::move(improved.plan)};
    });
  }

  // Stitch wave-by-wave with superstep offsets (quotient-topological
  // order), exactly as divide-and-conquer splices its parts.
  ComputePlan global_plan;
  global_plan.num_procs = P;
  global_plan.seq.resize(P);
  int superstep_offset = 0;
  for (const auto& wave : waves) {
    int wave_supersteps = 0;
    for (int q : wave) {
      const Solved& s = solved[static_cast<std::size_t>(q)];
      const auto& procs = shard_procs[static_cast<std::size_t>(q)];
      for (int lp = 0; lp < static_cast<int>(procs.size()); ++lp) {
        const int gp = procs[static_cast<std::size_t>(lp)];
        for (const PlannedCompute& pc : s.plan.seq[lp]) {
          global_plan.seq[gp].push_back(
              {s.globals[pc.node], superstep_offset + pc.superstep});
        }
      }
      wave_supersteps = std::max(wave_supersteps, s.plan.num_supersteps());
    }
    superstep_offset += std::max(1, wave_supersteps);
  }
  normalize_supersteps(global_plan);
  const PlanValidation stitched_ok = validate_plan(dag, global_plan);
  assert(stitched_ok.ok);
  (void)stitched_ok;

  result.stitched_cost =
      evaluate_plan(inst, global_plan, options.lns, nullptr);
  result.cost = result.stitched_cost;
  result.plan = std::move(global_plan);

  // Boundary move mask: endpoints of cut edges, expanded by the halo.
  std::vector<char> mask(static_cast<std::size_t>(dag.num_nodes()), 0);
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId v : dag.children(u)) {
      if (part_of[u] != part_of[v]) {
        ++result.cut_edges;
        mask[static_cast<std::size_t>(u)] = 1;
        mask[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  for (int hop = 0; hop < options.boundary_halo; ++hop) {
    std::vector<char> next = mask;
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      if (mask[static_cast<std::size_t>(v)] == 0) continue;
      for (NodeId u : dag.parents(v)) next[static_cast<std::size_t>(u)] = 1;
      for (NodeId c : dag.children(v)) next[static_cast<std::size_t>(c)] = 1;
    }
    mask.swap(next);
  }
  for (char bit : mask) result.boundary_nodes += bit != 0;

  // Global polish restricted to the boundary (O(delta) per move through
  // the incremental evaluator). improve_plan never returns a worse plan.
  if (result.num_shards > 1 && result.boundary_nodes > 0 &&
      options.polish_max_iterations > 0) {
    LnsOptions polish = options.lns;
    polish.budget_ms = options.polish_budget_ms;
    polish.max_iterations = options.polish_max_iterations;
    polish.seed = splitmix64_mix(options.lns.seed ^ kPolishSalt);
    polish.node_mask = &mask;
    LnsResult polished = improve_plan(inst, result.plan, polish);
    result.cost = polished.cost;
    result.plan = std::move(polished.plan);
  }

  // Safety net: the unpartitioned greedy warm start. Returning the
  // cheaper of the two makes the pipeline cost-<= the seed by
  // construction (tests assert this).
  if (options.compare_full_seed) {
    GreedyBspScheduler greedy;
    const BspSchedule bsp = greedy.schedule(dag, inst.arch);
    ComputePlan seed_plan = plan_from_bsp(dag, bsp, P);
    result.seed_cost = evaluate_plan(inst, seed_plan, options.lns, nullptr);
    if (result.seed_cost < result.cost) {
      result.cost = result.seed_cost;
      result.plan = std::move(seed_plan);
      result.used_full_seed = true;
    }
  }

  result.cost = evaluate_plan(inst, result.plan, options.lns, &result.schedule);
  return result;
}

}  // namespace mbsp
