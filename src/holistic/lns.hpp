#pragma once
// The holistic anytime scheduler: simulated-annealing large-neighbourhood
// search over ComputePlans, warm-started from the two-stage baseline — the
// role COPT plays in the paper's experiments (improve an initial solution
// within a time budget against the *true* MBSP objective). The search moves
// mirror the ILP's degrees of freedom:
//
//   * move a compute occurrence to another processor / superstep,
//   * swap occurrences between processors,
//   * merge or split supersteps,
//   * insert a recomputation (extra occurrence) to spare a load,
//   * drop a redundant occurrence.
//
// Every candidate is checked by validate_plan(); memory management is
// re-derived by the clairvoyant completion, and the exact synchronous or
// asynchronous cost of the resulting schedule is the objective. The
// returned schedule is therefore never worse than the warm start.

#include <cstdint>

#include "src/cache/policy.hpp"
#include "src/holistic/formulation.hpp"  // CostModel
#include "src/twostage/compute_plan.hpp"
#include "src/twostage/memory_completion.hpp"

namespace mbsp {

/// Bitmask naming the LNS move classes (for ablation studies).
enum LnsMove : unsigned {
  kMoveProc = 1u << 0,       ///< move an occurrence to another processor
  kMoveSuperstep = 1u << 1,  ///< shift an occurrence +-1 superstep
  kSwapProcs = 1u << 2,      ///< swap two same-superstep occurrences
  kMergeSupersteps = 1u << 3,
  kSplitSuperstep = 1u << 4,
  kAddRecompute = 1u << 5,
  kRemoveOccurrence = 1u << 6,
  kAllMoves = (1u << 7) - 1,
};

struct LnsOptions {
  double budget_ms = 2000;
  CostModel cost = CostModel::kSynchronous;
  bool allow_recompute = true;
  PolicyKind completion_policy = PolicyKind::kClairvoyant;
  std::uint64_t seed = 42;
  long max_iterations = 2'000'000;
  /// Initial SA temperature as a fraction of the starting cost.
  double initial_temperature_frac = 0.05;
  /// Enabled move classes; recompute moves additionally require
  /// allow_recompute. Disabling classes is for ablation benches.
  unsigned move_mask = kAllMoves;
};

struct LnsResult {
  ComputePlan plan;
  MbspSchedule schedule;
  double cost = 0;           ///< cost of `schedule` under options.cost
  double initial_cost = 0;   ///< cost of the warm start
  long iterations = 0;
  long accepted = 0;
};

/// Evaluates a plan: completes memory and returns the configured cost.
double evaluate_plan(const MbspInstance& inst, const ComputePlan& plan,
                     const LnsOptions& options, MbspSchedule* out = nullptr);

/// Improves `initial` within the budget. `initial` must pass validate_plan.
LnsResult improve_plan(const MbspInstance& inst, const ComputePlan& initial,
                       const LnsOptions& options);

}  // namespace mbsp
