#pragma once
// The holistic anytime scheduler: simulated-annealing large-neighbourhood
// search over ComputePlans, warm-started from the two-stage baseline — the
// role COPT plays in the paper's experiments (improve an initial solution
// within a time budget against the *true* MBSP objective). The search moves
// mirror the ILP's degrees of freedom:
//
//   * move a compute occurrence to another processor / superstep,
//   * swap occurrences between processors,
//   * merge or split supersteps,
//   * insert a recomputation (extra occurrence) to spare a load,
//   * drop a redundant occurrence.
//
// Every candidate is checked by validate_plan(); memory management is
// re-derived by the clairvoyant completion, and the exact synchronous or
// asynchronous cost of the resulting schedule is the objective. The
// returned schedule is therefore never worse than the warm start.
//
// ## Hot path
//
// improve_plan applies each move *in place* as a reversible PlanDelta and
// costs it through the IncrementalEvaluator (incremental_eval.hpp): only
// the supersteps a move dirtied are re-completed and re-costed, the
// accept path keeps the applied plan (no copy), and the reject path
// undoes the delta. The historical copy-normalize-validate-recomplete
// loop is preserved verbatim as improve_plan_reference: it is the
// bitwise oracle of the differential tests and the baseline of
// bench_lns_throughput. For a fixed seed and options the two return
// identical results; debug builds additionally assert, every iteration,
// that the incremental candidate cost equals the full evaluator's.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/policy.hpp"
#include "src/holistic/formulation.hpp"  // CostModel
#include "src/twostage/compute_plan.hpp"
#include "src/twostage/memory_completion.hpp"

namespace mbsp {

/// Bitmask naming the LNS move classes (for ablation studies).
enum LnsMove : unsigned {
  kMoveProc = 1u << 0,       ///< move an occurrence to another processor
  kMoveSuperstep = 1u << 1,  ///< shift an occurrence +-1 superstep
  kSwapProcs = 1u << 2,      ///< swap two same-superstep occurrences
  kMergeSupersteps = 1u << 3,
  kSplitSuperstep = 1u << 4,
  kAddRecompute = 1u << 5,
  kRemoveOccurrence = 1u << 6,
  kAllMoves = (1u << 7) - 1,
};

/// Number of move classes (the bit count of kAllMoves).
constexpr int kNumMoveClasses = 7;

/// Stable short name of move class index 0..kNumMoveClasses-1 (bit order:
/// proc, step, swap, merge, split, recompute, drop).
const char* lns_move_class_name(int index);

/// Parses a comma-separated list of move-class names (or "all" / "none")
/// into a move mask; returns false on an unknown name, copying the
/// offending name into *unknown (when non-null) so CLIs can say which
/// token was wrong. Used by CLI ablations.
bool parse_move_mask(const std::string& spec, unsigned* mask,
                     std::string* unknown = nullptr);

struct LnsOptions {
  double budget_ms = 2000;
  CostModel cost = CostModel::kSynchronous;
  bool allow_recompute = true;
  PolicyKind completion_policy = PolicyKind::kClairvoyant;
  std::uint64_t seed = 42;
  long max_iterations = 2'000'000;
  /// Initial SA temperature as a fraction of the starting cost.
  double initial_temperature_frac = 0.05;
  /// Enabled move classes; recompute moves additionally require
  /// allow_recompute. Disabling classes is for ablation benches.
  unsigned move_mask = kAllMoves;
  /// How many iterations improve_plan runs between deadline checks
  /// (rounded down to a power of two). Budgeted bench runs tighten this;
  /// iteration-capped runs are deterministic regardless of its value.
  long deadline_poll_interval = 256;
  /// Routes the evaluator's per-eval scratch arena through fresh poisoned
  /// heap blocks instead of recycled bump chunks (also settable via
  /// MBSP_ARENA_MODE=heap). Differential tests run both modes and require
  /// bitwise-identical results; see docs/PERFORMANCE.md.
  bool arena_paranoid = false;
  /// Optional per-node move mask (caller-owned, indexed by NodeId, must
  /// outlive the call). When set, occurrence-level moves (proc, step,
  /// swap, recompute, drop) only touch nodes whose mask entry is nonzero;
  /// superstep merge/split stay global (they relabel supersteps without
  /// reassigning or reordering frozen nodes). The sharded pipeline uses
  /// this to restrict the global polish to shard-boundary nodes — see
  /// docs/SCALE.md. RNG consumption is identical whether a draw is
  /// subsequently masked out or not, so masked runs stay deterministic
  /// and the reference/incremental kernels stay bitwise-aligned.
  const std::vector<char>* node_mask = nullptr;
};

struct LnsResult {
  ComputePlan plan;
  MbspSchedule schedule;
  double cost = 0;           ///< cost of `schedule` under options.cost
  double initial_cost = 0;   ///< cost of the warm start
  long iterations = 0;
  long accepted = 0;
  /// Per-move-class proposal / acceptance counters, indexed like
  /// lns_move_class_name. A proposal counts as soon as the class is
  /// drawn (even if the move generator produced no change); acceptances
  /// count SA-accepted candidates of that class.
  std::array<long, kNumMoveClasses> proposed_by_class{};
  std::array<long, kNumMoveClasses> accepted_by_class{};
};

/// Evaluates a plan: completes memory and returns the configured cost.
double evaluate_plan(const MbspInstance& inst, const ComputePlan& plan,
                     const LnsOptions& options, MbspSchedule* out = nullptr);

/// Improves `initial` within the budget. `initial` must pass validate_plan.
LnsResult improve_plan(const MbspInstance& inst, const ComputePlan& initial,
                       const LnsOptions& options);

/// The historical copy-and-reevaluate implementation (every candidate is a
/// full plan copy, normalized, validated and costed from scratch). Same
/// results as improve_plan for fixed seed and options; kept as the
/// differential oracle and as the throughput-bench baseline.
LnsResult improve_plan_reference(const MbspInstance& inst,
                                 const ComputePlan& initial,
                                 const LnsOptions& options);

}  // namespace mbsp
