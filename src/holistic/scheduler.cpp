#include "src/holistic/scheduler.hpp"

#include "src/model/cost.hpp"

namespace mbsp {

double schedule_cost(const MbspInstance& inst, const MbspSchedule& sched,
                     CostModel cost) {
  return cost == CostModel::kSynchronous ? sync_cost(inst, sched)
                                         : async_cost(inst, sched);
}

namespace {

LnsOptions to_lns(const HolisticOptions& options, double budget_ms) {
  LnsOptions lns;
  lns.budget_ms = budget_ms;
  lns.cost = options.cost;
  lns.allow_recompute = options.allow_recompute;
  lns.seed = options.seed;
  lns.max_iterations = options.max_iterations;
  return lns;
}

}  // namespace

HolisticOutcome holistic_improve(const MbspInstance& inst,
                                 const ComputePlan& initial,
                                 const HolisticOptions& options) {
  HolisticOutcome out;
  {
    MbspSchedule warm;
    out.baseline_cost =
        evaluate_plan(inst, initial, to_lns(options, 0), &warm);
  }
  const LnsResult res =
      improve_plan(inst, initial, to_lns(options, options.budget_ms));
  out.schedule = res.schedule;
  out.plan = res.plan;
  out.cost = res.cost;
  return out;
}

HolisticOutcome holistic_schedule(const MbspInstance& inst,
                                  const HolisticOptions& options) {
  const TwoStageResult baseline = run_baseline(inst, options.warm_start);
  const double baseline_cost =
      schedule_cost(inst, baseline.mbsp, options.cost);

  if (inst.dag.num_nodes() <= options.divide_conquer_threshold) {
    HolisticOutcome out = holistic_improve(inst, baseline.plan, options);
    out.baseline_cost = baseline_cost;
    return out;
  }

  DivideConquerOptions dnc;
  dnc.max_part_size = options.max_part_size;
  dnc.lns = to_lns(options, options.budget_ms / 8);  // per-part budget
  DivideConquerResult res = divide_conquer_schedule(inst, dnc);
  HolisticOutcome out;
  out.baseline_cost = baseline_cost;
  out.used_divide_conquer = true;
  out.schedule = std::move(res.schedule);
  out.plan = std::move(res.plan);
  out.cost = res.cost;
  return out;
}

}  // namespace mbsp
