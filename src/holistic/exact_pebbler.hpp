#pragma once
// Exact single-processor MBSP solver: Dijkstra over pebbling configurations
// (R, B) — the red-blue pebble game with compute costs and weighted nodes.
// With P = 1 and L = 0 the synchronous and asynchronous costs coincide and
// equal the plain sum of operation costs, so shortest path = optimum.
// Recomputation is handled naturally (COMPUTE edges stay available).
//
// Intended for small instances (n <= ~20, tight r): the test oracle for the
// ILP formulation and the engine behind the Lemma 6.1 experiment.

#include <optional>

#include "src/model/schedule.hpp"

namespace mbsp {

struct ExactPebbleOptions {
  std::size_t max_states = 4'000'000;
  double budget_ms = 30000;
};

struct ExactPebbleResult {
  bool solved = false;       ///< optimum proven (false: limits hit)
  double cost = 0;           ///< optimal total cost when solved
  MbspSchedule schedule;     ///< an optimal schedule (one op per superstep)
  std::size_t states_explored = 0;
};

/// Requires inst.arch.num_processors == 1 and n <= 30.
ExactPebbleResult exact_pebble(const MbspInstance& inst,
                               const ExactPebbleOptions& options = {});

}  // namespace mbsp
