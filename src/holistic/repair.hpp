#pragma once
// Online schedule repair (docs/REPAIR.md): the serving-path answer to
// instances that change while an incumbent schedule is live. A typed
// InstanceDelta describes how a scenario mutated — nodes arriving, edges
// retrofitted, weights drifting, processors dropping out, fast memory
// shrinking — and repair_plan() patches the incumbent ComputePlan to the
// mutated instance instead of rescheduling from scratch:
//
//   1. structural adaptation: occurrences of dropped processors are
//      relocated (order-preserving, so every same-processor dependency
//      chain survives), new non-source nodes receive occurrences, and
//      edges retrofitted into already-planned nodes trigger recompute-style
//      availability inserts — all expressed as PlanDelta kInsert ops
//      applied through the PlanOccurrenceIndex, the same O(delta) edit
//      language the incremental LNS engine uses;
//   2. locality-masked polish: an LNS run (improve_plan, or a
//      deterministic PortfolioLns when workers > 1) seeded from the
//      patched plan, with a node mask restricted to the delta's blast
//      radius (touched nodes plus `mask_radius` DAG hops) so the search
//      spends its budget where the instance actually changed. Machine
//      deltas reprice every superstep, so they unmask all nodes.
//
// Contracts, inherited from the LNS stack and asserted by
// tests/test_repair.cpp: the repaired plan passes validate_plan on the
// mutated instance, its reported cost is bitwise equal to a from-scratch
// evaluate_plan of the same plan (the PR 3 oracle discipline), the
// repair-then-polish result is never worse than the patched seed, and for
// budget_ms = 0 the whole pipeline is deterministic — independent of the
// polish pool's thread count.
//
// apply_instance_delta / undo_instance_delta are an exact apply/undo pair
// (the InstanceDelta mirror of PlanDelta's): a failed apply rolls back
// every already-applied op, and undo restores the instance bitwise —
// adjacency orders, weights, machine vectors and names included.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/holistic/lns.hpp"
#include "src/model/instance.hpp"
#include "src/twostage/compute_plan.hpp"

namespace mbsp {

enum class InstanceDeltaOpKind : std::uint8_t {
  kAddNode = 0,        ///< append a node (omega, mu); ids grow densely
  kAddEdge = 1,        ///< add edge u -> v (may reference added nodes)
  kSetNodeWeight = 2,  ///< overwrite node u's (omega, mu)
  kDropProcessor = 3,  ///< remove processor `proc` from the machine
  kShrinkMemory = 4,   ///< set fast-memory capacity of `proc` (-1 = all)
};

/// Stable lower-case op name ("add_node", ...), for errors and docs.
const char* instance_delta_op_name(InstanceDeltaOpKind kind);

struct InstanceDeltaOp {
  InstanceDeltaOpKind kind = InstanceDeltaOpKind::kAddNode;
  NodeId u = kInvalidNode;  ///< add_edge tail / set_node_weight target
  NodeId v = kInvalidNode;  ///< add_edge head
  double omega = 1.0;       ///< add_node / set_node_weight
  double mu = 1.0;          ///< add_node / set_node_weight
  int proc = -1;            ///< drop_processor / shrink_memory (-1 = all)
  double capacity = 0;      ///< shrink_memory

  bool operator==(const InstanceDeltaOp&) const = default;
};

/// An ordered batch of instance edits, applied transactionally. The
/// builder methods mirror the op kinds; ops referring to node ids may name
/// nodes created by earlier kAddNode ops in the same delta (ids are
/// assigned densely from the pre-delta node count).
struct InstanceDelta {
  std::vector<InstanceDeltaOp> ops;

  void add_node(double omega = 1.0, double mu = 1.0);
  void add_edge(NodeId u, NodeId v);
  void set_node_weight(NodeId u, double omega, double mu);
  void drop_processor(int proc);
  void shrink_memory(int proc, double capacity);

  bool empty() const { return ops.empty(); }
  std::size_t num_added_nodes() const;
  /// True when some op edits the machine rather than the DAG (such deltas
  /// reprice every superstep, so the repair polish runs unmasked).
  bool touches_machine() const;

  bool operator==(const InstanceDelta&) const = default;
};

/// FNV-1a digest of the op stream (kind + payload fields, little-endian),
/// chaining from `seed`. Trace hashing and the daemon's mutated-scenario
/// cache keys both build on it.
std::uint64_t instance_delta_hash(const InstanceDelta& delta,
                                  std::uint64_t seed = 14695981039346656037ull);

/// Undo record of one apply_instance_delta call. Opaque to callers beyond
/// construction-by-apply; undo_instance_delta consumes it.
struct AppliedInstanceDelta {
  struct OpUndo {
    InstanceDeltaOp op;
    bool edge_added = false;  ///< add_edge on an existing edge is a no-op
    double old_omega = 0;     ///< set_node_weight
    double old_mu = 0;
  };
  std::vector<OpUndo> ops;  ///< in apply order; undone in reverse
  /// The machine is snapshotted wholesale before its first edit: machine
  /// state is O(P), and a snapshot restore is exact by construction.
  bool machine_snapshot = false;
  Machine machine_before;
};

/// Applies `delta` to `inst` op by op. On success fills *undo (when
/// non-null) so undo_instance_delta restores `inst` exactly. On failure
/// returns false with a typed error message — naming the offending op and
/// payload, e.g. "add_edge 7->3 would create a cycle" — and rolls every
/// already-applied op back, leaving `inst` unchanged.
///
/// Rejections: out-of-range node/processor ids, self- or cycle-creating
/// edges (named by the edge), non-positive weights, dropping the last
/// processor, and shrinking any capacity below min_memory_r0 of the
/// (current) DAG — the floor below which no valid schedule exists.
///
/// Machine edits append a canonical suffix to Machine::name
/// ("#drop(2)", "#mem(1,12.5)"), so mutated scenarios key distinctly in
/// the daemon's schedule cache; undo restores the original name.
bool apply_instance_delta(MbspInstance& inst, const InstanceDelta& delta,
                          AppliedInstanceDelta* undo = nullptr,
                          std::string* error = nullptr);

/// Exact inverse of apply_instance_delta (DAG ops undone in reverse
/// order, then the machine snapshot restored).
void undo_instance_delta(MbspInstance& inst,
                         const AppliedInstanceDelta& undo);

struct RepairOptions {
  /// Polish configuration: cost model, seed, budget_ms / max_iterations
  /// (the repo's budget_ms = 0 + iteration cap convention makes the whole
  /// repair bit-reproducible). node_mask is managed by repair_plan.
  LnsOptions lns;
  /// Run the locality-masked LNS polish after patching (disable to
  /// measure the pure patch).
  bool polish = true;
  /// DAG hops around the delta's touched nodes included in the polish
  /// mask (parents and children per hop).
  int mask_radius = 1;
  /// Polish engine: 1 = improve_plan; > 1 = deterministic PortfolioLns
  /// with this many workers (thread-count independent for fixed seed).
  int workers = 1;
  int epochs = 2;
  /// Pool threads for the portfolio polish (0 = one per worker). Never
  /// changes the result.
  int threads = 0;
};

struct RepairResult {
  ComputePlan plan;       ///< repaired plan, valid on the mutated instance
  MbspSchedule schedule;  ///< completed schedule of `plan`
  double cost = 0;        ///< bitwise equal to evaluate_plan(inst, plan)
  ComputePlan patched;    ///< structurally patched seed (pre-polish)
  double patched_cost = 0;
  long polish_iterations = 0;
  std::size_t masked_nodes = 0;  ///< polish-mask population
  bool full_mask = false;        ///< machine delta: every node unmasked
};

/// Repairs `incumbent` — a valid plan for the PRE-delta instance — onto
/// the MUTATED `inst` (i.e. `delta` has already been applied to `inst`).
/// Returns nullopt with *error when the incumbent's shape contradicts the
/// delta (wrong processor count) or patching cannot produce a valid plan.
std::optional<RepairResult> repair_plan(const MbspInstance& inst,
                                        const ComputePlan& incumbent,
                                        const InstanceDelta& delta,
                                        const RepairOptions& options,
                                        std::string* error = nullptr);

}  // namespace mbsp
