#include "src/holistic/incremental_eval.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cstdint>
#include <limits>

namespace mbsp {

namespace {

constexpr double kMemEps = 1e-9;  // must match memory_completion.cpp
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const MbspInstance& inst,
                                           const LnsOptions& options)
    : inst_(inst),
      dag_(inst.dag),
      options_(options),
      incremental_(options.cost == CostModel::kSynchronous &&
                   options.completion_policy == PolicyKind::kClairvoyant),
      P_(inst.arch.num_processors),
      n_(static_cast<std::size_t>(inst.dag.num_nodes())),
      g_(inst.arch.g),
      L_(inst.arch.sync_L()),
      single_group_(inst.arch.group_of.empty()),
      g_in_(inst.arch.g_in),
      g_out_(inst.arch.g_out) {
  mem_.resize(static_cast<std::size_t>(P_));
  speed_.resize(static_cast<std::size_t>(P_));
  grp_.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    mem_[static_cast<std::size_t>(p)] = inst.arch.memory(p);
    speed_[static_cast<std::size_t>(p)] = inst.arch.speed(p);
    grp_[static_cast<std::size_t>(p)] = inst.arch.group(p);
  }
}

// Home groups mirror blue timestamps: committed entries are valid exactly
// when the blue timestamp is committed-visible, the per-eval overlay is
// epoch-stamped, and assignment happens at the value's first save in
// blue-visibility order — which equals the oracle's slot-scan order for
// every schedule the completion can produce (post-saves of a round are
// priced at the round's drain so a same-round earlier-slot pre-save can
// still claim the home first).

int IncrementalEvaluator::eval_home(NodeId v) const {
  if (eh_stamp_[static_cast<std::size_t>(v)] == eval_epoch_) {
    return eval_home_ov_[static_cast<std::size_t>(v)];
  }
  if (blue_step_[static_cast<std::size_t>(v)] < eval_b_) {
    return home_group_[static_cast<std::size_t>(v)];
  }
  return -1;
}

void IncrementalEvaluator::eval_assign_home(NodeId v, int grp) {
  if (single_group_ || eval_home(v) >= 0) return;
  eh_stamp_[static_cast<std::size_t>(v)] = eval_epoch_;
  eval_home_ov_[static_cast<std::size_t>(v)] = grp;
  eval_homes_.push_back({v, grp});
}

double IncrementalEvaluator::comm_cost(int p, int home) const {
  if (single_group_) return g_;
  return home == grp_[static_cast<std::size_t>(p)] ? g_in_ : g_out_;
}

double IncrementalEvaluator::attach(const ComputePlan& plan) {
  plan_ = plan;
  P_ = plan_.num_procs;
  index_.attach(&dag_, &plan_);

  const std::size_t pn = static_cast<std::size_t>(P_) * n_;
  comp_cnt_.assign(pn, 0);
  use_cnt_.assign(pn, 0);
  comp_proc_count_.assign(n_, 0);
  for (int p = 0; p < P_; ++p) {
    for (const PlannedCompute& pc : plan_.seq[static_cast<std::size_t>(p)]) {
      bump_occurrence_counts(p, pc.node, +1);
    }
  }
  save_req_.assign(n_, 0);
  for (NodeId v = 0; v < static_cast<NodeId>(n_); ++v) {
    save_req_[static_cast<std::size_t>(v)] = compute_save_required(v) ? 1 : 0;
  }

  // Validator committed rows.
  R_.assign(static_cast<std::size_t>(P_), std::vector<int>(n_, INT_MAX));
  R_scratch_.assign(static_cast<std::size_t>(P_),
                    std::vector<int>(n_, INT_MAX));
  req_nodes_.assign(static_cast<std::size_t>(P_), {});
  req_nodes_scratch_.assign(static_cast<std::size_t>(P_), {});
  scan_stamp_.assign(n_, 0);
  scan_epoch_ = 0;
  affected_stamp_.assign(n_, 0);
  affected_epoch_ = 0;
  for (int p = 0; p < P_; ++p) {
    rescan_proc(p);  // attached plans are valid; this just fills the rows
    std::swap(R_[static_cast<std::size_t>(p)],
              R_scratch_[static_cast<std::size_t>(p)]);
    std::swap(req_nodes_[static_cast<std::size_t>(p)],
              req_nodes_scratch_[static_cast<std::size_t>(p)]);
  }

  in_move_ = false;
  delta_.clear();
  proc_touched_.assign(static_cast<std::size_t>(P_), 0);
  touched_procs_.clear();
  ed_before_.clear();
  affected_nodes_.clear();
  save_req_before_.clear();

  if (!incremental_) return evaluate_plan(inst_, plan_, options_);

  // Completion scratch.
  blue_step_.assign(n_, INT_MAX);
  for (NodeId v = 0; v < static_cast<NodeId>(n_); ++v) {
    if (dag_.is_source(v)) blue_step_[static_cast<std::size_t>(v)] = -1;
  }
  home_group_.assign(n_, -1);
  eh_stamp_.assign(n_, 0);
  eval_home_ov_.assign(n_, -1);
  eval_homes_.clear();
  blued_in_step_.clear();
  rows_.clear();
  row_empty_.clear();
  checkpoints_.assign(1, Checkpoint{});
  checkpoints_[0].cur = 0;
  checkpoints_[0].procs.assign(static_cast<std::size_t>(P_), ProcCheckpoint{});
  checkpoints_[0].pos.assign(static_cast<std::size_t>(P_), 0);
  row_prefix_.clear();
  ec_stamp_.assign(pn, 0);
  ec_flag_.assign(pn, 0);
  ec_list_.assign(static_cast<std::size_t>(P_), {});
  ec_weight_.assign(static_cast<std::size_t>(P_), 0.0);
  eb_stamp_.assign(n_, 0);
  pos_.assign(static_cast<std::size_t>(P_), 0);
  eval_epoch_ = 0;
  s_produced_stamp_.assign(n_, 0);
  s_load_stamp_.assign(n_, 0);
  s_needed_stamp_.assign(n_, 0);
  seg_epoch_ = 0;
  t_stamp_.assign(n_, 0);
  t_flag_.assign(n_, 0);
  t_inlist_stamp_.assign(n_, 0);
  t_blue_stamp_.assign(n_, 0);
  t_hoist_stamp_.assign(n_, 0);
  t_hoist_flag_.assign(n_, 0);
  t_remneed_stamp_.assign(n_, 0);
  t_remneed_.assign(n_, 0);
  try_epoch_ = 0;
  commit_stamp_.assign(n_, 0);
  commit_stamp_epoch_ = 0;

  const double cost = evaluate_from(0);
  promote_eval();
#ifndef NDEBUG
  assert(cost == evaluate_plan(inst_, plan_, options_));
#endif
  return cost;
}

// ---------------------------------------------------------------------------
// save_required maintenance.

void IncrementalEvaluator::bump_occurrence_counts(int p, NodeId v, int delta) {
  const std::size_t base = static_cast<std::size_t>(p) * n_;
  long& cc = comp_cnt_[base + static_cast<std::size_t>(v)];
  const bool had = cc > 0;
  cc += delta;
  const bool has = cc > 0;
  if (had != has) {
    comp_proc_count_[static_cast<std::size_t>(v)] += has ? 1 : -1;
  }
  for (NodeId u : dag_.parents(v)) {
    use_cnt_[base + static_cast<std::size_t>(u)] += delta;
  }
}

bool IncrementalEvaluator::compute_save_required(NodeId v) const {
  // Mirrors Completer::precompute: sinks always; otherwise "used on some
  // processor that is not the only computing processor".
  if (dag_.is_source(v)) return false;
  if (dag_.is_sink(v)) return true;
  const int cc = comp_proc_count_[static_cast<std::size_t>(v)];
  for (int p = 0; p < P_; ++p) {
    const std::size_t at = static_cast<std::size_t>(p) * n_ +
                           static_cast<std::size_t>(v);
    if (use_cnt_[at] > 0 && (cc > 1 || comp_cnt_[at] == 0)) return true;
  }
  return false;
}

void IncrementalEvaluator::refresh_save_required() {
  for (NodeId v : affected_nodes_) {
    save_req_[static_cast<std::size_t>(v)] =
        compute_save_required(v) ? 1 : 0;
  }
}

// ---------------------------------------------------------------------------
// Move protocol.

void IncrementalEvaluator::begin_move() {
  assert(!in_move_);
  in_move_ = true;
  index_.begin_move();
  delta_.clear();
  std::fill(proc_touched_.begin(), proc_touched_.end(), 0);
  touched_procs_.clear();
  ed_before_.clear();
  affected_nodes_.clear();
  save_req_before_.clear();
  ++affected_epoch_;
}

void IncrementalEvaluator::apply_op(const PlanDeltaOp& op) {
  assert(in_move_);
  auto touch_proc = [&](int p) {
    if (!proc_touched_[static_cast<std::size_t>(p)]) {
      proc_touched_[static_cast<std::size_t>(p)] = 1;
      touched_procs_.push_back(p);
    }
  };
  auto note_affected = [&](NodeId v) {
    if (affected_stamp_[static_cast<std::size_t>(v)] != affected_epoch_) {
      affected_stamp_[static_cast<std::size_t>(v)] = affected_epoch_;
      affected_nodes_.push_back(v);
      save_req_before_.push_back(
          {v, save_req_[static_cast<std::size_t>(v)]});
    }
  };
  auto note_node = [&](NodeId v) {
    ed_before_.push_back({v, index_.earliest_done(v)});
    note_affected(v);
    for (NodeId u : dag_.parents(v)) note_affected(u);
  };

  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      touch_proc(op.proc);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.pc.node, +1);
      break;
    case PlanDeltaOpKind::kErase:
      touch_proc(op.proc);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.pc.node, -1);
      break;
    case PlanDeltaOpKind::kSetNode:
      touch_proc(op.proc);
      note_node(op.old_node);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.old_node, -1);
      bump_occurrence_counts(op.proc, op.pc.node, +1);
      break;
    case PlanDeltaOpKind::kMergeStep:
    case PlanDeltaOpKind::kSplitStep:
      delta_.structural = true;
      for (int p = 0; p < P_; ++p) touch_proc(p);
      break;
  }
  apply_delta_op(plan_, op);
  index_.on_apply(op);
  delta_.ops.push_back(op);
}

IncrementalEvaluator::Outcome IncrementalEvaluator::finish_move() {
  assert(in_move_);
  // Keep the dense-superstep invariant: a move that emptied a superstep
  // strictly below the top is followed by a gap-closing merge (this is
  // exactly what normalize_supersteps would have done).
  for (int gap = index_.gap_step(); gap != -1; gap = index_.gap_step()) {
    PlanDeltaOp close;
    close.kind = PlanDeltaOpKind::kMergeStep;
    close.pc.superstep = gap;
    close.cuts.resize(static_cast<std::size_t>(P_));
    for (int p = 0; p < P_; ++p) {
      const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
      const auto it = std::upper_bound(
          seq.begin(), seq.end(), gap,
          [](int s, const PlannedCompute& pc) { return s < pc.superstep; });
      close.cuts[static_cast<std::size_t>(p)] =
          static_cast<std::size_t>(it - seq.begin());
    }
    apply_op(close);
  }

  refresh_save_required();
  if (!validate_candidate()) return {false, 0};

  double cost;
  if (incremental_) {
    int b = dirty_bound();
    b = std::min(b, static_cast<int>(checkpoints_.size()) - 1);
    cost = evaluate_from(b);
#ifndef NDEBUG
    // Differential oracle check: the incremental cost must equal the full
    // evaluator's bitwise, every iteration.
    assert(cost == evaluate_plan(inst_, plan_, options_) &&
           "incremental cost diverged from the full evaluator");
#endif
  } else {
    cost = evaluate_plan(inst_, plan_, options_);
    last_dirty_ = index_.num_supersteps();
  }
  return {true, cost};
}

void IncrementalEvaluator::commit() {
  assert(in_move_);
  if (incremental_) promote_eval();
  for (int p : touched_procs_) {
    std::swap(R_[static_cast<std::size_t>(p)],
              R_scratch_[static_cast<std::size_t>(p)]);
    std::swap(req_nodes_[static_cast<std::size_t>(p)],
              req_nodes_scratch_[static_cast<std::size_t>(p)]);
  }
  index_.commit_move();
  in_move_ = false;
}

void IncrementalEvaluator::rollback() {
  assert(in_move_);
  for (auto it = delta_.ops.rbegin(); it != delta_.ops.rend(); ++it) {
    const PlanDeltaOp& op = *it;
    switch (op.kind) {
      case PlanDeltaOpKind::kInsert:
        bump_occurrence_counts(op.proc, op.pc.node, -1);
        break;
      case PlanDeltaOpKind::kErase:
        bump_occurrence_counts(op.proc, op.pc.node, +1);
        break;
      case PlanDeltaOpKind::kSetNode:
        bump_occurrence_counts(op.proc, op.old_node, +1);
        bump_occurrence_counts(op.proc, op.pc.node, -1);
        break;
      case PlanDeltaOpKind::kMergeStep:
      case PlanDeltaOpKind::kSplitStep:
        break;
    }
    undo_delta_op(plan_, op);
    index_.on_undo(op);
  }
  for (const auto& [v, req] : save_req_before_) {
    save_req_[static_cast<std::size_t>(v)] = req;
  }
  index_.rollback_move();
  in_move_ = false;
}

// ---------------------------------------------------------------------------
// Validation.

bool IncrementalEvaluator::rescan_proc(int p) {
  // Exact replica of validate_plan's per-processor availability scan,
  // against the *current* (candidate) global earliest_done; also rebuilds
  // this processor's remote-requirement row (min superstep per needed
  // node), which guards untouched processors against later earliest_done
  // changes.
  auto& row = R_scratch_[static_cast<std::size_t>(p)];
  auto& reqs = req_nodes_scratch_[static_cast<std::size_t>(p)];
  for (NodeId v : reqs) row[static_cast<std::size_t>(v)] = INT_MAX;
  reqs.clear();
  ++scan_epoch_;
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const PlannedCompute& pc = seq[i];
    for (NodeId u : dag_.parents(pc.node)) {
      if (dag_.is_source(u)) continue;
      const bool local_earlier =
          scan_stamp_[static_cast<std::size_t>(u)] == scan_epoch_;
      if (local_earlier) continue;
      int& entry = row[static_cast<std::size_t>(u)];
      if (entry == INT_MAX) reqs.push_back(u);
      entry = std::min(entry, pc.superstep);
      const int ed = index_.earliest_done(u);
      const bool remote_earlier = ed >= 0 && ed < pc.superstep;
      if (!remote_earlier) return false;
    }
    scan_stamp_[static_cast<std::size_t>(pc.node)] = scan_epoch_;
  }
  return true;
}

bool IncrementalEvaluator::validate_candidate() {
  for (int p : touched_procs_) {
    if (!rescan_proc(p)) return false;
  }
  // Untouched processors: their local structure is unchanged, so their
  // occurrences can only break through a changed earliest_done of a node
  // they need remotely — checked against the committed requirement rows.
  for (const auto& [v, ed_old] : ed_before_) {
    (void)ed_old;
    const int ed = index_.earliest_done(v);
    if (ed < 0) return false;  // never computed (cannot happen for moves)
    for (int q = 0; q < P_; ++q) {
      if (proc_touched_[static_cast<std::size_t>(q)]) continue;
      if (R_[static_cast<std::size_t>(q)][static_cast<std::size_t>(v)] <= ed) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dirty bound.

int IncrementalEvaluator::dirty_bound() {
  int b = INT_MAX;
  // For each node whose occurrence/use pattern on a processor changed,
  // completion decisions on that processor are provably unchanged before
  // (the node's last event strictly before the edit position) + 1; an
  // absent prior event dirties the processor from its first activity on.
  const auto node_bound = [&](int p, std::size_t pos, int op_superstep,
                              NodeId a) {
    const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
    const auto& pp = index_.proc_positions(p);
    std::int64_t last = -1;
    const auto find_last = [&](const std::vector<std::int64_t>& start,
                               const std::vector<std::int64_t>& items) {
      const auto lo =
          items.begin() +
          static_cast<std::ptrdiff_t>(start[static_cast<std::size_t>(a)]);
      const auto hi =
          items.begin() +
          static_cast<std::ptrdiff_t>(start[static_cast<std::size_t>(a) + 1]);
      const auto it =
          std::lower_bound(lo, hi, static_cast<std::int64_t>(pos));
      if (it != lo) last = std::max(last, *(it - 1));
    };
    find_last(pp.comp_start, pp.comp_items);
    find_last(pp.use_start, pp.use_items);
    // Queries with from == last+1 can be issued by the segment *ending*
    // there, which runs in the superstep of position `last` — so the
    // restart must cover that superstep, not the one containing last+1.
    int s;
    if (last >= 0) {
      s = seq[static_cast<std::size_t>(last)].superstep;
    } else if (!seq.empty()) {
      // No prior event: the earliest divergent query (from == 0) is
      // issued by this processor's first segment — in the *edited* plan
      // that's seq[0]'s superstep, but the edit may have removed an even
      // earlier first segment (e.g. erasing the lone occurrence of the
      // first superstep), so the op's own superstep bounds it too.
      s = std::min(seq[0].superstep, op_superstep);
    } else {
      s = op_superstep;
    }
    b = std::min(b, s);
  };
  for (const PlanDeltaOp& op : delta_.ops) {
    if (op.kind == PlanDeltaOpKind::kMergeStep ||
        op.kind == PlanDeltaOpKind::kSplitStep) {
      // Merge/split only relabel supersteps >= s; occurrence positions —
      // and with them every next-need lookahead — are untouched, so the
      // completion is bitwise unchanged below superstep s.
      b = std::min(b, op.pc.superstep);
      continue;
    }
    const int s_op =
        op.kind == PlanDeltaOpKind::kSetNode
            ? plan_.seq[static_cast<std::size_t>(op.proc)][op.pos].superstep
            : op.pc.superstep;
    // op.pos is the apply-time position; clamp into the candidate
    // sequence (conservative: a smaller pos only lowers the bound).
    const std::size_t cand_size =
        plan_.seq[static_cast<std::size_t>(op.proc)].size();
    const std::size_t pos = std::min(op.pos, cand_size);
    node_bound(op.proc, pos, s_op, op.pc.node);
    for (NodeId u : dag_.parents(op.pc.node)) {
      node_bound(op.proc, pos, s_op, u);
    }
    if (op.kind == PlanDeltaOpKind::kSetNode) {
      node_bound(op.proc, pos, s_op, op.old_node);
      for (NodeId u : dag_.parents(op.old_node)) {
        node_bound(op.proc, pos, s_op, u);
      }
    }
  }
  // save_required is global: if a move flipped it for some node, every
  // superstep from that node's earliest occurrence on is dirty.
  for (const auto& [v, before] : save_req_before_) {
    if (save_req_[static_cast<std::size_t>(v)] == before) continue;
    int earliest = index_.earliest_done(v);
    for (const auto& [w, ed_old] : ed_before_) {
      if (w == v && ed_old >= 0) {
        earliest = earliest < 0 ? ed_old : std::min(earliest, ed_old);
      }
    }
    if (earliest >= 0) b = std::min(b, earliest);
  }
  return std::max(b == INT_MAX ? 0 : b, 0);
}

// ---------------------------------------------------------------------------
// Completion: eval-level state.

bool IncrementalEvaluator::eval_cache_member(int p, NodeId v) const {
  const std::size_t at = static_cast<std::size_t>(p) * n_ +
                         static_cast<std::size_t>(v);
  return ec_stamp_[at] == eval_epoch_ && ec_flag_[at];
}

void IncrementalEvaluator::eval_cache_set(int p, NodeId v, bool in) {
  const std::size_t at = static_cast<std::size_t>(p) * n_ +
                         static_cast<std::size_t>(v);
  ec_stamp_[at] = eval_epoch_;
  ec_flag_[at] = in ? 1 : 0;
}

bool IncrementalEvaluator::eval_blue(NodeId v) const {
  if (eb_stamp_[static_cast<std::size_t>(v)] == eval_epoch_) return true;
  return blue_step_[static_cast<std::size_t>(v)] < eval_b_;
}

void IncrementalEvaluator::eval_blue_set(NodeId v, int step) {
  if (eb_stamp_[static_cast<std::size_t>(v)] == eval_epoch_) return;
  eb_stamp_[static_cast<std::size_t>(v)] = eval_epoch_;
  eval_blued_.push_back({v, step});
}

bool IncrementalEvaluator::try_member(int p, NodeId v) const {
  if (t_stamp_[static_cast<std::size_t>(v)] == try_epoch_) {
    return t_flag_[static_cast<std::size_t>(v)] != 0;
  }
  return eval_cache_member(p, v);
}

void IncrementalEvaluator::try_set_member(NodeId v, bool in) {
  t_stamp_[static_cast<std::size_t>(v)] = try_epoch_;
  t_flag_[static_cast<std::size_t>(v)] = in ? 1 : 0;
  if (in && t_inlist_stamp_[static_cast<std::size_t>(v)] != try_epoch_) {
    t_inlist_stamp_[static_cast<std::size_t>(v)] = try_epoch_;
    t_list_.push_back(v);
  }
}

bool IncrementalEvaluator::try_blue(NodeId v) const {
  if (t_blue_stamp_[static_cast<std::size_t>(v)] == try_epoch_) return true;
  return eval_blue(v);
}

IncrementalEvaluator::SlotAcc& IncrementalEvaluator::slot_acc(int slot,
                                                              int p) {
  return slot_accs_[static_cast<std::size_t>(slot - first_eval_slot_) *
                        static_cast<std::size_t>(P_) +
                    static_cast<std::size_t>(p)];
}

std::int64_t IncrementalEvaluator::effective_next_need(
    const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
    std::int64_t from) const {
  const std::size_t v_ = static_cast<std::size_t>(v);
  const auto ub = pp.use_items.begin() +
                  static_cast<std::ptrdiff_t>(pp.use_start[v_]);
  const auto ue = pp.use_items.begin() +
                  static_cast<std::ptrdiff_t>(pp.use_start[v_ + 1]);
  const auto uit = std::lower_bound(ub, ue, from);
  if (uit == ue) return kNever;
  const auto cb = pp.comp_items.begin() +
                  static_cast<std::ptrdiff_t>(pp.comp_start[v_]);
  const auto ce = pp.comp_items.begin() +
                  static_cast<std::ptrdiff_t>(pp.comp_start[v_ + 1]);
  const auto cit = std::lower_bound(cb, ce, from);
  if (cit != ce && *cit < *uit) return kNever;  // recomputed first
  return *uit;
}

// ---------------------------------------------------------------------------
// Completion: boundary restore / checkpoint / main loop.

void IncrementalEvaluator::restore_boundary(int b) {
  ++eval_epoch_;
  eval_b_ = b;
  const Checkpoint& ck = checkpoints_[static_cast<std::size_t>(b)];
  eval_cur_ = ck.cur;
  first_eval_slot_ = ck.cur;
  num_slots_ = ck.cur + 1;
  slot_accs_.clear();
  slot_accs_.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    const ProcCheckpoint& pk = ck.procs[static_cast<std::size_t>(p)];
    SlotAcc& acc = slot_acc(ck.cur, p);
    acc.comp = pk.comp_sum;
    acc.save = pk.save_sum;
    acc.load = pk.load_sum;
    acc.any = pk.any;
    ec_list_[static_cast<std::size_t>(p)] = pk.cache;
    for (NodeId v : pk.cache) eval_cache_set(p, v, true);
    ec_weight_[static_cast<std::size_t>(p)] = pk.weight;
    pos_[static_cast<std::size_t>(p)] = ck.pos[static_cast<std::size_t>(p)];
  }
  pending_blue_.clear();
  eval_blued_.clear();
  eval_homes_.clear();
  scratch_checkpoints_.clear();
  scratch_ck_base_ = b + 1;
}

void IncrementalEvaluator::record_checkpoint(int k) {
  (void)k;
  scratch_checkpoints_.emplace_back();
  Checkpoint& ck = scratch_checkpoints_.back();
  ck.cur = eval_cur_;
  ck.procs.resize(static_cast<std::size_t>(P_));
  ck.pos = pos_;
  for (int p = 0; p < P_; ++p) {
    ProcCheckpoint& pk = ck.procs[static_cast<std::size_t>(p)];
    pk.cache = ec_list_[static_cast<std::size_t>(p)];
    pk.weight = ec_weight_[static_cast<std::size_t>(p)];
    const SlotAcc& acc = slot_acc(eval_cur_, p);
    pk.comp_sum = acc.comp;
    pk.save_sum = acc.save;
    pk.load_sum = acc.load;
    pk.any = acc.any;
  }
}

double IncrementalEvaluator::evaluate_from(int b) {
  cand_supersteps_ = index_.num_supersteps();
  restore_boundary(b);
  for (int k = b; k < cand_supersteps_; ++k) {
    if (k > b) record_checkpoint(k);
    for (;;) {
      bool any_remaining = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::int64_t pos = pos_[static_cast<std::size_t>(p)];
        if (pos < static_cast<std::int64_t>(seq.size()) &&
            seq[static_cast<std::size_t>(pos)].superstep == k) {
          any_remaining = true;
          break;
        }
      }
      if (!any_remaining) break;
      // Append the body slot of this round (slot count stays cur + 2).
      ++num_slots_;
      slot_accs_.resize(slot_accs_.size() + static_cast<std::size_t>(P_));
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::int64_t pos = pos_[static_cast<std::size_t>(p)];
        if (pos >= static_cast<std::int64_t>(seq.size()) ||
            seq[static_cast<std::size_t>(pos)].superstep != k) {
          continue;
        }
        const bool planned = plan_segment(p, k);
        assert(planned && "first compute of a segment must be schedulable");
        (void)planned;
        commit_segment(p, k);
      }
      // post_saves become loadable from the next round on. Their transfer
      // price is also settled here, not at commit time: a later processor
      // of the *same* round can pre-save the value into the earlier slot
      // and claim its home group first (matching the oracle's slot-scan
      // home rule); by drain time every earlier save has been processed,
      // so the home consulted below is final.
      for (const auto& [v, p] : pending_blue_) {
        eval_assign_home(v, grp_[static_cast<std::size_t>(p)]);
        slot_acc(eval_cur_ + 1, p).save +=
            comm_cost(p, eval_home(v)) * dag_.mu(v);
        eval_blue_set(v, k);
      }
      pending_blue_.clear();
      ++eval_cur_;
    }
  }
  // Zero-length suffix (an erase shrank the superstep count to exactly
  // b): the boundary checkpoint already is the end state — recording it
  // would mislabel it as checkpoint b+1.
  if (cand_supersteps_ > b) record_checkpoint(cand_supersteps_);
  last_dirty_ = cand_supersteps_ - b;
  return finalize_cost();
}

// ---------------------------------------------------------------------------
// Completion: segment planning (the try_segment / plan_largest_segment
// replica, with the prefix scan shared across growing counts).

bool IncrementalEvaluator::plan_segment(int p, int superstep) {
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  const std::int64_t i0 = pos_[static_cast<std::size_t>(p)];
  std::int64_t limit = 0;
  while (i0 + limit < static_cast<std::int64_t>(seq.size()) &&
         seq[static_cast<std::size_t>(i0 + limit)].superstep == superstep) {
    ++limit;
  }
  assert(limit > 0);

  ++seg_epoch_;
  s_loads_.clear();
  s_load_weight_ = 0;
  bool best_found = false;
  for (std::int64_t count = 1; count <= limit; ++count) {
    // Extend the segment prefix state by entry count-1: upfront loads in
    // first-encounter order, consumed start-cache values, produced set.
    const NodeId v = seq[static_cast<std::size_t>(i0 + count - 1)].node;
    bool loadable = true;
    for (NodeId u : dag_.parents(v)) {
      const std::size_t u_ = static_cast<std::size_t>(u);
      if (s_produced_stamp_[u_] == seg_epoch_ ||
          s_load_stamp_[u_] == seg_epoch_) {
        continue;
      }
      if (eval_cache_member(p, u)) {
        s_needed_stamp_[u_] = seg_epoch_;
        continue;
      }
      if (!eval_blue(u)) {
        loadable = false;
        break;
      }
      s_load_stamp_[u_] = seg_epoch_;
      s_loads_.push_back(u);
      s_load_weight_ += dag_.mu(u);
    }
    if (!loadable) break;
    s_produced_stamp_[static_cast<std::size_t>(v)] = seg_epoch_;
    if (!run_phases(p, i0, count)) break;
    std::swap(best_seg_, cur_seg_);
    best_found = true;
  }
  return best_found;
}

bool IncrementalEvaluator::run_phases(int p, std::int64_t i0,
                                      std::int64_t count) {
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  const auto& pp = index_.proc_positions(p);
  ++try_epoch_;
  t_list_ = ec_list_[static_cast<std::size_t>(p)];
  for (NodeId v : t_list_) {
    t_inlist_stamp_[static_cast<std::size_t>(v)] = try_epoch_;
  }
  t_weight_ = ec_weight_[static_cast<std::size_t>(p)];
  Segment& seg = cur_seg_;
  seg.loads.assign(s_loads_.begin(), s_loads_.end());
  seg.pre_saves.clear();
  seg.pre_deletes.clear();
  seg.post_saves.clear();
  seg.post_deletes.clear();
  seg.ops.clear();
  seg.count = count;

  auto save_required = [&](NodeId v) {
    return save_req_[static_cast<std::size_t>(v)] != 0;
  };
  auto choose_victim = [&](auto&& allowed, std::int64_t from) -> NodeId {
    // Clairvoyant choice (farthest next use, node id tiebreak) over the
    // tentative cache — a strict total order, so list order is free.
    NodeId best = kInvalidNode;
    std::int64_t best_next = -1;
    for (NodeId v : t_list_) {
      if (t_stamp_[static_cast<std::size_t>(v)] == try_epoch_ &&
          !t_flag_[static_cast<std::size_t>(v)]) {
        continue;  // evicted in this try
      }
      if (!allowed(v)) continue;
      const std::int64_t need = effective_next_need(pp, v, from);
      const std::int64_t next_use = need == kNever ? kNoNextUse : need;
      if (best == kInvalidNode || next_use > best_next ||
          (next_use == best_next && v < best)) {
        best = v;
        best_next = next_use;
      }
    }
    return best;
  };

  // Phase A: upfront evictions so start cache + loads fit.
  const double r_p = mem_[static_cast<std::size_t>(p)];
  while (t_weight_ + s_load_weight_ > r_p + kMemEps) {
    const NodeId victim = choose_victim(
        [&](NodeId v) {
          return s_needed_stamp_[static_cast<std::size_t>(v)] != seg_epoch_;
        },
        i0);
    if (victim == kInvalidNode) return false;
    const bool live = effective_next_need(pp, victim, i0) != kNever;
    if (!try_blue(victim) && (live || save_required(victim))) {
      seg.pre_saves.push_back(victim);
      t_blue_stamp_[static_cast<std::size_t>(victim)] = try_epoch_;
    }
    seg.pre_deletes.push_back(victim);
    try_set_member(victim, false);
    t_weight_ -= dag_.mu(victim);
  }

  // Apply the upfront loads.
  for (NodeId u : seg.loads) {
    if (!try_member(p, u)) {
      try_set_member(u, true);
      t_weight_ += dag_.mu(u);
    }
  }

  // Hoistable start-cache values: untouched by the segment (see
  // memory_completion.cpp for why hoisting their eviction is sound).
  for (NodeId v : t_list_) {
    const std::size_t v_ = static_cast<std::size_t>(v);
    t_hoist_stamp_[v_] = try_epoch_;
    t_hoist_flag_[v_] = (try_member(p, v) &&
                         s_needed_stamp_[v_] != seg_epoch_ &&
                         s_load_stamp_[v_] != seg_epoch_)
                            ? 1
                            : 0;
  }
  auto hoistable = [&](NodeId v) {
    return t_hoist_stamp_[static_cast<std::size_t>(v)] == try_epoch_ &&
           t_hoist_flag_[static_cast<std::size_t>(v)] != 0;
  };
  auto remneed = [&](NodeId v) -> long {
    return t_remneed_stamp_[static_cast<std::size_t>(v)] == try_epoch_
               ? t_remneed_[static_cast<std::size_t>(v)]
               : 0;
  };
  auto bump_remneed = [&](NodeId v, long delta) {
    const std::size_t v_ = static_cast<std::size_t>(v);
    if (t_remneed_stamp_[v_] != try_epoch_) {
      t_remneed_stamp_[v_] = try_epoch_;
      t_remneed_[v_] = 0;
    }
    t_remneed_[v_] += delta;
  };
  for (std::int64_t j = 0; j < count; ++j) {
    for (NodeId u :
         dag_.parents(seq[static_cast<std::size_t>(i0 + j)].node)) {
      bump_remneed(u, +1);
    }
  }

  // Phase B: replay the computes with mid-segment evictions.
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[static_cast<std::size_t>(i0 + j)].node;
    const std::int64_t gpos = i0 + j;
    if (!try_member(p, v)) {
      while (t_weight_ + dag_.mu(v) > r_p + kMemEps) {
        const NodeId victim = choose_victim(
            [&](NodeId c) {
              if (remneed(c) > 0) return false;  // still a parent here
              if (try_blue(c)) return true;
              if (hoistable(c)) return true;
              return effective_next_need(pp, c, gpos) == kNever &&
                     !save_required(c);
            },
            gpos + 1);
        if (victim == kInvalidNode) return false;
        const bool dirty_live =
            !try_blue(victim) &&
            (effective_next_need(pp, victim, gpos) != kNever ||
             save_required(victim));
        if (dirty_live) {
          // Hoist: evict before the segment, saving first.
          seg.pre_saves.push_back(victim);
          t_blue_stamp_[static_cast<std::size_t>(victim)] = try_epoch_;
          seg.pre_deletes.push_back(victim);
        } else {
          seg.ops.push_back({0, victim});
        }
        try_set_member(victim, false);
        t_weight_ -= dag_.mu(victim);
      }
      seg.ops.push_back({1, v});
      try_set_member(v, true);
      t_weight_ += dag_.mu(v);
    }
    // else: value already red; the occurrence is redundant, skip the op.
    for (NodeId u : dag_.parents(v)) bump_remneed(u, -1);
    // Eager cleanup: drop parents that just died (free DELETE ops).
    for (NodeId u : dag_.parents(v)) {
      if (!try_member(p, u) || remneed(u) > 0) continue;
      if (effective_next_need(pp, u, gpos + 1) != kNever) continue;
      if (!try_blue(u) && save_required(u)) continue;
      seg.ops.push_back({0, u});
      try_set_member(u, false);
      t_weight_ -= dag_.mu(u);
    }
  }

  // Post phase: save outputs that need a blue pebble, then drop dead
  // values in ascending node order (matches the oracle's full scan).
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[static_cast<std::size_t>(i0 + j)].node;
    if (try_member(p, v) && !try_blue(v) && save_required(v)) {
      seg.post_saves.push_back(v);
      t_blue_stamp_[static_cast<std::size_t>(v)] = try_epoch_;
    }
  }
  sorted_members_.clear();
  for (NodeId v : t_list_) {
    if (try_member(p, v)) sorted_members_.push_back(v);
  }
  std::sort(sorted_members_.begin(), sorted_members_.end());
  const std::int64_t after = i0 + count;
  for (NodeId v : sorted_members_) {
    if (effective_next_need(pp, v, after) != kNever) continue;
    if (!try_blue(v) && save_required(v)) continue;
    seg.post_deletes.push_back(v);
    try_set_member(v, false);
    t_weight_ -= dag_.mu(v);
  }

  seg.final_cache.clear();
  for (NodeId v : t_list_) {
    if (try_member(p, v)) seg.final_cache.push_back(v);
  }
  seg.final_weight = t_weight_;
  return true;
}

void IncrementalEvaluator::commit_segment(int p, int superstep) {
  const Segment& seg = best_seg_;
  SlotAcc& stage = slot_acc(eval_cur_, p);
  for (NodeId v : seg.pre_saves) {
    // A pre-save is the slot-order-first save of a not-yet-blue value on
    // this processor's slot, so it may claim the home group.
    eval_assign_home(v, grp_[static_cast<std::size_t>(p)]);
    stage.save += comm_cost(p, eval_home(v)) * dag_.mu(v);
  }
  for (NodeId v : seg.loads) {
    // Loads require blue, so the home (if any) is already final.
    stage.load += comm_cost(p, eval_home(v)) * dag_.mu(v);
  }
  if (!seg.pre_saves.empty() || !seg.pre_deletes.empty() ||
      !seg.loads.empty()) {
    stage.any = 1;
  }
  SlotAcc& body = slot_acc(eval_cur_ + 1, p);
  for (const auto& [is_compute, v] : seg.ops) {
    if (is_compute) body.comp += dag_.omega(v);
  }
  // post_saves are priced at the round drain (see evaluate_from), where
  // their home groups are final.
  if (!seg.ops.empty() || !seg.post_saves.empty() ||
      !seg.post_deletes.empty()) {
    body.any = 1;
  }

  // Fold the segment's end state into the eval-level processor state.
  ++commit_stamp_epoch_;
  for (NodeId v : seg.final_cache) {
    commit_stamp_[static_cast<std::size_t>(v)] = commit_stamp_epoch_;
  }
  for (NodeId v : ec_list_[static_cast<std::size_t>(p)]) {
    if (commit_stamp_[static_cast<std::size_t>(v)] != commit_stamp_epoch_) {
      eval_cache_set(p, v, false);
    }
  }
  for (NodeId v : seg.final_cache) eval_cache_set(p, v, true);
  ec_list_[static_cast<std::size_t>(p)] = seg.final_cache;
  ec_weight_[static_cast<std::size_t>(p)] = seg.final_weight;
  pos_[static_cast<std::size_t>(p)] += seg.count;
  for (NodeId v : seg.pre_saves) eval_blue_set(v, superstep);
  for (NodeId v : seg.post_saves) pending_blue_.push_back({v, p});
}

double IncrementalEvaluator::finalize_cost() {
  scratch_rows_.clear();
  scratch_row_empty_.clear();
  for (int slot = first_eval_slot_; slot < num_slots_; ++slot) {
    SyncStepCost row;
    char any = 0;
    for (int p = 0; p < P_; ++p) {
      const SlotAcc& acc = slot_acc(slot, p);
      // Raw work sums are divided by the processor speed only here, in
      // the same order as the full evaluator (uniform: / 1.0, bitwise
      // identity).
      row.max_compute =
          std::max(row.max_compute,
                   acc.comp / speed_[static_cast<std::size_t>(p)]);
      row.max_save = std::max(row.max_save, acc.save);
      row.max_load = std::max(row.max_load, acc.load);
      any |= acc.any;
    }
    scratch_rows_.push_back(row);
    scratch_row_empty_.push_back(any ? 0 : 1);
  }
  // Resume the accumulation from the cached prefix state (same doubles,
  // same add order as a full front-to-back sweep — bitwise equal).
  SyncCostBreakdown bd = first_eval_slot_ > 0
                             ? row_prefix_[static_cast<std::size_t>(
                                   first_eval_slot_ - 1)]
                             : SyncCostBreakdown{};
  for (std::size_t i = 0; i < scratch_rows_.size(); ++i) {
    if (scratch_row_empty_[i]) continue;
    const SyncStepCost& row = scratch_rows_[i];
    bd.compute += row.max_compute;
    bd.io += row.max_save + row.max_load;
    bd.sync += L_;
  }
  return bd.total();
}

void IncrementalEvaluator::promote_eval() {
  rows_.resize(static_cast<std::size_t>(num_slots_));
  row_empty_.resize(static_cast<std::size_t>(num_slots_));
  row_prefix_.resize(static_cast<std::size_t>(num_slots_));
  SyncCostBreakdown bd = first_eval_slot_ > 0
                             ? row_prefix_[static_cast<std::size_t>(
                                   first_eval_slot_ - 1)]
                             : SyncCostBreakdown{};
  for (std::size_t i = 0; i < scratch_rows_.size(); ++i) {
    const std::size_t at = static_cast<std::size_t>(first_eval_slot_) + i;
    rows_[at] = scratch_rows_[i];
    row_empty_[at] = scratch_row_empty_[i];
    if (!scratch_row_empty_[i]) {
      bd.compute += scratch_rows_[i].max_compute;
      bd.io += scratch_rows_[i].max_save + scratch_rows_[i].max_load;
      bd.sync += L_;
    }
    row_prefix_[at] = bd;
  }
  checkpoints_.resize(static_cast<std::size_t>(cand_supersteps_) + 1);
  for (std::size_t i = 0; i < scratch_checkpoints_.size(); ++i) {
    checkpoints_[static_cast<std::size_t>(scratch_ck_base_) + i] =
        std::move(scratch_checkpoints_[i]);
  }
  // Blue timestamps: drop the old suffix, install the new one.
  for (int k = eval_b_; k < static_cast<int>(blued_in_step_.size()); ++k) {
    for (NodeId v : blued_in_step_[static_cast<std::size_t>(k)]) {
      if (blue_step_[static_cast<std::size_t>(v)] == k) {
        blue_step_[static_cast<std::size_t>(v)] = INT_MAX;
      }
    }
    blued_in_step_[static_cast<std::size_t>(k)].clear();
  }
  blued_in_step_.resize(static_cast<std::size_t>(cand_supersteps_));
  for (const auto& [v, k] : eval_blued_) {
    blue_step_[static_cast<std::size_t>(v)] = k;
    blued_in_step_[static_cast<std::size_t>(k)].push_back(v);
  }
  // Home groups ride on the blue timestamps: entries dropped above are
  // invalidated by their blue reset; the new suffix installs its own.
  for (const auto& [v, grp] : eval_homes_) {
    home_group_[static_cast<std::size_t>(v)] = grp;
  }
}

}  // namespace mbsp
