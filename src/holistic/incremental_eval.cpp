#include "src/holistic/incremental_eval.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace mbsp {

namespace {

constexpr double kMemEps = 1e-9;  // must match memory_completion.cpp
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const MbspInstance& inst,
                                           const LnsOptions& options)
    : inst_(inst),
      dag_(inst.dag),
      options_(options),
      async_(options.cost == CostModel::kAsynchronous),
      sync_(options.cost != CostModel::kAsynchronous),
      lru_(options.completion_policy == PolicyKind::kLru),
      uniform_(inst.arch.is_uniform()),
      P_(inst.arch.num_processors),
      n_(static_cast<std::size_t>(inst.dag.num_nodes())),
      g_(inst.arch.g),
      L_(inst.arch.sync_L()),
      single_group_(inst.arch.group_of.empty()),
      g_in_(inst.arch.g_in),
      g_out_(inst.arch.g_out) {
  mem_.resize(static_cast<std::size_t>(P_));
  speed_.resize(static_cast<std::size_t>(P_));
  grp_.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    mem_[static_cast<std::size_t>(p)] = inst.arch.memory(p);
    speed_[static_cast<std::size_t>(p)] = inst.arch.speed(p);
    grp_[static_cast<std::size_t>(p)] = inst.arch.group(p);
  }
  const char* mode = std::getenv("MBSP_ARENA_MODE");
  eval_arena_.set_paranoid(options.arena_paranoid ||
                           (mode != nullptr && std::strcmp(mode, "heap") == 0));
}

// Home groups mirror blue rounds: committed entries are valid exactly when
// the blue round is committed-visible, the per-eval overlay is a FlatMap,
// and assignment happens at the value's first save in blue-visibility
// order — which equals the oracle's slot-scan order for every schedule the
// completion can produce (post-saves of a round are priced at the round's
// drain so a same-round earlier-slot pre-save can still claim the home
// first).

int IncrementalEvaluator::eval_home(NodeId v) const {
  const int* ov = eh_map_.find(v);
  if (ov != nullptr) return *ov;
  if (blue_round_[static_cast<std::size_t>(v)] < eval_b_) {
    return home_group_[static_cast<std::size_t>(v)];
  }
  return -1;
}

void IncrementalEvaluator::eval_assign_home(NodeId v, int grp) {
  if (single_group_ || eval_home(v) >= 0) return;
  eh_map_.get_or_insert(v, grp);
  eval_homes_.push_back({v, grp});
}

double IncrementalEvaluator::comm_cost(int p, int home) const {
  if (single_group_) return g_;
  return home == grp_[static_cast<std::size_t>(p)] ? g_in_ : g_out_;
}

double IncrementalEvaluator::attach(const ComputePlan& plan) {
  plan_ = plan;
  P_ = plan_.num_procs;
  index_.attach(&dag_, &plan_);

  const std::size_t pn = static_cast<std::size_t>(P_) * n_;
  comp_cnt_.assign(pn, 0);
  use_cnt_.assign(pn, 0);
  comp_proc_count_.assign(n_, 0);
  for (int p = 0; p < P_; ++p) {
    for (const PlannedCompute& pc : plan_.seq[static_cast<std::size_t>(p)]) {
      bump_occurrence_counts(p, pc.node, +1);
    }
  }
  save_req_.assign(n_, 0);
  for (NodeId v = 0; v < static_cast<NodeId>(n_); ++v) {
    save_req_[static_cast<std::size_t>(v)] = compute_save_required(v) ? 1 : 0;
  }

  // Validator committed rows.
  R_map_.assign(static_cast<std::size_t>(P_), FlatMap<NodeId, int>{});
  R_scratch_map_.assign(static_cast<std::size_t>(P_), FlatMap<NodeId, int>{});
  scan_stamp_.assign(n_, 0);
  scan_epoch_ = 0;
  affected_stamp_.assign(n_, 0);
  affected_epoch_ = 0;
  for (int p = 0; p < P_; ++p) {
    rescan_proc(p);  // attached plans are valid; this just fills the rows
    std::swap(R_map_[static_cast<std::size_t>(p)],
              R_scratch_map_[static_cast<std::size_t>(p)]);
  }

  in_move_ = false;
  delta_ops_.clear();
  delta_size_ = 0;
  proc_touched_.assign(static_cast<std::size_t>(P_), 0);
  touched_procs_.clear();
  inserts_on_proc_.assign(static_cast<std::size_t>(P_), 0);
  ed_before_.clear();
  affected_nodes_.clear();
  save_req_before_.clear();
  relabel_fixups_.clear();

  // Committed completion state at boundary 0 (nothing completed yet).
  blue_round_.assign(n_, INT_MAX);
  for (NodeId v = 0; v < static_cast<NodeId>(n_); ++v) {
    if (dag_.is_source(v)) blue_round_[static_cast<std::size_t>(v)] = -1;
  }
  home_group_.assign(n_, -1);
  blued_nodes_.clear();
  blued_start_.assign(1, 0);
  rows_.clear();
  row_empty_.clear();
  row_prefix_.clear();
  committed_rounds_ = 0;
  committed_steps_ = 0;
  ck_pos_.assign(static_cast<std::size_t>(P_), 0);
  ck_weight_.assign(static_cast<std::size_t>(P_), 0.0);
  if (sync_) {
    ck_comp_.assign(static_cast<std::size_t>(P_), 0.0);
    ck_save_.assign(static_cast<std::size_t>(P_), 0.0);
    ck_load_.assign(static_cast<std::size_t>(P_), 0.0);
    ck_any_.assign(static_cast<std::size_t>(P_), 0);
  }
  ck_cache_start_.assign(static_cast<std::size_t>(P_) + 1, 0);
  ck_cache_nodes_.clear();
  ck_step_.clear();
  step_first_round_.assign(1, 0);
  if (async_) {
    as_comp_nodes_.clear();
    as_save_nodes_.clear();
    as_load_nodes_.clear();
    as_comp_start_.assign(static_cast<std::size_t>(P_) + 1, 0);
    as_save_start_.assign(static_cast<std::size_t>(P_) + 1, 0);
    as_load_start_.assign(static_cast<std::size_t>(P_) + 1, 0);
    as_save_prefix_.assign(static_cast<std::size_t>(P_), 0);
    async_cur_.assign(static_cast<std::size_t>(P_), SlotOps{});
    async_next_.assign(static_cast<std::size_t>(P_), SlotOps{});
    fs_stamp_.assign(n_, 0);
    first_save_.assign(n_, 0);
    gets_blue_.assign(n_, 0.0);
    now_.assign(static_cast<std::size_t>(P_), 0.0);
    async_epoch_ = 0;
  }

  // Per-eval / per-try scratch (epoch 1 + zeroed stamps = all empty).
  nn_stamp_.assign(static_cast<std::size_t>(P_) * n_, 0);
  nn_epoch_.assign(static_cast<std::size_t>(P_), 1);
  nn_from_.assign(static_cast<std::size_t>(P_) * n_, 0);
  nn_use_.assign(static_cast<std::size_t>(P_) * n_, 0);
  nn_comp_.assign(static_cast<std::size_t>(P_) * n_, 0);
  ec_stamp_.assign(static_cast<std::size_t>(P_) * n_, 0);
  ec_epoch_.assign(static_cast<std::size_t>(P_), 1);
  ec_list_.assign(static_cast<std::size_t>(P_), {});
  ec_weight_.assign(static_cast<std::size_t>(P_), 0.0);
  pos_.assign(static_cast<std::size_t>(P_), 0);
  eb_stamp_.assign(n_, 0);
  eb_epoch_ = 1;
  eh_map_.clear();
  pending_blue_.clear();
  s_ov_.assign(n_, SegOv{});
  s_epoch_ = 1;
  t_ov_.assign(n_, TryOv{});
  t_epoch_ = 1;
  t_added_.clear();

  reserve_from_attached();

  const double cost = evaluate_from(0);
  promote_eval();
#ifndef NDEBUG
  assert(cost == evaluate_plan(inst_, plan_, options_));
#endif
  return cost;
}

void IncrementalEvaluator::reserve_from_attached() {
  // Steady-state sizing from (n, P, K): rounds track supersteps closely
  // (one round per superstep unless segments split), so 2K + 8 rows of
  // headroom absorbs typical structural churn without mid-search growth.
  const std::size_t P = static_cast<std::size_t>(P_);
  const std::size_t K =
      static_cast<std::size_t>(std::max(plan_.num_supersteps(), 1));
  const std::size_t rows = 2 * K + 8;
  ck_pos_.reserve(rows * P);
  ck_weight_.reserve(rows * P);
  ck_cache_start_.reserve(rows * P + 1);
  ck_cache_nodes_.reserve(2 * n_);
  ck_step_.reserve(rows);
  step_first_round_.reserve(K + 2);
  blued_nodes_.reserve(n_);
  blued_start_.reserve(rows + 1);
  if (sync_) {
    ck_comp_.reserve(rows * P);
    ck_save_.reserve(rows * P);
    ck_load_.reserve(rows * P);
    ck_any_.reserve(rows * P);
    rows_.reserve(rows + 1);
    row_empty_.reserve(rows + 1);
    row_prefix_.reserve(rows + 1);
    scratch_rows_.reserve(rows + 1);
    scratch_row_empty_.reserve(rows + 1);
    slot_comp_.reserve(rows * P);
    slot_save_.reserve(rows * P);
    slot_load_.reserve(rows * P);
    slot_any_.reserve(rows * P);
  }
  if (async_) {
    as_comp_nodes_.reserve(2 * n_);
    as_save_nodes_.reserve(2 * n_);
    as_load_nodes_.reserve(2 * n_);
    as_comp_start_.reserve(rows * P + 1);
    as_save_start_.reserve(rows * P + 1);
    as_load_start_.reserve(rows * P + 1);
    as_save_prefix_.reserve(rows * P);
  }
  pending_blue_.reserve(4 * P);
  sorted_members_.reserve(64);
  t_added_.reserve(64);
  s_loads_.reserve(64);
  delta_ops_.reserve(16);
  touched_procs_.reserve(P);
  ed_before_.reserve(16);
  affected_nodes_.reserve(32);
  save_req_before_.reserve(32);
  relabel_fixups_.reserve(4);
}

// ---------------------------------------------------------------------------
// save_required maintenance.

void IncrementalEvaluator::bump_occurrence_counts(int p, NodeId v, int delta) {
  const std::size_t base = static_cast<std::size_t>(p) * n_;
  long& cc = comp_cnt_[base + static_cast<std::size_t>(v)];
  const bool had = cc > 0;
  cc += delta;
  const bool has = cc > 0;
  if (had != has) {
    comp_proc_count_[static_cast<std::size_t>(v)] += has ? 1 : -1;
  }
  for (NodeId u : dag_.parents(v)) {
    use_cnt_[base + static_cast<std::size_t>(u)] += delta;
  }
}

bool IncrementalEvaluator::compute_save_required(NodeId v) const {
  // Mirrors Completer::precompute: sinks always; otherwise "used on some
  // processor that is not the only computing processor".
  if (dag_.is_source(v)) return false;
  if (dag_.is_sink(v)) return true;
  const int cc = comp_proc_count_[static_cast<std::size_t>(v)];
  for (int p = 0; p < P_; ++p) {
    const std::size_t at =
        static_cast<std::size_t>(p) * n_ + static_cast<std::size_t>(v);
    if (use_cnt_[at] > 0 && (cc > 1 || comp_cnt_[at] == 0)) return true;
  }
  return false;
}

void IncrementalEvaluator::refresh_save_required() {
  for (NodeId v : affected_nodes_) {
    save_req_[static_cast<std::size_t>(v)] = compute_save_required(v) ? 1 : 0;
  }
}

// ---------------------------------------------------------------------------
// Move protocol.

void IncrementalEvaluator::begin_move() {
  assert(!in_move_);
  in_move_ = true;
  index_.begin_move();
  delta_size_ = 0;
  std::fill(proc_touched_.begin(), proc_touched_.end(), 0);
  touched_procs_.clear();
  ed_before_.clear();
  affected_nodes_.clear();
  save_req_before_.clear();
  relabel_fixups_.clear();
  ++affected_epoch_;
}

void IncrementalEvaluator::apply_op(const PlanDeltaOp& op) {
  assert(in_move_);
  auto touch_proc = [&](int p) {
    if (!proc_touched_[static_cast<std::size_t>(p)]) {
      proc_touched_[static_cast<std::size_t>(p)] = 1;
      touched_procs_.push_back(p);
    }
  };
  auto note_affected = [&](NodeId v) {
    if (affected_stamp_[static_cast<std::size_t>(v)] != affected_epoch_) {
      affected_stamp_[static_cast<std::size_t>(v)] = affected_epoch_;
      affected_nodes_.push_back(v);
      save_req_before_.push_back({v, save_req_[static_cast<std::size_t>(v)]});
    }
  };
  auto note_node = [&](NodeId v) {
    ed_before_.push_back({v, index_.earliest_done(v)});
    note_affected(v);
    for (NodeId u : dag_.parents(v)) note_affected(u);
  };

  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      touch_proc(op.proc);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.pc.node, +1);
      break;
    case PlanDeltaOpKind::kErase:
      touch_proc(op.proc);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.pc.node, -1);
      break;
    case PlanDeltaOpKind::kSetNode:
      touch_proc(op.proc);
      note_node(op.old_node);
      note_node(op.pc.node);
      bump_occurrence_counts(op.proc, op.old_node, -1);
      bump_occurrence_counts(op.proc, op.pc.node, +1);
      break;
    case PlanDeltaOpKind::kMergeStep:
    case PlanDeltaOpKind::kSplitStep:
      for (int p = 0; p < P_; ++p) touch_proc(p);
      break;
  }
  apply_delta_op(plan_, op);
  index_.on_apply(op);
  // Pooled move log: reuse slots (and their cuts capacity) across moves.
  if (delta_size_ == delta_ops_.size()) delta_ops_.emplace_back();
  delta_ops_[delta_size_++] = op;
}

IncrementalEvaluator::Outcome IncrementalEvaluator::finish_move() {
  assert(in_move_);
  // Keep the dense-superstep invariant: a move that emptied a superstep
  // strictly below the top is followed by a gap-closing merge (this is
  // exactly what normalize_supersteps would have done).
  for (int gap = index_.gap_step(); gap != -1; gap = index_.gap_step()) {
    PlanDeltaOp& close = scratch_op_;
    close.kind = PlanDeltaOpKind::kMergeStep;
    close.proc = 0;
    close.pos = 0;
    close.pc = PlannedCompute{};
    close.pc.superstep = gap;
    close.old_node = kInvalidNode;
    close.cuts.resize(static_cast<std::size_t>(P_));
    for (int p = 0; p < P_; ++p) {
      const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
      const auto it = std::upper_bound(
          seq.begin(), seq.end(), gap,
          [](int s, const PlannedCompute& pc) { return s < pc.superstep; });
      close.cuts[static_cast<std::size_t>(p)] =
          static_cast<std::size_t>(it - seq.begin());
    }
    apply_op(close);
  }

  refresh_save_required();
  if (!validate_candidate()) return {false, 0};

  // Touched processors' candidate-frame occurrence positions changed;
  // drop their memoized lookahead (untouched rows stay warm).
  for (int p : touched_procs_) nn_invalidate(p);

  const int b = std::max(std::min(dirty_bound(), committed_rounds_), 0);
  const double cost = evaluate_from(b);
  // Differential oracle check: the incremental cost must equal the full
  // evaluator's bitwise, every iteration.
  assert(cost == evaluate_plan(inst_, plan_, options_) &&
         "incremental cost diverged from the full evaluator");
  return {true, cost};
}

void IncrementalEvaluator::commit() {
  assert(in_move_);
  promote_eval();
  for (int p : touched_procs_) {
    std::swap(R_map_[static_cast<std::size_t>(p)],
              R_scratch_map_[static_cast<std::size_t>(p)]);
  }
  index_.commit_move();
  in_move_ = false;
#ifndef NDEBUG
  // MBSP_CK_VERIFY=1 re-derives every checkpoint from scratch after each
  // commit and requires the promoted rows to match. The per-move cost
  // oracle above cannot see *cost-silent* state drift (evictions are
  // free, so a wrong cache can coast for many rounds before it prices a
  // reload); this check catches the drift at the commit that caused it.
  if (std::getenv("MBSP_CK_VERIFY") != nullptr) {
    evaluate_from(0);
    const std::size_t P = static_cast<std::size_t>(P_);
    const std::size_t nrec = scr_pos_.size() / P;
    assert(nrec == static_cast<std::size_t>(committed_rounds_) &&
           "promoted round count diverges from a fresh evaluation");
    for (std::size_t r = 0; r + 1 < nrec; ++r) {
      for (std::size_t p = 0; p < P; ++p) {
        const std::size_t si = r * P + p;        // fresh boundary r+1
        const std::size_t ci = (r + 1) * P + p;  // promoted boundary r+1
        assert(ck_pos_[ci] == scr_pos_[si] &&
               ck_weight_[ci] == scr_weight_[si] &&
               "promoted checkpoint scalars diverge from a fresh evaluation");
        const std::int64_t cn = ck_cache_start_[ci + 1] - ck_cache_start_[ci];
        assert(cn == scr_cache_start_[si + 1] - scr_cache_start_[si] &&
               "promoted cache size diverges from a fresh evaluation");
        for (std::int64_t j = 0; j < cn; ++j) {
          assert(ck_cache_nodes_[ck_cache_start_[ci] + j] ==
                     scr_cache_nodes_[scr_cache_start_[si] + j] &&
                 "promoted cache row diverges from a fresh evaluation");
        }
      }
    }
  }
#endif
}

void IncrementalEvaluator::rollback() {
  assert(in_move_);
  for (std::size_t i = delta_size_; i-- > 0;) {
    const PlanDeltaOp& op = delta_ops_[i];
    switch (op.kind) {
      case PlanDeltaOpKind::kInsert:
        bump_occurrence_counts(op.proc, op.pc.node, -1);
        break;
      case PlanDeltaOpKind::kErase:
        bump_occurrence_counts(op.proc, op.pc.node, +1);
        break;
      case PlanDeltaOpKind::kSetNode:
        bump_occurrence_counts(op.proc, op.old_node, +1);
        bump_occurrence_counts(op.proc, op.pc.node, -1);
        break;
      case PlanDeltaOpKind::kMergeStep:
      case PlanDeltaOpKind::kSplitStep:
        break;
    }
    undo_delta_op(plan_, op);
    index_.on_undo(op);
  }
  for (const auto& [v, req] : save_req_before_) {
    save_req_[static_cast<std::size_t>(v)] = req;
  }
  // The plan reverts to the committed frame: memo rows filled from the
  // rolled-back candidate frame must not survive.
  for (int p : touched_procs_) nn_invalidate(p);
  index_.rollback_move();
  in_move_ = false;
}

// ---------------------------------------------------------------------------
// Validation.

bool IncrementalEvaluator::rescan_proc(int p) {
  // Exact replica of validate_plan's per-processor availability scan,
  // against the *current* (candidate) global earliest_done; also rebuilds
  // this processor's remote-requirement row (min superstep per needed
  // node), which guards untouched processors against later earliest_done
  // changes.
  auto& row = R_scratch_map_[static_cast<std::size_t>(p)];
  row.clear();
  ++scan_epoch_;
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const PlannedCompute& pc = seq[i];
    for (NodeId u : dag_.parents(pc.node)) {
      if (dag_.is_source(u)) continue;
      if (scan_stamp_[static_cast<std::size_t>(u)] == scan_epoch_) continue;
      int& entry = row.get_or_insert(u, INT_MAX);
      entry = std::min(entry, pc.superstep);
      const int ed = index_.earliest_done(u);
      const bool remote_earlier = ed >= 0 && ed < pc.superstep;
      if (!remote_earlier) return false;
    }
    scan_stamp_[static_cast<std::size_t>(pc.node)] = scan_epoch_;
  }
  return true;
}

bool IncrementalEvaluator::validate_candidate() {
  for (int p : touched_procs_) {
    if (!rescan_proc(p)) return false;
  }
  // Untouched processors: their local structure is unchanged, so their
  // occurrences can only break through a changed earliest_done of a node
  // they need remotely — checked against the committed requirement rows.
  for (const auto& [v, ed_old] : ed_before_) {
    (void)ed_old;
    const int ed = index_.earliest_done(v);
    if (ed < 0) return false;  // never computed (cannot happen for moves)
    for (int q = 0; q < P_; ++q) {
      if (proc_touched_[static_cast<std::size_t>(q)]) continue;
      const int* entry = R_map_[static_cast<std::size_t>(q)].find(v);
      if (entry != nullptr && *entry <= ed) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Round-table helpers (committed frame).

int IncrementalEvaluator::first_round_of(int superstep) const {
  const int s = std::clamp(superstep, 0, committed_steps_);
  return step_first_round_[static_cast<std::size_t>(s)];
}

int IncrementalEvaluator::round_of_pos(int p, std::int64_t pos) const {
  // Smallest committed round whose segment on p contains position pos
  // (boundary positions are per-proc nondecreasing in r).
  int lo = 0, hi = committed_rounds_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (ck_pos_[static_cast<std::size_t>(mid + 1) * static_cast<std::size_t>(P_) +
                static_cast<std::size_t>(p)] > pos) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

int IncrementalEvaluator::crossing_round(int p, std::int64_t cut) const {
  // Smallest committed round boundary at which p has consumed >= cut
  // positions (the round whose segment first reaches the old block
  // boundary starts at the previous boundary).
  int lo = 0, hi = committed_rounds_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (ck_pos_[static_cast<std::size_t>(mid) * static_cast<std::size_t>(P_) +
                static_cast<std::size_t>(p)] >= cut) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Dirty bound (in committed rounds; see the header's invariants).

int IncrementalEvaluator::dirty_bound() {
  int b = INT_MAX;
  int structural = 0;
  int num_splits = 0;
  for (std::size_t i = 0; i < delta_size_; ++i) {
    const PlanDeltaOpKind k = delta_ops_[i].kind;
    if (k == PlanDeltaOpKind::kMergeStep) ++structural;
    if (k == PlanDeltaOpKind::kSplitStep) {
      ++structural;
      ++num_splits;
    }
  }
  for (int p : touched_procs_) {
    inserts_on_proc_[static_cast<std::size_t>(p)] = 0;
  }
  for (std::size_t i = 0; i < delta_size_; ++i) {
    if (delta_ops_[i].kind == PlanDeltaOpKind::kInsert) {
      ++inserts_on_proc_[static_cast<std::size_t>(delta_ops_[i].proc)];
    }
  }
  // Candidate-frame superstep labels under-shoot committed ones only via
  // splits (each raises labels by one); subtracting the move's split
  // count keeps label-keyed round lookups conservative.
  const auto safe_first = [&](int s) { return first_round_of(s - num_splits); };
  const auto first_at = [](const std::vector<PlannedCompute>& seq, int s) {
    return static_cast<std::size_t>(
        std::lower_bound(seq.begin(), seq.end(), s,
                         [](const PlannedCompute& pc, int step) {
                           return pc.superstep < step;
                         }) -
        seq.begin());
  };

  // For each node whose occurrence/use pattern on a processor changed,
  // completion decisions on that processor are provably unchanged before
  // (the node's last event strictly before the edit position) + 1; an
  // absent prior event dirties the processor from its first activity on.
  const auto node_bound = [&](int p, std::size_t pos, int op_superstep,
                              NodeId a) {
    const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
    const auto& pp = index_.proc_positions(p);
    std::int64_t last = -1;
    const auto find_last = [&](const std::vector<std::int64_t>& start,
                               const std::vector<std::int64_t>& items) {
      const auto lo =
          items.begin() +
          static_cast<std::ptrdiff_t>(start[static_cast<std::size_t>(a)]);
      const auto hi =
          items.begin() +
          static_cast<std::ptrdiff_t>(start[static_cast<std::size_t>(a) + 1]);
      const auto it = std::lower_bound(lo, hi, static_cast<std::int64_t>(pos));
      if (it != lo) last = std::max(last, *(it - 1));
    };
    find_last(pp.comp_start, pp.comp_items);
    find_last(pp.use_start, pp.use_items);
    if (last >= 0) {
      // Queries with from == last+1 can be issued by the segment *ending*
      // there, which runs in the round containing position `last` — so
      // the restart must cover that round. `last` is a candidate-frame
      // position; shifting it down by the move's insert count on p
      // under-approximates its committed image (erases only shift it up,
      // and inserts behind the event do not shift it at all — hence the
      // clamp to 0 rather than a jump to the block fallback, which would
      // unsoundly skip the rounds holding the event).
      const std::int64_t last_c = std::max<std::int64_t>(
          last - inserts_on_proc_[static_cast<std::size_t>(p)], 0);
      b = std::min(b, round_of_pos(p, last_c));
      return;
    }
    // No usable prior event: `a` cannot sit in p's cache before the edit
    // position (membership requires a comp or use event), so no earlier
    // round ever queries it. Positional effects of the edit are confined
    // to the superstep block containing it: segment planning reads items
    // (weights, labels) only within its own block — the length search
    // can reach the whole block, so every round of the block is suspect —
    // plus the boundary label of the next block, whose block-end test is
    // label-agnostic. Rounds before the block's first replay identically.
    (void)seq;
    b = std::min(b, safe_first(op_superstep));
  };

  for (std::size_t i = 0; i < delta_size_; ++i) {
    const PlanDeltaOp& op = delta_ops_[i];
    if (op.kind == PlanDeltaOpKind::kMergeStep) {
      const int s = op.pc.superstep;
      relabel_fixups_.push_back({s + 1, -1});
      // Tight analysis reads candidate labels against the op's apply-time
      // cuts; both frames coincide only when this is the move's sole
      // structural op and no node op follows it (gap closes are appended
      // last; generator merges are single-op moves).
      if (structural > 1 || i + 1 != delta_size_) {
        b = std::min(b, safe_first(s));
        continue;
      }
      bool any_s = false, any_s1 = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::size_t cut =
            std::min(op.cuts[static_cast<std::size_t>(p)], seq.size());
        const std::size_t lo = first_at(seq, s);
        any_s |= lo < cut;
        any_s1 |= cut < seq.size() && seq[cut].superstep == s;
      }
      if (!any_s || !any_s1) {
        // One side globally empty (every gap-closing merge lands here):
        // no block boundary moved on any processor, so the completion is
        // a pure relabel — the fixup pushed above patches the kept round
        // table at promote, and nothing needs re-running for this op.
        continue;
      }
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::size_t cut =
            std::min(op.cuts[static_cast<std::size_t>(p)], seq.size());
        const bool had_s1 = cut < seq.size() && seq[cut].superstep == s;
        if (!had_s1) continue;  // nothing joined s on this processor
        const std::size_t lo = first_at(seq, s);
        if (lo >= cut) {
          // s was empty on p: its first segment of the merged block is
          // brand new — dirty from the first round of s on.
          b = std::min(b, first_round_of(s));
          continue;
        }
        // p had work on both sides: every committed segment of s that
        // ended on a feasibility failure replays identically; only the
        // one that first *reached* the old boundary (ended on the block
        // limit) can now grow across it.
        const std::int64_t cut_c = std::max<std::int64_t>(
            static_cast<std::int64_t>(cut) -
                inserts_on_proc_[static_cast<std::size_t>(p)],
            0);
        b = std::min(b, std::max(first_round_of(s), crossing_round(p, cut_c) - 1));
      }
      continue;
    }
    if (op.kind == PlanDeltaOpKind::kSplitStep) {
      const int s = op.pc.superstep;
      relabel_fixups_.push_back({s + 1, +1});
      if (structural > 1 || i + 1 != delta_size_) {
        b = std::min(b, safe_first(s));
        continue;
      }
      bool any_moved = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::size_t cut =
            std::min(op.cuts[static_cast<std::size_t>(p)], seq.size());
        const bool moved = cut < seq.size() && seq[cut].superstep == s + 1;
        if (!moved) continue;  // p's block of s is untouched (or empty)
        any_moved = true;
        const std::size_t lo = first_at(seq, s);
        if (cut == lo) {
          // The whole block moved into the new step: label change only
          // for p, but other processors' s-blocks now end a superstep
          // earlier — conservative restart from s.
          b = std::min(b, first_round_of(s));
          continue;
        }
        const std::int64_t cut_c = std::max<std::int64_t>(
            static_cast<std::int64_t>(cut) -
                inserts_on_proc_[static_cast<std::size_t>(p)],
            0);
        b = std::min(b, std::max(first_round_of(s), crossing_round(p, cut_c) - 1));
      }
      (void)any_moved;  // none moved: pure relabel, fixup only
      continue;
    }
    const int s_op =
        op.kind == PlanDeltaOpKind::kSetNode
            ? plan_.seq[static_cast<std::size_t>(op.proc)][op.pos].superstep
            : op.pc.superstep;
    // op.pos is the apply-time position; clamp into the candidate
    // sequence (conservative: a smaller pos only lowers the bound).
    const std::size_t cand_size =
        plan_.seq[static_cast<std::size_t>(op.proc)].size();
    const std::size_t pos = std::min(op.pos, cand_size);
    node_bound(op.proc, pos, s_op, op.pc.node);
    for (NodeId u : dag_.parents(op.pc.node)) {
      node_bound(op.proc, pos, s_op, u);
    }
    if (op.kind == PlanDeltaOpKind::kSetNode) {
      node_bound(op.proc, pos, s_op, op.old_node);
      for (NodeId u : dag_.parents(op.old_node)) {
        node_bound(op.proc, pos, s_op, u);
      }
    }
  }
  // save_required is global: if a move flipped it for some node, every
  // round from that node's earliest occurrence's superstep on is dirty.
  for (const auto& [v, before] : save_req_before_) {
    if (save_req_[static_cast<std::size_t>(v)] == before) continue;
    int earliest = index_.earliest_done(v);
    for (const auto& [w, ed_old] : ed_before_) {
      if (w == v && ed_old >= 0) {
        earliest = earliest < 0 ? ed_old : std::min(earliest, ed_old);
      }
    }
    if (earliest >= 0) b = std::min(b, safe_first(earliest));
  }
  // INT_MAX (no-op move / pure relabel) is clamped by the caller to
  // committed_rounds_: a zero-round rerun that reuses every checkpoint.
  return b;
}

// ---------------------------------------------------------------------------
// Completion: eval-level state.

// Memoized per (proc, node). A cached (use, comp) lower-bound pair
// computed at nn_from_ stays exact for any later query from >= nn_from_:
// a cached position >= from is still the first one >= from (nothing can
// exist between the old query point and it), and kNever at an earlier
// point is kNever forever after. choose_victim re-scans every cache
// member per eviction at (near-)monotone positions, so almost all probes
// take the store-free inline hit path; only a side the query point has
// passed goes through the out-of-line refill.
inline std::int64_t IncrementalEvaluator::effective_next_need(
    int p, const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
    std::int64_t from) {
  const std::size_t at =
      static_cast<std::size_t>(p) * n_ + static_cast<std::size_t>(v);
  if (nn_stamp_[at] == nn_epoch_[static_cast<std::size_t>(p)] &&
      from >= nn_from_[at]) {
    const std::int64_t use = nn_use_[at];
    if (use == kNever) return kNever;
    if (use >= from) {
      const std::int64_t comp = nn_comp_[at];
      if (comp == kNever || comp >= from) {
        return comp < use ? kNever : use;  // kNever compares greatest
      }
    }
  }
  return next_need_refill(p, pp, v, from);
}

std::int64_t IncrementalEvaluator::next_need_refill(
    int p, const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
    std::int64_t from) {
  const std::size_t v_ = static_cast<std::size_t>(v);
  const std::size_t at = static_cast<std::size_t>(p) * n_ + v_;
  const bool live = nn_stamp_[at] == nn_epoch_[static_cast<std::size_t>(p)] &&
                    from >= nn_from_[at];
  std::int64_t use = live ? nn_use_[at] : 0;
  if (!live || (use != kNever && use < from)) {
    const auto ub =
        pp.use_items.begin() + static_cast<std::ptrdiff_t>(pp.use_start[v_]);
    const auto ue = pp.use_items.begin() +
                    static_cast<std::ptrdiff_t>(pp.use_start[v_ + 1]);
    const auto uit = std::lower_bound(ub, ue, from);
    use = uit == ue ? kNever : *uit;
  }
  std::int64_t comp = live ? nn_comp_[at] : 0;
  if (use == kNever) {
    comp = kNever;  // never consulted while use stays kNever
  } else if (!live || (comp != kNever && comp < from)) {
    const auto cb =
        pp.comp_items.begin() + static_cast<std::ptrdiff_t>(pp.comp_start[v_]);
    const auto ce = pp.comp_items.begin() +
                    static_cast<std::ptrdiff_t>(pp.comp_start[v_ + 1]);
    const auto cit = std::lower_bound(cb, ce, from);
    comp = cit == ce ? kNever : *cit;
  }
  nn_stamp_[at] = nn_epoch_[static_cast<std::size_t>(p)];
  nn_from_[at] = from;
  nn_use_[at] = use;
  nn_comp_[at] = comp;
  if (use == kNever) return kNever;
  if (comp != kNever && comp < use) return kNever;  // recomputed first
  return use;
}

std::int64_t IncrementalEvaluator::committed_last_active(
    const PlanOccurrenceIndex::ProcPositions& pp, NodeId v,
    std::int64_t before) const {
  // The completion's committed last_active of a cached value is always
  // the position of its last compute-or-use event strictly before the
  // query point (loads are recorded at the segment start but every load
  // feeds an in-segment use that overwrites the entry), so two binary
  // searches over the occurrence index recover it exactly; -1 = never.
  const std::size_t v_ = static_cast<std::size_t>(v);
  std::int64_t last = -1;
  {
    const auto lo =
        pp.comp_items.begin() + static_cast<std::ptrdiff_t>(pp.comp_start[v_]);
    const auto hi = pp.comp_items.begin() +
                    static_cast<std::ptrdiff_t>(pp.comp_start[v_ + 1]);
    const auto it = std::lower_bound(lo, hi, before);
    if (it != lo) last = std::max(last, *(it - 1));
  }
  {
    const auto lo =
        pp.use_items.begin() + static_cast<std::ptrdiff_t>(pp.use_start[v_]);
    const auto hi =
        pp.use_items.begin() + static_cast<std::ptrdiff_t>(pp.use_start[v_ + 1]);
    const auto it = std::lower_bound(lo, hi, before);
    if (it != lo) last = std::max(last, *(it - 1));
  }
  return last;
}

// ---------------------------------------------------------------------------
// Completion: boundary restore / checkpoint / main loop.

void IncrementalEvaluator::restore_boundary(int b) {
  // All per-eval append-only scratch lives in the arena; one reset makes
  // the previous evaluation's blocks reusable at once.
  eval_arena_.reset();
  scr_pos_.attach(&eval_arena_);
  scr_weight_.attach(&eval_arena_);
  scr_comp_.attach(&eval_arena_);
  scr_save_.attach(&eval_arena_);
  scr_load_.attach(&eval_arena_);
  scr_any_.attach(&eval_arena_);
  scr_cache_start_.attach(&eval_arena_);
  scr_cache_nodes_.attach(&eval_arena_);
  scr_round_steps_.attach(&eval_arena_);
  eval_blued_.attach(&eval_arena_);
  eval_homes_.attach(&eval_arena_);
  scr_as_comp_nodes_.attach(&eval_arena_);
  scr_as_save_nodes_.attach(&eval_arena_);
  scr_as_load_nodes_.attach(&eval_arena_);
  scr_as_comp_start_.attach(&eval_arena_);
  scr_as_save_start_.attach(&eval_arena_);
  scr_as_load_start_.attach(&eval_arena_);
  scr_as_save_prefix_.attach(&eval_arena_);

  eval_b_ = b;
  eval_cur_ = b;
  first_eval_slot_ = b;
  num_slots_ = b + 1;
  scr_cache_start_.push_back(0);

  const std::size_t row =
      static_cast<std::size_t>(b) * static_cast<std::size_t>(P_);
  if (sync_) {
    slot_comp_.assign(ck_comp_.begin() + static_cast<std::ptrdiff_t>(row),
                      ck_comp_.begin() + static_cast<std::ptrdiff_t>(row) + P_);
    slot_save_.assign(ck_save_.begin() + static_cast<std::ptrdiff_t>(row),
                      ck_save_.begin() + static_cast<std::ptrdiff_t>(row) + P_);
    slot_load_.assign(ck_load_.begin() + static_cast<std::ptrdiff_t>(row),
                      ck_load_.begin() + static_cast<std::ptrdiff_t>(row) + P_);
    slot_any_.assign(ck_any_.begin() + static_cast<std::ptrdiff_t>(row),
                     ck_any_.begin() + static_cast<std::ptrdiff_t>(row) + P_);
  }
  for (int p = 0; p < P_; ++p) {
    const std::size_t at = row + static_cast<std::size_t>(p);
    auto& list = ec_list_[static_cast<std::size_t>(p)];
    ec_clear(p);
    const std::int64_t c0 = ck_cache_start_[at];
    const std::int64_t c1 = ck_cache_start_[at + 1];
    list.assign(ck_cache_nodes_.begin() + static_cast<std::ptrdiff_t>(c0),
                ck_cache_nodes_.begin() + static_cast<std::ptrdiff_t>(c1));
    for (NodeId v : list) ec_insert(p, v);
    ec_weight_[static_cast<std::size_t>(p)] = ck_weight_[at];
    pos_[static_cast<std::size_t>(p)] = ck_pos_[at];
  }
  eb_clear();
  eh_map_.clear();
  pending_blue_.clear();
  if (async_) {
    scr_as_comp_start_.push_back(0);
    scr_as_save_start_.push_back(0);
    scr_as_load_start_.push_back(0);
    for (int p = 0; p < P_; ++p) {
      const std::size_t at = row + static_cast<std::size_t>(p);
      SlotOps& cur = async_cur_[static_cast<std::size_t>(p)];
      SlotOps& nxt = async_next_[static_cast<std::size_t>(p)];
      nxt.reset();
      // Straddling slot b at the boundary: the body ops of round b-1 are
      // final; of its saves only the post-save prefix exists (stage
      // pre-saves of round b are re-derived); loads are stage-only.
      cur.comp.assign(
          as_comp_nodes_.begin() + static_cast<std::ptrdiff_t>(as_comp_start_[at]),
          as_comp_nodes_.begin() +
              static_cast<std::ptrdiff_t>(as_comp_start_[at + 1]));
      const std::int64_t s0 = as_save_start_[at];
      cur.save.assign(
          as_save_nodes_.begin() + static_cast<std::ptrdiff_t>(s0),
          as_save_nodes_.begin() +
              static_cast<std::ptrdiff_t>(s0 + as_save_prefix_[at]));
      cur.load.clear();
    }
  }
}

void IncrementalEvaluator::record_checkpoint() {
  // Boundary eval_cur_: state before round eval_cur_, including the
  // straddling slot's partial accumulators / op lists.
  for (int p = 0; p < P_; ++p) {
    scr_pos_.push_back(pos_[static_cast<std::size_t>(p)]);
  }
  for (int p = 0; p < P_; ++p) {
    scr_weight_.push_back(ec_weight_[static_cast<std::size_t>(p)]);
  }
  if (sync_) {
    const std::size_t base =
        static_cast<std::size_t>(eval_cur_ - first_eval_slot_) *
        static_cast<std::size_t>(P_);
    for (int p = 0; p < P_; ++p) {
      scr_comp_.push_back(slot_comp_[base + static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < P_; ++p) {
      scr_save_.push_back(slot_save_[base + static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < P_; ++p) {
      scr_load_.push_back(slot_load_[base + static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < P_; ++p) {
      scr_any_.push_back(slot_any_[base + static_cast<std::size_t>(p)]);
    }
  }
  for (int p = 0; p < P_; ++p) {
    const auto& list = ec_list_[static_cast<std::size_t>(p)];
    scr_cache_nodes_.append(list.data(), list.size());
    scr_cache_start_.push_back(
        static_cast<std::int64_t>(scr_cache_nodes_.size()));
  }
  if (async_) {
    for (int p = 0; p < P_; ++p) {
      scr_as_save_prefix_.push_back(static_cast<std::int32_t>(
          async_cur_[static_cast<std::size_t>(p)].save.size()));
    }
  }
}

double IncrementalEvaluator::evaluate_from(int b) {
  cand_steps_ = index_.num_supersteps();
  restore_boundary(b);

  // Flushes the completed straddling slot's op lists into the scratch
  // CSR pool (same layout as the committed pool, rebased at slot b).
  const auto flush_async_slot = [&] {
    for (int p = 0; p < P_; ++p) {
      SlotOps& cur = async_cur_[static_cast<std::size_t>(p)];
      scr_as_comp_nodes_.append(cur.comp.data(), cur.comp.size());
      scr_as_comp_start_.push_back(
          static_cast<std::int64_t>(scr_as_comp_nodes_.size()));
      scr_as_save_nodes_.append(cur.save.data(), cur.save.size());
      scr_as_save_start_.push_back(
          static_cast<std::int64_t>(scr_as_save_nodes_.size()));
      scr_as_load_nodes_.append(cur.load.data(), cur.load.size());
      scr_as_load_start_.push_back(
          static_cast<std::int64_t>(scr_as_load_nodes_.size()));
    }
  };

  // Rounds < b consumed a prefix of every sequence; the first remaining
  // superstep is the minimum label at the restored positions (equal to
  // the superstep a full run would be processing at this boundary).
  int k_start = cand_steps_;
  for (int p = 0; p < P_; ++p) {
    const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
    const std::int64_t pos = pos_[static_cast<std::size_t>(p)];
    if (pos < static_cast<std::int64_t>(seq.size())) {
      k_start = std::min(k_start, seq[static_cast<std::size_t>(pos)].superstep);
    }
  }

  for (int k = k_start; k < cand_steps_; ++k) {
    for (;;) {
      bool any_remaining = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::int64_t pos = pos_[static_cast<std::size_t>(p)];
        if (pos < static_cast<std::int64_t>(seq.size()) &&
            seq[static_cast<std::size_t>(pos)].superstep == k) {
          any_remaining = true;
          break;
        }
      }
      if (!any_remaining) break;
      if (eval_cur_ > eval_b_) record_checkpoint();
      scr_round_steps_.push_back(k);
      // Append the body slot of this round (slot count stays cur + 2).
      if (sync_) {
        slot_comp_.insert(slot_comp_.end(), static_cast<std::size_t>(P_), 0.0);
        slot_save_.insert(slot_save_.end(), static_cast<std::size_t>(P_), 0.0);
        slot_load_.insert(slot_load_.end(), static_cast<std::size_t>(P_), 0.0);
        slot_any_.insert(slot_any_.end(), static_cast<std::size_t>(P_),
                         static_cast<char>(0));
      }
      ++num_slots_;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
        const std::int64_t pos = pos_[static_cast<std::size_t>(p)];
        if (pos >= static_cast<std::int64_t>(seq.size()) ||
            seq[static_cast<std::size_t>(pos)].superstep != k) {
          continue;
        }
        const bool planned = plan_segment(p, k);
        assert(planned && "first compute of a segment must be schedulable");
        (void)planned;
        commit_segment(p);
      }
      // post_saves become loadable from the next round on. Their transfer
      // price is also settled here, not at commit time: a later processor
      // of the *same* round can pre-save the value into the earlier slot
      // and claim its home group first (matching the oracle's slot-scan
      // home rule); by drain time every earlier save has been processed,
      // so the home consulted below is final.
      for (const auto& [v, p] : pending_blue_) {
        eval_assign_home(v, grp_[static_cast<std::size_t>(p)]);
        if (sync_) {
          const std::size_t at =
              static_cast<std::size_t>(eval_cur_ + 1 - first_eval_slot_) *
                  static_cast<std::size_t>(P_) +
              static_cast<std::size_t>(p);
          slot_save_[at] += comm_cost(p, eval_home(v)) * dag_.mu(v);
        }
        eval_blue_set(v);
      }
      pending_blue_.clear();
      if (async_) {
        flush_async_slot();
        std::swap(async_cur_, async_next_);
        for (int p = 0; p < P_; ++p) {
          async_next_[static_cast<std::size_t>(p)].reset();
        }
      }
      ++eval_cur_;
    }
  }
  // Zero-length suffix (an erase shrank the plan so that no round runs):
  // the boundary checkpoint already is the end state — recording it again
  // would mislabel it as boundary b+1.
  if (eval_cur_ > eval_b_) record_checkpoint();
  if (async_) flush_async_slot();  // final straddling slot (complete)
  cand_rounds_ = eval_cur_;
  last_dirty_ = cand_rounds_ - b;
  return sync_ ? finalize_cost() : finalize_async_cost();
}

// ---------------------------------------------------------------------------
// Completion: segment planning (the try_segment / plan_largest_segment
// replica, with the prefix scan shared across growing counts).

bool IncrementalEvaluator::plan_segment(int p, int superstep) {
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  const std::int64_t i0 = pos_[static_cast<std::size_t>(p)];
  std::int64_t limit = 0;
  while (i0 + limit < static_cast<std::int64_t>(seq.size()) &&
         seq[static_cast<std::size_t>(i0 + limit)].superstep == superstep) {
    ++limit;
  }
  assert(limit > 0);

  clear_seg_overlay();
  s_loads_.clear();
  s_load_weight_ = 0;
  bool best_found = false;
  for (std::int64_t count = 1; count <= limit; ++count) {
    // Extend the segment prefix state by entry count-1: upfront loads in
    // first-encounter order, consumed start-cache values, produced set.
    const NodeId v = seq[static_cast<std::size_t>(i0 + count - 1)].node;
    bool loadable = true;
    for (NodeId u : dag_.parents(v)) {
      SegOv& ov = seg_ov(u);
      if (ov.produced || ov.load) continue;
      if (eval_cache_member(p, u)) {
        ov.needed = 1;
        continue;
      }
      if (!eval_blue(u)) {
        loadable = false;
        break;
      }
      ov.load = 1;
      s_loads_.push_back(u);
      s_load_weight_ += dag_.mu(u);
    }
    if (!loadable) break;
    seg_ov(v).produced = 1;
    if (!run_phases(p, i0, count)) break;
    std::swap(best_seg_, cur_seg_);
    best_found = true;
  }
  return best_found;
}

bool IncrementalEvaluator::run_phases(int p, std::int64_t i0,
                                      std::int64_t count) {
  const auto& seq = plan_.seq[static_cast<std::size_t>(p)];
  const auto& pp = index_.proc_positions(p);
  clear_try_overlay();
  t_added_.clear();
  t_weight_ = ec_weight_[static_cast<std::size_t>(p)];
  Segment& seg = cur_seg_;
  seg.loads.assign(s_loads_.begin(), s_loads_.end());
  seg.pre_saves.clear();
  seg.pre_deletes.clear();
  seg.post_saves.clear();
  seg.post_deletes.clear();
  seg.ops.clear();
  seg.count = count;

  auto save_required = [&](NodeId v) {
    return save_req_[static_cast<std::size_t>(v)] != 0;
  };
  auto needed = [&](NodeId v) {
    const SegOv* ov = seg_find(v);
    return ov != nullptr && ov->needed;
  };
  auto in_load_set = [&](NodeId v) {
    const SegOv* ov = seg_find(v);
    return ov != nullptr && ov->load;
  };
  auto mark_blue = [&](NodeId v) { try_ov(v).blue = 1; };

  // Both eviction policies are strict total orders over the candidates,
  // so iterating the committed list then the additions is free. The LRU
  // key is the committed last-active position *at the segment start*
  // (frozen during a try, exactly like the completer's committed array).
  auto choose_victim = [&](auto&& allowed, std::int64_t from) -> NodeId {
    NodeId best = kInvalidNode;
    std::int64_t best_next = -1;
    std::int64_t best_la = -1;
    bool best_dead = false;
    auto consider = [&](NodeId v) {
      if (!allowed(v)) return;
      const std::int64_t need = effective_next_need(p, pp, v, from);
      const std::int64_t next_use = need == kNever ? kNoNextUse : need;
      if (!lru_) {
        if (best == kInvalidNode || next_use > best_next ||
            (next_use == best_next && v < best)) {
          best = v;
          best_next = next_use;
        }
        return;
      }
      const bool dead = next_use == kNoNextUse;
      const std::int64_t la = committed_last_active(pp, v, i0);
      if (best == kInvalidNode) {
        best = v;
        best_dead = dead;
        best_la = la;
        return;
      }
      if (dead != best_dead) {
        if (dead) {
          best = v;
          best_dead = dead;
          best_la = la;
        }
        return;
      }
      if (la < best_la || (la == best_la && v < best)) {
        best = v;
        best_la = la;
      }
    };
    for (NodeId v : ec_list_[static_cast<std::size_t>(p)]) {
      const TryOv* ov = try_find(v);
      if (ov != nullptr && ov->member == 0) continue;  // evicted in this try
      consider(v);
    }
    for (NodeId v : t_added_) {
      const TryOv* ov = try_find(v);
      if (ov == nullptr || ov->member != 1) continue;
      consider(v);
    }
    return best;
  };

  // Phase A: upfront evictions so start cache + loads fit.
  const double r_p = mem_[static_cast<std::size_t>(p)];
  while (t_weight_ + s_load_weight_ > r_p + kMemEps) {
    const NodeId victim =
        choose_victim([&](NodeId v) { return !needed(v); }, i0);
    if (victim == kInvalidNode) return false;
    const bool live = effective_next_need(p, pp, victim, i0) != kNever;
    if (!try_blue(victim) && (live || save_required(victim))) {
      seg.pre_saves.push_back(victim);
      mark_blue(victim);
    }
    seg.pre_deletes.push_back(victim);
    try_set_member(p, victim, false);
    t_weight_ -= dag_.mu(victim);
  }

  // Apply the upfront loads.
  for (NodeId u : seg.loads) {
    if (!try_member(p, u)) {
      try_set_member(p, u, true);
      t_weight_ += dag_.mu(u);
    }
  }

  // Hoistable start-cache values: untouched by the segment (see
  // memory_completion.cpp for why hoisting their eviction is sound).
  // Snapshot once post-load; nodes added later (computes) stay
  // non-hoistable, matching the oracle's one-time scan.
  for (NodeId v : ec_list_[static_cast<std::size_t>(p)]) {
    if (!try_member(p, v)) continue;
    if (needed(v) || in_load_set(v)) continue;
    try_ov(v).hoist = 1;
  }
  auto hoistable = [&](NodeId v) {
    const TryOv* ov = try_find(v);
    return ov != nullptr && ov->hoist != 0;
  };
  auto remneed = [&](NodeId v) -> std::int32_t {
    const TryOv* ov = try_find(v);
    return ov != nullptr ? ov->remneed : 0;
  };
  auto bump_remneed = [&](NodeId v, std::int32_t delta) {
    try_ov(v).remneed += delta;
  };
  for (std::int64_t j = 0; j < count; ++j) {
    for (NodeId u : dag_.parents(seq[static_cast<std::size_t>(i0 + j)].node)) {
      bump_remneed(u, +1);
    }
  }

  // Phase B: replay the computes with mid-segment evictions.
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[static_cast<std::size_t>(i0 + j)].node;
    const std::int64_t gpos = i0 + j;
    if (!try_member(p, v)) {
      while (t_weight_ + dag_.mu(v) > r_p + kMemEps) {
        const NodeId victim = choose_victim(
            [&](NodeId c) {
              if (remneed(c) > 0) return false;  // still a parent here
              if (try_blue(c)) return true;
              if (hoistable(c)) return true;
              return effective_next_need(p, pp, c, gpos) == kNever &&
                     !save_required(c);
            },
            gpos + 1);
        if (victim == kInvalidNode) return false;
        const bool dirty_live =
            !try_blue(victim) &&
            (effective_next_need(p, pp, victim, gpos) != kNever ||
             save_required(victim));
        if (dirty_live) {
          // Hoist: evict before the segment, saving first.
          seg.pre_saves.push_back(victim);
          mark_blue(victim);
          seg.pre_deletes.push_back(victim);
        } else {
          seg.ops.push_back({0, victim});
        }
        try_set_member(p, victim, false);
        t_weight_ -= dag_.mu(victim);
      }
      seg.ops.push_back({1, v});
      try_set_member(p, v, true);
      t_weight_ += dag_.mu(v);
    }
    // else: value already red; the occurrence is redundant, skip the op.
    for (NodeId u : dag_.parents(v)) bump_remneed(u, -1);
    // Eager cleanup: drop parents that just died (free DELETE ops).
    for (NodeId u : dag_.parents(v)) {
      if (!try_member(p, u) || remneed(u) > 0) continue;
      if (effective_next_need(p, pp, u, gpos + 1) != kNever) continue;
      if (!try_blue(u) && save_required(u)) continue;
      seg.ops.push_back({0, u});
      try_set_member(p, u, false);
      t_weight_ -= dag_.mu(u);
    }
  }

  // Post phase: save outputs that need a blue pebble, then drop dead
  // values in ascending node order (matches the oracle's full scan).
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[static_cast<std::size_t>(i0 + j)].node;
    if (try_member(p, v) && !try_blue(v) && save_required(v)) {
      seg.post_saves.push_back(v);
      mark_blue(v);
    }
  }
  sorted_members_.clear();
  for (NodeId v : ec_list_[static_cast<std::size_t>(p)]) {
    if (try_member(p, v)) sorted_members_.push_back(v);
  }
  for (NodeId v : t_added_) {
    const TryOv* ov = try_find(v);
    if (ov != nullptr && ov->member == 1) sorted_members_.push_back(v);
  }
  std::sort(sorted_members_.begin(), sorted_members_.end());
  const std::int64_t after = i0 + count;
  for (NodeId v : sorted_members_) {
    if (effective_next_need(p, pp, v, after) != kNever) continue;
    if (!try_blue(v) && save_required(v)) continue;
    seg.post_deletes.push_back(v);
    try_set_member(p, v, false);
    t_weight_ -= dag_.mu(v);
  }

  // Final cache in committed-list-then-additions order — the same
  // sequence the old per-try list produced, so committed ec_list_ rows
  // (and with them every checkpoint cache row) are order-stable.
  seg.final_cache.clear();
  for (NodeId v : ec_list_[static_cast<std::size_t>(p)]) {
    if (try_member(p, v)) seg.final_cache.push_back(v);
  }
  for (NodeId v : t_added_) {
    const TryOv* ov = try_find(v);
    if (ov != nullptr && ov->member == 1) seg.final_cache.push_back(v);
  }
  seg.final_weight = t_weight_;
  return true;
}

void IncrementalEvaluator::commit_segment(int p) {
  const Segment& seg = best_seg_;
  if (sync_) {
    const std::size_t stage =
        static_cast<std::size_t>(eval_cur_ - first_eval_slot_) *
            static_cast<std::size_t>(P_) +
        static_cast<std::size_t>(p);
    const std::size_t body = stage + static_cast<std::size_t>(P_);
    for (NodeId v : seg.pre_saves) {
      // A pre-save is the slot-order-first save of a not-yet-blue value
      // on this processor's slot, so it may claim the home group.
      eval_assign_home(v, grp_[static_cast<std::size_t>(p)]);
      slot_save_[stage] += comm_cost(p, eval_home(v)) * dag_.mu(v);
    }
    for (NodeId v : seg.loads) {
      // Loads require blue, so the home (if any) is already final.
      slot_load_[stage] += comm_cost(p, eval_home(v)) * dag_.mu(v);
    }
    if (!seg.pre_saves.empty() || !seg.pre_deletes.empty() ||
        !seg.loads.empty()) {
      slot_any_[stage] = 1;
    }
    for (const auto& [is_compute, v] : seg.ops) {
      if (is_compute) slot_comp_[body] += dag_.omega(v);
    }
    // post_saves are priced at the round drain (see evaluate_from), where
    // their home groups are final.
    if (!seg.ops.empty() || !seg.post_saves.empty() ||
        !seg.post_deletes.empty()) {
      slot_any_[body] = 1;
    }
  } else {
    // Async cost: record the op lists; pricing happens at finalize. Home
    // groups are still claimed in oracle order (pre-saves at commit,
    // post-saves at the round drain).
    for (NodeId v : seg.pre_saves) eval_assign_home(v, grp_[static_cast<std::size_t>(p)]);
    SlotOps& cur = async_cur_[static_cast<std::size_t>(p)];
    SlotOps& nxt = async_next_[static_cast<std::size_t>(p)];
    // Slot layout mirrors the oracle's chronological save list: the
    // straddling slot's saves are [post-saves of round r-1, pre-saves of
    // round r]; loads are stage-only; computes are body-only.
    for (NodeId v : seg.pre_saves) cur.save.push_back(v);
    for (NodeId v : seg.loads) cur.load.push_back(v);
    for (const auto& [is_compute, v] : seg.ops) {
      if (is_compute) nxt.comp.push_back(v);
    }
    for (NodeId v : seg.post_saves) nxt.save.push_back(v);
  }

  // Fold the segment's end state into the eval-level processor state.
  auto& list = ec_list_[static_cast<std::size_t>(p)];
  ec_clear(p);
  list = seg.final_cache;
  for (NodeId v : list) ec_insert(p, v);
  ec_weight_[static_cast<std::size_t>(p)] = seg.final_weight;
  pos_[static_cast<std::size_t>(p)] += seg.count;
  for (NodeId v : seg.pre_saves) eval_blue_set(v);
  for (NodeId v : seg.post_saves) pending_blue_.push_back({v, p});
}

// ---------------------------------------------------------------------------
// Cost finalization.

double IncrementalEvaluator::finalize_cost() {
  scratch_rows_.clear();
  scratch_row_empty_.clear();
  const int local_slots = num_slots_ - first_eval_slot_;
  for (int ls = 0; ls < local_slots; ++ls) {
    const std::size_t base =
        static_cast<std::size_t>(ls) * static_cast<std::size_t>(P_);
    // Structure-of-arrays row fold: one contiguous sweep per field (max
    // over non-NaN doubles is order-free, so splitting the fold keeps the
    // result bitwise; speeds divide in the same per-entry order as the
    // full evaluator — uniform machines divide by 1.0, a bitwise
    // identity).
    const double* comp = slot_comp_.data() + base;
    const double* save = slot_save_.data() + base;
    const double* load = slot_load_.data() + base;
    const char* any = slot_any_.data() + base;
    SyncStepCost row;
    for (int p = 0; p < P_; ++p) {
      row.max_compute = std::max(
          row.max_compute, comp[p] / speed_[static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < P_; ++p) {
      row.max_save = std::max(row.max_save, save[p]);
    }
    for (int p = 0; p < P_; ++p) {
      row.max_load = std::max(row.max_load, load[p]);
    }
    char a = 0;
    for (int p = 0; p < P_; ++p) a |= any[p];
    scratch_rows_.push_back(row);
    scratch_row_empty_.push_back(a ? 0 : 1);
  }
  // Resume the accumulation from the cached prefix state (same doubles,
  // same add order as a full front-to-back sweep — bitwise equal).
  SyncCostBreakdown bd =
      first_eval_slot_ > 0
          ? row_prefix_[static_cast<std::size_t>(first_eval_slot_ - 1)]
          : SyncCostBreakdown{};
  for (std::size_t i = 0; i < scratch_rows_.size(); ++i) {
    if (scratch_row_empty_[i]) continue;
    const SyncStepCost& row = scratch_rows_[i];
    bd.compute += row.max_compute;
    bd.io += row.max_save + row.max_load;
    bd.sync += L_;
  }
  return bd.total();
}

double IncrementalEvaluator::finalize_async_cost() {
  // Exact replay of async_cost's slot sweep (cost.cpp): per slot, compute
  // phase then save phase then load phase, processors ascending, ops in
  // list order. Committed slots read the committed CSR pool; slots >=
  // first_eval_slot_ read the scratch pool. Empty drained slots fold
  // harmlessly (the oracle drops them, but an empty slot changes neither
  // finishing times nor first-save slots' relative order).
  ++async_epoch_;
  std::fill(now_.begin(), now_.end(), 0.0);
  for (int slot = 0; slot < num_slots_; ++slot) {
    const bool committed = slot < first_eval_slot_;
    const std::size_t crow = static_cast<std::size_t>(slot) *
                             static_cast<std::size_t>(P_);
    const std::size_t srow =
        committed ? 0
                  : static_cast<std::size_t>(slot - first_eval_slot_) *
                        static_cast<std::size_t>(P_);
    for (int p = 0; p < P_; ++p) {
      const std::size_t at =
          (committed ? crow : srow) + static_cast<std::size_t>(p);
      const std::int64_t a0 =
          committed ? as_comp_start_[at] : scr_as_comp_start_[at];
      const std::int64_t a1 =
          committed ? as_comp_start_[at + 1] : scr_as_comp_start_[at + 1];
      const NodeId* pool =
          committed ? as_comp_nodes_.data() : scr_as_comp_nodes_.data();
      double t = now_[static_cast<std::size_t>(p)];
      if (uniform_) {
        for (std::int64_t i = a0; i < a1; ++i) t += dag_.omega(pool[i]);
      } else {
        for (std::int64_t i = a0; i < a1; ++i) {
          t += dag_.omega(pool[i]) / speed_[static_cast<std::size_t>(p)];
        }
      }
      now_[static_cast<std::size_t>(p)] = t;
    }
    for (int p = 0; p < P_; ++p) {
      const std::size_t at =
          (committed ? crow : srow) + static_cast<std::size_t>(p);
      const std::int64_t a0 =
          committed ? as_save_start_[at] : scr_as_save_start_[at];
      const std::int64_t a1 =
          committed ? as_save_start_[at + 1] : scr_as_save_start_[at + 1];
      const NodeId* pool =
          committed ? as_save_nodes_.data() : scr_as_save_nodes_.data();
      for (std::int64_t i = a0; i < a1; ++i) {
        const NodeId v = pool[i];
        const std::size_t v_ = static_cast<std::size_t>(v);
        const double gv = uniform_ ? g_ : comm_cost(p, eval_home(v));
        now_[static_cast<std::size_t>(p)] += gv * dag_.mu(v);
        if (fs_stamp_[v_] != async_epoch_) {
          fs_stamp_[v_] = async_epoch_;
          first_save_[v_] = slot;
          gets_blue_[v_] = now_[static_cast<std::size_t>(p)];
        } else if (first_save_[v_] == slot) {
          gets_blue_[v_] =
              std::min(gets_blue_[v_], now_[static_cast<std::size_t>(p)]);
        }
      }
    }
    for (int p = 0; p < P_; ++p) {
      const std::size_t at =
          (committed ? crow : srow) + static_cast<std::size_t>(p);
      const std::int64_t a0 =
          committed ? as_load_start_[at] : scr_as_load_start_[at];
      const std::int64_t a1 =
          committed ? as_load_start_[at + 1] : scr_as_load_start_[at + 1];
      const NodeId* pool =
          committed ? as_load_nodes_.data() : scr_as_load_nodes_.data();
      for (std::int64_t i = a0; i < a1; ++i) {
        const NodeId v = pool[i];
        const std::size_t v_ = static_cast<std::size_t>(v);
        assert(fs_stamp_[v_] == async_epoch_ || dag_.is_source(v));
        const double gb = fs_stamp_[v_] == async_epoch_ ? gets_blue_[v_] : 0.0;
        const double gv = uniform_ ? g_ : comm_cost(p, eval_home(v));
        now_[static_cast<std::size_t>(p)] =
            std::max(now_[static_cast<std::size_t>(p)], gb) + gv * dag_.mu(v);
      }
    }
  }
  double makespan = 0;
  for (int p = 0; p < P_; ++p) {
    makespan = std::max(makespan, now_[static_cast<std::size_t>(p)]);
  }
  return makespan;
}

// ---------------------------------------------------------------------------
// Promotion: install the scratch evaluation as the committed state.

void IncrementalEvaluator::promote_eval() {
  const int b = eval_b_;
  const int old_rounds = committed_rounds_;
  const std::size_t P = static_cast<std::size_t>(P_);
  const std::size_t keep = static_cast<std::size_t>(b + 1) * P;

  if (sync_) {
    rows_.resize(static_cast<std::size_t>(num_slots_));
    row_empty_.resize(static_cast<std::size_t>(num_slots_));
    row_prefix_.resize(static_cast<std::size_t>(num_slots_));
    SyncCostBreakdown bd =
        first_eval_slot_ > 0
            ? row_prefix_[static_cast<std::size_t>(first_eval_slot_ - 1)]
            : SyncCostBreakdown{};
    for (std::size_t i = 0; i < scratch_rows_.size(); ++i) {
      const std::size_t at = static_cast<std::size_t>(first_eval_slot_) + i;
      rows_[at] = scratch_rows_[i];
      row_empty_[at] = scratch_row_empty_[i];
      if (!scratch_row_empty_[i]) {
        bd.compute += scratch_rows_[i].max_compute;
        bd.io += scratch_rows_[i].max_save + scratch_rows_[i].max_load;
        bd.sync += L_;
      }
      row_prefix_[at] = bd;
    }
  }

  // Checkpoint SoA rows: truncate to the kept boundaries 0..b, append the
  // re-derived boundaries b+1..cand_rounds_.
  ck_pos_.resize(keep);
  ck_pos_.insert(ck_pos_.end(), scr_pos_.begin(), scr_pos_.end());
  ck_weight_.resize(keep);
  ck_weight_.insert(ck_weight_.end(), scr_weight_.begin(), scr_weight_.end());
  if (sync_) {
    ck_comp_.resize(keep);
    ck_comp_.insert(ck_comp_.end(), scr_comp_.begin(), scr_comp_.end());
    ck_save_.resize(keep);
    ck_save_.insert(ck_save_.end(), scr_save_.begin(), scr_save_.end());
    ck_load_.resize(keep);
    ck_load_.insert(ck_load_.end(), scr_load_.begin(), scr_load_.end());
    ck_any_.resize(keep);
    ck_any_.insert(ck_any_.end(), scr_any_.begin(), scr_any_.end());
  }
  {
    const std::int64_t cut = ck_cache_start_[keep];
    ck_cache_nodes_.resize(static_cast<std::size_t>(cut));
    ck_cache_start_.resize(keep + 1);
    ck_cache_nodes_.insert(ck_cache_nodes_.end(), scr_cache_nodes_.begin(),
                           scr_cache_nodes_.end());
    for (std::size_t i = 1; i < scr_cache_start_.size(); ++i) {
      ck_cache_start_.push_back(cut + scr_cache_start_[i]);
    }
  }

  // Round -> superstep labels: patch the kept rounds for pure-relabel
  // merges/splits, then install the re-derived suffix labels.
  for (const auto& [thr, delta] : relabel_fixups_) {
    for (int r = 0; r < b; ++r) {
      if (ck_step_[static_cast<std::size_t>(r)] >= thr) {
        ck_step_[static_cast<std::size_t>(r)] += delta;
      }
    }
  }
  ck_step_.resize(static_cast<std::size_t>(cand_rounds_));
  for (std::size_t i = 0; i < scr_round_steps_.size(); ++i) {
    ck_step_[static_cast<std::size_t>(b) + i] = scr_round_steps_[i];
  }
  committed_rounds_ = cand_rounds_;
  committed_steps_ = cand_steps_;
  step_first_round_.assign(static_cast<std::size_t>(committed_steps_) + 1,
                           committed_rounds_);
  for (int r = committed_rounds_ - 1; r >= 0; --r) {
    assert(ck_step_[static_cast<std::size_t>(r)] >= 0 &&
           ck_step_[static_cast<std::size_t>(r)] < committed_steps_);
    step_first_round_[static_cast<std::size_t>(
        ck_step_[static_cast<std::size_t>(r)])] = r;
  }
  // Monotone sweep: first_round_of(s) = first round with label >= s, so
  // label-keyed bounds stay valid even when a superstep owns no round.
  for (int k = committed_steps_ - 1; k >= 0; --k) {
    step_first_round_[static_cast<std::size_t>(k)] =
        std::min(step_first_round_[static_cast<std::size_t>(k)],
                 step_first_round_[static_cast<std::size_t>(k) + 1]);
  }

  if (async_) {
    // Committed async op pools: keep slots 0..b-1 outright (boundary b's
    // straddling slot is re-derived in scratch), rebase-append the rest.
    const std::size_t keep_off = static_cast<std::size_t>(b) * P;
    const std::int64_t cb = as_comp_start_[keep_off];
    as_comp_nodes_.resize(static_cast<std::size_t>(cb));
    as_comp_start_.resize(keep_off + 1);
    as_comp_nodes_.insert(as_comp_nodes_.end(), scr_as_comp_nodes_.begin(),
                          scr_as_comp_nodes_.end());
    for (std::size_t i = 1; i < scr_as_comp_start_.size(); ++i) {
      as_comp_start_.push_back(cb + scr_as_comp_start_[i]);
    }
    const std::int64_t sb = as_save_start_[keep_off];
    as_save_nodes_.resize(static_cast<std::size_t>(sb));
    as_save_start_.resize(keep_off + 1);
    as_save_nodes_.insert(as_save_nodes_.end(), scr_as_save_nodes_.begin(),
                          scr_as_save_nodes_.end());
    for (std::size_t i = 1; i < scr_as_save_start_.size(); ++i) {
      as_save_start_.push_back(sb + scr_as_save_start_[i]);
    }
    const std::int64_t lb = as_load_start_[keep_off];
    as_load_nodes_.resize(static_cast<std::size_t>(lb));
    as_load_start_.resize(keep_off + 1);
    as_load_nodes_.insert(as_load_nodes_.end(), scr_as_load_nodes_.begin(),
                          scr_as_load_nodes_.end());
    for (std::size_t i = 1; i < scr_as_load_start_.size(); ++i) {
      as_load_start_.push_back(lb + scr_as_load_start_[i]);
    }
    as_save_prefix_.resize(keep);
    for (std::size_t i = 0; i < scr_as_save_prefix_.size(); ++i) {
      as_save_prefix_.push_back(scr_as_save_prefix_[i]);
    }
  }

  // Blue rounds: drop the old suffix slices, install the new ones.
  for (int r = b; r < old_rounds; ++r) {
    for (std::int64_t i = blued_start_[static_cast<std::size_t>(r)];
         i < blued_start_[static_cast<std::size_t>(r) + 1]; ++i) {
      const NodeId v = blued_nodes_[static_cast<std::size_t>(i)];
      if (blue_round_[static_cast<std::size_t>(v)] == r) {
        blue_round_[static_cast<std::size_t>(v)] = INT_MAX;
      }
    }
  }
  blued_nodes_.resize(
      static_cast<std::size_t>(blued_start_[static_cast<std::size_t>(b)]));
  blued_start_.resize(static_cast<std::size_t>(b) + 1);
  for (const BlueRec& rec : eval_blued_) {
    while (static_cast<int>(blued_start_.size()) <= rec.round) {
      blued_start_.push_back(static_cast<std::int64_t>(blued_nodes_.size()));
    }
    blued_nodes_.push_back(rec.node);
    blue_round_[static_cast<std::size_t>(rec.node)] = rec.round;
  }
  while (static_cast<int>(blued_start_.size()) < committed_rounds_ + 1) {
    blued_start_.push_back(static_cast<std::int64_t>(blued_nodes_.size()));
  }
  // Home groups ride on the blue rounds: entries dropped above are
  // invalidated by their blue reset; the new suffix installs its own.
  for (const HomeRec& rec : eval_homes_) {
    home_group_[static_cast<std::size_t>(rec.node)] = rec.grp;
  }
}

}  // namespace mbsp
