#pragma once
// Sharded hierarchical scheduling for out-of-core scale (docs/SCALE.md):
// the generalization of the divide-and-conquer pipeline (Section 6.3) to
// million-node CSR-native DAGs.
//
//   1. acyclic k-way partition: the DAG is cut into `num_shards`
//      contiguous intervals of the deterministic Kahn topological order,
//      balanced by cumulative omega — O(n + m), no per-node vectors, and
//      the quotient graph is acyclic by construction (an edge can only go
//      from an earlier interval to a later one);
//   2. wave packing + machine slicing: shards are grouped into waves of
//      mutually independent quotient nodes and each wave splits the
//      processors proportionally to work, exactly like divide-and-conquer
//      (the shared helpers below are the extracted common core);
//   3. per-shard solves fan out on a ThreadPool: every shard gets a
//      greedy warm start plus an LNS polish with a SplitMix-derived
//      shard-indexed seed, results are collected by shard index, so the
//      outcome is bitwise reproducible for a fixed (seed, num_shards)
//      regardless of thread count;
//   4. stitch: sub-plans are spliced wave-by-wave with superstep offsets
//      and normalized;
//   5. boundary polish: a final global LNS pass whose node mask
//      (LnsOptions::node_mask) is restricted to the endpoints of cut
//      edges plus a configurable halo — only the shard seams move, so
//      each iteration stays O(delta) through the incremental evaluator.
//
// The result is never worse than the unpartitioned greedy warm start when
// compare_full_seed is on (the cheaper of the two plans is returned).

#include <cstdint>
#include <vector>

#include "src/holistic/lns.hpp"
#include "src/model/arch.hpp"
#include "src/model/instance.hpp"

namespace mbsp {

/// A shard as a scheduling subproblem: the shard's nodes plus its external
/// inputs (parents outside the shard), which become zero-omega sources of
/// the sub-DAG. Shared by shard_schedule and divide_conquer_schedule.
struct ShardSubproblem {
  std::vector<NodeId> globals;  ///< sub node id -> global node id
  ComputeDag dag;
};

/// Builds the sub-instance DAG for one shard/part: external inputs first
/// (as uncomputed sources that keep their memory weight), then the part's
/// nodes, with every parent edge of a part node preserved.
ShardSubproblem make_shard_subproblem(const ComputeDag& dag,
                                      const std::vector<NodeId>& part_nodes);

/// Slices `arch` down to the processors in `procs` (global ids), keeping
/// each processor's speed, capacity and comm group; groups are renumbered
/// dense in first-appearance order. Uniform machines slice to a smaller
/// uniform machine.
Architecture slice_architecture(const Architecture& arch,
                                const std::vector<int>& procs);

/// Deterministic acyclic k-way partition: contiguous intervals of the
/// Kahn topological order, cut so each shard carries ~1/k of the total
/// omega. Returns the shards in quotient-topological order (interval
/// order); every shard is non-empty, so the result may have fewer than
/// `num_shards` entries on tiny DAGs.
std::vector<std::vector<NodeId>> acyclic_kway_partition(const ComputeDag& dag,
                                                        int num_shards);

struct ShardOptions {
  int num_shards = 8;
  /// Per-shard LNS configuration; budget_ms is *per shard* and the seed is
  /// re-derived per shard (SplitMix over lns.seed and the shard index).
  LnsOptions lns;
  /// Global boundary polish sizing. budget_ms = 0 with a finite iteration
  /// cap keeps the polish bit-reproducible; 0 iterations disables it.
  double polish_budget_ms = 0;
  long polish_max_iterations = 20'000;
  /// Hops of DAG neighborhood around cut-edge endpoints included in the
  /// polish move mask (0 = endpoints only).
  int boundary_halo = 1;
  /// Worker threads for the per-shard fan-out (0 = hardware concurrency).
  /// Thread count never changes the result, only the wall clock.
  int num_threads = 0;
  /// Also compute the unpartitioned greedy warm start and return the
  /// cheaper plan — the sharded pipeline is then provably no worse than
  /// the seed. Disable for instances too large to schedule unsharded.
  bool compare_full_seed = true;
};

struct ShardResult {
  ComputePlan plan;
  MbspSchedule schedule;
  double cost = 0;            ///< final cost (after polish / seed compare)
  double stitched_cost = 0;   ///< stitched sharded plan, before polish
  double seed_cost = 0;       ///< unpartitioned greedy seed (0 if skipped)
  std::size_t num_shards = 0;
  std::size_t cut_edges = 0;       ///< DAG edges crossing shards
  std::size_t boundary_nodes = 0;  ///< nodes in the polish move mask
  bool used_full_seed = false;  ///< the unpartitioned seed won the compare
};

/// Runs the full pipeline described above. Deterministic for fixed
/// (options.lns.seed, options.num_shards) when the LNS budgets are
/// iteration-capped (budget_ms = 0), regardless of options.num_threads.
ShardResult shard_schedule(const MbspInstance& inst,
                           const ShardOptions& options);

}  // namespace mbsp
