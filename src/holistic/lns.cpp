#include "src/holistic/lns.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/model/cost.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace mbsp {

namespace {

struct OccRef {
  int proc = 0;
  std::size_t index = 0;
};

/// Uniformly random occurrence reference, or nullopt if the plan is empty.
std::optional<OccRef> random_occurrence(const ComputePlan& plan, Rng& rng) {
  const std::size_t total = plan.total_computes();
  if (total == 0) return std::nullopt;
  std::size_t pick = rng.index(total);
  for (int p = 0; p < plan.num_procs; ++p) {
    if (pick < plan.seq[p].size()) return OccRef{p, pick};
    pick -= plan.seq[p].size();
  }
  return std::nullopt;
}

/// Insertion index range within proc q for an occurrence of superstep s.
std::pair<std::size_t, std::size_t> superstep_range(
    const std::vector<PlannedCompute>& seq, int s) {
  const auto lo = std::lower_bound(
      seq.begin(), seq.end(), s,
      [](const PlannedCompute& pc, int step) { return pc.superstep < step; });
  const auto hi = std::upper_bound(
      seq.begin(), seq.end(), s,
      [](int step, const PlannedCompute& pc) { return step < pc.superstep; });
  return {static_cast<std::size_t>(lo - seq.begin()),
          static_cast<std::size_t>(hi - seq.begin())};
}

bool move_to_other_proc(ComputePlan& plan, Rng& rng) {
  if (plan.num_procs < 2) return false;
  const auto ref = random_occurrence(plan, rng);
  if (!ref) return false;
  const PlannedCompute pc = plan.seq[ref->proc][ref->index];
  int q = static_cast<int>(rng.index(plan.num_procs - 1));
  if (q >= ref->proc) ++q;
  plan.seq[ref->proc].erase(plan.seq[ref->proc].begin() +
                            static_cast<std::ptrdiff_t>(ref->index));
  const auto [lo, hi] = superstep_range(plan.seq[q], pc.superstep);
  const std::size_t at = lo + rng.index(hi - lo + 1);
  plan.seq[q].insert(plan.seq[q].begin() + static_cast<std::ptrdiff_t>(at), pc);
  return true;
}

bool move_superstep(ComputePlan& plan, Rng& rng) {
  const auto ref = random_occurrence(plan, rng);
  if (!ref) return false;
  auto& seq = plan.seq[ref->proc];
  PlannedCompute pc = seq[ref->index];
  const int delta = rng.chance(0.5) ? 1 : -1;
  const int target = pc.superstep + delta;
  if (target < 0) return false;
  seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(ref->index));
  pc.superstep = target;
  const auto [lo, hi] = superstep_range(seq, target);
  // Moving later: insert at the front of the target block keeps local
  // topological order plausible; moving earlier: at the back.
  const std::size_t at = delta > 0 ? lo : hi;
  seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(at), pc);
  return true;
}

bool swap_between_procs(ComputePlan& plan, Rng& rng) {
  if (plan.num_procs < 2) return false;
  const auto a = random_occurrence(plan, rng);
  const auto b = random_occurrence(plan, rng);
  if (!a || !b || a->proc == b->proc) return false;
  PlannedCompute& pa = plan.seq[a->proc][a->index];
  PlannedCompute& pb = plan.seq[b->proc][b->index];
  if (pa.superstep != pb.superstep) return false;
  std::swap(pa.node, pb.node);
  return true;
}

bool merge_supersteps(ComputePlan& plan, Rng& rng) {
  const int k = plan.num_supersteps();
  if (k < 2) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k - 1)));
  for (auto& seq : plan.seq) {
    for (PlannedCompute& pc : seq) {
      if (pc.superstep > s) --pc.superstep;
    }
  }
  return true;
}

bool split_superstep(ComputePlan& plan, Rng& rng) {
  const int k = plan.num_supersteps();
  if (k == 0) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k)));
  bool any = false;
  for (auto& seq : plan.seq) {
    const auto [lo, hi] = superstep_range(seq, s);
    // Random split point inside the block (may keep everything in s).
    const std::size_t cut = lo + rng.index(hi - lo + 1);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].superstep > s || (seq[i].superstep == s && i >= cut)) {
        ++seq[i].superstep;
        any = true;
      }
    }
  }
  return any;
}

bool add_recompute(const ComputeDag& dag, ComputePlan& plan, Rng& rng) {
  // Pick a random occurrence with a non-source parent not computed locally
  // beforehand; insert a recomputation of that parent right before it.
  const auto ref = random_occurrence(plan, rng);
  if (!ref) return false;
  auto& seq = plan.seq[ref->proc];
  const PlannedCompute pc = seq[ref->index];
  std::vector<NodeId> candidates;
  for (NodeId u : dag.parents(pc.node)) {
    if (dag.is_source(u)) continue;
    bool local_before = false;
    for (std::size_t i = 0; i < ref->index; ++i) {
      if (seq[i].node == u) {
        local_before = true;
        break;
      }
    }
    if (!local_before) candidates.push_back(u);
  }
  if (candidates.empty()) return false;
  const NodeId u = candidates[rng.index(candidates.size())];
  seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(ref->index),
             {u, pc.superstep});
  return true;
}

bool remove_occurrence(const ComputeDag& dag, ComputePlan& plan, Rng& rng) {
  const auto ref = random_occurrence(plan, rng);
  if (!ref) return false;
  const NodeId v = plan.seq[ref->proc][ref->index].node;
  std::size_t copies = 0;
  for (const auto& seq : plan.seq) {
    for (const PlannedCompute& pc : seq) {
      if (pc.node == v) ++copies;
    }
  }
  (void)dag;
  if (copies < 2) return false;
  auto& seq = plan.seq[ref->proc];
  seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(ref->index));
  return true;
}

}  // namespace

double evaluate_plan(const MbspInstance& inst, const ComputePlan& plan,
                     const LnsOptions& options, MbspSchedule* out) {
  MbspSchedule schedule =
      complete_memory(inst, plan, options.completion_policy);
  const double cost = options.cost == CostModel::kSynchronous
                          ? sync_cost(inst, schedule)
                          : async_cost(inst, schedule);
  if (out != nullptr) *out = std::move(schedule);
  return cost;
}

LnsResult improve_plan(const MbspInstance& inst, const ComputePlan& initial,
                       const LnsOptions& options) {
  LnsResult result;
  result.plan = initial;
  result.initial_cost = evaluate_plan(inst, initial, options, &result.schedule);
  result.cost = result.initial_cost;

  ComputePlan current = initial;
  double current_cost = result.initial_cost;

  Rng rng(options.seed);
  Deadline deadline(options.budget_ms);
  double temperature =
      std::max(1e-9, options.initial_temperature_frac * result.initial_cost);
  const double cooling = 0.9995;

  // Enabled move classes (ablations can disable any subset).
  std::vector<unsigned> moves;
  for (unsigned m : {kMoveProc, kMoveSuperstep, kSwapProcs, kMergeSupersteps,
                     kSplitSuperstep, kAddRecompute, kRemoveOccurrence}) {
    const bool recompute_move = m == kAddRecompute || m == kRemoveOccurrence;
    if ((options.move_mask & m) != 0 &&
        (!recompute_move || options.allow_recompute)) {
      moves.push_back(m);
    }
  }
  if (moves.empty()) return result;

  while (result.iterations < options.max_iterations && !deadline.expired()) {
    ++result.iterations;
    ComputePlan candidate = current;
    bool changed = false;
    switch (moves[rng.index(moves.size())]) {
      case kMoveProc: changed = move_to_other_proc(candidate, rng); break;
      case kMoveSuperstep: changed = move_superstep(candidate, rng); break;
      case kSwapProcs: changed = swap_between_procs(candidate, rng); break;
      case kMergeSupersteps: changed = merge_supersteps(candidate, rng); break;
      case kSplitSuperstep: changed = split_superstep(candidate, rng); break;
      case kAddRecompute:
        changed = add_recompute(inst.dag, candidate, rng);
        break;
      case kRemoveOccurrence:
        changed = remove_occurrence(inst.dag, candidate, rng);
        break;
    }
    if (!changed) continue;
    normalize_supersteps(candidate);
    if (!validate_plan(inst.dag, candidate)) continue;
    const double cost = evaluate_plan(inst, candidate, options);
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0 || rng.uniform01() < std::exp(-delta / temperature);
    temperature = std::max(1e-9, temperature * cooling);
    if (!accept) continue;
    ++result.accepted;
    current = std::move(candidate);
    current_cost = cost;
    if (cost < result.cost) {
      result.cost = cost;
      result.plan = current;
    }
  }
  // Re-derive the best schedule (plan is stored; completion deterministic).
  result.cost = evaluate_plan(inst, result.plan, options, &result.schedule);
  return result;
}

}  // namespace mbsp
